// Command experiments regenerates the paper's tables and figures (see
// DESIGN.md §3 for the experiment index).
//
// Usage:
//
//	experiments                 # run everything
//	experiments -run fig9,fig10 # selected experiments
//	experiments -measure 4000000 -warmup 800000
//	experiments -csv            # CSV instead of aligned text
//	experiments -j 8 -timeout 5m -retries 2
//	experiments -journal run.journal   # checkpoint completed cells
//	experiments -resume -journal run.journal  # skip journaled cells
//	experiments -server 127.0.0.1:8344 # compute cells on a llbpd daemon
//
// Interrupting with Ctrl-C cancels in-flight simulations cleanly; with a
// journal, a re-run under -resume re-executes only unfinished cells.
// Failed experiments are reported and skipped (fail-soft); the exit code
// is non-zero if any experiment failed.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"syscall"
	"time"

	"llbp/internal/experiments"
	"llbp/internal/harness"
	"llbp/internal/service/client"
	"llbp/internal/telemetry"
	"llbp/internal/trace/cache"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		runIDs  = fs.String("run", "all", "comma-separated experiment ids (see DESIGN.md), or 'all'")
		warmup  = fs.Uint64("warmup", 200_000, "warmup branches for headline experiments")
		measure = fs.Uint64("measure", 1_000_000, "measured branches for headline experiments")
		sweepW  = fs.Uint64("sweep-warmup", 100_000, "warmup branches for design-space sweeps")
		sweepM  = fs.Uint64("sweep-measure", 400_000, "measured branches for design-space sweeps")
		csv     = fs.Bool("csv", false, "emit CSV instead of aligned text")
		charts  = fs.Bool("charts", false, "render an ASCII bar chart of each table's first numeric column")
		quiet   = fs.Bool("q", false, "suppress per-run progress")
		par     = fs.Int("j", 1, "max concurrent simulation cells")
		timeout = fs.Duration("timeout", 0, "per-simulation deadline (0 = none)")
		retries = fs.Int("retries", 0, "retries for transiently failed simulations")
		journal = fs.String("journal", "", "journal file checkpointing completed cells")
		resume  = fs.Bool("resume", false, "skip cells already recorded in -journal")
		server  = fs.String("server", "", "compute cells on a running llbpd daemon at this address instead of simulating locally")

		cacheMB = fs.Int64("trace-cache-mb", 512,
			"materialized-trace cache budget in MiB (0 disables caching; cells then re-synthesize every stream)")

		metricsOut = fs.String("metrics", "", "write a suite-level JSON telemetry snapshot to this file")
		traceOut   = fs.String("tracefile", "", "write Chrome trace-event JSON of cell execution to this file")
		cpuProf    = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProf    = fs.String("memprofile", "", "write a heap profile to this file")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(stderr, "experiments: starting CPU profile: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}

	exps, err := experiments.ByID(*runIDs)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}

	// Ctrl-C / SIGTERM cancels in-flight simulations; a second signal
	// kills the process the default way.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	cfg := experiments.Config{
		Warmup:       *warmup,
		Measure:      *measure,
		SweepWarmup:  *sweepW,
		SweepMeasure: *sweepM,
		Context:      ctx,
		Parallelism:  *par,
		Timeout:      *timeout,
		Retries:      *retries,
	}
	if !*quiet {
		cfg.Progress = func(format string, args ...interface{}) {
			fmt.Fprintf(stderr, format+"\n", args...)
		}
	}
	if *cacheMB <= 0 {
		cfg.DisableTraceCache = true
	} else {
		cfg.TraceCache = cache.New(*cacheMB << 20)
	}
	if *server != "" {
		// Served execution: cells are scheduled on the daemon, but flow
		// through the same local memo cache, retry loop and journal as
		// local simulation — one code path, two backends. The client adds
		// transport-level resilience on top: idempotent re-submission on
		// connection failures (seeded backoff+jitter, the harness retry
		// schedule) and automatic resume of interrupted result streams
		// from the last delivered sequence number.
		cl := client.New(*server, client.Options{Retries: 3})
		if err := cl.Health(ctx); err != nil {
			fmt.Fprintf(stderr, "experiments: llbpd at %s not reachable: %v\n", *server, err)
			return 1
		}
		cfg.Remote = cl.RunCell
	}
	var reg *telemetry.Registry
	if *metricsOut != "" {
		reg = telemetry.NewRegistry()
		cfg.Telemetry = reg
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		defer f.Close()
		tracer := telemetry.NewTracer(f)
		tracer.ProcessName(telemetry.PidHarness, "harness")
		defer func() {
			if err := tracer.Close(); err != nil {
				fmt.Fprintf(stderr, "experiments: writing trace: %v\n", err)
			}
		}()
		cfg.Tracer = tracer
	}
	if *resume && *journal == "" {
		fmt.Fprintln(stderr, "-resume requires -journal")
		return 1
	}
	if *journal != "" {
		j, err := harness.OpenJournal(*journal)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		defer j.Close()
		if *resume && j.Len() > 0 {
			fmt.Fprintf(stderr, "resuming: %d cells already journaled in %s\n", j.Len(), *journal)
		} else if !*resume && j.Len() > 0 {
			// Without -resume a pre-populated journal would silently
			// reuse stale results; refuse instead.
			fmt.Fprintf(stderr, "journal %s has %d entries; pass -resume to reuse them or remove the file\n",
				*journal, j.Len())
			return 1
		}
		cfg.Journal = j
	}
	h := experiments.NewHarness(cfg)

	failed := 0
	for _, e := range exps {
		start := time.Now()
		fmt.Fprintf(stderr, "== %s: %s\n", e.ID, e.Title)
		tables, err := e.Run(h)
		if err != nil {
			if errors.Is(err, context.Canceled) {
				fmt.Fprintf(stderr, "interrupted during %s\n", e.ID)
				if *journal != "" {
					fmt.Fprintf(stderr, "re-run with -resume -journal %s to continue\n", *journal)
				}
				return 130
			}
			// Fail-soft: report, keep going with the other experiments.
			fmt.Fprintf(stderr, "experiment %s failed: %v\n", e.ID, err)
			failed++
			continue
		}
		for _, t := range tables {
			var werr error
			if *csv {
				werr = t.WriteCSV(stdout)
			} else {
				werr = t.WriteText(stdout)
			}
			if werr == nil && *charts && !*csv {
				if c := experiments.Chart(t); c != nil {
					werr = c.WriteText(stdout)
				}
			}
			if werr != nil {
				fmt.Fprintln(stderr, werr)
				return 1
			}
		}
		fmt.Fprintf(stderr, "== %s done in %s\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
	if reg != nil {
		f, err := os.Create(*metricsOut)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		werr := telemetry.WriteMetricsFile(f, []telemetry.RunSnapshot{{Predictor: "suite", Metrics: reg.Snapshot()}})
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintf(stderr, "experiments: writing metrics: %v\n", werr)
			return 1
		}
	}
	if *memProf != "" {
		f, err := os.Create(*memProf)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		runtime.GC()
		werr := pprof.WriteHeapProfile(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintf(stderr, "experiments: writing heap profile: %v\n", werr)
			return 1
		}
	}
	if failed > 0 {
		fmt.Fprintf(stderr, "%d experiment(s) failed\n", failed)
		return 1
	}
	return 0
}
