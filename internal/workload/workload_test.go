package workload

import (
	"testing"

	"llbp/internal/trace"
)

func readN(t *testing.T, r trace.Reader, n int) []trace.Branch {
	t.Helper()
	out := make([]trace.Branch, n)
	for i := range out {
		if err := r.Read(&out[i]); err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
	}
	return out
}

func TestCatalogHas14Workloads(t *testing.T) {
	cat := Catalog()
	if len(cat) != 14 {
		t.Fatalf("catalog has %d workloads, want 14 (Table I)", len(cat))
	}
	wantOrder := []string{
		"NodeApp", "PHPWiki", "TPCC", "Twitter", "Wikipedia", "Kafka",
		"Spring", "Tomcat", "Chirper", "HTTP", "Charlie", "Delta",
		"Merced", "Whiskey",
	}
	for i, w := range wantOrder {
		if cat[i].Name() != w {
			t.Errorf("catalog[%d] = %s, want %s", i, cat[i].Name(), w)
		}
	}
	if len(ServerWorkloads()) != 10 {
		t.Error("ServerWorkloads must return the ten gem5-style workloads")
	}
}

func TestByName(t *testing.T) {
	if _, err := ByName("Tomcat"); err != nil {
		t.Error(err)
	}
	if _, err := ByName("NoSuchThing"); err == nil {
		t.Error("unknown workload must error")
	}
	if len(Names()) != 14 {
		t.Error("Names must list the catalog")
	}
}

func TestDeterministicReplay(t *testing.T) {
	for _, wl := range Catalog()[:4] {
		a := readN(t, wl.Open(), 50_000)
		b := readN(t, wl.Open(), 50_000)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: replay diverged at %d: %+v vs %+v", wl.Name(), i, a[i], b[i])
			}
		}
	}
}

func TestWorkloadsDiffer(t *testing.T) {
	a := readN(t, Catalog()[0].Open(), 10_000)
	b := readN(t, Catalog()[1].Open(), 10_000)
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	if same > len(a)/2 {
		t.Errorf("two catalog workloads share %d/%d records — seeds not differentiating", same, len(a))
	}
}

// TestStreamInvariants checks the paper's measured invariants on every
// catalog workload: conditional/unconditional ratio near 3.9, a
// multi-thousand-branch working set, non-degenerate instruction gaps.
func TestStreamInvariants(t *testing.T) {
	for _, wl := range Catalog() {
		wl := wl
		t.Run(wl.Name(), func(t *testing.T) {
			s, err := trace.Collect(&trace.LimitReader{R: wl.Open(), Max: 150_000})
			if err != nil {
				t.Fatal(err)
			}
			if r := s.CondPerUncond(); r < 2.0 || r > 7.0 {
				t.Errorf("cond/uncond = %.2f, want ≈3.9 (paper)", r)
			}
			if ws := wl.StaticBranches(); ws < 2_000 || ws > 40_000 {
				t.Errorf("static working set %d out of the server-class range", ws)
			}
			if ipb := float64(s.Instructions) / float64(s.Branches); ipb < 2 || ipb > 12 {
				t.Errorf("instructions/branch = %.2f — implausible", ipb)
			}
			if s.ByType[trace.Call] == 0 || s.ByType[trace.Return] == 0 {
				t.Error("stream must contain calls and returns")
			}
			if s.ByType[trace.Jump] == 0 {
				t.Error("stream must contain the dispatch-loop jumps")
			}
			// Calls and returns must balance within the depth bound.
			calls := s.ByType[trace.Call] + s.ByType[trace.IndirectCall]
			rets := s.ByType[trace.Return]
			diff := int64(calls) - int64(rets)
			if diff < 0 {
				diff = -diff
			}
			if diff > int64(wl.Params().MaxDepth)+1 {
				t.Errorf("calls (%d) and returns (%d) unbalanced", calls, rets)
			}
		})
	}
}

// TestTakenRateSane: overall conditional taken rate should be mid-range
// (real programs: roughly half to two-thirds taken).
func TestTakenRateSane(t *testing.T) {
	for _, wl := range Catalog()[:5] {
		s, err := trace.Collect(&trace.LimitReader{R: wl.Open(), Max: 100_000})
		if err != nil {
			t.Fatal(err)
		}
		rate := float64(s.TakenCond) / float64(s.Conditional())
		if rate < 0.25 || rate > 0.85 {
			t.Errorf("%s: taken rate %.2f out of plausible range", wl.Name(), rate)
		}
	}
}

func TestClassMapCoversExecutedBranches(t *testing.T) {
	wl := Catalog()[7] // Tomcat
	classes := wl.ClassMap()
	if len(classes) == 0 {
		t.Fatal("empty class map")
	}
	r := wl.Open()
	var b trace.Branch
	headers := 0
	for i := 0; i < 50_000; i++ {
		if err := r.Read(&b); err != nil {
			t.Fatal(err)
		}
		if b.Type != trace.CondDirect {
			continue
		}
		if _, ok := classes[b.PC]; !ok {
			headers++ // loop headers are not in the class map
		}
	}
	if headers == 0 {
		t.Error("expected loop-header conditionals outside the class map")
	}
}

func TestClassDistribution(t *testing.T) {
	wl := Catalog()[7] // Tomcat
	counts := map[BehaviorClass]int{}
	for _, c := range wl.ClassMap() {
		counts[c]++
	}
	for _, cls := range []BehaviorClass{Biased, PathMarker, LocalPattern, GlobalCorrelated, ContextCorrelated} {
		if counts[cls] == 0 {
			t.Errorf("no %v branches generated", cls)
		}
	}
	// Complex branches are a minority of the static set (§II-D: the
	// most-mispredicted branches are ~1% of the working set).
	total := 0
	for _, n := range counts {
		total += n
	}
	if frac := float64(counts[ContextCorrelated]) / float64(total); frac > 0.25 {
		t.Errorf("context-correlated fraction %.2f too large", frac)
	}
}

func TestPCsWithinFunctionRanges(t *testing.T) {
	wl := Catalog()[0]
	r := wl.Open()
	var b trace.Branch
	limit := uint64(codeBase + wl.Params().Functions*fnStride)
	for i := 0; i < 30_000; i++ {
		if err := r.Read(&b); err != nil {
			t.Fatal(err)
		}
		if b.PC >= limit && b.PC < codeBase-0x200 {
			t.Fatalf("PC %#x outside the program's address space", b.PC)
		}
	}
}

func TestValidation(t *testing.T) {
	base := Catalog()[0].Params()
	bad := []func(*Params){
		func(p *Params) { p.Name = "" },
		func(p *Params) { p.Functions = 1 },
		func(p *Params) { p.RequestTypes = 0 },
		func(p *Params) { p.RequestTypes = p.Functions + 1 },
		func(p *Params) { p.CondMin, p.CondMax = 5, 4 },
		func(p *Params) { p.CallMin, p.CallMax = 3, 1 },
		func(p *Params) { p.MaxDepth = 0 },
		func(p *Params) { p.FracLocal = 0.9; p.FracMarker = 0.9 },
		func(p *Params) { p.ContextPhaseMin = 0 },
		func(p *Params) { p.LoopTripMin = 0 },
		func(p *Params) { p.FracContext = 1.5 },
	}
	for i, mod := range bad {
		p := base
		mod(&p)
		if _, err := New(p); err == nil {
			t.Errorf("bad params %d accepted", i)
		}
	}
}

func TestBehaviorClassString(t *testing.T) {
	names := map[BehaviorClass]string{
		Biased: "biased", LocalPattern: "local", GlobalCorrelated: "global",
		ContextCorrelated: "context", Noisy: "noisy", PathMarker: "marker",
	}
	for c, want := range names {
		if c.String() != want {
			t.Errorf("%d.String() = %q, want %q", c, c.String(), want)
		}
	}
}

func TestCallDepthBounded(t *testing.T) {
	wl := Catalog()[6] // Spring: MaxDepth 16
	r := wl.Open()
	var b trace.Branch
	depth, maxDepth := 0, 0
	for i := 0; i < 200_000; i++ {
		if err := r.Read(&b); err != nil {
			t.Fatal(err)
		}
		switch b.Type {
		case trace.Call, trace.IndirectCall:
			depth++
		case trace.Return:
			depth--
		}
		if depth > maxDepth {
			maxDepth = depth
		}
	}
	if maxDepth > wl.Params().MaxDepth+1 {
		t.Errorf("observed call depth %d exceeds MaxDepth %d", maxDepth, wl.Params().MaxDepth)
	}
}
