package core

import (
	"fmt"

	"llbp/internal/assert"
	"llbp/internal/history"
	"llbp/internal/predictor"
	"llbp/internal/telemetry"
	"llbp/internal/trace"
	"llbp/internal/tsl"
)

// Stats are LLBP's event counters, the raw material for Figures 11, 12
// and 15.
type Stats struct {
	CondPredictions uint64 // conditional branches predicted
	Matches         uint64 // LLBP found a matching pattern
	Overrides       uint64 // match won the length arbitration
	NoOverride      uint64 // match lost to a longer TAGE pattern

	// Override outcome breakdown (Figure 15).
	GoodOverride uint64 // baseline wrong, LLBP right
	BadOverride  uint64 // baseline right, LLBP wrong
	BothCorrect  uint64 // override redundant, both right
	BothWrong    uint64 // both wrong

	LLBPReads  uint64 // pattern-set fetches LLBP -> PB
	LLBPWrites uint64 // dirty pattern-set writebacks PB -> LLBP
	CDLookups  uint64 // context-directory searches (per context switch)
	PBHits     uint64 // prediction-time PB hits (ready)
	NotReady   uint64 // PB entry present/known but prefetch incomplete
	PBMisses   uint64 // CCID absent from the PB at prediction time

	CtxAllocs     uint64 // new contexts installed in the CD
	PatternAllocs uint64 // patterns allocated into sets
	Resets        uint64 // pipeline resets observed
	Squashes      uint64 // in-flight prefetches squashed by resets

	// Prefetch timeliness (Figure 11 bandwidth and §V-C analysis).
	PrefetchIssued uint64 // context-triggered pattern-set fetches into the PB
	PrefetchFilled uint64 // prefetched sets used at least once while cached
	PrefetchWasted uint64 // prefetched sets evicted or squashed untouched

	// Context churn: distinct CCID transitions observed by the RCR.
	CtxSwitches uint64

	// Structure occupancy, filled in by Stats() at snapshot time.
	CDEvictions uint64 // context-directory evictions
	CDLive      int    // live context-directory entries
	PBLive      int    // live pattern-buffer entries

	// Power gating (Config.AutoDisable, §V).
	DisabledPredictions uint64 // predictions made with LLBP powered down
	DisableEvents       uint64 // enabled -> disabled transitions
}

// Predictor is the composite LLBP + TAGE-SC-L predictor (§V): the
// unmodified baseline runs in parallel with the pattern buffer, and the
// longest matching pattern across the two supplies the final prediction.
// It implements predictor.Predictor, predictor.Detailer and
// predictor.Resettable.
type Predictor struct {
	cfg   Config
	base  *tsl.Predictor
	clock *predictor.Clock

	rcr *RCR
	dir *Directory
	pb  *Buffer

	// Shared folded-history engine (§V-B: LLBP's folds are identical in
	// content to the baseline's, so the composite owns one engine, adopted
	// from the baseline TAGE, and pushes it exactly once per branch for
	// both components). f1Loc/f2Loc cache the packed locations of LLBP's
	// TagBits and TagBits-1 folds per distinct history length.
	eng   *history.Engine
	f1Loc []history.Loc
	f2Loc []history.Loc
	// lenFold maps a HistLengths index to its distinct-length fold index.
	lenFold []int
	// tagPlan flattens tagFor's per-length state (fold locations resolved
	// through lenFold, AltHash flag) for matchPatterns' key-fill loop.
	tagPlan []tagPlan

	stats  Stats
	tel    coreTel
	detail predictor.Detail

	// lastCCID detects CCID transitions for Stats.CtxSwitches.
	lastCCID uint64
	haveCCID bool

	// Power gating state (Config.AutoDisable).
	gateOff      bool // LLBP prediction path powered down
	sleepLeft    int  // disabled windows remaining before probation
	windowLeft   int
	windowGood   int
	windowBad    int
	windowMatch  int
	windowMisses int // baseline mispredictions this window
	windowsSeen  int

	// Per-prediction scratch.
	lastPC     uint64
	baseTaken  bool
	tageTaken  bool
	tageLen    int
	cid        uint64
	pbe        *PBEntry
	matched    bool
	matchSlot  int
	llbpTaken  bool
	llbpLenIdx int
	llbpWins   bool // match won the length arbitration (LLBP is provider)
	override   bool // provider match was confident enough to override
	finalTaken bool

	// wantKeys[li] is the packed-lane match key (valid | lenIdx | tag)
	// expected for history-length index li at the current PB-hit PC.
	// matchPatterns fills the configured prefix once per PB-hit branch
	// straight from the shared folds — the ≤16 tags reuse the ≤12
	// distinct-length fold pairs — and the set probe reduces to one
	// masked compare per lane.
	wantKeys [maxLengths]uint64
}

var (
	_ predictor.Predictor  = (*Predictor)(nil)
	_ predictor.Detailer   = (*Predictor)(nil)
	_ predictor.Resettable = (*Predictor)(nil)
)

// New composes an LLBP instance over the given baseline predictor. The
// clock supplies simulation time for the prefetch-latency model; pass a
// fresh clock that the simulation driver advances.
func New(cfg Config, base *tsl.Predictor, clock *predictor.Clock) (*Predictor, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if base == nil {
		return nil, fmt.Errorf("core: nil baseline predictor")
	}
	if clock == nil {
		return nil, fmt.Errorf("core: nil clock")
	}
	p := &Predictor{
		cfg:   cfg,
		base:  base,
		clock: clock,
		rcr:   NewRCR(cfg.W, cfg.D, cfg.CIDBits, cfg.ShiftedHash),
		dir:   newDirectory(&cfg),
		pb:    newBuffer(cfg.PBEntries, cfg.PBWays),
	}
	// Adopt the baseline's history engine: from here on the composite is
	// the single owner pushing it, and LLBP's folds register into the same
	// packed words (deduping against TAGE's where (length, width) match).
	p.eng = base.TAGE().AdoptHistoryEngine()
	p.lenFold = make([]int, len(cfg.HistLengths))
	seen := map[int]int{}
	for i, h := range cfg.HistLengths {
		fi, ok := seen[h.Len]
		if !ok {
			fi = len(p.f1Loc)
			seen[h.Len] = fi
			p.f1Loc = append(p.f1Loc, p.eng.Loc(p.eng.Register(h.Len, cfg.TagBits)))
			p.f2Loc = append(p.f2Loc, p.eng.Loc(p.eng.Register(h.Len, cfg.TagBits-1)))
		}
		p.lenFold[i] = fi
	}
	p.tagPlan = make([]tagPlan, len(cfg.HistLengths))
	for i, h := range cfg.HistLengths {
		l1, l2 := p.f1Loc[p.lenFold[i]], p.f2Loc[p.lenFold[i]]
		p.tagPlan[i] = tagPlan{
			m1: l1.Mask, m2: l2.Mask,
			w1: l1.Word, w2: l2.Word,
			s1: l1.Shift, s2: l2.Shift,
			alt: h.AltHash,
		}
	}
	return p, nil
}

// tagPlan is one history length's flattened tag-hash schedule: the two
// fold locations (already resolved through lenFold) and the AltHash
// flag, laid out for sequential reads in matchPatterns' key-fill loop.
type tagPlan struct {
	m1, m2 uint64
	w1, w2 int32
	s1, s2 uint8
	alt    bool
}

// MustNew is New panicking on error, for the always-valid package configs.
func MustNew(cfg Config, base *tsl.Predictor, clock *predictor.Clock) *Predictor {
	p, err := New(cfg, base, clock)
	if err != nil {
		panic(err)
	}
	return p
}

// Name implements predictor.Predictor.
func (p *Predictor) Name() string {
	if p.cfg.Label != "" {
		return p.cfg.Label
	}
	return "LLBP"
}

// Config returns the LLBP configuration.
func (p *Predictor) Config() Config { return p.cfg }

// Base returns the underlying baseline predictor.
func (p *Predictor) Base() *tsl.Predictor { return p.base }

// Stats returns a snapshot of the event counters, including the derived
// structure-occupancy fields (CDLive, PBLive, CDEvictions) computed at
// snapshot time. It is the public observability surface of the composite
// predictor; internal structures are not exposed.
func (p *Predictor) Stats() Stats {
	s := p.stats
	s.CDEvictions = p.dir.Evictions()
	s.CDLive = p.dir.Live()
	s.PBLive = p.pb.Live()
	return s
}

// coreTel mirrors the hot-path event counters into a telemetry registry.
// Every field is a nil-safe instrument: with no registry attached each
// increment is a single nil check.
type coreTel struct {
	pbHits         *telemetry.Counter
	pbLate         *telemetry.Counter
	pbMisses       *telemetry.Counter
	prefetchIssued *telemetry.Counter
	prefetchFilled *telemetry.Counter
	prefetchWasted *telemetry.Counter
	ctxSwitches    *telemetry.Counter
	cdLookups      *telemetry.Counter
	ctxAllocs      *telemetry.Counter
	patternAllocs  *telemetry.Counter
	llbpReads      *telemetry.Counter
	llbpWrites     *telemetry.Counter
	matches        *telemetry.Counter
	overrides      *telemetry.Counter
	goodOverride   *telemetry.Counter
	badOverride    *telemetry.Counter
	resets         *telemetry.Counter
	squashes       *telemetry.Counter
	disableEvents  *telemetry.Counter
	disabledPreds  *telemetry.Counter
}

// AttachTelemetry registers LLBP's counters with reg and cascades to the
// baseline predictor. A nil registry detaches (all instruments become
// no-ops). Implements telemetry.Attachable.
func (p *Predictor) AttachTelemetry(reg *telemetry.Registry) {
	p.tel = coreTel{
		pbHits:         reg.Counter("pb_hits"),
		pbLate:         reg.Counter("pb_late"),
		pbMisses:       reg.Counter("pb_misses"),
		prefetchIssued: reg.Counter("prefetch_issued"),
		prefetchFilled: reg.Counter("prefetch_filled"),
		prefetchWasted: reg.Counter("prefetch_wasted"),
		ctxSwitches:    reg.Counter("rcr_ctx_switches"),
		cdLookups:      reg.Counter("cd_lookups"),
		ctxAllocs:      reg.Counter("cd_ctx_allocs"),
		patternAllocs:  reg.Counter("llbp_pattern_allocs"),
		llbpReads:      reg.Counter("llbp_reads"),
		llbpWrites:     reg.Counter("llbp_writes"),
		matches:        reg.Counter("llbp_matches"),
		overrides:      reg.Counter("llbp_overrides"),
		goodOverride:   reg.Counter("llbp_good_overrides"),
		badOverride:    reg.Counter("llbp_bad_overrides"),
		resets:         reg.Counter("pipeline_resets"),
		squashes:       reg.Counter("prefetch_squashes"),
		disableEvents:  reg.Counter("llbp_disable_events"),
		disabledPreds:  reg.Counter("llbp_disabled_predictions"),
	}
	p.base.AttachTelemetry(reg)
}

// tagFor computes the pattern tag for pc at history-length index lenIdx.
// AltHash variants (the * lengths of §VI) combine the same folded
// histories differently, like the baseline TAGE's modified hash.
func (p *Predictor) tagFor(pc uint64, lenIdx int) uint32 {
	fi := p.lenFold[lenIdx]
	l1, l2 := p.f1Loc[fi], p.f2Loc[fi]
	f1 := (p.eng.Word(l1.Word) >> l1.Shift) & l1.Mask
	f2 := (p.eng.Word(l2.Word) >> l2.Shift) & l2.Mask
	mask := uint64(1)<<uint(p.cfg.TagBits) - 1
	if p.cfg.HistLengths[lenIdx].AltHash {
		rot := (f1 << 3) | (f1 >> uint(p.cfg.TagBits-3))
		return uint32(((pc >> 2) ^ rot ^ (f2 << 2)) & mask)
	}
	return uint32(((pc >> 2) ^ f1 ^ (f2 << 1)) & mask)
}

// Predict implements predictor.Predictor: the baseline predicts, the PB is
// probed with the current context ID, and the longest match wins (§V-B).
func (p *Predictor) Predict(pc uint64) bool {
	p.stats.CondPredictions++
	p.lastPC = pc
	p.baseTaken = p.base.Predict(pc)
	p.tageTaken = p.base.TAGE().LastTaken()
	p.tageLen = p.base.TAGE().ProviderLen()
	baseDetail := p.base.LastDetail()

	if p.cfg.AutoDisable {
		p.tickGate()
	}
	if p.gateOff {
		// LLBP's prediction path is powered down (§V): the baseline
		// predicts alone. Histories and the RCR keep running (cheap
		// registers), so re-enabling is seamless.
		p.stats.DisabledPredictions++
		p.tel.disabledPreds.Inc()
		p.matched, p.llbpWins, p.override = false, false, false
		p.pbe = nil
		p.finalTaken = p.baseTaken
		p.detail = baseDetail
		p.detail.BaselineTaken = p.baseTaken
		return p.finalTaken
	}

	p.cid = p.rcr.CCID()
	p.matched = false
	p.pbe = p.pb.Lookup(p.cid)
	switch {
	case p.pbe != nil && p.pbe.Ready <= p.clock.NowF():
		p.stats.PBHits++
		p.tel.pbHits.Inc()
		p.touchPB(p.pbe)
		p.matchPatterns(pc)
	case p.pbe != nil:
		p.stats.NotReady++
		p.tel.pbLate.Inc()
		p.pbe = nil // unusable this cycle
	default:
		p.stats.PBMisses++
		p.tel.pbMisses.Inc()
	}

	p.override, p.llbpWins = false, false
	p.finalTaken = p.baseTaken
	if p.matched {
		p.stats.Matches++
		p.tel.matches.Inc()
		p.windowMatch++
		p.llbpWins = p.cfg.HistLengths[p.llbpLenIdx].Len >= p.tageLen
		// Longest history wins (§V-B); but a newly allocated,
		// still-weak pattern defers to the baseline for the final
		// prediction, mirroring TAGE's use-alt-on-newly-allocated
		// heuristic — a weak counter carries no evidence yet. The
		// pattern still trains as the provider.
		ctr := laneCtr(p.pbe.Ent.Set.lanes()[p.matchSlot])
		confident := ctr >= 1 || ctr <= -2
		if p.llbpWins && confident {
			p.override = true
			p.finalTaken = p.llbpTaken
			p.stats.Overrides++
			p.tel.overrides.Inc()
		} else {
			p.stats.NoOverride++
		}
	}

	p.detail = baseDetail
	p.detail.BaselineTaken = p.baseTaken
	p.detail.LLBPMatched = p.matched
	p.detail.LLBPOverrode = p.override
	if p.override {
		p.detail.Provider = predictor.ProviderLLBP
		p.detail.ProviderLen = p.cfg.HistLengths[p.llbpLenIdx].Len
		p.detail.PatternKey = p.llbpPatternKey()
	}
	return p.finalTaken
}

// tickGate advances the power-gating window state machine (§V, see
// Config.AutoDisable): LLBP powers down when TAGE alone is accurate
// enough, or when LLBP keeps matching without net benefit. A warm-up
// grace period protects LLBP's initial training, and every sleep ends in
// a probation window so phase changes re-enable it.
func (p *Predictor) tickGate() {
	if p.windowLeft > 0 {
		p.windowLeft--
		return
	}
	window := p.cfg.DisableWindow
	if window <= 0 {
		window = 32768
	}
	p.windowsSeen++
	const graceWindows = 4
	switch {
	case p.gateOff:
		p.sleepLeft--
		if p.sleepLeft <= 0 {
			p.gateOff = false // probation window
		}
	case p.windowsSeen <= graceWindows:
		// Warm-up grace: let LLBP learn before judging it.
	default:
		baselineAccurate := float64(p.windowMisses) < p.cfg.DisableMissFrac*float64(window)
		matchedALot := p.windowMatch > window/50
		noBenefit := p.windowGood-p.windowBad < p.cfg.DisableThreshold
		if baselineAccurate || (matchedALot && noBenefit) {
			p.gateOff = true
			p.sleepLeft = 4
			p.stats.DisableEvents++
			p.tel.disableEvents.Inc()
		}
	}
	p.windowGood, p.windowBad, p.windowMatch, p.windowMisses = 0, 0, 0, 0
	p.windowLeft = window - 1
}

// matchPatterns scans the current pattern set for the longest matching
// pattern. Sets are kept in ascending history-length order, so the last
// match in slot order is the longest (§V-B).
//
// The probe is branch-free: the expected key for every configured length
// is computed up front (valid bit, length index and tag packed exactly as
// the lanes store them), then each lane needs one mask, one table load
// and one compare, with the matching slot carried in a conditional move.
func (p *Predictor) matchPatterns(pc uint64) {
	// Key fill: tagFor unrolled over the flattened plan with the packed
	// word slice in a local, so each length costs two indexed loads plus
	// shifts/xors (tagFor is the reference formulation of the same hash).
	words := p.eng.Words()
	mask := uint64(1)<<uint(p.cfg.TagBits) - 1
	rot := uint(p.cfg.TagBits - 3)
	base := pc >> 2
	for li := range p.tagPlan {
		t := &p.tagPlan[li]
		f1 := (words[t.w1] >> t.s1) & t.m1
		f2 := (words[t.w2] >> t.s2) & t.m2
		var tag uint64
		if t.alt {
			tag = (base ^ ((f1 << 3) | (f1 >> rot)) ^ (f2 << 2)) & mask
		} else {
			tag = (base ^ f1 ^ (f2 << 1)) & mask
		}
		p.wantKeys[li] = laneValidBit | uint64(li)<<laneLenShift | tag
	}
	lanes := p.pbe.Ent.Set.lanes()
	slot := -1
	for i, lane := range lanes {
		// The valid bit sits just above the 8-bit length field, so the
		// uint8 truncation is the field mask; an invalid lane can never
		// equal its key (every key carries the valid bit), and a valid
		// lane's length index is always < n by construction.
		li := uint8(lane >> laneLenShift)
		if lane&laneKeyMask == p.wantKeys[li] {
			slot = i
		}
	}
	if slot < 0 {
		return
	}
	lane := lanes[slot]
	p.matched = true
	p.matchSlot = slot
	p.llbpTaken = laneCtr(lane) >= 0
	p.llbpLenIdx = int((lane >> laneLenShift) & laneLenMask)
}

// maxLengths bounds the per-prediction tag scratch.
const maxLengths = 256

func (p *Predictor) llbpPatternKey() uint64 {
	q := p.pbe.Ent.Set.Pattern(p.matchSlot)
	return 1<<63 | p.cid<<20 | uint64(q.Tag)<<5 | uint64(q.LenIdx)
}

// Update implements predictor.Predictor (unknown target; see
// UpdateWithTarget).
//
//llbplint:sink -- predictor tables define simulated accuracy; training on a nondeterministic value forks the trajectory
func (p *Predictor) Update(pc uint64, taken bool) {
	p.UpdateWithTarget(pc, pc+4, taken)
}

// UpdateWithTarget implements predictor.TargetUpdater: trains the
// providing component, allocates longer-history patterns on provider
// mispredictions (§V-D), and advances LLBP's history mirrors.
//
//llbplint:sink -- predictor tables define simulated accuracy; training on a nondeterministic value forks the trajectory
func (p *Predictor) UpdateWithTarget(pc, target uint64, taken bool) {
	if pc != p.lastPC {
		assert.Failf("core: Update(%#x) without matching Predict (last %#x)", pc, p.lastPC)
	}
	if p.baseTaken != taken {
		p.windowMisses++
	}
	// Figure 15 bookkeeping for overrides.
	if p.override {
		baseRight := p.baseTaken == taken
		llbpRight := p.llbpTaken == taken
		switch {
		case !baseRight && llbpRight:
			p.stats.GoodOverride++
			p.tel.goodOverride.Inc()
			p.windowGood++
		case baseRight && !llbpRight:
			p.stats.BadOverride++
			p.tel.badOverride.Inc()
			p.windowBad++
		case baseRight && llbpRight:
			p.stats.BothCorrect++
		default:
			p.stats.BothWrong++
		}
	}

	if p.gateOff {
		// Powered down: the baseline trains alone; no LLBP training or
		// allocation.
		p.base.UpdateWithTarget(pc, target, taken)
		p.pushHistory(taken)
		if p.cfg.CtxType.Feeds(trace.CondDirect, taken) {
			p.rcr.Push(pc)
			p.noteContextFeed()
		}
		return
	}

	providerWrong := false
	providerLenIdx := -1
	if p.llbpWins {
		// LLBP is the provider: train the pattern whether or not its
		// confidence allowed the override (like TAGE training a
		// newly allocated provider while the alt prediction is
		// used).
		lanes := p.pbe.Ent.Set.lanes()
		ctr := laneCtr(lanes[p.matchSlot])
		if taken {
			if ctr < p.ctrMax() {
				ctr++
			}
		} else if ctr > p.ctrMin() {
			ctr--
		}
		lanes[p.matchSlot] = laneWithCtr(lanes[p.matchSlot], ctr)
		p.pbe.Dirty = true
		p.dir.RefreshConf(p.pbe.Ent)
		providerWrong = p.llbpTaken != taken
		providerLenIdx = p.llbpLenIdx
	} else {
		providerWrong = p.tageTaken != taken
	}
	if p.override {
		// TAGE cancels its update when overridden (§V-D).
		p.base.UpdateAsOverridden(pc, target, taken)
	} else {
		p.base.UpdateWithTarget(pc, target, taken)
	}

	if providerWrong {
		provLen := p.tageLen
		if providerLenIdx >= 0 {
			provLen = p.cfg.HistLengths[providerLenIdx].Len
		}
		p.allocate(pc, taken, provLen)
	}

	p.pushHistory(taken)
	if p.cfg.CtxType.Feeds(trace.CondDirect, taken) {
		p.rcr.Push(pc)
		p.noteContextFeed()
		p.onContextSwitch()
	}
}

func (p *Predictor) ctrMax() int8 { return int8(1)<<(p.cfg.CtrBits-1) - 1 }
func (p *Predictor) ctrMin() int8 { return -int8(1) << (p.cfg.CtrBits - 1) }

// allocate installs a new pattern for the current context with the
// smallest LLBP history length strictly longer than the mispredicting
// provider's (§V-D steps 1–4).
func (p *Predictor) allocate(pc uint64, taken bool, provLen int) {
	lenIdx := -1
	for i, h := range p.cfg.HistLengths {
		if h.Len > provLen {
			lenIdx = i
			break
		}
	}
	if lenIdx < 0 {
		return // provider already used the maximum length
	}
	ent := p.dir.Lookup(p.cid)
	if ent == nil {
		// Step 1: install the context.
		var evictedCID uint64
		var evicted bool
		ent, evictedCID, evicted = p.dir.Insert(p.cid)
		p.stats.CtxAllocs++
		p.tel.ctxAllocs.Inc()
		if evicted {
			if old := p.pb.Invalidate(evictedCID); old.Valid {
				if old.Dirty {
					p.stats.LLBPWrites++
					p.tel.llbpWrites.Inc()
				}
				p.noteEvicted(old)
			}
		}
	}
	pbe := p.pb.Lookup(p.cid)
	if pbe == nil {
		// The set is (now) resident in LLBP but not cached; pull it
		// in. New patterns are created core-side, so the entry is
		// immediately usable.
		pbe = p.fetchIntoPB(p.cid, ent, 0, false)
	}
	p.touchPB(pbe)
	pbe.Ent = ent
	// Steps 2–4: replace the least-confident pattern in the target
	// bucket and keep the bucket sorted.
	ent.Set.insert(p.tagFor(pc, lenIdx), uint8(lenIdx), taken, p.cfg.Buckets, len(p.cfg.HistLengths))
	pbe.Dirty = true
	p.dir.RefreshConf(ent)
	p.stats.PatternAllocs++
	p.tel.patternAllocs.Inc()
}

// fetchIntoPB models a pattern-set transfer from LLBP storage to the PB,
// accounting the read and any dirty-victim writeback. prefetch marks
// context-triggered fetches for the timeliness accounting (demand fetches
// from the allocation path pass false).
func (p *Predictor) fetchIntoPB(cid uint64, ent *CDEntry, delay float64, prefetch bool) *PBEntry {
	p.stats.LLBPReads++
	p.tel.llbpReads.Inc()
	if prefetch {
		p.stats.PrefetchIssued++
		p.tel.prefetchIssued.Inc()
	}
	ins, ev := p.pb.Insert(cid, ent, p.clock.NowF()+delay)
	if ev.Valid {
		if ev.Dirty {
			p.stats.LLBPWrites++
			p.tel.llbpWrites.Inc()
			p.dir.RefreshConf(ev.Ent)
		}
		p.noteEvicted(ev)
	}
	ins.Prefetched = prefetch
	return ins
}

// touchPB marks a PB entry used, completing the prefetch-timeliness
// accounting on the first use of a prefetched entry.
func (p *Predictor) touchPB(e *PBEntry) {
	if e.Prefetched && !e.Touched {
		p.stats.PrefetchFilled++
		p.tel.prefetchFilled.Inc()
	}
	e.Touched = true
}

// noteEvicted accounts a PB entry leaving the buffer: a prefetched entry
// that never served a use was wasted prefetch bandwidth.
func (p *Predictor) noteEvicted(ev PBEntry) {
	if ev.Prefetched && !ev.Touched {
		p.stats.PrefetchWasted++
		p.tel.prefetchWasted.Inc()
	}
}

// noteContextFeed runs after every RCR push, counting CCID transitions.
func (p *Predictor) noteContextFeed() {
	ccid := p.rcr.CCID()
	if p.haveCCID && ccid == p.lastCCID {
		return
	}
	if p.haveCCID {
		p.stats.CtxSwitches++
		p.tel.ctxSwitches.Inc()
	}
	p.lastCCID, p.haveCCID = ccid, true
}

// TrackOther implements predictor.Predictor: maintains the baseline's and
// LLBP's histories and drives the context-switch machinery (§V-C).
func (p *Predictor) TrackOther(pc, target uint64, t trace.BranchType) {
	p.base.TrackOther(pc, target, t)
	p.pushHistory(true)
	if p.cfg.CtxType.Feeds(t, true) {
		p.rcr.Push(pc)
		p.noteContextFeed()
		p.onContextSwitch()
	}
}

// onContextSwitch runs once per context-feeding branch: it searches the CD
// with the prefetch CID and pulls the upcoming pattern set into the PB
// ahead of use; it also issues a demand fetch if the *current* context is
// known but absent from the PB (the post-reset path, §V-C).
func (p *Predictor) onContextSwitch() {
	if p.gateOff {
		return // powered down: no CD searches or prefetches
	}
	p.stats.CDLookups++
	p.tel.cdLookups.Inc()
	pcid := p.rcr.PrefetchCID()
	if ent := p.dir.Lookup(pcid); ent != nil && p.pb.Lookup(pcid) == nil {
		p.fetchIntoPB(pcid, ent, p.cfg.PrefetchDelay, true)
	}
	if p.cfg.D == 0 {
		return // prefetch CID == CCID; already handled
	}
	ccid := p.rcr.CCID()
	if p.pb.Lookup(ccid) == nil {
		if ent := p.dir.Lookup(ccid); ent != nil {
			p.fetchIntoPB(ccid, ent, p.cfg.PrefetchDelay, true)
		}
	}
}

// pushHistory advances the shared history engine — the composite's
// single per-branch fold update, serving the baseline's tables and
// LLBP's pattern tags alike. It runs after allocation (which must see
// the pre-branch folds) and after the baseline's table training.
func (p *Predictor) pushHistory(taken bool) {
	p.eng.Push(taken)
}

// OnPipelineReset implements predictor.Resettable: squash in-flight
// prefetches and restart prefetching for the current context (§VI).
func (p *Predictor) OnPipelineReset() {
	now := p.clock.NowF()
	p.stats.Resets++
	p.tel.resets.Inc()
	squashed := uint64(p.pb.SquashInflight(now))
	p.stats.Squashes += squashed
	p.tel.squashes.Add(squashed)
	// Squashed in-flight fetches are by construction untouched prefetches
	// (demand fetches complete immediately), so they count as wasted.
	p.stats.PrefetchWasted += squashed
	p.tel.prefetchWasted.Add(squashed)
	ccid := p.rcr.CCID()
	if p.pb.Lookup(ccid) == nil {
		if ent := p.dir.Lookup(ccid); ent != nil {
			p.fetchIntoPB(ccid, ent, p.cfg.PrefetchDelay, true)
		}
	}
}

// LastDetail implements predictor.Detailer.
func (p *Predictor) LastDetail() predictor.Detail { return p.detail }

// HistoryCheckpoint captures the composite predictor's speculative state:
// the baseline's histories plus LLBP's history mirror and the rolling
// context register — the exact state §V-E2 checkpoints per branch ("a
// snapshot of the CCID and a pointer to the head of the RCR").
type HistoryCheckpoint struct {
	base *tsl.HistoryCheckpoint // path + SC histories (the engine is ours)
	eng  history.EngineCheckpoint
	rcr  []uint64
}

// CheckpointHistory snapshots the speculative history state. One engine
// checkpoint covers the baseline's and LLBP's folds — they are the same
// registers.
func (p *Predictor) CheckpointHistory() *HistoryCheckpoint {
	return &HistoryCheckpoint{
		base: p.base.CheckpointHistory(),
		eng:  p.eng.Checkpoint(),
		rcr:  p.rcr.Snapshot(),
	}
}

// RestoreHistory rewinds the speculative history state to a checkpoint
// (the §V-E2 misprediction-recovery path).
func (p *Predictor) RestoreHistory(cp *HistoryCheckpoint) {
	p.base.RestoreHistory(cp.base)
	p.eng.Restore(cp.eng)
	p.rcr.Restore(cp.rcr)
}
