package history

import "testing"

// engineRNG is a tiny deterministic xorshift for test streams.
type engineRNG uint64

func (r *engineRNG) next() uint64 {
	x := uint64(*r)
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	*r = engineRNG(x)
	return x
}

// TestEngineMatchesScalarFolded drives an engine and the classic scalar
// Folded registers with the same outcome stream and demands equal values
// after every push — the bit-exactness contract behind the shared history
// engine.
func TestEngineMatchesScalarFolded(t *testing.T) {
	// The real composite's register population: TAGE's (len, idx/tag1/tag2)
	// triples plus LLBP's (len, 13/12) pairs, including full duplicates.
	type reg struct{ length, width int }
	var regs []reg
	tageLens := []int{4, 6, 8, 10, 12, 17, 21, 26, 38, 54, 78, 112, 161, 232, 336, 482, 695, 1002, 1444, 2081, 3000}
	for i, l := range tageLens {
		tag := 9
		if i >= 7 {
			tag = 11
		}
		if i >= 14 {
			tag = 13
		}
		regs = append(regs, reg{l, 10}, reg{l, tag}, reg{l, tag - 1})
	}
	for _, l := range []int{12, 26, 54, 78, 112, 161, 232, 336, 482, 695, 1444, 3000} {
		regs = append(regs, reg{l, 13}, reg{l, 12})
	}
	// Plus awkward shapes: width > length, width 1, max width, length
	// divisible by width (outpoint 0).
	regs = append(regs, reg{4, 10}, reg{7, 1}, reg{3000, 63}, reg{60, 12}, reg{64, 8})

	eng := NewEngine()
	ids := make([]FoldID, len(regs))
	for i, r := range regs {
		ids[i] = eng.Register(r.length, r.width)
	}
	ghr := NewGlobal()
	scalars := make([]Folded, len(regs))
	for i, r := range regs {
		scalars[i] = NewFoldedValue(r.length, r.width)
	}

	rng := engineRNG(0x1234_5678_9abc_def1)
	for step := 0; step < 8192; step++ {
		taken := rng.next()&1 == 1
		eng.Push(taken)
		ghr.Push(taken)
		in := uint64(0)
		if taken {
			in = 1
		}
		for i := range scalars {
			scalars[i].UpdateBits(in, ghr.Bit(scalars[i].OrigLength))
		}
		for i := range scalars {
			if got, want := eng.Value(ids[i]), scalars[i].Value(); got != want {
				t.Fatalf("step %d: reg %d (len %d width %d): engine %#x != scalar %#x",
					step, i, regs[i].length, regs[i].width, got, want)
			}
		}
		// Spot-check against the from-scratch reference fold too.
		if step%1024 == 1023 {
			for i := range regs {
				if got, want := eng.Value(ids[i]), ghr.Hash(regs[i].length, regs[i].width); got != want {
					t.Fatalf("step %d: reg %d: engine %#x != reference hash %#x", step, i, got, want)
				}
			}
		}
	}
}

// TestEngineDedupe: identical (length, width) pairs share one register.
func TestEngineDedupe(t *testing.T) {
	e := NewEngine()
	a := e.Register(336, 13)
	b := e.Register(336, 12)
	if c := e.Register(336, 13); c != a {
		t.Errorf("duplicate registration returned new id %d != %d", c, a)
	}
	if b == a {
		t.Error("distinct widths must not share an id")
	}
	la, lb := e.Loc(a), e.Loc(b)
	if la == lb {
		t.Error("distinct registers share a location")
	}
	if (e.Word(la.Word)>>la.Shift)&la.Mask != e.Value(a) {
		t.Error("Loc/Word read disagrees with Value")
	}
}

// TestEngineLateRegistration: a register added after pushes must equal the
// reference fold of the current history and track scalar updates after.
func TestEngineLateRegistration(t *testing.T) {
	e := NewEngine()
	e.Register(54, 11) // pre-existing occupant of the length-54 group
	rng := engineRNG(42)
	ghr := NewGlobal()
	for i := 0; i < 500; i++ {
		taken := rng.next()&1 == 1
		e.Push(taken)
		ghr.Push(taken)
	}
	id := e.Register(54, 13)
	if got, want := e.Value(id), ghr.Hash(54, 13); got != want {
		t.Fatalf("late register starts at %#x, want reference fold %#x", got, want)
	}
	f := NewFoldedValue(54, 13)
	f.Restore(ghr.Hash(54, 13))
	for i := 0; i < 500; i++ {
		taken := rng.next()&1 == 1
		e.Push(taken)
		ghr.Push(taken)
		in := uint64(0)
		if taken {
			in = 1
		}
		f.UpdateBits(in, ghr.Bit(54))
		if e.Value(id) != f.Value() {
			t.Fatalf("push %d after late registration: engine %#x != scalar %#x", i, e.Value(id), f.Value())
		}
	}
}

// TestEngineCheckpointRestore: checkpoint, diverge, restore, and the
// engine must replay identically to an engine that never diverged.
func TestEngineCheckpointRestore(t *testing.T) {
	e := NewEngine()
	ids := []FoldID{e.Register(12, 13), e.Register(78, 12), e.Register(3000, 13)}
	rng := engineRNG(7)
	for i := 0; i < 300; i++ {
		e.Push(rng.next()&1 == 1)
	}
	cp := e.Checkpoint()
	want := make([]uint64, len(ids))
	for i, id := range ids {
		want[i] = e.Value(id)
	}
	for i := 0; i < 100; i++ {
		e.Push(rng.next()&1 == 1) // wrong-path pushes
	}
	e.Restore(cp)
	for i, id := range ids {
		if e.Value(id) != want[i] {
			t.Fatalf("restore: register %d = %#x, want %#x", i, e.Value(id), want[i])
		}
	}
	if e.Bit(0) != cp.ghr.Bit(0) {
		t.Error("restore did not rewind the global history")
	}
}

// TestEngineClone: clones diverge independently; the parent is unaffected.
func TestEngineClone(t *testing.T) {
	e := NewEngine()
	id := e.Register(26, 13)
	rng := engineRNG(99)
	for i := 0; i < 200; i++ {
		e.Push(rng.next()&1 == 1)
	}
	c := e.Clone()
	if c.Value(id) != e.Value(id) {
		t.Fatal("clone must start equal")
	}
	before := e.Value(id)
	c.Push(true)
	c.Push(true)
	if e.Value(id) != before {
		t.Error("pushing the clone mutated the parent")
	}
	e.Push(false)
	two := e.Clone()
	e.Push(true)
	if two.Value(id) == e.Value(id) {
		t.Error("parent push leaked into clone")
	}
	// Registration on a clone must not disturb the parent's layout.
	nid := c.Register(38, 9)
	if got, want := c.Value(nid), c.Hash(38, 9); got != want {
		t.Errorf("clone registration: %#x, want %#x", got, want)
	}
	if len(e.Clone().locs) != len(e.locs) {
		t.Error("clone registration grew the parent")
	}
}

// TestEngineZeroLength: zero-length folds are constant zero, like Folded.
func TestEngineZeroLength(t *testing.T) {
	e := NewEngine()
	id := e.Register(0, 10)
	e.Push(true)
	e.Push(true)
	if e.Value(id) != 0 {
		t.Errorf("zero-length fold = %#x, want 0", e.Value(id))
	}
}

func BenchmarkEnginePush(b *testing.B) {
	e := NewEngine()
	tageLens := []int{4, 6, 8, 10, 12, 17, 21, 26, 38, 54, 78, 112, 161, 232, 336, 482, 695, 1002, 1444, 2081, 3000}
	for i, l := range tageLens {
		tag := 9
		if i >= 7 {
			tag = 11
		}
		if i >= 14 {
			tag = 13
		}
		e.Register(l, 10)
		e.Register(l, tag)
		e.Register(l, tag-1)
	}
	for _, l := range []int{12, 26, 54, 78, 112, 161, 232, 336, 482, 695, 1444, 3000} {
		e.Register(l, 13)
		e.Register(l, 12)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Push(i&3 != 0)
	}
}

// BenchmarkScalarFoldPush is the pre-engine baseline: the same register
// population updated one scalar Folded at a time (tage walk + core walk).
func BenchmarkScalarFoldPush(b *testing.B) {
	type reg struct{ length, width int }
	var regs []reg
	tageLens := []int{4, 6, 8, 10, 12, 17, 21, 26, 38, 54, 78, 112, 161, 232, 336, 482, 695, 1002, 1444, 2081, 3000}
	for i, l := range tageLens {
		tag := 9
		if i >= 7 {
			tag = 11
		}
		if i >= 14 {
			tag = 13
		}
		regs = append(regs, reg{l, 10}, reg{l, tag}, reg{l, tag - 1})
	}
	for _, l := range []int{12, 26, 54, 78, 112, 161, 232, 336, 482, 695, 1444, 3000} {
		regs = append(regs, reg{l, 13}, reg{l, 12})
	}
	folds := make([]Folded, len(regs))
	for i, r := range regs {
		folds[i] = NewFoldedValue(r.length, r.width)
	}
	ghr := NewGlobal()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		taken := i&3 != 0
		ghr.Push(taken)
		in := uint64(0)
		if taken {
			in = 1
		}
		for j := range folds {
			folds[j].UpdateBits(in, ghr.Bit(folds[j].OrigLength))
		}
	}
}
