// Package sim is a determinism fixture standing in for a simulation
// package (its import path has no allowlisted segment).
package sim

import (
	"math/rand"
	"sort"
	"time"
)

// Clock reads the wall clock — forbidden in simulation code.
func Clock() int64 {
	t := time.Now() // want `time\.Now depends on the wall clock`
	return t.UnixNano()
}

// Jitter sleeps — timing-dependent, forbidden.
func Jitter() {
	time.Sleep(time.Millisecond) // want `time\.Sleep depends on the wall clock`
}

// PureTime uses only pure time constructors — allowed.
func PureTime() time.Duration {
	return 3 * time.Millisecond
}

// Draw uses the global auto-seeded RNG — forbidden.
func Draw() int {
	return rand.Intn(10) // want `global auto-seeded RNG`
}

// Shuffle uses the global RNG too.
func Shuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `global auto-seeded RNG`
}

// Seeded owns an explicitly seeded generator — the sanctioned pattern.
func Seeded(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}

// Sum iterates a map directly — order-dependent, forbidden.
func Sum(m map[string]int) int {
	total := 0
	for _, v := range m { // want `map iteration order is nondeterministic`
		total += v
	}
	return total
}

// SumSorted uses the collect-then-sort idiom; the key-collecting range
// is recognized and allowed.
func SumSorted(m map[string]int) int {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	total := 0
	for _, k := range keys {
		total += m[k]
	}
	return total
}

// Clear deletes every entry — order cannot matter, allowed.
func Clear(m map[string]int) {
	for k := range m {
		delete(m, k)
	}
}

// Count carries a justified allow directive — suppressed.
func Count(m map[string]int) int {
	n := 0
	//llbplint:allow determinism -- commutative count; iteration order cannot affect the result
	for range m {
		n++
	}
	return n
}

// Bad carries an unjustified directive: it suppresses nothing and is
// itself diagnosed.
func Bad(m map[string]int) int {
	n := 0
	//llbplint:allow determinism // want `missing justification`
	for range m { // want `map iteration order is nondeterministic`
		n++
	}
	return n
}
