// Package predlib is the hotpath fixture's cross-package callee: Mix is
// hot only because core.Predictor.Predict reaches it through scan, so a
// finding here proves the traversal crosses package boundaries.
package predlib

func Mix(pc uint64) int {
	b := []byte{byte(pc)} // want hotpath:"allocates \\(slice literal\\)"
	return int(b[0])
}

// Unreached allocates but no entry point calls it.
func Unreached() []int {
	return make([]int, 8)
}
