package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"llbp/internal/experiments"
	"llbp/internal/service"
	"llbp/internal/service/client"
	"llbp/internal/telemetry"
)

// startDaemon runs the daemon in-process on an ephemeral port and
// returns its client plus a channel carrying the final exit code.
func startDaemon(t *testing.T, extra ...string) (*client.Client, <-chan int, *bytes.Buffer) {
	t.Helper()
	var out, errb bytes.Buffer
	ready := make(chan string, 1)
	code := make(chan int, 1)
	args := append([]string{"-addr", "127.0.0.1:0", "-q"}, extra...)
	go func() { code <- run(args, &out, &errb, ready) }()
	select {
	case addr := <-ready:
		return client.New(addr), code, &out
	case c := <-code:
		t.Fatalf("daemon exited before serving: code %d, stderr:\n%s", c, errb.String())
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never became ready")
	}
	return nil, nil, nil
}

// sigterm asks the daemon (our own process) to drain and waits for exit.
func sigterm(t *testing.T, code <-chan int) int {
	t.Helper()
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case c := <-code:
		return c
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not exit after SIGTERM")
		return -1
	}
}

// TestDaemonLifecycle boots llbpd, runs one tiny real job through the
// HTTP API, and shuts it down with a real SIGTERM.
func TestDaemonLifecycle(t *testing.T) {
	dir := t.TempDir()
	addrFile := filepath.Join(dir, "addr")
	cl, code, stdout := startDaemon(t,
		"-addr-file", addrFile,
		"-j", "2",
		"-journal", filepath.Join(dir, "llbpd.journal"),
	)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	if err := cl.Health(ctx); err != nil {
		t.Fatalf("healthz: %v", err)
	}
	raw, err := os.ReadFile(addrFile)
	if err != nil || len(raw) == 0 {
		t.Errorf("addr-file: %q, %v", raw, err)
	}
	if !strings.Contains(stdout.String(), "llbpd listening on ") {
		t.Errorf("stdout = %q, want listening banner", stdout.String())
	}

	st, err := cl.SubmitWait(ctx, service.JobRequest{
		Schema: service.JobSchema,
		Cells: []experiments.CellSpec{
			{Workload: "Tomcat", Predictor: "64k", Warmup: 1_000, Measure: 10_000},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	var done bool
	err = cl.Stream(ctx, st.ID, true, func(ev service.StreamEvent) error {
		if ev.Type == "done" {
			done = ev.State == service.StateDone && ev.Completed == 1
		}
		return nil
	})
	if err != nil || !done {
		t.Fatalf("stream: err=%v done=%v", err, done)
	}
	if c := sigterm(t, code); c != 0 {
		t.Errorf("exit code after drain = %d", c)
	}
	if _, err := os.Stat(filepath.Join(dir, "llbpd.journal.jobs")); err != nil {
		t.Errorf("job log missing after drain: %v", err)
	}
}

// TestDaemonBadFlags: flag errors and unusable listen addresses exit
// non-zero without serving.
func TestDaemonBadFlags(t *testing.T) {
	var out, errb bytes.Buffer
	if c := run([]string{"-no-such-flag"}, &out, &errb, nil); c != 2 {
		t.Errorf("bad flag: code %d, want 2", c)
	}
	if c := run([]string{"-addr", "256.0.0.1:bogus"}, &out, &errb, nil); c != 1 {
		t.Errorf("bad addr: code %d, want 1", c)
	}
	if c := run([]string{"-journal", filepath.Join(t.TempDir(), "nodir", "x.journal")}, &out, &errb, nil); c != 1 {
		t.Errorf("unwritable journal: code %d, want 1", c)
	}
}

// TestDaemonObservability boots llbpd with the event log and trace file
// enabled, runs a job, and checks all four observability surfaces: the
// Prometheus /metrics, the JSON /metrics.json, /debug/jobs + /healthz,
// and — after drain — the llbp-events/1 log and the Chrome trace.
func TestDaemonObservability(t *testing.T) {
	dir := t.TempDir()
	eventsFile := filepath.Join(dir, "events.ndjson")
	traceFile := filepath.Join(dir, "trace.json")
	cl, code, _ := startDaemon(t,
		"-j", "2",
		"-events", eventsFile,
		"-tracefile", traceFile,
	)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	st, err := cl.SubmitWait(ctx, service.JobRequest{
		Schema: service.JobSchema,
		Tenant: "acme",
		Cells: []experiments.CellSpec{
			{Workload: "Tomcat", Predictor: "64k", Warmup: 1_000, Measure: 10_000},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Stream(ctx, st.ID, true, func(service.StreamEvent) error { return nil }); err != nil {
		t.Fatal(err)
	}

	promRaw, err := cl.MetricsText(ctx)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := telemetry.ParsePrometheus(promRaw)
	if err != nil {
		t.Fatalf("/metrics: %v\n%s", err, promRaw)
	}
	if v, ok := doc.Value("service_jobs_completed"); !ok || v != 1 {
		t.Errorf("prometheus service_jobs_completed = %v (present %v)", v, ok)
	}
	jsonRaw, err := cl.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if mf, err := telemetry.ReadMetricsFile(jsonRaw); err != nil || len(mf.Runs) != 1 {
		t.Errorf("/metrics.json: %+v, %v", mf, err)
	}
	jobs, err := cl.DebugJobs(ctx)
	if err != nil || len(jobs) != 1 || jobs[0].ID != st.ID {
		t.Errorf("/debug/jobs = %+v, %v", jobs, err)
	}
	h, err := cl.Healthz(ctx)
	if err != nil || h.Status != "ok" || h.Workers != 2 {
		t.Errorf("/healthz = %+v, %v", h, err)
	}

	if c := sigterm(t, code); c != 0 {
		t.Fatalf("exit code after drain = %d", c)
	}
	evRaw, err := os.ReadFile(eventsFile)
	if err != nil {
		t.Fatal(err)
	}
	events, err := telemetry.ReadEvents(evRaw)
	if err != nil {
		t.Fatalf("event log invalid: %v\n%s", err, evRaw)
	}
	seen := map[string]bool{}
	for _, ev := range events {
		seen[ev.Type] = true
		if ev.TimeUnixMS == 0 {
			t.Errorf("event %d has no timestamp: %+v", ev.Seq, ev)
		}
	}
	for _, want := range []string{telemetry.EventJobSubmitted, telemetry.EventJobClaimed, telemetry.EventJobCompleted} {
		if !seen[want] {
			t.Errorf("event log missing %s (have %v)", want, seen)
		}
	}
	trRaw, err := os.ReadFile(traceFile)
	if err != nil {
		t.Fatal(err)
	}
	var traceEvents []map[string]any
	if err := json.Unmarshal(trRaw, &traceEvents); err != nil {
		t.Fatalf("trace file invalid JSON: %v", err)
	}
	var sawJob bool
	for _, ev := range traceEvents {
		if name, _ := ev["name"].(string); strings.HasPrefix(name, "job ") {
			sawJob = true
		}
	}
	if !sawJob {
		t.Errorf("trace has no job span among %d events", len(traceEvents))
	}
}
