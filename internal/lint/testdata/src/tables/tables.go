// Package tables is the bitmask fixture: power-of-two-sized slices are
// hardware tables whose computed indices must be masked or
// modulo-reduced.
package tables

// T holds a table sized by a runtime log2 parameter.
type T struct {
	logSize int
	tbl     []uint8
}

// New allocates the table (1<<logSize entries), marking tbl as tracked.
func New(logSize int) *T {
	t := &T{logSize: logSize}
	t.tbl = make([]uint8, 1<<uint(logSize))
	return t
}

// Raw indexes with an unmasked hash — flagged.
func (t *T) Raw(pc, h uint64) uint8 {
	return t.tbl[pc^h] // want `computed index into power-of-two table tbl is not masked`
}

// Shifted indexes with an unmasked shift — flagged.
func (t *T) Shifted(pc uint64) uint8 {
	return t.tbl[pc>>2] // want `computed index into power-of-two table tbl is not masked`
}

// Masked reduces with len-1 — the canonical pattern.
func (t *T) Masked(pc, h uint64) uint8 {
	return t.tbl[(pc^h)&uint64(len(t.tbl)-1)]
}

// Mod reduces modulo the length — also fine.
func (t *T) Mod(pc uint64) uint8 {
	return t.tbl[pc%uint64(len(t.tbl))]
}

// Loops index with loop-bounded identifiers — fine.
func (t *T) Loops() int {
	n := 0
	for i := 0; i < len(t.tbl); i++ {
		n += int(t.tbl[i])
	}
	for i := range t.tbl {
		n += int(t.tbl[i])
	}
	return n
}

// Converted indexes through a conversion of a masked expression — fine.
func (t *T) Converted(pc uint64) uint8 {
	return t.tbl[int(pc&uint64(len(t.tbl)-1))]
}

const logConst = 6

// fixed has a compile-time-constant power-of-two size, enabling width
// mismatch checks.
var fixed = make([]int, 1<<logConst)

// BadMask masks to the wrong width — flagged.
func BadMask(pc uint64) int {
	return fixed[pc&((1<<5)-1)] // want `mask 0x1f does not match table fixed of size 64`
}

// GoodMask masks to exactly size-1.
func GoodMask(pc uint64) int {
	return fixed[pc&((1<<logConst)-1)]
}

// BadMod reduces modulo the wrong size — flagged.
func BadMod(pc uint64) int {
	return fixed[pc%32] // want `modulus 32 does not match table fixed of size 64`
}

// loose is not a power-of-two table; indexing it is not checked.
var loose = make([]int, 100)

// Loose is unchecked because loose is not pow2-sized.
func Loose(pc uint64) int {
	return loose[(pc^3)%100]
}

// Justified carries an allow directive for a proven-by-construction
// index the analyzer cannot see.
func (t *T) Justified(pc uint64) uint8 {
	//llbplint:allow bitmask -- pc already folded to logSize bits by the caller's hash
	return t.tbl[pc^1]
}
