package lint

import (
	"go/ast"
	"go/types"
	"strings"

	"llbp/internal/lint/analysis"
)

// Determinism flags nondeterminism sources inside simulation packages:
// wall-clock reads, global math/rand state, and iteration over maps
// (whose order Go randomizes). Simulation results must be a pure
// function of (workload seed, predictor config), or the paper's
// experiment tables stop being reproducible.
//
// Allowlisted package segments: cmd (drivers report wall-clock
// progress), harness (deadlines and backoff jitter are wall-clock by
// design), telemetry (the tracer timestamps events), service (the llbpd
// daemon and its client live in wall-clock land: Retry-After backoff,
// snapshot timestamps, drain deadlines), session (the streaming serving
// layer shares service's clock discipline: lease TTLs and write
// deadlines are wall-clock, while everything that feeds the journal or
// the output log stays input-derived — detflow enforces that boundary),
// and lint itself. Simulation results must stay a pure function of
// (workload seed, predictor config) everywhere else.
var Determinism = &analysis.Analyzer{
	Name: "determinism",
	Doc:  "forbid wall clocks, global RNG and map iteration in simulation packages",
	Run:  runDeterminism,
}

// wallClockFuncs are package-level time functions that read or depend on
// the wall clock. Conversions and constructors like time.Duration or
// time.Unix(sec, nsec) are pure and stay allowed.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTicker": true, "NewTimer": true,
}

func runDeterminism(pass *analysis.Pass) error {
	if hasSegment(pass.Pkg.Path(), "cmd", "harness", "telemetry", "service", "session", "lint") {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				checkDeterminismUse(pass, n)
			case *ast.RangeStmt:
				if t := pass.TypesInfo.TypeOf(n.X); t != nil {
					if _, ok := t.Underlying().(*types.Map); ok && !orderInsensitiveBody(pass, n) {
						pass.Reportf(n.Pos(),
							"map iteration order is nondeterministic; sort the keys first (or justify with //llbplint:allow determinism)")
					}
				}
			}
			return true
		})
	}
	return nil
}

// orderInsensitiveBody recognizes the two loop shapes whose result
// provably cannot depend on iteration order: the collect-then-sort idiom
// (a single `s = append(s, k)` statement) and the drain idiom (a single
// `delete(m, k)` statement).
func orderInsensitiveBody(pass *analysis.Pass, r *ast.RangeStmt) bool {
	if r.Body == nil || len(r.Body.List) != 1 {
		return false
	}
	switch stmt := r.Body.List[0].(type) {
	case *ast.AssignStmt:
		// s = append(s, k) — collecting keys or values for sorting.
		if len(stmt.Lhs) != 1 || len(stmt.Rhs) != 1 {
			return false
		}
		call, ok := ast.Unparen(stmt.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return false
		}
		return isBuiltinCall(pass, call, "append")
	case *ast.ExprStmt:
		// delete(m, k) — draining the map.
		call, ok := ast.Unparen(stmt.X).(*ast.CallExpr)
		if !ok {
			return false
		}
		return isBuiltinCall(pass, call, "delete")
	}
	return false
}

func isBuiltinCall(pass *analysis.Pass, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok
}

func checkDeterminismUse(pass *analysis.Pass, sel *ast.SelectorExpr) {
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() != nil {
		// Methods (e.g. (*rand.Rand).Intn on an explicitly seeded
		// generator) are the sanctioned pattern.
		return
	}
	switch fn.Pkg().Path() {
	case "time":
		if wallClockFuncs[fn.Name()] {
			pass.Reportf(sel.Pos(),
				"time.%s depends on the wall clock; simulation packages must be deterministic (derive timing from the cycle model)", fn.Name())
		}
	case "math/rand", "math/rand/v2":
		// Constructors (rand.New, rand.NewSource, rand.NewPCG, ...)
		// take an explicit seed/source and are fine; everything else at
		// package level draws from the shared, auto-seeded global.
		if !strings.HasPrefix(fn.Name(), "New") {
			pass.Reportf(sel.Pos(),
				"%s.%s uses the global auto-seeded RNG; use a rand.New(rand.NewSource(seed)) owned by the component", fn.Pkg().Path(), fn.Name())
		}
	}
}
