package service

// Cost bound for the service instrumentation (ISSUE acceptance): with
// telemetry disabled — nil Registry, nil EventLog, nil Tracer — the
// observability hooks on the service hot path must cost under 2% of the
// work they observe. The bound is derived the same way the predictor's
// telemetry bound is (bench_test.go): measure one nil-instrument
// operation, multiply by the operation count on the path, and compare
// against the measured cost of the real path — two end-to-end timings
// would be hopelessly noisy in shared CI.

import (
	"testing"
	"time"

	"llbp/internal/experiments"
	"llbp/internal/telemetry"
)

// svcTelOpsPerTick is the number of instrument operations the per-cell
// accounting path adds per progress tick with telemetry disabled: the
// cellDur.Observe in runJob. The event/span emissions are pointer-nil
// branches, cheaper still, and CellProgress itself deliberately carries
// no instruments.
const svcTelOpsPerTick = 1

// benchProgressServer boots a telemetry-configured server with one
// wedged single-cell job so its cell is tracked in the running set, and
// returns the server plus the cell key for CellProgress ticks.
func benchProgressServer(b *testing.B, reg *telemetry.Registry) (*Server, string) {
	b.Helper()
	stub := newStubRunner()
	s, err := New(Options{Runner: stub, Workers: 1, LeaseTTL: time.Hour, Registry: reg})
	if err != nil {
		b.Fatal(err)
	}
	s.Start()
	b.Cleanup(s.Kill)
	cell := testCell(999)
	if _, _, err := s.Submit(JobRequest{Schema: JobSchema, Cells: []experiments.CellSpec{cell}}); err != nil {
		b.Fatal(err)
	}
	waitStart(b, stub)
	return s, cell.Key()
}

// TestDisabledServiceTelemetryOverhead bounds the disabled-telemetry
// cost of the service hot path: one nil Histogram.Observe per progress
// tick against the measured cost of a real CellProgress tick (lease
// heartbeat included), the finest-grained unit of per-cell work the
// service performs.
func TestDisabledServiceTelemetryOverhead(t *testing.T) {
	if raceEnabled {
		t.Skip("timing bound is meaningless under the race detector")
	}
	if testing.Short() {
		t.Skip("timing test")
	}
	nilOp := testing.Benchmark(func(b *testing.B) {
		var h *telemetry.Histogram
		for i := 0; i < b.N; i++ {
			h.Observe(1)
		}
	})
	nilNs := float64(nilOp.T.Nanoseconds()) / float64(nilOp.N)
	tick := testing.Benchmark(func(b *testing.B) {
		s, key := benchProgressServer(b, nil)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.CellProgress(key, uint64(i), uint64(b.N)+1)
		}
	})
	tickNs := float64(tick.T.Nanoseconds()) / float64(tick.N)
	if tickNs == 0 {
		t.Fatal("progress benchmark did not run")
	}
	frac := svcTelOpsPerTick * nilNs / tickNs
	t.Logf("nil instrument op: %.3gns, progress tick: %.4gns, derived overhead: %.3g%%", nilNs, tickNs, frac*100)
	if frac >= 0.02 {
		t.Errorf("disabled service telemetry costs %.2f%% of a progress tick, want < 2%%", frac*100)
	}
}

// BenchmarkServiceProgressOverhead times the CellProgress tick with
// telemetry disabled and enabled side by side; CI publishes both next to
// the derived bound above.
func BenchmarkServiceProgressOverhead(b *testing.B) {
	for _, variant := range []struct {
		name string
		reg  *telemetry.Registry
	}{
		{"disabled", nil},
		{"enabled", telemetry.NewRegistry()},
	} {
		b.Run(variant.name, func(b *testing.B) {
			s, key := benchProgressServer(b, variant.reg)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.CellProgress(key, uint64(i), uint64(b.N)+1)
			}
		})
	}
}
