package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

const (
	testBuckets = 4
	testLengths = 16
	testSetSize = 16
)

func TestBucketRange(t *testing.T) {
	// 16 patterns, 4 buckets, 16 lengths: bucket b covers slots
	// [4b,4b+4) and lengths [4b,4b+4).
	cases := []struct{ lenIdx, lo, hi int }{
		{0, 0, 4}, {3, 0, 4}, {4, 4, 8}, {7, 4, 8},
		{8, 8, 12}, {11, 8, 12}, {12, 12, 16}, {15, 12, 16},
	}
	for _, c := range cases {
		lo, hi := bucketRange(c.lenIdx, testSetSize, testBuckets, testLengths)
		if lo != c.lo || hi != c.hi {
			t.Errorf("bucketRange(%d) = [%d,%d), want [%d,%d)", c.lenIdx, lo, hi, c.lo, c.hi)
		}
	}
	// Bucketing disabled: whole set.
	lo, hi := bucketRange(9, testSetSize, 0, testLengths)
	if lo != 0 || hi != testSetSize {
		t.Errorf("free-form range = [%d,%d)", lo, hi)
	}
}

func TestInsertKeepsSortedInvariant(t *testing.T) {
	s := newPatternSet(testSetSize)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 500; i++ {
		lenIdx := uint8(rng.Intn(testLengths))
		s.insert(uint32(rng.Intn(1<<13)), lenIdx, rng.Intn(2) == 0, testBuckets, testLengths)
		if !s.sorted(testBuckets, testLengths) {
			t.Fatalf("after insert %d, set violates the sorted invariant: %+v", i, s.Pats)
		}
	}
}

func TestInsertFreeFormSorted(t *testing.T) {
	s := newPatternSet(testSetSize)
	rng := rand.New(rand.NewSource(10))
	for i := 0; i < 500; i++ {
		s.insert(uint32(rng.Intn(1<<13)), uint8(rng.Intn(testLengths)), true, 0, testLengths)
		if !s.sorted(0, testLengths) {
			t.Fatalf("free-form set unsorted after insert %d: %+v", i, s.Pats)
		}
	}
}

func TestInsertPropertySortedness(t *testing.T) {
	f := func(ops []uint32, buckets uint8) bool {
		nb := int(buckets % 5) // 0..4 buckets
		if nb == 3 {
			nb = 4 // 16 % 3 != 0; keep divisible choices {0,1,2,4}
		}
		s := newPatternSet(testSetSize)
		for _, op := range ops {
			tag := op & 0x1fff
			lenIdx := uint8((op >> 13) % testLengths)
			taken := op&(1<<20) != 0
			s.insert(tag, lenIdx, taken, nb, testLengths)
			if !s.sorted(nb, testLengths) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestInsertRefreshesExistingPattern(t *testing.T) {
	s := newPatternSet(testSetSize)
	s.insert(0x123, 2, true, testBuckets, testLengths)
	// Strengthen the pattern.
	for i := range s.Pats {
		if s.Pats[i].Valid {
			s.Pats[i].Ctr = 3
		}
	}
	// Re-inserting the identical (tag, len) resets to weak rather than
	// duplicating.
	s.insert(0x123, 2, false, testBuckets, testLengths)
	n := 0
	for _, p := range s.Pats {
		if p.Valid {
			n++
			if p.Ctr != -1 {
				t.Errorf("refreshed ctr = %d, want -1", p.Ctr)
			}
		}
	}
	if n != 1 {
		t.Errorf("duplicate pattern created: %d valid", n)
	}
}

func TestInsertEvictsLeastConfident(t *testing.T) {
	s := newPatternSet(testSetSize)
	// Fill bucket 0 (lengths 0..3).
	for i := 0; i < 4; i++ {
		s.insert(uint32(0x100+i), uint8(i), true, testBuckets, testLengths)
	}
	// Make slots confident except the pattern with tag 0x102.
	for i := range s.Pats[:4] {
		if s.Pats[i].Tag == 0x102 {
			s.Pats[i].Ctr = 0 // weak
		} else {
			s.Pats[i].Ctr = 3 // saturated
		}
	}
	s.insert(0x999, 1, true, testBuckets, testLengths)
	for _, p := range s.Pats[:4] {
		if p.Valid && p.Tag == 0x102 {
			t.Error("least-confident pattern was not the victim")
		}
	}
	found := false
	for _, p := range s.Pats[:4] {
		if p.Valid && p.Tag == 0x999 {
			found = true
		}
	}
	if !found {
		t.Error("new pattern missing after insert")
	}
}

func TestConfidentCount(t *testing.T) {
	s := newPatternSet(testSetSize)
	if s.ConfidentCount(3) != 0 {
		t.Error("empty set must have zero confident patterns")
	}
	s.insert(0x1, 0, true, testBuckets, testLengths)
	s.insert(0x2, 4, true, testBuckets, testLengths)
	s.insert(0x3, 8, true, testBuckets, testLengths)
	if s.ConfidentCount(3) != 0 {
		t.Error("weak patterns must not count as confident")
	}
	for i := range s.Pats {
		if s.Pats[i].Valid {
			s.Pats[i].Ctr = 3
		}
	}
	if got := s.ConfidentCount(3); got != 3 {
		t.Errorf("ConfidentCount = %d, want 3", got)
	}
	// Saturation at max.
	s.insert(0x4, 12, true, testBuckets, testLengths)
	for i := range s.Pats {
		if s.Pats[i].Valid {
			s.Pats[i].Ctr = -4
		}
	}
	if got := s.ConfidentCount(3); got != 3 {
		t.Errorf("ConfidentCount must saturate at 3, got %d", got)
	}
}

func TestPatternConfident(t *testing.T) {
	cases := []struct {
		ctr  int8
		want bool
	}{{0, false}, {-1, false}, {1, false}, {-2, false}, {2, true}, {3, true}, {-3, true}, {-4, true}}
	for _, c := range cases {
		p := Pattern{Ctr: c.ctr, Valid: true}
		if got := p.Confident(); got != c.want {
			t.Errorf("ctr %d confident = %v, want %v", c.ctr, got, c.want)
		}
	}
	inv := Pattern{Ctr: 3, Valid: false}
	if inv.Confident() {
		t.Error("invalid pattern cannot be confident")
	}
}

func TestClone(t *testing.T) {
	s := newPatternSet(4)
	s.insert(0x42, 0, true, 0, testLengths)
	c := s.clone()
	c.Pats[0].Ctr = 3
	if s.Pats[0].Ctr == 3 {
		t.Error("clone must deep-copy patterns")
	}
}
