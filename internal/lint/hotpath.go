package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"llbp/internal/lint/analysis"
	"llbp/internal/lint/dataflow"
)

// Hotpath walks the static call graph from the per-branch entry points —
// the Predict and UpdateWithTarget methods of a type named Predictor in
// a package whose import path ends in "core" — and reports every
// allocation and every map operation reachable from them:
//
//   - make / new / append builtins, &T{...} literals, slice and map
//     composite literals, closures, string concatenation, and
//     string<->[]byte/[]rune conversions (allocation);
//   - map index reads and writes, range-over-map, delete (map access —
//     both an allocation risk on growth and a hash+probe per branch).
//
// The packed hot-path layouts (history.Engine words, pattern-set lanes,
// the CD/PB compare lanes) exist precisely so the steady-state per-branch
// work is flat array arithmetic; this analyzer keeps allocations and map
// probes from creeping back in behind a call boundary. Cold layers
// reachable from the entry points but off the steady state — miss-driven
// structure growth, the fully associative ablations — carry
// //llbplint:allow hotpath justifications at the site; anything new
// fails the run. The assert package is exempt: its failure formatting is
// the designated can't-happen path and is debug-gated.
//
// Findings carry the root→site call chain in Diagnostic.Path.
var Hotpath = &analysis.Analyzer{
	Name:       "hotpath",
	Doc:        "no allocation or map access reachable from core.Predictor.Predict/UpdateWithTarget (call-graph depth)",
	RunProgram: runHotpath,
}

// hotpathRoots are the per-branch entry-point method names.
var hotpathRoots = map[string]bool{"Predict": true, "UpdateWithTarget": true}

func runHotpath(pass *analysis.ProgramPass) error {
	prog := dataflow.Build(pass.Fset, pass.Packages)

	// Seed the worklist with the entry points, in deterministic order.
	type visit struct {
		fn   *dataflow.Func
		path []analysis.PathStep
	}
	var queue []visit
	seen := map[*dataflow.Func]bool{}
	for _, f := range prog.OrderedFuncs() {
		if !isHotpathRoot(f.Obj) {
			continue
		}
		seen[f] = true
		queue = append(queue, visit{fn: f, path: []analysis.PathStep{
			dataflow.Step(f.Decl.Name.Pos(), "hot-path root %s", f.Name()),
		}})
	}

	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		reportHotpathSites(pass, v.fn, v.path)
		for _, callee := range v.fn.Callees {
			if seen[callee] || hotpathExempt(callee) {
				continue
			}
			seen[callee] = true
			queue = append(queue, visit{
				fn:   callee,
				path: dataflow.AppendPath(v.path, dataflow.Step(callee.Decl.Name.Pos(), "calls %s", callee.Name())),
			})
		}
	}
	return nil
}

// isHotpathRoot reports whether fn is core.Predictor.Predict or
// core.Predictor.UpdateWithTarget.
func isHotpathRoot(fn *types.Func) bool {
	if !hotpathRoots[fn.Name()] || fn.Pkg() == nil || lastSegment(fn.Pkg().Path()) != "core" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Predictor"
}

// hotpathExempt cuts traversal at packages whose bodies are off the
// contract: assert's failure formatting is the designated can't-happen
// path (no-op in release builds for the Failf family).
func hotpathExempt(f *dataflow.Func) bool {
	return f.Obj.Pkg() != nil && lastSegment(f.Obj.Pkg().Path()) == "assert"
}

// reportHotpathSites scans one reachable function body for allocation
// and map-access sites.
func reportHotpathSites(pass *analysis.ProgramPass, fn *dataflow.Func, path []analysis.PathStep) {
	info := fn.Pkg.TypesInfo
	report := func(pos token.Pos, format string, args ...any) {
		d := analysis.Diagnostic{Pos: pos, Path: path}
		d.Message = fmt.Sprintf("hot path (%s): %s", fn.Name(), fmt.Sprintf(format, args...))
		pass.Report(d)
	}
	ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
				if b, ok := info.Uses[id].(*types.Builtin); ok {
					switch b.Name() {
					case "make", "new", "append":
						report(n.Pos(), "allocates (%s)", b.Name())
					case "delete":
						report(n.Pos(), "map access (delete)")
					}
					return true
				}
			}
			if tv, ok := info.Types[n.Fun]; ok && tv.IsType() && len(n.Args) == 1 {
				if allocatingConversion(tv.Type, info.TypeOf(n.Args[0])) {
					report(n.Pos(), "allocates (string/slice conversion)")
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					report(n.Pos(), "allocates (&composite literal)")
				}
			}
		case *ast.CompositeLit:
			switch info.TypeOf(n).Underlying().(type) {
			case *types.Slice:
				report(n.Pos(), "allocates (slice literal)")
			case *types.Map:
				report(n.Pos(), "allocates (map literal)")
			}
		case *ast.FuncLit:
			report(n.Pos(), "allocates (closure)")
			return false // the literal's body is not on this call path unless invoked
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isStringType(info.TypeOf(n)) {
				report(n.Pos(), "allocates (string concatenation)")
			}
		case *ast.IndexExpr:
			if _, ok := info.TypeOf(n.X).Underlying().(*types.Map); ok {
				report(n.Pos(), "map access (index)")
			}
		case *ast.RangeStmt:
			if _, ok := info.TypeOf(n.X).Underlying().(*types.Map); ok {
				report(n.X.Pos(), "map access (range)")
			}
		}
		return true
	})
}

// allocatingConversion reports string<->[]byte / []rune conversions,
// which copy their operand.
func allocatingConversion(dst, src types.Type) bool {
	if dst == nil || src == nil {
		return false
	}
	dstStr, srcStr := isStringType(dst), isStringType(src)
	_, dstSlice := dst.Underlying().(*types.Slice)
	_, srcSlice := src.Underlying().(*types.Slice)
	return (dstStr && srcSlice) || (srcStr && dstSlice)
}
