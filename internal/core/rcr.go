// Package core implements the Last-Level Branch Predictor (LLBP), the
// paper's contribution (§V): a large-capacity, context-organized pattern
// store backing an unmodified TAGE-SC-L predictor.
//
// The four hardware structures map to types in this package:
//
//   - RCR (rolling context register): hashes the PCs of recent
//     unconditional branches into the current context ID (CCID) and a
//     prefetch context ID computed D unconditional branches ahead.
//   - CD (context directory): a set-associative tag array mapping context
//     IDs to pattern sets, with confidence-based replacement.
//   - LLBP storage: the bulk pattern-set array (owned by the CD entries in
//     this model; the paper's direct-mapped layout is an implementation
//     detail of the physical array).
//   - PB (pattern buffer): a small, set-associative, LRU-managed cache of
//     pattern sets close to the core, fed by prefetches.
//
// Predictor composes all of the above with a tsl.Predictor and implements
// the longest-match arbitration between the two (§V-B).
package core

import (
	"fmt"

	"llbp/internal/assert"
	"llbp/internal/trace"
)

// ContextType selects which branch types feed the rolling context register
// — the Figure 13 design-space axis.
type ContextType uint8

const (
	// CtxUncond hashes all unconditional branches (jumps, calls,
	// returns; the paper's choice).
	CtxUncond ContextType = iota
	// CtxCallRet hashes only calls and returns.
	CtxCallRet
	// CtxAll hashes every branch, conditional included.
	CtxAll
)

// String returns the Figure 13 label of the context type.
func (t ContextType) String() string {
	switch t {
	case CtxUncond:
		return "Uncond"
	case CtxCallRet:
		return "Call/Ret"
	case CtxAll:
		return "All"
	default:
		return fmt.Sprintf("ContextType(%d)", uint8(t))
	}
}

// Feeds reports whether a branch of type bt (with outcome taken)
// contributes to this context history.
func (t ContextType) Feeds(bt trace.BranchType, taken bool) bool {
	switch t {
	case CtxUncond:
		return bt.IsUnconditional()
	case CtxCallRet:
		return bt.IsCallOrReturn()
	case CtxAll:
		return bt.IsUnconditional() || taken
	default:
		return false
	}
}

// RCR is the rolling context register (§V-C, Figure 8): a shift register of
// the PCs of the last W+D context-feeding branches. The current context ID
// (CCID) hashes the W entries that exclude the D most recent; the prefetch
// CID hashes the most recent W. When D more context-feeding branches
// execute, the prefetch CID becomes the CCID — giving the prefetcher a
// D-branch head start.
type RCR struct {
	pcs   []uint64 // ring buffer, len W+D
	head  int      // index of most recent PC
	w     int
	d     int
	bits  int  // CID width in bits
	shift bool // position-dependent shifting (§V-E3); false = plain XOR ablation

	// Cached window hashes, refreshed on Push/Restore. The register
	// contents only change there, while CCID is read every prediction —
	// caching turns the per-branch read into a field load, as in hardware
	// where the CID registers are latched once per context-feeding branch.
	ccid uint64
	pcid uint64

	// Unfolded 64-bit window hashes (the XOR of position-shifted terms
	// before the CID-width fold), maintained incrementally on Push: one
	// element enters each window, one leaves, and every survivor's
	// position shift grows by exactly 2 — so the whole W-term hash rolls
	// with two XORs and a shift. Valid only while rolling is (see
	// NewRCR); otherwise Push recomputes from scratch.
	hc64, hp64 uint64
	rolling    bool
}

// NewRCR returns a rolling context register with hash window w, prefetch
// distance d, and cidBits-wide context IDs. shifted selects the paper's
// position-shifted XOR hash (§V-E3); passing false gives the plain-XOR
// ablation in which repeated PCs cancel.
func NewRCR(w, d, cidBits int, shifted bool) *RCR {
	if w <= 0 || w > 64 {
		panic(fmt.Sprintf("core: RCR window %d out of range [1,64]", w))
	}
	if d < 0 || d > 64 {
		panic(fmt.Sprintf("core: RCR distance %d out of range [0,64]", d))
	}
	if cidBits < 4 || cidBits > 63 {
		panic(fmt.Sprintf("core: cidBits %d out of range [4,63]", cidBits))
	}
	r := &RCR{
		pcs:   make([]uint64, w+d),
		w:     w,
		d:     d,
		bits:  cidBits,
		shift: shifted,
		// The O(1) roll needs every survivor's shift to grow by exactly
		// 2 per push, which the %48 shift wrap breaks once a window
		// position reaches 24; plain-XOR hashing has no shifts at all,
		// so it always rolls.
		rolling: !shifted || 2*(w-1) < 48,
	}
	r.refresh()
	return r
}

// Push records a new context-feeding branch PC.
func (r *RCR) Push(pc uint64) {
	next := r.head + 1
	if next >= len(r.pcs) {
		next = 0
	}
	if !r.rolling {
		r.head = next
		r.pcs[next] = pc
		r.refresh()
		return
	}
	// The slot being overwritten holds the oldest element — the one
	// leaving the CCID window; the element leaving the prefetch window
	// (old position W-1) is read before any overwrite so the d==0 case
	// (where the two coincide) stays correct.
	exitC := r.pcs[next]
	exitP := r.at(r.head, r.w-1)
	r.head = next
	r.pcs[next] = pc
	enterC := r.at(next, r.d) // the PC pushed D branches ago; pc itself when d==0
	if r.shift {
		last := uint(2 * (r.w - 1))
		r.hp64 = (pc >> 1) ^ ((r.hp64 ^ ((exitP >> 1) << last)) << 2)
		r.hc64 = (enterC >> 1) ^ ((r.hc64 ^ ((exitC >> 1) << last)) << 2)
	} else {
		r.hp64 ^= (pc >> 1) ^ (exitP >> 1)
		r.hc64 ^= (enterC >> 1) ^ (exitC >> 1)
	}
	r.ccid = r.fold(r.hc64)
	r.pcid = r.fold(r.hp64)
}

// at returns the PC `back` positions behind ring index head.
func (r *RCR) at(head, back int) uint64 {
	pos := head - back
	for pos < 0 {
		pos += len(r.pcs)
	}
	return r.pcs[pos]
}

// fold compresses a 64-bit window mix down to the CID width.
func (r *RCR) fold(h uint64) uint64 {
	h ^= h >> uint(r.bits)
	h ^= h >> uint(2*r.bits)
	return h & (uint64(1)<<uint(r.bits) - 1)
}

// refresh recomputes the unfolded window hashes from the ring buffer and
// re-latches the cached CID registers (construction, Restore, and the
// non-rolling wide-window fallback).
func (r *RCR) refresh() {
	r.hc64 = r.windowXor(r.d)
	r.hp64 = r.windowXor(0)
	r.ccid = r.fold(r.hc64)
	r.pcid = r.fold(r.hp64)
}

// windowXor computes the unfolded hash of the W PCs starting `offset`
// branches before the most recent one — the from-scratch reference the
// rolling update maintains incrementally.
func (r *RCR) windowXor(offset int) uint64 {
	var h uint64
	for i := 0; i < r.w; i++ {
		pc := r.at(r.head, offset+i) >> 1
		if r.shift {
			pc <<= uint(2*i) % 48
		}
		h ^= pc
	}
	return h
}

// hashWindow hashes the W PCs starting at `offset` branches before the most
// recent one. Position i (0 = newest in the window) is shifted by 2*i so
// repeated addresses in tight loops do not cancel (§V-E3).
func (r *RCR) hashWindow(offset int) uint64 {
	return r.fold(r.windowXor(offset))
}

// CCID returns the current context ID (excluding the D most recent
// context-feeding branches).
func (r *RCR) CCID() uint64 { return r.ccid }

// PrefetchCID returns the context ID that will become current after D more
// context-feeding branches.
func (r *RCR) PrefetchCID() uint64 { return r.pcid }

// Snapshot captures the register for checkpoint/rollback tests.
func (r *RCR) Snapshot() []uint64 {
	out := make([]uint64, len(r.pcs))
	for i := range out {
		pos := r.head - i
		for pos < 0 {
			pos += len(r.pcs)
		}
		out[i] = r.pcs[pos]
	}
	return out
}

// Restore rewinds the register to a snapshot taken with Snapshot.
func (r *RCR) Restore(s []uint64) {
	if len(s) != len(r.pcs) {
		assert.Failf("core: RCR snapshot length %d != %d", len(s), len(r.pcs))
		return
	}
	r.head = len(r.pcs) - 1
	for i, pc := range s {
		r.pcs[r.head-i] = pc
	}
	r.refresh()
}

// Window returns (W, D).
func (r *RCR) Window() (w, d int) { return r.w, r.d }
