//go:build !race

package llbp

// raceEnabled reports whether the race detector instrumented this build;
// timing-sensitive tests skip themselves when it did.
const raceEnabled = false
