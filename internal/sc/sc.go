// Package sc implements the statistical corrector of TAGE-SC-L: a
// GEHL-style ensemble of signed-counter tables indexed by the branch PC
// hashed with several global-history lengths, plus a bias table. The
// corrector observes TAGE's prediction and flips it when the weighted vote
// disagrees with sufficient confidence — catching statistically biased
// branches that partial matching mispredicts (§II-B).
package sc

import (
	"fmt"

	"llbp/internal/assert"
	"llbp/internal/history"
	"llbp/internal/telemetry"
)

// Config parameterizes the corrector.
type Config struct {
	// HistLengths are the global-history lengths of the GEHL components
	// (0 means a PC-only component).
	HistLengths []int
	// LogEntries is log2 the entry count of every component table.
	LogEntries int
	// CounterBits is the signed counter width.
	CounterBits int
	// DisableLocal removes the local-history component.
	DisableLocal bool
	// DisableIMLI removes the inner-most-loop-iteration component.
	DisableIMLI bool
}

// DefaultConfig returns the corrector configuration used by the modelled
// 64K TSL (sizes chosen so the total predictor budget lands at ~64KiB).
func DefaultConfig() Config {
	return Config{
		HistLengths: []int{0, 3, 8, 16, 27, 44},
		LogEntries:  10,
		CounterBits: 6,
	}
}

// Scaled returns the configuration with component tables scaled by
// 2^logFactor (used by the Inf TSL construction, which grows the auxiliary
// components too).
func (c Config) Scaled(logFactor int) Config {
	out := c
	out.LogEntries += logFactor
	return out
}

// Corrector is a statistical corrector instance.
type Corrector struct {
	cfg    Config
	tables [][]int8
	bias   []int8
	// Value slice: Push walks every register per branch (see
	// history.NewFoldedValue). Zero-length components are no-op registers
	// (OrigLength 0) rather than nils.
	folds  []history.Folded
	ghr    *history.Global

	// Dynamic update threshold (Seznec's adaptive threshold): the
	// corrector trains when |sum| < threshold or on a misprediction, and
	// the threshold adapts to keep flips profitable.
	threshold    int
	thresholdCtr int8

	// Local-history and IMLI components (TAGE-SC-L's corrector votes
	// with more than global history).
	local *localState
	imli  *imliState

	// Scratch between Predict and Update.
	lastSum  int
	lastIdx  []uint32
	lastBias uint32
	lastTage bool
	lastFlip bool
	lastPC   uint64

	// Cumulative reversal count and its telemetry mirror.
	reversals    uint64
	telReversals *telemetry.Counter
}

// AttachTelemetry wires the corrector's reversal counter to reg (nil
// detaches). Implements telemetry.Attachable.
func (c *Corrector) AttachTelemetry(reg *telemetry.Registry) {
	c.telReversals = reg.Counter("sc_reversals")
}

// Reversals returns how many predictions the corrector has flipped.
func (c *Corrector) Reversals() uint64 { return c.reversals }

// New constructs a corrector. The corrector maintains its own global
// history (updated via Push) so it can be composed with any primary
// predictor.
func New(cfg Config) (*Corrector, error) {
	if len(cfg.HistLengths) == 0 {
		return nil, fmt.Errorf("sc: no components configured")
	}
	if cfg.LogEntries < 4 || cfg.LogEntries > 24 {
		return nil, fmt.Errorf("sc: logEntries %d out of range [4,24]", cfg.LogEntries)
	}
	if cfg.CounterBits < 2 || cfg.CounterBits > 7 {
		return nil, fmt.Errorf("sc: counterBits %d out of range [2,7]", cfg.CounterBits)
	}
	c := &Corrector{
		cfg:       cfg,
		ghr:       history.NewGlobal(),
		threshold: 5,
		lastIdx:   make([]uint32, len(cfg.HistLengths)),
	}
	c.tables = make([][]int8, len(cfg.HistLengths))
	c.folds = make([]history.Folded, len(cfg.HistLengths))
	for i, h := range cfg.HistLengths {
		c.tables[i] = make([]int8, 1<<uint(cfg.LogEntries))
		if h > 0 {
			c.folds[i] = history.NewFoldedValue(h, cfg.LogEntries)
		}
	}
	c.bias = make([]int8, 1<<uint(cfg.LogEntries))
	if !cfg.DisableLocal {
		c.local = newLocalState(8, 11, cfg.LogEntries)
	}
	if !cfg.DisableIMLI {
		c.imli = newIMLIState(cfg.LogEntries)
	}
	return c, nil
}

func (c *Corrector) mask() uint32 { return uint32(1)<<uint(c.cfg.LogEntries) - 1 }

func (c *Corrector) ctrMax() int8 { return int8(1)<<(c.cfg.CounterBits-1) - 1 }
func (c *Corrector) ctrMin() int8 { return -int8(1) << (c.cfg.CounterBits - 1) }

// Correct computes the corrected prediction given TAGE's prediction for
// pc. It must be followed by exactly one Update for the same branch.
func (c *Corrector) Correct(pc uint64, tageTaken bool, tageConfident bool) bool {
	sum := 0
	for i := range c.tables {
		h := c.folds[i].Value()
		idx := uint32((pc>>2)^(pc>>7)^h^uint64(i)*0x9e37) & c.mask()
		c.lastIdx[i] = idx
		sum += int(c.tables[i][idx])
	}
	tb := uint64(0)
	if tageTaken {
		tb = 1
	}
	c.lastBias = uint32((pc>>2)<<1|tb) & c.mask()
	sum += 2*int(c.bias[c.lastBias]) + 1
	if c.local != nil {
		sum += c.local.vote(pc)
	}
	if c.imli != nil {
		sum += c.imli.vote(pc)
	}
	c.lastSum = sum
	c.lastTage = tageTaken
	c.lastPC = pc
	scTaken := sum >= 0
	// Flip only when the corrector is confident and TAGE is not: a
	// confident TAGE provider usually beats the corrector.
	flip := scTaken != tageTaken && abs(sum) >= c.threshold && !tageConfident
	c.lastFlip = flip
	if flip {
		c.reversals++
		c.telReversals.Inc()
		return scTaken
	}
	return tageTaken
}

// Update trains the corrector with the resolved direction and adapts the
// flip threshold. The branch target is unknown here; UpdateWithTarget
// feeds the IMLI component when the caller has it.
func (c *Corrector) Update(pc uint64, taken bool) {
	c.UpdateWithTarget(pc, pc+4, taken)
}

// UpdateWithTarget is Update plus the resolved branch target (backward
// targets drive the IMLI loop-iteration counter).
func (c *Corrector) UpdateWithTarget(pc, target uint64, taken bool) {
	scTaken := c.lastSum >= 0
	finalTaken := c.lastTage
	if c.lastFlip {
		finalTaken = scTaken
	}
	// Adaptive threshold: when a flip decision was borderline, tune the
	// threshold toward profitable flipping (Seznec's dynamic threshold
	// fitting).
	if scTaken != c.lastTage && abs(c.lastSum) >= c.threshold-2 && abs(c.lastSum) <= c.threshold+2 {
		if finalTaken == taken {
			if c.thresholdCtr > -64 {
				c.thresholdCtr--
			}
		} else if c.thresholdCtr < 63 {
			c.thresholdCtr++
		}
		if c.thresholdCtr >= 32 && c.threshold < 127 {
			c.threshold++
			c.thresholdCtr = 0
		} else if c.thresholdCtr <= -32 && c.threshold > 3 {
			c.threshold--
			c.thresholdCtr = 0
		}
	}
	// GEHL update rule: train on mispredictions and low-confidence
	// correct predictions.
	if finalTaken != taken || abs(c.lastSum) < c.threshold*4 {
		for i := range c.tables {
			e := &c.tables[i][c.lastIdx[i]]
			if taken {
				if *e < c.ctrMax() {
					*e++
				}
			} else if *e > c.ctrMin() {
				*e--
			}
		}
		e := &c.bias[c.lastBias]
		if taken {
			if *e < c.ctrMax() {
				*e++
			}
		} else if *e > c.ctrMin() {
			*e--
		}
		if c.local != nil {
			c.local.train(pc, taken, c.ctrMax(), c.ctrMin())
		}
	}
	// The IMLI loop counter tracks control flow regardless of the
	// training filter.
	if c.imli != nil {
		c.imli.train(pc, target, taken, c.ctrMax(), c.ctrMin())
	}
}

// Push advances the corrector's global history by one branch outcome.
func (c *Corrector) Push(taken bool) {
	c.ghr.Push(taken)
	in := c.ghr.Bit(0)
	for i := range c.folds {
		f := &c.folds[i]
		f.UpdateBits(in, c.ghr.Bit(f.OrigLength))
	}
}

// Flipped reports whether the last Correct call overrode TAGE.
func (c *Corrector) Flipped() bool { return c.lastFlip }

// StorageBits returns the storage cost in bits.
func (c *Corrector) StorageBits() int {
	perTable := c.cfg.CounterBits << uint(c.cfg.LogEntries)
	n := len(c.tables) + 1 // components + bias
	if c.local != nil {
		n++ // local counter bank
	}
	if c.imli != nil {
		n++ // IMLI counter bank
	}
	bits := perTable * n
	if c.local != nil {
		bits += len(c.local.histories) * c.local.histBits
	}
	return bits
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// HistoryCheckpoint captures the corrector's speculative history state.
type HistoryCheckpoint struct {
	ghr   history.Global
	folds []uint64
}

// CheckpointHistory snapshots the corrector's global and folded histories.
func (c *Corrector) CheckpointHistory() *HistoryCheckpoint {
	cp := &HistoryCheckpoint{ghr: c.ghr.Snapshot(), folds: make([]uint64, len(c.folds))}
	for i := range c.folds {
		cp.folds[i] = c.folds[i].Snapshot()
	}
	return cp
}

// RestoreHistory rewinds the corrector's histories to a checkpoint.
func (c *Corrector) RestoreHistory(cp *HistoryCheckpoint) {
	if len(cp.folds) != len(c.folds) {
		assert.Failf("sc: checkpoint for %d components restored into %d", len(cp.folds), len(c.folds))
		return
	}
	c.ghr.Restore(cp.ghr)
	for i := range c.folds {
		c.folds[i].Restore(cp.folds[i])
	}
}
