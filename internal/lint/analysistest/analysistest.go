// Package analysistest runs llbplint analyzers over fixture packages and
// checks their diagnostics against // want "regexp" comments, mirroring
// the golang.org/x/tools/go/analysis/analysistest contract on the
// standard library only.
//
// Fixtures live under <testdata>/src/<importpath>/*.go. Imports between
// fixture packages resolve within that tree; all other imports resolve
// through export data produced by `go list -export` (so fixtures may use
// time, math/rand, etc. without network access). A line may carry any
// number of want comments:
//
//	x := tbl[pc^h] // want "not masked"
//
// Every reported diagnostic must be matched by a want on its line and
// every want must match a diagnostic, or the test fails. Diagnostics for
// malformed //llbplint:allow directives participate like any other.
//
// A want may be scoped to one analyzer by prefixing the pattern with
// its name:
//
//	keys := collect(m) // want detflow:"reaches determinism-critical sink"
//
// Scoped wants let one fixture package serve several analyzers: a
// prefixed want is consulted only when the named analyzer is under
// test, and it matches only diagnostics of that category. RunProgram —
// the whole-program counterpart of Run — considers *only* prefixed
// wants, because program analyzers load shared fixture packages whose
// unprefixed wants belong to the per-package analyzers.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"llbp/internal/lint/analysis"
	"llbp/internal/lint/load"
)

// Run loads each fixture package and applies the analyzer, reporting
// mismatches between diagnostics and want comments through t.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	srcRoot := filepath.Join(testdata, "src")
	ld, err := newLoader(srcRoot)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	for _, path := range pkgPaths {
		pkg, err := ld.load(path)
		if err != nil {
			t.Fatalf("analysistest: loading %s: %v", path, err)
		}
		sup := analysis.CollectSuppressions(ld.fset, pkg.files)
		diags, err := analysis.Run(a, ld.fset, pkg.files, pkg.types, pkg.info, sup)
		if err != nil {
			t.Fatalf("analysistest: running %s on %s: %v", a.Name, path, err)
		}
		diags = append(diags, sup.Problems()...)
		names := map[string]bool{a.Name: true, analysis.DirectiveCategory: true}
		checkWants(t, ld.fset, pkg.files, diags, names, false)
	}
}

// RunProgram loads all fixture packages into one shared type universe,
// applies a whole-program analyzer once, and checks its diagnostics
// against analyzer-prefixed want comments across every loaded file. The
// surviving diagnostics are returned so callers can additionally assert
// on evidence paths.
func RunProgram(t *testing.T, testdata string, a *analysis.Analyzer, pkgPaths ...string) []analysis.Diagnostic {
	t.Helper()
	srcRoot := filepath.Join(testdata, "src")
	ld, err := newLoader(srcRoot)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	var pkgs []*analysis.ProgramPkg
	var files []*ast.File
	for _, path := range pkgPaths {
		pkg, err := ld.load(path)
		if err != nil {
			t.Fatalf("analysistest: loading %s: %v", path, err)
		}
		pkgs = append(pkgs, &analysis.ProgramPkg{
			Path:      path,
			Files:     pkg.files,
			Pkg:       pkg.types,
			TypesInfo: pkg.info,
		})
		files = append(files, pkg.files...)
	}
	sup := analysis.CollectSuppressions(ld.fset, files)
	diags, err := analysis.RunProgram(a, ld.fset, pkgs, sup)
	if err != nil {
		t.Fatalf("analysistest: running %s: %v", a.Name, err)
	}
	names := map[string]bool{a.Name: true, analysis.DirectiveCategory: true}
	checkWants(t, ld.fset, files, diags, names, true)
	return diags
}

// fixturePkg is one loaded fixture package.
type fixturePkg struct {
	files []*ast.File
	types *types.Package
	info  *types.Info
}

// loader resolves fixture-local packages from srcRoot and everything
// else through go list export data, memoizing both.
type loader struct {
	srcRoot string
	fset    *token.FileSet
	pkgs    map[string]*fixturePkg
	std     types.Importer
}

func newLoader(srcRoot string) (*loader, error) {
	ld := &loader{
		srcRoot: srcRoot,
		fset:    token.NewFileSet(),
		pkgs:    map[string]*fixturePkg{},
	}
	ext, err := ld.externalImports()
	if err != nil {
		return nil, err
	}
	exports, err := load.ExportIndex("", ext...)
	if err != nil {
		return nil, err
	}
	ld.std = load.Importer(ld.fset, exports)
	return ld, nil
}

// externalImports walks the whole fixture tree and collects import paths
// that do not resolve inside it, so one go list call covers them all.
func (ld *loader) externalImports() ([]string, error) {
	seen := map[string]bool{}
	err := filepath.WalkDir(ld.srcRoot, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		f, err := parser.ParseFile(token.NewFileSet(), path, nil, parser.ImportsOnly)
		if err != nil {
			return err
		}
		for _, imp := range f.Imports {
			p, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if fi, err := os.Stat(filepath.Join(ld.srcRoot, p)); err == nil && fi.IsDir() {
				continue // fixture-local
			}
			seen[p] = true
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make([]string, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Strings(out)
	return out, nil
}

// Import implements types.Importer over the fixture tree + export data.
func (ld *loader) Import(path string) (*types.Package, error) {
	if pkg, ok := ld.pkgs[path]; ok {
		return pkg.types, nil
	}
	if fi, err := os.Stat(filepath.Join(ld.srcRoot, path)); err == nil && fi.IsDir() {
		pkg, err := ld.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.types, nil
	}
	return ld.std.Import(path)
}

// load parses and type-checks one fixture package.
func (ld *loader) load(path string) (*fixturePkg, error) {
	if pkg, ok := ld.pkgs[path]; ok {
		return pkg, nil
	}
	dir := filepath.Join(ld.srcRoot, path)
	names, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil || len(names) == 0 {
		return nil, fmt.Errorf("no fixture files in %s", dir)
	}
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(ld.fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := load.NewInfo()
	conf := types.Config{Importer: ld}
	tpkg, err := conf.Check(path, ld.fset, files, info)
	if err != nil {
		return nil, err
	}
	pkg := &fixturePkg{files: files, types: tpkg, info: info}
	ld.pkgs[path] = pkg
	return pkg, nil
}

// want is one expectation parsed from a comment.
type want struct {
	file string
	line int
	// prefix scopes the want to one analyzer ("" = the analyzer under
	// test, whichever it is).
	prefix  string
	re      *regexp.Regexp
	raw     string
	matched bool
}

var wantTextRE = regexp.MustCompile(`want\s+(.*)$`)
var wantQuoteRE = regexp.MustCompile("(?:([a-zA-Z][a-zA-Z0-9]*):)?(`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\")")

// parseWants extracts want expectations from every comment.
func parseWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*want {
	t.Helper()
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				m := wantTextRE.FindStringSubmatch(strings.TrimSpace(text))
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, q := range wantQuoteRE.FindAllStringSubmatch(m[1], -1) {
					s, err := strconv.Unquote(q[2])
					if err != nil {
						t.Fatalf("%s: bad want literal %s: %v", pos, q[2], err)
					}
					re, err := regexp.Compile(s)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, s, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, prefix: q[1], re: re, raw: s})
				}
			}
		}
	}
	return wants
}

// checkWants matches diagnostics against wants one-to-one by line.
// names holds the analyzer categories under test; prefixed wants naming
// other analyzers are out of scope and ignored. With prefixOnly (the
// RunProgram mode), unprefixed wants are ignored too.
func checkWants(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic, names map[string]bool, prefixOnly bool) {
	t.Helper()
	all := parseWants(t, fset, files)
	var wants []*want
	for _, w := range all {
		if w.prefix == "" {
			if prefixOnly {
				continue
			}
		} else if !names[w.prefix] {
			continue
		}
		wants = append(wants, w)
	}
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		found := false
		for _, w := range wants {
			if w.matched || w.file != pos.Filename || w.line != pos.Line {
				continue
			}
			if w.prefix != "" && w.prefix != d.Category {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic [%s]: %s", pos, d.Category, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.raw)
		}
	}
}
