// Command llbpsim runs one predictor configuration over one (or all)
// catalog workloads and prints MPKI and cycle metrics.
//
// Usage:
//
//	llbpsim -predictor llbp -workload Tomcat -warmup 200000 -measure 1000000
//	llbpsim -predictor 64k -workload all
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"llbp/internal/core"
	"llbp/internal/gshare"
	"llbp/internal/perceptron"
	"llbp/internal/predictor"
	"llbp/internal/sim"
	"llbp/internal/trace"
	"llbp/internal/tsl"
	"llbp/internal/workload"
)

func main() {
	var (
		predName  = flag.String("predictor", "64k", "predictor: 64k, 128k, 256k, 512k, 1m, inftage, inftsl, llbp, llbp0lat, llbpvirt, llbpgate, gshare, perceptron")
		wlName    = flag.String("workload", "all", "catalog workload name, or 'all'")
		traceFile = flag.String("trace", "", "replay a binary trace file instead of a catalog workload")
		warmup    = flag.Uint64("warmup", 200_000, "warmup branches")
		measure   = flag.Uint64("measure", 1_000_000, "measured branches")
		verbose   = flag.Bool("v", false, "print LLBP internal statistics")
		breakdown = flag.Bool("breakdown", false, "print per-behaviour-class misprediction breakdown (catalog workloads only)")
	)
	flag.Parse()

	var sources []trace.Source
	switch {
	case *traceFile != "":
		src, err := trace.NewFileSource(*traceFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		sources = []trace.Source{src}
	case *wlName == "all":
		for _, src := range workload.Catalog() {
			sources = append(sources, src)
		}
	default:
		src, err := workload.ByName(*wlName)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		sources = []trace.Source{src}
	}

	fmt.Printf("%-11s %-10s %10s %8s %8s %8s %7s\n",
		"workload", "predictor", "instrs", "condBr", "misses", "MPKI", "IPC")
	for _, src := range sources {
		clock := &predictor.Clock{}
		p, err := buildPredictor(*predName, clock)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		opts := sim.Options{
			WarmupBranches:  *warmup,
			MeasureBranches: *measure,
			Clock:           clock,
		}
		var classes map[uint64]workload.BehaviorClass
		execBy := map[string]uint64{}
		missBy := map[string]uint64{}
		if *breakdown {
			wl, ok := src.(*workload.Source)
			if !ok {
				fmt.Fprintln(os.Stderr, "llbpsim: -breakdown requires a catalog workload")
				os.Exit(1)
			}
			classes = wl.ClassMap()
			opts.Observer = func(b *trace.Branch, pred bool, _ predictor.Detail) {
				cls := "loop-header"
				if c, ok := classes[b.PC]; ok {
					cls = c.String()
				}
				execBy[cls]++
				if pred != b.Taken {
					missBy[cls]++
				}
			}
		}
		res, err := sim.Run(src, p, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("%-11s %-10s %10d %8d %8d %8.3f %7.2f\n",
			res.Workload, res.Predictor, res.Instructions, res.CondBranches,
			res.Mispredicts, res.MPKI, res.IPC)
		if *breakdown {
			fmt.Printf("  %-12s %10s %10s %9s\n", "class", "execs", "misses", "missrate")
			for _, cls := range []string{"biased", "marker", "local", "global", "context", "noisy", "loop-header"} {
				e, m := execBy[cls], missBy[cls]
				rate := 0.0
				if e > 0 {
					rate = float64(m) / float64(e)
				}
				fmt.Printf("  %-12s %10d %10d %9.4f\n", cls, e, m, rate)
			}
		}
		if *verbose {
			if lp, ok := p.(*core.Predictor); ok {
				s := lp.Stats()
				fmt.Printf("  llbp: matches=%d overrides=%d good=%d bad=%d bothOK=%d bothKO=%d\n",
					s.Matches, s.Overrides, s.GoodOverride, s.BadOverride, s.BothCorrect, s.BothWrong)
				fmt.Printf("  llbp: reads=%d writes=%d cdLookups=%d pbHits=%d notReady=%d pbMiss=%d ctxAllocs=%d patAllocs=%d resets=%d live=%d\n",
					s.LLBPReads, s.LLBPWrites, s.CDLookups, s.PBHits, s.NotReady, s.PBMisses,
					s.CtxAllocs, s.PatternAllocs, s.Resets, lp.Directory().Live())
			}
		}
	}
}

// buildPredictor maps a CLI name to a predictor instance.
func buildPredictor(name string, clock *predictor.Clock) (predictor.Predictor, error) {
	switch strings.ToLower(name) {
	case "64k":
		return tsl.MustNew(tsl.Config64K()), nil
	case "128k":
		return tsl.MustNew(tsl.ConfigScaled(1)), nil
	case "256k":
		return tsl.MustNew(tsl.ConfigScaled(2)), nil
	case "512k":
		return tsl.MustNew(tsl.ConfigScaled(3)), nil
	case "1m":
		return tsl.MustNew(tsl.ConfigScaled(4)), nil
	case "inftage":
		return tsl.MustNew(tsl.ConfigInfTAGE()), nil
	case "inftsl":
		return tsl.MustNew(tsl.ConfigInfTSL()), nil
	case "llbp":
		return core.MustNew(core.DefaultConfig(), tsl.MustNew(tsl.Config64K()), clock), nil
	case "llbp0lat":
		return core.MustNew(core.ZeroLatConfig(), tsl.MustNew(tsl.Config64K()), clock), nil
	case "llbpvirt":
		return core.MustNew(core.VirtualizedConfig(), tsl.MustNew(tsl.Config64K()), clock), nil
	case "llbpgate":
		return core.MustNew(core.AutoDisableConfig(), tsl.MustNew(tsl.Config64K()), clock), nil
	case "gshare":
		return gshare.New(gshare.Default())
	case "perceptron":
		return perceptron.New(perceptron.Default())
	default:
		return nil, fmt.Errorf("llbpsim: unknown predictor %q", name)
	}
}
