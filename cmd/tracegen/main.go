// Command tracegen materializes a synthetic workload as a binary trace
// file (the on-disk format of internal/trace), so external tools — or
// repeated experiments — can replay the identical stream without
// regenerating it.
//
// Usage:
//
//	tracegen -workload Tomcat -branches 2000000 -o tomcat.llbptrc
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"llbp/internal/trace"
	"llbp/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its dependencies injected (testable error paths,
// matching the other CLIs). Every failure — unknown workload, unwritable
// output path, short write — exits non-zero with a one-line message.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		wlName   = fs.String("workload", "Tomcat", "catalog workload name")
		branches = fs.Uint64("branches", 2_000_000, "number of branch records to write")
		out      = fs.String("o", "", "output file (default <workload>.llbptrc)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	fail := func(err error) int {
		fmt.Fprintln(stderr, "tracegen:", err)
		return 1
	}

	src, err := workload.ByName(*wlName)
	if err != nil {
		return fail(err)
	}
	path := *out
	if path == "" {
		path = *wlName + ".llbptrc"
	}
	f, err := os.Create(path)
	if err != nil {
		return fail(err)
	}
	w, err := trace.NewWriter(f, src.Name())
	if err != nil {
		f.Close()
		return fail(err)
	}
	r := &trace.LimitReader{R: src.Open(), Max: *branches}
	var b trace.Branch
	var n, instrs uint64
	for {
		if err := r.Read(&b); err != nil {
			if trace.IsEOF(err) {
				break
			}
			f.Close()
			return fail(err)
		}
		if err := w.Write(&b); err != nil {
			f.Close()
			return fail(err)
		}
		n++
		instrs += uint64(b.Instructions)
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return fail(err)
	}
	if err := f.Close(); err != nil {
		return fail(err)
	}
	st, err := os.Stat(path)
	if err != nil {
		return fail(err)
	}
	fmt.Fprintf(stdout, "wrote %s: %d branches, %d instructions, %d bytes (%.2f bytes/branch)\n",
		path, n, instrs, st.Size(), float64(st.Size())/float64(n))
	return 0
}
