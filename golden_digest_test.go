package llbp

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"testing"

	"llbp/internal/predictor"
	"llbp/internal/sim"
	"llbp/internal/telemetry"
	"llbp/internal/workload"
)

var updateGolden = flag.Bool("update-golden", false,
	"rewrite testdata/golden_digests.txt from the current simulation output")

const goldenDigestPath = "testdata/golden_digests.txt"

// goldenCells is the seeded mini-matrix behind TestGoldenTrajectoryDigests:
// the two families whose hot paths carry the packed/shared-history layouts
// (llbp and its tage-sc-l baseline) over two structurally different
// workloads (Tomcat: context-heavy; Chirper: small working set).
var goldenCells = []struct {
	Workload string
	Family   string
}{
	{"Tomcat", "tage-sc-l"},
	{"Tomcat", "llbp"},
	{"Chirper", "tage-sc-l"},
	{"Chirper", "llbp"},
}

const (
	goldenWarmup  = 30_000
	goldenMeasure = 120_000
)

// goldenDigest replays one mini-matrix cell and hashes everything the
// trajectory touches: the llbp-metrics/1 document (every counter, gauge
// and series point the run emitted) plus the full sim.Result rendered
// with exact float encoding. Any hot-path change that forks the branch
// trajectory — a re-ordered fold push, an off-by-one in a packed lane, a
// different PB victim — lands in at least one of these numbers.
func goldenDigest(t *testing.T, wlName, family string) string {
	t.Helper()
	src, err := workload.ByName(wlName)
	if err != nil {
		t.Fatal(err)
	}
	var p predictor.Predictor
	var clock *predictor.Clock
	switch family {
	case "tage-sc-l":
		b, err := NewBaseline(Size64K)
		if err != nil {
			t.Fatal(err)
		}
		p = b
	case "llbp":
		l, c, err := NewLLBP()
		if err != nil {
			t.Fatal(err)
		}
		p, clock = l, c
	default:
		t.Fatalf("unknown family %q", family)
	}
	reg := telemetry.NewRegistry()
	res, err := sim.Run(src, p, sim.Options{
		WarmupBranches:  goldenWarmup,
		MeasureBranches: goldenMeasure,
		Clock:           clock,
		Telemetry:       reg,
		SeriesInterval:  8_192,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := telemetry.WriteMetricsFile(&buf, []telemetry.RunSnapshot{{
		Workload:  wlName,
		Predictor: p.Name(),
		Metrics:   reg.Snapshot(),
	}}); err != nil {
		t.Fatal(err)
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	fmt.Fprintf(&buf, "result %d %d %d %d %d %s %s %s %s %s\n",
		res.Instructions, res.Branches, res.CondBranches, res.Mispredicts,
		res.TargetMisses, f(res.MPKI), f(res.Cycles), f(res.BranchPenalty),
		f(res.WastedFraction), f(res.IPC))
	sum := sha256.Sum256(buf.Bytes())
	return hex.EncodeToString(sum[:])
}

func readGoldenDigests(t *testing.T) map[string]string {
	t.Helper()
	data, err := os.ReadFile(goldenDigestPath)
	if err != nil {
		t.Fatalf("reading golden digests (run with -update-golden to create): %v", err)
	}
	out := make(map[string]string)
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 3 {
			t.Fatalf("malformed golden line %q", line)
		}
		out[fields[0]+"/"+fields[1]] = fields[2]
	}
	return out
}

// TestGoldenTrajectoryDigests is the byte-identity regression gate for
// hot-path layout work: the digests in testdata/golden_digests.txt were
// committed from the pre-packing scalar implementation, so the packed
// pattern sets, the shared history engine, and the branch-free PB must
// reproduce them bit for bit. Regenerate with
//
//	go test -run TestGoldenTrajectoryDigests -update-golden .
//
// only when a change is *supposed* to alter the trajectory (new
// allocation policy, different hash), and say so in the PR.
func TestGoldenTrajectoryDigests(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	got := make(map[string]string, len(goldenCells))
	for _, c := range goldenCells {
		got[c.Workload+"/"+c.Family] = goldenDigest(t, c.Workload, c.Family)
	}
	if *updateGolden {
		var b strings.Builder
		b.WriteString("# sha256 over llbp-metrics/1 doc + sim.Result per mini-matrix cell.\n")
		b.WriteString("# Regenerate: go test -run TestGoldenTrajectoryDigests -update-golden .\n")
		keys := make([]string, 0, len(got))
		for k := range got {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			parts := strings.SplitN(k, "/", 2)
			fmt.Fprintf(&b, "%s %s %s\n", parts[0], parts[1], got[k])
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenDigestPath, []byte(b.String()), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", goldenDigestPath)
		return
	}
	want := readGoldenDigests(t)
	for k, g := range got {
		w, ok := want[k]
		if !ok {
			t.Errorf("%s: no golden digest committed (run -update-golden)", k)
			continue
		}
		if g != w {
			t.Errorf("%s: trajectory digest %s != golden %s — the simulation output changed byte-for-byte; "+
				"if intentional, regenerate with -update-golden and call it out in the PR", k, g, w)
		}
	}
	for k := range want {
		if _, ok := got[k]; !ok {
			t.Errorf("golden file has stale cell %s", k)
		}
	}
}
