// Package harness is a determinism fixture for the allowlist: its import
// path carries the "harness" segment, so wall clocks and map iteration
// are allowed (retry backoff and deadlines are wall-clock by design).
package harness

import (
	"math/rand"
	"time"
)

// Deadline legitimately reads the wall clock. No diagnostics expected.
func Deadline(budget time.Duration) time.Time {
	return time.Now().Add(budget)
}

// JitterMS legitimately uses the global RNG for backoff jitter.
func JitterMS() int {
	return rand.Intn(100)
}

// Pending iterates a map for progress accounting.
func Pending(m map[string]bool) int {
	n := 0
	for _, waiting := range m {
		if waiting {
			n++
		}
	}
	return n
}
