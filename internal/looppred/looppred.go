// Package looppred implements the loop predictor of TAGE-SC-L: a small
// associative table that learns the trip count of regular loops and
// predicts the loop-exit (not-taken) iteration that global-history
// predictors systematically miss (§II-B).
package looppred

import "fmt"

// confidenceMax is the number of consecutive identical trip counts
// required before the predictor is allowed to override.
const confidenceMax = 3

// loopEntry tracks one loop branch.
type loopEntry struct {
	tag         uint32
	pastIter    uint32 // learned trip count
	currentIter uint32
	confidence  uint8
	age         uint8
	valid       bool
}

// Predictor is a loop predictor instance.
type Predictor struct {
	sets    [][]loopEntry
	logSets int
	ways    int

	// Scratch between Predict and Update.
	lastHit   bool
	lastSet   uint32
	lastWay   int
	lastPred  bool
	lastValid bool
}

// New constructs a loop predictor with 2^logSets sets of the given
// associativity (the modelled design uses 64 entries, 4-way).
func New(logSets, ways int) (*Predictor, error) {
	if logSets < 1 || logSets > 12 {
		return nil, fmt.Errorf("looppred: logSets %d out of range [1,12]", logSets)
	}
	if ways < 1 || ways > 16 {
		return nil, fmt.Errorf("looppred: ways %d out of range [1,16]", ways)
	}
	p := &Predictor{logSets: logSets, ways: ways}
	p.sets = make([][]loopEntry, 1<<uint(logSets))
	for i := range p.sets {
		p.sets[i] = make([]loopEntry, ways)
	}
	return p, nil
}

func (p *Predictor) setIndex(pc uint64) uint32 {
	return uint32(pc>>2) & (uint32(len(p.sets)) - 1)
}

// tagOf extracts the partial tag from the PC bits just above the set
// index, mixed with higher bits so nearby branches stay distinct.
func (p *Predictor) tagOf(pc uint64) uint32 {
	return uint32((pc>>(2+uint(p.logSets)))^(pc>>(12+uint(p.logSets)))) & 0x3fff
}

// Predict returns (taken, valid): valid is true only when the predictor has
// a confident trip count for this branch, in which case taken is the
// predicted direction for the *current* iteration. Must be followed by one
// Update for the same branch.
func (p *Predictor) Predict(pc uint64) (taken, valid bool) {
	set := p.setIndex(pc)
	tag := p.tagOf(pc)
	p.lastSet, p.lastHit, p.lastValid = set, false, false
	for w, e := range p.sets[set] {
		if e.valid && e.tag == tag {
			p.lastHit = true
			p.lastWay = w
			// Predict taken while iterations remain (currentIter
			// counts completed iterations this trip), then
			// predict the exit.
			p.lastPred = e.currentIter < e.pastIter
			p.lastValid = e.confidence >= confidenceMax && e.pastIter > 0
			return p.lastPred, p.lastValid
		}
	}
	return false, false
}

// Update trains the loop entry with the resolved direction, allocating on
// mispredicted exits.
func (p *Predictor) Update(pc uint64, taken bool, tageWrong bool) {
	set := p.setIndex(pc)
	tag := p.tagOf(pc)
	if p.lastHit {
		e := &p.sets[set][p.lastWay]
		if e.valid && e.tag == tag {
			if taken {
				e.currentIter++
				if e.pastIter > 0 && e.currentIter > e.pastIter {
					// Trip count exceeded what we learned:
					// unstable loop, drop confidence.
					e.confidence = 0
					e.pastIter = 0
				}
			} else {
				// Loop exit: check the trip count.
				if e.currentIter == e.pastIter {
					if e.confidence < confidenceMax {
						e.confidence++
					}
					if e.age < 255 {
						e.age++
					}
				} else {
					if e.pastIter == 0 {
						// First observed full loop.
						e.pastIter = e.currentIter
						e.confidence = 1
					} else {
						e.confidence = 0
						e.pastIter = e.currentIter
					}
				}
				e.currentIter = 0
			}
			return
		}
	}
	// Allocate only on a TAGE misprediction of a loop exit — the entry
	// pays off only if it can predict exits TAGE misses.
	if !taken && tageWrong {
		victim := -1
		for w := range p.sets[set] {
			e := &p.sets[set][w]
			if !e.valid {
				victim = w
				break
			}
			if e.age == 0 {
				victim = w
			}
		}
		if victim < 0 {
			// Age everyone; allocate next time.
			for w := range p.sets[set] {
				if p.sets[set][w].age > 0 {
					p.sets[set][w].age--
				}
			}
			return
		}
		p.sets[set][victim] = loopEntry{tag: tag, valid: true, age: 16}
	}
}

// Valid reports whether the last Predict produced a confident prediction.
func (p *Predictor) Valid() bool { return p.lastValid }

// Fork returns an independent deep copy of the predictor (all loop
// entries and the Predict/Update scratch), so training either copy never
// affects the other. Call at a branch boundary.
func (p *Predictor) Fork() *Predictor {
	out := *p
	out.sets = make([][]loopEntry, len(p.sets))
	for i := range p.sets {
		out.sets[i] = append([]loopEntry(nil), p.sets[i]...)
	}
	return &out
}

// StorageBits returns the approximate storage cost in bits
// (tag 14 + 2×iter 14 + confidence 2 + age 8 + valid 1 per entry).
func (p *Predictor) StorageBits() int {
	return len(p.sets) * p.ways * (14 + 14 + 14 + 2 + 8 + 1)
}
