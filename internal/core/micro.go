package core

import (
	"llbp/internal/predictor"
	"llbp/internal/tsl"
)

// Microbench is one named component benchmark of the LLBP per-branch hot
// path. Run executes n back-to-back iterations of the component
// operation on pre-built predictor state — setup cost is paid when the
// closure is constructed, not inside Run — so callers wrap Run directly
// in testing.Benchmark (benchreplay -micro) or call it from a package
// benchmark.
type Microbench struct {
	Name string
	Run  func(n int)
}

// microSink defeats dead-code elimination of benchmark results.
var microSink uint64

// Microbenches builds the per-component microbenchmarks of the
// structures the end-to-end llbp replay number is made of, so a future
// regression localizes to one structure instead of the aggregate:
//
//	engine-push       the shared history engine's per-branch fold update
//	match-patterns    tag computation + branch-free pattern-set probe
//	pb-lookup         the pattern buffer's branch-free CID compare sweep
//	patternset-clone  the value copy a set transfer or fork performs
//
// Each benchmark owns a freshly built default-configuration predictor
// (64 KiB TAGE-SC-L baseline) with a small amount of fabricated state,
// the same shapes the replay loop touches.
func Microbenches() []Microbench {
	return []Microbench{
		microEnginePush(),
		microMatchPatterns(),
		microPBLookup(),
		microPatternSetClone(),
	}
}

// microPredictor builds the default composite with a little history
// pushed through the engine so fold words are non-trivial.
func microPredictor() *Predictor {
	p := MustNew(DefaultConfig(), tsl.MustNew(tsl.Config64K()), &predictor.Clock{})
	for i := 0; i < 4096; i++ {
		p.eng.Push(i%3 == 0)
	}
	return p
}

// microContext fabricates one resident context: a directory entry whose
// pattern set holds a valid pattern for every configured history length,
// cached in the pattern buffer.
func microContext(p *Predictor, cid uint64) *PBEntry {
	ent, _, _ := p.dir.Insert(cid)
	for i := range p.cfg.HistLengths {
		ent.Set.insert(uint32(0x1a5+i*7)&(1<<uint(p.cfg.TagBits)-1),
			uint8(i), i%2 == 0, p.cfg.Buckets, len(p.cfg.HistLengths))
	}
	pbe, _ := p.pb.Insert(cid, ent, 0)
	return pbe
}

func microEnginePush() Microbench {
	p := microPredictor()
	return Microbench{Name: "engine-push", Run: func(n int) {
		for i := 0; i < n; i++ {
			p.eng.Push(i&2 == 0)
		}
	}}
}

func microMatchPatterns() Microbench {
	p := microPredictor()
	p.pbe = microContext(p, 42)
	return Microbench{Name: "match-patterns", Run: func(n int) {
		for i := 0; i < n; i++ {
			p.matched = false
			p.matchPatterns(0x400000 | uint64(i&1023)<<2)
			if p.matched {
				microSink++
			}
		}
	}}
}

func microPBLookup() Microbench {
	p := microPredictor()
	for cid := uint64(0); cid < 64; cid++ {
		microContext(p, cid)
	}
	return Microbench{Name: "pb-lookup", Run: func(n int) {
		// Alternate hits (CIDs 0..63 are resident) with misses (the high
		// bit set), the mix the replay loop sees.
		for i := 0; i < n; i++ {
			if e := p.pb.Lookup(uint64(i&127) ^ uint64(i&64)<<20); e != nil {
				microSink++
			}
		}
	}}
}

func microPatternSetClone() Microbench {
	p := microPredictor()
	ent, _, _ := p.dir.Insert(7)
	for i := range p.cfg.HistLengths {
		ent.Set.insert(uint32(i*13+1), uint8(i), i%2 == 0, p.cfg.Buckets, len(p.cfg.HistLengths))
	}
	return Microbench{Name: "patternset-clone", Run: func(n int) {
		for i := 0; i < n; i++ {
			c := ent.Set
			c.unshare()
			microSink += uint64(c.Len())
		}
	}}
}
