package report

import (
	"fmt"
	"io"
	"strings"
)

// BarChart renders one numeric column of a table as a horizontal ASCII
// bar chart — the terminal-friendly rendering of the paper's bar figures
// (cmd/experiments prints these next to the tables).
type BarChart struct {
	// Title heads the chart.
	Title string
	// Labels and Values are the bars, in order.
	Labels []string
	Values []float64
	// Unit is appended to the printed values (e.g. "%").
	Unit string
	// Width is the maximum bar width in characters (default 48).
	Width int
}

// ChartFromTable builds a bar chart from a table column (1-based value
// column index; column 0 is the label). Rows whose cell does not parse as
// a number are skipped.
func ChartFromTable(t *Table, col int, unit string) *BarChart {
	c := &BarChart{Title: t.Title, Unit: unit}
	for _, row := range t.Rows {
		if col >= len(row) {
			continue
		}
		var v float64
		if _, err := fmt.Sscanf(row[col], "%g", &v); err != nil {
			continue
		}
		c.Labels = append(c.Labels, row[0])
		c.Values = append(c.Values, v)
	}
	return c
}

// WriteText renders the chart.
func (c *BarChart) WriteText(w io.Writer) error {
	width := c.Width
	if width <= 0 {
		width = 48
	}
	if c.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", c.Title); err != nil {
			return err
		}
	}
	labelW := 0
	for _, l := range c.Labels {
		if len(l) > labelW {
			labelW = len(l)
		}
	}
	maxV := 0.0
	for _, v := range c.Values {
		if v > maxV {
			maxV = v
		}
	}
	for i, l := range c.Labels {
		v := c.Values[i]
		n := 0
		if maxV > 0 && v > 0 {
			n = int(v / maxV * float64(width))
			if n == 0 {
				n = 1 // visible sliver for small positive values
			}
		}
		bar := strings.Repeat("#", n)
		if _, err := fmt.Fprintf(w, "  %-*s |%-*s %.2f%s\n", labelW, l, width, bar, v, c.Unit); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// String renders the chart as text.
func (c *BarChart) String() string {
	var sb strings.Builder
	_ = c.WriteText(&sb)
	return sb.String()
}
