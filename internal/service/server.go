package service

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"llbp/internal/experiments"
	"llbp/internal/harness"
	"llbp/internal/telemetry"
)

// ErrQueueFull is returned by Submit when the admission queue is at
// capacity; HTTP maps it to 429 with a Retry-After header.
var ErrQueueFull = fmt.Errorf("service: admission queue full")

// ErrDraining is returned by Submit once shutdown has begun; HTTP maps
// it to 503.
var ErrDraining = fmt.Errorf("service: draining, not accepting jobs")

// CellRunner executes one simulation cell. *experiments.Harness is the
// production implementation: cells dispatched through it inherit the
// harness runner's retries, panic isolation, per-run deadlines, memo
// cache and journal resume unchanged.
type CellRunner interface {
	RunCell(ctx context.Context, spec experiments.CellSpec) (*experiments.RunOutput, error)
}

// Options configures a Server.
type Options struct {
	// Runner executes cells (required). Use an *experiments.Harness
	// whose journal points at durable storage for exactly-once resume.
	Runner CellRunner
	// Workers is the job worker pool size (default 1). Cell-level
	// parallelism inside a job is governed by the harness runner's own
	// admission gate, so total simulation concurrency is bounded by the
	// harness, not by Workers.
	Workers int
	// QueueDepth bounds the admission queue; submissions beyond it are
	// rejected with 429 + Retry-After (default 16).
	QueueDepth int
	// RetryAfterSeconds is advertised on 429 responses (default 1).
	RetryAfterSeconds int
	// Registry, when non-nil, receives service metrics and backs the
	// /metrics endpoint.
	Registry *telemetry.Registry
	// JobLogPath, when non-empty, is the job-state journal: submitted
	// jobs and their terminal states are appended (fsynced per record),
	// and New re-enqueues every non-terminal job found there. Pair it
	// with a harness cell journal to make resume exactly-once.
	JobLogPath string
	// Logf, when non-nil, receives one line per lifecycle transition.
	Logf func(format string, args ...any)
}

// Server owns the job registry, admission queue and worker pool. Create
// with New, install Handler on an http.Server, call Start, and Drain on
// shutdown.
type Server struct {
	opt      Options
	base     context.Context
	baseStop context.CancelFunc
	queue    chan *job
	draining atomic.Bool
	wg       sync.WaitGroup

	mu      sync.Mutex
	jobs    map[string]*job
	running map[string][]*job // cell key → jobs streaming that cell

	jobLog *harness.Journal
	tel    serviceTel
}

// serviceTel bundles the server's nil-safe instruments.
type serviceTel struct {
	submitted  *telemetry.Counter
	deduped    *telemetry.Counter
	rejected   *telemetry.Counter
	resumed    *telemetry.Counter
	completed  *telemetry.Counter
	failed     *telemetry.Counter
	cancelled  *telemetry.Counter
	cellsOK    *telemetry.Counter
	cellsErr   *telemetry.Counter
	queueDepth *telemetry.Gauge
	running    *telemetry.Gauge
}

// loggedJob is the job-log record format: enough to resume (the request)
// and to answer status queries for terminal jobs across restarts.
type loggedJob struct {
	Req       JobRequest `json:"req"`
	State     State      `json:"state"`
	Completed int        `json:"completed"`
	Failed    int        `json:"failed"`
}

// New builds a Server, loading and re-enqueuing any non-terminal jobs
// from the job log. Call Start to begin executing.
func New(opt Options) (*Server, error) {
	if opt.Runner == nil {
		return nil, fmt.Errorf("service: Options.Runner is required")
	}
	if opt.Workers < 1 {
		opt.Workers = 1
	}
	if opt.QueueDepth < 1 {
		opt.QueueDepth = 16
	}
	if opt.RetryAfterSeconds < 1 {
		opt.RetryAfterSeconds = 1
	}
	base, stop := context.WithCancel(context.Background())
	s := &Server{
		opt:      opt,
		base:     base,
		baseStop: stop,
		jobs:     make(map[string]*job),
		running:  make(map[string][]*job),
	}
	reg := opt.Registry
	s.tel = serviceTel{
		submitted:  reg.Counter("service_jobs_submitted"),
		deduped:    reg.Counter("service_jobs_deduped"),
		rejected:   reg.Counter("service_jobs_rejected"),
		resumed:    reg.Counter("service_jobs_resumed"),
		completed:  reg.Counter("service_jobs_completed"),
		failed:     reg.Counter("service_jobs_failed"),
		cancelled:  reg.Counter("service_jobs_cancelled"),
		cellsOK:    reg.Counter("service_cells_completed"),
		cellsErr:   reg.Counter("service_cells_failed"),
		queueDepth: reg.Gauge("service_queue_depth"),
		running:    reg.Gauge("service_jobs_running"),
	}

	var resumable []*job
	if opt.JobLogPath != "" {
		jl, err := harness.OpenJournal(opt.JobLogPath)
		if err != nil {
			stop()
			return nil, err
		}
		s.jobLog = jl
		jl.Each(func(id string, raw json.RawMessage) {
			var lj loggedJob
			if err := json.Unmarshal(raw, &lj); err != nil || len(lj.Req.Cells) == 0 {
				s.logf("job log: dropping unreadable record %s", id)
				return
			}
			jb := newJob(base, id, lj.Req)
			if lj.State.Terminal() {
				// Remembered for status queries; results streams replay
				// only the terminal summary.
				jb.completed, jb.failed = lj.Completed, lj.Failed
				jb.finish(lj.State)
			} else {
				resumable = append(resumable, jb)
			}
			s.jobs[id] = jb
		})
	}

	// The queue must absorb every resumed job plus QueueDepth fresh
	// submissions, or a heavily loaded daemon could not restart.
	s.queue = make(chan *job, opt.QueueDepth+len(resumable))
	for _, jb := range resumable {
		if err := s.logJob(jb); err != nil {
			stop()
			return nil, err
		}
		s.queue <- jb
		s.tel.resumed.Inc()
		s.logf("job %s resumed (%d cells)", jb.id, len(jb.req.Cells))
	}
	s.tel.queueDepth.Set(float64(len(s.queue)))
	return s, nil
}

// Start launches the worker pool.
func (s *Server) Start() {
	for i := 0; i < s.opt.Workers; i++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.worker()
		}()
	}
}

// Submit enqueues a job request (the HTTP handler's core, exposed for
// in-process use). Returns the status and true when the job was newly
// admitted; an existing job (same deterministic ID) returns its current
// status and false. A full queue returns ErrQueueFull; a draining server
// returns ErrDraining.
func (s *Server) Submit(req JobRequest) (JobStatus, bool, error) {
	if err := req.Validate(); err != nil {
		return JobStatus{}, false, err
	}
	if s.draining.Load() {
		return JobStatus{}, false, ErrDraining
	}
	id := JobID(req.Cells)

	s.mu.Lock()
	if jb, ok := s.jobs[id]; ok {
		s.mu.Unlock()
		s.tel.deduped.Inc()
		return jb.status(), false, nil
	}
	jb := newJob(s.base, id, req)
	s.jobs[id] = jb
	s.mu.Unlock()

	select {
	case s.queue <- jb:
	default:
		s.mu.Lock()
		delete(s.jobs, id)
		s.mu.Unlock()
		s.tel.rejected.Inc()
		return JobStatus{}, false, ErrQueueFull
	}
	s.tel.queueDepth.Set(float64(len(s.queue)))
	if err := s.logJob(jb); err != nil {
		s.logf("job %s: logging submit: %v", id, err)
	}
	s.tel.submitted.Inc()
	s.logf("job %s submitted (%d cells)", id, len(req.Cells))
	return jb.status(), true, nil
}

// Job returns a job's status by ID.
func (s *Server) Job(id string) (JobStatus, bool) {
	s.mu.Lock()
	jb, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return JobStatus{}, false
	}
	return jb.status(), true
}

// Jobs lists every known job's status, sorted by ID.
func (s *Server) Jobs() []JobStatus {
	s.mu.Lock()
	jobs := make([]*job, 0, len(s.jobs))
	for _, jb := range s.jobs {
		jobs = append(jobs, jb)
	}
	s.mu.Unlock()
	sort.Slice(jobs, func(i, k int) bool { return jobs[i].id < jobs[k].id })
	out := make([]JobStatus, len(jobs))
	for i, jb := range jobs {
		out[i] = jb.status()
	}
	return out
}

// Cancel cancels a job. Queued jobs finish immediately as cancelled;
// running jobs abort their in-flight cell (the simulation observes
// context cancellation within a few thousand branches). Reports whether
// the job exists.
func (s *Server) Cancel(id string) (JobStatus, bool) {
	s.mu.Lock()
	jb, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return JobStatus{}, false
	}
	if !jb.terminal() {
		jb.userCancelled.Store(true)
		jb.cancel()
		// A queued job has no worker to finalize it; do it here. The
		// worker skips terminal jobs when it dequeues them.
		jb.mu.Lock()
		queued := jb.state == StateQueued
		jb.mu.Unlock()
		if queued {
			jb.finish(StateCancelled)
			s.tel.cancelled.Inc()
			if err := s.logJob(jb); err != nil {
				s.logf("job %s: logging cancel: %v", id, err)
			}
			s.logf("job %s cancelled while queued", id)
		}
	}
	return jb.status(), true
}

// CellProgress routes a harness progress callback (experiments
// Config.CellProgress) to every job currently running that cell, as
// throttled "progress" stream events.
func (s *Server) CellProgress(key string, processed, total uint64) {
	s.mu.Lock()
	jobs := append([]*job(nil), s.running[key]...)
	s.mu.Unlock()
	for _, jb := range jobs {
		jb.setProgress(key, cellIndex(jb.req.Cells, key), processed, total)
	}
}

// cellIndex finds a cell's index within the job by key.
func cellIndex(cells []experiments.CellSpec, key string) int {
	for i, c := range cells {
		if c.Key() == key {
			return i
		}
	}
	return 0
}

// worker executes queued jobs until the queue closes. While draining,
// dequeued jobs are skipped — they stay logged as queued, so a restart
// resumes them.
func (s *Server) worker() {
	for jb := range s.queue {
		s.tel.queueDepth.Set(float64(len(s.queue)))
		if jb.terminal() {
			continue // cancelled while queued
		}
		if s.draining.Load() || s.base.Err() != nil {
			continue // leave for resume
		}
		s.runJob(jb)
	}
}

// runJob executes one job's cells in order, streaming a "cell" event per
// completion. Shutdown mid-job leaves the job non-terminal (resumable);
// user cancellation, cell failures and clean completion finalize it.
func (s *Server) runJob(jb *job) {
	jb.setState(StateRunning)
	if err := s.logJob(jb); err != nil {
		s.logf("job %s: logging start: %v", jb.id, err)
	}
	s.logf("job %s running", jb.id)
	s.tel.running.Set(float64(s.countRunning()))
	defer func() { s.tel.running.Set(float64(s.countRunning())) }()

	for i, cell := range jb.req.Cells {
		if jb.ctx.Err() != nil {
			break
		}
		key := cell.Key()
		s.trackCell(key, jb)
		out, err := s.opt.Runner.RunCell(jb.ctx, cell)
		s.untrackCell(key, jb)
		if err != nil {
			if jb.ctx.Err() != nil {
				break // aborted mid-cell: no event, cell re-runs on resume
			}
			jb.addCellError(i, key, err)
			s.tel.cellsErr.Inc()
			s.logf("job %s cell %s failed: %v", jb.id, key, err)
			continue
		}
		raw, merr := json.Marshal(out)
		if merr != nil {
			jb.addCellError(i, key, merr)
			s.tel.cellsErr.Inc()
			continue
		}
		jb.addCell(i, key, raw)
		s.tel.cellsOK.Inc()
		s.logf("job %s cell %s done", jb.id, key)
	}

	if jb.ctx.Err() != nil && !jb.userCancelled.Load() {
		// Server shutdown: leave the job non-terminal so the restart
		// path re-enqueues it. Its completed cells live in the harness
		// cell journal, so only the remainder re-runs.
		s.logf("job %s interrupted by shutdown; will resume", jb.id)
		return
	}

	var final State
	st := jb.status()
	switch {
	case jb.userCancelled.Load():
		final = StateCancelled
		s.tel.cancelled.Inc()
	case st.Failed > 0:
		final = StateFailed
		s.tel.failed.Inc()
	default:
		final = StateDone
		s.tel.completed.Inc()
	}
	jb.finish(final)
	if err := s.logJob(jb); err != nil {
		s.logf("job %s: logging finish: %v", jb.id, err)
	}
	s.logf("job %s %s (%d ok, %d failed)", jb.id, final, st.Completed, st.Failed)
}

// countRunning counts non-terminal jobs past the queue.
func (s *Server) countRunning() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, jobs := range s.running {
		n += len(jobs)
	}
	return n
}

func (s *Server) trackCell(key string, jb *job) {
	s.mu.Lock()
	s.running[key] = append(s.running[key], jb)
	s.mu.Unlock()
}

func (s *Server) untrackCell(key string, jb *job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	list := s.running[key]
	for i, other := range list {
		if other == jb {
			list = append(list[:i], list[i+1:]...)
			break
		}
	}
	if len(list) == 0 {
		delete(s.running, key)
	} else {
		s.running[key] = list
	}
}

// logJob appends the job's current state to the job log (fsynced).
func (s *Server) logJob(jb *job) error {
	if s.jobLog == nil {
		return nil
	}
	st := jb.status()
	jb.mu.Lock()
	state := jb.state
	jb.mu.Unlock()
	return s.jobLog.Record(jb.id, loggedJob{
		Req:       jb.req,
		State:     state,
		Completed: st.Completed,
		Failed:    st.Failed,
	})
}

// Draining reports whether the server has begun shutting down.
func (s *Server) Draining() bool { return s.draining.Load() }

// Drain gracefully shuts the server down: admission stops (submissions
// get ErrDraining), queued jobs are left journaled for resume, and
// in-flight jobs run to completion until ctx expires — then their
// simulations are cancelled and they too are left for resume. Drain
// returns nil on a clean drain or ctx.Err() when it had to cut jobs
// short. The job log is closed either way.
func (s *Server) Drain(ctx context.Context) error {
	if !s.draining.CompareAndSwap(false, true) {
		return fmt.Errorf("service: already draining")
	}
	s.logf("draining: admission closed")
	close(s.queue)
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
		s.logf("drain deadline hit; cancelling in-flight jobs for resume")
		s.baseStop()
		<-done
	}
	s.baseStop()
	if s.jobLog != nil {
		if cerr := s.jobLog.Close(); err == nil {
			err = cerr
		}
	}
	s.logf("drained")
	return err
}

// Kill is the impolite shutdown used by crash-recovery tests: it cancels
// every in-flight simulation immediately and waits for the workers,
// without finalizing job states or closing the job log cleanly — the
// closest an in-process server gets to SIGKILL.
func (s *Server) Kill() {
	if s.draining.CompareAndSwap(false, true) {
		close(s.queue)
	}
	s.baseStop()
	s.wg.Wait()
}

func (s *Server) logf(format string, args ...any) {
	if s.opt.Logf != nil {
		s.opt.Logf(format, args...)
	}
}
