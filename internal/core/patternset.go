package core

import "llbp/internal/assert"

// HistLen describes one of LLBP's allowed history lengths. The paper's
// configuration uses 16 lengths, four of which repeat a previous length
// with a modified hash function (marked with * in §VI); AltHash selects
// that variant.
type HistLen struct {
	Len     int
	AltHash bool
}

// DefaultHistLengths is the empirically chosen set from §VI: history
// lengths 12, 26, 54, 54*, 78, 78*, 112, 112*, 161, 161*, 232, 336, 482,
// 695, 1444, 3000 — a 16-length subset of the baseline TAGE's 21 lengths,
// split across four buckets of four.
var DefaultHistLengths = []HistLen{
	{12, false}, {26, false}, {54, false}, {54, true},
	{78, false}, {78, true}, {112, false}, {112, true},
	{161, false}, {161, true}, {232, false}, {336, false},
	{482, false}, {695, false}, {1444, false}, {3000, false},
}

// Pattern is one LLBP pattern (§V-B): a prediction counter, a partial tag,
// and a history-length field selecting the hash used to match the tag. In
// hardware this is 18 bits (3b ctr + 13b tag + 2b length-within-bucket);
// here lenIdx stores the global index into Config.HistLengths, from which
// the 2-bit in-bucket field is derivable.
type Pattern struct {
	Tag    uint32
	Ctr    int8
	LenIdx uint8
	Valid  bool
}

// Confident reports whether the pattern's counter is in a high-confidence
// state (saturated or one off saturation for a 3-bit counter).
func (p *Pattern) Confident() bool {
	return p.Valid && (p.Ctr >= 2 || p.Ctr <= -3)
}

// PatternSet is the complete set of patterns for one program context
// (§V-A). Patterns are stored in ascending history-length order so the
// same multiplexer cascade as TAGE selects the longest match (§V-B); with
// bucketing enabled (§V-D) the order is maintained per four-pattern bucket,
// and bucket b may only hold history lengths 4b..4b+3.
type PatternSet struct {
	Pats []Pattern
}

// newPatternSet returns an empty set of n pattern slots.
func newPatternSet(n int) *PatternSet {
	return &PatternSet{Pats: make([]Pattern, n)}
}

// clone deep-copies the set (used by the PB/LLBP storage transfer model).
func (s *PatternSet) clone() *PatternSet {
	out := &PatternSet{Pats: make([]Pattern, len(s.Pats))}
	copy(out.Pats, s.Pats)
	return out
}

// ConfidentCount returns the number of high-confidence patterns, saturated
// at max — the CD replacement metadata (§V-D, step 1).
func (s *PatternSet) ConfidentCount(max int) int {
	n := 0
	for i := range s.Pats {
		if s.Pats[i].Confident() {
			n++
			if n >= max {
				return max
			}
		}
	}
	return n
}

// bucketRange returns the slot range [lo,hi) of the bucket that may hold
// global history-length index lenIdx, for a set of setSize patterns split
// into nBuckets. With nBuckets == 0 (bucketing disabled, the Figure 14
// study mode) the whole set is one bucket.
func bucketRange(lenIdx, setSize, nBuckets, nLengths int) (lo, hi int) {
	if nBuckets <= 0 {
		return 0, setSize
	}
	perBucket := setSize / nBuckets
	lensPerBucket := (nLengths + nBuckets - 1) / nBuckets
	b := lenIdx / lensPerBucket
	if b >= nBuckets {
		b = nBuckets - 1
	}
	return b * perBucket, (b + 1) * perBucket
}

// insert allocates a pattern with the given tag/length into the set,
// following §V-D steps 2–4: within the allowed bucket, replace the
// least-confident pattern (ties broken toward the lower-order slot), set
// the counter to the weak state for the resolved direction, and restore
// ascending history-length order inside the bucket.
func (s *PatternSet) insert(tag uint32, lenIdx uint8, taken bool, nBuckets, nLengths int) {
	lo, hi := bucketRange(int(lenIdx), len(s.Pats), nBuckets, nLengths)
	if lo < 0 || hi > len(s.Pats) || lo >= hi {
		assert.Failf("core: bad bucket range [%d,%d) for set of %d", lo, hi, len(s.Pats))
		return
	}
	// If the identical pattern already exists, refresh its counter
	// instead of duplicating it.
	for i := lo; i < hi; i++ {
		p := &s.Pats[i]
		if p.Valid && p.Tag == tag && p.LenIdx == lenIdx {
			p.Ctr = weakCtr(taken)
			return
		}
	}
	victim := lo
	victimScore := 127
	for i := lo; i < hi; i++ {
		p := &s.Pats[i]
		if !p.Valid {
			victim = i
			victimScore = -1
			break
		}
		score := int(p.Ctr)
		if score < 0 {
			score = -score - 1 // counter magnitude: -1,-4 -> 0,3
		}
		if score < victimScore {
			victim, victimScore = i, score
		}
	}
	s.Pats[victim] = Pattern{Tag: tag, Ctr: weakCtr(taken), LenIdx: lenIdx, Valid: true}
	s.sortBucket(lo, hi)
}

// sortBucket restores ascending LenIdx order among the valid patterns of
// slots [lo,hi), keeping invalid slots at the end. Buckets hold four
// patterns, so insertion sort is the hardware-faithful (and fastest)
// choice.
func (s *PatternSet) sortBucket(lo, hi int) {
	for i := lo + 1; i < hi; i++ {
		p := s.Pats[i]
		j := i - 1
		for j >= lo && less(p, s.Pats[j]) {
			s.Pats[j+1] = s.Pats[j]
			j--
		}
		s.Pats[j+1] = p
	}
}

// less orders valid patterns before invalid ones, then by ascending
// history length.
func less(a, b Pattern) bool {
	if a.Valid != b.Valid {
		return a.Valid
	}
	if !a.Valid {
		return false
	}
	return a.LenIdx < b.LenIdx
}

// weakCtr returns the weak 3-bit counter state for a direction.
func weakCtr(taken bool) int8 {
	if taken {
		return 0
	}
	return -1
}

// sorted reports whether valid patterns appear in ascending length order
// within each bucket (and invalid slots trail) — the §V-B invariant the
// multiplexer cascade relies on. Exposed for property tests.
func (s *PatternSet) sorted(nBuckets, nLengths int) bool {
	size := len(s.Pats)
	per := size
	if nBuckets > 0 {
		per = size / nBuckets
	}
	for lo := 0; lo < size; lo += per {
		hi := lo + per
		seenInvalid := false
		last := -1
		for i := lo; i < hi && i < size; i++ {
			p := s.Pats[i]
			if !p.Valid {
				seenInvalid = true
				continue
			}
			if seenInvalid {
				return false
			}
			if int(p.LenIdx) < last {
				return false
			}
			last = int(p.LenIdx)
		}
	}
	return true
}
