// Customworkload shows how to define a synthetic server workload of your
// own (beyond the Table I catalog), check its stream invariants, and
// measure how much LLBP helps on it. Cranking FracContext up makes the
// workload more call-chain-correlated — the regime LLBP targets.
package main

import (
	"fmt"
	"log"

	"llbp"
	"llbp/internal/trace"
	"llbp/internal/workload"
)

func main() {
	params := workload.Params{
		Name:             "MyService",
		Seed:             4242,
		Functions:        1200,
		RequestTypes:     40,
		ZipfSkew:         1.1,
		CondMin:          3,
		CondMax:          12,
		CallMin:          3,
		CallMax:          6,
		LoopMin:          1,
		LoopMax:          1,
		MaxDepth:         12,
		MeanBlockInstrs:  5,
		FracLocal:        0.10,
		FracGlobal:       0.12,
		FracContext:      0.09, // heavy context correlation
		FracNoisy:        0.01,
		FracMarker:       0.15,
		ContextPhaseMin:  2,
		ContextPhaseMax:  5,
		ContextNoise:     0.01,
		GlobalHistBits:   8,
		LoopTripMin:      3,
		LoopTripMax:      6,
		ContextLoops:     true,
		IndirectFrac:     0.12,
		IndirectFanout:   6,
		IndirectMissRate: 0.05,
		L1IMissesPerKI:   25,
	}

	wl, err := llbp.NewWorkload(params)
	if err != nil {
		log.Fatal(err)
	}

	// Inspect the stream's composition first: the paper's workloads
	// average ~3.9 conditional branches per unconditional branch.
	st, err := trace.Collect(&trace.LimitReader{R: wl.Open(), Max: 200_000})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload %s: %d static branches, cond/uncond %.2f\n",
		wl.Name(), wl.StaticBranches(), st.CondPerUncond())

	base, err := llbp.NewBaseline(llbp.Size64K)
	if err != nil {
		log.Fatal(err)
	}
	baseRes, err := llbp.Simulate(wl, base, llbp.SimOptions{})
	if err != nil {
		log.Fatal(err)
	}

	pred, clock, err := llbp.NewLLBP()
	if err != nil {
		log.Fatal(err)
	}
	llbpRes, err := llbp.Simulate(wl, pred, llbp.SimOptions{Clock: clock})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("64K TSL: %.3f MPKI\n", baseRes.MPKI)
	fmt.Printf("LLBP:    %.3f MPKI (%.1f%% reduction)\n",
		llbpRes.MPKI, (baseRes.MPKI-llbpRes.MPKI)/baseRes.MPKI*100)
	fmt.Printf("live contexts in the CD: %d\n", pred.Stats().CDLive)
}
