package core

import "fmt"

// CDEntry is one context-directory entry: the validity bit, partial
// context tag, confidence-based replacement metadata, and — standing in
// for the paper's "pattern set storage location" — ownership of the
// backing pattern set in LLBP storage (§V-A).
type CDEntry struct {
	Valid bool
	Tag   uint32
	// Conf is the 2-bit replacement counter tracking how many
	// high-confidence patterns the set holds (§V-D step 1); the entry
	// with the lowest count is the eviction victim.
	Conf uint8
	// Set is the pattern set in LLBP bulk storage, held by value: the
	// evaluated design's 16 packed lanes live inline in the entry, so a
	// set transfer or fork clone is a flat copy with no pointer chase.
	Set PatternSet
	// CID is the full context ID (diagnostics and PB invalidation).
	CID uint64
	// lastUse is the LRU timestamp (ReplacementLRU ablation only).
	lastUse uint64
}

// cdInvalidKey marks an empty way in the directory's key lane. Stored
// keys are zero-extended 32-bit tags, so all-ones never collides.
const cdInvalidKey = ^uint64(0)

// Directory is the context directory plus the LLBP bulk storage it
// indexes. Two organizations are supported: the production design's
// set-associative array (2048 sets × 7 ways = 14336 contexts, 11-bit set
// index + 3-bit tag, §VI), and the fully associative variant with wide
// tags used by the Figure 14 design-space study.
type Directory struct {
	// Set-associative organization. keys mirrors sets way-for-way with
	// the packed valid+tag compare lane: a CDEntry embeds its pattern
	// set by value (~200 bytes), so scanning the entries themselves
	// would touch one cache line per way — the key lane keeps the
	// per-lookup footprint to the set's few contiguous words, and only
	// a hit dereferences the entry.
	sets    [][]CDEntry
	keys    [][]uint64
	setBits uint

	// Fully associative organization.
	assoc    map[uint64]*CDEntry
	entries  []*CDEntry // insertion-ordered backing for deterministic eviction
	capacity int
	cursor   int

	patternsPerSet int
	confMax        int
	lru            bool
	tick           uint64

	evictions uint64
}

// newDirectory builds a directory for cfg.
func newDirectory(cfg *Config) *Directory {
	d := &Directory{
		patternsPerSet: cfg.PatternsPerSet,
		confMax:        3,
		lru:            cfg.ReplacementLRU,
	}
	if cfg.FullAssocCD {
		d.assoc = make(map[uint64]*CDEntry, cfg.NumContexts)
		d.capacity = cfg.NumContexts
		return d
	}
	ways := cfg.NumContexts / cfg.CDSets
	if ways < 1 {
		ways = 1
	}
	setBits := 0
	for 1<<uint(setBits) < cfg.CDSets {
		setBits++
	}
	if 1<<uint(setBits) != cfg.CDSets {
		panic(fmt.Sprintf("core: CDSets %d must be a power of two", cfg.CDSets))
	}
	d.setBits = uint(setBits)
	d.sets, d.keys = cdRows(cfg.CDSets, ways)
	return d
}

// cdRows carves the directory's per-set entry and key rows out of two
// flat backing arrays: two allocations instead of thousands, and the
// whole structure is contiguous for the per-branch key-lane probes.
func cdRows(nsets, ways int) ([][]CDEntry, [][]uint64) {
	sets := make([][]CDEntry, nsets)
	keys := make([][]uint64, nsets)
	entBacking := make([]CDEntry, nsets*ways)
	keyBacking := make([]uint64, nsets*ways)
	for i := range keyBacking {
		keyBacking[i] = cdInvalidKey
	}
	for i := 0; i < nsets; i++ {
		lo, hi := i*ways, (i+1)*ways
		sets[i] = entBacking[lo:hi:hi]
		keys[i] = keyBacking[lo:hi:hi]
	}
	return sets, keys
}

func (d *Directory) setAndTag(cid uint64) (uint64, uint32) {
	set := cid & (uint64(len(d.sets)) - 1)
	tag := uint32(cid >> d.setBits)
	return set, tag
}

// Lookup returns the directory entry for cid, or nil on a miss.
func (d *Directory) Lookup(cid uint64) *CDEntry {
	d.tick++
	if d.assoc != nil {
		//llbplint:allow hotpath -- FullAssocCD is the Figure 14 design-space ablation, not the evaluated set-associative hardware path
		e := d.assoc[cid]
		if e != nil {
			e.lastUse = d.tick
		}
		return e
	}
	set, tag := d.setAndTag(cid)
	for i, k := range d.keys[set] {
		if k == uint64(tag) {
			e := &d.sets[set][i]
			e.lastUse = d.tick
			return e
		}
	}
	return nil
}

// victimScore returns the replacement priority of an entry (lower =
// preferred victim) under the configured policy.
func (d *Directory) victimScore(e *CDEntry) uint64 {
	if d.lru {
		return e.lastUse
	}
	return uint64(e.Conf)
}

// Insert allocates a directory entry (and a fresh pattern set) for cid,
// evicting the lowest-confidence candidate if necessary. It returns the
// new entry and, when an eviction occurred, the CID of the victim (so the
// caller can invalidate any pattern-buffer copy).
func (d *Directory) Insert(cid uint64) (e *CDEntry, evictedCID uint64, evicted bool) {
	if d.assoc != nil {
		return d.insertAssoc(cid)
	}
	set, tag := d.setAndTag(cid)
	victim := -1
	victimScore := ^uint64(0)
	for i := range d.sets[set] {
		ent := &d.sets[set][i]
		if !ent.Valid {
			victim = i
			break
		}
		if s := d.victimScore(ent); s < victimScore {
			victim, victimScore = i, s
		}
	}
	ent := &d.sets[set][victim]
	if ent.Valid {
		evictedCID, evicted = ent.CID, true
		d.evictions++
	}
	*ent = CDEntry{
		Valid:   true,
		Tag:     tag,
		Set:     newPatternSet(d.patternsPerSet),
		CID:     cid,
		lastUse: d.tick,
	}
	d.keys[set][victim] = uint64(tag)
	return ent, evictedCID, evicted
}

// insertAssoc allocates in the fully associative organization: when at
// capacity, a deterministic rotating window of candidates is scanned and
// the lowest-confidence entry is evicted (an O(1)-amortized stand-in for a
// global min-confidence scan).
func (d *Directory) insertAssoc(cid uint64) (*CDEntry, uint64, bool) {
	var evictedCID uint64
	evicted := false
	if len(d.entries) >= d.capacity {
		const window = 64
		victim := -1
		victimScore := ^uint64(0)
		for i := 0; i < window && i < len(d.entries); i++ {
			pos := (d.cursor + i) % len(d.entries)
			e := d.entries[pos]
			if s := d.victimScore(e); s < victimScore {
				victim, victimScore = pos, s
			}
			if victimScore == 0 {
				break
			}
		}
		d.cursor = (d.cursor + window) % (len(d.entries) + 1)
		v := d.entries[victim]
		evictedCID, evicted = v.CID, true
		//llbplint:allow hotpath -- FullAssocCD ablation: the map IS the directory in this organization
		delete(d.assoc, v.CID)
		last := len(d.entries) - 1
		d.entries[victim] = d.entries[last]
		d.entries = d.entries[:last]
		d.evictions++
	}
	//llbplint:allow hotpath -- FullAssocCD ablation: entries are heap values by design, one per context insert (miss-driven, not per branch)
	e := &CDEntry{
		Valid:   true,
		Set:     newPatternSet(d.patternsPerSet),
		CID:     cid,
		lastUse: d.tick,
	}
	//llbplint:allow hotpath -- FullAssocCD ablation: the map IS the directory in this organization
	d.assoc[cid] = e
	//llbplint:allow hotpath -- FullAssocCD ablation: insertion-ordered backing grows once per context, off the per-branch steady state
	d.entries = append(d.entries, e)
	return e, evictedCID, evicted
}

// RefreshConf recomputes the entry's replacement counter from its pattern
// set (the hardware tracks this incrementally; recomputation is
// equivalent and simpler).
func (d *Directory) RefreshConf(e *CDEntry) {
	e.Conf = uint8(e.Set.ConfidentCount(d.confMax))
}

// Live returns the number of valid contexts currently tracked.
func (d *Directory) Live() int {
	if d.assoc != nil {
		return len(d.entries)
	}
	n := 0
	for _, set := range d.sets {
		for i := range set {
			if set[i].Valid {
				n++
			}
		}
	}
	return n
}

// Evictions returns the cumulative number of context evictions.
func (d *Directory) Evictions() uint64 { return d.evictions }
