package service

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"llbp/internal/experiments"
	"llbp/internal/sim"
	"llbp/internal/telemetry"
)

// fakeRunner is a controllable CellRunner: per-key failures, an optional
// blocking gate, and an execution count per cell key.
type fakeRunner struct {
	mu      sync.Mutex
	calls   map[string]int
	fail    map[string]error
	started chan string   // receives the key when a cell begins (if set)
	gate    chan struct{} // cells block here until closed (if set)
}

func newFakeRunner() *fakeRunner {
	return &fakeRunner{calls: map[string]int{}, fail: map[string]error{}}
}

func (f *fakeRunner) RunCell(ctx context.Context, spec experiments.CellSpec) (*experiments.RunOutput, error) {
	key := spec.Key()
	f.mu.Lock()
	f.calls[key]++
	started, gate := f.started, f.gate
	ferr := f.fail[key]
	f.mu.Unlock()
	if started != nil {
		select {
		case started <- key:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	if gate != nil {
		select {
		case <-gate:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	if ferr != nil {
		return nil, ferr
	}
	return &experiments.RunOutput{
		Res: &sim.Result{Workload: spec.Workload, Predictor: spec.Predictor, MPKI: 1.25},
	}, nil
}

func (f *fakeRunner) count(key string) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.calls[key]
}

// tinyCells builds n distinct valid cells.
func tinyCells(n int) []experiments.CellSpec {
	out := make([]experiments.CellSpec, n)
	for i := range out {
		out[i] = experiments.CellSpec{
			Workload: "Tomcat", Predictor: "64k",
			Warmup: 100, Measure: uint64(1000 + i), // distinct budgets → distinct cells
		}
	}
	return out
}

func request(cells []experiments.CellSpec) JobRequest {
	return JobRequest{Schema: JobSchema, Cells: cells}
}

// waitStatus polls until the job reaches want (or the deadline).
func waitStatus(t *testing.T, s *Server, id string, want State) JobStatus {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		st, ok := s.Job(id)
		if ok && st.State == want {
			return st
		}
		time.Sleep(2 * time.Millisecond)
	}
	st, _ := s.Job(id)
	t.Fatalf("job %s never reached %s (last: %+v)", id, want, st)
	return JobStatus{}
}

// TestRequestValidation: schema, emptiness, duplicates and bad cells are
// rejected before admission.
func TestRequestValidation(t *testing.T) {
	good := request(tinyCells(2))
	if err := good.Validate(); err != nil {
		t.Fatalf("valid request rejected: %v", err)
	}
	cases := []JobRequest{
		{Schema: "llbp-job/0", Cells: tinyCells(1)},
		{Schema: JobSchema},
		{Schema: JobSchema, Cells: append(tinyCells(1), tinyCells(1)...)},
		{Schema: JobSchema, Cells: []experiments.CellSpec{{Workload: "NoSuch", Predictor: "64k", Measure: 10}}},
	}
	for i, req := range cases {
		if err := req.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, req)
		}
	}
}

// TestJobIDDeterministic: the ID is a pure function of the cells.
func TestJobIDDeterministic(t *testing.T) {
	a, b := JobID(tinyCells(3)), JobID(tinyCells(3))
	if a != b {
		t.Errorf("same cells, different IDs: %s vs %s", a, b)
	}
	if c := JobID(tinyCells(2)); c == a {
		t.Errorf("different cells, same ID %s", c)
	}
	if !strings.HasPrefix(a, "job-") {
		t.Errorf("ID %q lacks job- prefix", a)
	}
}

// TestHappyPath: submit → stream → complete over real HTTP; the stream
// replays one "cell" event per cell, in index order, then "done".
func TestHappyPath(t *testing.T) {
	fr := newFakeRunner()
	s, err := New(Options{Runner: fr, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	defer s.Drain(context.Background())
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()

	cells := tinyCells(3)
	st, created, err := s.Submit(request(cells))
	if err != nil || !created {
		t.Fatalf("Submit = %+v, %v, %v", st, created, err)
	}
	if st.State != StateQueued || st.Cells != 3 {
		t.Errorf("initial status = %+v", st)
	}
	waitStatus(t, s, st.ID, StateDone)

	// Resubmitting the identical job dedupes onto the existing one.
	st2, created2, err := s.Submit(request(cells))
	if err != nil || created2 || st2.ID != st.ID {
		t.Errorf("resubmit = %+v, created=%v, err=%v; want dedup onto %s", st2, created2, err, st.ID)
	}

	resp, err := http.Get(hs.URL + "/v1/jobs/" + st.ID + "/results")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var events []StreamEvent
	dec := json.NewDecoder(resp.Body)
	for dec.More() {
		var ev StreamEvent
		if err := dec.Decode(&ev); err != nil {
			t.Fatal(err)
		}
		events = append(events, ev)
	}
	if len(events) != 4 {
		t.Fatalf("stream = %d events, want 3 cells + done: %+v", len(events), events)
	}
	for i := 0; i < 3; i++ {
		ev := events[i]
		if ev.Type != "cell" || ev.Index != i || ev.Key != cells[i].Key() || ev.Error != "" {
			t.Errorf("event %d = %+v", i, ev)
		}
		var out experiments.RunOutput
		if err := json.Unmarshal(ev.Value, &out); err != nil || out.Res.MPKI != 1.25 {
			t.Errorf("event %d value bad: %v %+v", i, err, out)
		}
	}
	if fin := events[3]; fin.Type != "done" || fin.State != StateDone || fin.Completed != 3 || fin.Failed != 0 {
		t.Errorf("done event = %+v", fin)
	}
}

// TestFailedCellsFailSoft: a failing cell produces an error event and a
// "failed" terminal state; the other cells still complete.
func TestFailedCellsFailSoft(t *testing.T) {
	fr := newFakeRunner()
	cells := tinyCells(3)
	fr.fail[cells[1].Key()] = fmt.Errorf("synthetic cell failure")
	s, err := New(Options{Runner: fr})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	defer s.Drain(context.Background())
	st, _, err := s.Submit(request(cells))
	if err != nil {
		t.Fatal(err)
	}
	final := waitStatus(t, s, st.ID, StateFailed)
	if final.Completed != 2 || final.Failed != 1 {
		t.Errorf("final = %+v, want 2 ok / 1 failed", final)
	}
}

// TestQueueFull429: with a single blocked worker and queue depth 1, the
// third submission is rejected over HTTP with 429 + Retry-After, and
// admission recovers once the gate opens.
func TestQueueFull429(t *testing.T) {
	fr := newFakeRunner()
	fr.started = make(chan string, 8)
	fr.gate = make(chan struct{})
	reg := telemetry.NewRegistry()
	s, err := New(Options{Runner: fr, Workers: 1, QueueDepth: 1, RetryAfterSeconds: 7, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()

	submit := func(n int) *http.Response {
		t.Helper()
		raw, _ := json.Marshal(request(tinyCells(n)))
		resp, err := http.Post(hs.URL+"/v1/jobs", "application/json", strings.NewReader(string(raw)))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	r1 := submit(1) // dequeued by the worker, blocks on the gate
	r1.Body.Close()
	<-fr.started
	r2 := submit(2) // sits in the queue
	r2.Body.Close()
	r3 := submit(3) // no room
	defer r3.Body.Close()
	if r1.StatusCode != http.StatusAccepted || r2.StatusCode != http.StatusAccepted {
		t.Fatalf("admitted jobs got %d, %d; want 202", r1.StatusCode, r2.StatusCode)
	}
	if r3.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow job got %d, want 429", r3.StatusCode)
	}
	if ra := r3.Header.Get("Retry-After"); ra != "7" {
		t.Errorf("Retry-After = %q, want 7", ra)
	}
	if got := reg.Snapshot().Counters["service_jobs_rejected"]; got != 1 {
		t.Errorf("service_jobs_rejected = %d, want 1", got)
	}

	close(fr.gate) // everything drains
	for _, n := range []int{1, 2} {
		waitStatus(t, s, JobID(tinyCells(n)), StateDone)
	}
	// The rejected job can resubmit now.
	r4 := submit(3)
	r4.Body.Close()
	if r4.StatusCode != http.StatusAccepted {
		t.Errorf("post-drain resubmit got %d, want 202", r4.StatusCode)
	}
	waitStatus(t, s, JobID(tinyCells(3)), StateDone)
	s.Drain(context.Background())
}

// TestCancel: cancelling a running job aborts its in-flight cell via
// context and finalizes as cancelled; cancelling a queued job finalizes
// it immediately; unknown IDs 404 over HTTP.
func TestCancel(t *testing.T) {
	fr := newFakeRunner()
	fr.started = make(chan string, 8)
	fr.gate = make(chan struct{}) // never closed: cells end only by cancellation
	s, err := New(Options{Runner: fr, Workers: 1, QueueDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()

	running, _, err := s.Submit(request(tinyCells(1)))
	if err != nil {
		t.Fatal(err)
	}
	<-fr.started
	queued, _, err := s.Submit(request(tinyCells(2)))
	if err != nil {
		t.Fatal(err)
	}

	// Cancel the queued job first: it must finalize without a worker.
	if st, ok := s.Cancel(queued.ID); !ok || st.State != StateCancelled {
		t.Errorf("queued cancel = %+v, %v", st, ok)
	}
	// Cancel the running job over HTTP.
	req, _ := http.NewRequest(http.MethodDelete, hs.URL+"/v1/jobs/"+running.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("cancel HTTP = %d", resp.StatusCode)
	}
	final := waitStatus(t, s, running.ID, StateCancelled)
	if final.Completed != 0 {
		t.Errorf("cancelled job completed %d cells, want 0", final.Completed)
	}
	if fr.count(tinyCells(1)[0].Key()) != 1 {
		t.Errorf("in-flight cell ran %d times", fr.count(tinyCells(1)[0].Key()))
	}

	req404, _ := http.NewRequest(http.MethodDelete, hs.URL+"/v1/jobs/job-nope", nil)
	resp404, err := http.DefaultClient.Do(req404)
	if err != nil {
		t.Fatal(err)
	}
	resp404.Body.Close()
	if resp404.StatusCode != http.StatusNotFound {
		t.Errorf("cancel of unknown job = %d, want 404", resp404.StatusCode)
	}
	s.Drain(context.Background())
}

// TestDrainLeavesWorkResumable: a SIGTERM-style drain finishes in-flight
// jobs when they fit the grace window, leaves queued jobs journaled, and
// a fresh server over the same job log resumes and completes them.
func TestDrainLeavesWorkResumable(t *testing.T) {
	dir := t.TempDir()
	jobLog := filepath.Join(dir, "llbpd.jobs")

	fr := newFakeRunner()
	fr.started = make(chan string, 8)
	fr.gate = make(chan struct{})
	s1, err := New(Options{Runner: fr, Workers: 1, QueueDepth: 4, JobLogPath: jobLog})
	if err != nil {
		t.Fatal(err)
	}
	s1.Start()
	inflight, _, err := s1.Submit(request(tinyCells(1)))
	if err != nil {
		t.Fatal(err)
	}
	<-fr.started
	queued, _, err := s1.Submit(request(tinyCells(2)))
	if err != nil {
		t.Fatal(err)
	}

	// Drain with an already-expired deadline: the in-flight job is cut
	// short (its cell aborts via context) and left non-terminal.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := s1.Drain(ctx); err == nil {
		t.Error("forced drain should report the deadline error")
	}
	if _, _, err := s1.Submit(request(tinyCells(3))); err == nil {
		t.Error("draining server accepted a job")
	}

	// Restart over the same log: both unfinished jobs come back queued
	// and run to completion.
	fr2 := newFakeRunner()
	s2, err := New(Options{Runner: fr2, Workers: 2, JobLogPath: jobLog})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{inflight.ID, queued.ID} {
		if st, ok := s2.Job(id); !ok || st.State != StateQueued {
			t.Errorf("job %s after restart = %+v, %v; want queued", id, st, ok)
		}
	}
	s2.Start()
	waitStatus(t, s2, inflight.ID, StateDone)
	waitStatus(t, s2, queued.ID, StateDone)
	if err := s2.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Third generation: terminal states survive restarts too.
	s3, err := New(Options{Runner: newFakeRunner(), JobLogPath: jobLog})
	if err != nil {
		t.Fatal(err)
	}
	if st, ok := s3.Job(inflight.ID); !ok || st.State != StateDone || st.Completed != 1 {
		t.Errorf("terminal job after second restart = %+v, %v", st, ok)
	}
	s3.Start()
	s3.Drain(context.Background())
}

// TestMetricsAndHealthz: /metrics serves an order-checkable llbp-metrics/1
// document (monotonic seq, timestamps when clocked) with the service
// counters; /healthz flips to 503 on drain.
func TestMetricsAndHealthz(t *testing.T) {
	fr := newFakeRunner()
	reg := telemetry.NewRegistry()
	var fakeNow int64 = 1_750_000_000_000
	reg.SetClock(func() int64 { fakeNow += 13; return fakeNow })
	s, err := New(Options{Runner: fr, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()

	st, _, err := s.Submit(request(tinyCells(1)))
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, s, st.ID, StateDone)

	scrape := func() telemetry.Snapshot {
		t.Helper()
		resp, err := http.Get(hs.URL + "/metrics.json")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var mf telemetry.MetricsFile
		raw := json.NewDecoder(resp.Body)
		if err := raw.Decode(&mf); err != nil {
			t.Fatal(err)
		}
		if mf.Schema != telemetry.MetricsSchema || len(mf.Runs) != 1 {
			t.Fatalf("metrics document = %+v", mf)
		}
		return mf.Runs[0].Metrics
	}
	m1, m2 := scrape(), scrape()
	if m1.Seq == 0 || m2.Seq <= m1.Seq {
		t.Errorf("scrape seqs not increasing: %d then %d", m1.Seq, m2.Seq)
	}
	if m1.TimeUnixMS == 0 || m2.TimeUnixMS <= m1.TimeUnixMS {
		t.Errorf("scrape timestamps not increasing: %d then %d", m1.TimeUnixMS, m2.TimeUnixMS)
	}
	if m2.Counters["service_jobs_submitted"] != 1 || m2.Counters["service_jobs_completed"] != 1 {
		t.Errorf("service counters = %v", m2.Counters)
	}

	// The Prometheus surface must parse back and carry the same counters.
	promResp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	promRaw, err := io.ReadAll(promResp.Body)
	promResp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if ct := promResp.Header.Get("Content-Type"); ct != telemetry.PromContentType {
		t.Errorf("/metrics Content-Type = %q", ct)
	}
	doc, err := telemetry.ParsePrometheus(promRaw)
	if err != nil {
		t.Fatalf("/metrics not parseable: %v\n%s", err, promRaw)
	}
	if v, ok := doc.Value("service_jobs_completed"); !ok || v != 1 {
		t.Errorf("prometheus service_jobs_completed = %v (present %v), want 1", v, ok)
	}

	resp, err := http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz = %d, want 200", resp.StatusCode)
	}
	s.Drain(context.Background())
	resp2, err := http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz while drained = %d, want 503", resp2.StatusCode)
	}
}

// TestConcurrentSubmitCancelScrape hammers submit/cancel/status/scrape
// from many goroutines — the race-detector pass over the service's
// locking (`go test -race ./internal/service/...`).
func TestConcurrentSubmitCancelScrape(t *testing.T) {
	fr := newFakeRunner()
	reg := telemetry.NewRegistry()
	s, err := New(Options{Runner: fr, Workers: 4, QueueDepth: 64, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				cells := []experiments.CellSpec{{
					Workload: "Tomcat", Predictor: "64k",
					Warmup: uint64(g + 1), Measure: uint64(1000 + i),
				}}
				st, _, err := s.Submit(request(cells))
				if err != nil {
					continue // queue-full under contention is expected
				}
				switch i % 3 {
				case 0:
					s.Cancel(st.ID)
				case 1:
					s.Job(st.ID)
				default:
					_ = reg.Snapshot()
					_ = s.Jobs()
				}
			}
		}(g)
	}
	wg.Wait()
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}
