//go:build !llbpdebug

package assert

// Enabled reports whether assertions are compiled in.
const Enabled = false

// Failf is a no-op in production builds; the violated contract's
// consequences surface through ordinary (mis)behavior instead of a
// crash, matching the no-panic policy for library code.
func Failf(format string, args ...any) {}
