package cache

import (
	"io"
	"sync/atomic"

	"llbp/internal/trace"
)

// Handle is a pinned view of a materialized stream prefix. It implements
// trace.Source and trace.BatchSource, so it drops into any replay loop;
// every Open replays the identical branches the underlying source would
// produce, decoded on the fly from the shared columnar buffer. Release
// the handle when replay is done so the entry becomes evictable; the
// columns a handle snapshot references stay valid even if the entry is
// later evicted or extended.
type Handle struct {
	c    *Cache
	e    *entry
	name string

	pcs     []uint64
	targets []uint64
	instrs  []uint32
	meta    []uint8

	released atomic.Bool
}

var (
	_ trace.Source      = (*Handle)(nil)
	_ trace.BatchSource = (*Handle)(nil)
)

// Name implements trace.Source.
func (h *Handle) Name() string { return h.name }

// Len returns the number of branches the handle replays.
func (h *Handle) Len() int { return len(h.pcs) }

// Release unpins the backing cache entry. Idempotent. Readers already
// opened keep working (they read the snapshot, not the entry).
func (h *Handle) Release() {
	if h == nil || h.released.Swap(true) {
		return
	}
	h.c.release(h.e)
}

// Open implements trace.Source.
func (h *Handle) Open() trace.Reader { return &handleReader{h: h} }

// OpenBatch implements trace.BatchSource.
func (h *Handle) OpenBatch() trace.BatchReader { return &handleReader{h: h} }

// Tail returns a trace.Source replaying branches [skip, Len()) of the
// handle's snapshot — the measure phase of a stream whose warmup prefix
// was already consumed by a warm-snapshot fork parent. The view shares
// the handle's pin: keep the handle unreleased while tail readers are in
// use, and Release the handle (not the view) afterwards. A skip beyond
// the snapshot yields an immediately-EOF stream, matching direct replay
// of a source shorter than the requested prefix.
func (h *Handle) Tail(skip uint64) trace.Source {
	if skip == 0 {
		return h
	}
	s := len(h.pcs)
	if skip < uint64(s) {
		s = int(skip)
	}
	return &tailView{h: h, skip: s}
}

// tailView is a positioned view over a Handle's snapshot.
type tailView struct {
	h    *Handle
	skip int
}

var (
	_ trace.Source      = (*tailView)(nil)
	_ trace.BatchSource = (*tailView)(nil)
)

// Name implements trace.Source; the tail is the same workload.
func (v *tailView) Name() string { return v.h.name }

// Len returns the number of branches the view replays.
func (v *tailView) Len() int { return len(v.h.pcs) - v.skip }

// Open implements trace.Source.
func (v *tailView) Open() trace.Reader { return &handleReader{h: v.h, pos: v.skip} }

// OpenBatch implements trace.BatchSource.
func (v *tailView) OpenBatch() trace.BatchReader { return &handleReader{h: v.h, pos: v.skip} }

// handleReader decodes branches out of the columnar snapshot.
type handleReader struct {
	h   *Handle
	pos int
}

// decode expands record i into b.
func (r *handleReader) decode(i int, b *trace.Branch) {
	h := r.h
	m := h.meta[i]
	b.PC = h.pcs[i]
	b.Target = h.targets[i]
	b.Type = trace.BranchType(m & 0x7)
	b.Taken = m&(1<<3) != 0
	b.MispredictedTarget = m&(1<<4) != 0
	b.Instructions = h.instrs[i]
}

// Read implements trace.Reader.
func (r *handleReader) Read(b *trace.Branch) error {
	if r.pos >= len(r.h.pcs) {
		return io.EOF
	}
	r.decode(r.pos, b)
	r.pos++
	return nil
}

// ReadBatch implements trace.BatchReader.
func (r *handleReader) ReadBatch(dst []trace.Branch) (int, error) {
	if len(dst) == 0 {
		return 0, nil
	}
	rem := len(r.h.pcs) - r.pos
	if rem <= 0 {
		return 0, io.EOF
	}
	n := len(dst)
	if n > rem {
		n = rem
	}
	for i := 0; i < n; i++ {
		r.decode(r.pos+i, &dst[i])
	}
	r.pos += n
	if n < len(dst) {
		return n, io.EOF
	}
	return n, nil
}
