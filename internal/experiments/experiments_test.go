package experiments

import (
	"strings"
	"testing"

	"llbp/internal/report"
	"llbp/internal/workload"
)

func TestRegistryIDsUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range Registry() {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Errorf("experiment %q incomplete", e.ID)
		}
		if seen[e.ID] {
			t.Errorf("duplicate experiment id %q", e.ID)
		}
		seen[e.ID] = true
	}
	// Every figure and table of the evaluation must be present.
	for _, id := range []string{
		"table1", "table2", "table3", "fig1", "fig2", "fig3a", "fig3b",
		"fig5", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14",
		"fig15", "ablation", "softerror", "extdelay", "extgate", "extbaselines", "extscale",
	} {
		if !seen[id] {
			t.Errorf("missing experiment %q", id)
		}
	}
}

func TestByID(t *testing.T) {
	all, err := ByID("all")
	if err != nil || len(all) != len(Registry()) {
		t.Errorf("ByID(all) = %d, %v", len(all), err)
	}
	two, err := ByID("fig9, fig10")
	if err != nil || len(two) != 2 {
		t.Fatalf("ByID pair failed: %v", err)
	}
	if two[0].ID != "fig9" || two[1].ID != "fig10" {
		t.Error("ByID order must follow the request")
	}
	if _, err := ByID("nope"); err == nil {
		t.Error("unknown id must error")
	}
}

// tinyHarness runs two workloads at very small budgets: enough to
// exercise every code path quickly.
func tinyHarness(t *testing.T) *Harness {
	t.Helper()
	kafka, err := workload.ByName("Kafka")
	if err != nil {
		t.Fatal(err)
	}
	tomcat, err := workload.ByName("Tomcat")
	if err != nil {
		t.Fatal(err)
	}
	return NewHarness(Config{
		Warmup:       10_000,
		Measure:      40_000,
		SweepWarmup:  5_000,
		SweepMeasure: 20_000,
		Workloads:    []*workload.Source{kafka, tomcat},
	})
}

// parallelTinyHarness is tinyHarness with a 4-wide admission gate.
func parallelTinyHarness(t *testing.T) *Harness {
	t.Helper()
	base := tinyHarness(t)
	cfg := base.Cfg
	cfg.Parallelism = 4
	return NewHarness(cfg)
}

func TestRunMemoization(t *testing.T) {
	h := tinyHarness(t)
	wl := h.Cfg.workloads()[0]
	a, err := h.Run(wl, Spec64K())
	if err != nil {
		t.Fatal(err)
	}
	b, err := h.Run(wl, Spec64K())
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("identical runs must be memoized")
	}
	c, err := h.RunSweep(wl, Spec64K())
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Error("different budgets must not share cache entries")
	}
}

// TestPrewarmParallel fans the full (workload × spec) grid out through
// the harness admission gate and checks the cells land in the memo cache;
// run under -race this is the concurrency regression test for the
// singleflight + runner plumbing.
func TestPrewarmParallel(t *testing.T) {
	h := parallelTinyHarness(t)
	specs := []PredictorSpec{Spec64K(), SpecInfTAGE(), SpecLLBPDefault()}
	if errs := h.Prewarm(h.Cfg.workloads(), specs); len(errs) != 0 {
		t.Fatalf("prewarm failed: %v", errs)
	}
	// Every cell must now be a cache hit returning the same pointer.
	for _, wl := range h.Cfg.workloads() {
		for _, spec := range specs {
			a, err := h.Run(wl, spec)
			if err != nil {
				t.Fatal(err)
			}
			b, _ := h.Run(wl, spec)
			if a != b {
				t.Errorf("%s/%s not memoized after prewarm", wl.Name(), spec.Key)
			}
		}
	}
}

// TestConcurrentSameCellSingleflight requests one cell from many
// goroutines; all must get the same output pointer (computed once).
func TestConcurrentSameCellSingleflight(t *testing.T) {
	h := parallelTinyHarness(t)
	wl := h.Cfg.workloads()[0]
	outs := make([]*RunOutput, 8)
	errs := make([]error, 8)
	done := make(chan int, 8)
	for i := 0; i < 8; i++ {
		go func(i int) {
			outs[i], errs[i] = h.Run(wl, Spec64K())
			done <- i
		}(i)
	}
	for i := 0; i < 8; i++ {
		<-done
	}
	for i := 1; i < 8; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if outs[i] != outs[0] {
			t.Error("concurrent identical cells must be deduplicated")
		}
	}
}

func TestSpecKeysUnique(t *testing.T) {
	specs := []PredictorSpec{
		Spec64K(), Spec128K(), Spec256K(), Spec512K(), Spec1M(),
		SpecInfTAGE(), SpecInfTSL(), SpecLLBPDefault(), SpecLLBP0Lat(),
	}
	seen := map[string]bool{}
	for _, s := range specs {
		if seen[s.Key] {
			t.Errorf("duplicate spec key %q", s.Key)
		}
		seen[s.Key] = true
	}
}

func TestStaticExperiments(t *testing.T) {
	h := tinyHarness(t)
	for _, id := range []string{"table2", "table3"} {
		exps, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		tables, err := exps[0].Run(h)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(tables) == 0 || len(tables[0].Rows) == 0 {
			t.Errorf("%s produced no rows", id)
		}
	}
}

func TestTable1RunsOnHarnessWorkloads(t *testing.T) {
	h := tinyHarness(t)
	tables, err := Table1(h)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables[0].Rows) != 2 {
		t.Errorf("Table1 rows = %d, want the 2 harness workloads", len(tables[0].Rows))
	}
}

// TestFig9EndToEnd is the deepest integration test: four predictor
// configurations on two workloads, checking the table shape and that the
// reduction columns parse.
func TestFig9EndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	h := tinyHarness(t)
	tables, err := Fig9(h)
	if err != nil {
		t.Fatal(err)
	}
	rows := tables[0].Rows
	if len(rows) != 3 { // 2 workloads + mean
		t.Fatalf("Fig9 rows = %d", len(rows))
	}
	if rows[2][0] != "Mean" {
		t.Error("last row must be the mean")
	}
}

func TestFig15EndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	h := tinyHarness(t)
	tables, err := Fig15(h)
	if err != nil {
		t.Fatal(err)
	}
	var labels []string
	for _, r := range tables[0].Rows {
		labels = append(labels, r[0])
	}
	joined := strings.Join(labels, "|")
	for _, want := range []string{"No Override", "Both Correct", "Good Override", "Bad Override"} {
		if !strings.Contains(joined, want) {
			t.Errorf("Fig15 missing category %q", want)
		}
	}
}

func TestTable3MatchesEnergyModel(t *testing.T) {
	h := tinyHarness(t)
	tables, err := Table3(h)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables[0].Rows) != 5 {
		t.Errorf("Table3 rows = %d, want 5", len(tables[0].Rows))
	}
}

// TestAllExperimentsRun executes every registered experiment at micro
// budgets — the regression net guaranteeing each figure/table stays
// regenerable end to end.
func TestAllExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the whole registry; skipped in -short")
	}
	h := tinyHarness(t)
	for _, e := range Registry() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tables, err := e.Run(h)
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if len(tables) == 0 {
				t.Fatalf("%s produced no tables", e.ID)
			}
			for _, tab := range tables {
				if len(tab.Rows) == 0 {
					t.Errorf("%s: table %q has no rows", e.ID, tab.Title)
				}
				if tab.Title == "" {
					t.Errorf("%s: untitled table", e.ID)
				}
			}
		})
	}
}

func TestChartHelper(t *testing.T) {
	tab := Must2(Table3(tinyHarness(t)))
	c := Chart(tab[0])
	if c == nil || len(c.Values) < 2 {
		t.Fatal("Table3 must chart")
	}
	empty := Chart(&report.Table{Header: []string{"a", "b"}})
	if empty != nil {
		t.Error("tables without numeric rows must not chart")
	}
}

// Must2 unwraps a (tables, error) pair in tests.
func Must2(tables []*report.Table, err error) []*report.Table {
	if err != nil {
		panic(err)
	}
	return tables
}
