package experiments

import (
	"fmt"

	"llbp/internal/core"
	"llbp/internal/gshare"
	"llbp/internal/perceptron"
	"llbp/internal/predictor"
	"llbp/internal/report"
	"llbp/internal/stats"
)

// extDelays is the access-delay axis of the storage-virtualization study.
var extDelays = []float64{0, 2, 6, 12, 16, 24, 48}

// ExtDelay explores the §V-A future-work direction the paper leaves open:
// virtualizing LLBP's bulk storage into the cache hierarchy. The key
// question is how sensitive LLBP's gain is to the pattern-set access
// latency — a dedicated array costs ~6 cycles, an L2-resident one ~16, an
// L3-resident one tens. The sweep runs the evaluated design with
// increasing access delays at the default prefetch distance (D=4) and at
// the doubled distance (D=8) that buys the prefetcher more lead time.
func ExtDelay(h *Harness) ([]*report.Table, error) {
	t := report.New("Extension: storage-virtualization latency sensitivity — mean MPKI reduction [%]",
		"prefetch-distance", "d0cyc", "d2cyc", "d6cyc", "d12cyc", "d16cyc", "d24cyc", "d48cyc")
	for _, d := range []int{4, 8} {
		row := []interface{}{fmt.Sprintf("D=%d", d)}
		for _, delay := range extDelays {
			cfg := core.DefaultConfig()
			cfg.D = d
			cfg.PrefetchDelay = delay
			cfg.Label = fmt.Sprintf("LLBP-D%d-L%g", d, delay)
			spec := SpecLLBP(fmt.Sprintf("llbp:d=%d,delay=%g", d, delay), cfg)
			var reds []float64
			for _, wl := range h.Cfg.workloads() {
				base, err := h.RunSweep(wl, Spec64K())
				if err != nil {
					return nil, err
				}
				out, err := h.RunSweep(wl, spec)
				if err != nil {
					return nil, err
				}
				reds = append(reds, stats.Reduction(base.Res.MPKI, out.Res.MPKI))
			}
			row = append(row, meanRow(reds))
		}
		t.AddRow(row...)
	}
	t.Caption = "§V-A leaves storage virtualization to future work; the gain must degrade gracefully with latency for it to be viable."
	return []*report.Table{t}, nil
}

// ExtAutoDisable evaluates the §V power optimization: LLBP with the
// auto-disable gate must retain most of the MPKI reduction while skipping
// a meaningful share of LLBP activity on workloads where the baseline is
// already accurate.
func ExtAutoDisable(h *Harness) ([]*report.Table, error) {
	t := report.New("Extension: auto-disable power gate",
		"workload", "llbp-red%", "gated-red%", "disabled-preds-%", "cd-lookups-saved-%")
	var reds, gatedReds, off, saved []float64
	for _, wl := range h.Cfg.workloads() {
		base, err := h.RunSweep(wl, Spec64K())
		if err != nil {
			return nil, err
		}
		llbp, err := h.RunSweep(wl, SpecLLBPDefault())
		if err != nil {
			return nil, err
		}
		gated, err := h.RunSweep(wl, SpecLLBP("llbp:autodisable", core.AutoDisableConfig()))
		if err != nil {
			return nil, err
		}
		a := stats.Reduction(base.Res.MPKI, llbp.Res.MPKI)
		b := stats.Reduction(base.Res.MPKI, gated.Res.MPKI)
		offPct := float64(gated.LLBP.DisabledPredictions) / float64(gated.LLBP.CondPredictions) * 100
		savedPct := 0.0
		if llbp.LLBP.CDLookups > 0 {
			savedPct = (1 - float64(gated.LLBP.CDLookups)/float64(llbp.LLBP.CDLookups)) * 100
		}
		reds, gatedReds = append(reds, a), append(gatedReds, b)
		off, saved = append(off, offPct), append(saved, savedPct)
		t.AddRow(wl.Name(), a, b, offPct, savedPct)
	}
	t.AddRow("Mean", meanRow(reds), meanRow(gatedReds), meanRow(off), meanRow(saved))
	t.Caption = "§V: \"when the accuracy of TAGE is sufficiently high, LLBP can be disabled to save power\"."
	return []*report.Table{t}, nil
}

// specGshare and specPerceptron build the pre-TAGE baselines.
func specGshare() PredictorSpec {
	return PredictorSpec{
		Key: "gshare",
		Build: func(*predictor.Clock) (predictor.Predictor, error) {
			return gshare.New(gshare.Default())
		},
	}
}

func specPerceptron() PredictorSpec {
	return PredictorSpec{
		Key: "perceptron",
		Build: func(*predictor.Clock) (predictor.Predictor, error) {
			return perceptron.New(perceptron.Default())
		},
	}
}

// ExtBaselines positions the whole baseline spectrum the paper's related
// work discusses (§VIII) on the Table I workloads: gshare and the
// perceptron (pre-TAGE designs) against 64K TSL and 64K TSL + LLBP. TAGE
// must dominate the single-table and linear predictors on server
// workloads, and LLBP extends TAGE.
func ExtBaselines(h *Harness) ([]*report.Table, error) {
	specs := []PredictorSpec{specGshare(), specPerceptron(), Spec64K(), SpecLLBPDefault()}
	t := report.New("Extension: baseline spectrum — MPKI",
		"workload", "gshare", "perceptron", "64K-TSL", "LLBP")
	cols := make(map[string][]float64, len(specs))
	for _, wl := range h.Cfg.workloads() {
		row := []interface{}{wl.Name()}
		for _, spec := range specs {
			out, err := h.RunSweep(wl, spec)
			if err != nil {
				return nil, err
			}
			cols[spec.Key] = append(cols[spec.Key], out.Res.MPKI)
			row = append(row, out.Res.MPKI)
		}
		t.AddRow(row...)
	}
	t.AddRow("Mean", meanRow(cols["gshare"]), meanRow(cols["perceptron"]),
		meanRow(cols["64k"]), meanRow(cols["llbp"]))
	t.Caption = "TAGE-class designs dominate single-table (gshare) and linear (perceptron) predictors on server workloads; LLBP extends the lead (§VIII)."
	return []*report.Table{t}, nil
}

// extScaleBudgets are the measurement budgets (branches) of the scale
// study.
var extScaleBudgets = []uint64{250_000, 500_000, 1_000_000, 2_000_000}

// ExtScale quantifies how the headline reductions depend on the
// simulation budget — the context working set grows with measured
// branches, so capacity-sensitive gaps (Inf TAGE, LLBP) widen toward the
// paper's 300M-instruction numbers. This study substantiates the scale
// caveats noted for Figures 13 and 14 (see EXPERIMENTS.md).
func ExtScale(h *Harness) ([]*report.Table, error) {
	wl := h.Cfg.workloads()[0]
	for _, w := range h.Cfg.workloads() {
		if w.Name() == "Tomcat" {
			wl = w
		}
	}
	t := report.New(fmt.Sprintf("Extension: budget sensitivity (%s) — MPKI (reduction vs 64K)", wl.Name()),
		"measured-branches", "64K-TSL", "LLBP", "Inf-TAGE")
	// The warmup is pinned to the headline budget rather than scaled with
	// the row: every budget row then shares one warm prefix per predictor
	// — and shares it with the headline cells — so the whole sweep forks a
	// single warm snapshot per spec instead of rewarming four times.
	warm := h.Cfg.Warmup
	for _, budget := range extScaleBudgets {
		base, err := h.runBudget(wl, Spec64K(), warm, budget)
		if err != nil {
			return nil, err
		}
		llbp, err := h.runBudget(wl, SpecLLBPDefault(), warm, budget)
		if err != nil {
			return nil, err
		}
		inf, err := h.runBudget(wl, SpecInfTAGE(), warm, budget)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprint(budget),
			fmt.Sprintf("%.3f", base.Res.MPKI),
			fmt.Sprintf("%.3f (%.1f%%)", llbp.Res.MPKI, stats.Reduction(base.Res.MPKI, llbp.Res.MPKI)),
			fmt.Sprintf("%.3f (%.1f%%)", inf.Res.MPKI, stats.Reduction(base.Res.MPKI, inf.Res.MPKI)))
	}
	t.Caption = "Larger budgets grow the context working set; capacity-driven gaps widen accordingly."
	return []*report.Table{t}, nil
}
