package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// PromContentType is the Content-Type of the Prometheus text exposition
// format this encoder emits.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders a registry snapshot in the Prometheus text
// exposition format (version 0.0.4). Output is deterministic: metric
// families are sorted by name and floats use the shortest round-trip
// formatting, so two snapshots with equal state render byte-identically.
//
// Mapping:
//   - counters render as counter families (integer values);
//   - gauges render as gauge families;
//   - histograms render Prometheus-style: cumulative "_bucket" samples
//     with an le label per bound plus le="+Inf", then "_sum" and
//     "_count" (the internal representation is per-bucket, so the
//     encoder accumulates);
//   - series have no Prometheus equivalent and render as two gauges,
//     "<name>_points" (point count) and "<name>_last" (latest value),
//     enough for dashboards to track liveness and level.
//
// Snapshot Seq and TimeUnixMS travel as "# llbp seq"/"# llbp time_unix_ms"
// comments, which Prometheus scrapers ignore and ParsePrometheus recovers.
func WritePrometheus(w io.Writer, snap Snapshot) error {
	bw := bufio.NewWriter(w)
	if snap.Seq > 0 {
		fmt.Fprintf(bw, "# llbp seq %d\n", snap.Seq)
	}
	if snap.TimeUnixMS > 0 {
		fmt.Fprintf(bw, "# llbp time_unix_ms %d\n", snap.TimeUnixMS)
	}
	for _, name := range sortedKeys(snap.Counters) {
		fmt.Fprintf(bw, "# TYPE %s counter\n%s %d\n", name, name, snap.Counters[name])
	}
	for _, name := range sortedKeys(snap.Gauges) {
		fmt.Fprintf(bw, "# TYPE %s gauge\n%s %s\n", name, name, promFloat(snap.Gauges[name]))
	}
	for _, name := range sortedKeys(snap.Histograms) {
		h := snap.Histograms[name]
		fmt.Fprintf(bw, "# TYPE %s histogram\n", name)
		cum := uint64(0)
		for i, bound := range h.Bounds {
			cum += h.Counts[i]
			fmt.Fprintf(bw, "%s_bucket{le=%q} %d\n", name, promFloat(bound), cum)
		}
		fmt.Fprintf(bw, "%s_bucket{le=\"+Inf\"} %d\n", name, h.Count)
		fmt.Fprintf(bw, "%s_sum %s\n", name, promFloat(h.Sum))
		fmt.Fprintf(bw, "%s_count %d\n", name, h.Count)
	}
	for _, name := range sortedKeys(snap.Series) {
		s := snap.Series[name]
		fmt.Fprintf(bw, "# TYPE %s_points gauge\n%s_points %d\n", name, name, len(s.Points))
		if len(s.Points) > 0 {
			fmt.Fprintf(bw, "# TYPE %s_last gauge\n%s_last %s\n", name, name, promFloat(s.Points[len(s.Points)-1]))
		}
	}
	return bw.Flush()
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// promFloat formats a float the shortest way that round-trips, matching
// what ParsePrometheus reads back.
func promFloat(v float64) string {
	switch {
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// PromSample is one parsed sample line of a Prometheus text document.
type PromSample struct {
	// Name is the full sample name, including any _bucket/_sum/_count
	// suffix.
	Name string
	// Labels holds the sample's label set ({le="0.5"} → {"le": "0.5"}).
	Labels map[string]string
	Value  float64
}

// PromDoc is a parsed Prometheus text document: the declared family
// types plus every sample, in file order.
type PromDoc struct {
	// Types maps family name → declared type ("counter", "gauge",
	// "histogram").
	Types map[string]string
	// Samples lists every sample line in order.
	Samples []PromSample
	// Seq and TimeUnixMS are recovered from the llbp comment lines when
	// present (0 otherwise).
	Seq        uint64
	TimeUnixMS int64
}

// Value returns the label-less sample with the given name.
func (d *PromDoc) Value(name string) (float64, bool) {
	for _, s := range d.Samples {
		if s.Name == name && len(s.Labels) == 0 {
			return s.Value, true
		}
	}
	return 0, false
}

// Buckets returns a histogram family's cumulative bucket counts keyed by
// le label, in file order.
func (d *PromDoc) Buckets(family string) []PromSample {
	var out []PromSample
	for _, s := range d.Samples {
		if s.Name == family+"_bucket" {
			out = append(out, s)
		}
	}
	return out
}

// ParsePrometheus parses a Prometheus text exposition document and
// validates the invariants WritePrometheus guarantees: every sample
// belongs to a declared family, histogram buckets are cumulative
// (non-decreasing) ending in an le="+Inf" bucket that equals the
// family's _count sample, and no family is declared twice. It is the
// parse-back half of the round-trip cmd/telemetrycheck verifies in CI.
func ParsePrometheus(data []byte) (*PromDoc, error) {
	doc := &PromDoc{Types: map[string]string{}}
	for ln, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := parsePromComment(doc, line); err != nil {
				return nil, fmt.Errorf("telemetry: prometheus line %d: %w", ln+1, err)
			}
			continue
		}
		sample, err := parsePromSample(line)
		if err != nil {
			return nil, fmt.Errorf("telemetry: prometheus line %d: %w", ln+1, err)
		}
		doc.Samples = append(doc.Samples, sample)
	}
	if err := validateProm(doc); err != nil {
		return nil, fmt.Errorf("telemetry: prometheus: %w", err)
	}
	return doc, nil
}

func parsePromComment(doc *PromDoc, line string) error {
	fields := strings.Fields(line)
	switch {
	case len(fields) >= 4 && fields[1] == "TYPE":
		name, typ := fields[2], fields[3]
		if typ != "counter" && typ != "gauge" && typ != "histogram" {
			return fmt.Errorf("unknown metric type %q for %s", typ, name)
		}
		if _, dup := doc.Types[name]; dup {
			return fmt.Errorf("family %s declared twice", name)
		}
		doc.Types[name] = typ
	case len(fields) == 4 && fields[1] == "llbp" && fields[2] == "seq":
		v, err := strconv.ParseUint(fields[3], 10, 64)
		if err != nil {
			return fmt.Errorf("bad llbp seq comment: %v", err)
		}
		doc.Seq = v
	case len(fields) == 4 && fields[1] == "llbp" && fields[2] == "time_unix_ms":
		v, err := strconv.ParseInt(fields[3], 10, 64)
		if err != nil {
			return fmt.Errorf("bad llbp time_unix_ms comment: %v", err)
		}
		doc.TimeUnixMS = v
	}
	return nil
}

func parsePromSample(line string) (PromSample, error) {
	s := PromSample{}
	rest := line
	if i := strings.IndexAny(rest, "{ "); i < 0 {
		return s, fmt.Errorf("sample %q has no value", line)
	} else {
		s.Name = rest[:i]
		rest = rest[i:]
	}
	if strings.HasPrefix(rest, "{") {
		end := strings.Index(rest, "}")
		if end < 0 {
			return s, fmt.Errorf("sample %q has an unterminated label set", line)
		}
		s.Labels = map[string]string{}
		for _, pair := range strings.Split(rest[1:end], ",") {
			k, v, ok := strings.Cut(pair, "=")
			if !ok {
				return s, fmt.Errorf("sample %q has a malformed label %q", line, pair)
			}
			unq, err := strconv.Unquote(v)
			if err != nil {
				return s, fmt.Errorf("sample %q label %s: %v", line, k, err)
			}
			s.Labels[k] = unq
		}
		rest = rest[end+1:]
	}
	rest = strings.TrimSpace(rest)
	v, err := parsePromValue(rest)
	if err != nil {
		return s, fmt.Errorf("sample %q value: %v", line, err)
	}
	s.Value = v
	return s, nil
}

func parsePromValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	}
	return strconv.ParseFloat(s, 64)
}

// family strips the histogram sample suffixes off a sample name when its
// base has a declared histogram type.
func (d *PromDoc) family(sample string) string {
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(sample, suffix)
		if base != sample && d.Types[base] == "histogram" {
			return base
		}
	}
	return sample
}

func validateProm(doc *PromDoc) error {
	for _, s := range doc.Samples {
		if _, ok := doc.Types[doc.family(s.Name)]; !ok {
			return fmt.Errorf("sample %s has no # TYPE declaration", s.Name)
		}
	}
	for name, typ := range doc.Types {
		if typ != "histogram" {
			continue
		}
		buckets := doc.Buckets(name)
		if len(buckets) == 0 {
			return fmt.Errorf("histogram %s has no buckets", name)
		}
		prev := -1.0
		var cum float64
		for i, b := range buckets {
			le, err := parsePromValue(b.Labels["le"])
			if err != nil {
				return fmt.Errorf("histogram %s: bad le %q", name, b.Labels["le"])
			}
			if le <= prev {
				return fmt.Errorf("histogram %s: le bounds not ascending", name)
			}
			prev = le
			if b.Value < cum {
				return fmt.Errorf("histogram %s: bucket counts not cumulative", name)
			}
			cum = b.Value
			if i == len(buckets)-1 && !math.IsInf(le, 1) {
				return fmt.Errorf("histogram %s: last bucket is not le=\"+Inf\"", name)
			}
		}
		count, ok := doc.Value(name + "_count")
		if !ok {
			return fmt.Errorf("histogram %s: missing _count", name)
		}
		if count != buckets[len(buckets)-1].Value {
			return fmt.Errorf("histogram %s: _count %g != +Inf bucket %g", name, count, buckets[len(buckets)-1].Value)
		}
		if _, ok := doc.Value(name + "_sum"); !ok {
			return fmt.Errorf("histogram %s: missing _sum", name)
		}
	}
	return nil
}
