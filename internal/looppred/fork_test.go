package looppred

import (
	"math/rand"
	"reflect"
	"testing"
)

func driveLoop(p *Predictor, seed int64, n int) {
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		pc := uint64(0x4000 + rng.Intn(48)*4)
		trip := 3 + int(pc>>4)%5
		taken := i%trip != trip-1 // regular loops with per-branch trip counts
		p.Predict(pc)
		p.Update(pc, taken, rng.Intn(4) == 0)
	}
}

// TestForkEquivalence: fork-then-diverge must match two independently
// warmed twins byte for byte.
func TestForkEquivalence(t *testing.T) {
	const warm, diverge = 4000, 3000
	mk := func() *Predictor {
		p, err := New(4, 4)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	parent, twinP, twinC := mk(), mk(), mk()
	driveLoop(parent, 11, warm)
	driveLoop(twinP, 11, warm)
	driveLoop(twinC, 11, warm)

	child := parent.Fork()

	driveLoop(parent, 22, diverge)
	driveLoop(twinP, 22, diverge)
	driveLoop(child, 33, diverge)
	driveLoop(twinC, 33, diverge)

	if !reflect.DeepEqual(parent, twinP) {
		t.Error("parent state not byte-identical to unforked twin")
	}
	if !reflect.DeepEqual(child, twinC) {
		t.Error("child state not byte-identical to independently warmed twin")
	}
}
