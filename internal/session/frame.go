// Package session is the streaming-prediction subsystem: predict as a
// service. A client opens a long-lived session bound to a predictor
// configuration (and optionally a workload warmup prefix, served from the
// experiment harness's copy-on-write warm-snapshot cache), then streams
// branch records at it and receives per-batch predictions, mispredict
// verdicts and live telemetry snapshots back.
//
// The wire contract (schema "llbp-session/1", NDJSON both ways):
//
//	POST   /v1/session                 open a session (Request → Status)
//	GET    /v1/session                 list session statuses
//	GET    /v1/session/{id}            one session's status
//	DELETE /v1/session/{id}            close a session
//	POST   /v1/session/{id}/branches   push client frames (hello, then
//	                                   branch-batch/checkpoint/drain/bye);
//	                                   claims the session lease for the
//	                                   duration of the connection
//	GET    /v1/session/{id}/stream     pull server frames (predictions,
//	                                   checkpoint, telemetry, done);
//	                                   ?from=N resumes after seq N,
//	                                   ?follow=1 waits for new frames
//
// Sessions are exactly-once across kills: every applied branch batch is
// journaled before its predictions are emitted, and a restarted daemon
// rebuilds the predictor deterministically (warm-snapshot fork + journal
// replay), so a killed-and-resumed session's output stream is
// byte-identical to an uninterrupted one. Ownership is lease-epoch
// fenced exactly like the job service: each push connection claims the
// session and bumps its epoch, and a superseded connection can never
// apply a batch or emit a frame again — drain/reconnect migration
// continues with zero duplicated or skipped sequence numbers.
package session

import (
	"bufio"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"

	"llbp/internal/trace"
)

// Schema identifies the session wire format, both directions.
const Schema = "llbp-session/1"

// Client→server frame types.
const (
	FrameHello       = "hello"
	FrameBranchBatch = "branch-batch"
	FrameCheckpoint  = "checkpoint"
	FrameDrain       = "drain"
	FrameBye         = "bye"
)

// Server→client frame types (OutFrame.Type).
const (
	FramePredictions = "predictions"
	FrameCkptAck     = "checkpoint"
	FrameTelemetry   = "telemetry"
	FrameDone        = "done"
	FrameError       = "error"
)

// Limits enforced by the frame parser. Oversized input is a protocol
// error, not a resize: a malicious or broken client cannot make the
// server buffer an unbounded line.
const (
	// MaxFrameBytes bounds one NDJSON line.
	MaxFrameBytes = 1 << 20
	// MaxBatchBranches bounds one branch-batch frame.
	MaxBatchBranches = 8192
)

// BranchRec is one branch record on the wire — trace.Branch with wire
// names and without the trace-replay-only fields.
type BranchRec struct {
	PC     uint64 `json:"pc"`
	Target uint64 `json:"target,omitempty"`
	// Kind is the trace.BranchType numeric value.
	Kind  uint8 `json:"kind,omitempty"`
	Taken bool  `json:"taken,omitempty"`
	// Instructions is the straight-line instruction count preceding the
	// branch (advances the session clock, which times pattern prefetch).
	Instructions uint32 `json:"instr,omitempty"`
	// TargetMiss marks a non-conditional transfer whose target the
	// front-end missed (forces a pipeline reset, like trace replay).
	TargetMiss bool `json:"target_miss,omitempty"`
}

// Branch converts the wire record to a trace.Branch.
func (r BranchRec) Branch() trace.Branch {
	return trace.Branch{
		PC:                 r.PC,
		Target:             r.Target,
		Type:               trace.BranchType(r.Kind),
		Taken:              r.Taken,
		Instructions:       r.Instructions,
		MispredictedTarget: r.TargetMiss,
	}
}

// Frame is one client→server NDJSON line.
type Frame struct {
	Type string `json:"type"`
	// Schema must be Schema on the hello frame; ignored elsewhere.
	Schema string `json:"schema,omitempty"`
	// Seq is the 1-based batch sequence number, assigned by the client
	// and strictly increasing within a session. The server acknowledges
	// by cursor: a reconnecting client may replay already-applied
	// sequence numbers (they are skipped idempotently), but must never
	// skip ahead.
	Seq uint64 `json:"seq,omitempty"`
	// Branches carries the branch-batch payload.
	Branches []BranchRec `json:"branches,omitempty"`
}

// OutFrame is one server→client NDJSON line.
type OutFrame struct {
	Type string `json:"type"`
	// Seq is the persisted frame's 1-based position in the session's
	// output log (predictions/checkpoint/done). An interrupted stream
	// reader resumes with ?from=N. Ephemeral telemetry frames carry no
	// Seq.
	Seq uint64 `json:"seq,omitempty"`
	// Batch echoes the client batch sequence the frame answers.
	Batch uint64 `json:"batch,omitempty"`
	// N is the number of branches in the answered batch.
	N int `json:"n,omitempty"`
	// Outcomes is the per-branch verdict stream for a predictions frame:
	// base64(raw bytes), one byte per conditional branch in batch order;
	// bit0 = predicted taken, bit1 = mispredicted. Non-conditional
	// records produce no byte (they have no direction prediction).
	Outcomes string `json:"outcomes,omitempty"`
	// Mispredicts counts direction mispredictions in the batch.
	Mispredicts uint64 `json:"mispredicts,omitempty"`
	// Branches is the session's cumulative applied branch count.
	Branches uint64 `json:"branches,omitempty"`
	// Accuracy/MPKIProxy are live telemetry snapshot fields (ephemeral).
	Accuracy  float64 `json:"accuracy,omitempty"`
	MPKIProxy float64 `json:"mpki_proxy,omitempty"`
	// State reports the session state on done frames.
	State string `json:"state,omitempty"`
	// Error carries a protocol or apply failure.
	Error string `json:"error,omitempty"`
}

// EncodeOutcomes packs per-branch verdict bytes for the wire.
func EncodeOutcomes(raw []byte) string {
	return base64.StdEncoding.EncodeToString(raw)
}

// DecodeOutcomes unpacks a predictions frame's verdict bytes.
func DecodeOutcomes(s string) ([]byte, error) {
	return base64.StdEncoding.DecodeString(s)
}

// Outcome byte layout (one byte per conditional branch).
const (
	OutcomeTaken      = 1 << 0
	OutcomeMispredict = 1 << 1
)

// FrameReader parses client frames off an NDJSON stream, enforcing the
// protocol limits. It is deliberately strict: unknown frame types,
// oversized lines, oversized batches and malformed JSON are errors, not
// warnings — the session layer closes the connection and the client
// resumes from its cursor.
type FrameReader struct {
	sc  *bufio.Scanner
	err error
}

// NewFrameReader wraps r.
func NewFrameReader(r io.Reader) *FrameReader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), MaxFrameBytes)
	return &FrameReader{sc: sc}
}

// Next returns the next frame, io.EOF at clean end of stream, or a
// protocol error. After an error every subsequent call returns the same
// error.
func (fr *FrameReader) Next() (Frame, error) {
	if fr.err != nil {
		return Frame{}, fr.err
	}
	for {
		if !fr.sc.Scan() {
			if err := fr.sc.Err(); err != nil {
				if err == bufio.ErrTooLong {
					err = fmt.Errorf("session: frame exceeds %d bytes", MaxFrameBytes)
				}
				fr.err = err
				return Frame{}, err
			}
			fr.err = io.EOF
			return Frame{}, io.EOF
		}
		line := fr.sc.Bytes()
		if len(trimSpace(line)) == 0 {
			continue // tolerate blank lines between frames
		}
		var f Frame
		if err := json.Unmarshal(line, &f); err != nil {
			fr.err = fmt.Errorf("session: malformed frame: %w", err)
			return Frame{}, fr.err
		}
		if err := ValidateFrame(f); err != nil {
			fr.err = err
			return Frame{}, err
		}
		return f, nil
	}
}

// ValidateFrame checks one client frame against the protocol rules that
// do not require session state (sequence continuity is the session's
// job).
func ValidateFrame(f Frame) error {
	switch f.Type {
	case FrameHello:
		if f.Schema != Schema {
			return fmt.Errorf("session: hello schema %q, want %q", f.Schema, Schema)
		}
		return nil
	case FrameBranchBatch:
		if f.Seq == 0 {
			return fmt.Errorf("session: branch-batch without seq")
		}
		if len(f.Branches) == 0 {
			return fmt.Errorf("session: empty branch-batch (seq %d)", f.Seq)
		}
		if len(f.Branches) > MaxBatchBranches {
			return fmt.Errorf("session: batch of %d branches exceeds %d (seq %d)",
				len(f.Branches), MaxBatchBranches, f.Seq)
		}
		return nil
	case FrameCheckpoint, FrameDrain, FrameBye:
		if len(f.Branches) != 0 {
			return fmt.Errorf("session: %s frame must not carry branches", f.Type)
		}
		return nil
	default:
		return fmt.Errorf("session: unknown frame type %q", f.Type)
	}
}

// trimSpace is bytes.TrimSpace for the blank-line check without
// importing bytes for one call… except it is clearer to just use it.
func trimSpace(b []byte) []byte {
	for len(b) > 0 && (b[0] == ' ' || b[0] == '\t' || b[0] == '\r') {
		b = b[1:]
	}
	for len(b) > 0 && (b[len(b)-1] == ' ' || b[len(b)-1] == '\t' || b[len(b)-1] == '\r') {
		b = b[:len(b)-1]
	}
	return b
}
