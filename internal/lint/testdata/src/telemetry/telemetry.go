// Package telemetry is a fixture stub mirroring llbp/internal/telemetry:
// its import path ends in "telemetry", so the telemetrysafe analyzer
// exempts it (the implementation must touch its own fields). The
// instrument fields are exported here, unlike the real package, so that
// the app fixture can demonstrate the field-access diagnostic in code
// that still compiles.
package telemetry

// Counter is a fixture instrument with a deliberately exported field.
type Counter struct{ V uint64 }

// Inc touches the field directly — fine inside the telemetry package.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.V++
}

// Add accumulates a delta.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.V += n
}

// Value reads the field — fine here.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.V
}

// Gauge is a fixture instrument.
type Gauge struct{ Bits uint64 }

// Set stores a level.
func (g *Gauge) Set(v uint64) {
	if g == nil {
		return
	}
	g.Bits = v
}

// Registry is the fixture instrument factory.
type Registry struct {
	counters map[string]*Counter
	gauges   map[string]*Gauge
}

// NewRegistry returns an enabled registry.
func NewRegistry() *Registry {
	return &Registry{counters: map[string]*Counter{}, gauges: map[string]*Gauge{}}
}

// Counter registers (or finds) the named counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge registers (or finds) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}
