package tsl

import "llbp/internal/faults"

// FaultFields implements faults.Surface for the composed TAGE-SC-L
// predictor: the TAGE tagged tables plus the statistical corrector's
// counter arrays. (The loop predictor's few dozen entries are negligible
// SRAM and are excluded, as is the bimodal base table — the fault studies
// target the tagged pattern storage the paper scales.)
func (p *Predictor) FaultFields() []faults.Field {
	fields := p.tage.FaultFields()
	if p.sc != nil {
		fields = append(fields, p.sc.FaultFields()...)
	}
	return fields
}

var _ faults.Surface = (*Predictor)(nil)
