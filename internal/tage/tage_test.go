package tage

import (
	"llbp/internal/assert"
	"testing"

	"llbp/internal/trace"
)

func mustNew(t *testing.T, cfg Config) *Predictor {
	t.Helper()
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// train runs predict/update over a deterministic outcome function and
// returns the misprediction rate over the last half.
func train(p *Predictor, n int, next func(i int) (pc uint64, taken bool)) float64 {
	miss, cnt := 0, 0
	for i := 0; i < n; i++ {
		pc, taken := next(i)
		pred := p.Predict(pc)
		p.Update(pc, taken)
		if i >= n/2 {
			cnt++
			if pred != taken {
				miss++
			}
		}
	}
	return float64(miss) / float64(cnt)
}

func TestAlwaysTaken(t *testing.T) {
	p := mustNew(t, DefaultConfig())
	mr := train(p, 2000, func(int) (uint64, bool) { return 0x1000, true })
	if mr > 0.01 {
		t.Errorf("always-taken missrate %.3f", mr)
	}
}

func TestShortPattern(t *testing.T) {
	p := mustNew(t, DefaultConfig())
	pat := []bool{true, true, false, true, false, false, true}
	mr := train(p, 40000, func(i int) (uint64, bool) { return 0x2000, pat[i%len(pat)] })
	if mr > 0.03 {
		t.Errorf("period-7 missrate %.3f", mr)
	}
}

func TestLongPattern(t *testing.T) {
	// Period-40 pattern needs a longer-history table.
	p := mustNew(t, DefaultConfig())
	pat := make([]bool, 40)
	seed := uint64(0x9E3779B97F4A7C15)
	for i := range pat {
		seed ^= seed << 13
		seed ^= seed >> 7
		seed ^= seed << 17
		pat[i] = seed&1 == 1
	}
	mr := train(p, 120000, func(i int) (uint64, bool) { return 0x3000, pat[i%len(pat)] })
	if mr > 0.05 {
		t.Errorf("period-40 missrate %.3f", mr)
	}
}

func TestManyBiasedBranches(t *testing.T) {
	p := mustNew(t, DefaultConfig())
	mr := train(p, 300000, func(i int) (uint64, bool) {
		pc := uint64(0x1000 + (i%2000)*4)
		return pc, pc%3 != 0
	})
	if mr > 0.01 {
		t.Errorf("static-biased missrate %.3f", mr)
	}
}

func TestHistoryCorrelatedAcrossBranches(t *testing.T) {
	// Branch B's outcome equals branch A's previous outcome: global
	// history catches it where per-PC state cannot.
	p := mustNew(t, DefaultConfig())
	seed := uint64(12345)
	lastA := false
	miss, cnt := 0, 0
	for i := 0; i < 40000; i++ {
		seed ^= seed << 13
		seed ^= seed >> 7
		seed ^= seed << 17
		a := seed&1 == 1
		predA := p.Predict(0xA000)
		_ = predA
		p.Update(0xA000, a)
		predB := p.Predict(0xB000)
		p.Update(0xB000, a) // B copies A, visible via 1-deep history
		if i > 20000 {
			cnt++
			if predB != a {
				miss++
			}
		}
		lastA = a
	}
	_ = lastA
	if mr := float64(miss) / float64(cnt); mr > 0.05 {
		t.Errorf("cross-branch correlation missrate %.3f", mr)
	}
}

func TestInfiniteModeNoCapacityLoss(t *testing.T) {
	// A pattern working set far beyond any single finite table: each of
	// 3000 branches carries a distinct periodic pattern. Infinite TAGE
	// must do strictly better than the finite baseline.
	gen := func(i int) (uint64, bool) {
		b := i % 3000
		phase := (i / 3000) % 4
		return uint64(0x10000 + b*4), (uint64(b)*2654435761+uint64(phase))&2 == 0
	}
	fin := mustNew(t, DefaultConfig())
	inf := mustNew(t, DefaultConfig().InfiniteConfig())
	mrF := train(fin, 400000, gen)
	mrI := train(inf, 400000, gen)
	if mrI > mrF {
		t.Errorf("infinite mode (%.4f) must not lose to finite (%.4f)", mrI, mrF)
	}
	if inf.PatternCount() == 0 {
		t.Error("infinite mode must have allocated patterns")
	}
}

func TestUpdateWithoutPredictPanics(t *testing.T) {
	if !assert.Enabled {
		t.Skip("contract panics are debug assertions; run with -tags llbpdebug")
	}
	p := mustNew(t, DefaultConfig())
	p.Predict(0x40)
	defer func() {
		if recover() == nil {
			t.Error("Update with wrong pc must panic")
		}
	}()
	p.Update(0x44, true)
}

func TestUpdateHistoryOnlyAdvancesHistory(t *testing.T) {
	// After UpdateHistoryOnly, the same (pc, history) must hash
	// differently than before — i.e. history moved — while no counters
	// trained (prediction unchanged for a cold branch).
	p := mustNew(t, DefaultConfig())
	p.Predict(0x40)
	idxBefore := p.index(0x40, 5)
	p.UpdateHistoryOnly(0x40, true)
	p.Predict(0x40)
	idxAfter := p.index(0x40, 5)
	if idxBefore == idxAfter {
		t.Error("history did not advance (index hash unchanged); possible but unlikely — investigate")
	}
	p.Update(0x40, true)
}

func TestTrackOtherAdvancesHistory(t *testing.T) {
	p := mustNew(t, DefaultConfig())
	p.Predict(0x40)
	h1 := p.tagHash(0x40, 8)
	p.Update(0x40, true)
	p.TrackOther(0x999, 0x1234, trace.Call)
	if h2 := p.tagHash(0x40, 8); h1 == h2 {
		t.Error("TrackOther must advance folded histories (tag unchanged)")
	}
}

func TestProviderDetailConsistency(t *testing.T) {
	p := mustNew(t, DefaultConfig())
	// Cold predictor: bimodal provides.
	p.Predict(0x4000)
	if p.LastProviderTable() != -1 {
		t.Error("cold prediction must come from the bimodal")
	}
	if p.ProviderLen() != 0 {
		t.Error("bimodal provider length must be 0")
	}
	if p.LastPatternKey() != 0 {
		t.Error("bimodal must have no pattern key")
	}
	p.Update(0x4000, true)
	// Train an alternating branch until a tagged provider appears.
	sawTagged := false
	for i := 0; i < 2000 && !sawTagged; i++ {
		p.Predict(0x4000)
		if p.LastProviderTable() >= 0 {
			sawTagged = true
			if p.ProviderLen() != p.Config().HistLengths[p.LastProviderTable()] {
				t.Error("ProviderLen must match the provider table's history length")
			}
			if p.LastPatternKey() == 0 {
				t.Error("tagged provider must have a pattern key")
			}
		}
		p.Update(0x4000, i%2 == 0)
	}
	if !sawTagged {
		t.Error("alternating branch never got a tagged provider")
	}
}

func TestAllocationsAdvance(t *testing.T) {
	p := mustNew(t, DefaultConfig())
	train(p, 5000, func(i int) (uint64, bool) { return 0x7000, i%2 == 0 })
	if p.Allocations() == 0 {
		t.Error("training an alternating branch must allocate tagged entries")
	}
}

func TestConfigValidation(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []func(*Config){
		func(c *Config) { c.HistLengths = nil },
		func(c *Config) { c.TagBits = c.TagBits[:3] },
		func(c *Config) { c.HistLengths[3] = c.HistLengths[2] },
		func(c *Config) { c.TagBits[0] = 2 },
		func(c *Config) { c.LogEntries[0] = 30 },
		func(c *Config) { c.BimodalLog = 1 },
		func(c *Config) { c.CounterBits = 1 },
		func(c *Config) { c.PathBits = 0 },
	}
	for i, mod := range bad {
		cfg := DefaultConfig()
		// Deep-copy the slices so mutations do not leak across cases.
		cfg.HistLengths = append([]int(nil), cfg.HistLengths...)
		cfg.TagBits = append([]int(nil), cfg.TagBits...)
		cfg.LogEntries = append([]int(nil), cfg.LogEntries...)
		mod(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d passed validation", i)
		}
	}
}

func TestScaledStorage(t *testing.T) {
	base := DefaultConfig()
	scaled := base.Scaled(3)
	if scaled.StorageBits() <= base.StorageBits()*7 {
		t.Errorf("8x scaling grew storage only %d -> %d bits",
			base.StorageBits(), scaled.StorageBits())
	}
	// The 64K budget should be in the tens-of-KB range (tables only).
	kb := base.StorageBits() / 8 / 1024
	if kb < 40 || kb > 80 {
		t.Errorf("baseline storage %dKB out of the 64K-class range", kb)
	}
	if DefaultConfig().InfiniteConfig().StorageBits() != -1 {
		t.Error("infinite storage must report -1")
	}
}

func TestDefaultLengthsContainLLBPSubset(t *testing.T) {
	// §VI: LLBP's 12 base lengths must be a subset of TAGE's lengths
	// for the longest-match arbitration to compare like with like.
	llbp := []int{12, 26, 54, 78, 112, 161, 232, 336, 482, 695, 1444, 3000}
	have := map[int]bool{}
	for _, l := range DefaultHistLengths {
		have[l] = true
	}
	for _, l := range llbp {
		if !have[l] {
			t.Errorf("LLBP length %d missing from TAGE lengths", l)
		}
	}
}

func TestDeterminism(t *testing.T) {
	gen := func(i int) (uint64, bool) {
		return uint64(0x1000 + (i%97)*4), (i*2654435761)%7 < 3
	}
	a := mustNew(t, DefaultConfig())
	b := mustNew(t, DefaultConfig())
	for i := 0; i < 20000; i++ {
		pc, taken := gen(i)
		pa := a.Predict(pc)
		pb := b.Predict(pc)
		if pa != pb {
			t.Fatalf("step %d: predictors diverged", i)
		}
		a.Update(pc, taken)
		b.Update(pc, taken)
	}
}

func TestInfiniteConfigLabelAndCount(t *testing.T) {
	p := mustNew(t, DefaultConfig().InfiniteConfig())
	if p.Name() != "Inf TAGE" {
		t.Errorf("Name = %q", p.Name())
	}
	if p.PatternCount() != 0 {
		t.Error("fresh infinite TAGE must hold no patterns")
	}
}

func BenchmarkPredictUpdate(b *testing.B) {
	p, err := New(DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pc := uint64(0x1000 + (i%97)*4)
		p.Predict(pc)
		p.Update(pc, (i*2654435761)%7 < 3)
	}
}

func BenchmarkPredictUpdateInfinite(b *testing.B) {
	p, err := New(DefaultConfig().InfiniteConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pc := uint64(0x1000 + (i%97)*4)
		p.Predict(pc)
		p.Update(pc, (i*2654435761)%7 < 3)
	}
}

func BenchmarkTrackOther(b *testing.B) {
	p, err := New(DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.TrackOther(uint64(0x8000+(i%31)*4), 0x9000, trace.Call)
	}
}

func TestUpdateNoAllocTrainsWithoutAllocating(t *testing.T) {
	p := mustNew(t, DefaultConfig())
	// Alternating branch via UpdateNoAlloc only: counters/bimodal train,
	// but the tagged tables stay empty.
	for i := 0; i < 1000; i++ {
		p.Predict(0x6000)
		p.UpdateNoAlloc(0x6000, i%2 == 0)
	}
	if p.Allocations() != 0 {
		t.Errorf("UpdateNoAlloc allocated %d entries", p.Allocations())
	}
	// Mismatched pairing still panics in debug builds.
	if assert.Enabled {
		p.Predict(0x6000)
		defer func() {
			if recover() == nil {
				t.Error("mismatched UpdateNoAlloc must panic")
			}
		}()
		p.UpdateNoAlloc(0x6004, true)
	}
}

func TestLastConfidentTracksTraining(t *testing.T) {
	p := mustNew(t, DefaultConfig())
	p.Predict(0x4000)
	if p.LastConfident() {
		t.Error("cold bimodal entry must not be confident")
	}
	p.Update(0x4000, true)
	for i := 0; i < 50; i++ {
		p.Predict(0x4000)
		p.Update(0x4000, true)
	}
	p.Predict(0x4000)
	if !p.LastConfident() {
		t.Error("heavily reinforced branch must be confident")
	}
	p.Update(0x4000, true)
}

func TestLastTakenAndAltAccessors(t *testing.T) {
	p := mustNew(t, DefaultConfig())
	for i := 0; i < 500; i++ {
		got := p.Predict(0x4100)
		if p.LastTaken() != got {
			t.Fatal("LastTaken must mirror the returned prediction")
		}
		_ = p.LastAltTaken() // exercised; value depends on table state
		p.Update(0x4100, i%2 == 0)
	}
}

func TestAllocFailuresAndTickReset(t *testing.T) {
	// A tiny TAGE whose tables saturate quickly: allocation failures
	// must be counted, and the tick-based useful-bit reset must
	// eventually allow allocations again (allocations keep growing).
	cfg := DefaultConfig()
	cfg.LogEntries = make([]int, len(cfg.HistLengths))
	for i := range cfg.LogEntries {
		cfg.LogEntries[i] = 4 // 16 entries per table
	}
	p := mustNew(t, cfg)
	// Phase 1: predictable alternating branches fill the tiny tables
	// with entries whose useful bits get set (provider right, alt
	// wrong).
	for i := 0; i < 60000; i++ {
		pc := uint64(0x1000 + (i%500)*4)
		p.Predict(pc)
		p.Update(pc, (i/500)%2 == 0)
	}
	// Phase 2: a flood of fresh unpredictable branches must collide
	// with the useful entries: allocation failures get counted, and the
	// tick reset must keep the allocator moving.
	seed := uint64(99)
	for i := 0; i < 120000; i++ {
		seed ^= seed << 13
		seed ^= seed >> 7
		seed ^= seed << 17
		pc := uint64(0x90000 + (i%3000)*4)
		p.Predict(pc)
		p.Update(pc, seed&1 == 1)
	}
	if p.AllocFailures() == 0 {
		t.Error("oversubscribed tables must produce allocation failures")
	}
	if p.Allocations() < 1000 {
		t.Errorf("allocations stalled at %d — tick reset not recycling useful bits", p.Allocations())
	}
}

func TestHistoryCheckpointRoundTrip(t *testing.T) {
	p := mustNew(t, DefaultConfig())
	for i := 0; i < 2000; i++ {
		p.Predict(0x4000)
		p.Update(0x4000, i%3 == 0)
	}
	p.Predict(0x4000)
	idxBefore := make([]uint32, len(p.cfg.HistLengths))
	for i := range idxBefore {
		idxBefore[i] = p.index(0x4000, i)
	}
	cp := p.CheckpointHistory()
	p.Update(0x4000, true)
	// Wander.
	for i := 0; i < 100; i++ {
		p.TrackOther(uint64(0x9000+i*4), 0xA000, trace.Jump)
	}
	p.RestoreHistory(cp)
	p.Predict(0x4000)
	for i := range idxBefore {
		if got := p.index(0x4000, i); got != idxBefore[i] {
			t.Fatalf("table %d index differs after rollback: %#x vs %#x", i, got, idxBefore[i])
		}
	}
	p.Update(0x4000, true)
	// Mismatched checkpoint panics in debug builds.
	if assert.Enabled {
		small := mustNew(t, Config{
			HistLengths: []int{4, 8},
			TagBits:     []int{9, 9},
			LogEntries:  []int{10, 10},
			BimodalLog:  13, CounterBits: 3, PathBits: 16, Seed: 1,
		})
		defer func() {
			if recover() == nil {
				t.Error("mismatched checkpoint must panic")
			}
		}()
		p.RestoreHistory(small.CheckpointHistory())
	}
}

func TestPatternCountFinite(t *testing.T) {
	p := mustNew(t, DefaultConfig())
	want := 21 * 1024
	if got := p.PatternCount(); got != want {
		t.Errorf("finite PatternCount = %d, want %d", got, want)
	}
}
