package service

// White-box tests of the lease/epoch machinery, driven by an injected
// clock so lease expiry is a pure function of the test script — no
// sleeps, no timing dependence. The e2e chaos suite (chaos_e2e_test.go)
// covers the same mechanisms end to end against the real harness.

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"llbp/internal/chaos"
	"llbp/internal/experiments"
	"llbp/internal/telemetry"
)

// fakeClock is a hand-advanced wall clock injected via Options.Now.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1_700_000_000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// testCell builds a valid (registry-backed) cell spec; measure
// disambiguates cells within and across jobs.
func testCell(measure uint64) experiments.CellSpec {
	return experiments.CellSpec{Workload: "Tomcat", Predictor: "64k", Warmup: 1, Measure: measure}
}

// TestLeaseEpochFencing scripts the whole ownership lifecycle on a bare
// job: claim, heartbeat renewal, expiry revocation, and the epoch fence
// that makes a superseded dispatch's mutations vanish.
func TestLeaseEpochFencing(t *testing.T) {
	t0 := time.Unix(1_700_000_000, 0)
	ttl := time.Minute
	jb := newJob(context.Background(), "job-x", JobRequest{
		Schema: JobSchema,
		Cells:  []experiments.CellSpec{testCell(1), testCell(2), testCell(3)},
	})

	e1, runCtx1, ok := jb.claim("w0", t0, ttl)
	if !ok {
		t.Fatal("claim on a fresh job failed")
	}
	if _, _, ok := jb.claim("w1", t0.Add(time.Second), ttl); ok {
		t.Fatal("second claim succeeded against a live lease")
	}
	if !jb.heartbeat(e1, t0.Add(30*time.Second), ttl) {
		t.Fatal("heartbeat with the owning epoch failed")
	}
	if _, revoked := jb.revokeIfExpired(t0.Add(80 * time.Second)); revoked {
		t.Fatal("revoked a lease the heartbeat had renewed")
	}
	if !jb.addCell(e1, 0, "c0", []byte(`{"a":1}`)) {
		t.Fatal("owning epoch could not append an event")
	}

	owner, revoked := jb.revokeIfExpired(t0.Add(2 * time.Hour))
	if !revoked || owner != "w0" {
		t.Fatalf("revokeIfExpired = (%q, %v), want (w0, true)", owner, revoked)
	}
	if runCtx1.Err() == nil {
		t.Error("revocation did not cancel the dispatch's run context")
	}
	if jb.heartbeat(e1, t0.Add(2*time.Hour), ttl) {
		t.Error("revoked epoch renewed its lease")
	}
	if jb.addCell(e1, 1, "c1", []byte(`{}`)) {
		t.Error("revoked epoch appended an event")
	}
	if jb.finishEpoch(e1, StateDone) {
		t.Error("revoked epoch finalized the job")
	}

	e2, _, ok := jb.claim("w1", t0.Add(2*time.Hour), ttl)
	if !ok || e2 == e1 {
		t.Fatalf("re-claim = (epoch %d, %v), want a fresh epoch", e2, ok)
	}
	if !jb.hasCell(0) {
		t.Error("completed cell forgotten across re-dispatch")
	}
	if jb.addCell(e2, 0, "c0", []byte(`{"a":1}`)) {
		t.Error("re-dispatch double-emitted an already-evented cell")
	}
	if !jb.addCell(e2, 1, "c1", []byte(`{"b":2}`)) {
		t.Fatal("new owner could not append")
	}
	if !jb.addCellError(e2, 2, "c2", errors.New("boom")) {
		t.Fatal("new owner could not append an error event")
	}
	if !jb.finishEpoch(e2, StateFailed) {
		t.Fatal("new owner could not finalize")
	}
	if jb.addCell(e2, 0, "zombie", []byte(`{}`)) {
		t.Error("event appended after the terminal state")
	}

	evs, _, _, terminal, _ := jb.snapshot(0)
	if !terminal || len(evs) != 4 {
		t.Fatalf("final log: terminal=%v, %d events; want terminal, 4", terminal, len(evs))
	}
	for i, ev := range evs {
		if ev.Seq != uint64(i+1) {
			t.Errorf("event %d has Seq %d, want %d (resume arithmetic depends on it)", i, ev.Seq, i+1)
		}
	}
	if st := jb.status(); st.State != StateFailed || st.Completed != 2 || st.Failed != 1 {
		t.Errorf("final status = %+v", st)
	}
}

// stubRunner blocks each cell until released (or its context dies),
// reporting every start on started — enough to hold leases open at
// scripted moments. started must be buffered: a test may let cells start
// it never waits for (Kill would otherwise deadlock behind the send).
type stubRunner struct {
	started chan string
	release chan struct{}
}

func newStubRunner() *stubRunner {
	return &stubRunner{started: make(chan string, 16), release: make(chan struct{})}
}

func (r *stubRunner) RunCell(ctx context.Context, spec experiments.CellSpec) (*experiments.RunOutput, error) {
	r.started <- spec.Key()
	select {
	case <-r.release:
		return &experiments.RunOutput{}, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func waitStart(t testing.TB, r *stubRunner) string {
	t.Helper()
	select {
	case key := <-r.started:
		return key
	case <-time.After(10 * time.Second):
		t.Fatal("no cell started before the deadline")
		return ""
	}
}

func waitState(t testing.TB, s *Server, id string, want State) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if st, ok := s.Job(id); ok && st.State == want {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	st, _ := s.Job(id)
	t.Fatalf("job %s state = %s, want %s", id, st.State, want)
}

// TestSupervisorReclaimsExpiredLease wedges a worker mid-cell (the stub
// never returns), ages the lease on the fake clock, and checks that one
// reap cancels the dispatch, re-enqueues the job, and the re-dispatch —
// same worker pool — completes it exactly once.
func TestSupervisorReclaimsExpiredLease(t *testing.T) {
	clock := newFakeClock()
	stub := newStubRunner()
	reg := telemetry.NewRegistry()
	s, err := New(Options{
		Runner:             stub,
		Workers:            1,
		LeaseTTL:           time.Minute,
		SupervisorInterval: time.Hour, // ticker parked; the test calls reapLeases itself
		Now:                clock.Now,
		Registry:           reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	defer s.Kill()

	st, created, err := s.Submit(JobRequest{Schema: JobSchema, Cells: []experiments.CellSpec{testCell(1)}})
	if err != nil || !created {
		t.Fatalf("submit = %+v, %v, %v", st, created, err)
	}
	waitStart(t, stub) // first dispatch holds the lease, wedged in the stub

	clock.Advance(30 * time.Second)
	s.reapLeases()
	if got := reg.Snapshot().Counters["service_leases_reclaimed"]; got != 0 {
		t.Fatalf("live lease reclaimed (%d)", got)
	}

	clock.Advance(2 * time.Minute)
	s.reapLeases()
	if got := reg.Snapshot().Counters["service_leases_reclaimed"]; got != 1 {
		t.Fatalf("service_leases_reclaimed = %d, want 1", got)
	}

	// The revoked dispatch's context wakes the wedged stub; the worker
	// stands down, dequeues the requeued job, claims a fresh epoch and
	// starts the cell again. Release it this time.
	waitStart(t, stub)
	close(stub.release)
	waitState(t, s, st.ID, StateDone)

	if final, _ := s.Job(st.ID); final.Completed != 1 || final.Failed != 0 {
		t.Errorf("final status = %+v; want exactly one completed cell", final)
	}
}

// TestHeartbeatRenewalAndChaosSkip checks both halves of the progress
// heartbeat: a streaming progress tick renews the lease (a slow but live
// cell is not reclaimed), and the chaos HeartbeatSkip hook suppresses
// exactly that renewal, aging the lease to revocation as if the worker
// had gone silent.
func TestHeartbeatRenewalAndChaosSkip(t *testing.T) {
	run := func(t *testing.T, inj *chaos.Injector, wantReclaim uint64) {
		clock := newFakeClock()
		stub := newStubRunner()
		reg := telemetry.NewRegistry()
		s, err := New(Options{
			Runner:             stub,
			Workers:            1,
			LeaseTTL:           time.Minute,
			SupervisorInterval: time.Hour,
			Now:                clock.Now,
			Chaos:              inj,
			Registry:           reg,
		})
		if err != nil {
			t.Fatal(err)
		}
		s.Start()
		defer s.Kill()
		cell := testCell(1)
		st, _, err := s.Submit(JobRequest{Schema: JobSchema, Cells: []experiments.CellSpec{cell}})
		if err != nil {
			t.Fatal(err)
		}
		waitStart(t, stub)

		// 50s in: the cell is still simulating but streams progress. With
		// heartbeats working this renews the lease past the reap below;
		// with chaos skipping them, the lease ages out.
		clock.Advance(50 * time.Second)
		s.CellProgress(cell.Key(), progressStride, progressStride*2)
		clock.Advance(30 * time.Second) // 80s since claim, 30s since the tick
		s.reapLeases()
		if got := reg.Snapshot().Counters["service_leases_reclaimed"]; got != wantReclaim {
			t.Fatalf("service_leases_reclaimed = %d, want %d", got, wantReclaim)
		}
		if wantReclaim > 0 {
			waitStart(t, stub) // re-dispatch after revocation
		}
		close(stub.release)
		waitState(t, s, st.ID, StateDone)
	}

	t.Run("progress-renews", func(t *testing.T) { run(t, nil, 0) })
	t.Run("chaos-skip-ages-out", func(t *testing.T) {
		run(t, chaos.New(chaos.Rule{Hook: chaos.HeartbeatSkip, At: 1, Every: 1}), 1)
	})
}

// TestPriorityLanes holds the single worker on a gate job, queues a
// normal job then a high-priority one, and checks the worker drains the
// high lane first once freed.
func TestPriorityLanes(t *testing.T) {
	stub := newStubRunner()
	s, err := New(Options{Runner: stub, Workers: 1, LeaseTTL: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	defer s.Kill()

	gate := testCell(10)
	if _, _, err := s.Submit(JobRequest{Schema: JobSchema, Cells: []experiments.CellSpec{gate}}); err != nil {
		t.Fatal(err)
	}
	if got := waitStart(t, stub); got != gate.Key() {
		t.Fatalf("first started cell = %s, want the gate", got)
	}

	normal := testCell(20)
	high := testCell(30)
	if _, _, err := s.Submit(JobRequest{Schema: JobSchema, Priority: PriorityNormal, Cells: []experiments.CellSpec{normal}}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Submit(JobRequest{Schema: JobSchema, Priority: PriorityHigh, Cells: []experiments.CellSpec{high}}); err != nil {
		t.Fatal(err)
	}

	stub.release <- struct{}{} // free the gate
	if got := waitStart(t, stub); got != high.Key() {
		t.Errorf("after the gate the worker started %s; want the high-priority job first", got)
	}
	stub.release <- struct{}{}
	if got := waitStart(t, stub); got != normal.Key() {
		t.Errorf("last started cell = %s, want the normal-priority job", got)
	}
	stub.release <- struct{}{}
}

// TestTenantQuota fills one tenant's active-job quota, checks the shed
// error and that other tenants are unaffected, then frees the slot by
// finishing the job and resubmits successfully.
func TestTenantQuota(t *testing.T) {
	stub := newStubRunner()
	s, err := New(Options{Runner: stub, Workers: 1, LeaseTTL: time.Hour, TenantQuota: 1})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	defer s.Kill()

	first, _, err := s.Submit(JobRequest{Schema: JobSchema, Tenant: "acme", Cells: []experiments.CellSpec{testCell(1)}})
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = s.Submit(JobRequest{Schema: JobSchema, Tenant: "acme", Cells: []experiments.CellSpec{testCell(2)}})
	if !errors.Is(err, ErrTenantQuota) {
		t.Fatalf("over-quota submit error = %v, want ErrTenantQuota", err)
	}
	if _, _, err := s.Submit(JobRequest{Schema: JobSchema, Tenant: "globex", Cells: []experiments.CellSpec{testCell(3)}}); err != nil {
		t.Fatalf("other tenant shed by acme's quota: %v", err)
	}

	waitStart(t, stub)
	close(stub.release)
	waitState(t, s, first.ID, StateDone)
	if _, _, err := s.Submit(JobRequest{Schema: JobSchema, Tenant: "acme", Cells: []experiments.CellSpec{testCell(2)}}); err != nil {
		t.Fatalf("quota slot not released on completion: %v", err)
	}
}

// TestWorkerPanicSupervision injects a worker panic at cell pickup and
// checks the worker goroutine survives it: the panic is counted, the
// lease ages out on the fake clock, and the same (sole) worker completes
// the job on re-dispatch — exactly one cell event.
func TestWorkerPanicSupervision(t *testing.T) {
	clock := newFakeClock()
	stub := newStubRunner()
	reg := telemetry.NewRegistry()
	s, err := New(Options{
		Runner:             stub,
		Workers:            1,
		LeaseTTL:           time.Minute,
		SupervisorInterval: time.Hour,
		Now:                clock.Now,
		Chaos:              chaos.New(chaos.Rule{Hook: chaos.WorkerPanic, At: 1}),
		Registry:           reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	defer s.Kill()

	st, _, err := s.Submit(JobRequest{Schema: JobSchema, Cells: []experiments.CellSpec{testCell(1)}})
	if err != nil {
		t.Fatal(err)
	}

	// The dispatch panics before the stub ever runs; wait for the panic
	// counter, then age the abandoned lease and reap.
	deadline := time.Now().Add(10 * time.Second)
	for reg.Snapshot().Counters["service_worker_panics"] == 0 {
		if time.Now().After(deadline) {
			t.Fatal("worker panic never recorded")
		}
		time.Sleep(5 * time.Millisecond)
	}
	clock.Advance(2 * time.Minute)
	s.reapLeases()
	if got := reg.Snapshot().Counters["service_leases_reclaimed"]; got != 1 {
		t.Fatalf("service_leases_reclaimed = %d, want 1", got)
	}

	waitStart(t, stub) // the surviving worker picks the job back up
	close(stub.release)
	waitState(t, s, st.ID, StateDone)
	if final, _ := s.Job(st.ID); final.Completed != 1 {
		t.Errorf("final status = %+v; want exactly one completed cell", final)
	}
}

// TestSubmitValidation covers the new request surface: unknown priority
// rejected, duplicate submission deduped onto the same job with tenant
// and priority echoed in the status.
func TestSubmitValidation(t *testing.T) {
	stub := newStubRunner()
	close(stub.release)
	s, err := New(Options{Runner: stub, Workers: 1, LeaseTTL: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	defer s.Kill()

	if _, _, err := s.Submit(JobRequest{Schema: JobSchema, Priority: "urgent", Cells: []experiments.CellSpec{testCell(1)}}); err == nil {
		t.Error("unknown priority accepted")
	}
	req := JobRequest{Schema: JobSchema, Tenant: "acme", Priority: PriorityHigh, Cells: []experiments.CellSpec{testCell(1)}}
	st, created, err := s.Submit(req)
	if err != nil || !created {
		t.Fatalf("submit = %v, %v", created, err)
	}
	if st.Tenant != "acme" || st.Priority != PriorityHigh {
		t.Errorf("status does not echo tenant/priority: %+v", st)
	}
	st2, created, err := s.Submit(req)
	if err != nil || created || st2.ID != st.ID {
		t.Errorf("resubmit = (%s, %v, %v), want dedup onto %s", st2.ID, created, err, st.ID)
	}
}
