package cache

import (
	"errors"
	"sync"
	"testing"

	"llbp/internal/telemetry"
	"llbp/internal/trace"
	"llbp/internal/workload"
)

// keyedSource is a deterministic in-memory Source implementing Keyer.
type keyedSource struct {
	name     string
	seed     uint64
	branches []trace.Branch
	opens    int // Opens observed (synthesis count proxy); not race-guarded, single-threaded tests only
}

func newKeyedSource(name string, seed uint64, n int) *keyedSource {
	out := make([]trace.Branch, n)
	for i := range out {
		out[i] = trace.Branch{
			PC:           seed<<20 + uint64(i)*4,
			Target:       seed<<20 + uint64(i)*4 + 64,
			Type:         trace.BranchType(i % 6),
			Taken:        i%3 == 0,
			Instructions: uint32(i%9 + 1),
		}
	}
	return &keyedSource{name: name, seed: seed, branches: out}
}

func (s *keyedSource) Name() string { return s.name }
func (s *keyedSource) Open() trace.Reader {
	s.opens++
	return trace.NewSliceReader(s.branches)
}
func (s *keyedSource) CacheKey() uint64 { return s.seed }

// drain replays all of src into a slice.
func drain(t *testing.T, src trace.Source) []trace.Branch {
	t.Helper()
	var out []trace.Branch
	r := src.Open()
	var b trace.Branch
	for {
		if err := r.Read(&b); err != nil {
			if trace.IsEOF(err) {
				return out
			}
			t.Fatal(err)
		}
		out = append(out, b)
	}
}

// TestAcquireRoundTrip: a handle replays exactly the source's branches,
// via both Read and ReadBatch, and repeated Opens restart the stream.
func TestAcquireRoundTrip(t *testing.T) {
	src := newKeyedSource("wl", 7, 1000)
	c := New(1 << 20)
	h, err := c.Acquire(src, 1000)
	if err != nil || h == nil {
		t.Fatalf("Acquire: %v %v", h, err)
	}
	defer h.Release()
	if h.Name() != "wl" || h.Len() != 1000 {
		t.Fatalf("handle: name=%q len=%d", h.Name(), h.Len())
	}

	got := drain(t, h)
	if len(got) != 1000 {
		t.Fatalf("replayed %d branches", len(got))
	}
	for i := range got {
		if got[i] != src.branches[i] {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], src.branches[i])
		}
	}

	br := h.OpenBatch()
	dst := make([]trace.Branch, 333)
	var batched []trace.Branch
	for {
		n, err := br.ReadBatch(dst)
		batched = append(batched, dst[:n]...)
		if err != nil {
			if !trace.IsEOF(err) {
				t.Fatal(err)
			}
			break
		}
	}
	if len(batched) != 1000 {
		t.Fatalf("batched replay: %d branches", len(batched))
	}
	for i := range batched {
		if batched[i] != src.branches[i] {
			t.Fatalf("batched record %d mismatch", i)
		}
	}
}

// TestPrefixSharingAndExtension: a shorter request hits the existing
// buffer as a prefix; a longer one extends it without re-reading the
// prefix; the workload is synthesized once.
func TestPrefixSharingAndExtension(t *testing.T) {
	src := newKeyedSource("wl", 1, 2000)
	c := New(1 << 20)

	h1, err := c.Acquire(src, 1000)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := c.Acquire(src, 400) // prefix hit
	if err != nil {
		t.Fatal(err)
	}
	if h2.Len() != 400 {
		t.Fatalf("prefix handle len = %d", h2.Len())
	}
	h3, err := c.Acquire(src, 2000) // extension
	if err != nil {
		t.Fatal(err)
	}
	if h3.Len() != 2000 {
		t.Fatalf("extended handle len = %d", h3.Len())
	}
	if got := drain(t, h3); len(got) != 2000 || got[1999] != src.branches[1999] {
		t.Fatalf("extension replay wrong: %d records", len(got))
	}
	// Prefix handles acquired before the extension still replay their
	// original view.
	if got := drain(t, h2); len(got) != 400 || got[399] != src.branches[399] {
		t.Fatalf("old prefix handle corrupted by extension")
	}

	if src.opens != 1 {
		t.Errorf("source synthesized %d times, want 1", src.opens)
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 2 {
		t.Errorf("stats = %+v, want 1 hit (prefix) / 2 misses (initial+extension)", s)
	}
	if s.BytesResident != 2000*bytesPerBranch || s.Entries != 1 {
		t.Errorf("occupancy = %+v", s)
	}
	h1.Release()
	h2.Release()
	h3.Release()
}

// TestUncacheableSource: sources without a cache key are declined, not
// materialized.
func TestUncacheableSource(t *testing.T) {
	c := New(1 << 20)
	src := &trace.SliceSource{SourceName: "plain", Branches: make([]trace.Branch, 4)}
	h, err := c.Acquire(src, 4)
	if h != nil || err != nil {
		t.Fatalf("Acquire(uncacheable) = %v, %v; want nil, nil", h, err)
	}
	if s := c.Stats(); s.Entries != 0 || s.Misses != 0 {
		t.Errorf("uncacheable source touched the cache: %+v", s)
	}
}

// TestNilCacheAcquire: a nil *Cache declines gracefully, so call sites
// can treat "caching off" uniformly.
func TestNilCacheAcquire(t *testing.T) {
	var c *Cache
	h, err := c.Acquire(newKeyedSource("wl", 1, 4), 4)
	if h != nil || err != nil {
		t.Fatalf("nil cache Acquire = %v, %v", h, err)
	}
}

// TestShortStream: when the source EOFs before n branches, the handle
// replays the true length and the readers EOF there — same outcome as
// direct replay.
func TestShortStream(t *testing.T) {
	src := newKeyedSource("short", 3, 100)
	c := New(1 << 20)
	h, err := c.Acquire(src, 5000)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Release()
	if h.Len() != 100 {
		t.Fatalf("short-stream handle len = %d, want 100", h.Len())
	}
	// A later longer request must not re-open the exhausted generator.
	h2, err := c.Acquire(src, 9000)
	if err != nil {
		t.Fatal(err)
	}
	defer h2.Release()
	if h2.Len() != 100 || src.opens != 1 {
		t.Fatalf("len=%d opens=%d, want 100, 1", h2.Len(), src.opens)
	}
}

// failingSource errors mid-stream; requests beyond the error point must
// fail, prefix requests must succeed.
type failingSource struct {
	*keyedSource
	failAt int
	err    error
}

func (s *failingSource) Open() trace.Reader {
	s.opens++
	return &failReader{r: trace.NewSliceReader(s.branches), left: s.failAt, err: s.err}
}

type failReader struct {
	r    trace.Reader
	left int
	err  error
}

func (f *failReader) Read(b *trace.Branch) error {
	if f.left == 0 {
		return f.err
	}
	f.left--
	return f.r.Read(b)
}

// TestGeneratorError: terminal errors are sticky; prefixes before the
// error stay replayable.
func TestGeneratorError(t *testing.T) {
	boom := errors.New("synthesis failed")
	src := &failingSource{keyedSource: newKeyedSource("bad", 9, 1000), failAt: 600, err: boom}
	c := New(1 << 20)

	if _, err := c.Acquire(src, 1000); !errors.Is(err, boom) {
		t.Fatalf("Acquire past failure: %v, want boom", err)
	}
	h, err := c.Acquire(src, 500) // prefix before the error
	if err != nil || h.Len() != 500 {
		t.Fatalf("prefix after failure: %v len=%v", err, h)
	}
	h.Release()
	if _, err := c.Acquire(src, 700); !errors.Is(err, boom) {
		t.Fatalf("error not sticky: %v", err)
	}
	if src.opens != 1 {
		t.Errorf("failed generator reopened: %d opens", src.opens)
	}
}

// TestEvictionLRUAndPinning: the byte budget evicts only unpinned
// entries, in least-recently-used order; pinned entries survive even
// over budget.
func TestEvictionLRUAndPinning(t *testing.T) {
	per := int64(100 * bytesPerBranch)
	c := New(2 * per) // room for two 100-branch entries

	a := newKeyedSource("a", 1, 100)
	b := newKeyedSource("b", 2, 100)
	d := newKeyedSource("d", 3, 100)

	ha, _ := c.Acquire(a, 100)
	ha.Release()
	hb, _ := c.Acquire(b, 100)
	hb.Release()
	if s := c.Stats(); s.Entries != 2 || s.Evictions != 0 {
		t.Fatalf("setup: %+v", s)
	}
	// Touch a so b becomes the LRU, then overflow with d.
	ha, _ = c.Acquire(a, 100)
	ha.Release()
	hd, _ := c.Acquire(d, 100)
	hd.Release()
	if s := c.Stats(); s.Entries != 2 || s.Evictions != 1 {
		t.Fatalf("after overflow: %+v", s)
	}
	// a survived (recently used): acquiring it is a pure hit. Pin it so
	// the rest of the test cannot evict it.
	ha2, _ := c.Acquire(a, 100)
	if a.opens != 1 {
		t.Errorf("a synthesized %d times, want 1 (recently used)", a.opens)
	}
	// b was evicted as the LRU: re-acquiring re-synthesizes and, with a
	// pinned, pushes out d to make room.
	hb2, _ := c.Acquire(b, 100)
	if b.opens != 2 {
		t.Errorf("b synthesized %d times, want 2 (evicted as LRU)", b.opens)
	}
	if s := c.Stats(); s.Entries != 2 || s.Evictions != 2 {
		t.Fatalf("after re-acquiring b: %+v", s)
	}

	// All three pinned: overflowing cannot evict anything, resident
	// exceeds the budget transiently.
	hd2, _ := c.Acquire(d, 100)
	if d.opens != 2 {
		t.Errorf("d synthesized %d times, want 2 (evicted to fit b)", d.opens)
	}
	if s := c.Stats(); s.Entries != 3 || s.BytesResident != 3*per {
		t.Fatalf("pinned overflow: %+v", s)
	}
	old := drain(t, hb2)
	if len(old) != 100 || old[0] != b.branches[0] {
		t.Fatal("pinned handle corrupted")
	}
	hb2.Release()
	ha2.Release()
	hd2.Release()
	if s := c.Stats(); s.BytesResident > c.budget {
		t.Fatalf("still over budget after releases: %+v", s)
	}
}

// TestReleaseIdempotent: double Release must not underflow the refcount
// (which would let a pinned sibling handle's entry be evicted early).
func TestReleaseIdempotent(t *testing.T) {
	src := newKeyedSource("wl", 4, 10)
	c := New(1 << 20)
	h1, _ := c.Acquire(src, 10)
	h2, _ := c.Acquire(src, 10)
	h1.Release()
	h1.Release()
	h1.Release()
	c.mu.Lock()
	refs := c.order[0].refs
	c.mu.Unlock()
	if refs != 1 {
		t.Fatalf("refs = %d after double release, want 1 (h2 pinned)", refs)
	}
	h2.Release()
	var nilH *Handle
	nilH.Release() // must not panic
}

// TestConcurrentAcquire: many goroutines acquiring, replaying and
// releasing overlapping prefixes of the same and different workloads
// exercise the singleflight and eviction paths under -race. The
// catalog's real executor is the generator, so batch materialization
// also runs concurrently with zero-copy replays.
func TestConcurrentAcquire(t *testing.T) {
	wl, err := workload.ByName("Tomcat")
	if err != nil {
		t.Fatal(err)
	}
	wl2, err := workload.ByName("Kafka")
	if err != nil {
		t.Fatal(err)
	}
	// Budget fits one ~20k-branch entry but not both workloads at full
	// length, forcing evictions while handles churn.
	c := New(25_000 * bytesPerBranch)

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			src := wl
			if g%2 == 1 {
				src = wl2
			}
			for i := 0; i < 6; i++ {
				n := uint64(5_000 + 2_500*((g+i)%4))
				h, err := c.Acquire(src, n)
				if err != nil {
					t.Error(err)
					return
				}
				if h == nil {
					t.Error("workload source not cacheable")
					return
				}
				if got := uint64(h.Len()); got != n {
					t.Errorf("handle len = %d, want %d", got, n)
				}
				r := h.OpenBatch()
				buf := make([]trace.Branch, 1024)
				var seen uint64
				for {
					k, err := r.ReadBatch(buf)
					seen += uint64(k)
					if err != nil {
						if !trace.IsEOF(err) {
							t.Error(err)
						}
						break
					}
				}
				if seen != n {
					t.Errorf("replayed %d of %d", seen, n)
				}
				h.Release()
			}
		}(g)
	}
	wg.Wait()

	s := c.Stats()
	if s.Hits+s.Misses != 48 {
		t.Errorf("acquire count = %d, want 48 (%+v)", s.Hits+s.Misses, s)
	}
	if s.BytesResident > 25_000*bytesPerBranch {
		t.Errorf("over budget at rest: %+v", s)
	}
}

// TestConcurrentSingleflight: concurrent first acquisitions of one key
// materialize once.
func TestConcurrentSingleflight(t *testing.T) {
	wl, err := workload.ByName("Tomcat")
	if err != nil {
		t.Fatal(err)
	}
	c := New(1 << 30)
	const n = 20_000
	var wg sync.WaitGroup
	handles := make([]*Handle, 16)
	for i := range handles {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			h, err := c.Acquire(wl, n)
			if err != nil {
				t.Error(err)
				return
			}
			handles[i] = h
		}(i)
	}
	wg.Wait()
	s := c.Stats()
	if s.Misses != 1 {
		t.Errorf("misses = %d, want 1 (singleflight)", s.Misses)
	}
	if s.Hits != uint64(len(handles))-1 {
		t.Errorf("hits = %d, want %d", s.Hits, len(handles)-1)
	}
	ref := drain(t, handles[0])
	for _, h := range handles[1:] {
		got := drain(t, h)
		if len(got) != len(ref) {
			t.Fatalf("handle lengths diverge: %d vs %d", len(got), len(ref))
		}
	}
	for _, h := range handles {
		h.Release()
	}
}

// TestTelemetryAttach: instruments registered before or after traffic
// report the same totals.
func TestTelemetryAttach(t *testing.T) {
	src := newKeyedSource("wl", 5, 50)
	c := New(1 << 20)

	pre := telemetry.NewRegistry()
	c.AttachTelemetry(pre)
	h, _ := c.Acquire(src, 50)
	h.Release()
	h, _ = c.Acquire(src, 50)
	h.Release()

	snap := pre.Snapshot()
	if snap.Counters["trace_cache_misses"] != 1 || snap.Counters["trace_cache_hits"] != 1 {
		t.Errorf("live-attached counters: %+v", snap.Counters)
	}
	if snap.Gauges["trace_cache_bytes_resident"] != 50*bytesPerBranch {
		t.Errorf("bytes gauge: %+v", snap.Gauges)
	}

	post := telemetry.NewRegistry()
	c.AttachTelemetry(post)
	snap2 := post.Snapshot()
	if snap2.Counters["trace_cache_misses"] != 1 || snap2.Counters["trace_cache_hits"] != 1 {
		t.Errorf("late-attached counters missing history: %+v", snap2.Counters)
	}
	if snap2.Gauges["trace_cache_entries"] != 1 {
		t.Errorf("entries gauge: %+v", snap2.Gauges)
	}
}

// TestSetBudgetEvicts: shrinking the budget evicts immediately.
func TestSetBudgetEvicts(t *testing.T) {
	c := New(1 << 20)
	for i := 0; i < 4; i++ {
		h, err := c.Acquire(newKeyedSource(string(rune('a'+i)), uint64(i), 100), 100)
		if err != nil {
			t.Fatal(err)
		}
		h.Release()
	}
	if s := c.Stats(); s.Entries != 4 {
		t.Fatalf("setup: %+v", s)
	}
	c.SetBudget(150 * bytesPerBranch) // room for one entry
	if s := c.Stats(); s.Entries != 1 || s.Evictions != 3 {
		t.Fatalf("after shrink: %+v", s)
	}
}
