package tage

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"llbp/internal/trace"
)

func driveTAGE(p *Predictor, seed int64, n int) []byte {
	rng := rand.New(rand.NewSource(seed))
	out := make([]byte, 0, n)
	for i := 0; i < n; i++ {
		if rng.Intn(6) == 0 {
			pc := uint64(0x9000 + rng.Intn(32)*0x20)
			p.TrackOther(pc, pc+0x400, trace.Call)
			continue
		}
		pc := uint64(0x4000 + rng.Intn(64)*4)
		taken := rng.Intn(3) != 0
		pred := p.Predict(pc)
		p.Update(pc, taken)
		if pred == taken {
			out = append(out, 1)
		} else {
			out = append(out, 0)
		}
	}
	return out
}

// TestForkEquivalence: fork-then-diverge must match two independently
// warmed twins byte for byte, in both the finite-table and the
// infinite-map organizations (including the allocator's RNG schedule).
func TestForkEquivalence(t *testing.T) {
	const warm, diverge = 6000, 4000
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"finite", DefaultConfig()},
		{"infinite", DefaultConfig().InfiniteConfig()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			mk := func() *Predictor {
				p, err := New(tc.cfg)
				if err != nil {
					t.Fatal(err)
				}
				return p
			}
			parent, twinP, twinC := mk(), mk(), mk()
			driveTAGE(parent, 11, warm)
			driveTAGE(twinP, 11, warm)
			driveTAGE(twinC, 11, warm)

			child := parent.Fork()

			gotP := driveTAGE(parent, 22, diverge)
			wantP := driveTAGE(twinP, 22, diverge)
			gotC := driveTAGE(child, 33, diverge)
			wantC := driveTAGE(twinC, 33, diverge)

			if !bytes.Equal(gotP, wantP) {
				t.Error("parent outcome stream diverged from unforked twin")
			}
			if !bytes.Equal(gotC, wantC) {
				t.Error("child outcome stream diverged from independently warmed twin")
			}
			if !reflect.DeepEqual(parent, twinP) {
				t.Error("parent state not byte-identical to unforked twin")
			}
			if !reflect.DeepEqual(child, twinC) {
				t.Error("child state not byte-identical to independently warmed twin")
			}
		})
	}
}
