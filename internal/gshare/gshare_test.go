package gshare

import (
	"testing"

	"llbp/internal/assert"
)

func drive(p *Predictor, n int, next func(i int) (uint64, bool)) float64 {
	miss, cnt := 0, 0
	for i := 0; i < n; i++ {
		pc, taken := next(i)
		pred := p.Predict(pc)
		p.Update(pc, taken)
		if i >= n/2 {
			cnt++
			if pred != taken {
				miss++
			}
		}
	}
	return float64(miss) / float64(cnt)
}

func mustNew(t *testing.T) *Predictor {
	t.Helper()
	p, err := New(Default())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestValidation(t *testing.T) {
	if _, err := New(Config{LogSize: 2, HistBits: 1}); err == nil {
		t.Error("tiny logSize must fail")
	}
	if _, err := New(Config{LogSize: 18, HistBits: 20}); err == nil {
		t.Error("histBits > logSize must fail")
	}
}

func TestBiased(t *testing.T) {
	p := mustNew(t)
	if mr := drive(p, 4000, func(int) (uint64, bool) { return 0x40, true }); mr > 0.02 {
		t.Errorf("always-taken missrate %.3f", mr)
	}
}

func TestAlternating(t *testing.T) {
	p := mustNew(t)
	if mr := drive(p, 20000, func(i int) (uint64, bool) { return 0x40, i%2 == 0 }); mr > 0.02 {
		t.Errorf("alternating missrate %.3f", mr)
	}
}

func TestShortPattern(t *testing.T) {
	p := mustNew(t)
	pat := []bool{true, false, false, true, true}
	if mr := drive(p, 40000, func(i int) (uint64, bool) { return 0x80, pat[i%5] }); mr > 0.05 {
		t.Errorf("period-5 missrate %.3f", mr)
	}
}

func TestAliasingHurts(t *testing.T) {
	// gshare's known weakness: destructive aliasing across many
	// branches. A working set far beyond the table with random-ish
	// per-(branch,phase) outcomes must do clearly worse than a single
	// branch with the same local behaviour.
	small, _ := New(Config{LogSize: 8, HistBits: 8})
	gen := func(i int) (uint64, bool) {
		b := i % 5000
		return uint64(0x1000 + b*4), uint64(b)*2654435761%3 == 0
	}
	mr := drive(small, 200000, gen)
	if mr < 0.02 {
		t.Errorf("expected visible aliasing on an undersized table, missrate %.3f", mr)
	}
}

func TestUpdateWithoutPredictPanics(t *testing.T) {
	if !assert.Enabled {
		t.Skip("contract panics are debug assertions; run with -tags llbpdebug")
	}
	p := mustNew(t)
	p.Predict(0x40)
	defer func() {
		if recover() == nil {
			t.Error("mismatched Update must panic")
		}
	}()
	p.Update(0x44, true)
}

func TestStorageBits(t *testing.T) {
	p := mustNew(t)
	if got := p.StorageBits(); got != (1<<18)*2 {
		t.Errorf("StorageBits = %d", got)
	}
	if p.Name() == "" {
		t.Error("empty name")
	}
}
