// Package experiments regenerates every table and figure of the paper's
// evaluation (see DESIGN.md §3 for the experiment index). Each experiment
// produces report.Tables whose rows correspond to the paper's plotted
// series; cmd/experiments and the root bench suite drive them.
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"llbp/internal/core"
	"llbp/internal/predictor"
	"llbp/internal/report"
	"llbp/internal/sim"
	"llbp/internal/tsl"
	"llbp/internal/workload"
)

// Config sets the simulation budgets for the experiment suite. The paper
// warms 100M and measures 200M instructions; the defaults here are scaled
// down ~40× to laptop scale (shapes, not absolute numbers, are the
// reproduction target — DESIGN.md §3).
type Config struct {
	// Warmup/Measure are the branch budgets of headline experiments.
	Warmup  uint64
	Measure uint64
	// SweepWarmup/SweepMeasure are the (smaller) budgets of wide
	// design-space sweeps (Figures 5, 13, 14).
	SweepWarmup  uint64
	SweepMeasure uint64
	// Workloads is the workload set (defaults to the full catalog).
	Workloads []*workload.Source
	// Progress, when non-nil, receives one line per completed
	// simulation run.
	Progress func(format string, args ...interface{})
}

// DefaultConfig returns the standard laptop-scale budgets.
func DefaultConfig() Config {
	return Config{
		Warmup:       200_000,
		Measure:      1_000_000,
		SweepWarmup:  100_000,
		SweepMeasure: 400_000,
	}
}

func (c *Config) workloads() []*workload.Source {
	if len(c.Workloads) > 0 {
		return c.Workloads
	}
	return workload.Catalog()
}

func (c *Config) progress(format string, args ...interface{}) {
	if c.Progress != nil {
		c.Progress(format, args...)
	}
}

// Experiment is one regenerable table or figure.
type Experiment struct {
	// ID is the short identifier used by -run flags (e.g. "fig9").
	ID string
	// Title describes the paper artifact being reproduced.
	Title string
	// Run executes the experiment and returns its tables.
	Run func(h *Harness) ([]*report.Table, error)
}

// Registry lists all experiments in paper order.
func Registry() []Experiment {
	return []Experiment{
		{"table1", "Table I: evaluated workloads", Table1},
		{"table2", "Table II: simulated core parameters", Table2},
		{"fig1", "Figure 1: execution cycles wasted on cond. mispredictions", Fig1},
		{"fig2", "Figure 2: MPKI of 64K TSL vs Inf TAGE vs Inf TSL", Fig2},
		{"fig3a", "Figure 3a: cumulative mispredictions per static branch (Tomcat)", Fig3a},
		{"fig3b", "Figure 3b: useful patterns per static branch (Tomcat, Inf)", Fig3b},
		{"fig5", "Figure 5: patterns per context vs context window W", Fig5},
		{"fig9", "Figure 9: branch MPKI reduction over 64K TSL", Fig9},
		{"fig10", "Figure 10: speedup over 64K TSL", Fig10},
		{"fig11", "Figure 11: LLBP transfer bandwidth vs PB size", Fig11},
		{"table3", "Table III: relative access latency and energy", Table3},
		{"fig12", "Figure 12: relative energy vs design", Fig12},
		{"fig13", "Figure 13: CID history type and prefetch distance", Fig13},
		{"fig14", "Figure 14: pattern-set count and size sensitivity", Fig14},
		{"fig15", "Figure 15: LLBP prediction breakdown", Fig15},
		{"ablation", "Ablations: bucketing, replacement, CID hash", Ablations},
		{"extdelay", "Extension: storage-virtualization latency sensitivity", ExtDelay},
		{"extgate", "Extension: auto-disable power gate", ExtAutoDisable},
		{"extbaselines", "Extension: gshare/perceptron baseline spectrum", ExtBaselines},
		{"extscale", "Extension: simulation-budget sensitivity", ExtScale},
	}
}

// ByID resolves a comma-separated list of experiment IDs ("all" for every
// experiment).
func ByID(ids string) ([]Experiment, error) {
	all := Registry()
	if ids == "" || ids == "all" {
		return all, nil
	}
	idx := make(map[string]Experiment, len(all))
	for _, e := range all {
		idx[e.ID] = e
	}
	var out []Experiment
	for _, id := range strings.Split(ids, ",") {
		e, ok := idx[strings.TrimSpace(id)]
		if !ok {
			return nil, fmt.Errorf("experiments: unknown id %q", id)
		}
		out = append(out, e)
	}
	return out, nil
}

// Harness memoizes simulation runs so experiments sharing configurations
// (e.g. Figures 9, 10, 12 and 15 all need the LLBP runs) pay once.
type Harness struct {
	Cfg   Config
	cache map[string]*RunOutput
}

// NewHarness returns a harness with the given budgets.
func NewHarness(cfg Config) *Harness {
	if cfg.Warmup == 0 && cfg.Measure == 0 {
		cfg = DefaultConfig()
	}
	return &Harness{Cfg: cfg, cache: make(map[string]*RunOutput)}
}

// RunOutput is one simulation's collected results.
type RunOutput struct {
	Res  *sim.Result
	LLBP core.Stats
	// HasLLBP reports whether LLBP is part of the predictor.
	HasLLBP bool
}

// PredictorSpec names a predictor configuration for the cache key and
// builds fresh instances.
type PredictorSpec struct {
	Key   string
	Build func(clock *predictor.Clock) predictor.Predictor
}

// Standard specs.
func specTSL(label string, cfg tsl.Config) PredictorSpec {
	return PredictorSpec{
		Key:   label,
		Build: func(*predictor.Clock) predictor.Predictor { return tsl.MustNew(cfg) },
	}
}

// Spec64K .. SpecInfTSL are the TAGE-SC-L family of §VI.
func Spec64K() PredictorSpec  { return specTSL("64k", tsl.Config64K()) }
func Spec128K() PredictorSpec { return specTSL("128k", tsl.ConfigScaled(1)) }
func Spec256K() PredictorSpec { return specTSL("256k", tsl.ConfigScaled(2)) }
func Spec512K() PredictorSpec { return specTSL("512k", tsl.ConfigScaled(3)) }
func Spec1M() PredictorSpec   { return specTSL("1m", tsl.ConfigScaled(4)) }
func SpecInfTAGE() PredictorSpec {
	return specTSL("inftage", tsl.ConfigInfTAGE())
}
func SpecInfTSL() PredictorSpec { return specTSL("inftsl", tsl.ConfigInfTSL()) }

// SpecLLBP builds an LLBP spec with the given core configuration; key must
// uniquely describe cfg.
func SpecLLBP(key string, cfg core.Config) PredictorSpec {
	return PredictorSpec{
		Key: key,
		Build: func(clock *predictor.Clock) predictor.Predictor {
			return core.MustNew(cfg, tsl.MustNew(tsl.Config64K()), clock)
		},
	}
}

// SpecLLBPDefault returns the evaluated LLBP design point.
func SpecLLBPDefault() PredictorSpec { return SpecLLBP("llbp", core.DefaultConfig()) }

// SpecLLBP0Lat returns the zero-latency LLBP configuration.
func SpecLLBP0Lat() PredictorSpec { return SpecLLBP("llbp0lat", core.ZeroLatConfig()) }

// Run simulates spec over wl with the headline budgets, memoized.
func (h *Harness) Run(wl *workload.Source, spec PredictorSpec) (*RunOutput, error) {
	return h.runBudget(wl, spec, h.Cfg.Warmup, h.Cfg.Measure)
}

// RunSweep simulates with the (smaller) sweep budgets, memoized.
func (h *Harness) RunSweep(wl *workload.Source, spec PredictorSpec) (*RunOutput, error) {
	return h.runBudget(wl, spec, h.Cfg.SweepWarmup, h.Cfg.SweepMeasure)
}

func (h *Harness) runBudget(wl *workload.Source, spec PredictorSpec, warm, meas uint64) (*RunOutput, error) {
	key := fmt.Sprintf("%s|%s|%d|%d", wl.Name(), spec.Key, warm, meas)
	if out, ok := h.cache[key]; ok {
		return out, nil
	}
	clock := &predictor.Clock{}
	p := spec.Build(clock)
	res, err := sim.Run(wl, p, sim.Options{
		WarmupBranches:  warm,
		MeasureBranches: meas,
		Clock:           clock,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: %s on %s: %w", spec.Key, wl.Name(), err)
	}
	out := &RunOutput{Res: res}
	if lp, ok := p.(*core.Predictor); ok {
		out.LLBP = lp.Stats()
		out.HasLLBP = true
	}
	h.Cfg.progress("  ran %-10s on %-10s MPKI=%.3f", spec.Key, wl.Name(), res.MPKI)
	h.cache[key] = out
	return out, nil
}

// meanRow computes the arithmetic mean of a float column.
func meanRow(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range vals {
		s += v
	}
	return s / float64(len(vals))
}

// sortedKeys returns the map's keys sorted (for deterministic tables).
func sortedKeys(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Chart renders t's first numeric column as an ASCII bar chart, or nil if
// no column parses (cmd/experiments -charts).
func Chart(t *report.Table) *report.BarChart {
	for col := 1; col < len(t.Header); col++ {
		c := report.ChartFromTable(t, col, "")
		if len(c.Values) >= 2 {
			c.Title = fmt.Sprintf("[%s]", t.Header[col])
			return c
		}
	}
	return nil
}
