// Contextstudy reproduces the §IV context-locality validation for one
// workload: it finds the most-mispredicted branches under infinite
// capacity, then counts how many distinct useful patterns each program
// context needs as the context window W (the number of unconditional
// branches hashed into the context ID) grows. The paper's core insight is
// that the per-context pattern count collapses by orders of magnitude —
// which is what makes a small fixed-size pattern set per context viable.
package main

import (
	"flag"
	"fmt"
	"log"

	"llbp"
	"llbp/internal/core"
	"llbp/internal/predictor"
	"llbp/internal/sim"
	"llbp/internal/stats"
	"llbp/internal/trace"
)

func main() {
	wlName := flag.String("workload", "Tomcat", "Table I workload")
	topN := flag.Int("top", 128, "restrict to the N most-mispredicted branches")
	flag.Parse()

	wl, err := llbp.Workload(*wlName)
	if err != nil {
		log.Fatal(err)
	}

	// Pass 1: rank branches by mispredictions under infinite capacity.
	inf, err := llbp.NewBaseline(llbp.SizeInfTSL)
	if err != nil {
		log.Fatal(err)
	}
	tracker := stats.NewBranchTracker()
	if _, err := sim.Run(wl, inf, sim.Options{
		WarmupBranches:  100_000,
		MeasureBranches: 400_000,
		Observer:        tracker.Observe,
	}); err != nil {
		log.Fatal(err)
	}
	top := make(map[uint64]struct{}, *topN)
	for i, b := range tracker.Branches() {
		if i >= *topN {
			break
		}
		top[b.PC] = struct{}{}
	}

	// Pass 2: count useful patterns per context for several window
	// sizes simultaneously.
	windows := []int{0, 2, 4, 8, 16, 32}
	rcrs := map[int]*core.RCR{}
	trackers := map[int]*stats.ContextTracker{}
	for _, w := range windows {
		if w > 0 {
			rcrs[w] = core.NewRCR(w, 0, 31, true)
		}
		trackers[w] = stats.NewContextTracker(top)
	}
	inf2, err := llbp.NewBaseline(llbp.SizeInfTSL)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := sim.Run(wl, inf2, sim.Options{
		WarmupBranches:  100_000,
		MeasureBranches: 400_000,
		Observer: func(b *trace.Branch, pred bool, det predictor.Detail) {
			for _, w := range windows {
				ctx := uint64(0)
				if w > 0 {
					ctx = rcrs[w].CCID()
				}
				trackers[w].Observe(ctx, b, pred, det)
			}
		},
		UncondObserver: func(b *trace.Branch) {
			for _, w := range windows {
				if w > 0 {
					rcrs[w].Push(b.PC)
				}
			}
		},
	}); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("context locality on %s (top-%d branches)\n\n", wl.Name(), *topN)
	fmt.Printf("%-6s %10s %8s %8s %8s\n", "W", "contexts", "p50", "p95", "max")
	for _, w := range windows {
		vals := trackers[w].PatternsPerContext()
		fmt.Printf("W=%-4d %10d %8.0f %8.0f %8.0f\n", w, len(vals),
			stats.Percentile(vals, 50), stats.Percentile(vals, 95), stats.Percentile(vals, 100))
	}
	fmt.Println("\nDeeper windows localize each branch's patterns to a handful per context (§IV).")
}
