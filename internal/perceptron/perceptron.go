// Package perceptron implements Jiménez & Lin's perceptron branch
// predictor: per-branch weight vectors dotted with the global history,
// trained when the margin is below an adaptive threshold. It is the
// ML-flavoured baseline the paper's related work contrasts with TAGE
// (§VIII cites the multiperspective perceptron and perceptron-based
// context-switch work) and completes this repository's baseline spectrum:
// bimodal < gshare < perceptron < TAGE-SC-L < TAGE-SC-L + LLBP.
package perceptron

import (
	"fmt"

	"llbp/internal/assert"
	"llbp/internal/predictor"
	"llbp/internal/trace"
)

// Config sizes the predictor.
type Config struct {
	// LogRows is log2 of the perceptron table.
	LogRows int
	// HistBits is the history length (weights per perceptron, plus
	// bias).
	HistBits int
	// WeightBits bounds the weight magnitude (8-bit weights: ±127).
	WeightBits int
}

// Default returns a 64KiB-class configuration: 1024 rows × (32+1) 8-bit
// weights ≈ 33KB of weights plus history — comparable to the other 64K
// baselines once the bias/threshold state is counted.
func Default() Config { return Config{LogRows: 11, HistBits: 32, WeightBits: 8} }

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.LogRows < 2 || c.LogRows > 20 {
		return fmt.Errorf("perceptron: logRows %d out of range [2,20]", c.LogRows)
	}
	if c.HistBits < 1 || c.HistBits > 64 {
		return fmt.Errorf("perceptron: histBits %d out of range [1,64]", c.HistBits)
	}
	if c.WeightBits < 4 || c.WeightBits > 16 {
		return fmt.Errorf("perceptron: weightBits %d out of range [4,16]", c.WeightBits)
	}
	return nil
}

// Predictor is a perceptron predictor implementing predictor.Predictor.
type Predictor struct {
	cfg     Config
	weights [][]int16 // [row][bias + HistBits weights]
	ghr     uint64
	theta   int // training threshold: 1.93*h + 14 (Jiménez & Lin)

	lastPC   uint64
	lastRow  int
	lastSum  int
	lastPred bool
}

var _ predictor.Predictor = (*Predictor)(nil)

// New builds a perceptron predictor.
func New(cfg Config) (*Predictor, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	p := &Predictor{
		cfg:   cfg,
		theta: int(1.93*float64(cfg.HistBits) + 14),
	}
	p.weights = make([][]int16, 1<<uint(cfg.LogRows))
	for i := range p.weights {
		p.weights[i] = make([]int16, cfg.HistBits+1)
	}
	return p, nil
}

// Name implements predictor.Predictor.
func (p *Predictor) Name() string {
	return fmt.Sprintf("perceptron-%dx%d", len(p.weights), p.cfg.HistBits)
}

func (p *Predictor) row(pc uint64) int {
	return int((pc >> 2) % uint64(len(p.weights)))
}

// Predict implements predictor.Predictor: y = bias + Σ w_i · x_i with
// x_i ∈ {-1, +1} from the global history.
func (p *Predictor) Predict(pc uint64) bool {
	p.lastPC = pc
	p.lastRow = p.row(pc)
	w := p.weights[p.lastRow]
	sum := int(w[0])
	for i := 0; i < p.cfg.HistBits; i++ {
		if p.ghr&(1<<uint(i)) != 0 {
			sum += int(w[i+1])
		} else {
			sum -= int(w[i+1])
		}
	}
	p.lastSum = sum
	p.lastPred = sum >= 0
	return p.lastPred
}

// Update implements predictor.Predictor: train on a misprediction or a
// low-margin correct prediction (the perceptron learning rule). Calling
// it for a pc that was not the last Predict violates the harness
// contract; debug builds (-tags llbpdebug) panic, release builds train
// the stale row.
func (p *Predictor) Update(pc uint64, taken bool) {
	if pc != p.lastPC {
		assert.Failf("perceptron: Update(%#x) without matching Predict (last %#x)", pc, p.lastPC)
	}
	if p.lastPred != taken || abs(p.lastSum) <= p.theta {
		w := p.weights[p.lastRow]
		limit := int16(1)<<(p.cfg.WeightBits-1) - 1
		dir := int16(-1)
		if taken {
			dir = 1
		}
		w[0] = clamp(w[0]+dir, limit)
		for i := 0; i < p.cfg.HistBits; i++ {
			x := int16(-1)
			if p.ghr&(1<<uint(i)) != 0 {
				x = 1
			}
			// Agreeing bits strengthen, disagreeing weaken.
			w[i+1] = clamp(w[i+1]+dir*x, limit)
		}
	}
	p.push(taken)
}

// TrackOther implements predictor.Predictor.
func (p *Predictor) TrackOther(pc, target uint64, t trace.BranchType) {
	_ = pc
	_ = target
	_ = t
	p.push(true)
}

func (p *Predictor) push(taken bool) {
	p.ghr <<= 1
	if taken {
		p.ghr |= 1
	}
}

// StorageBits returns the weight-table cost in bits.
func (p *Predictor) StorageBits() int {
	return len(p.weights) * (p.cfg.HistBits + 1) * p.cfg.WeightBits
}

var _ predictor.Forkable = (*Predictor)(nil)

// Fork implements predictor.Forkable (the clock is ignored: the
// perceptron is latency-free). Call at a branch boundary.
func (p *Predictor) Fork(clock *predictor.Clock) predictor.Predictor {
	_ = clock
	out := *p
	out.weights = make([][]int16, len(p.weights))
	for i := range p.weights {
		out.weights[i] = append([]int16(nil), p.weights[i]...)
	}
	return &out
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func clamp(v, limit int16) int16 {
	if v > limit {
		return limit
	}
	if v < -limit-1 {
		return -limit - 1
	}
	return v
}
