package stats

import (
	"math"
	"testing"

	"llbp/internal/predictor"
	"llbp/internal/trace"
)

func TestMPKI(t *testing.T) {
	if got := MPKI(300, 100_000); got != 3 {
		t.Errorf("MPKI = %v", got)
	}
	if MPKI(5, 0) != 0 {
		t.Error("zero instructions must give 0")
	}
}

func TestReduction(t *testing.T) {
	if got := Reduction(10, 9); math.Abs(got-10) > 1e-9 {
		t.Errorf("Reduction(10,9) = %v", got)
	}
	if got := Reduction(10, 12); math.Abs(got+20) > 1e-9 {
		t.Errorf("Reduction(10,12) = %v", got)
	}
	if Reduction(0, 5) != 0 {
		t.Error("zero base must give 0")
	}
}

func TestMeanAndGeoMean(t *testing.T) {
	if Mean(nil) != 0 || GeoMean(nil) != 0 {
		t.Error("empty inputs must give 0")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %v", got)
	}
	if got := GeoMean([]float64{1, 100}); math.Abs(got-10) > 1e-9 {
		t.Errorf("GeoMean = %v", got)
	}
	// Zeros are skipped, not fatal.
	if got := GeoMean([]float64{0, 4, 9}); math.Abs(got-6) > 1e-9 {
		t.Errorf("GeoMean with zero = %v", got)
	}
}

func TestPercentile(t *testing.T) {
	vs := []float64{5, 1, 3, 2, 4}
	if got := Percentile(vs, 0); got != 1 {
		t.Errorf("p0 = %v", got)
	}
	if got := Percentile(vs, 100); got != 5 {
		t.Errorf("p100 = %v", got)
	}
	if got := Percentile(vs, 50); got != 3 {
		t.Errorf("p50 = %v", got)
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile must be 0")
	}
	// Input must not be mutated.
	if vs[0] != 5 {
		t.Error("Percentile mutated its input")
	}
}

func condBranch(pc uint64, taken bool) *trace.Branch {
	return &trace.Branch{PC: pc, Type: trace.CondDirect, Taken: taken}
}

func tageDetail(key uint64, alt bool) predictor.Detail {
	return predictor.Detail{Provider: predictor.ProviderTAGE, PatternKey: key, AltTaken: alt}
}

func TestBranchTrackerCounts(t *testing.T) {
	tr := NewBranchTracker()
	// Branch A: 3 execs, 2 misses; one useful event.
	tr.Observe(condBranch(0xA, true), false, tageDetail(1, false)) // miss
	tr.Observe(condBranch(0xA, true), true, tageDetail(1, false))  // hit, alt wrong -> useful
	tr.Observe(condBranch(0xA, false), true, tageDetail(2, false)) // miss
	// Branch B: 1 exec, no misses, alt also right -> not useful.
	tr.Observe(condBranch(0xB, true), true, tageDetail(3, true))
	if tr.Len() != 2 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if tr.TotalMisses() != 2 {
		t.Errorf("TotalMisses = %d", tr.TotalMisses())
	}
	bs := tr.Branches()
	if bs[0].PC != 0xA || bs[0].Misses != 2 || bs[0].Execs != 3 {
		t.Errorf("top branch = %+v", bs[0])
	}
	if len(bs[0].Useful) != 1 {
		t.Errorf("useful patterns = %d, want 1", len(bs[0].Useful))
	}
	if len(bs[1].Useful) != 0 {
		t.Errorf("branch B useful = %d, want 0 (alt was right)", len(bs[1].Useful))
	}
}

func TestUsefulRequiresTaggedProvider(t *testing.T) {
	tr := NewBranchTracker()
	det := predictor.Detail{Provider: predictor.ProviderBimodal, PatternKey: 7, AltTaken: false}
	tr.Observe(condBranch(0xC, true), true, det)
	if len(tr.Branches()[0].Useful) != 0 {
		t.Error("bimodal predictions must not create useful-pattern events")
	}
	det = predictor.Detail{Provider: predictor.ProviderLLBP, PatternKey: 9, AltTaken: false}
	tr.Observe(condBranch(0xC, true), true, det)
	if len(tr.Branches()[0].Useful) != 1 {
		t.Error("LLBP providers must create useful-pattern events")
	}
}

func TestCumulativeMissFraction(t *testing.T) {
	tr := NewBranchTracker()
	// 4 branches with 10, 5, 3, 2 misses (total 20).
	mk := func(pc uint64, misses int) {
		for i := 0; i < misses; i++ {
			tr.Observe(condBranch(pc, true), false, predictor.Detail{})
		}
	}
	mk(1, 10)
	mk(2, 5)
	mk(3, 3)
	mk(4, 2)
	fr := tr.CumulativeMissFraction([]int{1, 2, 3, 4, 100})
	want := []float64{0.5, 0.75, 0.9, 1.0, 1.0}
	for i := range want {
		if math.Abs(fr[i]-want[i]) > 1e-9 {
			t.Errorf("fraction[%d] = %v, want %v", i, fr[i], want[i])
		}
	}
	empty := NewBranchTracker()
	if got := empty.CumulativeMissFraction([]int{1}); got[0] != 0 {
		t.Error("empty tracker fraction must be 0")
	}
}

func TestUsefulPerBranchOrder(t *testing.T) {
	tr := NewBranchTracker()
	// Branch 1: many misses, 2 useful patterns; branch 2: fewer misses,
	// 1 useful pattern.
	tr.Observe(condBranch(1, true), false, predictor.Detail{})
	tr.Observe(condBranch(1, true), false, predictor.Detail{})
	tr.Observe(condBranch(1, true), true, tageDetail(11, false))
	tr.Observe(condBranch(1, true), true, tageDetail(12, false))
	tr.Observe(condBranch(2, true), false, predictor.Detail{})
	tr.Observe(condBranch(2, true), true, tageDetail(21, false))
	got := tr.UsefulPerBranch()
	if len(got) != 2 || got[0] != 2 || got[1] != 1 {
		t.Errorf("UsefulPerBranch = %v, want [2 1]", got)
	}
}

func TestContextTrackerFilterAndGrouping(t *testing.T) {
	filter := map[uint64]struct{}{0xA: {}}
	ct := NewContextTracker(filter)
	// Useful event for tracked branch in two contexts.
	ct.Observe(100, condBranch(0xA, true), true, tageDetail(1, false))
	ct.Observe(100, condBranch(0xA, true), true, tageDetail(2, false))
	ct.Observe(200, condBranch(0xA, true), true, tageDetail(1, false))
	// Untracked branch ignored.
	ct.Observe(100, condBranch(0xB, true), true, tageDetail(3, false))
	// Non-useful event ignored.
	ct.Observe(100, condBranch(0xA, true), false, tageDetail(4, false))
	if ct.Contexts() != 2 {
		t.Fatalf("Contexts = %d", ct.Contexts())
	}
	vals := ct.PatternsPerContext()
	sum := 0.0
	for _, v := range vals {
		sum += v
	}
	if sum != 3 {
		t.Errorf("total patterns = %v, want 3", sum)
	}
}

func TestContextTrackerNilFilterTracksAll(t *testing.T) {
	ct := NewContextTracker(nil)
	ct.Observe(1, condBranch(0xA, true), true, tageDetail(1, false))
	ct.Observe(1, condBranch(0xB, true), true, tageDetail(2, false))
	if ct.Contexts() != 1 || ct.PatternsPerContext()[0] != 2 {
		t.Error("nil filter must track every branch")
	}
}

func TestBranchStatString(t *testing.T) {
	s := &BranchStat{PC: 0x40, Execs: 2, Misses: 1, Useful: map[uint64]struct{}{1: {}}}
	if s.String() == "" {
		t.Error("String must render")
	}
}
