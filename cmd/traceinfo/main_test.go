package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"llbp/internal/telemetry"
	"llbp/internal/trace"
	"llbp/internal/workload"
)

func runInfo(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(args, &out, &errb)
	return code, out.String(), errb.String()
}

// writeTrace materializes a small workload prefix as a trace file.
func writeTrace(t *testing.T, path string, branches uint64) {
	t.Helper()
	src, err := workload.ByName("Tomcat")
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	w, err := trace.NewWriter(f, src.Name())
	if err != nil {
		t.Fatal(err)
	}
	r := &trace.LimitReader{R: src.Open(), Max: branches}
	var b trace.Branch
	for {
		if err := r.Read(&b); err != nil {
			if trace.IsEOF(err) {
				break
			}
			t.Fatal(err)
		}
		if err := w.Write(&b); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
}

// TestInfoSummarizesFileAndWorkload: both input modes produce the text
// report, and -metrics writes a valid llbp-metrics/1 document.
func TestInfoSummarizesFileAndWorkload(t *testing.T) {
	dir := t.TempDir()
	trc := filepath.Join(dir, "tomcat.llbptrc")
	writeTrace(t, trc, 5_000)

	code, out, errb := runInfo(t, trc)
	if code != 0 {
		t.Fatalf("file mode: code %d, stderr %q", code, errb)
	}
	if !strings.Contains(out, "branches:        5000") {
		t.Errorf("file summary %q lacks branch count", out)
	}

	mFile := filepath.Join(dir, "metrics.json")
	code, out, errb = runInfo(t, "-workload", "Tomcat", "-branches", "5000", "-metrics", mFile)
	if code != 0 {
		t.Fatalf("workload mode: code %d, stderr %q", code, errb)
	}
	if !strings.Contains(out, "workload:        Tomcat") {
		t.Errorf("workload summary %q", out)
	}
	if !strings.Contains(out, "trace cache:") {
		t.Errorf("workload summary %q lacks cache statistics", out)
	}
	raw, err := os.ReadFile(mFile)
	if err != nil {
		t.Fatal(err)
	}
	mf, err := telemetry.ReadMetricsFile(raw)
	if err != nil || len(mf.Runs) != 2 || mf.Runs[0].Workload != "Tomcat" {
		t.Fatalf("metrics document: %+v, %v", mf, err)
	}
	// Workload mode replays through the materialized-trace cache and
	// appends its statistics as a final snapshot.
	cc := mf.Runs[1]
	if cc.Workload != "trace-cache" {
		t.Fatalf("last run = %q, want trace-cache", cc.Workload)
	}
	if cc.Metrics.Counters["trace_cache_misses"] != 1 ||
		cc.Metrics.Gauges["trace_cache_bytes_resident"] != 5_000*21 {
		t.Errorf("cache metrics: %+v", cc.Metrics)
	}

	// With caching disabled the summary and metrics lose the cache
	// section but the workload numbers are unchanged.
	code, out2, errb := runInfo(t, "-workload", "Tomcat", "-branches", "5000", "-trace-cache-mb", "0")
	if code != 0 {
		t.Fatalf("uncached workload mode: code %d, stderr %q", code, errb)
	}
	if strings.Contains(out2, "trace cache:") {
		t.Errorf("uncached summary still reports cache statistics: %q", out2)
	}
	if !strings.Contains(out2, "branches:        5000") {
		t.Errorf("uncached summary %q lacks branch count", out2)
	}
}

// TestInfoErrors: unreadable inputs, bad workloads, unwritable -metrics
// paths and empty invocations exit non-zero with one-line diagnostics.
func TestInfoErrors(t *testing.T) {
	dir := t.TempDir()
	trc := filepath.Join(dir, "ok.llbptrc")
	writeTrace(t, trc, 100)
	garbage := filepath.Join(dir, "garbage.llbptrc")
	if err := os.WriteFile(garbage, []byte("not a trace"), 0o644); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		args []string
		code int
	}{
		{"no input", nil, 2},
		{"bad flag", []string{"-no-such-flag"}, 2},
		{"missing file", []string{filepath.Join(dir, "absent.llbptrc")}, 1},
		{"corrupt file", []string{garbage}, 1},
		{"unknown workload", []string{"-workload", "NoSuchWorkload"}, 1},
		{"unwritable metrics", []string{"-metrics", filepath.Join(dir, "nodir", "m.json"), trc}, 1},
	}
	for _, tc := range cases {
		code, _, errb := runInfo(t, tc.args...)
		if code != tc.code {
			t.Errorf("%s: code %d, want %d (stderr %q)", tc.name, code, tc.code, errb)
		}
		if strings.Contains(errb, "goroutine ") {
			t.Errorf("%s: stack trace leaked: %q", tc.name, errb)
		}
	}
}
