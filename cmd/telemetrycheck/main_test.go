package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"llbp/internal/telemetry"
)

// check invokes the CLI and returns exit code + stderr.
func check(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(args, &out, &errb)
	return code, out.String(), errb.String()
}

// writeProm renders a registry's snapshot to a .prom file.
func writeProm(t *testing.T, reg *telemetry.Registry) string {
	t.Helper()
	var buf bytes.Buffer
	if err := telemetry.WritePrometheus(&buf, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "metrics.prom")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCheckProm(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Counter("service_jobs_submitted").Inc()
	reg.Gauge("service_queue_depth").Set(1)
	path := writeProm(t, reg)

	if code, _, errb := check(t, "-prom", path, "-require", "service_jobs_submitted"); code != 0 {
		t.Errorf("valid prom rejected: code %d, %s", code, errb)
	}
	// A gauge does not satisfy a counter requirement.
	if code, _, _ := check(t, "-prom", path, "-require", "service_queue_depth"); code != 1 {
		t.Errorf("gauge satisfied -require counter: code %d", code)
	}
	if code, _, _ := check(t, "-prom", path, "-require", "no_such_counter"); code != 1 {
		t.Errorf("missing counter accepted: code %d", code)
	}

	bad := filepath.Join(t.TempDir(), "bad.prom")
	os.WriteFile(bad, []byte("orphan 3\n"), 0o644)
	if code, _, _ := check(t, "-prom", bad); code != 1 {
		t.Errorf("undeclared sample accepted: code %d", code)
	}
}

func TestCheckEvents(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "events.ndjson")
	log, err := telemetry.CreateEventLog(good)
	if err != nil {
		t.Fatal(err)
	}
	log.Emit(telemetry.Event{Type: telemetry.EventJobSubmitted, Job: "job-a"})
	log.Emit(telemetry.Event{Type: telemetry.EventJobClaimed, Job: "job-a", Worker: "worker-0"})
	log.Emit(telemetry.Event{Type: telemetry.EventJobCompleted, Job: "job-a", State: "done"})
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}

	code, out, errb := check(t, "-events", good, "-require-events", "job.submitted,job.completed")
	if code != 0 {
		t.Errorf("valid events rejected: code %d, %s", code, errb)
	}
	if !strings.Contains(out, "events OK") || !strings.Contains(out, "(3 events)") {
		t.Errorf("stdout = %q", out)
	}
	if code, _, _ := check(t, "-events", good, "-require-events", "lease.fenced"); code != 1 {
		t.Errorf("missing event type accepted: code %d", code)
	}

	torn := filepath.Join(dir, "torn.ndjson")
	os.WriteFile(torn, []byte(`{"schema":"llbp-events/1"}`+"\n"+`{"seq":2,"type":"job.submitted"}`+"\n"), 0o644)
	if code, _, _ := check(t, "-events", torn); code != 1 {
		t.Errorf("seq gap accepted: code %d", code)
	}
}

func TestCheckUsage(t *testing.T) {
	if code, _, _ := check(t); code != 2 {
		t.Errorf("no flags: code %d, want 2", code)
	}
	if code, _, _ := check(t, "-events", "/no/such/file"); code != 1 {
		t.Errorf("unreadable file: code %d, want 1", code)
	}
}
