// Command traceinfo summarizes a binary trace file: record counts by
// branch type, instruction totals, working-set size, and the
// conditional/unconditional ratio the paper's analyses rest on.
//
// Usage:
//
//	traceinfo tomcat.llbptrc
package main

import (
	"flag"
	"fmt"
	"os"

	"llbp/internal/trace"
)

func main() {
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: traceinfo <file.llbptrc>")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	r, err := trace.NewFileReader(f)
	if err != nil {
		fatal(err)
	}
	s, err := trace.Collect(r)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("workload:        %s\n", r.Name())
	fmt.Printf("branches:        %d\n", s.Branches)
	fmt.Printf("instructions:    %d\n", s.Instructions)
	fmt.Printf("unique PCs:      %d\n", len(s.UniquePCs))
	fmt.Printf("cond/uncond:     %.2f\n", s.CondPerUncond())
	if c := s.Conditional(); c > 0 {
		fmt.Printf("taken rate:      %.1f%%\n", float64(s.TakenCond)/float64(c)*100)
	}
	for t := trace.CondDirect; t <= trace.IndirectCall; t++ {
		fmt.Printf("  %-6s %12d\n", t, s.ByType[t])
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "traceinfo:", err)
	os.Exit(1)
}
