package experiments

import (
	"fmt"

	"llbp/internal/core"
	"llbp/internal/predictor"
	"llbp/internal/report"
	"llbp/internal/sim"
	"llbp/internal/stats"
	"llbp/internal/trace"
	"llbp/internal/workload"
)

// Fig1 reproduces Figure 1: the fraction of execution cycles wasted on
// conditional mispredictions for the ten server workloads under the 64K
// TSL (paper: 3.6-20%, avg 9.2%).
func Fig1(h *Harness) ([]*report.Table, error) {
	t := report.New("Figure 1: execution cycles wasted on cond. mispredictions",
		"workload", "wasted-cycles-%", "mpki", "ipc")
	var wasted []float64
	for _, wl := range workload.ServerWorkloads() {
		out, err := h.Run(wl, Spec64K())
		if err != nil {
			return nil, err
		}
		w := out.Res.WastedFraction * 100
		wasted = append(wasted, w)
		t.AddRow(wl.Name(), w, out.Res.MPKI, out.Res.IPC)
	}
	t.AddRow("GMean", stats.GeoMean(wasted), "", "")
	t.Caption = "Paper: 3.6-20% wasted, 9.2% on average (Intel Sapphire Rapids, Top-Down)."
	return []*report.Table{t}, nil
}

// Fig2 reproduces Figure 2: MPKI of 64K TSL vs Inf TAGE vs Inf TSL for all
// 14 workloads (paper: avg 2.91 / ~2.0 / 1.55; Inf TSL cuts 36.5%, Inf
// TAGE captures 87% of that).
func Fig2(h *Harness) ([]*report.Table, error) {
	t := report.New("Figure 2: branch MPKI for TAGE-SC-L capacity limits",
		"workload", "64K-TSL", "Inf-TAGE", "Inf-TSL", "InfTAGE-red%", "InfTSL-red%")
	var base, infTage, infTsl []float64
	for _, wl := range h.Cfg.workloads() {
		b, err := h.Run(wl, Spec64K())
		if err != nil {
			return nil, err
		}
		it, err := h.Run(wl, SpecInfTAGE())
		if err != nil {
			return nil, err
		}
		is, err := h.Run(wl, SpecInfTSL())
		if err != nil {
			return nil, err
		}
		base = append(base, b.Res.MPKI)
		infTage = append(infTage, it.Res.MPKI)
		infTsl = append(infTsl, is.Res.MPKI)
		t.AddRow(wl.Name(), b.Res.MPKI, it.Res.MPKI, is.Res.MPKI,
			stats.Reduction(b.Res.MPKI, it.Res.MPKI),
			stats.Reduction(b.Res.MPKI, is.Res.MPKI))
	}
	mb, mt, ms := meanRow(base), meanRow(infTage), meanRow(infTsl)
	t.AddRow("Mean", mb, mt, ms, stats.Reduction(mb, mt), stats.Reduction(mb, ms))
	t.Caption = "Paper means: 2.91 / ~2.0 / 1.55 MPKI; Inf TSL -36.5%, Inf TAGE captures 87% of it."
	return []*report.Table{t}, nil
}

// trackedRun runs spec over wl with a BranchTracker attached (uncached —
// observers are per-call).
func (h *Harness) trackedRun(wl *workload.Source, spec PredictorSpec, warm, meas uint64) (*sim.Result, *stats.BranchTracker, error) {
	clock := &predictor.Clock{}
	p, err := spec.Build(clock)
	if err != nil {
		return nil, nil, fmt.Errorf("experiments: building %s: %w", spec.Key, err)
	}
	tracker := stats.NewBranchTracker()
	src, release := h.source(wl, warm+meas)
	res, err := sim.Run(src, p, sim.Options{
		WarmupBranches:  warm,
		MeasureBranches: meas,
		Clock:           clock,
		Observer:        tracker.Observe,
	})
	release()
	if err != nil {
		return nil, nil, err
	}
	h.Cfg.progress("  tracked %-10s on %-10s MPKI=%.3f branches=%d", spec.Key, wl.Name(), res.MPKI, tracker.Len())
	return res, tracker, nil
}

// fig3Workload is the workload the paper studies in Figure 3.
const fig3Workload = "Tomcat"

// Fig3a reproduces Figure 3a: cumulative mispredictions over static
// branches (sorted by misses) for capacities 64K..1M and Inf, normalized
// to 64K TSL's total mispredictions.
func Fig3a(h *Harness) ([]*report.Table, error) {
	wl, err := workload.ByName(fig3Workload)
	if err != nil {
		return nil, err
	}
	specs := []PredictorSpec{Spec64K(), Spec128K(), Spec256K(), Spec512K(), Spec1M(), SpecInfTSL()}
	ks := []int{160, 500, 1000, 2000, 5000, 10000}

	t := report.New(fmt.Sprintf("Figure 3a: cumulative mispredictions (%s), normalized to 64K TSL total", fig3Workload),
		"config", "total/64K", "top160", "top500", "top1k", "top2k", "top5k", "top10k", "static-branches")
	var baseTotal float64
	for _, spec := range specs {
		_, tracker, err := h.trackedRun(wl, spec, h.Cfg.Warmup, h.Cfg.Measure)
		if err != nil {
			return nil, err
		}
		total := float64(tracker.TotalMisses())
		if spec.Key == "64k" {
			baseTotal = total
		}
		fr := tracker.CumulativeMissFraction(ks)
		rel := total / baseTotal
		t.AddRow(spec.Key, rel,
			fr[0]*rel, fr[1]*rel, fr[2]*rel, fr[3]*rel, fr[4]*rel, fr[5]*rel,
			tracker.Len())
	}
	t.Caption = "Paper: 0.8% of branches (160 of 20.5K) cause 40% of 64K TSL misses; Inf total ≈ 0.65 of 64K."
	return []*report.Table{t}, nil
}

// Fig3b reproduces Figure 3b: the distribution of useful patterns per
// static branch under infinite capacity (paper: mean 14.13; the 100
// most-mispredicted branches have >100, up to 9500).
func Fig3b(h *Harness) ([]*report.Table, error) {
	wl, err := workload.ByName(fig3Workload)
	if err != nil {
		return nil, err
	}
	_, tracker, err := h.trackedRun(wl, SpecInfTSL(), h.Cfg.Warmup, h.Cfg.Measure)
	if err != nil {
		return nil, err
	}
	perBranch := tracker.UsefulPerBranch() // ordered by descending misses
	top100 := perBranch
	if len(top100) > 100 {
		top100 = perBranch[:100]
	}
	t := report.New(fmt.Sprintf("Figure 3b: useful patterns per static branch (%s, Inf TSL)", fig3Workload),
		"statistic", "patterns")
	t.AddRow("mean (all branches)", stats.Mean(perBranch))
	t.AddRow("mean (top-100 most-mispredicted)", stats.Mean(top100))
	t.AddRow("max", stats.Percentile(perBranch, 100))
	t.AddRow("p50", stats.Percentile(perBranch, 50))
	t.AddRow("p90", stats.Percentile(perBranch, 90))
	t.AddRow("p99", stats.Percentile(perBranch, 99))
	t.Caption = "Paper: mean 14.13; top-100 >100 patterns, up to 9500."
	return []*report.Table{t}, nil
}

// fig5Windows are the context-window sizes of Figure 5.
var fig5Windows = []int{0, 2, 4, 8, 16, 32}

// Fig5 reproduces Figure 5: the distribution of useful patterns per
// program context as the context window W grows, for the top-128
// most-mispredicted branches (paper: W=0 p50=298/p95=2384 collapsing to
// p50=1/p95=9 at W=32).
func Fig5(h *Harness) ([]*report.Table, error) {
	// Pool the per-context pattern counts across workloads, as the
	// paper's violins do.
	pooled := make(map[int][]float64, len(fig5Windows))

	for _, wl := range h.Cfg.workloads() {
		// Pass 1: find the top-128 most-mispredicted branches under
		// infinite capacity.
		_, tracker, err := h.trackedRun(wl, SpecInfTSL(), h.Cfg.SweepWarmup, h.Cfg.SweepMeasure)
		if err != nil {
			return nil, err
		}
		top := make(map[uint64]struct{}, 128)
		for i, b := range tracker.Branches() {
			if i >= 128 {
				break
			}
			top[b.PC] = struct{}{}
		}
		// Pass 2: one run, observing all W values simultaneously with
		// independent observer RCRs.
		rcrs := make(map[int]*core.RCR, len(fig5Windows))
		trackers := make(map[int]*stats.ContextTracker, len(fig5Windows))
		for _, w := range fig5Windows {
			if w > 0 {
				rcrs[w] = core.NewRCR(w, 0, 31, true)
			}
			trackers[w] = stats.NewContextTracker(top)
		}
		clock := &predictor.Clock{}
		p, err := SpecInfTSL().Build(clock)
		if err != nil {
			return nil, err
		}
		src, release := h.source(wl, h.Cfg.SweepWarmup+h.Cfg.SweepMeasure)
		_, err = sim.Run(src, p, sim.Options{
			WarmupBranches:  h.Cfg.SweepWarmup,
			MeasureBranches: h.Cfg.SweepMeasure,
			Clock:           clock,
			Observer: func(b *trace.Branch, pred bool, d predictor.Detail) {
				for _, w := range fig5Windows {
					ctx := uint64(0)
					if w > 0 {
						ctx = rcrs[w].CCID()
					}
					trackers[w].Observe(ctx, b, pred, d)
				}
			},
			UncondObserver: func(b *trace.Branch) {
				for _, w := range fig5Windows {
					if w > 0 {
						rcrs[w].Push(b.PC)
					}
				}
			},
		})
		release()
		if err != nil {
			return nil, err
		}
		for _, w := range fig5Windows {
			pooled[w] = append(pooled[w], trackers[w].PatternsPerContext()...)
		}
		h.Cfg.progress("  fig5 pooled %s", wl.Name())
	}

	t := report.New("Figure 5: useful patterns per context vs window W (top-128 branches)",
		"W", "contexts", "p50", "p95", "max")
	for _, w := range fig5Windows {
		vals := pooled[w]
		t.AddRow(fmt.Sprintf("W=%d", w), len(vals),
			stats.Percentile(vals, 50), stats.Percentile(vals, 95), stats.Percentile(vals, 100))
	}
	t.Caption = "Paper: W=0 p50=298/p95=2384; W=2 p50=3/p95=121; W=32 p50=1/p95=9."
	return []*report.Table{t}, nil
}
