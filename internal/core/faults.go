package core

import "llbp/internal/faults"

// lenIdxBits returns the width of the pattern length field for n history
// lengths (at least 1 bit).
func lenIdxBits(n int) int {
	b := 1
	for (1 << uint(b)) < n {
		b++
	}
	return b
}

// entryAt returns the directory entry at flat position i under a stable
// enumeration of the directory's storage (set-major for the
// set-associative organization, insertion order for the fully associative
// one), or nil when the slot is unallocated.
func (d *Directory) entryAt(i int) *CDEntry {
	if d.assoc != nil {
		if i >= len(d.entries) {
			return nil
		}
		return d.entries[i]
	}
	ways := len(d.sets[0])
	e := &d.sets[i/ways][i%ways]
	if !e.Valid {
		return nil
	}
	return e
}

// entrySlots returns the flat entry count of the directory's storage.
func (d *Directory) entrySlots() int {
	if d.assoc != nil {
		return d.capacity
	}
	return len(d.sets) * len(d.sets[0])
}

// FaultFields implements faults.Surface for the composite predictor: the
// baseline TAGE-SC-L fields plus LLBP's bulk pattern-set storage — the
// megabyte-class LLC-adjacent SRAM that motivates the whole study. Every
// pattern of every resident set is addressable: tag, counter, length
// field and valid bit. Pattern sets are shared by pointer with the
// pattern buffer, so corrupting LLBP storage corrupts cached PB copies
// too, exactly as a single-copy transfer model implies.
//
// Flips striking unallocated contexts are dead (no architectural effect);
// the flat bit space still covers the full capacity so fault rates scale
// with the physical array, not with occupancy. Parity granularity is one
// 18-bit pattern: a detected flip invalidates that pattern only.
func (p *Predictor) FaultFields() []faults.Field {
	fields := p.base.FaultFields()
	per := p.cfg.PatternsPerSet
	slots := p.dir.entrySlots() * per
	lenBits := lenIdxBits(len(p.cfg.HistLengths))
	nLengths := len(p.cfg.HistLengths)

	// Patterns are stored as packed lanes; the fault surface reads and
	// writes whole patterns through the unpacked view, so field addressing
	// is unchanged from the scalar layout.
	get := func(i int) (Pattern, bool) {
		ent := p.dir.entryAt(i / per)
		if ent == nil {
			return Pattern{}, false
		}
		return ent.Set.Pattern(i % per), true
	}
	put := func(i int, q Pattern) {
		if ent := p.dir.entryAt(i / per); ent != nil {
			ent.Set.SetPattern(i%per, q)
		}
	}
	ctrBits := p.cfg.CtrBits
	reset := func(i int) { put(i, Pattern{}) }
	fields = append(fields,
		faults.Field{
			Name: "llbp.pattern.tag", Bits: p.cfg.TagBits, Len: slots,
			Get: func(i int) uint64 {
				if q, ok := get(i); ok {
					return uint64(q.Tag)
				}
				return 0
			},
			Set: func(i int, v uint64) {
				if q, ok := get(i); ok {
					q.Tag = uint32(v)
					put(i, q)
				}
			},
			Reset: reset,
		},
		faults.Field{
			Name: "llbp.pattern.ctr", Bits: ctrBits, Len: slots,
			Get: func(i int) uint64 {
				if q, ok := get(i); ok {
					return faults.Unsigned(int64(q.Ctr), ctrBits)
				}
				return 0
			},
			Set: func(i int, v uint64) {
				if q, ok := get(i); ok {
					q.Ctr = int8(faults.SignExtend(v, ctrBits))
					put(i, q)
				}
			},
			Reset: reset,
		},
		faults.Field{
			Name: "llbp.pattern.len", Bits: lenBits, Len: slots,
			Get: func(i int) uint64 {
				if q, ok := get(i); ok {
					return uint64(q.LenIdx)
				}
				return 0
			},
			Set: func(i int, v uint64) {
				if q, ok := get(i); ok {
					// A corrupt encoding beyond the configured length
					// count decodes as the last valid length (hardware
					// would select some row of the mux cascade; any
					// deterministic choice is faithful).
					if int(v) >= nLengths {
						v = uint64(nLengths - 1)
					}
					q.LenIdx = uint8(v)
					put(i, q)
				}
			},
			Reset: reset,
		},
		faults.Field{
			Name: "llbp.pattern.valid", Bits: 1, Len: slots,
			Get: func(i int) uint64 {
				if q, ok := get(i); ok && q.Valid {
					return 1
				}
				return 0
			},
			Set: func(i int, v uint64) {
				if q, ok := get(i); ok {
					q.Valid = v != 0
					put(i, q)
				}
			},
			Reset: reset,
		},
	)
	return fields
}

var _ faults.Surface = (*Predictor)(nil)
