package telemetry

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Tracer emits structured events in the Chrome trace-event format:
// a JSON array with one event object per line, which chrome://tracing
// and Perfetto load directly and which line-oriented tools can still
// grep. A nil *Tracer is the disabled tracer — every method is a no-op —
// so call sites never test for enablement.
//
// Events carry an explicit timestamp in microseconds. The simulation
// driver uses simulated cycles as the time base (one cycle rendered as
// one microsecond); the harness uses wall time via Since. Different time
// domains are kept apart by pid: viewers render each pid as its own
// process track, so simulated and wall-clock tracks never interleave.
type Tracer struct {
	mu     sync.Mutex
	w      *bufio.Writer
	events int
	err    error
	start  time.Time
}

// Conventional pid assignments for the two time domains.
const (
	// PidSim is the process track for simulated-time events (ts =
	// cycles).
	PidSim = 1
	// PidHarness is the process track for wall-clock events (ts =
	// microseconds since NewTracer).
	PidHarness = 2
	// PidService is the process track for llbpd job-lifecycle spans
	// (wall clock, ts = microseconds since NewTracer; tid = worker
	// index + 1).
	PidService = 3
	// PidSession is the process track for streaming-session epoch spans
	// (wall clock; one tid per session, assigned in open order).
	PidSession = 4
)

// NewTracer starts a tracer writing to w. Call Close to terminate the
// JSON array and flush.
func NewTracer(w io.Writer) *Tracer {
	return &Tracer{w: bufio.NewWriter(w), start: time.Now()}
}

// traceEvent is the wire format of one event. Field order is fixed so
// emitted lines are deterministic (args maps marshal with sorted keys).
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

func (t *Tracer) emit(ev traceEvent) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil || t.w == nil {
		return
	}
	line, err := json.Marshal(ev)
	if err != nil {
		t.err = err
		return
	}
	if t.events == 0 {
		_, t.err = t.w.WriteString("[\n")
	} else {
		_, t.err = t.w.WriteString(",\n")
	}
	if t.err == nil {
		_, t.err = t.w.Write(line)
	}
	t.events++
}

// Since returns microseconds of wall time since the tracer started — the
// timestamp base for PidHarness events. Nil tracers return 0.
func (t *Tracer) Since() float64 {
	if t == nil {
		return 0
	}
	return float64(time.Since(t.start).Microseconds())
}

// ProcessName emits the metadata event naming a pid's track.
func (t *Tracer) ProcessName(pid int, name string) {
	t.emit(traceEvent{Name: "process_name", Ph: "M", Pid: pid,
		Args: map[string]any{"name": name}})
}

// ThreadName emits the metadata event naming a (pid, tid) track.
func (t *Tracer) ThreadName(pid, tid int, name string) {
	t.emit(traceEvent{Name: "thread_name", Ph: "M", Pid: pid, Tid: tid,
		Args: map[string]any{"name": name}})
}

// Span emits a complete-span ("X") event covering [ts, ts+dur).
func (t *Tracer) Span(pid, tid int, name, cat string, ts, dur float64, args map[string]any) {
	t.emit(traceEvent{Name: name, Cat: cat, Ph: "X", Ts: ts, Dur: &dur,
		Pid: pid, Tid: tid, Args: args})
}

// Instant emits a thread-scoped instant ("i") event at ts.
func (t *Tracer) Instant(pid, tid int, name, cat string, ts float64, args map[string]any) {
	t.emit(traceEvent{Name: name, Cat: cat, Ph: "i", Ts: ts,
		Pid: pid, Tid: tid, S: "t", Args: args})
}

// Counter emits a counter ("C") event: viewers render each key of values
// as a stacked series on the named counter track.
func (t *Tracer) Counter(pid int, name string, ts float64, values map[string]float64) {
	args := make(map[string]any, len(values))
	for k, v := range values {
		args[k] = v
	}
	t.emit(traceEvent{Name: name, Ph: "C", Ts: ts, Pid: pid, Args: args})
}

// Events returns the number of events emitted so far.
func (t *Tracer) Events() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.events
}

// Err returns the first write or encoding error, if any.
func (t *Tracer) Err() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// Close terminates the JSON array and flushes buffered events. The
// tracer is unusable afterwards; further events are dropped.
func (t *Tracer) Close() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.w == nil {
		return t.err
	}
	if t.err == nil {
		if t.events == 0 {
			_, t.err = t.w.WriteString("[")
		}
		if t.err == nil {
			_, t.err = t.w.WriteString("\n]\n")
		}
	}
	if ferr := t.w.Flush(); t.err == nil {
		t.err = ferr
	}
	t.w = nil
	return t.err
}
