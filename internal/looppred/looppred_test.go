package looppred

import "testing"

// runLoop feeds `trips` full loop executions of `trip` taken iterations
// plus one not-taken exit each, and returns the misprediction count over
// the last `measure` executions counting only valid (confident)
// predictions as predictions.
func runLoop(t *testing.T, p *Predictor, pc uint64, trip, execs int) (validMisses, validPreds int) {
	t.Helper()
	for e := 0; e < execs; e++ {
		for i := 0; i < trip; i++ {
			pred, valid := p.Predict(pc)
			if valid {
				validPreds++
				if !pred {
					validMisses++
				}
			}
			// The simulated TAGE predicts the loop bias (taken), so
			// it is right on every iteration...
			p.Update(pc, true, false)
		}
		pred, valid := p.Predict(pc)
		if valid {
			validPreds++
			if pred {
				validMisses++
			}
		}
		// ...and wrong on the exit — the case the loop predictor is
		// allocated for.
		p.Update(pc, false, true)
	}
	return
}

func mustNew(t *testing.T) *Predictor {
	t.Helper()
	p, err := New(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestLearnsFixedTripCount(t *testing.T) {
	p := mustNew(t)
	// Warm up until confident, then every valid prediction must be
	// correct, including the exits.
	runLoop(t, p, 0x4000, 7, 6)
	misses, preds := runLoop(t, p, 0x4000, 7, 10)
	if preds == 0 {
		t.Fatal("predictor never became confident on a regular loop")
	}
	if misses != 0 {
		t.Errorf("%d/%d confident mispredictions on a regular loop", misses, preds)
	}
}

func TestTripCountOne(t *testing.T) {
	// Alternating taken/not-taken is a trip-count-1 loop; the historical
	// off-by-one bug predicted the exit one iteration early.
	p := mustNew(t)
	runLoop(t, p, 0x4000, 1, 8)
	misses, preds := runLoop(t, p, 0x4000, 1, 10)
	if preds > 0 && misses != 0 {
		t.Errorf("%d/%d confident mispredictions on trip-count-1 loop", misses, preds)
	}
}

func TestUnstableLoopLosesConfidence(t *testing.T) {
	p := mustNew(t)
	runLoop(t, p, 0x4000, 5, 6) // learn trip 5
	// Change the trip count: confidence must drop, so valid predictions
	// stop until relearned.
	runLoop(t, p, 0x4000, 9, 1)
	_, valid := p.Predict(0x4000)
	p.Update(0x4000, true, false)
	if valid {
		t.Error("confidence must drop after a trip-count change")
	}
}

func TestAllocatesOnlyOnTageWrongExit(t *testing.T) {
	p := mustNew(t)
	pc := uint64(0x8000)
	// Exit misprediction with tageWrong=false must not allocate.
	p.Predict(pc)
	p.Update(pc, false, false)
	if _, valid := p.Predict(pc); valid {
		t.Error("no entry should exist without a TAGE-wrong exit")
	}
	p.Update(pc, false, false)
	// Now a TAGE-wrong exit allocates.
	p.Predict(pc)
	p.Update(pc, false, true)
	// The entry exists (hit path) even though not yet confident.
	p.Predict(pc)
	p.Update(pc, true, false)
	// No crash and still not confident: the entry needs full trips.
	if _, valid := p.Predict(pc); valid {
		t.Error("entry must not be confident after one observation")
	}
	p.Update(pc, true, false)
}

func TestDistinctLoopsInSameSet(t *testing.T) {
	p := mustNew(t)
	// Two loops mapping to the same set (same low bits): both learnable
	// thanks to tags and 4 ways.
	pcA := uint64(0x1000)
	pcB := pcA + 4<<4 // same set index (pc>>2 & 15), different tag bits
	runLoop(t, p, pcA, 3, 8)
	runLoop(t, p, pcB, 6, 8)
	mA, pA := runLoop(t, p, pcA, 3, 5)
	mB, pB := runLoop(t, p, pcB, 6, 5)
	if pA == 0 || pB == 0 {
		t.Skip("aliasing prevented confidence; acceptable for shared sets")
	}
	if mA != 0 || mB != 0 {
		t.Errorf("confident misses: A=%d/%d B=%d/%d", mA, pA, mB, pB)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 4); err == nil {
		t.Error("logSets 0 must fail")
	}
	if _, err := New(13, 4); err == nil {
		t.Error("logSets 13 must fail")
	}
	if _, err := New(4, 0); err == nil {
		t.Error("ways 0 must fail")
	}
	if _, err := New(4, 17); err == nil {
		t.Error("ways 17 must fail")
	}
}

func TestStorageBitsPositive(t *testing.T) {
	p := mustNew(t)
	if p.StorageBits() <= 0 {
		t.Error("storage must be positive")
	}
}
