package tage

import (
	"fmt"

	"llbp/internal/assert"
	"llbp/internal/bimodal"
	"llbp/internal/history"
	"llbp/internal/telemetry"
	"llbp/internal/trace"
)

// entry is one tagged-table pattern: a partial tag, a signed prediction
// counter whose sign is the direction, and a useful bit guiding
// replacement (§II-B).
type entry struct {
	tag    uint32
	ctr    int8
	useful uint8
}

// tableLocs caches one tagged table's folded-history locations inside
// the shared history engine, so the index/tag hashes read packed words
// directly.
type tableLocs struct {
	idx  history.Loc
	tag1 history.Loc
	tag2 history.Loc
}

// tableHash is the flattened per-table hash schedule consumed by
// Predict's scratch-fill loop: fold word positions and every
// loop-invariant shift/mask in one sequentially-read struct, so the
// per-table work is pure ALU ops on three packed-word loads. idxMask
// doubles as the index fold's field mask (the fold is registered at
// exactly logE bits), and the tag folds need no field masks at all:
// their stray high bits land above TagBits and the final tagMask clears
// them (AND distributes over XOR).
type tableHash struct {
	idxMask   uint64
	tagMask   uint32
	idxWord   int32
	tag1Word  int32
	tag2Word  int32
	idxShift  uint8
	tag1Shift uint8
	tag2Shift uint8
	pcShift   uint8 // logE - i&3
	pathShift uint8 // i&7 for long-history tables, 0 otherwise
}

// infKey identifies a pattern in infinite mode: the full branch PC plus
// the unmodified index and tag hashes. Including the PC removes all
// aliasing while leaving the hash functions untouched, exactly the paper's
// Inf construction.
type infKey struct {
	pc  uint64
	idx uint32
	tag uint32
}

// Predictor is a TAGE predictor instance. It is not safe for concurrent
// use; the simulation driver is single-threaded per predictor.
type Predictor struct {
	cfg Config

	bim *bimodal.Table

	// Finite storage: tables[i] has 1<<LogEntries[i] entries.
	tables [][]entry
	// Infinite storage: one unbounded associative map per table.
	inf []map[infKey]*entry

	path *history.Path
	// eng maintains the global history and every folded register,
	// bit-packed so one push updates all of them (see history.Engine).
	// The composite predictor shares this engine (§V-B: LLBP's fold
	// mirrors are identical in content to the baseline's) and, when it
	// does, takes over pushing: engOwner is false and TAGE's own update
	// paths advance only the path history.
	eng      *history.Engine
	engOwner bool
	locs     []tableLocs
	plan     []tableHash

	useAltOnNA int8 // 4-bit counter: >=0 means trust alt over newly allocated providers
	tick       int  // useful-bit aging counter

	rng uint64 // xorshift64* state

	// Per-prediction scratch, filled by Predict and consumed by Update.
	scratch scratch

	// Stats counters (cumulative; the sim layer snapshots them).
	allocFailures uint64
	allocations   uint64

	// Telemetry instruments (nil = detached no-ops).
	telAllocs       *telemetry.Counter
	telAllocFails   *telemetry.Counter
	telProviderLens *telemetry.Histogram
}

// AttachTelemetry wires the predictor's allocator counters and the
// provider-length histogram to reg (nil detaches). Implements
// telemetry.Attachable.
func (p *Predictor) AttachTelemetry(reg *telemetry.Registry) {
	p.telAllocs = reg.Counter("tage_allocs")
	p.telAllocFails = reg.Counter("tage_alloc_failures")
	p.telProviderLens = reg.Histogram("tage_provider_len",
		telemetry.ExponentialBuckets(4, 2, 10))
}

// scratch carries one prediction's intermediate state from Predict to
// Update (the CBP harness guarantees the pairing).
type scratch struct {
	pc          uint64
	idx         [64]uint32
	tag         [64]uint32
	ent         [64]entry // per-table candidate entries (finite fast path)
	provider    int // table index of longest match, -1 if none
	alt         int // table index of next-longest match, -1 if bimodal
	providerKey infKey
	altKey      infKey
	providerCtr int8
	predTaken   bool
	altTaken    bool
	bimTaken    bool
	newlyAlloc  bool // provider entry looked newly allocated
	finalTaken  bool
}

// New constructs a TAGE predictor from cfg.
func New(cfg Config) (*Predictor, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := len(cfg.HistLengths)
	if n > 64 {
		return nil, fmt.Errorf("tage: at most 64 tables supported, got %d", n)
	}
	p := &Predictor{
		cfg:      cfg,
		bim:      bimodal.New(cfg.BimodalLog),
		path:     history.NewPath(cfg.PathBits),
		eng:      history.NewEngine(),
		engOwner: true,
		rng:      cfg.Seed | 1,
	}
	if cfg.Infinite {
		p.inf = make([]map[infKey]*entry, n)
		for i := range p.inf {
			p.inf[i] = make(map[infKey]*entry)
		}
	} else {
		// All tables share one flat backing array: a single allocation,
		// contiguous for the per-branch provider scan.
		total := 0
		for i := 0; i < n; i++ {
			total += 1 << uint(cfg.LogEntries[i])
		}
		backing := make([]entry, total)
		p.tables = make([][]entry, n)
		off := 0
		for i := range p.tables {
			sz := 1 << uint(cfg.LogEntries[i])
			p.tables[i] = backing[off : off+sz : off+sz]
			off += sz
		}
	}
	p.locs = make([]tableLocs, n)
	for i := 0; i < n; i++ {
		idxBits := cfg.LogEntries[i]
		if cfg.Infinite {
			// Keep the same fold widths as the finite baseline so
			// the hash functions are unchanged.
			idxBits = 10
		}
		p.locs[i] = tableLocs{
			idx:  p.eng.Loc(p.eng.Register(cfg.HistLengths[i], idxBits)),
			tag1: p.eng.Loc(p.eng.Register(cfg.HistLengths[i], cfg.TagBits[i])),
			tag2: p.eng.Loc(p.eng.Register(cfg.HistLengths[i], cfg.TagBits[i]-1)),
		}
	}
	p.plan = make([]tableHash, n)
	for i := 0; i < n; i++ {
		logE := uint(cfg.LogEntries[i])
		if cfg.Infinite {
			logE = 10
		}
		l := &p.locs[i]
		t := &p.plan[i]
		t.idxMask = uint64(1)<<logE - 1
		t.tagMask = uint32(1)<<uint(cfg.TagBits[i]) - 1
		t.idxWord, t.idxShift = l.idx.Word, l.idx.Shift
		t.tag1Word, t.tag1Shift = l.tag1.Word, l.tag1.Shift
		t.tag2Word, t.tag2Shift = l.tag2.Word, l.tag2.Shift
		t.pcShift = uint8(logE - uint(i&3))
		if cfg.HistLengths[i] >= 16 {
			t.pathShift = uint8(i & 7)
		}
	}
	return p, nil
}

// HistoryEngine exposes the shared folded-history engine so a composite
// predictor can register its own folds on it (§V-B).
func (p *Predictor) HistoryEngine() *history.Engine { return p.eng }

// AdoptHistoryEngine transfers push ownership of the history engine to
// the caller (the composite predictor): TAGE's update paths stop
// advancing the global/folded histories — only the path history — and
// the adopter must call Engine.Push exactly once per branch, after its
// full update. It returns the engine for registration and pushing.
func (p *Predictor) AdoptHistoryEngine() *history.Engine {
	p.engOwner = false
	return p.eng
}

// RebindHistoryEngine points the predictor at a cloned engine (the
// composite's fork path). Cached fold locations remain valid: clones
// share the parent's packed layout.
func (p *Predictor) RebindHistoryEngine(e *history.Engine) { p.eng = e }

// Name implements predictor.Predictor.
func (p *Predictor) Name() string {
	if p.cfg.Infinite {
		return "Inf TAGE"
	}
	return fmt.Sprintf("TAGE-%dKB", p.cfg.StorageBits()/8/1024)
}

// Config returns the predictor's configuration.
func (p *Predictor) Config() Config { return p.cfg }

func (p *Predictor) nextRand() uint64 {
	// xorshift64*: deterministic, cheap, good enough for allocation
	// tie-breaking.
	x := p.rng
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	p.rng = x
	return x * 0x2545F4914F6CDD1D
}

// index computes the table index hash for table i: branch PC mixed with the
// folded global history and the path history, as in the CBP designs.
func (p *Predictor) index(pc uint64, i int) uint32 {
	logE := uint(p.cfg.LogEntries[i])
	if p.cfg.Infinite {
		logE = 10
	}
	l := p.locs[i].idx
	h := (pc >> 2) ^ (pc >> (logE - uint(i&3))) ^ ((p.eng.Word(l.Word) >> l.Shift) & l.Mask)
	if p.cfg.HistLengths[i] >= 16 {
		h ^= p.path.Value() >> uint(i&7)
	} else {
		h ^= p.path.Value()
	}
	return uint32(h & (uint64(1)<<logE - 1))
}

// tagHash computes the partial tag for table i.
func (p *Predictor) tagHash(pc uint64, i int) uint32 {
	l := &p.locs[i]
	f1 := (p.eng.Word(l.tag1.Word) >> l.tag1.Shift) & l.tag1.Mask
	f2 := (p.eng.Word(l.tag2.Word) >> l.tag2.Shift) & l.tag2.Mask
	h := (pc >> 2) ^ f1 ^ (f2 << 1)
	return uint32(h & (uint64(1)<<uint(p.cfg.TagBits[i]) - 1))
}

func (p *Predictor) ctrMax() int8 { return int8(1)<<(p.cfg.CounterBits-1) - 1 }
func (p *Predictor) ctrMin() int8 { return -int8(1) << (p.cfg.CounterBits - 1) }

// lookup returns the entry for (pc, table i) if its tag matches, else nil.
func (p *Predictor) lookup(i int, pc uint64, idx, tag uint32) *entry {
	if p.cfg.Infinite {
		//llbplint:allow hotpath -- Infinite is the unbounded-capacity ablation, never the evaluated hardware path; maps are its whole point
		return p.inf[i][infKey{pc, idx, tag}]
	}
	e := &p.tables[i][idx]
	if e.tag == tag && (e.ctr != 0 || e.useful != 0 || e.tag != 0) {
		// The zero entry (tag 0, ctr 0, useful 0) is treated as
		// invalid so that a cold table never spuriously matches
		// tag-0 branches.
		return e
	}
	return nil
}

// Predict implements predictor.Predictor. It records full provenance in
// the scratch area for Update and LastDetail.
func (p *Predictor) Predict(pc uint64) bool {
	s := &p.scratch
	s.pc = pc
	s.provider, s.alt = -1, -1
	n := len(p.cfg.HistLengths)
	// Fill the index/tag scratch from the flattened hash plan: the packed
	// word slice and path value live in locals so the loop body is three
	// indexed loads plus shifts/xors per table, with no method calls.
	// index()/tagHash() are the reference formulation of the same hashes.
	words := p.eng.Words()
	pv := p.path.Value()
	base := pc >> 2
	if !p.cfg.Infinite {
		// Finite fast path: the candidate entry of every table is copied
		// into the scratch during the fill loop, so the 21 random table
		// loads issue back to back (memory-level parallelism) instead of
		// serializing through the longest-match scan below.
		tables := p.tables
		for i := range p.plan {
			t := &p.plan[i]
			h := base ^ (pc >> t.pcShift) ^ (words[t.idxWord] >> t.idxShift) ^ (pv >> t.pathShift)
			idx := uint32(h & t.idxMask)
			s.idx[i] = idx
			th := base ^ (words[t.tag1Word] >> t.tag1Shift) ^ ((words[t.tag2Word] >> t.tag2Shift) << 1)
			s.tag[i] = uint32(th) & t.tagMask
			s.ent[i] = tables[i][idx]
		}
		for i := n - 1; i >= 0; i-- {
			e := &s.ent[i]
			// Same validity rule as lookup(): tag match, and the all-zero
			// entry never matches.
			if e.tag != s.tag[i] || (e.ctr == 0 && e.useful == 0 && e.tag == 0) {
				continue
			}
			if s.provider < 0 {
				s.provider = i
				s.providerKey = infKey{pc, s.idx[i], s.tag[i]}
				s.providerCtr = e.ctr
				s.predTaken = e.ctr >= 0
				s.newlyAlloc = e.useful == 0 && (e.ctr == 0 || e.ctr == -1)
			} else {
				s.alt = i
				s.altKey = infKey{pc, s.idx[i], s.tag[i]}
				s.altTaken = e.ctr >= 0
				break
			}
		}
	} else {
		for i := range p.plan {
			t := &p.plan[i]
			h := base ^ (pc >> t.pcShift) ^ (words[t.idxWord] >> t.idxShift) ^ (pv >> t.pathShift)
			s.idx[i] = uint32(h & t.idxMask)
			th := base ^ (words[t.tag1Word] >> t.tag1Shift) ^ ((words[t.tag2Word] >> t.tag2Shift) << 1)
			s.tag[i] = uint32(th) & t.tagMask
		}
		for i := n - 1; i >= 0; i-- {
			if e := p.lookup(i, pc, s.idx[i], s.tag[i]); e != nil {
				if s.provider < 0 {
					s.provider = i
					s.providerKey = infKey{pc, s.idx[i], s.tag[i]}
					s.providerCtr = e.ctr
					s.predTaken = e.ctr >= 0
					s.newlyAlloc = e.useful == 0 && (e.ctr == 0 || e.ctr == -1)
				} else {
					s.alt = i
					s.altKey = infKey{pc, s.idx[i], s.tag[i]}
					s.altTaken = e.ctr >= 0
					break
				}
			}
		}
	}
	s.bimTaken = p.bim.Predict(pc)
	if s.provider < 0 {
		s.finalTaken = s.bimTaken
		p.telProviderLens.Observe(0)
		return s.finalTaken
	}
	p.telProviderLens.Observe(float64(p.cfg.HistLengths[s.provider]))
	if s.alt < 0 {
		s.altTaken = s.bimTaken
	}
	// Newly allocated entries are unreliable; a global use-alt-on-na
	// counter arbitrates (Seznec's TAGE heuristic).
	if s.newlyAlloc && p.useAltOnNA >= 0 {
		s.finalTaken = s.altTaken
	} else {
		s.finalTaken = s.predTaken
	}
	return s.finalTaken
}

// providerEntry returns the scratch provider's entry, or nil.
func (p *Predictor) providerEntry() *entry {
	s := &p.scratch
	if s.provider < 0 {
		return nil
	}
	return p.lookup(s.provider, s.pc, s.idx[s.provider], s.tag[s.provider])
}

// Update implements predictor.Predictor: trains counters and useful bits,
// allocates longer-history patterns on mispredictions, and finally pushes
// the outcome into the global/path/folded histories.
//
//llbplint:sink -- predictor tables define simulated accuracy; training on a nondeterministic value forks the trajectory
func (p *Predictor) Update(pc uint64, taken bool) {
	s := &p.scratch
	if pc != s.pc {
		assert.Failf("tage: Update(%#x) without matching Predict (last %#x)", pc, s.pc)
	}
	p.train(taken, s.finalTaken != taken)
	p.pushHistory(pc, taken, true)
}

// UpdateNoAlloc trains the provider (counters, useful bits, use-alt) but
// suppresses new-pattern allocation and history update. The LLBP composite
// uses it when LLBP overrides TAGE: "only the providing component is
// updated ... TAGE will cancel its update" (§V-D) — but allocation on a
// *provider* misprediction is handled by LLBP, not TAGE, in that case.
//
//llbplint:sink -- predictor tables define simulated accuracy; training on a nondeterministic value forks the trajectory
func (p *Predictor) UpdateNoAlloc(pc uint64, taken bool) {
	s := &p.scratch
	if pc != s.pc {
		assert.Failf("tage: UpdateNoAlloc(%#x) without matching Predict (last %#x)", pc, s.pc)
	}
	p.trainProviderOnly(taken)
	p.pushHistory(pc, taken, true)
}

// train performs the full TAGE update given the resolved direction.
func (p *Predictor) train(taken bool, _ bool) {
	s := &p.scratch
	p.trainProviderOnly(taken)
	// Allocate a new pattern with a longer history when the TAGE
	// prediction (provider or chosen alt) was wrong.
	if s.finalTaken != taken && s.provider < len(p.cfg.HistLengths)-1 {
		p.allocate(taken)
	}
}

// trainProviderOnly updates the providing component's counter, the useful
// bit, the use-alt-on-na counter and the bimodal fallback — everything but
// allocation.
func (p *Predictor) trainProviderOnly(taken bool) {
	s := &p.scratch
	if s.provider < 0 {
		p.bim.Update(s.pc, taken)
		return
	}
	e := p.providerEntry()
	if e == nil {
		// The provider entry can only vanish in infinite mode if a
		// concurrent mutation removed it; treat as bimodal.
		p.bim.Update(s.pc, taken)
		return
	}
	// use-alt-on-na bookkeeping: when the provider looked newly
	// allocated and the two predictions differ, learn which to trust.
	if s.newlyAlloc && s.predTaken != s.altTaken {
		if s.predTaken == taken {
			if p.useAltOnNA > -8 {
				p.useAltOnNA--
			}
		} else if p.useAltOnNA < 7 {
			p.useAltOnNA++
		}
	}
	// Update the provider counter.
	if taken {
		if e.ctr < p.ctrMax() {
			e.ctr++
		}
	} else if e.ctr > p.ctrMin() {
		e.ctr--
	}
	// Useful-bit policy (§II-B): set when the provider was correct and
	// the alternate prediction was wrong; clear when both were correct
	// (the longer pattern is redundant).
	if s.predTaken != s.altTaken {
		if s.predTaken == taken {
			e.useful = 1
		}
	} else if e.useful == 1 && s.predTaken == taken && s.provider >= 0 && s.alt >= 0 {
		// Both tagged patterns agree and are correct: the longer
		// history is not needed; decay its usefulness.
		e.useful = 0
	}
	// When the alternate prediction came from the bimodal, keep the
	// bimodal trained too (it is the ultimate fallback).
	if s.alt < 0 {
		p.bim.Update(s.pc, taken)
	}
}

// allocate inserts the mispredicted branch into (up to two) tables with a
// longer history than the provider, following the championship policy:
// randomized start table, victim must have useful == 0, and repeated
// failures age all useful bits via the tick counter.
func (p *Predictor) allocate(taken bool) {
	s := &p.scratch
	n := len(p.cfg.HistLengths)
	start := s.provider + 1
	// Skew the start table geometrically: with probability 1/2 start one
	// table further, 1/4 two further — spreads allocations across
	// history lengths (Seznec).
	r := p.nextRand()
	for r&1 == 1 && start < n-1 {
		start++
		r >>= 1
	}
	if p.cfg.Infinite {
		// Unbounded associativity: allocation always succeeds in the
		// chosen table.
		i := start
		if i >= n {
			i = n - 1
		}
		k := infKey{s.pc, s.idx[i], s.tag[i]}
		//llbplint:allow hotpath -- Infinite is the unbounded-capacity ablation, never the evaluated hardware path; maps are its whole point
		if _, ok := p.inf[i][k]; !ok {
			//llbplint:allow hotpath -- Infinite ablation: entries live on the heap by design, one allocation per new (pc,idx,tag)
			p.inf[i][k] = &entry{tag: s.tag[i], ctr: weakCtr(taken)}
			p.allocations++
			p.telAllocs.Inc()
		}
		return
	}
	allocated := 0
	failures := 0
	for i := start; i < n && allocated < 2; i++ {
		e := &p.tables[i][s.idx[i]]
		if e.useful == 0 {
			e.tag = s.tag[i]
			e.ctr = weakCtr(taken)
			e.useful = 0
			allocated++
			p.allocations++
			p.telAllocs.Inc()
			i++ // leave a gap before the second allocation
		} else {
			failures++
		}
	}
	// Tick-based aging: net allocation failures gradually force a global
	// useful-bit reset so stale patterns can be recycled.
	p.tick += failures - allocated
	if p.tick < 0 {
		p.tick = 0
	}
	if p.tick >= tickThreshold {
		p.tick = 0
		for t := range p.tables {
			tbl := p.tables[t]
			for j := range tbl {
				tbl[j].useful = 0
			}
		}
	}
	if allocated == 0 {
		p.allocFailures++
		p.telAllocFails.Inc()
	}
}

// tickThreshold is the number of net allocation failures that triggers a
// global useful-bit reset.
const tickThreshold = 16384

// weakCtr returns the weak counter value encoding the given direction.
func weakCtr(taken bool) int8 {
	if taken {
		return 0
	}
	return -1
}

// TrackOther implements predictor.Predictor: unconditional transfers
// contribute a taken bit (and their PC) to the histories, as in the CBP
// harness.
func (p *Predictor) TrackOther(pc, target uint64, t trace.BranchType) {
	_ = target
	_ = t
	p.pushHistory(pc, true, false)
}

// pushHistory advances the path history and — when this predictor still
// owns its history engine — the global and folded histories. A composite
// that adopted the engine pushes it once itself, after its whole update
// (its allocation path must see pre-push folds, §V-D).
func (p *Predictor) pushHistory(pc uint64, taken bool, _ bool) {
	p.path.Push(pc >> 2)
	if p.engOwner {
		p.eng.Push(taken)
	}
}

// LastConfident reports whether the last prediction came from a saturated
// (high-confidence) provider counter, or — for bimodal predictions — a
// reinforced bimodal entry.
func (p *Predictor) LastConfident() bool {
	s := &p.scratch
	if s.provider < 0 {
		return p.bim.Confident(s.pc)
	}
	return s.providerCtr >= p.ctrMax() || s.providerCtr <= p.ctrMin()+1
}

// UpdateHistoryOnly advances the histories for a conditional branch without
// training any counters or allocating patterns. The LLBP composite calls
// this when LLBP provides the prediction and TAGE "cancels its update"
// (§V-D).
//
//llbplint:sink -- predictor tables define simulated accuracy; training on a nondeterministic value forks the trajectory
func (p *Predictor) UpdateHistoryOnly(pc uint64, taken bool) {
	s := &p.scratch
	if pc != s.pc {
		assert.Failf("tage: UpdateHistoryOnly(%#x) without matching Predict (last %#x)", pc, s.pc)
	}
	p.pushHistory(pc, taken, true)
}

// ProviderLen returns the history length of the last prediction's provider
// (0 when the bimodal provided).
func (p *Predictor) ProviderLen() int {
	if p.scratch.provider < 0 {
		return 0
	}
	return p.cfg.HistLengths[p.scratch.provider]
}

// LastProviderTable returns the provider table index of the last
// prediction, or -1 for bimodal.
func (p *Predictor) LastProviderTable() int { return p.scratch.provider }

// LastAltTaken returns the alternate prediction of the last Predict.
func (p *Predictor) LastAltTaken() bool { return p.scratch.altTaken }

// LastTaken returns the final TAGE prediction of the last Predict.
func (p *Predictor) LastTaken() bool { return p.scratch.finalTaken }

// LastPatternKey returns a stable identifier of the providing pattern of
// the last prediction (0 when the bimodal provided). Experiments use it to
// count distinct useful patterns per branch (Figures 3b and 5).
func (p *Predictor) LastPatternKey() uint64 {
	s := &p.scratch
	if s.provider < 0 {
		return 0
	}
	k := s.providerKey
	return 1 | uint64(s.provider)<<1 | uint64(k.idx)<<8 | uint64(k.tag)<<32 | k.pc<<48
}

// Allocations returns the cumulative number of successful pattern
// allocations.
func (p *Predictor) Allocations() uint64 { return p.allocations }

// AllocFailures returns the cumulative number of mispredictions for which
// no pattern could be allocated.
func (p *Predictor) AllocFailures() uint64 { return p.allocFailures }

// PatternCount returns the number of live patterns (infinite mode) or the
// total table capacity (finite mode).
func (p *Predictor) PatternCount() int {
	if p.cfg.Infinite {
		n := 0
		for _, m := range p.inf {
			n += len(m)
		}
		return n
	}
	n := 0
	for _, t := range p.tables {
		n += len(t)
	}
	return n
}

// HistoryCheckpoint captures TAGE's speculative state: the global, path
// and folded history registers. Prediction tables are not included —
// they train at commit and are never speculatively modified, so a
// checkpoint is a few hundred bits of registers, exactly the §V-E2
// recovery scheme (snapshotting folded histories in each branch's
// checkpoint).
type HistoryCheckpoint struct {
	path uint64
	// eng is captured only while this predictor owns the engine; a
	// composite that adopted it checkpoints the engine itself, once.
	eng *history.EngineCheckpoint
}

// CheckpointHistory snapshots the speculative history state.
func (p *Predictor) CheckpointHistory() *HistoryCheckpoint {
	cp := &HistoryCheckpoint{path: p.path.Snapshot()}
	if p.engOwner {
		e := p.eng.Checkpoint()
		cp.eng = &e
	}
	return cp
}

// RestoreHistory rewinds the speculative history state to a checkpoint
// (the misprediction-recovery path of §V-E2).
func (p *Predictor) RestoreHistory(cp *HistoryCheckpoint) {
	p.path.Restore(cp.path)
	if cp.eng != nil {
		p.eng.Restore(*cp.eng)
	}
}
