package btb

import "llbp/internal/trace"

// Outcome describes the front end's handling of one control transfer.
type Outcome struct {
	// TargetMiss reports whether the front end redirected late (BTB
	// miss on a taken transfer, or a mispredicted indirect/return
	// target) — a pipeline reset.
	TargetMiss bool
	// Source labels the mispredicting structure for diagnostics.
	Source string
}

// Process runs one resolved branch through the front-end model: it
// predicts the target, compares with the actual transfer, trains the
// structures, and reports whether a reset occurred.
//
// Conditional branches only charge a target miss when taken (a not-taken
// conditional needs no target). Calls push the RAS; returns pop it.
func (m *Model) Process(b *trace.Branch) Outcome {
	m.stats.Lookups++
	out := Outcome{}

	switch b.Type {
	case trace.Return:
		pred, ok := m.popRAS()
		e := m.lookup(b.PC)
		if !ok || pred != b.Target {
			// RAS miss; fall back to the BTB entry if it happens
			// to match.
			if e == nil || e.target != b.Target {
				out.TargetMiss, out.Source = true, "return"
				m.stats.ReturnWrong++
			}
		}
		if e == nil {
			m.insert(b.PC, b.Target)
		} else {
			e.target = b.Target
		}
		return out

	case trace.IndirectCall, trace.IndirectJump:
		// Two-level indirect prediction: the history-hashed table
		// refines the BTB's last-target.
		var predicted uint64
		havePred := false
		if ie := m.lookupIndirect(b.PC); ie != nil {
			predicted, havePred = ie.target, true
		} else if e := m.lookup(b.PC); e != nil {
			predicted, havePred = e.target, true
		}
		if !havePred {
			out.TargetMiss, out.Source = true, "btb-miss"
			m.stats.BTBMisses++
		} else if predicted != b.Target {
			out.TargetMiss, out.Source = true, "indirect"
			m.stats.IndirectWrong++
		}
		// Train both levels and the target history.
		if e := m.lookup(b.PC); e == nil {
			m.insert(b.PC, b.Target)
		} else {
			e.target = b.Target
		}
		m.insertIndirect(b.PC, b.Target)
		m.targetHist = (m.targetHist << 3) ^ (b.Target >> 2)
		if b.Type == trace.IndirectCall {
			m.pushRAS(b.PC + 4)
		}
		return out

	case trace.Call:
		m.pushRAS(b.PC + 4)
		fallthrough

	case trace.Jump:
		e := m.lookup(b.PC)
		switch {
		case e == nil:
			out.TargetMiss, out.Source = true, "btb-miss"
			m.stats.BTBMisses++
			m.insert(b.PC, b.Target)
		case e.target != b.Target:
			out.TargetMiss, out.Source = true, "wrong-target"
			m.stats.WrongTarget++
			e.target = b.Target
		}
		return out

	default: // conditional
		if !b.Taken {
			return out
		}
		e := m.lookup(b.PC)
		switch {
		case e == nil:
			out.TargetMiss, out.Source = true, "btb-miss"
			m.stats.BTBMisses++
			m.insert(b.PC, b.Target)
		case e.target != b.Target:
			out.TargetMiss, out.Source = true, "wrong-target"
			m.stats.WrongTarget++
			e.target = b.Target
		}
		return out
	}
}
