package trace

import (
	"errors"
	"testing"
)

// testBranches returns n distinguishable branch records.
func testBranches(n int) []Branch {
	out := make([]Branch, n)
	for i := range out {
		out[i] = Branch{
			PC:           0x1000 + uint64(i)*4,
			Target:       0x2000 + uint64(i)*4,
			Type:         BranchType(i % int(numBranchTypes)),
			Taken:        i%2 == 0,
			Instructions: uint32(i%7 + 1),
		}
	}
	return out
}

// TestReadBatchSlice: the native SliceReader batch path delivers the
// stream in order, EOFs mid-batch with the remaining records, and stays
// at EOF afterwards.
func TestReadBatchSlice(t *testing.T) {
	want := testBranches(10)
	r := NewSliceReader(want)

	dst := make([]Branch, 4)
	n, err := r.ReadBatch(dst)
	if n != 4 || err != nil {
		t.Fatalf("first batch: n=%d err=%v", n, err)
	}
	for i := 0; i < 4; i++ {
		if dst[i] != want[i] {
			t.Fatalf("record %d = %+v, want %+v", i, dst[i], want[i])
		}
	}

	big := make([]Branch, 16)
	n, err = r.ReadBatch(big)
	if n != 6 || !IsEOF(err) {
		t.Fatalf("EOF mid-batch: n=%d err=%v, want 6, io.EOF", n, err)
	}
	for i := 0; i < 6; i++ {
		if big[i] != want[4+i] {
			t.Fatalf("tail record %d = %+v, want %+v", i, big[i], want[4+i])
		}
	}

	if n, err = r.ReadBatch(big); n != 0 || !IsEOF(err) {
		t.Fatalf("after EOF: n=%d err=%v", n, err)
	}
}

// TestReadBatchZeroLength: a zero-length dst returns (0, nil) without
// consuming the stream, on both the native path and the shim.
func TestReadBatchZeroLength(t *testing.T) {
	want := testBranches(3)
	for _, br := range []BatchReader{
		NewSliceReader(want),
		Batched(readerOnly{NewSliceReader(want)}),
	} {
		if n, err := br.ReadBatch(nil); n != 0 || err != nil {
			t.Fatalf("%T nil dst: n=%d err=%v", br, n, err)
		}
		if n, err := br.ReadBatch([]Branch{}); n != 0 || err != nil {
			t.Fatalf("%T empty dst: n=%d err=%v", br, n, err)
		}
		dst := make([]Branch, 3)
		if n, err := br.ReadBatch(dst); n != 3 || (err != nil && !IsEOF(err)) {
			t.Fatalf("%T stream consumed early: n=%d err=%v", br, n, err)
		}
		if dst[0] != want[0] {
			t.Fatalf("%T lost the first record: %+v", br, dst[0])
		}
	}
}

// readerOnly hides any BatchReader implementation so Batched must shim.
type readerOnly struct{ r Reader }

func (r readerOnly) Read(b *Branch) error { return r.r.Read(b) }

// sourceOnly hides OpenBatch so OpenBatched must shim.
type sourceOnly struct{ s Source }

func (s sourceOnly) Name() string { return s.s.Name() }
func (s sourceOnly) Open() Reader { return readerOnly{s.s.Open()} }

// TestBatchedShimLegacySource: a Source that predates the batch API
// round-trips through OpenBatched with identical content and correct
// EOF behaviour.
func TestBatchedShimLegacySource(t *testing.T) {
	want := testBranches(100)
	src := sourceOnly{&SliceSource{SourceName: "legacy", Branches: want}}

	br := OpenBatched(src)
	if _, native := br.(*SliceReader); native {
		t.Fatal("shim expected, got native reader")
	}
	var got []Branch
	dst := make([]Branch, 7) // odd size so EOF lands mid-batch
	for {
		n, err := br.ReadBatch(dst)
		got = append(got, dst[:n]...)
		if err != nil {
			if !IsEOF(err) {
				t.Fatal(err)
			}
			break
		}
	}
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	// Sticky EOF.
	if n, err := br.ReadBatch(dst); n != 0 || !IsEOF(err) {
		t.Fatalf("after EOF: n=%d err=%v", n, err)
	}
}

// TestBatchedNativePassThrough: Batched returns the reader itself when
// it already implements BatchReader.
func TestBatchedNativePassThrough(t *testing.T) {
	r := NewSliceReader(testBranches(1))
	if br := Batched(r); br != BatchReader(r) {
		t.Fatalf("Batched(%T) wrapped a native BatchReader", r)
	}
}

// errAfterReader yields k records then fails with a non-EOF error.
type errAfterReader struct {
	r    Reader
	left int
	err  error
}

func (e *errAfterReader) Read(b *Branch) error {
	if e.left == 0 {
		return e.err
	}
	e.left--
	return e.r.Read(b)
}

// TestBatchShimStickyError: a mid-batch read error surfaces with the
// records read so far, and repeats on subsequent calls.
func TestBatchShimStickyError(t *testing.T) {
	boom := errors.New("disk on fire")
	br := Batched(&errAfterReader{r: NewSliceReader(testBranches(10)), left: 5, err: boom})

	dst := make([]Branch, 8)
	n, err := br.ReadBatch(dst)
	if n != 5 || !errors.Is(err, boom) {
		t.Fatalf("n=%d err=%v, want 5, boom", n, err)
	}
	if n, err = br.ReadBatch(dst); n != 0 || !errors.Is(err, boom) {
		t.Fatalf("sticky: n=%d err=%v", n, err)
	}
}

// TestLimitReaderReadBatch: the batch path honours Max, EOFs exactly at
// the limit, and mixes correctly with per-record reads.
func TestLimitReaderReadBatch(t *testing.T) {
	want := testBranches(20)
	l := &LimitReader{R: NewSliceReader(want), Max: 10}

	var b Branch
	if err := l.Read(&b); err != nil || b != want[0] {
		t.Fatalf("record read: %v %+v", err, b)
	}
	dst := make([]Branch, 6)
	n, err := l.ReadBatch(dst)
	if n != 6 || err != nil {
		t.Fatalf("batch: n=%d err=%v", n, err)
	}
	if dst[0] != want[1] || dst[5] != want[6] {
		t.Fatalf("batch skipped records: %+v", dst)
	}
	// 3 records remain under the limit; a larger dst is truncated.
	n, err = l.ReadBatch(dst)
	if n != 3 || (err != nil && !IsEOF(err)) {
		t.Fatalf("tail: n=%d err=%v", n, err)
	}
	if n, err = l.ReadBatch(dst); n != 0 || !IsEOF(err) {
		t.Fatalf("at limit: n=%d err=%v", n, err)
	}
	if err := l.Read(&b); !IsEOF(err) {
		t.Fatalf("record read at limit: %v", err)
	}
}

// TestLimitReaderZeroBatch: zero max yields an immediate EOF; a
// zero-length dst under remaining budget returns (0, nil).
func TestLimitReaderZeroBatch(t *testing.T) {
	l := &LimitReader{R: NewSliceReader(testBranches(5)), Max: 0}
	if n, err := l.ReadBatch(make([]Branch, 4)); n != 0 || !IsEOF(err) {
		t.Fatalf("zero max: n=%d err=%v", n, err)
	}
	l = &LimitReader{R: NewSliceReader(testBranches(5)), Max: 3}
	if n, err := l.ReadBatch(nil); n != 0 || err != nil {
		t.Fatalf("zero dst: n=%d err=%v", n, err)
	}
}
