package session

import (
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"llbp/internal/pipeline"
	"llbp/internal/predictor"
	"llbp/internal/trace"
)

// Session states.
const (
	StateOpen     = "open"
	StateDraining = "draining"
	StateClosed   = "closed"
)

// Request opens a session.
type Request struct {
	Schema string `json:"schema"`
	// Predictor is the experiment spec key ("64k", "llbp", ...).
	Predictor string `json:"predictor"`
	// Workload names the warmup trace; required when Warmup > 0. Sessions
	// sharing (workload, predictor, warmup) fork one warm snapshot.
	Workload string `json:"workload,omitempty"`
	// Warmup is the number of warmup branches forked from the shared warm
	// snapshot before the session's own stream begins.
	Warmup uint64 `json:"warmup,omitempty"`
	// CheckpointBranches overrides the manager's auto-checkpoint cadence
	// (0 = manager default).
	CheckpointBranches uint64 `json:"checkpoint_branches,omitempty"`
	// Tenant labels the session for telemetry.
	Tenant string `json:"tenant,omitempty"`
}

// Validate checks the open request.
func (r Request) Validate() error {
	if r.Schema != Schema {
		return fmt.Errorf("session: request schema %q, want %q", r.Schema, Schema)
	}
	if r.Predictor == "" {
		return fmt.Errorf("session: request names no predictor")
	}
	if r.Warmup > 0 && r.Workload == "" {
		return fmt.Errorf("session: warmup %d without a workload to warm on", r.Warmup)
	}
	return nil
}

// Status is the externally visible snapshot of one session.
type Status struct {
	ID        string `json:"id"`
	State     string `json:"state"`
	Predictor string `json:"predictor"`
	Workload  string `json:"workload,omitempty"`
	Warmup    uint64 `json:"warmup,omitempty"`
	Tenant    string `json:"tenant,omitempty"`
	// Epoch is the claim generation; Owner the current claim holder.
	Epoch uint64 `json:"epoch,omitempty"`
	Owner string `json:"owner,omitempty"`
	// LastSeq is the highest applied batch sequence; Branches the
	// cumulative applied branch count.
	LastSeq     uint64 `json:"last_seq"`
	Branches    uint64 `json:"branches"`
	Mispredicts uint64 `json:"mispredicts"`
	// Frames is the length of the persisted output log.
	Frames uint64 `json:"frames"`
	// Checkpoints counts checkpoints taken (auto + explicit).
	Checkpoints uint64 `json:"checkpoints"`
}

// sessLease records which push connection owns the session's current
// claim and until when. revoke is closed when the claim is superseded or
// released — a stalled connection parked on it learns it lost ownership.
type sessLease struct {
	owner   string
	expires time.Time
	revoke  chan struct{}
}

// checkpoint is one captured session snapshot: a copy-on-write fork of
// the live predictor at a batch boundary plus the cursors that locate it
// in the stream. Drain migration restarts the session from here — the
// new claim gets the forked twin, replays the in-memory batch tail, and
// continues as if it had driven the stream all along.
type checkpoint struct {
	pred     predictor.Predictor
	clock    *predictor.Clock
	lastSeq  uint64
	branches uint64
	cond     uint64
	misp     uint64
}

// Session is the in-memory runtime of one streaming prediction session.
//
// Ownership is lease-based, mirroring the job service: each push
// connection claims the session and bumps the epoch; every apply and
// every emitted frame carries the claiming epoch and is rejected once
// superseded, so a revoked connection can never append a frame for a
// session someone else now owns.
//
//llbplint:leased -- session state is owned by the current claim; connection-reachable writes must be fenced on the claim epoch
type Session struct {
	id  string
	req Request

	mu    sync.Mutex
	state string
	epoch uint64
	lease sessLease

	// built gates lazy rebuild: a session restored from the journal has
	// no predictor until first touched, when the manager re-forks the
	// warm snapshot and replays the journaled stream (replay holds the
	// raw journal entries until then).
	built  bool
	replay []json.RawMessage

	pred  predictor.Predictor
	clock *predictor.Clock
	pipe  pipeline.Config

	// Stream cursors.
	lastSeq     uint64 // highest applied batch seq
	branches    uint64 // cumulative applied branches
	cond        uint64 // cumulative conditional branches
	mispredicts uint64

	// jn is the session's journal cursor: the count of journaled entries,
	// embedded in each entry's key so replay order is explicit.
	jn uint64

	// Auto-checkpoint cadence state.
	ckptEvery   uint64
	nextCkpt    uint64
	checkpoints uint64
	ckpt        *checkpoint
	// tail holds the batches applied since the last checkpoint, the
	// replay input for checkpoint-based drain migration. Bounded by the
	// checkpoint cadence: taking a checkpoint clears it.
	tail []Frame

	// Persisted output log (predictions/checkpoint/done frames);
	// OutFrame.Seq = index+1. pulse is closed and replaced on every
	// append to wake streaming followers.
	out   []OutFrame
	pulse chan struct{}

	// Ephemeral telemetry snapshot: only the latest is kept, stamped with
	// telSeq so followers dedup.
	telemetry OutFrame
	telSeq    uint64

	// tid is the session's trace-event thread id (open order).
	tid int
}

// outcome applies one branch to the session predictor and returns its
// verdict byte (cond=false for non-conditional records, which produce no
// byte). The clock advances exactly as sim.Run's warmup phase does —
// base CPI per straight-line instruction, full penalty on mispredicts
// and target misses — so latency-aware predictors (LLBP's prefetch
// pipeline) see the same time base streamed as replayed.
func (s *Session) outcome(b *trace.Branch) (o byte, cond bool) {
	s.clock.Advance(float64(b.Instructions) * s.pipe.BaseCPI)
	if b.Type.IsConditional() {
		predicted := s.pred.Predict(b.PC)
		if tu, ok := s.pred.(predictor.TargetUpdater); ok {
			tu.UpdateWithTarget(b.PC, b.Target, b.Taken)
		} else {
			s.pred.Update(b.PC, b.Taken)
		}
		if predicted {
			o |= OutcomeTaken
		}
		if predicted != b.Taken {
			o |= OutcomeMispredict
			s.clock.Advance(s.pipe.MispredictPenalty)
			if r, ok := s.pred.(predictor.Resettable); ok {
				r.OnPipelineReset()
			}
		}
		return o, true
	}
	s.pred.TrackOther(b.PC, b.Target, b.Type)
	if b.MispredictedTarget {
		s.clock.Advance(s.pipe.TargetMissPenalty)
		if r, ok := s.pred.(predictor.Resettable); ok {
			r.OnPipelineReset()
		}
	}
	return 0, false
}

// applyLocked runs one validated branch-batch through the predictor and
// returns the predictions frame (unsequenced; the caller appends it).
// Callers hold mu and have already checked sequence continuity.
func (s *Session) applyLocked(f Frame) OutFrame {
	raw := make([]byte, 0, len(f.Branches))
	var misp uint64
	for i := range f.Branches {
		b := f.Branches[i].Branch()
		o, cond := s.outcome(&b)
		if cond {
			raw = append(raw, o)
			s.cond++
			if o&OutcomeMispredict != 0 {
				misp++
			}
		}
	}
	s.lastSeq = f.Seq
	s.branches += uint64(len(f.Branches))
	s.mispredicts += misp
	return OutFrame{
		Type:        FramePredictions,
		Batch:       f.Seq,
		N:           len(f.Branches),
		Outcomes:    EncodeOutcomes(raw),
		Mispredicts: misp,
		Branches:    s.branches,
	}
}

// appendLocked sequences and appends a persisted frame, waking
// followers. Callers hold mu.
func (s *Session) appendLocked(of OutFrame) OutFrame {
	of.Seq = uint64(len(s.out)) + 1
	s.out = append(s.out, of)
	close(s.pulse)
	s.pulse = make(chan struct{})
	return of
}

// takeCheckpointLocked captures a checkpoint: a copy-on-write fork of
// the live predictor plus the stream cursors, and the persisted
// checkpoint frame. Non-forkable predictors checkpoint cursors only
// (migration then continues with the live instance — same trajectory,
// no fork exercise). Callers hold mu.
func (s *Session) takeCheckpointLocked() OutFrame {
	ck := &checkpoint{
		lastSeq:  s.lastSeq,
		branches: s.branches,
		cond:     s.cond,
		misp:     s.mispredicts,
	}
	if f, ok := s.pred.(predictor.Forkable); ok {
		ck.clock = &predictor.Clock{}
		ck.pred = f.Fork(ck.clock)
	}
	s.ckpt = ck
	s.tail = s.tail[:0]
	s.checkpoints++
	s.nextCkpt = s.branches + s.ckptEvery
	return s.appendLocked(OutFrame{
		Type:     FrameCkptAck,
		Batch:    s.lastSeq,
		Branches: s.branches,
	})
}

// migrateLocked swaps the live predictor for the last checkpoint's fork
// and replays the in-memory batch tail through it — the drain-migration
// path: the revoked claim's predictor instance is abandoned and the new
// claim drives a fresh fork with an identical trajectory. No checkpoint
// (or a non-forkable predictor) means the live instance carries over
// unchanged. Callers hold mu.
func (s *Session) migrateLocked() {
	ck := s.ckpt
	if ck == nil || ck.pred == nil {
		return
	}
	tail := s.tail
	s.pred, s.clock = ck.pred, ck.clock
	s.lastSeq, s.branches = ck.lastSeq, ck.branches
	s.cond, s.mispredicts = ck.cond, ck.misp
	s.tail = nil
	// Silent replay: these batches' predictions frames are already in the
	// output log; the fork only needs to catch up to the live cursor.
	for _, f := range tail {
		s.applyLocked(f)
	}
	s.tail = tail[:0]
	// The consumed fork can no longer serve a second migration; the next
	// checkpoint re-arms it.
	s.ckpt = nil
}

// snapshotLocked builds the Status. Callers hold mu.
func (s *Session) snapshotLocked() Status {
	st := Status{
		ID:          s.id,
		State:       s.state,
		Predictor:   s.req.Predictor,
		Workload:    s.req.Workload,
		Warmup:      s.req.Warmup,
		Tenant:      s.req.Tenant,
		Epoch:       s.epoch,
		LastSeq:     s.lastSeq,
		Branches:    s.branches,
		Mispredicts: s.mispredicts,
		Frames:      uint64(len(s.out)),
		Checkpoints: s.checkpoints,
	}
	if s.lease.owner != "" {
		st.Owner = s.lease.owner
	}
	return st
}

// frames returns the persisted frames after position pos plus the
// ephemeral telemetry snapshot (if newer than telSeq), the terminal
// flag, and the pulse channel to wait on — the session counterpart of
// the job service's snapshot(pos).
func (s *Session) frames(pos int, telSeq uint64) (evs []OutFrame, tel *OutFrame, newTelSeq uint64, terminal bool, pulse chan struct{}) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if pos < len(s.out) {
		evs = append(evs, s.out[pos:]...)
	}
	newTelSeq = telSeq
	if s.telSeq > telSeq {
		t := s.telemetry
		tel = &t
		newTelSeq = s.telSeq
	}
	return evs, tel, newTelSeq, s.state == StateClosed, s.pulse
}
