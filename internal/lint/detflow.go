package lint

import (
	"llbp/internal/lint/analysis"
	"llbp/internal/lint/dataflow"
)

// Detflow is the interprocedural determinism-taint analyzer: it tracks
// values produced by nondeterminism sources (map iteration order, wall
// clocks, the global math/rand state, select arrival order, and
// functions annotated //llbplint:source) through assignments and call
// chains, and reports when one reaches a determinism-critical sink — a
// function annotated //llbplint:sink, such as the harness journal's
// Record, telemetry event emission, predictor table updates, or the
// service NDJSON encoders. Sorting (sort.*, slices.Sort*) or a
// //llbplint:sanitizer call launders the taint. Unlike the determinism
// analyzer, which syntactically bans source *calls* inside simulation
// packages, detflow follows the *values*: a time.Now three calls away
// from a journal write is a finding anywhere in the module, and a
// sorted map collection is not. Diagnostics carry the full source→sink
// path in Diagnostic.Path.
//
// Detflow is also the analyzer that surfaces malformed //llbplint:
// annotations (missing `-- reason`), so they are reported exactly once
// per run even though all three program analyzers parse them.
var Detflow = &analysis.Analyzer{
	Name:       "detflow",
	Doc:        "interprocedural taint from nondeterminism sources to determinism-critical sinks (journal, telemetry, predictor tables, NDJSON)",
	RunProgram: runDetflow,
}

func runDetflow(pass *analysis.ProgramPass) error {
	prog := dataflow.Build(pass.Fset, pass.Packages)
	for _, d := range prog.Problems {
		pass.Report(d)
	}
	eng := dataflow.NewTaintEngine(prog)
	eng.Run()
	for _, d := range eng.Findings {
		pass.Report(d)
	}
	return nil
}
