// Command experiments regenerates the paper's tables and figures (see
// DESIGN.md §3 for the experiment index).
//
// Usage:
//
//	experiments                 # run everything
//	experiments -run fig9,fig10 # selected experiments
//	experiments -measure 4000000 -warmup 800000
//	experiments -csv            # CSV instead of aligned text
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"llbp/internal/experiments"
)

func main() {
	var (
		run     = flag.String("run", "all", "comma-separated experiment ids (see DESIGN.md), or 'all'")
		warmup  = flag.Uint64("warmup", 200_000, "warmup branches for headline experiments")
		measure = flag.Uint64("measure", 1_000_000, "measured branches for headline experiments")
		sweepW  = flag.Uint64("sweep-warmup", 100_000, "warmup branches for design-space sweeps")
		sweepM  = flag.Uint64("sweep-measure", 400_000, "measured branches for design-space sweeps")
		csv     = flag.Bool("csv", false, "emit CSV instead of aligned text")
		charts  = flag.Bool("charts", false, "render an ASCII bar chart of each table's first numeric column")
		quiet   = flag.Bool("q", false, "suppress per-run progress")
	)
	flag.Parse()

	exps, err := experiments.ByID(*run)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	cfg := experiments.Config{
		Warmup:       *warmup,
		Measure:      *measure,
		SweepWarmup:  *sweepW,
		SweepMeasure: *sweepM,
	}
	if !*quiet {
		cfg.Progress = func(format string, args ...interface{}) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	h := experiments.NewHarness(cfg)

	for _, e := range exps {
		start := time.Now()
		fmt.Fprintf(os.Stderr, "== %s: %s\n", e.ID, e.Title)
		tables, err := e.Run(h)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s failed: %v\n", e.ID, err)
			os.Exit(1)
		}
		for _, t := range tables {
			var werr error
			if *csv {
				werr = t.WriteCSV(os.Stdout)
			} else {
				werr = t.WriteText(os.Stdout)
			}
			if werr == nil && *charts && !*csv {
				if c := experiments.Chart(t); c != nil {
					werr = c.WriteText(os.Stdout)
				}
			}
			if werr != nil {
				fmt.Fprintln(os.Stderr, werr)
				os.Exit(1)
			}
		}
		fmt.Fprintf(os.Stderr, "== %s done in %s\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
}
