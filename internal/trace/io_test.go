package trace

import (
	"bytes"
	"encoding/binary"
	"io"
	"math/rand"
	"os"
	"testing"
	"testing/quick"
)

// roundTrip writes branches and reads them back.
func roundTrip(t *testing.T, name string, in []Branch) []Branch {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, name)
	if err != nil {
		t.Fatal(err)
	}
	for i := range in {
		if err := w.Write(&in[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := NewFileReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.Name() != name {
		t.Fatalf("Name() = %q, want %q", r.Name(), name)
	}
	var out []Branch
	var b Branch
	for {
		err := r.Read(&b)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, b)
	}
	return out
}

func TestRoundTripSample(t *testing.T) {
	in := sampleBranches()
	out := roundTrip(t, "sample", in)
	if len(out) != len(in) {
		t.Fatalf("got %d records, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Errorf("record %d = %+v, want %+v", i, out[i], in[i])
		}
	}
}

func TestRoundTripEmpty(t *testing.T) {
	out := roundTrip(t, "empty", nil)
	if len(out) != 0 {
		t.Fatalf("got %d records from empty trace", len(out))
	}
}

// TestRoundTripProperty checks write/read identity on random streams.
func TestRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	gen := func(n int) []Branch {
		out := make([]Branch, n)
		pc := uint64(0x400000)
		for i := range out {
			// Deltas both directions, all types, all flags.
			pc = uint64(int64(pc) + rng.Int63n(1<<20) - 1<<19)
			out[i] = Branch{
				PC:                 pc,
				Target:             uint64(int64(pc) + rng.Int63n(1<<16) - 1<<15),
				Type:               BranchType(rng.Intn(int(numBranchTypes))),
				Taken:              rng.Intn(2) == 0,
				Instructions:       uint32(rng.Intn(1000) + 1),
				MispredictedTarget: rng.Intn(8) == 0,
			}
		}
		return out
	}
	f := func(seed int64) bool {
		n := int(seed%500) + 1
		if n < 0 {
			n = -n
		}
		in := gen(n)
		out := roundTrip(t, "prop", in)
		if len(out) != len(in) {
			return false
		}
		for i := range in {
			if out[i] != in[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestBadMagic(t *testing.T) {
	_, err := NewFileReader(bytes.NewReader([]byte("NOTATRACE-FILE")))
	if err != ErrBadMagic {
		t.Errorf("err = %v, want ErrBadMagic", err)
	}
}

func TestTruncatedHeader(t *testing.T) {
	if _, err := NewFileReader(bytes.NewReader([]byte("LLBP"))); err == nil {
		t.Error("truncated magic must fail")
	}
}

func TestTruncatedRecord(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, "t")
	if err != nil {
		t.Fatal(err)
	}
	in := sampleBranches()
	for i := range in {
		if err := w.Write(&in[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	// Drop the final bytes: the last record must error (not silently
	// succeed), earlier ones must decode.
	data := buf.Bytes()[:buf.Len()-2]
	r, err := NewFileReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	var b Branch
	var n int
	var readErr error
	for {
		readErr = r.Read(&b)
		if readErr != nil {
			break
		}
		n++
	}
	if readErr == io.EOF && n == len(in) {
		t.Error("truncated trace decoded fully — expected an error or short read")
	}
}

func TestWriterDeltaEncodingIsCompact(t *testing.T) {
	// A hot loop (same PC repeatedly) should cost only a few bytes per
	// record thanks to delta encoding.
	var buf bytes.Buffer
	w, err := NewWriter(&buf, "loop")
	if err != nil {
		t.Fatal(err)
	}
	b := Branch{PC: 0x400100, Target: 0x400100, Type: CondDirect, Taken: true, Instructions: 3}
	const n = 1000
	for i := 0; i < n; i++ {
		if err := w.Write(&b); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	perRecord := float64(buf.Len()) / n
	if perRecord > 6 {
		t.Errorf("loop record costs %.1f bytes, want <= 6", perRecord)
	}
}

func TestReaderRejectsInvalidType(t *testing.T) {
	// The writer refuses invalid types, so handcraft the raw stream:
	// header, then a record whose 3-bit type field is 6 (out of range).
	var buf bytes.Buffer
	buf.WriteString(magic)
	buf.WriteByte(3) // name length
	buf.WriteString("bad")
	var tmp [binary.MaxVarintLen64]byte
	for _, v := range []int64{4, 4} { // pcDelta, tgtDelta
		n := binary.PutVarint(tmp[:], v)
		buf.Write(tmp[:n])
	}
	for _, v := range []uint64{6, 1} { // meta (type 6), instrs
		n := binary.PutUvarint(tmp[:], v)
		buf.Write(tmp[:n])
	}
	r, err := NewFileReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var got Branch
	if err := r.Read(&got); err == nil {
		t.Error("invalid branch type must be rejected")
	}
}

func TestFileSource(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/x.llbptrc"
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWriter(f, "diskwl")
	if err != nil {
		t.Fatal(err)
	}
	in := sampleBranches()
	for i := range in {
		if err := w.Write(&in[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	src, err := NewFileSource(path)
	if err != nil {
		t.Fatal(err)
	}
	if src.Name() != "diskwl" {
		t.Errorf("Name = %q", src.Name())
	}
	// Two opens give identical, complete streams.
	for pass := 0; pass < 2; pass++ {
		r := src.Open()
		var b Branch
		n := 0
		for {
			err := r.Read(&b)
			if IsEOF(err) {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			if b != in[n] {
				t.Fatalf("pass %d record %d mismatch", pass, n)
			}
			n++
		}
		if n != len(in) {
			t.Fatalf("pass %d read %d records", pass, n)
		}
	}
}

func TestFileSourceErrors(t *testing.T) {
	if _, err := NewFileSource("/no/such/file"); err == nil {
		t.Error("missing file must error")
	}
	dir := t.TempDir()
	bad := dir + "/bad.trc"
	if err := os.WriteFile(bad, []byte("NOTATRACEFILE!!"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewFileSource(bad); err == nil {
		t.Error("bad magic must error")
	}
}

// TestWriterRejectsInvalidRecords: records the reader would reject must be
// refused at write time, not silently truncated into a different valid
// record (the 3-bit meta field used to mask out-of-range types).
func TestWriterRejectsInvalidRecords(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, "t")
	if err != nil {
		t.Fatal(err)
	}
	bad := []Branch{
		{PC: 4, Target: 8, Type: numBranchTypes, Taken: true, Instructions: 1},
		{PC: 4, Target: 8, Type: numBranchTypes + 3, Instructions: 1},
		{PC: 4, Target: 8, Type: 0xFF, Instructions: 1},
		{PC: 4, Target: 8, Type: CondDirect, Instructions: 0},
	}
	for i := range bad {
		if err := w.Write(&bad[i]); err == nil {
			t.Errorf("Write accepted invalid record %+v", bad[i])
		}
	}
	// A valid record after rejected ones still round-trips.
	good := Branch{PC: 4, Target: 8, Type: CondDirect, Taken: true, Instructions: 3}
	if err := w.Write(&good); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := NewFileReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var b Branch
	if err := r.Read(&b); err != nil || b != good {
		t.Fatalf("Read after rejected writes = %+v, %v; want %+v", b, err, good)
	}
	if err := r.Read(&b); err != io.EOF {
		t.Fatalf("rejected records leaked into the stream: %v", err)
	}
}
