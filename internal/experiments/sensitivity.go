package experiments

import (
	"fmt"

	"llbp/internal/core"
	"llbp/internal/report"
	"llbp/internal/stats"
)

// fig13Types and fig13Distances are the Figure 13 axes.
var (
	fig13Types     = []core.ContextType{core.CtxUncond, core.CtxCallRet, core.CtxAll}
	fig13Distances = []int{0, 2, 4, 6, 8, 12}
)

// Fig13 reproduces Figure 13: mean MPKI reduction as a function of the
// branch types hashed into the CID and the prefetch distance D (paper:
// all types poor at D=0; Uncond peaks ≈8.9% at D=4; Call/Ret coarser and
// lower; All degrades as D grows).
func Fig13(h *Harness) ([]*report.Table, error) {
	t := report.New("Figure 13: CID sensitivity — mean MPKI reduction [%] vs prefetch distance",
		"history", "D=0", "D=2", "D=4", "D=6", "D=8", "D=12")
	for _, ct := range fig13Types {
		row := make([]interface{}, 0, len(fig13Distances)+1)
		row = append(row, ct.String())
		for _, d := range fig13Distances {
			cfg := core.DefaultConfig()
			cfg.CtxType = ct
			cfg.D = d
			cfg.Label = fmt.Sprintf("LLBP-%s-D%d", ct, d)
			spec := SpecLLBP(fmt.Sprintf("llbp:ctx=%d,d=%d", ct, d), cfg)
			var reds []float64
			for _, wl := range h.Cfg.workloads() {
				base, err := h.RunSweep(wl, Spec64K())
				if err != nil {
					return nil, err
				}
				out, err := h.RunSweep(wl, spec)
				if err != nil {
					return nil, err
				}
				reds = append(reds, stats.Reduction(base.Res.MPKI, out.Res.MPKI))
			}
			row = append(row, meanRow(reds))
		}
		t.AddRow(row...)
	}
	t.Caption = "Paper: D=0 3.5-4.8% for all; Uncond best (8.9% at D=4); All degrades with D."
	return []*report.Table{t}, nil
}

// fig14Contexts and fig14SetSizes are the Figure 14 axes. The paper
// sweeps 8K-128K contexts; at this reproduction's ~40×-smaller instruction
// budgets the context working set is proportionally smaller (a few
// thousand live contexts), so the sweep extends further down to expose the
// capacity knee, which sits near 2-4K contexts here instead of 8-16K.
var (
	fig14Contexts = []int{1024, 2048, 4096, 8192, 14336, 32768}
	fig14SetSizes = []int{8, 16, 32, 64}
)

// Fig14 reproduces Figure 14: MPKI reduction and LLBP capacity as
// functions of the number of pattern sets and the pattern-set size, using
// the study configuration of §VII-F: LLBP-0Lat, fully associative context
// index with 31-bit tags, and no pattern bucketing.
func Fig14(h *Harness) ([]*report.Table, error) {
	t := report.New("Figure 14: pattern-set sensitivity — mean MPKI reduction [%] (capacity KiB)",
		"contexts", "8-patterns", "16-patterns", "32-patterns", "64-patterns")
	for _, nctx := range fig14Contexts {
		row := []interface{}{fmt.Sprint(nctx)}
		for _, ps := range fig14SetSizes {
			cfg := core.DefaultConfig()
			cfg.FullAssocCD = true
			cfg.CIDBits = 31
			cfg.Buckets = 0
			cfg.PrefetchDelay = 0
			cfg.NumContexts = nctx
			cfg.PatternsPerSet = ps
			cfg.Label = fmt.Sprintf("LLBP-%dctx-%dp", nctx, ps)
			spec := SpecLLBP(fmt.Sprintf("llbp:nctx=%d,ps=%d", nctx, ps), cfg)
			var reds []float64
			for _, wl := range h.Cfg.workloads() {
				base, err := h.RunSweep(wl, Spec64K())
				if err != nil {
					return nil, err
				}
				out, err := h.RunSweep(wl, spec)
				if err != nil {
					return nil, err
				}
				reds = append(reds, stats.Reduction(base.Res.MPKI, out.Res.MPKI))
			}
			// Capacity uses the production 18-bit pattern (§VI), as
			// the paper's capacity axis does.
			capKiB := float64(nctx*ps*18) / 8 / 1024
			row = append(row, fmt.Sprintf("%.1f (%.0fKiB)", meanRow(reds), capKiB))
		}
		t.AddRow(row...)
	}
	t.Caption = "Paper: 16K×8 ≈11%; doubling to 16 patterns +2.6%; beyond 32 negligible; reduction scales with contexts up to the context working set (8-16K in the paper, 2-4K at this scaled-down budget)."
	return []*report.Table{t}, nil
}

// Ablations quantifies the design choices §V-D calls out, beyond the
// paper's own figures: pattern-set bucketing, confidence-based vs LRU
// pattern-set replacement, and the position-shifted CID hash (§V-E3).
func Ablations(h *Harness) ([]*report.Table, error) {
	smallCD := func(c *core.Config) {
		// The replacement policy only acts once the directory fills;
		// at laptop-scale budgets the 14K-set directory never does, so
		// the policy ablation runs on a deliberately small directory.
		c.NumContexts = 1024
		c.CDSets = 256
		c.CIDBits = 11
	}
	variants := []struct {
		name string
		mod  func(*core.Config)
	}{
		{"default (bucketed, conf-replacement, shifted hash)", func(*core.Config) {}},
		{"no bucketing (free-form sets)", func(c *core.Config) { c.Buckets = 0 }},
		{"small CD (1K ctx), conf-replacement", smallCD},
		{"small CD (1K ctx), LRU replacement", func(c *core.Config) { smallCD(c); c.ReplacementLRU = true }},
		{"plain-XOR CID hash (no position shift)", func(c *core.Config) { c.ShiftedHash = false }},
	}
	t := report.New("Ablations: mean MPKI reduction over 64K TSL [%]",
		"variant", "reduction-%")
	for i, v := range variants {
		cfg := core.DefaultConfig()
		v.mod(&cfg)
		spec := SpecLLBP(fmt.Sprintf("llbp:ablation=%d", i), cfg)
		var reds []float64
		for _, wl := range h.Cfg.workloads() {
			base, err := h.RunSweep(wl, Spec64K())
			if err != nil {
				return nil, err
			}
			out, err := h.RunSweep(wl, spec)
			if err != nil {
				return nil, err
			}
			reds = append(reds, stats.Reduction(base.Res.MPKI, out.Res.MPKI))
		}
		t.AddRow(v.name, meanRow(reds))
	}
	t.Caption = "§V-D: the paper found bucketing cheap and LRU replacement poor; §V-E3: shifting prevents repeated PCs cancelling. The replacement rows use a 1K-context directory so evictions actually occur."
	return []*report.Table{t}, nil
}
