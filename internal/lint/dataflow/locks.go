package dataflow

// Lock-acquisition-order analysis (the lockorder analyzer's engine).
//
// The engine abstracts every sync.Mutex/sync.RWMutex acquisition to a
// *lock key*: `pkg.Type.field` for a mutex stored in a named struct
// (all instances of job.mu are one lock class for ordering purposes),
// `pkg.var` for a package-level mutex, and the receiver expression text
// as a last resort for locals. Walking each function in statement
// order with a held-set, it records a directed edge A→B whenever B is
// acquired while A is held — including acquisitions made by callees,
// via bottom-up summaries, so nested critical sections compose across
// the call graph.
//
// Three diagnostics come out of the edge set:
//   - a cycle in the acquisition graph (the classic AB/BA deadlock),
//     reported once per cycle with both directions' evidence;
//   - a self-edge — re-acquiring a lock class already held;
//   - a telemetry instrument update (Counter.Inc and friends) executed
//     while any lock is held, directly or through a call chain. This
//     supersedes the syntactic telemetrysafe hot-path rule, which only
//     saw updates lexically between Lock and Unlock in one body.
//
// Deliberate imprecision: keys are per-class, not per-instance, so
// locking two different jobs' mu in sequence looks like a self-edge —
// in this codebase that pattern appears only in the scheduler's
// ordered two-job comparisons and is annotated where intended. Defers
// are treated as releasing at function end (the held-set is not popped
// by a deferred Unlock), matching how the critical sections actually
// extend.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"llbp/internal/lint/analysis"
)

// lockEdge is one observed A-held→B-acquired ordering with evidence.
type lockEdge struct {
	from, to string
	steps    []analysis.PathStep
	pos      token.Pos
}

// updRec is one telemetry update observed under a held lock.
type updRec struct {
	pos   token.Pos
	under string // lock key held at the update
	what  string // instrument method, e.g. "Counter.Inc"
	steps []analysis.PathStep
}

// lockSummary is one function's externally visible locking behavior:
// the lock classes it (transitively) acquires and the telemetry updates
// it (transitively) performs, assuming no locks held on entry.
type lockSummary struct {
	acquires map[string][]analysis.PathStep
	updates  []updRec // under == "" for updates not under a callee-held lock
}

// LockEngine derives the acquisition graph; Findings carries cycles,
// self-edges and under-lock telemetry updates after Run.
type LockEngine struct {
	prog *Program
	// inScope restricts walking to packages the analyzer cares about
	// (service + telemetry); nil means every package.
	inScope  func(pkgPath string) bool
	sums     map[*types.Func]*lockSummary
	edges    []lockEdge
	Findings []analysis.Diagnostic
}

func NewLockEngine(prog *Program, inScope func(pkgPath string) bool) *LockEngine {
	return &LockEngine{prog: prog, inScope: inScope, sums: map[*types.Func]*lockSummary{}}
}

func (e *LockEngine) scoped(fn *Func) bool {
	return e.inScope == nil || e.inScope(fn.Pkg.Path)
}

// Run computes summaries bottom-up, collecting edges and under-lock
// updates, then reports cycles over the global edge set.
func (e *LockEngine) Run() {
	for _, scc := range e.prog.SCCs() {
		for round := 0; round < 2; round++ {
			for _, fn := range scc {
				if !e.scoped(fn) {
					continue
				}
				e.sums[fn.Obj] = e.summarize(fn, round == 0 || len(scc) == 1)
			}
			if len(scc) == 1 {
				break
			}
		}
	}
	e.reportCycles()
}

// summarize walks one function with an empty held-set. On the final
// round (emit=true) it also records global edges and update findings;
// earlier fixpoint rounds only build the summary.
func (e *LockEngine) summarize(fn *Func, emit bool) *lockSummary {
	sum := &lockSummary{acquires: map[string][]analysis.PathStep{}}
	w := &lockWalker{e: e, fn: fn, info: fn.Pkg.TypesInfo, sum: sum, emit: emit}
	w.stmts(fn.Decl.Body.List)
	return sum
}

type lockWalker struct {
	e    *LockEngine
	fn   *Func
	info *types.Info
	sum  *lockSummary
	emit bool
	held []string // acquisition-ordered lock keys currently held
}

func (w *lockWalker) stmts(list []ast.Stmt) {
	for _, s := range list {
		w.stmt(s)
	}
}

func (w *lockWalker) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		w.expr(s.X)
	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			w.expr(r)
		}
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		w.expr(s.Cond)
		// Each branch walks with a copy of the held-set: an Unlock (or
		// Lock) inside a branch affects that branch only, never the
		// fall-through path.
		saved := w.snapshot()
		w.stmts(s.Body.List)
		w.restore(saved)
		if s.Else != nil {
			w.stmt(s.Else)
			w.restore(saved)
		}
	case *ast.BlockStmt:
		w.stmts(s.List)
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		saved := w.snapshot()
		w.stmts(s.Body.List)
		w.restore(saved)
	case *ast.RangeStmt:
		w.expr(s.X)
		saved := w.snapshot()
		w.stmts(s.Body.List)
		w.restore(saved)
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		var body *ast.BlockStmt
		switch ss := s.(type) {
		case *ast.SwitchStmt:
			body = ss.Body
		case *ast.TypeSwitchStmt:
			body = ss.Body
		case *ast.SelectStmt:
			body = ss.Body
		}
		saved := w.snapshot()
		for _, c := range body.List {
			switch cc := c.(type) {
			case *ast.CaseClause:
				w.stmts(cc.Body)
			case *ast.CommClause:
				w.stmts(cc.Body)
			}
			w.restore(saved)
		}
	case *ast.LabeledStmt:
		w.stmt(s.Stmt)
	case *ast.GoStmt:
		// A goroutine body does not run under the spawner's held-set:
		// walk its arguments (evaluated now), then a closure body as
		// its own fresh lock scope. Named functions launched here are
		// covered when they themselves are summarized.
		for _, a := range s.Call.Args {
			w.expr(a)
		}
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			w.subWalk(lit)
		}
	case *ast.DeferStmt:
		// A deferred Unlock releases at function end; modeling it as
		// "never released during the body" is exactly right for edge
		// collection. Deferred calls other than unlocks are walked.
		if !w.isUnlock(s.Call) {
			w.expr(s.Call)
		}
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			w.expr(r)
		}
	case *ast.SendStmt:
		w.expr(s.Chan)
		w.expr(s.Value)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.expr(v)
					}
				}
			}
		}
	}
}

func (w *lockWalker) snapshot() []string {
	return append([]string(nil), w.held...)
}

func (w *lockWalker) restore(saved []string) {
	w.held = append(w.held[:0:0], saved...)
}

// subWalk analyzes a closure body as its own lock scope: it may run
// later on another goroutine, so the enclosing held-set does not apply,
// and its acquisitions do not join the enclosing summary — but its own
// internal edges and under-lock updates are still collected.
func (w *lockWalker) subWalk(lit *ast.FuncLit) {
	sub := &lockWalker{
		e: w.e, fn: w.fn, info: w.info,
		sum:  &lockSummary{acquires: map[string][]analysis.PathStep{}},
		emit: w.emit,
	}
	sub.stmts(lit.Body.List)
}

func (w *lockWalker) expr(e ast.Expr) {
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			w.call(n)
			return false
		case *ast.FuncLit:
			w.subWalk(n)
			return false
		}
		return true
	})
}

func (w *lockWalker) call(call *ast.CallExpr) {
	for _, a := range call.Args {
		w.expr(a)
	}
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		w.subWalk(lit)
		return
	}
	if key, kind := w.lockOp(call); key != "" {
		switch kind {
		case "acquire":
			w.acquire(key, call.Pos())
		case "release":
			// Release the most recent matching acquisition.
			for i := len(w.held) - 1; i >= 0; i-- {
				if w.held[i] == key {
					w.held = append(w.held[:i], w.held[i+1:]...)
					break
				}
			}
		}
		return
	}
	if what, ok := w.instrumentUpdate(call); ok {
		w.update(call.Pos(), what, nil)
		return
	}
	callee := CalleeFunc(w.info, call)
	if callee == nil {
		return
	}
	if sum := w.e.sums[callee]; sum != nil {
		// The callee's acquisitions happen with our held-set active.
		keys := make([]string, 0, len(sum.acquires))
		for k := range sum.acquires {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			steps := AppendPath(
				[]analysis.PathStep{Step(call.Pos(), "calls %s", FuncName(callee))},
				sum.acquires[k]...)
			w.acquireSummarized(k, call.Pos(), steps)
		}
		for _, u := range sum.updates {
			w.update(call.Pos(), u.what, AppendPath(
				[]analysis.PathStep{Step(call.Pos(), "calls %s", FuncName(callee))},
				u.steps...))
		}
	}
}

// acquire records a directly acquired lock: edges from everything held,
// then push.
func (w *lockWalker) acquire(key string, pos token.Pos) {
	steps := []analysis.PathStep{Step(pos, "acquires %s in %s", key, w.fn.Name())}
	if _, ok := w.sum.acquires[key]; !ok {
		w.sum.acquires[key] = steps
	}
	w.edgesTo(key, pos, steps)
	w.held = append(w.held, key)
}

// acquireSummarized records a callee-transitive acquisition: edges from
// the held-set, but the held-set itself does not grow (the callee
// releases before returning, or its own walk already flagged it).
func (w *lockWalker) acquireSummarized(key string, pos token.Pos, steps []analysis.PathStep) {
	if _, ok := w.sum.acquires[key]; !ok {
		w.sum.acquires[key] = steps
	}
	w.edgesTo(key, pos, steps)
}

func (w *lockWalker) edgesTo(key string, pos token.Pos, steps []analysis.PathStep) {
	if !w.emit {
		return
	}
	for _, h := range w.held {
		w.e.edges = append(w.e.edges, lockEdge{
			from: h, to: key, pos: pos,
			steps: AppendPath(
				[]analysis.PathStep{Step(pos, "while holding %s", h)},
				steps...),
		})
	}
}

// update records a telemetry instrument update, reporting it when a
// lock is held here.
func (w *lockWalker) update(pos token.Pos, what string, chain []analysis.PathStep) {
	if len(chain) == 0 {
		chain = []analysis.PathStep{Step(pos, "%s update in %s", what, w.fn.Name())}
	}
	w.sum.updates = append(w.sum.updates, updRec{pos: pos, what: what, steps: chain})
	if w.emit && len(w.held) > 0 {
		under := w.held[len(w.held)-1]
		w.e.Findings = append(w.e.Findings, analysis.Diagnostic{
			Pos: pos,
			Message: fmt.Sprintf("telemetry %s update while holding %s; instrument updates are lock-free — move this outside the critical section",
				what, under),
			Path: AppendPath(
				[]analysis.PathStep{Step(pos, "holding %s", under)},
				chain...),
		})
	}
}

// lockOp classifies a call as a mutex acquire/release and derives the
// lock key.
func (w *lockWalker) lockOp(call *ast.CallExpr) (key, kind string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || len(call.Args) != 0 {
		return "", ""
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		kind = "acquire"
	case "Unlock", "RUnlock":
		kind = "release"
	default:
		return "", ""
	}
	recv := w.info.TypeOf(sel.X)
	if recv == nil || !isMutex(recv) {
		return "", ""
	}
	return w.lockKey(sel.X), kind
}

func isMutex(t types.Type) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// lockKey abstracts the mutex expression to a lock class:
// pkg.Type.field for struct-held mutexes, pkg.var for package-level
// ones, the expression text otherwise.
func (w *lockWalker) lockKey(e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		if t := w.info.TypeOf(x.X); t != nil {
			tt := t
			if p, ok := tt.Underlying().(*types.Pointer); ok {
				tt = p.Elem()
			}
			if named, ok := tt.(*types.Named); ok {
				obj := named.Obj()
				pkg := ""
				if obj.Pkg() != nil {
					pkg = lastSegment(obj.Pkg().Path()) + "."
				}
				return pkg + obj.Name() + "." + x.Sel.Name
			}
		}
		return exprText(x)
	case *ast.Ident:
		if obj := w.info.Uses[x]; obj != nil {
			if v, ok := obj.(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
				return lastSegment(v.Pkg().Path()) + "." + v.Name()
			}
		}
		return x.Name
	}
	return exprText(e)
}

func (w *lockWalker) isUnlock(call *ast.CallExpr) bool {
	_, kind := w.lockOp(call)
	return kind == "release"
}

// instrumentUpdate recognizes telemetry instrument mutations —
// Inc/Add/Set/Observe/Append on the telemetry package's types.
func (w *lockWalker) instrumentUpdate(call *ast.CallExpr) (string, bool) {
	fn := CalleeFunc(w.info, call)
	if fn == nil {
		return "", false
	}
	switch fn.Name() {
	case "Inc", "Add", "Set", "Observe", "Append":
	default:
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", false
	}
	t := sig.Recv().Type()
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || lastSegment(obj.Pkg().Path()) != "telemetry" {
		return "", false
	}
	switch obj.Name() {
	case "Counter", "Gauge", "Histogram", "Series", "Registry", "Tracer":
		return obj.Name() + "." + fn.Name(), true
	}
	return "", false
}

func exprText(e ast.Expr) string {
	var b strings.Builder
	writeExpr(&b, e)
	return b.String()
}

func writeExpr(b *strings.Builder, e ast.Expr) {
	switch x := e.(type) {
	case *ast.Ident:
		b.WriteString(x.Name)
	case *ast.SelectorExpr:
		writeExpr(b, x.X)
		b.WriteByte('.')
		b.WriteString(x.Sel.Name)
	case *ast.StarExpr:
		writeExpr(b, x.X)
	case *ast.ParenExpr:
		writeExpr(b, x.X)
	case *ast.IndexExpr:
		writeExpr(b, x.X)
		b.WriteString("[...]")
	default:
		b.WriteString("?")
	}
}

type edgeInfo struct {
	steps []analysis.PathStep
	pos   token.Pos
}

// reportCycles finds cycles in the acquisition-order graph and reports
// each once, plus self-edges.
func (e *LockEngine) reportCycles() {
	adj := map[string]map[string]edgeInfo{}
	for _, ed := range e.edges {
		if adj[ed.from] == nil {
			adj[ed.from] = map[string]edgeInfo{}
		}
		if _, ok := adj[ed.from][ed.to]; !ok {
			adj[ed.from][ed.to] = edgeInfo{steps: ed.steps, pos: ed.pos}
		}
	}
	// Self-edges: a lock class re-acquired while held.
	reportedSelf := map[string]bool{}
	for _, ed := range e.edges {
		if ed.from == ed.to && !reportedSelf[ed.from] {
			reportedSelf[ed.from] = true
			e.Findings = append(e.Findings, analysis.Diagnostic{
				Pos: ed.pos,
				Message: fmt.Sprintf("lock %s acquired while already held (self-deadlock on a non-reentrant mutex)",
					ed.from),
				Path: ed.steps,
			})
		}
	}
	// Two-lock (and longer, via pairwise reachability) cycles: report
	// each unordered pair {A,B} with A→B and B→…→A once.
	keys := make([]string, 0, len(adj))
	for k := range adj {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	reported := map[string]bool{}
	for _, a := range keys {
		for b, info := range adj[a] {
			if a == b || !reaches(adj, b, a) {
				continue
			}
			lo, hi := a, b
			if lo > hi {
				lo, hi = hi, lo
			}
			pairKey := lo + "|" + hi
			if reported[pairKey] {
				continue
			}
			reported[pairKey] = true
			var back []analysis.PathStep
			if bi, ok := adj[b][a]; ok {
				back = bi.steps
			}
			e.Findings = append(e.Findings, analysis.Diagnostic{
				Pos: info.pos,
				Message: fmt.Sprintf("lock-order cycle between %s and %s; acquire these locks in one consistent order",
					lo, hi),
				Path: AppendPath(info.steps, back...),
			})
		}
	}
}

// reaches reports whether `from` reaches `to` in the acquisition graph.
func reaches(adj map[string]map[string]edgeInfo, from, to string) bool {
	seen := map[string]bool{}
	var dfs func(n string) bool
	dfs = func(n string) bool {
		if n == to {
			return true
		}
		if seen[n] {
			return false
		}
		seen[n] = true
		for next := range adj[n] {
			if dfs(next) {
				return true
			}
		}
		return false
	}
	return dfs(from)
}
