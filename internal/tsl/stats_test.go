package tsl

import (
	"testing"

	"llbp/internal/telemetry"
)

// TestStatsAndTelemetryAgree drives a mixed stream through the composite
// and checks the two observability surfaces — the public Stats() snapshot
// and counters attached via AttachTelemetry — report identical values.
func TestStatsAndTelemetryAgree(t *testing.T) {
	p := MustNew(Config64K())
	reg := telemetry.NewRegistry()
	if !telemetry.Attach(reg, p) {
		t.Fatal("tsl.Predictor must implement telemetry.Attachable")
	}

	const n = 30000
	rng := uint64(0x9E3779B97F4A7C15)
	for i := 0; i < n; i++ {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		pc := 0x1000 + (rng%31)*4
		taken := (rng>>8)&7 != 0
		p.Predict(pc)
		p.Update(pc, taken)
	}

	s := p.Stats()
	if s.Predictions != n {
		t.Fatalf("Stats().Predictions = %d, want %d", s.Predictions, n)
	}
	if sum := s.ProviderBimodal + s.ProviderTAGE + s.ProviderLoop + s.ProviderSC; sum != s.Predictions {
		t.Errorf("provider breakdown sums to %d, want %d", sum, s.Predictions)
	}

	snap := reg.Snapshot()
	mirror := map[string]uint64{
		"tsl_predictions":     s.Predictions,
		"loop_uses":           s.LoopUses,
		"sc_reversals":        s.SCReversals,
		"tage_allocs":         s.TAGEAllocs,
		"tage_alloc_failures": s.TAGEAllocFailures,
		"provider_bimodal":    s.ProviderBimodal,
		"provider_tage":       s.ProviderTAGE,
		"provider_loop":       s.ProviderLoop,
		"provider_sc":         s.ProviderSC,
	}
	for name, want := range mirror {
		if got := snap.Counters[name]; got != want {
			t.Errorf("counter %s = %d, Stats says %d", name, got, want)
		}
	}
	if s.TAGEAllocs == 0 {
		t.Error("stream too tame: no TAGE allocations exercised")
	}
}
