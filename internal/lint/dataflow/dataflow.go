// Package dataflow is the whole-program substrate under the llbplint
// interprocedural analyzers (detflow, fencecheck, lockorder): a call
// graph plus per-function summaries built over go/ast and go/types with
// no dependency outside the standard library, mirroring how the
// per-package suite reimplements go/analysis (see internal/lint/analysis).
//
// A Program is built from the packages of one analysis.ProgramPass. The
// load path guarantees a unified type-object universe — a *types.Func
// seen through an import is the same object as its definition — so
// facts attach to *types.Func keys and compose across package
// boundaries.
//
// The analysis spec lives next to the code as annotation directives in
// doc comments:
//
//	//llbplint:source -- <why this function's results are nondeterministic>
//	//llbplint:sink -- <why this function's arguments must be deterministic>
//	//llbplint:sanitizer -- <why this function's results are order-clean>
//	//llbplint:worker -- <why this function runs on a worker goroutine>
//	//llbplint:leased -- <why writes to this type must be epoch-fenced>
//	//llbplint:fence -- <why this function may mutate leased state freely>
//
// source/sink/sanitizer feed detflow's taint analysis; worker, leased
// and fence feed fencecheck. The justification after " -- " is
// mandatory, exactly as for //llbplint:allow: an unexplained annotation
// is itself reported.
package dataflow

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"llbp/internal/lint/analysis"
)

// Annotation kinds.
const (
	KindSource    = "source"
	KindSink      = "sink"
	KindSanitizer = "sanitizer"
	KindWorker    = "worker"
	KindLeased    = "leased"
	KindFence     = "fence"
)

// An Annotation is one parsed //llbplint:<kind> directive.
type Annotation struct {
	Kind   string
	Reason string
	Pos    token.Pos
}

// A Func is one function or method declared with a body somewhere in
// the program.
type Func struct {
	Obj  *types.Func
	Decl *ast.FuncDecl
	Pkg  *analysis.ProgramPkg
	// Callees are the statically resolved call targets within the body
	// (function literals included), restricted to functions that also
	// have bodies in the program.
	Callees []*Func
}

// Name renders the function for diagnostics: pkg.Func or
// (*pkg.Type).Method.
func (f *Func) Name() string { return FuncName(f.Obj) }

// FuncName renders any *types.Func for diagnostics.
func FuncName(fn *types.Func) string {
	if fn == nil {
		return "<unknown>"
	}
	sig, _ := fn.Type().(*types.Signature)
	pkg := ""
	if fn.Pkg() != nil {
		pkg = lastSegment(fn.Pkg().Path()) + "."
	}
	if sig != nil && sig.Recv() != nil {
		t := sig.Recv().Type()
		ptr := ""
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			ptr = "*"
		}
		if named, ok := t.(*types.Named); ok {
			return fmt.Sprintf("(%s%s%s).%s", ptr, pkg, named.Obj().Name(), fn.Name())
		}
	}
	return pkg + fn.Name()
}

func lastSegment(path string) string {
	if i := strings.LastIndex(path, "/"); i >= 0 {
		return path[i+1:]
	}
	return path
}

// A Program is the analyzed package set with its call graph and
// annotation index.
type Program struct {
	Fset *token.FileSet
	Pkgs []*analysis.ProgramPkg

	// Funcs indexes every declared function with a body.
	Funcs map[*types.Func]*Func
	// FuncAnnos and TypeAnnos hold the parsed annotation directives.
	FuncAnnos map[*types.Func][]Annotation
	TypeAnnos map[*types.TypeName][]Annotation
	// Problems are malformed annotations (missing " -- reason").
	Problems []analysis.Diagnostic

	ordered []*Func // deterministic order: by source position
}

// Build constructs the program graph for a ProgramPass's packages.
func Build(fset *token.FileSet, pkgs []*analysis.ProgramPkg) *Program {
	p := &Program{
		Fset:      fset,
		Pkgs:      pkgs,
		Funcs:     map[*types.Func]*Func{},
		FuncAnnos: map[*types.Func][]Annotation{},
		TypeAnnos: map[*types.TypeName][]Annotation{},
	}
	// Pass 1: index declarations and annotations.
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					fn, ok := pkg.TypesInfo.Defs[d.Name].(*types.Func)
					if !ok {
						continue
					}
					if d.Body != nil {
						p.Funcs[fn] = &Func{Obj: fn, Decl: d, Pkg: pkg}
					}
					p.FuncAnnos[fn] = append(p.FuncAnnos[fn], p.parseAnnos(d.Doc)...)
				case *ast.GenDecl:
					if d.Tok != token.TYPE {
						continue
					}
					declAnnos := p.parseAnnos(d.Doc)
					for _, spec := range d.Specs {
						ts, ok := spec.(*ast.TypeSpec)
						if !ok {
							continue
						}
						tn, ok := pkg.TypesInfo.Defs[ts.Name].(*types.TypeName)
						if !ok {
							continue
						}
						annos := append(append([]Annotation(nil), declAnnos...), p.parseAnnos(ts.Doc)...)
						if len(annos) > 0 {
							p.TypeAnnos[tn] = append(p.TypeAnnos[tn], annos...)
						}
					}
				}
			}
		}
	}
	// Pass 2: resolve the call graph.
	for _, fn := range p.Funcs {
		fnLocal := fn
		seen := map[*Func]bool{}
		ast.Inspect(fnLocal.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if callee := p.ResolveCall(fnLocal.Pkg.TypesInfo, call); callee != nil && !seen[callee] {
				seen[callee] = true
				fnLocal.Callees = append(fnLocal.Callees, callee)
			}
			return true
		})
		sort.Slice(fnLocal.Callees, func(i, j int) bool {
			return fnLocal.Callees[i].Decl.Pos() < fnLocal.Callees[j].Decl.Pos()
		})
	}
	for _, fn := range p.Funcs {
		p.ordered = append(p.ordered, fn)
	}
	sort.Slice(p.ordered, func(i, j int) bool { return p.ordered[i].Decl.Pos() < p.ordered[j].Decl.Pos() })
	return p
}

// OrderedFuncs returns every program function sorted by position — the
// deterministic iteration order all engines use.
func (p *Program) OrderedFuncs() []*Func { return p.ordered }

// ResolveCall returns the program Func a call statically targets, or
// nil (interface dispatch, function values, stdlib, builtins).
func (p *Program) ResolveCall(info *types.Info, call *ast.CallExpr) *Func {
	if fn := CalleeFunc(info, call); fn != nil {
		return p.Funcs[fn]
	}
	return nil
}

// CalleeFunc resolves a call's static *types.Func target, if any.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

const annoPrefix = "llbplint:"

// parseAnnos extracts annotation directives from a doc comment.
func (p *Program) parseAnnos(doc *ast.CommentGroup) []Annotation {
	if doc == nil {
		return nil
	}
	var out []Annotation
	for _, c := range doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if !strings.HasPrefix(text, annoPrefix) {
			continue
		}
		rest := strings.TrimPrefix(text, annoPrefix)
		kind := rest
		var tail string
		if i := strings.IndexAny(rest, " \t"); i >= 0 {
			kind, tail = rest[:i], strings.TrimSpace(rest[i:])
		}
		switch kind {
		case KindSource, KindSink, KindSanitizer, KindWorker, KindLeased, KindFence:
		default:
			continue // allow directives and unknown kinds are not ours
		}
		reason := ""
		if i := strings.Index(tail, "--"); i >= 0 {
			reason = strings.TrimSpace(tail[i+2:])
		}
		if reason == "" {
			p.Problems = append(p.Problems, analysis.Diagnostic{
				Pos:      c.Pos(),
				Category: analysis.DirectiveCategory,
				Message:  fmt.Sprintf("annotation missing justification; use //llbplint:%s -- <reason>", kind),
			})
			continue
		}
		out = append(out, Annotation{Kind: kind, Reason: reason, Pos: c.Pos()})
	}
	return out
}

// FuncHasAnno reports whether fn carries an annotation of the kind.
func (p *Program) FuncHasAnno(fn *types.Func, kind string) bool {
	for _, a := range p.FuncAnnos[fn] {
		if a.Kind == kind {
			return true
		}
	}
	return false
}

// LeasedTypes returns the type names annotated //llbplint:leased.
func (p *Program) LeasedTypes() map[*types.TypeName]bool {
	out := map[*types.TypeName]bool{}
	for tn, annos := range p.TypeAnnos {
		for _, a := range annos {
			if a.Kind == KindLeased {
				out[tn] = true
			}
		}
	}
	return out
}

// SCCs returns the call graph's strongly connected components in
// bottom-up (callee-first) order, so summary engines can run one
// fixpoint per component.
func (p *Program) SCCs() [][]*Func {
	// Tarjan, iterative over the deterministic function order.
	index := map[*Func]int{}
	low := map[*Func]int{}
	onStack := map[*Func]bool{}
	var stack []*Func
	var sccs [][]*Func
	next := 0

	var strongconnect func(v *Func)
	strongconnect = func(v *Func) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range v.Callees {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var scc []*Func
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			sccs = append(sccs, scc)
		}
	}
	for _, fn := range p.ordered {
		if _, seen := index[fn]; !seen {
			strongconnect(fn)
		}
	}
	return sccs // Tarjan emits components in reverse topological order: callees first
}

// GoRoots returns the functions launched on their own goroutines via
// `go` statements anywhere in the program, plus functions annotated
// //llbplint:worker. A `go func() {...}()` spawn contributes the named
// functions its literal body calls.
func (p *Program) GoRoots() []*Func {
	seen := map[*Func]bool{}
	add := func(fn *Func) {
		if fn != nil {
			seen[fn] = true
		}
	}
	for _, fn := range p.ordered {
		pkg := fn.Pkg
		ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
				ast.Inspect(lit.Body, func(m ast.Node) bool {
					if call, ok := m.(*ast.CallExpr); ok {
						add(p.ResolveCall(pkg.TypesInfo, call))
					}
					return true
				})
				return true
			}
			add(p.ResolveCall(pkg.TypesInfo, g.Call))
			return true
		})
	}
	for fn, f := range p.Funcs {
		if p.FuncHasAnno(fn, KindWorker) {
			seen[f] = true
		}
	}
	var out []*Func
	for fn := range seen {
		out = append(out, fn)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Decl.Pos() < out[j].Decl.Pos() })
	return out
}

// Step builds one evidence-path hop.
func Step(pos token.Pos, format string, args ...any) analysis.PathStep {
	return analysis.PathStep{Pos: pos, Note: fmt.Sprintf(format, args...)}
}

// maxPathSteps bounds evidence chains so deep call stacks stay readable.
const maxPathSteps = 12

// AppendPath concatenates evidence chains under the global cap.
func AppendPath(base []analysis.PathStep, more ...analysis.PathStep) []analysis.PathStep {
	out := append(append([]analysis.PathStep(nil), base...), more...)
	if len(out) > maxPathSteps {
		out = out[:maxPathSteps]
	}
	return out
}
