// Package experiments regenerates every table and figure of the paper's
// evaluation (see DESIGN.md §3 for the experiment index). Each experiment
// produces report.Tables whose rows correspond to the paper's plotted
// series; cmd/experiments and the root bench suite drive them.
package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"llbp/internal/core"
	"llbp/internal/faults"
	"llbp/internal/harness"
	"llbp/internal/predictor"
	"llbp/internal/report"
	"llbp/internal/sim"
	"llbp/internal/telemetry"
	"llbp/internal/trace"
	"llbp/internal/trace/cache"
	"llbp/internal/tsl"
	"llbp/internal/workload"
)

// Config sets the simulation budgets for the experiment suite. The paper
// warms 100M and measures 200M instructions; the defaults here are scaled
// down ~40× to laptop scale (shapes, not absolute numbers, are the
// reproduction target — DESIGN.md §3).
type Config struct {
	// Warmup/Measure are the branch budgets of headline experiments.
	Warmup  uint64
	Measure uint64
	// SweepWarmup/SweepMeasure are the (smaller) budgets of wide
	// design-space sweeps (Figures 5, 13, 14).
	SweepWarmup  uint64
	SweepMeasure uint64
	// Workloads is the workload set (defaults to the full catalog).
	Workloads []*workload.Source
	// Progress, when non-nil, receives one line per completed
	// simulation run. It may be called from multiple goroutines when
	// Parallelism > 1.
	Progress func(format string, args ...interface{})

	// Context cancels in-flight simulations (deadlines, SIGINT).
	// Defaults to context.Background().
	Context context.Context
	// Parallelism bounds concurrent simulation cells (the harness
	// admission gate). Default 1.
	Parallelism int
	// Timeout is the per-run deadline enforced by the harness (0 =
	// none).
	Timeout time.Duration
	// Retries is how many times a transiently failed run is retried.
	Retries int
	// Journal, when non-nil, checkpoints completed cells so an
	// interrupted suite resumes without redoing them.
	Journal *harness.Journal
	// Telemetry, when non-nil, receives suite-level harness metrics
	// (cells run/failed/journal hits, attempt and latency histograms).
	Telemetry *telemetry.Registry
	// Tracer, when non-nil, receives one wall-clock span per simulation
	// cell on the harness track.
	Tracer *telemetry.Tracer

	// Remote, when non-nil, computes headline and sweep cells on a
	// remote llbpd daemon instead of simulating locally (the
	// cmd/experiments -server path). The cell still flows through the
	// local memo cache, single-flight dedup, retry loop and journal —
	// local and served execution share one code path. Fault-injected
	// cells (RunFaulted) always simulate locally.
	Remote func(ctx context.Context, spec CellSpec) (*RunOutput, error)
	// CellProgress, when non-nil, is invoked periodically (every few
	// thousand branches) while a cell simulates locally, with the cell
	// key and the running processed-branch count against the cell's
	// total budget. The llbpd service streams these as interval
	// snapshots. It may be called from multiple goroutines.
	CellProgress func(key string, processed, total uint64)

	// TraceCache, when non-nil, overrides the process-wide materialized
	// trace cache cells replay from; DisableTraceCache turns caching off
	// so every cell re-synthesizes its stream (the pre-cache behaviour,
	// useful for memory-constrained hosts and A/B measurement).
	TraceCache        *cache.Cache
	DisableTraceCache bool

	// DisableForkWarm turns off the warm-snapshot fork cache, so every
	// cell replays its own warmup even when cells share a (workload,
	// predictor, warmup) prefix. Results are byte-identical either way
	// (the fork property tests pin this down); the switch exists for A/B
	// wall-clock measurement and as an escape hatch.
	DisableForkWarm bool
}

// DefaultConfig returns the standard laptop-scale budgets.
func DefaultConfig() Config {
	return Config{
		Warmup:       200_000,
		Measure:      1_000_000,
		SweepWarmup:  100_000,
		SweepMeasure: 400_000,
	}
}

func (c *Config) workloads() []*workload.Source {
	if len(c.Workloads) > 0 {
		return c.Workloads
	}
	return workload.Catalog()
}

func (c *Config) progress(format string, args ...interface{}) {
	if c.Progress != nil {
		c.Progress(format, args...)
	}
}

// Experiment is one regenerable table or figure.
type Experiment struct {
	// ID is the short identifier used by -run flags (e.g. "fig9").
	ID string
	// Title describes the paper artifact being reproduced.
	Title string
	// Run executes the experiment and returns its tables.
	Run func(h *Harness) ([]*report.Table, error)
}

// Registry lists all experiments in paper order.
func Registry() []Experiment {
	return []Experiment{
		{"table1", "Table I: evaluated workloads", Table1},
		{"table2", "Table II: simulated core parameters", Table2},
		{"fig1", "Figure 1: execution cycles wasted on cond. mispredictions", Fig1},
		{"fig2", "Figure 2: MPKI of 64K TSL vs Inf TAGE vs Inf TSL", Fig2},
		{"fig3a", "Figure 3a: cumulative mispredictions per static branch (Tomcat)", Fig3a},
		{"fig3b", "Figure 3b: useful patterns per static branch (Tomcat, Inf)", Fig3b},
		{"fig5", "Figure 5: patterns per context vs context window W", Fig5},
		{"fig9", "Figure 9: branch MPKI reduction over 64K TSL", Fig9},
		{"fig10", "Figure 10: speedup over 64K TSL", Fig10},
		{"fig11", "Figure 11: LLBP transfer bandwidth vs PB size", Fig11},
		{"table3", "Table III: relative access latency and energy", Table3},
		{"fig12", "Figure 12: relative energy vs design", Fig12},
		{"fig13", "Figure 13: CID history type and prefetch distance", Fig13},
		{"fig14", "Figure 14: pattern-set count and size sensitivity", Fig14},
		{"fig15", "Figure 15: LLBP prediction breakdown", Fig15},
		{"ablation", "Ablations: bucketing, replacement, CID hash", Ablations},
		{"softerror", "Robustness: MPKI under soft errors in predictor state", SoftErrorStudy},
		{"extdelay", "Extension: storage-virtualization latency sensitivity", ExtDelay},
		{"extgate", "Extension: auto-disable power gate", ExtAutoDisable},
		{"extbaselines", "Extension: gshare/perceptron baseline spectrum", ExtBaselines},
		{"extscale", "Extension: simulation-budget sensitivity", ExtScale},
	}
}

// ByID resolves a comma-separated list of experiment IDs ("all" for every
// experiment).
func ByID(ids string) ([]Experiment, error) {
	all := Registry()
	if ids == "" || ids == "all" {
		return all, nil
	}
	idx := make(map[string]Experiment, len(all))
	for _, e := range all {
		idx[e.ID] = e
	}
	var out []Experiment
	for _, id := range strings.Split(ids, ",") {
		e, ok := idx[strings.TrimSpace(id)]
		if !ok {
			return nil, fmt.Errorf("experiments: unknown id %q", id)
		}
		out = append(out, e)
	}
	return out, nil
}

// Harness memoizes simulation runs so experiments sharing configurations
// (e.g. Figures 9, 10, 12 and 15 all need the LLBP runs) pay once. All
// runs dispatch through an internal/harness.Runner, which provides
// context cancellation, per-run deadlines, panic isolation, bounded
// retry, bounded parallelism and journal-based resume. The harness is
// safe for concurrent use; identical cells requested concurrently are
// deduplicated (single-flight) and computed once.
type Harness struct {
	Cfg    Config
	runner *harness.Runner

	mu       sync.Mutex
	cache    map[string]*RunOutput
	inflight map[string]*inflightCell

	// Warm-snapshot fork cache (see forkwarm.go): one warmed parent per
	// (workload, predictor, warmup) triple, forked per cell.
	warmMu    sync.Mutex
	warmCache map[string]*warmState
	warmOrder []string
}

// inflightCell tracks one cell being computed so concurrent requesters
// wait instead of duplicating the simulation.
type inflightCell struct {
	done chan struct{}
	out  *RunOutput
	err  error
}

// NewHarness returns a harness with the given budgets.
func NewHarness(cfg Config) *Harness {
	if cfg.Warmup == 0 && cfg.Measure == 0 {
		cfg = DefaultConfig()
	}
	if cfg.Context == nil {
		cfg.Context = context.Background()
	}
	runner := harness.NewRunner(harness.Options{
		Parallelism: cfg.Parallelism,
		Timeout:     cfg.Timeout,
		Retries:     cfg.Retries,
		Journal:     cfg.Journal,
		Progress:    cfg.Progress,
		Telemetry:   cfg.Telemetry,
		Tracer:      cfg.Tracer,
	})
	return &Harness{
		Cfg:       cfg,
		runner:    runner,
		cache:     make(map[string]*RunOutput),
		inflight:  make(map[string]*inflightCell),
		warmCache: make(map[string]*warmState),
	}
}

// RunOutput is one simulation's collected results. All fields are
// exported so cells round-trip through the JSON journal.
type RunOutput struct {
	Res  *sim.Result
	LLBP core.Stats
	// HasLLBP reports whether LLBP is part of the predictor.
	HasLLBP bool
	// Faults carries injection statistics when the run was faulted.
	Faults    faults.Stats
	HasFaults bool
}

// PredictorSpec names a predictor configuration for the cache key and
// builds fresh instances. Build returns an error instead of panicking so
// misconfiguration surfaces as an ordinary failed cell.
type PredictorSpec struct {
	Key   string
	Build func(clock *predictor.Clock) (predictor.Predictor, error)
}

// Standard specs.
func specTSL(label string, cfg tsl.Config) PredictorSpec {
	return PredictorSpec{
		Key: label,
		Build: func(*predictor.Clock) (predictor.Predictor, error) {
			return tsl.New(cfg)
		},
	}
}

// Spec64K .. SpecInfTSL are the TAGE-SC-L family of §VI.
func Spec64K() PredictorSpec  { return specTSL("64k", tsl.Config64K()) }
func Spec128K() PredictorSpec { return specTSL("128k", tsl.ConfigScaled(1)) }
func Spec256K() PredictorSpec { return specTSL("256k", tsl.ConfigScaled(2)) }
func Spec512K() PredictorSpec { return specTSL("512k", tsl.ConfigScaled(3)) }
func Spec1M() PredictorSpec   { return specTSL("1m", tsl.ConfigScaled(4)) }
func SpecInfTAGE() PredictorSpec {
	return specTSL("inftage", tsl.ConfigInfTAGE())
}
func SpecInfTSL() PredictorSpec { return specTSL("inftsl", tsl.ConfigInfTSL()) }

// SpecLLBP builds an LLBP spec with the given core configuration; key must
// uniquely describe cfg.
func SpecLLBP(key string, cfg core.Config) PredictorSpec {
	return PredictorSpec{
		Key: key,
		Build: func(clock *predictor.Clock) (predictor.Predictor, error) {
			base, err := tsl.New(tsl.Config64K())
			if err != nil {
				return nil, err
			}
			return core.New(cfg, base, clock)
		},
	}
}

// SpecLLBPDefault returns the evaluated LLBP design point.
func SpecLLBPDefault() PredictorSpec { return SpecLLBP("llbp", core.DefaultConfig()) }

// SpecLLBP0Lat returns the zero-latency LLBP configuration.
func SpecLLBP0Lat() PredictorSpec { return SpecLLBP("llbp0lat", core.ZeroLatConfig()) }

// Run simulates spec over wl with the headline budgets, memoized.
func (h *Harness) Run(wl *workload.Source, spec PredictorSpec) (*RunOutput, error) {
	return h.runBudget(wl, spec, h.Cfg.Warmup, h.Cfg.Measure)
}

// RunSweep simulates with the (smaller) sweep budgets, memoized.
func (h *Harness) RunSweep(wl *workload.Source, spec PredictorSpec) (*RunOutput, error) {
	return h.runBudget(wl, spec, h.Cfg.SweepWarmup, h.Cfg.SweepMeasure)
}

func (h *Harness) runBudget(wl *workload.Source, spec PredictorSpec, warm, meas uint64) (*RunOutput, error) {
	cs := CellSpec{Workload: wl.Name(), Predictor: spec.Key, Warmup: warm, Measure: meas}
	meta := map[string]string{"workload": wl.Name(), "predictor": spec.Key}
	return h.runCell(nil, cs.Key(), meta, func(ctx context.Context) (*RunOutput, error) {
		if h.Cfg.Remote != nil {
			return h.Cfg.Remote(ctx, cs)
		}
		return h.simulate(ctx, wl, spec, warm, meas, nil)
	})
}

// FaultSpec configures fault injection for RunFaulted.
type FaultSpec struct {
	// Rate is expected flips per Mbit of state per Mbranch.
	Rate float64
	// Protection is the modeled memory protection.
	Protection faults.Protection
	// Seed makes the fault schedule reproducible.
	Seed uint64
}

func (f FaultSpec) key() string {
	return fmt.Sprintf("rate=%g,prot=%s,seed=%d", f.Rate, f.Protection, f.Seed)
}

// RunFaulted simulates spec over wl with the sweep budgets while
// injecting soft errors into the predictor's fault surface. The predictor
// must implement faults.Surface. The returned FaultStats describe the
// injected flips. Results are memoized and journaled like regular cells.
func (h *Harness) RunFaulted(wl *workload.Source, spec PredictorSpec, fs FaultSpec) (*RunOutput, error) {
	key := fmt.Sprintf("%s|%s|%d|%d|%s", wl.Name(), spec.Key, h.Cfg.SweepWarmup, h.Cfg.SweepMeasure, fs.key())
	meta := map[string]string{"workload": wl.Name(), "predictor": spec.Key, "faults": fs.key()}
	return h.runCell(nil, key, meta, func(ctx context.Context) (*RunOutput, error) {
		return h.simulate(ctx, wl, spec, h.Cfg.SweepWarmup, h.Cfg.SweepMeasure, &fs)
	})
}

// traceCache resolves the cache cells replay from (nil = caching off).
func (h *Harness) traceCache() *cache.Cache {
	if h.Cfg.DisableTraceCache {
		return nil
	}
	if h.Cfg.TraceCache != nil {
		return h.Cfg.TraceCache
	}
	return cache.Default()
}

// source returns the replay source for n branches of wl — a pinned view
// of the materialized trace cache when available, wl itself otherwise —
// plus a release func the caller must invoke once replay is done.
// Synthesis failures fall back to direct replay so the cache is purely
// an accelerator: the branches replayed are identical either way.
func (h *Harness) source(wl *workload.Source, n uint64) (trace.Source, func()) {
	hd, err := h.traceCache().Acquire(wl, n)
	if err != nil || hd == nil {
		return wl, func() {}
	}
	return hd, hd.Release
}

// simulate is the body of one cell: build the predictor, wire optional
// fault injection, replay the trace under ctx. Cells with a shareable
// warmup prefix and a forkable predictor take the warm-snapshot fork
// path instead (forkwarm.go); fault-injected cells never do — the
// injector must see the warmup phase, which a fork skips.
func (h *Harness) simulate(ctx context.Context, wl *workload.Source, spec PredictorSpec, warm, meas uint64, fs *FaultSpec) (*RunOutput, error) {
	if fs == nil && warm > 0 && meas > 0 && !h.Cfg.DisableForkWarm {
		if out, ok, err := h.simulateForked(ctx, wl, spec, warm, meas); ok {
			return out, err
		}
	}
	clock := &predictor.Clock{}
	p, err := spec.Build(clock)
	if err != nil {
		return nil, fmt.Errorf("experiments: building %s: %w", spec.Key, err)
	}
	opt := sim.Options{
		WarmupBranches:  warm,
		MeasureBranches: meas,
		Clock:           clock,
		Context:         ctx,
	}
	var inj *faults.Injector
	if fs != nil {
		surf, ok := p.(faults.Surface)
		if !ok {
			return nil, fmt.Errorf("experiments: %s does not expose a fault surface", spec.Key)
		}
		inj = faults.NewInjector(surf, faults.Config{
			Rate:       fs.Rate,
			Protection: fs.Protection,
			Seed:       fs.Seed,
		})
		var last uint64
		opt.Hook = func(processed uint64) {
			inj.Step(processed - last)
			last = processed
		}
	}
	if h.Cfg.CellProgress != nil {
		cs := CellSpec{Workload: wl.Name(), Predictor: spec.Key, Warmup: warm, Measure: meas}
		key, total := cs.Key(), warm+meas
		inner := opt.Hook
		opt.Hook = func(processed uint64) {
			if inner != nil {
				inner(processed)
			}
			h.Cfg.CellProgress(key, processed, total)
		}
	}
	src, release := h.source(wl, warm+meas)
	res, err := sim.Run(src, p, opt)
	release()
	if err != nil {
		return nil, fmt.Errorf("experiments: %s on %s: %w", spec.Key, wl.Name(), err)
	}
	out := &RunOutput{Res: res}
	if lp, ok := p.(*core.Predictor); ok {
		out.LLBP = lp.Stats()
		out.HasLLBP = true
	}
	if inj != nil {
		out.Faults = inj.Stats()
		out.HasFaults = true
	}
	h.Cfg.progress("  ran %-10s on %-10s MPKI=%.3f", spec.Key, wl.Name(), res.MPKI)
	return out, nil
}

// runCell computes one memoized cell: in-memory cache, single-flight
// deduplication of concurrent identical requests, then dispatch through
// the harness runner (journal, retry, panic isolation, admission gate).
// ctx overrides the harness-level context when non-nil (the service
// passes per-job contexts so cancelling a job aborts its in-flight
// cells); concurrent requesters of the same cell share the first
// requester's context via single-flight.
func (h *Harness) runCell(ctx context.Context, key string, meta map[string]string, body func(ctx context.Context) (*RunOutput, error)) (*RunOutput, error) {
	if ctx == nil {
		ctx = h.Cfg.Context
	}
	h.mu.Lock()
	if out, ok := h.cache[key]; ok {
		h.mu.Unlock()
		return out, nil
	}
	if cell, ok := h.inflight[key]; ok {
		h.mu.Unlock()
		<-cell.done
		return cell.out, cell.err
	}
	cell := &inflightCell{done: make(chan struct{})}
	h.inflight[key] = cell
	h.mu.Unlock()

	res := h.runner.Do(ctx, harness.Job{
		Key:  key,
		Meta: meta,
		Run: func(ctx context.Context) (any, error) {
			return body(ctx)
		},
		Decode: func(raw json.RawMessage) (any, error) {
			var out RunOutput
			if err := json.Unmarshal(raw, &out); err != nil {
				return nil, err
			}
			return &out, nil
		},
	})

	if res.Err != nil {
		cell.err = res.Err
	} else if out, ok := res.Value.(*RunOutput); ok {
		cell.out = out
	} else {
		cell.err = fmt.Errorf("experiments: cell %s returned unexpected %T", key, res.Value)
	}

	h.mu.Lock()
	if cell.err == nil {
		h.cache[key] = cell.out
	}
	delete(h.inflight, key)
	h.mu.Unlock()
	close(cell.done)
	return cell.out, cell.err
}

// Prewarm computes a batch of (workload × spec) headline cells
// concurrently under the harness admission gate and reports the failures
// without aborting on the first (fail-soft). Experiments consuming the
// cells afterwards hit the warm cache.
func (h *Harness) Prewarm(wls []*workload.Source, specs []PredictorSpec) []error {
	type cellReq struct {
		wl   *workload.Source
		spec PredictorSpec
	}
	var reqs []cellReq
	for _, wl := range wls {
		for _, spec := range specs {
			reqs = append(reqs, cellReq{wl, spec})
		}
	}
	errs := make([]error, len(reqs))
	var wg sync.WaitGroup
	for i, rq := range reqs {
		wg.Add(1)
		go func(i int, rq cellReq) {
			defer wg.Done()
			_, errs[i] = h.Run(rq.wl, rq.spec)
		}(i, rq)
	}
	wg.Wait()
	var failed []error
	for _, err := range errs {
		if err != nil {
			failed = append(failed, err)
		}
	}
	return failed
}

// meanRow computes the arithmetic mean of a float column.
func meanRow(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range vals {
		s += v
	}
	return s / float64(len(vals))
}

// sortedKeys returns the map's keys sorted (for deterministic tables).
func sortedKeys(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Chart renders t's first numeric column as an ASCII bar chart, or nil if
// no column parses (cmd/experiments -charts).
func Chart(t *report.Table) *report.BarChart {
	for col := 1; col < len(t.Header); col++ {
		c := report.ChartFromTable(t, col, "")
		if len(c.Values) >= 2 {
			c.Title = fmt.Sprintf("[%s]", t.Header[col])
			return c
		}
	}
	return nil
}
