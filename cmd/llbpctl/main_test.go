package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"llbp/internal/experiments"
	"llbp/internal/service"
	"llbp/internal/telemetry"
)

// startService runs a real in-process llbpd (harness + server) and
// returns its address for -server.
func startService(t *testing.T) string {
	t.Helper()
	h := experiments.NewHarness(experiments.Config{Warmup: 1, Measure: 1, Parallelism: 2})
	srv, err := service.New(service.Options{Runner: h, Workers: 2, Registry: telemetry.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		hs.Close()
		srv.Drain(context.Background())
	})
	return hs.URL
}

// ctl invokes the CLI exactly as a shell would, capturing both streams.
func ctl(t *testing.T, stdin string, args ...string) (int, string, string) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(args, strings.NewReader(stdin), &out, &errb)
	return code, out.String(), errb.String()
}

const cellKey = "Tomcat|64k|1000|10000"

// TestCtlSubmitWatchResults covers the composed pipeline the README
// shows: submit prints a bare job ID on stdout, watch reads it from
// stdin, results dumps the JSON-lines stream.
func TestCtlSubmitWatchResults(t *testing.T) {
	addr := startService(t)
	code, out, errb := ctl(t, "", "-server", addr, "submit", "-cells", cellKey, "-wait")
	if code != 0 {
		t.Fatalf("submit: code %d, stderr %q", code, errb)
	}
	id := strings.TrimSpace(out)
	if !strings.HasPrefix(id, "job-") || strings.ContainsAny(id, " \n") {
		t.Fatalf("submit stdout %q is not a bare job id", out)
	}
	if !strings.Contains(errb, id) || !strings.Contains(errb, "1 cells") {
		t.Errorf("submit stderr %q lacks the status line", errb)
	}

	// watch with the ID piped on stdin — `llbpctl submit | llbpctl watch`.
	code, out, errb = ctl(t, out, "-server", addr, "watch")
	if code != 0 {
		t.Fatalf("watch: code %d, stderr %q", code, errb)
	}
	if !strings.Contains(out, cellKey) || !strings.Contains(out, "done (1 ok, 0 failed)") {
		t.Errorf("watch output %q missing cell/done lines", out)
	}

	resFile := filepath.Join(t.TempDir(), "results.jsonl")
	code, _, errb = ctl(t, "", "-server", addr, "results", "-o", resFile, id)
	if code != 0 {
		t.Fatalf("results: code %d, stderr %q", code, errb)
	}
	raw, err := os.ReadFile(resFile)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if len(lines) != 2 { // one cell event + done
		t.Fatalf("results file has %d lines: %q", len(lines), raw)
	}
	var ev service.StreamEvent
	if err := json.Unmarshal([]byte(lines[0]), &ev); err != nil || ev.Type != "cell" || ev.Key != cellKey {
		t.Errorf("first result line %q: %+v, %v", lines[0], ev, err)
	}

	code, out, _ = ctl(t, "", "-server", addr, "status", id)
	if code != 0 || !strings.Contains(out, "done") {
		t.Errorf("status: code %d, out %q", code, out)
	}
	code, out, _ = ctl(t, "", "-server", addr, "health")
	if code != 0 || strings.TrimSpace(out) != "ok" {
		t.Errorf("health: code %d, out %q", code, out)
	}
}

// TestCtlMetrics writes a valid llbp-metrics/1 document — the same bytes
// cmd/telemetrycheck validates in CI.
func TestCtlMetrics(t *testing.T) {
	addr := startService(t)
	mFile := filepath.Join(t.TempDir(), "metrics.json")
	code, _, errb := ctl(t, "", "-server", addr, "metrics", "-o", mFile)
	if code != 0 {
		t.Fatalf("metrics: code %d, stderr %q", code, errb)
	}
	raw, err := os.ReadFile(mFile)
	if err != nil {
		t.Fatal(err)
	}
	mf, err := telemetry.ReadMetricsFile(raw)
	if err != nil || len(mf.Runs) != 1 || mf.Runs[0].Predictor != "llbpd" {
		t.Errorf("metrics document: %+v, %v", mf, err)
	}
}

// TestCtlErrors: bad invocations exit 2 (usage) or 1 (runtime) with a
// one-line message, never a stack trace.
func TestCtlErrors(t *testing.T) {
	addr := startService(t)
	cases := []struct {
		args []string
		code int
	}{
		{[]string{"-server", addr}, 2},                                      // no command
		{[]string{"-server", addr, "frobnicate"}, 2},                        // unknown command
		{[]string{"-server", addr, "submit", "-run", "fig99"}, 1},           // unknown preset
		{[]string{"-server", addr, "submit", "-cells", "not-a-cell"}, 1},    // bad cell key
		{[]string{"-server", addr, "cancel"}, 1},                            // missing id
		{[]string{"-server", addr, "cancel", "job-deadbeef"}, 1},            // unknown id
		{[]string{"-server", "127.0.0.1:1", "health"}, 1},                   // nothing listening
		{[]string{"-server", addr, "submit", "-workloads", "NoSuchWL"}, 1},  // invalid workload
	}
	for _, tc := range cases {
		code, _, errb := ctl(t, "", tc.args...)
		if code != tc.code {
			t.Errorf("%v: code %d, want %d (stderr %q)", tc.args, code, tc.code, errb)
		}
		if strings.Contains(errb, "goroutine ") {
			t.Errorf("%v: stack trace leaked to stderr", tc.args)
		}
	}
}

// TestCtlPresets: every preset expands to a non-empty cross product of
// catalog workloads and registered predictor specs.
func TestCtlPresets(t *testing.T) {
	for name := range presets {
		cells, err := buildCells(name, "", "all", "", 100, 1000)
		if err != nil {
			t.Errorf("preset %s: %v", name, err)
			continue
		}
		if len(cells) == 0 {
			t.Errorf("preset %s expanded to no cells", name)
		}
		for _, cs := range cells {
			if err := cs.Validate(); err != nil {
				t.Errorf("preset %s cell %s: %v", name, cs.Key(), err)
			}
		}
	}
}

// TestCtlMetricsText fetches the Prometheus surface via -text and checks
// it parses back.
func TestCtlMetricsText(t *testing.T) {
	addr := startService(t)
	code, out, errb := ctl(t, "", "-server", addr, "metrics", "-text")
	if code != 0 {
		t.Fatalf("metrics -text: code %d, stderr %q", code, errb)
	}
	doc, err := telemetry.ParsePrometheus([]byte(out))
	if err != nil {
		t.Fatalf("output is not valid Prometheus text: %v\n%s", err, out)
	}
	if doc.Types["service_jobs_submitted"] != "counter" {
		t.Errorf("service_jobs_submitted not declared a counter in %v", doc.Types)
	}
}

// TestCtlTop renders one plain frame against a live daemon and checks
// the operator view carries health, counters and the finished job.
func TestCtlTop(t *testing.T) {
	addr := startService(t)
	code, out, errb := ctl(t, "", "-server", addr, "submit", "-cells", cellKey, "-tenant", "acme", "-wait")
	if code != 0 {
		t.Fatalf("submit: code %d, stderr %q", code, errb)
	}
	id := strings.TrimSpace(out)
	ctl(t, id+"\n", "-server", addr, "watch") // wait for completion

	code, out, errb = ctl(t, "", "-server", addr, "top", "-n", "2", "-interval", "10ms", "-plain")
	if code != 0 {
		t.Fatalf("top: code %d, stderr %q", code, errb)
	}
	for _, want := range []string{"status=ok", "submitted 1", "completed 1", "tenant throughput", "acme"} {
		if !strings.Contains(out, want) {
			t.Errorf("top output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "\x1b[") {
		t.Errorf("-plain frame contains ANSI escapes:\n%q", out)
	}
}
