package bimodal

import "testing"

func TestConvergesToBias(t *testing.T) {
	b := New(10)
	pc := uint64(0x400040)
	for i := 0; i < 10; i++ {
		b.Update(pc, true)
	}
	if !b.Predict(pc) {
		t.Error("must predict taken after consistent taken training")
	}
	for i := 0; i < 10; i++ {
		b.Update(pc, false)
	}
	if b.Predict(pc) {
		t.Error("must predict not-taken after consistent not-taken training")
	}
}

func TestHysteresisResistsSingleFlip(t *testing.T) {
	b := New(10)
	pc := uint64(0x400040)
	for i := 0; i < 4; i++ {
		b.Update(pc, true)
	}
	// One contrary outcome clears hysteresis but must not flip the
	// direction bit.
	b.Update(pc, false)
	if !b.Predict(pc) {
		t.Error("single contrary outcome must not flip a reinforced entry")
	}
	// A second contrary outcome flips.
	b.Update(pc, false)
	if b.Predict(pc) {
		t.Error("second contrary outcome must flip")
	}
}

func TestConfident(t *testing.T) {
	b := New(10)
	pc := uint64(0x12340)
	if b.Confident(pc) {
		t.Error("fresh entry must not be confident")
	}
	b.Update(pc, false)
	// Entry agreed (zero value = not-taken): hysteresis set.
	if !b.Confident(pc) {
		t.Error("reinforced entry must be confident")
	}
}

func TestSharedHysteresisNeighbours(t *testing.T) {
	b := New(10)
	// Two PCs in the same hysteresis group (consecutive entries share
	// 4:1): indexes differ in low bits above the >>2 shift.
	pcA := uint64(0 << 2)
	pcB := uint64(1 << 2)
	for i := 0; i < 4; i++ {
		b.Update(pcA, true)
	}
	// pcB's direction bit is independent even though hysteresis is
	// shared.
	if b.Predict(pcB) {
		t.Error("neighbour direction bit must be independent")
	}
}

func TestDistinctPCsIndependent(t *testing.T) {
	b := New(12)
	pcT := uint64(0x1000)
	pcN := uint64(0x2000)
	for i := 0; i < 8; i++ {
		b.Update(pcT, true)
		b.Update(pcN, false)
	}
	if !b.Predict(pcT) || b.Predict(pcN) {
		t.Error("distinct PCs must train independently")
	}
}

func TestStorageBits(t *testing.T) {
	b := New(14)
	want := (1 << 14) + (1 << 12) // pred bits + shared hysteresis
	if got := b.StorageBits(); got != want {
		t.Errorf("StorageBits = %d, want %d", got, want)
	}
}

func TestNewPanicsOnBadSize(t *testing.T) {
	for _, bad := range []int{0, 1, 29} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d) must panic", bad)
				}
			}()
			New(bad)
		}()
	}
}
