package lint

import (
	"go/ast"
	"go/types"
	"strings"

	"llbp/internal/lint/analysis"
)

// Injectable enforces the failure-domain testability contract on the
// service stack (import-path segments "service" and "chaos"): code whose
// timing or randomness governs failure handling must be injectable, so
// the chaos harness can replay any scenario deterministically from a
// seed.
//
// Flagged:
//
//   - time.Sleep: blocks a goroutine on the wall clock with no context
//     escape and no way for tests to accelerate it. Use a timer in a
//     select with ctx.Done() (see client.SubmitWait), or derive the
//     moment from the injected clock (service Options.Now).
//   - package-level math/rand draws (rand.Intn, rand.Float64, ...):
//     the global RNG is auto-seeded, so a chaos scenario that consulted
//     it could never be replayed from its seed. Own the stream: a
//     rand.New(rand.NewSource(seed)) or a splitmix64 counter seeded from
//     configuration (the internal/faults and internal/chaos idiom).
//
// Intentional exceptions carry the usual justification:
//
//	//llbplint:allow injectable -- <why this wait cannot be injected>
var Injectable = &analysis.Analyzer{
	Name: "injectable",
	Doc:  "forbid time.Sleep and unseeded RNG in the service stack (failure timing must be injectable and seed-replayable)",
	Run:  runInjectable,
}

func runInjectable(pass *analysis.Pass) error {
	if !hasSegment(pass.Pkg.Path(), "service", "chaos") {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				// Methods ((*rand.Rand).Intn on an owned generator,
				// (*time.Timer).Stop) are the sanctioned pattern.
				return true
			}
			switch fn.Pkg().Path() {
			case "time":
				if fn.Name() == "Sleep" {
					pass.Reportf(sel.Pos(),
						"time.Sleep blocks on the wall clock with no context escape; select on a timer and ctx.Done(), or derive the moment from the injected clock (Options.Now)")
				}
			case "math/rand", "math/rand/v2":
				if !strings.HasPrefix(fn.Name(), "New") {
					pass.Reportf(sel.Pos(),
						"%s.%s draws from the auto-seeded global RNG; chaos scenarios must replay from their seed — own a rand.New(rand.NewSource(seed)) or a seeded splitmix64 stream", fn.Pkg().Path(), fn.Name())
				}
			}
			return true
		})
	}
	return nil
}
