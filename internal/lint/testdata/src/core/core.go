// Package core is the hotpath fixture: a Predictor whose per-branch
// entry points reach allocations and map accesses directly, through a
// helper, and through another fixture package — plus cold functions the
// analyzer must not flag and an allow-suppressed cold layer.
package core

import "predlib"

type Predictor struct {
	tbl   []int
	cache map[uint64]int
	name  string
}

func (p *Predictor) Predict(pc uint64) bool {
	v := p.cache[pc] // want hotpath:"map access \\(index\\)"
	return p.scan(pc) > v
}

// scan is hot via Predict: one hop below the root.
func (p *Predictor) scan(pc uint64) int {
	s := make([]int, 4) // want hotpath:"allocates \\(make\\)"
	for k := range p.cache { // want hotpath:"map access \\(range\\)"
		_ = k
	}
	_ = s
	return predlib.Mix(pc)
}

func (p *Predictor) UpdateWithTarget(pc, target uint64, taken bool) {
	p.tbl = append(p.tbl, int(pc)) // want hotpath:"allocates \\(append\\)"
	if taken {
		p.name = p.name + "t" // want hotpath:"allocates \\(string concatenation\\)"
	}
	delete(p.cache, pc) // want hotpath:"map access \\(delete\\)"
	e := &entry{pc: pc} // want hotpath:"allocates \\(&composite literal\\)"
	_ = e
	p.grow(pc)
}

type entry struct{ pc uint64 }

// grow is a reachable cold layer: its finding is suppressed at the site
// with a justified allow, the pattern real miss-driven code uses.
func (p *Predictor) grow(pc uint64) {
	p.cache[pc] = 1 //llbplint:allow hotpath -- fixture: miss-driven growth off the per-branch steady state
}

// Cold is NOT reachable from the entry points: no findings here.
func (p *Predictor) Cold() {
	_ = make([]int, 128)
	m := map[int]int{}
	_ = m
}

// Predict on a non-Predictor type is not a root.
type Other struct{}

func (o *Other) Predict(pc uint64) bool {
	_ = make([]byte, 1)
	return false
}
