package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestMeasureAndCheck: a small measurement run writes a document that
// -check accepts, with every family present and positive rates.
func TestMeasureAndCheck(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "bench.json")

	var stdout, stderr bytes.Buffer
	code := run([]string{"-out", out, "-branches", "5000", "-warmup", "1000"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("measure: code %d, stderr %q", code, stderr.String())
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var doc Doc
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Schema != BenchSchema || doc.Branches != 5000 || len(doc.Results) != len(families)+1 {
		t.Fatalf("document: %+v", doc)
	}
	last := doc.Results[len(doc.Results)-1]
	if last.Family != sessionFamily || last.VsBatchPct == 0 {
		t.Errorf("streamed-session family missing or uncompared: %+v", last)
	}
	for _, r := range doc.Results {
		if r.BranchesPerSc <= 0 {
			t.Errorf("family %s measured %v branches/s", r.Family, r.BranchesPerSc)
		}
		if r.Verdict != "" {
			t.Errorf("family %s has verdict %q without -compare", r.Family, r.Verdict)
		}
	}
	if doc.Machine == nil {
		t.Fatal("document missing the machine fingerprint")
	}
	if doc.Machine.NumCPU <= 0 || doc.Machine.GOMAXPROCS <= 0 || doc.Machine.GoVersion == "" {
		t.Errorf("machine fingerprint incomplete: %+v", doc.Machine)
	}

	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-check", out}, &stdout, &stderr); code != 0 {
		t.Fatalf("check: code %d, stderr %q", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "ok") {
		t.Errorf("check output %q", stdout.String())
	}
}

// TestCheckRejectsBadDocuments: corrupt, wrong-schema, zeroed and
// incomplete documents all fail -check with a diagnostic.
func TestCheckRejectsBadDocuments(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	cases := []struct {
		name string
		path string
	}{
		{"missing", filepath.Join(dir, "absent.json")},
		{"garbage", write("garbage.json", "not json")},
		{"wrong schema", write("schema.json", `{"schema":"other/9","branches_per_iter":1,"results":[]}`)},
		{"zero branches", write("zero.json", `{"schema":"llbp-bench/1","branches_per_iter":0,"results":[]}`)},
		{"missing family", write("partial.json",
			`{"schema":"llbp-bench/1","branches_per_iter":100,"results":[{"family":"tage","iterations":1,"ns_per_op":5,"branches_per_sec":9.9}]}`)},
		{"zero rate", write("rate.json",
			`{"schema":"llbp-bench/1","branches_per_iter":100,"results":[{"family":"tage","iterations":1,"ns_per_op":5,"branches_per_sec":0}]}`)},
	}
	for _, tc := range cases {
		var stdout, stderr bytes.Buffer
		if code := run([]string{"-check", tc.path}, &stdout, &stderr); code != 1 {
			t.Errorf("%s: code %d, want 1 (stderr %q)", tc.name, code, stderr.String())
		}
	}
}

// TestUsageErrors: flag misuse exits 2.
func TestUsageErrors(t *testing.T) {
	for _, args := range [][]string{
		nil,
		{"-no-such-flag"},
		{"-out", "x.json", "-branches", "100", "-warmup", "100"},
	} {
		var stdout, stderr bytes.Buffer
		if code := run(args, &stdout, &stderr); code != 2 {
			t.Errorf("args %v: code %d, want 2", args, code)
		}
	}
}

// writeBaseline synthesizes a valid baseline document with the given
// per-family branches/s rate — session family included, mirroring
// BENCH_7-era documents.
func writeBaseline(t *testing.T, dir string, rate float64) string {
	t.Helper()
	doc := Doc{Schema: BenchSchema, Workload: "Tomcat", Branches: 2000}
	for _, fam := range families {
		doc.Results = append(doc.Results, Result{
			Family: fam.name, Iterations: 1, NsPerOp: 1, BranchesPerSc: rate,
		})
	}
	doc.Results = append(doc.Results, Result{
		Family: sessionFamily, Iterations: 1, NsPerOp: 1, BranchesPerSc: rate,
	})
	raw, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "baseline.json")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestComparePass: against a trivially slow baseline the gate passes and
// the written document carries baseline rates and positive deltas.
func TestComparePass(t *testing.T) {
	dir := t.TempDir()
	baseline := writeBaseline(t, dir, 1) // 1 branch/s: any real machine beats it
	out := filepath.Join(dir, "next.json")
	var stdout, stderr bytes.Buffer
	code := run([]string{"-compare", baseline, "-out", out, "-branches", "2000", "-warmup", "500"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("compare: code %d, stderr %q", code, stderr.String())
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var doc Doc
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.BaselineFile != baseline {
		t.Errorf("baseline_file = %q, want %q", doc.BaselineFile, baseline)
	}
	if doc.TolerancePct != 5.0 {
		t.Errorf("tolerance_pct = %v, want the default 5.0", doc.TolerancePct)
	}
	for _, r := range doc.Results {
		if r.BaselineBranchesPerSec != 1 || r.DeltaPct <= 0 {
			t.Errorf("family %s: baseline %v delta %v", r.Family, r.BaselineBranchesPerSec, r.DeltaPct)
		}
		if r.Verdict != "ok" {
			t.Errorf("family %s: verdict %q, want \"ok\"", r.Family, r.Verdict)
		}
	}
}

// TestCompareRegressionFails: an impossibly fast baseline trips the
// tolerance gate (exit 1) but the -out document is still written — the
// trajectory artifact must survive a failing gate.
func TestCompareRegressionFails(t *testing.T) {
	dir := t.TempDir()
	baseline := writeBaseline(t, dir, 1e15) // no machine reaches this
	out := filepath.Join(dir, "next.json")
	var stdout, stderr bytes.Buffer
	code := run([]string{"-compare", baseline, "-out", out, "-branches", "2000", "-warmup", "500"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("compare vs impossible baseline: code %d, want 1 (stderr %q)", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "regression beyond") {
		t.Errorf("stderr %q lacks the regression verdict", stderr.String())
	}
	var doc Doc
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("document not written on failing gate: %v", err)
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	for _, r := range doc.Results {
		if r.DeltaPct >= 0 {
			t.Errorf("family %s: delta %v, want negative", r.Family, r.DeltaPct)
		}
		if r.Verdict != "regression" {
			t.Errorf("family %s: verdict %q, want \"regression\"", r.Family, r.Verdict)
		}
	}
}

// TestCompareAbsentFamilyBaseline: a BENCH_6-era baseline that predates
// the session family still parses and gates — the new family inherits
// its own fresh rate as a first baseline ("inherited-baseline") instead
// of failing the run or staying unaccountable forever.
func TestCompareAbsentFamilyBaseline(t *testing.T) {
	dir := t.TempDir()
	doc := Doc{Schema: BenchSchema, Workload: "Tomcat", Branches: 2000}
	for _, fam := range families {
		doc.Results = append(doc.Results, Result{
			Family: fam.name, Iterations: 1, NsPerOp: 1, BranchesPerSc: 1,
		})
	}
	raw, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	baseline := filepath.Join(dir, "bench6-era.json")
	if err := os.WriteFile(baseline, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "next.json")
	var stdout, stderr bytes.Buffer
	code := run([]string{"-compare", baseline, "-out", out, "-branches", "2000", "-warmup", "500"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("compare vs pre-session baseline: code %d, stderr %q", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "absent from baseline") {
		t.Errorf("stderr %q lacks the inherited-baseline notice", stderr.String())
	}
	var got Doc
	rawOut, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(rawOut, &got); err != nil {
		t.Fatal(err)
	}
	for _, r := range got.Results {
		want := "ok"
		if r.Family == sessionFamily {
			want = "inherited-baseline"
			if r.BaselineBranchesPerSec != r.BranchesPerSc {
				t.Errorf("family %s: inherited baseline %v, want own rate %v",
					r.Family, r.BaselineBranchesPerSec, r.BranchesPerSc)
			}
		}
		if r.Verdict != want {
			t.Errorf("family %s: verdict %q, want %q", r.Family, r.Verdict, want)
		}
	}
}

// TestCompareUsage: -compare without -out and -compare with -check are
// usage errors; a bad baseline is a runtime error.
func TestCompareUsage(t *testing.T) {
	dir := t.TempDir()
	baseline := writeBaseline(t, dir, 1)
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-compare", baseline}, &stdout, &stderr); code != 2 {
		t.Errorf("-compare without -out: code %d, want 2", code)
	}
	if code := run([]string{"-compare", baseline, "-check", baseline}, &stdout, &stderr); code != 2 {
		t.Errorf("-compare with -check: code %d, want 2", code)
	}
	if code := run([]string{"-compare", filepath.Join(dir, "absent.json"), "-out", "-"}, &stdout, &stderr); code != 1 {
		t.Errorf("missing baseline: code %d, want 1", code)
	}
	if code := run([]string{"-micro", "-check", baseline}, &stdout, &stderr); code != 2 {
		t.Errorf("-micro with -check: code %d, want 2", code)
	}
	if code := run([]string{"-micro", "-compare", baseline}, &stdout, &stderr); code != 2 {
		t.Errorf("-micro with -compare: code %d, want 2", code)
	}
}

// TestCPUProfileArtifact: -cpuprofile writes a non-empty profile of the
// llbp family's measurement alongside the document.
func TestCPUProfileArtifact(t *testing.T) {
	dir := t.TempDir()
	prof := filepath.Join(dir, "llbp.prof")
	var stdout, stderr bytes.Buffer
	code := run([]string{"-out", filepath.Join(dir, "bench.json"), "-branches", "2000", "-warmup", "500", "-cpuprofile", prof}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("run with -cpuprofile: code %d, stderr %q", code, stderr.String())
	}
	info, err := os.Stat(prof)
	if err != nil {
		t.Fatalf("profile not written: %v", err)
	}
	if info.Size() == 0 {
		t.Error("profile file is empty")
	}
}
