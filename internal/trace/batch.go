package trace

import "io"

// Batched replay: the hot-path alternative to the one-record Read
// interface. A simulation replaying tens of millions of branches through
// Reader.Read pays an interface dispatch, a bounds check and (for
// generated workloads) a pending-queue drain per branch. ReadBatch
// amortizes all of that over thousands of records: the driver hands the
// stream a scratch slice, the stream fills as much of it as it can, and
// the driver's inner loop runs over a plain []Branch with no calls.
//
// Contract: ReadBatch fills dst from the front and returns the number of
// records written. n == len(dst) with a nil error means the stream may
// have more. n < len(dst) happens only at end of stream (err == io.EOF,
// possibly with n > 0 records delivered first) or on a read error (err
// non-nil, records [0,n) are valid). A zero-length dst returns (0, nil)
// without touching the stream. After an EOF or error return, subsequent
// calls return (0, same error).

// BatchReader is a branch stream that can deliver records in bulk.
// Implementations that also implement Reader must interleave correctly:
// mixing Read and ReadBatch calls observes one consistent stream.
type BatchReader interface {
	// ReadBatch fills dst with the next records of the stream and
	// returns how many were written; see the package contract above.
	ReadBatch(dst []Branch) (n int, err error)
}

// readerBatcher adapts a legacy one-record Reader to BatchReader by
// looping. It is the compatibility shim behind Batched: sources that
// predate the batch API keep working, paying only the per-record
// dispatch they always paid.
type readerBatcher struct {
	r   Reader
	err error // sticky terminal error
}

// ReadBatch implements BatchReader.
func (b *readerBatcher) ReadBatch(dst []Branch) (int, error) {
	if b.err != nil {
		return 0, b.err
	}
	for i := range dst {
		if err := b.r.Read(&dst[i]); err != nil {
			b.err = err
			return i, err
		}
	}
	return len(dst), nil
}

// Batched returns a BatchReader view of r: r itself when it already
// implements BatchReader, or a compatibility shim that loops over Read.
func Batched(r Reader) BatchReader {
	if br, ok := r.(BatchReader); ok {
		return br
	}
	return &readerBatcher{r: r}
}

// BatchSource is a Source whose streams support batched replay natively.
// Open and OpenBatch produce the same logical stream; OpenBatch avoids
// the per-record shim. Sources without native batch support are wrapped
// by OpenBatched instead.
type BatchSource interface {
	Source
	// OpenBatch returns a BatchReader positioned at the start of the
	// stream.
	OpenBatch() BatchReader
}

// OpenBatched opens src as a BatchReader: natively when src implements
// BatchSource (or its Reader implements BatchReader), shimmed otherwise.
func OpenBatched(src Source) BatchReader {
	if bs, ok := src.(BatchSource); ok {
		return bs.OpenBatch()
	}
	return Batched(src.Open())
}

// ReadBatch implements BatchReader natively for SliceReader: one copy
// from the backing slice, no per-record calls.
func (r *SliceReader) ReadBatch(dst []Branch) (int, error) {
	if len(dst) == 0 {
		return 0, nil
	}
	if r.pos >= len(r.branches) {
		return 0, io.EOF
	}
	n := copy(dst, r.branches[r.pos:])
	r.pos += n
	if n < len(dst) {
		return n, io.EOF
	}
	return n, nil
}

// OpenBatch implements BatchSource for SliceSource.
func (s *SliceSource) OpenBatch() BatchReader { return NewSliceReader(s.Branches) }

// ReadBatch implements BatchReader for LimitReader, delegating to the
// wrapped stream's batch path when it has one.
func (l *LimitReader) ReadBatch(dst []Branch) (int, error) {
	if l.n >= l.Max {
		return 0, io.EOF
	}
	if rem := l.Max - l.n; uint64(len(dst)) > rem {
		dst = dst[:rem]
	}
	if len(dst) == 0 {
		return 0, nil
	}
	if l.br == nil {
		l.br = Batched(l.R)
	}
	n, err := l.br.ReadBatch(dst)
	l.n += uint64(n)
	return n, err
}
