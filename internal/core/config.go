package core

import "fmt"

// Config parameterizes an LLBP instance. DefaultConfig returns the
// evaluated design point of §VI; the Figure 13/14 studies vary CtxType,
// D, NumContexts, PatternsPerSet, FullAssocCD and Buckets.
type Config struct {
	// HistLengths are LLBP's allowed pattern history lengths (16 in the
	// evaluated design, a subset of the baseline TAGE's lengths).
	HistLengths []HistLen
	// TagBits is the pattern-tag width (13).
	TagBits int
	// CtrBits is the prediction-counter width (3).
	CtrBits int
	// PatternsPerSet is the pattern-set size (16).
	PatternsPerSet int
	// Buckets is the number of history-length buckets per set (4);
	// 0 disables bucketing (free-form sets, the Figure 14 study mode).
	Buckets int
	// NumContexts is the pattern-set capacity of LLBP storage (14336 =
	// 2048 CD sets × 7 ways).
	NumContexts int
	// CDSets is the number of context-directory sets (2048). Ignored
	// when FullAssocCD is set.
	CDSets int
	// CIDBits is the context-ID width (14; the Figure 14 study uses 31).
	CIDBits int
	// FullAssocCD selects the fully associative context index of the
	// Figure 14 study.
	FullAssocCD bool
	// PBEntries and PBWays size the pattern buffer (64, 4).
	PBEntries int
	PBWays    int
	// W is the RCR hash window and D the prefetch distance, both counted
	// in context-feeding branches (8 and 4).
	W int
	D int
	// CtxType selects which branches feed the RCR (Figure 13).
	CtxType ContextType
	// PrefetchDelay is the CD+LLBP sequential access latency in cycles
	// (6, from the CACTI study plus one logic cycle); 0 models the
	// LLBP-0Lat configuration.
	PrefetchDelay float64
	// ShiftedHash enables the position-shifted CID hash (§V-E3); false
	// is the plain-XOR ablation.
	ShiftedHash bool
	// ReplacementLRU replaces the confidence-based pattern-set
	// replacement with plain LRU — the policy §V-D found to be poor;
	// kept as an ablation.
	ReplacementLRU bool
	// AutoDisable implements the §V power optimization ("when the
	// accuracy of TAGE is sufficiently high, LLBP can be disabled to
	// save power"): prediction-side LLBP activity is monitored over
	// windows of DisableWindow conditional branches. LLBP powers down
	// for a few windows when either (a) the baseline alone mispredicted
	// less than DisableMissFrac of the window — TAGE is sufficiently
	// accurate — or (b) LLBP was matching frequently yet its net
	// override benefit stayed below DisableThreshold. The first few
	// windows are a warm-up grace period, and every sleep ends in a
	// probation window so phase changes re-enable LLBP.
	AutoDisable bool
	// DisableWindow is the evaluation window in conditional branches
	// (default 32768 when AutoDisable is set).
	DisableWindow int
	// DisableThreshold is the minimum net useful overrides (good minus
	// bad) per window that keeps a frequently-matching LLBP enabled
	// (default 8).
	DisableThreshold int
	// DisableMissFrac is the baseline misprediction fraction below
	// which TAGE counts as "sufficiently accurate" (default 0.002).
	DisableMissFrac float64
	// Label overrides the derived name.
	Label string
}

// DefaultConfig returns the paper's evaluated 512KB LLBP design point.
func DefaultConfig() Config {
	return Config{
		HistLengths:    append([]HistLen(nil), DefaultHistLengths...),
		TagBits:        13,
		CtrBits:        3,
		PatternsPerSet: 16,
		Buckets:        4,
		NumContexts:    14336,
		CDSets:         2048,
		CIDBits:        14,
		PBEntries:      64,
		PBWays:         4,
		W:              8,
		D:              4,
		CtxType:        CtxUncond,
		PrefetchDelay:  6,
		ShiftedHash:    true,
		Label:          "LLBP",
	}
}

// ZeroLatConfig returns the LLBP-0Lat configuration used to quantify the
// cost of late prefetches (§VI).
func ZeroLatConfig() Config {
	c := DefaultConfig()
	c.PrefetchDelay = 0
	c.Label = "LLBP-0Lat"
	return c
}

// VirtualizedConfig models the §V-A future-work variant in which LLBP's
// bulk storage is virtualized into the L2 cache instead of a dedicated
// array: pattern-set transfers pay an L2-like access latency, and the
// prefetch distance is doubled to buy the prefetcher more lead time.
func VirtualizedConfig() Config {
	c := DefaultConfig()
	c.PrefetchDelay = 16 // L2 hit latency at 4GHz
	c.D = 8
	c.Label = "LLBP-Virt"
	return c
}

// AutoDisableConfig returns the default design with the §V power
// optimization enabled.
func AutoDisableConfig() Config {
	c := DefaultConfig()
	c.AutoDisable = true
	c.DisableWindow = 32768
	c.DisableThreshold = 8
	c.DisableMissFrac = 0.002
	c.Label = "LLBP-AutoOff"
	return c
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if len(c.HistLengths) == 0 {
		return fmt.Errorf("core: no history lengths configured")
	}
	prev := 0
	for i, h := range c.HistLengths {
		if h.Len < prev {
			return fmt.Errorf("core: history lengths must be non-decreasing (index %d: %d after %d)", i, h.Len, prev)
		}
		if h.Len == prev && !h.AltHash && i > 0 && !c.HistLengths[i-1].AltHash {
			return fmt.Errorf("core: duplicate history length %d without AltHash", h.Len)
		}
		prev = h.Len
	}
	if len(c.HistLengths) > 256 {
		return fmt.Errorf("core: at most 256 history lengths supported")
	}
	if c.TagBits < 4 || c.TagBits > 31 {
		return fmt.Errorf("core: tagBits %d out of range [4,31]", c.TagBits)
	}
	if c.CtrBits < 2 || c.CtrBits > 7 {
		return fmt.Errorf("core: ctrBits %d out of range [2,7]", c.CtrBits)
	}
	if c.PatternsPerSet <= 0 || c.PatternsPerSet > 256 {
		return fmt.Errorf("core: patternsPerSet %d out of range [1,256]", c.PatternsPerSet)
	}
	if c.Buckets > 0 && c.PatternsPerSet%c.Buckets != 0 {
		return fmt.Errorf("core: patternsPerSet %d not divisible by %d buckets", c.PatternsPerSet, c.Buckets)
	}
	if c.NumContexts <= 0 {
		return fmt.Errorf("core: numContexts %d must be positive", c.NumContexts)
	}
	if !c.FullAssocCD {
		if c.CDSets <= 0 || c.CDSets&(c.CDSets-1) != 0 {
			return fmt.Errorf("core: CDSets %d must be a positive power of two", c.CDSets)
		}
		if c.NumContexts%c.CDSets != 0 {
			return fmt.Errorf("core: numContexts %d not divisible by CDSets %d", c.NumContexts, c.CDSets)
		}
	}
	if c.CIDBits < 4 || c.CIDBits > 63 {
		return fmt.Errorf("core: cidBits %d out of range [4,63]", c.CIDBits)
	}
	if c.PBEntries <= 0 || c.PBWays <= 0 || c.PBEntries%c.PBWays != 0 {
		return fmt.Errorf("core: invalid PB geometry %d/%d", c.PBEntries, c.PBWays)
	}
	if c.W <= 0 || c.D < 0 {
		return fmt.Errorf("core: invalid RCR window W=%d D=%d", c.W, c.D)
	}
	if c.PrefetchDelay < 0 {
		return fmt.Errorf("core: negative prefetch delay %v", c.PrefetchDelay)
	}
	return nil
}

// PatternBits returns the storage cost of one pattern in bits
// (counter + tag + in-bucket length field).
func (c Config) PatternBits() int {
	lenBits := 2
	if c.Buckets <= 0 {
		// Free-form sets need the full length index.
		lenBits = bitsFor(len(c.HistLengths))
	}
	return c.CtrBits + c.TagBits + lenBits
}

// PatternSetBits returns the storage cost of one pattern set in bits
// (288 in the evaluated design).
func (c Config) PatternSetBits() int { return c.PatternBits() * c.PatternsPerSet }

// StorageBits returns (llbpBits, cdBits, pbBits): the bulk LLBP storage,
// the context directory, and the pattern buffer, in bits. The evaluated
// design is 504KiB + 8.75KiB + 2.25KiB (§VI).
func (c Config) StorageBits() (llbpBits, cdBits, pbBits int) {
	llbpBits = c.PatternSetBits() * c.NumContexts
	cdTag := 3
	if c.FullAssocCD {
		cdTag = c.CIDBits
	} else {
		cdTag = c.CIDBits - bitsFor(c.CDSets-1)
	}
	cdBits = c.NumContexts * (cdTag + 2 + 1) // tag + 2b conf + valid
	pbBits = c.PBEntries * (c.PatternSetBits() + c.CIDBits + 2)
	return
}

// bitsFor returns the number of bits needed to represent values 0..n-1
// (at least 1).
func bitsFor(n int) int {
	b := 1
	for 1<<uint(b) < n {
		b++
	}
	return b
}
