package core

import (
	"testing"
	"testing/quick"

	"llbp/internal/trace"
)

func TestRCRPrefetchBecomesCurrent(t *testing.T) {
	// The core RCR invariant (§V-C): the prefetch CID computed now must
	// equal the CCID after exactly D more pushes.
	r := NewRCR(8, 4, 14, true)
	pcs := []uint64{}
	next := uint64(0x400000)
	for i := 0; i < 64; i++ {
		next += 0x40 + uint64(i)*4
		r.Push(next)
		pcs = append(pcs, next)
		if i < 16 {
			continue // let the window fill
		}
		pcid := r.PrefetchCID()
		// Push D more branches.
		for d := 0; d < 4; d++ {
			next += 0x10
			r.Push(next)
		}
		if got := r.CCID(); got != pcid {
			t.Fatalf("step %d: CCID after D pushes = %#x, want prefetch CID %#x", i, got, pcid)
		}
	}
}

func TestRCRPrefetchInvariantProperty(t *testing.T) {
	f := func(wSeed, dSeed uint8, stream []uint16) bool {
		w := int(wSeed%16) + 1
		d := int(dSeed % 8)
		if len(stream) < w+2*d+2 {
			return true // not enough data to test
		}
		r := NewRCR(w, d, 20, true)
		// Fill the window.
		for _, s := range stream[:w+d] {
			r.Push(uint64(s) << 2)
		}
		pcid := r.PrefetchCID()
		for _, s := range stream[w+d : w+2*d] {
			r.Push(uint64(s) << 2)
		}
		return r.CCID() == pcid
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRCRZeroDistance(t *testing.T) {
	r := NewRCR(8, 0, 14, true)
	for i := 0; i < 20; i++ {
		r.Push(uint64(0x1000 + i*4))
	}
	if r.CCID() != r.PrefetchCID() {
		t.Error("with D=0 the CCID and prefetch CID must coincide")
	}
}

func TestRCRShiftedHashSeparatesRepeatedPCs(t *testing.T) {
	// §V-E3: with a plain XOR, an even number of identical PCs cancels;
	// shifting by position prevents that. Build two windows that differ
	// only in the order of the same multiset of PCs.
	mk := func(shifted bool, pcs []uint64) uint64 {
		r := NewRCR(4, 0, 31, shifted)
		for _, pc := range pcs {
			r.Push(pc)
		}
		return r.CCID()
	}
	a := []uint64{0x40, 0x80, 0x40, 0x80}
	b := []uint64{0x80, 0x40, 0x80, 0x40}
	if mk(false, a) != mk(false, b) {
		t.Error("plain XOR must be order-insensitive (sanity check)")
	}
	if mk(true, a) == mk(true, b) {
		t.Error("shifted hash must distinguish different orders of the same PCs")
	}
	// And a window of one repeated PC must not collapse to zero
	// contribution differences across widths.
	loopA := []uint64{0x40, 0x40, 0x40, 0x40}
	loopB := []uint64{0x40, 0x40, 0x80, 0x80}
	if mk(true, loopA) == mk(true, loopB) {
		t.Error("shifted hash failed to separate distinct loop windows")
	}
}

func TestRCRCIDWidth(t *testing.T) {
	r := NewRCR(8, 4, 14, true)
	for i := 0; i < 100; i++ {
		r.Push(uint64(0x400000 + i*0x88))
		if cid := r.CCID(); cid >= 1<<14 {
			t.Fatalf("CCID %#x exceeds 14 bits", cid)
		}
		if cid := r.PrefetchCID(); cid >= 1<<14 {
			t.Fatalf("prefetch CID %#x exceeds 14 bits", cid)
		}
	}
}

func TestRCRSnapshotRestore(t *testing.T) {
	r := NewRCR(6, 2, 20, true)
	for i := 0; i < 30; i++ {
		r.Push(uint64(0x1000 + i*12))
	}
	snap := r.Snapshot()
	want := r.CCID()
	for i := 0; i < 10; i++ {
		r.Push(uint64(0x9000 + i*4))
	}
	r.Restore(snap)
	if got := r.CCID(); got != want {
		t.Errorf("restored CCID = %#x, want %#x", got, want)
	}
	if got := r.PrefetchCID(); got == 0 {
		_ = got // value depends on content; just ensure no panic
	}
}

func TestRCRWindowAccessor(t *testing.T) {
	r := NewRCR(8, 4, 14, true)
	if w, d := r.Window(); w != 8 || d != 4 {
		t.Errorf("Window() = %d,%d", w, d)
	}
}

func TestRCRPanicsOnBadArgs(t *testing.T) {
	for _, fn := range []func(){
		func() { NewRCR(0, 4, 14, true) },
		func() { NewRCR(65, 4, 14, true) },
		func() { NewRCR(8, -1, 14, true) },
		func() { NewRCR(8, 4, 3, true) },
		func() { NewRCR(8, 4, 64, true) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestContextTypeFeeds(t *testing.T) {
	cases := []struct {
		ct    ContextType
		bt    trace.BranchType
		taken bool
		want  bool
	}{
		{CtxUncond, trace.Call, true, true},
		{CtxUncond, trace.Jump, true, true},
		{CtxUncond, trace.Return, true, true},
		{CtxUncond, trace.CondDirect, true, false},
		{CtxCallRet, trace.Call, true, true},
		{CtxCallRet, trace.IndirectCall, true, true},
		{CtxCallRet, trace.Return, true, true},
		{CtxCallRet, trace.Jump, true, false},
		{CtxCallRet, trace.CondDirect, true, false},
		{CtxAll, trace.Jump, true, true},
		{CtxAll, trace.CondDirect, true, true},
		{CtxAll, trace.CondDirect, false, false},
	}
	for _, c := range cases {
		if got := c.ct.Feeds(c.bt, c.taken); got != c.want {
			t.Errorf("%v.Feeds(%v, %v) = %v, want %v", c.ct, c.bt, c.taken, got, c.want)
		}
	}
}

func TestContextTypeString(t *testing.T) {
	if CtxUncond.String() != "Uncond" || CtxCallRet.String() != "Call/Ret" || CtxAll.String() != "All" {
		t.Error("context type names changed — Figure 13 labels depend on them")
	}
}
