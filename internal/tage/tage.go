package tage

import (
	"fmt"

	"llbp/internal/assert"
	"llbp/internal/bimodal"
	"llbp/internal/history"
	"llbp/internal/telemetry"
	"llbp/internal/trace"
)

// entry is one tagged-table pattern: a partial tag, a signed prediction
// counter whose sign is the direction, and a useful bit guiding
// replacement (§II-B).
type entry struct {
	tag    uint32
	ctr    int8
	useful uint8
}

// tableFolds is one tagged table's folded-history registers, grouped so
// the per-branch history update touches contiguous memory.
type tableFolds struct {
	idx  history.Folded
	tag1 history.Folded
	tag2 history.Folded
}

// infKey identifies a pattern in infinite mode: the full branch PC plus
// the unmodified index and tag hashes. Including the PC removes all
// aliasing while leaving the hash functions untouched, exactly the paper's
// Inf construction.
type infKey struct {
	pc  uint64
	idx uint32
	tag uint32
}

// Predictor is a TAGE predictor instance. It is not safe for concurrent
// use; the simulation driver is single-threaded per predictor.
type Predictor struct {
	cfg Config

	bim *bimodal.Table

	// Finite storage: tables[i] has 1<<LogEntries[i] entries.
	tables [][]entry
	// Infinite storage: one unbounded associative map per table.
	inf []map[infKey]*entry

	ghr      *history.Global
	path     *history.Path
	// One table's three folded registers live side by side: pushHistory
	// walks all of them every branch, and grouping per table turns three
	// slice walks (with three bounds checks per table) into one
	// cache-line-friendly sweep.
	folds []tableFolds

	useAltOnNA int8 // 4-bit counter: >=0 means trust alt over newly allocated providers
	tick       int  // useful-bit aging counter

	rng uint64 // xorshift64* state

	// Per-prediction scratch, filled by Predict and consumed by Update.
	scratch scratch

	// Stats counters (cumulative; the sim layer snapshots them).
	allocFailures uint64
	allocations   uint64

	// Telemetry instruments (nil = detached no-ops).
	telAllocs       *telemetry.Counter
	telAllocFails   *telemetry.Counter
	telProviderLens *telemetry.Histogram
}

// AttachTelemetry wires the predictor's allocator counters and the
// provider-length histogram to reg (nil detaches). Implements
// telemetry.Attachable.
func (p *Predictor) AttachTelemetry(reg *telemetry.Registry) {
	p.telAllocs = reg.Counter("tage_allocs")
	p.telAllocFails = reg.Counter("tage_alloc_failures")
	p.telProviderLens = reg.Histogram("tage_provider_len",
		telemetry.ExponentialBuckets(4, 2, 10))
}

// scratch carries one prediction's intermediate state from Predict to
// Update (the CBP harness guarantees the pairing).
type scratch struct {
	pc          uint64
	idx         [64]uint32
	tag         [64]uint32
	provider    int // table index of longest match, -1 if none
	alt         int // table index of next-longest match, -1 if bimodal
	providerKey infKey
	altKey      infKey
	providerCtr int8
	predTaken   bool
	altTaken    bool
	bimTaken    bool
	newlyAlloc  bool // provider entry looked newly allocated
	finalTaken  bool
}

// New constructs a TAGE predictor from cfg.
func New(cfg Config) (*Predictor, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := len(cfg.HistLengths)
	if n > 64 {
		return nil, fmt.Errorf("tage: at most 64 tables supported, got %d", n)
	}
	p := &Predictor{
		cfg:  cfg,
		bim:  bimodal.New(cfg.BimodalLog),
		ghr:  history.NewGlobal(),
		path: history.NewPath(cfg.PathBits),
		rng:  cfg.Seed | 1,
	}
	if cfg.Infinite {
		p.inf = make([]map[infKey]*entry, n)
		for i := range p.inf {
			p.inf[i] = make(map[infKey]*entry)
		}
	} else {
		p.tables = make([][]entry, n)
		for i := range p.tables {
			p.tables[i] = make([]entry, 1<<uint(cfg.LogEntries[i]))
		}
	}
	p.folds = make([]tableFolds, n)
	for i := 0; i < n; i++ {
		idxBits := cfg.LogEntries[i]
		if cfg.Infinite {
			// Keep the same fold widths as the finite baseline so
			// the hash functions are unchanged.
			idxBits = 10
		}
		p.folds[i] = tableFolds{
			idx:  history.NewFoldedValue(cfg.HistLengths[i], idxBits),
			tag1: history.NewFoldedValue(cfg.HistLengths[i], cfg.TagBits[i]),
			tag2: history.NewFoldedValue(cfg.HistLengths[i], cfg.TagBits[i]-1),
		}
	}
	return p, nil
}

// Name implements predictor.Predictor.
func (p *Predictor) Name() string {
	if p.cfg.Infinite {
		return "Inf TAGE"
	}
	return fmt.Sprintf("TAGE-%dKB", p.cfg.StorageBits()/8/1024)
}

// Config returns the predictor's configuration.
func (p *Predictor) Config() Config { return p.cfg }

func (p *Predictor) nextRand() uint64 {
	// xorshift64*: deterministic, cheap, good enough for allocation
	// tie-breaking.
	x := p.rng
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	p.rng = x
	return x * 0x2545F4914F6CDD1D
}

// index computes the table index hash for table i: branch PC mixed with the
// folded global history and the path history, as in the CBP designs.
func (p *Predictor) index(pc uint64, i int) uint32 {
	logE := uint(p.cfg.LogEntries[i])
	if p.cfg.Infinite {
		logE = 10
	}
	h := (pc >> 2) ^ (pc >> (logE - uint(i&3))) ^ p.folds[i].idx.Value()
	if p.cfg.HistLengths[i] >= 16 {
		h ^= p.path.Value() >> uint(i&7)
	} else {
		h ^= p.path.Value()
	}
	return uint32(h & (uint64(1)<<logE - 1))
}

// tagHash computes the partial tag for table i.
func (p *Predictor) tagHash(pc uint64, i int) uint32 {
	f := &p.folds[i]
	h := (pc >> 2) ^ f.tag1.Value() ^ (f.tag2.Value() << 1)
	return uint32(h & (uint64(1)<<uint(p.cfg.TagBits[i]) - 1))
}

func (p *Predictor) ctrMax() int8 { return int8(1)<<(p.cfg.CounterBits-1) - 1 }
func (p *Predictor) ctrMin() int8 { return -int8(1) << (p.cfg.CounterBits - 1) }

// lookup returns the entry for (pc, table i) if its tag matches, else nil.
func (p *Predictor) lookup(i int, pc uint64, idx, tag uint32) *entry {
	if p.cfg.Infinite {
		return p.inf[i][infKey{pc, idx, tag}]
	}
	e := &p.tables[i][idx]
	if e.tag == tag && (e.ctr != 0 || e.useful != 0 || e.tag != 0) {
		// The zero entry (tag 0, ctr 0, useful 0) is treated as
		// invalid so that a cold table never spuriously matches
		// tag-0 branches.
		return e
	}
	return nil
}

// Predict implements predictor.Predictor. It records full provenance in
// the scratch area for Update and LastDetail.
func (p *Predictor) Predict(pc uint64) bool {
	s := &p.scratch
	s.pc = pc
	s.provider, s.alt = -1, -1
	n := len(p.cfg.HistLengths)
	for i := 0; i < n; i++ {
		s.idx[i] = p.index(pc, i)
		s.tag[i] = p.tagHash(pc, i)
	}
	for i := n - 1; i >= 0; i-- {
		if e := p.lookup(i, pc, s.idx[i], s.tag[i]); e != nil {
			if s.provider < 0 {
				s.provider = i
				s.providerKey = infKey{pc, s.idx[i], s.tag[i]}
				s.providerCtr = e.ctr
				s.predTaken = e.ctr >= 0
				s.newlyAlloc = e.useful == 0 && (e.ctr == 0 || e.ctr == -1)
			} else {
				s.alt = i
				s.altKey = infKey{pc, s.idx[i], s.tag[i]}
				s.altTaken = e.ctr >= 0
				break
			}
		}
	}
	s.bimTaken = p.bim.Predict(pc)
	if s.provider < 0 {
		s.finalTaken = s.bimTaken
		p.telProviderLens.Observe(0)
		return s.finalTaken
	}
	p.telProviderLens.Observe(float64(p.cfg.HistLengths[s.provider]))
	if s.alt < 0 {
		s.altTaken = s.bimTaken
	}
	// Newly allocated entries are unreliable; a global use-alt-on-na
	// counter arbitrates (Seznec's TAGE heuristic).
	if s.newlyAlloc && p.useAltOnNA >= 0 {
		s.finalTaken = s.altTaken
	} else {
		s.finalTaken = s.predTaken
	}
	return s.finalTaken
}

// providerEntry returns the scratch provider's entry, or nil.
func (p *Predictor) providerEntry() *entry {
	s := &p.scratch
	if s.provider < 0 {
		return nil
	}
	return p.lookup(s.provider, s.pc, s.idx[s.provider], s.tag[s.provider])
}

// Update implements predictor.Predictor: trains counters and useful bits,
// allocates longer-history patterns on mispredictions, and finally pushes
// the outcome into the global/path/folded histories.
//
//llbplint:sink -- predictor tables define simulated accuracy; training on a nondeterministic value forks the trajectory
func (p *Predictor) Update(pc uint64, taken bool) {
	s := &p.scratch
	if pc != s.pc {
		assert.Failf("tage: Update(%#x) without matching Predict (last %#x)", pc, s.pc)
	}
	p.train(taken, s.finalTaken != taken)
	p.pushHistory(pc, taken, true)
}

// UpdateNoAlloc trains the provider (counters, useful bits, use-alt) but
// suppresses new-pattern allocation and history update. The LLBP composite
// uses it when LLBP overrides TAGE: "only the providing component is
// updated ... TAGE will cancel its update" (§V-D) — but allocation on a
// *provider* misprediction is handled by LLBP, not TAGE, in that case.
//
//llbplint:sink -- predictor tables define simulated accuracy; training on a nondeterministic value forks the trajectory
func (p *Predictor) UpdateNoAlloc(pc uint64, taken bool) {
	s := &p.scratch
	if pc != s.pc {
		assert.Failf("tage: UpdateNoAlloc(%#x) without matching Predict (last %#x)", pc, s.pc)
	}
	p.trainProviderOnly(taken)
	p.pushHistory(pc, taken, true)
}

// train performs the full TAGE update given the resolved direction.
func (p *Predictor) train(taken bool, _ bool) {
	s := &p.scratch
	p.trainProviderOnly(taken)
	// Allocate a new pattern with a longer history when the TAGE
	// prediction (provider or chosen alt) was wrong.
	if s.finalTaken != taken && s.provider < len(p.cfg.HistLengths)-1 {
		p.allocate(taken)
	}
}

// trainProviderOnly updates the providing component's counter, the useful
// bit, the use-alt-on-na counter and the bimodal fallback — everything but
// allocation.
func (p *Predictor) trainProviderOnly(taken bool) {
	s := &p.scratch
	if s.provider < 0 {
		p.bim.Update(s.pc, taken)
		return
	}
	e := p.providerEntry()
	if e == nil {
		// The provider entry can only vanish in infinite mode if a
		// concurrent mutation removed it; treat as bimodal.
		p.bim.Update(s.pc, taken)
		return
	}
	// use-alt-on-na bookkeeping: when the provider looked newly
	// allocated and the two predictions differ, learn which to trust.
	if s.newlyAlloc && s.predTaken != s.altTaken {
		if s.predTaken == taken {
			if p.useAltOnNA > -8 {
				p.useAltOnNA--
			}
		} else if p.useAltOnNA < 7 {
			p.useAltOnNA++
		}
	}
	// Update the provider counter.
	if taken {
		if e.ctr < p.ctrMax() {
			e.ctr++
		}
	} else if e.ctr > p.ctrMin() {
		e.ctr--
	}
	// Useful-bit policy (§II-B): set when the provider was correct and
	// the alternate prediction was wrong; clear when both were correct
	// (the longer pattern is redundant).
	if s.predTaken != s.altTaken {
		if s.predTaken == taken {
			e.useful = 1
		}
	} else if e.useful == 1 && s.predTaken == taken && s.provider >= 0 && s.alt >= 0 {
		// Both tagged patterns agree and are correct: the longer
		// history is not needed; decay its usefulness.
		e.useful = 0
	}
	// When the alternate prediction came from the bimodal, keep the
	// bimodal trained too (it is the ultimate fallback).
	if s.alt < 0 {
		p.bim.Update(s.pc, taken)
	}
}

// allocate inserts the mispredicted branch into (up to two) tables with a
// longer history than the provider, following the championship policy:
// randomized start table, victim must have useful == 0, and repeated
// failures age all useful bits via the tick counter.
func (p *Predictor) allocate(taken bool) {
	s := &p.scratch
	n := len(p.cfg.HistLengths)
	start := s.provider + 1
	// Skew the start table geometrically: with probability 1/2 start one
	// table further, 1/4 two further — spreads allocations across
	// history lengths (Seznec).
	r := p.nextRand()
	for r&1 == 1 && start < n-1 {
		start++
		r >>= 1
	}
	if p.cfg.Infinite {
		// Unbounded associativity: allocation always succeeds in the
		// chosen table.
		i := start
		if i >= n {
			i = n - 1
		}
		k := infKey{s.pc, s.idx[i], s.tag[i]}
		if _, ok := p.inf[i][k]; !ok {
			p.inf[i][k] = &entry{tag: s.tag[i], ctr: weakCtr(taken)}
			p.allocations++
			p.telAllocs.Inc()
		}
		return
	}
	allocated := 0
	failures := 0
	for i := start; i < n && allocated < 2; i++ {
		e := &p.tables[i][s.idx[i]]
		if e.useful == 0 {
			e.tag = s.tag[i]
			e.ctr = weakCtr(taken)
			e.useful = 0
			allocated++
			p.allocations++
			p.telAllocs.Inc()
			i++ // leave a gap before the second allocation
		} else {
			failures++
		}
	}
	// Tick-based aging: net allocation failures gradually force a global
	// useful-bit reset so stale patterns can be recycled.
	p.tick += failures - allocated
	if p.tick < 0 {
		p.tick = 0
	}
	if p.tick >= tickThreshold {
		p.tick = 0
		for t := range p.tables {
			tbl := p.tables[t]
			for j := range tbl {
				tbl[j].useful = 0
			}
		}
	}
	if allocated == 0 {
		p.allocFailures++
		p.telAllocFails.Inc()
	}
}

// tickThreshold is the number of net allocation failures that triggers a
// global useful-bit reset.
const tickThreshold = 16384

// weakCtr returns the weak counter value encoding the given direction.
func weakCtr(taken bool) int8 {
	if taken {
		return 0
	}
	return -1
}

// TrackOther implements predictor.Predictor: unconditional transfers
// contribute a taken bit (and their PC) to the histories, as in the CBP
// harness.
func (p *Predictor) TrackOther(pc, target uint64, t trace.BranchType) {
	_ = target
	_ = t
	p.pushHistory(pc, true, false)
}

// pushHistory advances the global, path and folded histories by one branch.
func (p *Predictor) pushHistory(pc uint64, taken bool, _ bool) {
	p.ghr.Push(taken)
	p.path.Push(pc >> 2)
	in := uint64(0)
	if taken {
		in = 1
	}
	// The index/tag1/tag2 folds of one table share a history length, so
	// one outgoing-bit read serves all three.
	for i := range p.folds {
		f := &p.folds[i]
		out := p.ghr.Bit(f.idx.OrigLength)
		f.idx.UpdateBits(in, out)
		f.tag1.UpdateBits(in, out)
		f.tag2.UpdateBits(in, out)
	}
}

// LastConfident reports whether the last prediction came from a saturated
// (high-confidence) provider counter, or — for bimodal predictions — a
// reinforced bimodal entry.
func (p *Predictor) LastConfident() bool {
	s := &p.scratch
	if s.provider < 0 {
		return p.bim.Confident(s.pc)
	}
	return s.providerCtr >= p.ctrMax() || s.providerCtr <= p.ctrMin()+1
}

// UpdateHistoryOnly advances the histories for a conditional branch without
// training any counters or allocating patterns. The LLBP composite calls
// this when LLBP provides the prediction and TAGE "cancels its update"
// (§V-D).
//
//llbplint:sink -- predictor tables define simulated accuracy; training on a nondeterministic value forks the trajectory
func (p *Predictor) UpdateHistoryOnly(pc uint64, taken bool) {
	s := &p.scratch
	if pc != s.pc {
		assert.Failf("tage: UpdateHistoryOnly(%#x) without matching Predict (last %#x)", pc, s.pc)
	}
	p.pushHistory(pc, taken, true)
}

// ProviderLen returns the history length of the last prediction's provider
// (0 when the bimodal provided).
func (p *Predictor) ProviderLen() int {
	if p.scratch.provider < 0 {
		return 0
	}
	return p.cfg.HistLengths[p.scratch.provider]
}

// LastProviderTable returns the provider table index of the last
// prediction, or -1 for bimodal.
func (p *Predictor) LastProviderTable() int { return p.scratch.provider }

// LastAltTaken returns the alternate prediction of the last Predict.
func (p *Predictor) LastAltTaken() bool { return p.scratch.altTaken }

// LastTaken returns the final TAGE prediction of the last Predict.
func (p *Predictor) LastTaken() bool { return p.scratch.finalTaken }

// LastPatternKey returns a stable identifier of the providing pattern of
// the last prediction (0 when the bimodal provided). Experiments use it to
// count distinct useful patterns per branch (Figures 3b and 5).
func (p *Predictor) LastPatternKey() uint64 {
	s := &p.scratch
	if s.provider < 0 {
		return 0
	}
	k := s.providerKey
	return 1 | uint64(s.provider)<<1 | uint64(k.idx)<<8 | uint64(k.tag)<<32 | k.pc<<48
}

// Allocations returns the cumulative number of successful pattern
// allocations.
func (p *Predictor) Allocations() uint64 { return p.allocations }

// AllocFailures returns the cumulative number of mispredictions for which
// no pattern could be allocated.
func (p *Predictor) AllocFailures() uint64 { return p.allocFailures }

// PatternCount returns the number of live patterns (infinite mode) or the
// total table capacity (finite mode).
func (p *Predictor) PatternCount() int {
	if p.cfg.Infinite {
		n := 0
		for _, m := range p.inf {
			n += len(m)
		}
		return n
	}
	n := 0
	for _, t := range p.tables {
		n += len(t)
	}
	return n
}

// HistoryCheckpoint captures TAGE's speculative state: the global, path
// and folded history registers. Prediction tables are not included —
// they train at commit and are never speculatively modified, so a
// checkpoint is a few hundred bits of registers, exactly the §V-E2
// recovery scheme (snapshotting folded histories in each branch's
// checkpoint).
type HistoryCheckpoint struct {
	ghr      history.Global
	path     uint64
	foldIdx  []uint64
	foldTag1 []uint64
	foldTag2 []uint64
}

// CheckpointHistory snapshots the speculative history state.
func (p *Predictor) CheckpointHistory() *HistoryCheckpoint {
	cp := &HistoryCheckpoint{
		ghr:      p.ghr.Snapshot(),
		path:     p.path.Snapshot(),
		foldIdx:  make([]uint64, len(p.folds)),
		foldTag1: make([]uint64, len(p.folds)),
		foldTag2: make([]uint64, len(p.folds)),
	}
	for i := range p.folds {
		cp.foldIdx[i] = p.folds[i].idx.Snapshot()
		cp.foldTag1[i] = p.folds[i].tag1.Snapshot()
		cp.foldTag2[i] = p.folds[i].tag2.Snapshot()
	}
	return cp
}

// RestoreHistory rewinds the speculative history state to a checkpoint
// (the misprediction-recovery path of §V-E2).
func (p *Predictor) RestoreHistory(cp *HistoryCheckpoint) {
	if len(cp.foldIdx) != len(p.folds) {
		assert.Failf("tage: checkpoint for %d tables restored into %d", len(cp.foldIdx), len(p.folds))
		return
	}
	p.ghr.Restore(cp.ghr)
	p.path.Restore(cp.path)
	for i := range p.folds {
		p.folds[i].idx.Restore(cp.foldIdx[i])
		p.folds[i].tag1.Restore(cp.foldTag1[i])
		p.folds[i].tag2.Restore(cp.foldTag2[i])
	}
}
