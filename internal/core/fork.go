package core

import (
	"llbp/internal/predictor"
	"llbp/internal/tsl"
)

var _ predictor.Forkable = (*Predictor)(nil)

// Fork implements predictor.Forkable: it returns an independent copy of
// the whole composite — the forked baseline, the RCR, the context
// directory, the pattern buffer, LLBP's history mirrors, the power-gate
// state machine and the cumulative stats. The bulk pattern storage is
// NOT copied eagerly: directory entries on both sides are marked
// copy-on-write and each side clones a pattern set only on its first
// write to it (see CDEntry.ownSet), so a fork costs O(directory) rather
// than O(patterns).
//
// clock becomes the child's time base and is advanced to the parent's
// current cycle, keeping the pattern buffer's prefetch-ready deadlines
// (absolute cycles) meaningful; pass the clock the child's driver will
// advance, or nil for a detached one. Call at a branch boundary (after
// Update, before the next Predict).
func (p *Predictor) Fork(clock *predictor.Clock) predictor.Predictor {
	if clock == nil {
		clock = &predictor.Clock{}
	}
	clock.Reset()
	clock.Advance(p.clock.NowF())
	out := *p
	out.base = p.base.Fork(nil).(*tsl.Predictor)
	out.clock = clock
	out.rcr = p.rcr.fork()
	dir, remap := p.dir.fork()
	out.dir = dir
	out.pb = p.pb.fork(remap)
	// Clone the shared history engine and rebind the forked baseline's
	// TAGE to the clone; the cached fold locations (f1Loc/f2Loc/lenFold)
	// are immutable after construction and valid for the clone, so the
	// child shares them.
	out.eng = p.eng.Clone()
	out.base.TAGE().RebindHistoryEngine(out.eng)
	out.tel = coreTel{}
	// The per-prediction scratch points into the parent's pattern
	// buffer; at a branch boundary it is dead, so the child starts with
	// it cleared rather than aliased.
	out.pbe = nil
	return &out
}

// fork deep-copies the rolling context register.
func (r *RCR) fork() *RCR {
	out := *r
	out.pcs = append([]uint64(nil), r.pcs...)
	return &out
}

// fork duplicates the directory. Pattern sets are values inside the
// entries, so the row copy IS the pattern-storage copy — one flat memcpy
// per set row, no per-pattern work (sets that spilled to a heap extension
// are unshared explicitly). It returns the copy plus a CID -> new-entry
// map so the pattern buffer can rebind its cached pointers into the
// copied directory.
func (d *Directory) fork() (*Directory, map[uint64]*CDEntry) {
	out := *d
	if d.assoc != nil {
		remap := make(map[uint64]*CDEntry, len(d.entries))
		out.assoc = make(map[uint64]*CDEntry, len(d.entries))
		out.entries = make([]*CDEntry, len(d.entries))
		for i, e := range d.entries {
			ce := *e
			ce.Set.unshare()
			out.entries[i] = &ce
			out.assoc[ce.CID] = &ce
			remap[ce.CID] = &ce
		}
		return &out, remap
	}
	remap := make(map[uint64]*CDEntry)
	ways := 0
	if len(d.sets) > 0 {
		ways = len(d.sets[0])
	}
	out.sets, out.keys = cdRows(len(d.sets), ways)
	for i := range d.sets {
		row := out.sets[i]
		copy(row, d.sets[i])
		copy(out.keys[i], d.keys[i])
		for j := range row {
			if !row[j].Valid {
				continue
			}
			row[j].Set.unshare()
			remap[row[j].CID] = &row[j]
		}
	}
	return &out, remap
}

// fork duplicates the pattern buffer, rebinding every cached entry's
// directory pointer into the forked directory via the CID remap. An
// entry whose backing context is somehow absent (impossible while the
// CD-eviction invalidation invariant holds) is dropped rather than left
// aliasing the parent.
func (b *Buffer) fork(remap map[uint64]*CDEntry) *Buffer {
	out := *b
	out.sets = append([]pbSet(nil), b.sets...)
	for i := range out.sets {
		s := &out.sets[i]
		for w := 0; w < b.nways; w++ {
			if !s.ways[w].Valid {
				continue
			}
			ent := remap[s.ways[w].CID]
			if ent == nil {
				s.clearWay(w)
				continue
			}
			s.ways[w].Ent = ent
		}
	}
	return &out
}
