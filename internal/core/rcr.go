// Package core implements the Last-Level Branch Predictor (LLBP), the
// paper's contribution (§V): a large-capacity, context-organized pattern
// store backing an unmodified TAGE-SC-L predictor.
//
// The four hardware structures map to types in this package:
//
//   - RCR (rolling context register): hashes the PCs of recent
//     unconditional branches into the current context ID (CCID) and a
//     prefetch context ID computed D unconditional branches ahead.
//   - CD (context directory): a set-associative tag array mapping context
//     IDs to pattern sets, with confidence-based replacement.
//   - LLBP storage: the bulk pattern-set array (owned by the CD entries in
//     this model; the paper's direct-mapped layout is an implementation
//     detail of the physical array).
//   - PB (pattern buffer): a small, set-associative, LRU-managed cache of
//     pattern sets close to the core, fed by prefetches.
//
// Predictor composes all of the above with a tsl.Predictor and implements
// the longest-match arbitration between the two (§V-B).
package core

import (
	"fmt"

	"llbp/internal/assert"
	"llbp/internal/trace"
)

// ContextType selects which branch types feed the rolling context register
// — the Figure 13 design-space axis.
type ContextType uint8

const (
	// CtxUncond hashes all unconditional branches (jumps, calls,
	// returns; the paper's choice).
	CtxUncond ContextType = iota
	// CtxCallRet hashes only calls and returns.
	CtxCallRet
	// CtxAll hashes every branch, conditional included.
	CtxAll
)

// String returns the Figure 13 label of the context type.
func (t ContextType) String() string {
	switch t {
	case CtxUncond:
		return "Uncond"
	case CtxCallRet:
		return "Call/Ret"
	case CtxAll:
		return "All"
	default:
		return fmt.Sprintf("ContextType(%d)", uint8(t))
	}
}

// Feeds reports whether a branch of type bt (with outcome taken)
// contributes to this context history.
func (t ContextType) Feeds(bt trace.BranchType, taken bool) bool {
	switch t {
	case CtxUncond:
		return bt.IsUnconditional()
	case CtxCallRet:
		return bt.IsCallOrReturn()
	case CtxAll:
		return bt.IsUnconditional() || taken
	default:
		return false
	}
}

// RCR is the rolling context register (§V-C, Figure 8): a shift register of
// the PCs of the last W+D context-feeding branches. The current context ID
// (CCID) hashes the W entries that exclude the D most recent; the prefetch
// CID hashes the most recent W. When D more context-feeding branches
// execute, the prefetch CID becomes the CCID — giving the prefetcher a
// D-branch head start.
type RCR struct {
	pcs   []uint64 // ring buffer, len W+D
	head  int      // index of most recent PC
	w     int
	d     int
	bits  int  // CID width in bits
	shift bool // position-dependent shifting (§V-E3); false = plain XOR ablation
}

// NewRCR returns a rolling context register with hash window w, prefetch
// distance d, and cidBits-wide context IDs. shifted selects the paper's
// position-shifted XOR hash (§V-E3); passing false gives the plain-XOR
// ablation in which repeated PCs cancel.
func NewRCR(w, d, cidBits int, shifted bool) *RCR {
	if w <= 0 || w > 64 {
		panic(fmt.Sprintf("core: RCR window %d out of range [1,64]", w))
	}
	if d < 0 || d > 64 {
		panic(fmt.Sprintf("core: RCR distance %d out of range [0,64]", d))
	}
	if cidBits < 4 || cidBits > 63 {
		panic(fmt.Sprintf("core: cidBits %d out of range [4,63]", cidBits))
	}
	return &RCR{
		pcs:   make([]uint64, w+d),
		w:     w,
		d:     d,
		bits:  cidBits,
		shift: shifted,
	}
}

// Push records a new context-feeding branch PC.
func (r *RCR) Push(pc uint64) {
	r.head = (r.head + 1) % len(r.pcs)
	r.pcs[r.head] = pc
}

// hashWindow hashes the W PCs starting at `offset` branches before the most
// recent one. Position i (0 = newest in the window) is shifted by 2*i so
// repeated addresses in tight loops do not cancel (§V-E3).
func (r *RCR) hashWindow(offset int) uint64 {
	var h uint64
	for i := 0; i < r.w; i++ {
		pos := r.head - offset - i
		for pos < 0 {
			pos += len(r.pcs)
		}
		pc := r.pcs[pos] >> 1
		if r.shift {
			pc <<= uint(2*i) % 48
		}
		h ^= pc
	}
	// Fold the 64-bit mix down to the CID width.
	h ^= h >> uint(r.bits)
	h ^= h >> uint(2*r.bits)
	return h & (uint64(1)<<uint(r.bits) - 1)
}

// CCID returns the current context ID (excluding the D most recent
// context-feeding branches).
func (r *RCR) CCID() uint64 { return r.hashWindow(r.d) }

// PrefetchCID returns the context ID that will become current after D more
// context-feeding branches.
func (r *RCR) PrefetchCID() uint64 { return r.hashWindow(0) }

// Snapshot captures the register for checkpoint/rollback tests.
func (r *RCR) Snapshot() []uint64 {
	out := make([]uint64, len(r.pcs))
	for i := range out {
		pos := r.head - i
		for pos < 0 {
			pos += len(r.pcs)
		}
		out[i] = r.pcs[pos]
	}
	return out
}

// Restore rewinds the register to a snapshot taken with Snapshot.
func (r *RCR) Restore(s []uint64) {
	if len(s) != len(r.pcs) {
		assert.Failf("core: RCR snapshot length %d != %d", len(s), len(r.pcs))
		return
	}
	r.head = len(r.pcs) - 1
	for i, pc := range s {
		r.pcs[r.head-i] = pc
	}
}

// Window returns (W, D).
func (r *RCR) Window() (w, d int) { return r.w, r.d }
