package sim

import (
	"bytes"
	"encoding/json"
	"testing"

	"llbp/internal/telemetry"
	"llbp/internal/trace"
	"llbp/internal/trace/cache"
	"llbp/internal/tsl"
	"llbp/internal/workload"
)

// TestSamplingParity: telemetry-only, tracer-only and both-present runs
// must sample at identical measured-branch indices. The in-loop sentinel
// and the final partial-interval flush share one condition; this pins
// that: series point count == tracer counter-event count, for both an
// exact-multiple measure budget (no partial flush) and a ragged one
// (one partial flush).
func TestSamplingParity(t *testing.T) {
	const interval = 1_000
	run := func(measure uint64, reg *telemetry.Registry, tr *telemetry.Tracer) {
		t.Helper()
		p := &staticPredictor{taken: true}
		_, err := Run(mkSource(int(measure+500)), p, Options{
			WarmupBranches:  500,
			MeasureBranches: measure,
			SeriesInterval:  interval,
			Telemetry:       reg,
			Tracer:          tr,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	// Tracer counter samples are one JSON event each on the "sim:mock"
	// track; count them in the encoded stream.
	countTracerSamples := func(buf *bytes.Buffer) int {
		var events []map[string]any
		if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
			t.Fatalf("trace JSON: %v", err)
		}
		n := 0
		for _, ev := range events {
			if ev["ph"] == "C" && ev["name"] == "sim:mock" {
				n++
			}
		}
		return n
	}

	for _, tc := range []struct {
		name        string
		measure     uint64
		wantSamples int
	}{
		// 4000 measured branches = 4 full intervals; the final interval
		// boundary coincides with the end of measurement, and the flush
		// must not add a fifth point.
		{"exact multiple", 4 * interval, 4},
		// 4300 measured branches: 4 in-loop samples plus one partial
		// flush for the trailing 300.
		{"ragged tail", 4*interval + 300, 5},
	} {
		t.Run(tc.name, func(t *testing.T) {
			regOnly := telemetry.NewRegistry()
			run(tc.measure, regOnly, nil)
			telPoints := len(regOnly.Snapshot().Series["mpki"].Points)

			var traceOnly bytes.Buffer
			trc := telemetry.NewTracer(&traceOnly)
			run(tc.measure, nil, trc)
			if err := trc.Close(); err != nil {
				t.Fatal(err)
			}
			trPoints := countTracerSamples(&traceOnly)

			regBoth := telemetry.NewRegistry()
			var traceBoth bytes.Buffer
			trb := telemetry.NewTracer(&traceBoth)
			run(tc.measure, regBoth, trb)
			if err := trb.Close(); err != nil {
				t.Fatal(err)
			}
			bothTel := len(regBoth.Snapshot().Series["mpki"].Points)
			bothTr := countTracerSamples(&traceBoth)

			if telPoints != tc.wantSamples {
				t.Errorf("telemetry-only samples = %d, want %d", telPoints, tc.wantSamples)
			}
			if trPoints != tc.wantSamples {
				t.Errorf("tracer-only samples = %d, want %d", trPoints, tc.wantSamples)
			}
			if bothTel != tc.wantSamples || bothTr != tc.wantSamples {
				t.Errorf("both-present samples = %d tel / %d tracer, want %d",
					bothTel, bothTr, tc.wantSamples)
			}
		})
	}
}

// TestCacheHandleByteIdentical: replaying a workload through a
// materialized-trace cache handle must produce the same llbp-metrics/1
// document, byte for byte, as replaying the workload source directly.
// This is the guarantee that lets the harness swap the cache in
// underneath every experiment without perturbing published numbers.
func TestCacheHandleByteIdentical(t *testing.T) {
	const warm, meas = 10_000, 40_000
	snapshot := func(src trace.Source) []byte {
		t.Helper()
		p := tsl.MustNew(tsl.Config64K())
		reg := telemetry.NewRegistry()
		if _, err := Run(src, p, Options{
			WarmupBranches:  warm,
			MeasureBranches: meas,
			Telemetry:       reg,
			SeriesInterval:  4_096,
		}); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := telemetry.WriteMetricsFile(&buf, []telemetry.RunSnapshot{{
			Workload:  src.Name(),
			Predictor: p.Name(),
			Metrics:   reg.Snapshot(),
		}}); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	wl, err := workload.ByName("Chirper")
	if err != nil {
		t.Fatal(err)
	}
	direct := snapshot(wl)

	c := cache.New(64 << 20)
	h, err := c.Acquire(wl, warm+meas)
	if err != nil || h == nil {
		t.Fatalf("Acquire: %v, %v", h, err)
	}
	defer h.Release()
	cached := snapshot(h)
	// And a second replay of the same handle: zero-copy readers must not
	// consume or mutate the materialized buffer.
	cachedAgain := snapshot(h)

	if !bytes.Equal(direct, cached) {
		t.Error("cached replay diverges from direct replay")
	}
	if !bytes.Equal(direct, cachedAgain) {
		t.Error("second cached replay diverges (handle replay not idempotent)")
	}
}

// TestBatchBoundaryInvariance: results must not depend on how the
// stream is chunked. A source whose reader yields ragged, non-aligned
// batches produces the same Result as the aligned slice path.
func TestBatchBoundaryInvariance(t *testing.T) {
	branches := make([]trace.Branch, 20_000)
	copy(branches, mkSource(20_000).(*trace.SliceSource).Branches)

	aligned := &trace.SliceSource{SourceName: "mock", Branches: branches}
	ragged := &raggedSource{branches: branches}

	runOne := func(src trace.Source) *Result {
		t.Helper()
		res, err := Run(src, &staticPredictor{taken: false}, Options{
			WarmupBranches:  3_000,
			MeasureBranches: 17_000,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, r := runOne(aligned), runOne(ragged)
	if *a != *r {
		t.Errorf("ragged batching changed the result:\naligned: %+v\nragged:  %+v", *a, *r)
	}
}

// raggedSource yields batches of varying prime-ish sizes so batch
// boundaries never align with simBatchSize.
type raggedSource struct{ branches []trace.Branch }

func (s *raggedSource) Name() string { return "mock" }
func (s *raggedSource) Open() trace.Reader {
	return trace.NewSliceReader(s.branches)
}
func (s *raggedSource) OpenBatch() trace.BatchReader {
	return &raggedReader{r: trace.NewSliceReader(s.branches)}
}

type raggedReader struct {
	r    *trace.SliceReader
	call int
}

func (r *raggedReader) Read(b *trace.Branch) error { return r.r.Read(b) }
func (r *raggedReader) ReadBatch(dst []trace.Branch) (int, error) {
	sizes := [...]int{1, 7, 113, 1021, 37, 499}
	k := sizes[r.call%len(sizes)]
	r.call++
	if k > len(dst) {
		k = len(dst)
	}
	return r.r.ReadBatch(dst[:k])
}
