package sc

import (
	"math/rand"
	"testing"
)

func mustNew(t *testing.T) *Corrector {
	t.Helper()
	c, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestValidation(t *testing.T) {
	bad := []Config{
		{},
		{HistLengths: []int{0, 4}, LogEntries: 2, CounterBits: 6},
		{HistLengths: []int{0, 4}, LogEntries: 10, CounterBits: 1},
		{HistLengths: []int{0, 4}, LogEntries: 25, CounterBits: 6},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d must fail validation", i)
		}
	}
}

func TestScaled(t *testing.T) {
	cfg := DefaultConfig().Scaled(3)
	if cfg.LogEntries != DefaultConfig().LogEntries+3 {
		t.Errorf("Scaled(3) logEntries = %d", cfg.LogEntries)
	}
}

// TestLearnsAntiCorrelation: a branch whose outcome is the opposite of
// what a (deliberately wrong) primary prediction says, with no
// history-dependence — the statistically biased case the corrector is for.
func TestLearnsAntiCorrelation(t *testing.T) {
	c := mustNew(t)
	pc := uint64(0x4400)
	flips := 0
	const rounds = 2000
	for i := 0; i < rounds; i++ {
		// TAGE (simulated) always predicts not-taken with low
		// confidence; the real outcome is always taken.
		got := c.Correct(pc, false, false)
		c.Update(pc, true)
		c.Push(true)
		if got {
			flips++
		}
	}
	if flips < rounds/2 {
		t.Errorf("corrector flipped only %d/%d times on a fully biased branch", flips, rounds)
	}
}

// TestRespectsConfidentTAGE: the corrector must not flip confident
// primary predictions.
func TestRespectsConfidentTAGE(t *testing.T) {
	c := mustNew(t)
	pc := uint64(0x4400)
	// Train the corrector toward taken.
	for i := 0; i < 500; i++ {
		c.Correct(pc, false, false)
		c.Update(pc, true)
		c.Push(true)
	}
	if got := c.Correct(pc, false, true); got {
		t.Error("must not override a confident TAGE prediction")
	}
	c.Update(pc, true)
}

// TestDoesNotHurtRandom: on an unpredictable branch the corrector's flips
// must be neutral — accuracy with the corrector must stay within noise of
// the raw primary prediction accuracy (flipping on noise is allowed, net
// damage is not).
func TestDoesNotHurtRandom(t *testing.T) {
	c := mustNew(t)
	rng := rand.New(rand.NewSource(3))
	pc := uint64(0x999000)
	rawCorrect, scCorrect := 0, 0
	const rounds = 20000
	for i := 0; i < rounds; i++ {
		taken := rng.Intn(2) == 0
		tagePred := rng.Intn(2) == 0
		got := c.Correct(pc, tagePred, false)
		c.Update(pc, taken)
		c.Push(taken)
		if tagePred == taken {
			rawCorrect++
		}
		if got == taken {
			scCorrect++
		}
	}
	if delta := rawCorrect - scCorrect; delta > rounds*2/100 {
		t.Errorf("corrector cost %d correct predictions of %d on random data", delta, rounds)
	}
}

// TestHistoryCorrelation: outcome equals the outcome 3 branches ago; the
// GEHL components see folded history and can pick up the correlation that
// a (simulated weak) primary predictor misses.
func TestHistoryCorrelation(t *testing.T) {
	c := mustNew(t)
	pc := uint64(0x5500)
	hist := []bool{true, true, false}
	correct := 0
	const rounds = 4000
	for i := 0; i < rounds; i++ {
		taken := hist[len(hist)-3]
		got := c.Correct(pc, false, false)
		c.Update(pc, taken)
		c.Push(taken)
		hist = append(hist, taken)
		if i > rounds/2 && got == taken {
			correct++
		}
	}
	// hist[n-3] of a period-... wait: outcome = outcome 3 back, so the
	// sequence becomes periodic; the corrector must beat 60% in the
	// second half.
	if correct < rounds/2*60/100 {
		t.Errorf("corrector got %d/%d on history-correlated branch", correct, rounds/2)
	}
}

func TestFlippedAccessor(t *testing.T) {
	c := mustNew(t)
	pc := uint64(0x4400)
	for i := 0; i < 500; i++ {
		c.Correct(pc, false, false)
		c.Update(pc, true)
		c.Push(true)
	}
	got := c.Correct(pc, false, false)
	if got && !c.Flipped() {
		t.Error("Flipped() must report the override")
	}
	c.Update(pc, true)
}

func TestStorageBits(t *testing.T) {
	c := mustNew(t)
	cfg := DefaultConfig()
	// Components + bias + local bank + IMLI bank, plus the local
	// history registers.
	want := (len(cfg.HistLengths)+3)*cfg.CounterBits<<uint(cfg.LogEntries) + 256*11
	if got := c.StorageBits(); got != want {
		t.Errorf("StorageBits = %d, want %d", got, want)
	}
	lean := cfg
	lean.DisableLocal = true
	lean.DisableIMLI = true
	cl, err := New(lean)
	if err != nil {
		t.Fatal(err)
	}
	if cl.StorageBits() >= c.StorageBits() {
		t.Error("disabling components must shrink storage")
	}
}

// TestIMLILearnsIterationCorrelatedBranch: a branch inside a loop whose
// outcome fires only on iteration 5 of 8 — invisible to the bias table,
// directly indexed by the IMLI counter.
func TestIMLILearnsIterationCorrelatedBranch(t *testing.T) {
	c := mustNew(t)
	loopPC := uint64(0x7000)
	bodyPC := uint64(0x7004)
	correct, total := 0, 0
	const rounds = 3000
	for r := 0; r < rounds; r++ {
		for iter := 0; iter < 8; iter++ {
			// Loop back-edge: taken 7 times, then falls through.
			backTaken := iter < 7
			got := c.Correct(loopPC, true, false)
			_ = got
			c.UpdateWithTarget(loopPC, loopPC-0x40, backTaken)
			c.Push(backTaken)
			// Body branch: taken only on iteration 5; TAGE
			// (simulated) blindly predicts not-taken with low
			// confidence.
			taken := iter == 5
			pred := c.Correct(bodyPC, false, false)
			c.UpdateWithTarget(bodyPC, bodyPC+4, taken)
			c.Push(taken)
			if r > rounds/2 {
				total++
				if pred == taken {
					correct++
				}
			}
		}
	}
	if rate := float64(correct) / float64(total); rate < 0.9 {
		t.Errorf("IMLI-correlated branch accuracy %.3f, want >= 0.9", rate)
	}
}
