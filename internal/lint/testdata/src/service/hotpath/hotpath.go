// Package hotpath is the service-scope telemetry fixture. Its import
// path carries a "service" segment, so two rule sets apply: the
// telemetrysafe allocation rule (instrument update arguments must not
// allocate — plain wants) and the lockorder program analyzer's
// no-update-under-held-lock rule (lockorder-prefixed wants; the
// syntactic lock rule this replaces lived in telemetrysafe until v2).
package hotpath

import (
	"fmt"
	"sync"

	"telemetry"
)

// Good shows the intended shape: updates with precomputed scalar
// arguments, outside any critical section.
func Good(reg *telemetry.Registry, n int) {
	c := reg.Counter("cells_total")
	c.Inc()
	c.Add(uint64(n))
	reg.Gauge("queue_depth").Set(uint64(n + 1))
}

// AllocInArgs exercises the allocation findings inside update arguments.
func AllocInArgs(reg *telemetry.Registry, id string, xs []int) {
	c := reg.Counter("cells_total")
	g := reg.Gauge("queue_depth")

	c.Add(uint64(len(fmt.Sprintf("%s", id))))      // want `telemetry update argument calls fmt\.Sprintf in Add`
	c.Add(uint64(len(make([]int, len(xs)))))       // want `telemetry update argument allocates \(make in Add\)`
	c.Add(uint64(len(append(xs, 1))))              // want `telemetry update argument allocates \(append in Add\)`
	c.Add(uint64(len([]int{1, 2})))                // want `telemetry update argument allocates \(composite literal in Add\)`
	g.Set(uint64(len(id + "-suffix")))             // want `telemetry update argument allocates \(string concatenation in Set\)`
	g.Set(uint64(func() int { return len(xs) }())) // want `telemetry update argument allocates \(closure in Set\)`
}

// UnderLock: the first update runs inside the critical section, the
// second after Unlock.
func UnderLock(reg *telemetry.Registry, mu *sync.Mutex) {
	c := reg.Counter("cells_total")
	mu.Lock()
	c.Inc() // want lockorder:`telemetry Counter\.Inc update while holding mu`
	mu.Unlock()
	c.Inc()
}

// ReadLocked: RLock counts as holding the lock too.
func ReadLocked(reg *telemetry.Registry, mu *sync.RWMutex, depth int) {
	g := reg.Gauge("queue_depth")
	mu.RLock()
	g.Set(uint64(depth)) // want lockorder:`telemetry Gauge\.Set update while holding mu`
	mu.RUnlock()
	g.Set(uint64(depth))
}

// BranchUnlock shows the per-branch held-set copy: an early Unlock in a
// branch clears the lock for that branch only, and the fall-through path
// is clean only after its own Unlock.
func BranchUnlock(reg *telemetry.Registry, mu *sync.Mutex, shed bool) {
	c := reg.Counter("cells_total")
	mu.Lock()
	if shed {
		mu.Unlock()
		c.Inc()
		return
	}
	c.Inc() // want lockorder:`telemetry Counter\.Inc update while holding mu`
	mu.Unlock()
	c.Inc()
}

// DeferredUnlock: a deferred Unlock does not clear the lock — the update
// still executes inside the critical section.
func DeferredUnlock(reg *telemetry.Registry, mu *sync.Mutex) {
	c := reg.Counter("cells_total")
	mu.Lock()
	defer mu.Unlock()
	c.Inc() // want lockorder:`telemetry Counter\.Inc update while holding mu`
}

// ClosureScope: a FuncLit is its own lock scope — the surrounding Lock
// is invisible to it (it may run later, on another goroutine), and its
// own locks are tracked independently.
func ClosureScope(reg *telemetry.Registry, mu *sync.Mutex) func() {
	c := reg.Counter("cells_total")
	mu.Lock()
	fn := func() {
		c.Inc()
		mu.Lock()
		c.Inc() // want lockorder:`telemetry Counter\.Inc update while holding mu`
		mu.Unlock()
	}
	mu.Unlock()
	return fn
}

// IndirectUnderLock is what the old syntactic rule could not see: the
// update happens one call below the critical section, and lockorder
// finds it through bump's summary.
func IndirectUnderLock(reg *telemetry.Registry, mu *sync.Mutex) {
	c := reg.Counter("cells_total")
	mu.Lock()
	bump(c) // want lockorder:`telemetry Counter\.Inc update while holding mu`
	mu.Unlock()
}

func bump(c *telemetry.Counter) {
	c.Inc()
}
