package tage

// Fork returns an independent deep copy of the predictor: bimodal and
// tagged tables (or the infinite associative maps), global/path/folded
// histories, the allocator's tick and RNG state, and the
// Predict/Update scratch. Training either copy never affects the other,
// and — because the RNG state is carried — both copies replay the exact
// allocation schedule an unforked predictor would. Telemetry instruments
// are not carried across; attach a registry to the child explicitly.
// Call at a branch boundary (after Update, before the next Predict).
func (p *Predictor) Fork() *Predictor {
	out := *p
	out.bim = p.bim.Fork()
	if p.cfg.Infinite {
		out.inf = make([]map[infKey]*entry, len(p.inf))
		for i, m := range p.inf {
			nm := make(map[infKey]*entry, len(m))
			//llbplint:allow determinism -- map-to-map deep copy: the result is the same set of entries whatever order the range visits
			for k, e := range m {
				ce := *e
				nm[k] = &ce
			}
			out.inf[i] = nm
		}
	} else {
		out.tables = make([][]entry, len(p.tables))
		for i := range p.tables {
			out.tables[i] = append([]entry(nil), p.tables[i]...)
		}
	}
	path := *p.path
	out.path = &path
	if p.engOwner {
		out.eng = p.eng.Clone()
	}
	// A non-owner's engine belongs to the composite, which clones it and
	// rebinds the forked TAGE via RebindHistoryEngine. Cached fold
	// locations stay valid either way (clones share the packed layout).
	out.telAllocs = nil
	out.telAllocFails = nil
	out.telProviderLens = nil
	return &out
}
