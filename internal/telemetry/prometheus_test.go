package telemetry

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func promFixture() *Registry {
	reg := NewRegistry()
	reg.Counter("service_jobs_submitted").Add(7)
	reg.Counter("harness_cells_run").Add(3)
	reg.Gauge("service_queue_depth").Set(2.5)
	h := reg.Histogram("service_claim_latency_ms", []float64{1, 10, 100})
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(5000)
	reg.Series("mpki", 1000).Append(4.2)
	reg.Series("mpki", 1000).Append(3.9)
	return reg
}

// TestPrometheusRoundTrip encodes a snapshot, parses it back, and checks
// every value survived — the parse-back contract telemetrycheck's -prom
// gate relies on.
func TestPrometheusRoundTrip(t *testing.T) {
	reg := promFixture()
	snap := reg.Snapshot()
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, snap); err != nil {
		t.Fatal(err)
	}
	doc, err := ParsePrometheus(buf.Bytes())
	if err != nil {
		t.Fatalf("parse-back failed: %v\n%s", err, buf.String())
	}
	if doc.Seq != snap.Seq {
		t.Errorf("Seq = %d, want %d", doc.Seq, snap.Seq)
	}
	for name, want := range snap.Counters {
		if got, ok := doc.Value(name); !ok || got != float64(want) {
			t.Errorf("counter %s = %v (present %v), want %d", name, got, ok, want)
		}
		if doc.Types[name] != "counter" {
			t.Errorf("counter %s declared as %q", name, doc.Types[name])
		}
	}
	if got, _ := doc.Value("service_queue_depth"); got != 2.5 {
		t.Errorf("gauge = %v, want 2.5", got)
	}
	buckets := doc.Buckets("service_claim_latency_ms")
	if len(buckets) != 4 {
		t.Fatalf("got %d buckets, want 4 (3 bounds + +Inf)", len(buckets))
	}
	// Cumulative: le=1 → 1 obs (0.5), le=10 → 2, le=100 → 2, +Inf → 3.
	wantCum := []float64{1, 2, 2, 3}
	for i, b := range buckets {
		if b.Value != wantCum[i] {
			t.Errorf("bucket %d (le=%s) = %g, want %g", i, b.Labels["le"], b.Value, wantCum[i])
		}
	}
	if !math.IsInf(mustParseLe(t, buckets[3].Labels["le"]), 1) {
		t.Errorf("last bucket le = %q, want +Inf", buckets[3].Labels["le"])
	}
	if got, _ := doc.Value("service_claim_latency_ms_count"); got != 3 {
		t.Errorf("_count = %v, want 3", got)
	}
	if got, _ := doc.Value("service_claim_latency_ms_sum"); got != 5005.5 {
		t.Errorf("_sum = %v, want 5005.5", got)
	}
	if got, _ := doc.Value("mpki_points"); got != 2 {
		t.Errorf("mpki_points = %v, want 2", got)
	}
	if got, _ := doc.Value("mpki_last"); got != 3.9 {
		t.Errorf("mpki_last = %v, want 3.9", got)
	}
}

func mustParseLe(t *testing.T, s string) float64 {
	t.Helper()
	v, err := parsePromValue(s)
	if err != nil {
		t.Fatalf("le %q: %v", s, err)
	}
	return v
}

// TestPrometheusDeterministic renders the same state twice and demands
// byte-identical output (family ordering must not leak map order).
func TestPrometheusDeterministic(t *testing.T) {
	render := func() string {
		reg := promFixture()
		snap := reg.Snapshot()
		snap.Seq = 1 // normalize: Snapshot bumps per call
		var buf bytes.Buffer
		if err := WritePrometheus(&buf, snap); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a, b := render(), render()
	if a != b {
		t.Errorf("two renders of equal state differ:\n--- a ---\n%s--- b ---\n%s", a, b)
	}
}

// TestParsePrometheusRejectsBadDocuments covers the validation the CI
// gate depends on: undeclared samples, non-cumulative buckets, count
// mismatches, bad values.
func TestParsePrometheusRejectsBadDocuments(t *testing.T) {
	cases := map[string]string{
		"undeclared sample":  "orphan 3\n",
		"duplicate family":   "# TYPE a counter\n# TYPE a counter\na 1\n",
		"bad type":           "# TYPE a summary\na 1\n",
		"bad value":          "# TYPE a counter\na one\n",
		"unterminated label": "# TYPE h histogram\nh_bucket{le=\"1\" 2\nh_sum 1\nh_count 2\n",
		"non-cumulative buckets": "# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n",
		"missing +Inf": "# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n",
		"count mismatch": "# TYPE h histogram\n" +
			"h_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 4\n",
		"descending bounds": "# TYPE h histogram\n" +
			"h_bucket{le=\"10\"} 1\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 1\nh_sum 1\nh_count 1\n",
	}
	for name, text := range cases {
		if _, err := ParsePrometheus([]byte(text)); err == nil {
			t.Errorf("%s: accepted:\n%s", name, text)
		}
	}
}

// TestPrometheusEmptySnapshot checks the degenerate render stays valid.
func TestPrometheusEmptySnapshot(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, Snapshot{Counters: map[string]uint64{}}); err != nil {
		t.Fatal(err)
	}
	if _, err := ParsePrometheus(buf.Bytes()); err != nil {
		t.Fatalf("empty document did not parse back: %v", err)
	}
	if strings.Contains(buf.String(), "seq") {
		t.Errorf("zero Seq leaked into output:\n%s", buf.String())
	}
}
