//go:build llbpdebug

package assert

import "fmt"

// Enabled reports whether assertions are compiled in.
const Enabled = true

// Failf reports an assertion failure by panicking with the formatted
// message.
func Failf(format string, args ...any) {
	panic(fmt.Sprintf(format, args...))
}
