// Package chaos is the service-level fault injector: it extends the
// internal/faults seeded-injection idiom from predictor bit-flips to the
// failure events of the llbpd service stack — a worker panicking or
// wedging mid-cell, a heartbeat delayed past its lease TTL, a result
// stream cut under a client, a journal write torn between write and
// fsync.
//
// Injection points are named Hooks compiled into the production code
// paths (internal/service, internal/harness). Each call site asks the
// injector whether the event fires at this occurrence; with a nil
// injector every call is an inlineable false, so the hooks cost nothing
// in normal operation — the same contract internal/telemetry uses for
// its nil-receiver instruments.
//
// Schedules are deterministic. A Rule fires a hook at an exact
// occurrence count (and optionally every k occurrences after), so a
// scenario is replayable: the same rules against the same workload
// produce the same firing sequence, and the chaos e2e suite asserts the
// surviving results are byte-identical to an uninjected run. Scenario
// derives a rule set from a single seed for fuzz-style sweeps that stay
// reproducible from the seed alone.
package chaos

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Hook names one injection point in the service stack.
type Hook string

// The chaos event catalog (DESIGN.md §11). Each constant documents the
// production call site that consults it.
const (
	// WorkerPanic fires in the worker loop as it picks up a cell: the
	// worker panics, simulating a crashed worker goroutine. The panic is
	// recovered by worker supervision; the job's lease expires and the
	// supervisor re-dispatches it.
	WorkerPanic Hook = "worker.panic"
	// WorkerStall fires at the same site: the worker wedges (blocks)
	// instead of running the cell, holding its lease without progress
	// until the supervisor revokes it.
	WorkerStall Hook = "worker.stall"
	// HeartbeatSkip fires at lease-heartbeat sites: the renewal is
	// suppressed, aging the lease as if the worker had stopped making
	// progress.
	HeartbeatSkip Hook = "heartbeat.skip"
	// StreamDrop fires before a results-stream write: the connection is
	// severed mid-stream, exercising client resume from the last
	// delivered sequence number.
	StreamDrop Hook = "stream.drop"
	// JournalTear fires inside Journal.Record: the encoded line is
	// truncated mid-write and the write reported failed — the exact
	// footprint of a process killed between write and fsync.
	JournalTear Hook = "journal.tear"
)

// Hooks returns the event catalog in stable order.
func Hooks() []Hook {
	return []Hook{WorkerPanic, WorkerStall, HeartbeatSkip, StreamDrop, JournalTear}
}

// Rule schedules one hook: fire on the At-th occurrence (1-based), and,
// when Every is non-zero, again every Every occurrences after that.
type Rule struct {
	Hook  Hook
	At    uint64
	Every uint64
}

// String renders the rule in ParseSpec syntax.
func (r Rule) String() string {
	s := fmt.Sprintf("%s@%d", r.Hook, r.At)
	if r.Every > 0 {
		s += fmt.Sprintf("%%%d", r.Every)
	}
	return s
}

// matches reports whether the rule fires at occurrence n.
func (r Rule) matches(n uint64) bool {
	if r.At == 0 || n < r.At {
		return false
	}
	if n == r.At {
		return true
	}
	return r.Every > 0 && (n-r.At)%r.Every == 0
}

// Firing is one log entry of the injector: hook h fired at its n-th
// occurrence.
type Firing struct {
	Hook  Hook   `json:"hook"`
	Count uint64 `json:"count"`
}

// Injector owns a rule set and the per-hook occurrence counters. All
// methods are safe on a nil receiver (never fires) and for concurrent
// use.
type Injector struct {
	mu     sync.Mutex
	rules  []Rule
	counts map[Hook]uint64
	log    []Firing
}

// New builds an injector over the given rules.
func New(rules ...Rule) *Injector {
	return &Injector{rules: rules, counts: make(map[Hook]uint64)}
}

// Scenario derives n single-shot rules from a seed: each draw picks a
// hook from the catalog and an occurrence in [1, horizon]. The rule set
// is a pure function of (seed, n, horizon), so a scenario is fully
// described — and replayed — by its seed.
func Scenario(seed uint64, n int, horizon uint64) *Injector {
	if horizon == 0 {
		horizon = 1
	}
	hooks := Hooks()
	rng := seed ^ 0xC4A05C4A05C4A05 // domain-separate from other splitmix streams
	next := func() uint64 {
		rng += 0x9E3779B97F4A7C15
		z := rng
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		return z ^ (z >> 31)
	}
	rules := make([]Rule, n)
	for i := range rules {
		rules[i] = Rule{
			Hook: hooks[next()%uint64(len(hooks))],
			At:   next()%horizon + 1,
		}
	}
	return New(rules...)
}

// ParseSpec parses a comma-separated rule list in the syntax
// "hook@n" (fire at the n-th occurrence) or "hook@n%k" (and every k
// after). Example: "worker.panic@2,stream.drop@3%5".
func ParseSpec(spec string) ([]Rule, error) {
	known := make(map[Hook]bool, len(Hooks()))
	for _, h := range Hooks() {
		known[h] = true
	}
	var rules []Rule
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, rest, ok := strings.Cut(part, "@")
		if !ok {
			return nil, fmt.Errorf("chaos: rule %q lacks '@occurrence'", part)
		}
		if !known[Hook(name)] {
			return nil, fmt.Errorf("chaos: unknown hook %q (have %v)", name, Hooks())
		}
		atStr, everyStr, hasEvery := strings.Cut(rest, "%")
		at, err := strconv.ParseUint(atStr, 10, 64)
		if err != nil || at == 0 {
			return nil, fmt.Errorf("chaos: rule %q: occurrence must be a positive integer", part)
		}
		r := Rule{Hook: Hook(name), At: at}
		if hasEvery {
			every, err := strconv.ParseUint(everyStr, 10, 64)
			if err != nil || every == 0 {
				return nil, fmt.Errorf("chaos: rule %q: period must be a positive integer", part)
			}
			r.Every = every
		}
		rules = append(rules, r)
	}
	return rules, nil
}

// TearHook adapts the injector to harness.Journal.SetWriteHook: when
// JournalTear fires, the journal line is truncated mid-record and the
// write reported failed — the footprint of a process killed between
// write and fsync, which the journal's torn-tail repair must absorb on
// the next open.
func TearHook(in *Injector) func(line []byte) ([]byte, error) {
	return func(line []byte) ([]byte, error) {
		if in.Fire(JournalTear) {
			return line[:len(line)/2], fmt.Errorf("chaos: journal write torn after %d bytes", len(line)/2)
		}
		return line, nil
	}
}

// Fire advances hook h's occurrence counter and reports whether any rule
// fires at this occurrence. Nil-safe: a nil injector never fires.
func (in *Injector) Fire(h Hook) bool {
	if in == nil {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	in.counts[h]++
	n := in.counts[h]
	for _, r := range in.rules {
		if r.Hook == h && r.matches(n) {
			in.log = append(in.log, Firing{Hook: h, Count: n})
			return true
		}
	}
	return false
}

// Count returns how many times hook h has been consulted.
func (in *Injector) Count(h Hook) uint64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.counts[h]
}

// Firings returns the fired events in firing order — the replayable
// record of what the scenario actually did.
func (in *Injector) Firings() []Firing {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return append([]Firing(nil), in.log...)
}

// Rules returns a copy of the rule set, sorted for display.
func (in *Injector) Rules() []Rule {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	out := append([]Rule(nil), in.rules...)
	sort.Slice(out, func(i, k int) bool {
		if out[i].Hook != out[k].Hook {
			return out[i].Hook < out[k].Hook
		}
		return out[i].At < out[k].At
	})
	return out
}

// String renders the rule set in ParseSpec syntax.
func (in *Injector) String() string {
	rules := in.Rules()
	parts := make([]string, len(rules))
	for i, r := range rules {
		parts[i] = r.String()
	}
	return strings.Join(parts, ",")
}
