package lint_test

import (
	"testing"

	"llbp/internal/lint"
	"llbp/internal/lint/analysistest"
)

// TestTelemetrySafe covers field access, composite-literal construction
// and name-scheme findings in a consumer package, and the negative case:
// the telemetry package itself is exempt (it must touch its own fields).
func TestTelemetrySafe(t *testing.T) {
	analysistest.Run(t, "testdata", lint.TelemetrySafe, "app", "telemetry")
}
