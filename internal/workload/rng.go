package workload

// splitmix64 advances the state and returns a well-mixed 64-bit value.
// Used both as the generator's sequential PRNG and, in single-shot form
// (mix), as a deterministic hash for outcome functions.
func splitmix64(state *uint64) uint64 {
	*state += 0x9E3779B97F4A7C15
	z := *state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// mix hashes an arbitrary number of values into one 64-bit value,
// deterministically. It is the outcome function for the synthetic
// branches: outcome bits are mix(seed, context, phase)&1.
func mix(vs ...uint64) uint64 {
	h := uint64(0x9E3779B97F4A7C15)
	for _, v := range vs {
		h ^= v
		h = splitmix64(&h)
	}
	return h
}

// rng is a tiny deterministic PRNG for the generator's runtime choices.
type rng struct{ state uint64 }

func newRNG(seed uint64) *rng { return &rng{state: seed ^ 0xA5A5A5A5DEADBEEF} }

func (r *rng) next() uint64 { return splitmix64(&r.state) }

// intn returns a uniform value in [0, n).
func (r *rng) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.next() % uint64(n))
}

// rangeInt returns a uniform value in [lo, hi] (inclusive).
func (r *rng) rangeInt(lo, hi int) int {
	if hi <= lo {
		return lo
	}
	return lo + r.intn(hi-lo+1)
}

// float returns a uniform value in [0, 1).
func (r *rng) float() float64 {
	return float64(r.next()>>11) / float64(1<<53)
}

// bernoulli returns true with probability p.
func (r *rng) bernoulli(p float64) bool { return r.float() < p }

// geometric returns a geometric variate with the given mean, at least 1.
// Used for instruction counts between branches.
func (r *rng) geometric(mean float64) int {
	if mean <= 1 {
		return 1
	}
	n := 1
	p := 1 / mean
	for !r.bernoulli(p) && n < 64 {
		n++
	}
	return n
}

// zipf draws from a Zipf-like distribution over [0, n) with skew s using
// inverse-CDF over precomputed weights.
type zipf struct {
	cdf []float64
	r   *rng
}

func newZipf(r *rng, n int, s float64) *zipf {
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		w := 1.0 / pow(float64(i+1), s)
		sum += w
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &zipf{cdf: cdf, r: r}
}

func (z *zipf) draw() int {
	u := z.r.float()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// pow is a small positive-base power helper (avoids importing math for a
// hot loop that only needs x^s with s in [0,2]).
func pow(x, s float64) float64 {
	switch s {
	case 0:
		return 1
	case 1:
		return x
	case 2:
		return x * x
	}
	// exp(s*ln x) via the standard library would be fine; this package
	// avoids float transcendentals for portability of exact streams
	// across platforms, using a binary-exponent decomposition instead.
	// Decompose s = k/64 steps of x^(1/64) is overkill; since skew
	// values in the catalog are multiples of 0.25 we special-case them.
	result := 1.0
	for s >= 1 {
		result *= x
		s--
	}
	if s > 0 {
		// remaining fractional exponent in {0.25, 0.5, 0.75}
		r2 := sqrt(x)
		switch {
		case s >= 0.75:
			result *= r2 * sqrt(r2)
		case s >= 0.5:
			result *= r2
		case s >= 0.25:
			result *= sqrt(r2)
		}
	}
	return result
}

// sqrt is Newton's method square root (keeps the stream bit-exact across
// platforms regardless of libm).
func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	g := x
	for i := 0; i < 32; i++ {
		g = 0.5 * (g + x/g)
	}
	return g
}
