package predictor

import "testing"

func TestClock(t *testing.T) {
	var c Clock
	if c.Now() != 0 || c.NowF() != 0 {
		t.Error("fresh clock must read zero")
	}
	c.Advance(2.5)
	if c.Now() != 2 {
		t.Errorf("Now = %d, want 2", c.Now())
	}
	c.Advance(0.5)
	if c.Now() != 3 {
		t.Errorf("fractional cycles must accumulate: Now = %d, want 3", c.Now())
	}
	if c.NowF() != 3.0 {
		t.Errorf("NowF = %v", c.NowF())
	}
	c.Reset()
	if c.NowF() != 0 {
		t.Error("Reset must rewind to zero")
	}
}

func TestComponentString(t *testing.T) {
	want := map[Component]string{
		ProviderBimodal: "bimodal",
		ProviderTAGE:    "tage",
		ProviderLoop:    "loop",
		ProviderSC:      "sc",
		ProviderLLBP:    "llbp",
		Component(99):   "unknown",
	}
	for c, w := range want {
		if got := c.String(); got != w {
			t.Errorf("%d.String() = %q, want %q", c, got, w)
		}
	}
}
