package core

import "llbp/internal/assert"

// HistLen describes one of LLBP's allowed history lengths. The paper's
// configuration uses 16 lengths, four of which repeat a previous length
// with a modified hash function (marked with * in §VI); AltHash selects
// that variant.
type HistLen struct {
	Len     int
	AltHash bool
}

// DefaultHistLengths is the empirically chosen set from §VI: history
// lengths 12, 26, 54, 54*, 78, 78*, 112, 112*, 161, 161*, 232, 336, 482,
// 695, 1444, 3000 — a 16-length subset of the baseline TAGE's 21 lengths,
// split across four buckets of four.
var DefaultHistLengths = []HistLen{
	{12, false}, {26, false}, {54, false}, {54, true},
	{78, false}, {78, true}, {112, false}, {112, true},
	{161, false}, {161, true}, {232, false}, {336, false},
	{482, false}, {695, false}, {1444, false}, {3000, false},
}

// Pattern is the unpacked view of one LLBP pattern (§V-B): a prediction
// counter, a partial tag, and a history-length field selecting the hash
// used to match the tag. In hardware this is 18 bits (3b ctr + 13b tag +
// 2b length-within-bucket); here LenIdx stores the global index into
// Config.HistLengths, from which the 2-bit in-bucket field is derivable.
//
// Storage-side, patterns live bit-packed in one 64-bit lane each (see the
// lane* constants); Pattern is the decode used by training, allocation,
// fault injection and tests.
type Pattern struct {
	Tag    uint32
	Ctr    int8
	LenIdx uint8
	Valid  bool
}

// Confident reports whether the pattern's counter is in a high-confidence
// state (saturated or one off saturation for a 3-bit counter).
func (p *Pattern) Confident() bool {
	return p.Valid && (p.Ctr >= 2 || p.Ctr <= -3)
}

// Lane layout: every pattern packs into one uint64 with a fixed field
// placement sized for the configuration maxima (TagBits <= 31, CtrBits <=
// 7, 256 history lengths), so no per-config plumbing reaches the
// per-branch match loop:
//
//	bit  0..30  tag (stored pre-masked to TagBits)
//	bit 31..37  ctr (two's complement, sign bit at lane bit 37)
//	bit 38..45  length index
//	bit 46      valid
//
// The match loop compares lane & laneKeyMask — valid, length index and
// tag in one masked word compare — against a per-length expected key, so
// a set probe is a branch-free sweep over contiguous words.
const (
	laneTagWidth = 31
	laneCtrShift = 31
	laneCtrWidth = 7
	laneLenShift = laneCtrShift + laneCtrWidth
	laneLenWidth = 8
	laneValidBit = uint64(1) << (laneLenShift + laneLenWidth)

	laneTagMask = uint64(1)<<laneTagWidth - 1
	laneLenMask = uint64(1)<<laneLenWidth - 1
	laneKeyMask = laneValidBit | laneLenMask<<laneLenShift | laneTagMask
)

// packLane encodes a pattern into its storage lane. Invalid patterns keep
// their field contents (fault injection can flip the valid bit off and
// back on without losing state, like real SRAM).
func packLane(q Pattern) uint64 {
	lane := uint64(q.Tag) & laneTagMask
	lane |= (uint64(q.Ctr) & (1<<laneCtrWidth - 1)) << laneCtrShift
	lane |= (uint64(q.LenIdx) & laneLenMask) << laneLenShift
	if q.Valid {
		lane |= laneValidBit
	}
	return lane
}

// unpackLane decodes a storage lane.
func unpackLane(lane uint64) Pattern {
	return Pattern{
		Tag:    uint32(lane & laneTagMask),
		Ctr:    laneCtr(lane),
		LenIdx: uint8((lane >> laneLenShift) & laneLenMask),
		Valid:  lane&laneValidBit != 0,
	}
}

// laneCtr sign-extends the counter field of a lane.
func laneCtr(lane uint64) int8 {
	return int8(int64(lane<<(64-laneCtrShift-laneCtrWidth)) >> (64 - laneCtrWidth))
}

// laneWithCtr returns the lane with its counter field replaced.
func laneWithCtr(lane uint64, ctr int8) uint64 {
	const ctrMask = uint64(1<<laneCtrWidth-1) << laneCtrShift
	return lane&^ctrMask | (uint64(ctr)&(1<<laneCtrWidth-1))<<laneCtrShift
}

// maxInlinePatterns is the lane count stored inside the set itself. The
// evaluated design's 16-pattern sets (§VI) fit entirely inline, so a set
// is a flat value — no heap pointer, transferable and forkable with a
// plain copy; only the Figure 14 study sizes (32/64 patterns) spill to a
// heap extension.
const maxInlinePatterns = 16

// PatternSet is the complete set of patterns for one program context
// (§V-A), stored as packed lanes. Patterns are kept in ascending
// history-length order so the same multiplexer cascade as TAGE selects
// the longest match (§V-B); with bucketing enabled (§V-D) the order is
// maintained per four-pattern bucket, and bucket b may only hold history
// lengths 4b..4b+3.
type PatternSet struct {
	n      int32
	inline [maxInlinePatterns]uint64
	ext    []uint64 // backing when n > maxInlinePatterns (Figure 14 study)
}

// newPatternSet returns an empty set of n pattern slots, by value.
func newPatternSet(n int) PatternSet {
	s := PatternSet{n: int32(n)}
	if n > maxInlinePatterns {
		//llbplint:allow hotpath -- only the Figure 14 study sizes (32/64 patterns) spill; the evaluated 16-pattern set is a flat value
		s.ext = make([]uint64, n)
	}
	return s
}

// lanes returns the set's packed storage.
func (s *PatternSet) lanes() []uint64 {
	if s.ext != nil {
		return s.ext
	}
	return s.inline[:s.n]
}

// unshare deep-copies any heap extension so a value-copied set stops
// aliasing its source (inline lanes copy with the value already).
func (s *PatternSet) unshare() {
	if s.ext != nil {
		s.ext = append([]uint64(nil), s.ext...)
	}
}

// Len returns the number of pattern slots.
func (s *PatternSet) Len() int { return int(s.n) }

// Pattern returns the unpacked view of slot i.
func (s *PatternSet) Pattern(i int) Pattern { return unpackLane(s.lanes()[i]) }

// SetPattern overwrites slot i.
func (s *PatternSet) SetPattern(i int, q Pattern) { s.lanes()[i] = packLane(q) }

// ConfidentCount returns the number of high-confidence patterns, saturated
// at max — the CD replacement metadata (§V-D, step 1).
func (s *PatternSet) ConfidentCount(max int) int {
	n := 0
	for _, lane := range s.lanes() {
		if lane&laneValidBit == 0 {
			continue
		}
		if c := laneCtr(lane); c >= 2 || c <= -3 {
			n++
			if n >= max {
				return max
			}
		}
	}
	return n
}

// bucketRange returns the slot range [lo,hi) of the bucket that may hold
// global history-length index lenIdx, for a set of setSize patterns split
// into nBuckets. With nBuckets == 0 (bucketing disabled, the Figure 14
// study mode) the whole set is one bucket.
func bucketRange(lenIdx, setSize, nBuckets, nLengths int) (lo, hi int) {
	if nBuckets <= 0 {
		return 0, setSize
	}
	perBucket := setSize / nBuckets
	lensPerBucket := (nLengths + nBuckets - 1) / nBuckets
	b := lenIdx / lensPerBucket
	if b >= nBuckets {
		b = nBuckets - 1
	}
	return b * perBucket, (b + 1) * perBucket
}

// insert allocates a pattern with the given tag/length into the set,
// following §V-D steps 2–4: within the allowed bucket, replace the
// least-confident pattern (ties broken toward the lower-order slot), set
// the counter to the weak state for the resolved direction, and restore
// ascending history-length order inside the bucket.
func (s *PatternSet) insert(tag uint32, lenIdx uint8, taken bool, nBuckets, nLengths int) {
	lanes := s.lanes()
	lo, hi := bucketRange(int(lenIdx), len(lanes), nBuckets, nLengths)
	if lo < 0 || hi > len(lanes) || lo >= hi {
		assert.Failf("core: bad bucket range [%d,%d) for set of %d", lo, hi, len(lanes))
		return
	}
	// If the identical pattern already exists, refresh its counter
	// instead of duplicating it.
	key := laneValidBit | uint64(lenIdx)<<laneLenShift | uint64(tag)&laneTagMask
	for i := lo; i < hi; i++ {
		if lanes[i]&laneKeyMask == key {
			lanes[i] = laneWithCtr(lanes[i], weakCtr(taken))
			return
		}
	}
	victim := lo
	victimScore := 127
	for i := lo; i < hi; i++ {
		if lanes[i]&laneValidBit == 0 {
			victim = i
			victimScore = -1
			break
		}
		score := int(laneCtr(lanes[i]))
		if score < 0 {
			score = -score - 1 // counter magnitude: -1,-4 -> 0,3
		}
		if score < victimScore {
			victim, victimScore = i, score
		}
	}
	lanes[victim] = packLane(Pattern{Tag: tag, Ctr: weakCtr(taken), LenIdx: lenIdx, Valid: true})
	sortBucket(lanes, lo, hi)
}

// sortBucket restores ascending LenIdx order among the valid patterns of
// lanes [lo,hi), keeping invalid slots at the end. Buckets hold four
// patterns, so insertion sort is the hardware-faithful (and fastest)
// choice.
func sortBucket(lanes []uint64, lo, hi int) {
	for i := lo + 1; i < hi; i++ {
		lane := lanes[i]
		j := i - 1
		for j >= lo && laneLess(lane, lanes[j]) {
			lanes[j+1] = lanes[j]
			j--
		}
		lanes[j+1] = lane
	}
}

// laneLess orders valid patterns before invalid ones, then by ascending
// history length. The comparison never looks at tag or counter bits, so
// the insertion sort permutes lanes exactly as the unpacked sort did.
func laneLess(a, b uint64) bool {
	av, bv := a&laneValidBit != 0, b&laneValidBit != 0
	if av != bv {
		return av
	}
	if !av {
		return false
	}
	return (a>>laneLenShift)&laneLenMask < (b>>laneLenShift)&laneLenMask
}

// weakCtr returns the weak 3-bit counter state for a direction.
func weakCtr(taken bool) int8 {
	if taken {
		return 0
	}
	return -1
}

// sorted reports whether valid patterns appear in ascending length order
// within each bucket (and invalid slots trail) — the §V-B invariant the
// multiplexer cascade relies on. Exposed for property tests.
func (s *PatternSet) sorted(nBuckets, nLengths int) bool {
	lanes := s.lanes()
	size := len(lanes)
	per := size
	if nBuckets > 0 {
		per = size / nBuckets
	}
	for lo := 0; lo < size; lo += per {
		hi := lo + per
		seenInvalid := false
		last := -1
		for i := lo; i < hi && i < size; i++ {
			q := unpackLane(lanes[i])
			if !q.Valid {
				seenInvalid = true
				continue
			}
			if seenInvalid {
				return false
			}
			if int(q.LenIdx) < last {
				return false
			}
			last = int(q.LenIdx)
		}
	}
	return true
}
