package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
)

// The binary trace format is a small, self-describing container:
//
//	magic   [8]byte  "LLBPTRC1"
//	name    uvarint length + bytes (workload name, UTF-8)
//	records repeated until EOF:
//	    pcDelta   varint  (signed delta from previous record's PC)
//	    target    uvarint (delta-encoded against PC)
//	    meta      uvarint (bits 0-2 type, bit 3 taken, bit 4 target-miss)
//	    instrs    uvarint
//
// Delta encoding keeps hot loops to a few bytes per record.

const magic = "LLBPTRC1"

// ErrBadMagic is returned when opening a file that is not an LLBP trace.
var ErrBadMagic = errors.New("trace: bad magic (not an LLBP trace file)")

// IsEOF reports whether err signals normal end of a branch stream.
func IsEOF(err error) bool { return errors.Is(err, io.EOF) }

// Writer encodes branch records into the binary trace format.
type Writer struct {
	w      *bufio.Writer
	prevPC uint64
	buf    [5 * binary.MaxVarintLen64]byte
}

// NewWriter writes a trace header (with the workload name) to w and returns
// a Writer for appending records. Call Flush when done.
func NewWriter(w io.Writer, name string) (*Writer, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.WriteString(magic); err != nil {
		return nil, fmt.Errorf("trace: writing magic: %w", err)
	}
	var lenBuf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(lenBuf[:], uint64(len(name)))
	if _, err := bw.Write(lenBuf[:n]); err != nil {
		return nil, fmt.Errorf("trace: writing name length: %w", err)
	}
	if _, err := bw.WriteString(name); err != nil {
		return nil, fmt.Errorf("trace: writing name: %w", err)
	}
	return &Writer{w: bw}, nil
}

// Write appends one record. Records the reader would reject — an
// out-of-range branch type (the 3-bit meta field would silently truncate
// it) or a zero instruction count — are refused here so corruption cannot
// be laundered into a well-formed file.
func (w *Writer) Write(b *Branch) error {
	if b.Type >= numBranchTypes {
		return fmt.Errorf("trace: invalid branch type %d (max %d)", b.Type, numBranchTypes-1)
	}
	if b.Instructions == 0 || uint64(b.Instructions) > 1<<31 {
		return fmt.Errorf("trace: invalid instruction count %d", b.Instructions)
	}
	n := binary.PutVarint(w.buf[:], int64(b.PC)-int64(w.prevPC))
	n += binary.PutVarint(w.buf[n:], int64(b.Target)-int64(b.PC))
	meta := uint64(b.Type)
	if b.Taken {
		meta |= 1 << 3
	}
	if b.MispredictedTarget {
		meta |= 1 << 4
	}
	n += binary.PutUvarint(w.buf[n:], meta)
	n += binary.PutUvarint(w.buf[n:], uint64(b.Instructions))
	w.prevPC = b.PC
	if _, err := w.w.Write(w.buf[:n]); err != nil {
		return fmt.Errorf("trace: writing record: %w", err)
	}
	return nil
}

// Flush flushes buffered records to the underlying writer.
func (w *Writer) Flush() error { return w.w.Flush() }

// FileReader decodes the binary trace format. It implements Reader.
type FileReader struct {
	r      *bufio.Reader
	name   string
	prevPC uint64
}

// NewFileReader validates the header of r and returns a reader over its
// records.
func NewFileReader(r io.Reader) (*FileReader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if string(head) != magic {
		return nil, ErrBadMagic
	}
	nameLen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: reading name length: %w", err)
	}
	if nameLen > 1<<16 {
		return nil, fmt.Errorf("trace: unreasonable name length %d", nameLen)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, fmt.Errorf("trace: reading name: %w", err)
	}
	return &FileReader{r: br, name: string(name)}, nil
}

// Name returns the workload name recorded in the trace header.
func (r *FileReader) Name() string { return r.name }

// Read decodes the next record into b.
func (r *FileReader) Read(b *Branch) error {
	pcDelta, err := binary.ReadVarint(r.r)
	if err != nil {
		if errors.Is(err, io.EOF) {
			return io.EOF
		}
		return fmt.Errorf("trace: reading pc delta: %w", err)
	}
	b.PC = uint64(int64(r.prevPC) + pcDelta)
	tgtDelta, err := binary.ReadVarint(r.r)
	if err != nil {
		return fmt.Errorf("trace: truncated record (target): %w", err)
	}
	b.Target = uint64(int64(b.PC) + tgtDelta)
	meta, err := binary.ReadUvarint(r.r)
	if err != nil {
		return fmt.Errorf("trace: truncated record (meta): %w", err)
	}
	instrs, err := binary.ReadUvarint(r.r)
	if err != nil {
		return fmt.Errorf("trace: truncated record (instrs): %w", err)
	}
	if instrs == 0 || instrs > 1<<31 {
		return fmt.Errorf("trace: invalid instruction count %d", instrs)
	}
	b.Type = BranchType(meta & 0x7)
	if b.Type >= numBranchTypes {
		return fmt.Errorf("trace: invalid branch type %d", meta&0x7)
	}
	b.Taken = meta&(1<<3) != 0
	b.MispredictedTarget = meta&(1<<4) != 0
	b.Instructions = uint32(instrs)
	r.prevPC = b.PC
	return nil
}

// SliceReader replays an in-memory slice of branches; handy in tests and as
// the Reader behind small captured traces.
type SliceReader struct {
	branches []Branch
	pos      int
}

// NewSliceReader returns a Reader over branches. The slice is not copied.
func NewSliceReader(branches []Branch) *SliceReader {
	return &SliceReader{branches: branches}
}

// Read implements Reader.
func (r *SliceReader) Read(b *Branch) error {
	if r.pos >= len(r.branches) {
		return io.EOF
	}
	*b = r.branches[r.pos]
	r.pos++
	return nil
}

// SliceSource is a Source over an in-memory slice.
type SliceSource struct {
	SourceName string
	Branches   []Branch
}

// Name implements Source.
func (s *SliceSource) Name() string { return s.SourceName }

// Open implements Source.
func (s *SliceSource) Open() Reader { return NewSliceReader(s.Branches) }

// LimitReader wraps a Reader and stops after max records. A non-positive
// max yields an empty stream.
type LimitReader struct {
	R   Reader
	Max uint64
	n   uint64
	br  BatchReader // cached batch view of R (lazy; see ReadBatch)
}

// Read implements Reader.
func (l *LimitReader) Read(b *Branch) error {
	if l.n >= l.Max {
		return io.EOF
	}
	if err := l.R.Read(b); err != nil {
		return err
	}
	l.n++
	return nil
}

// FileSource is a Source backed by an on-disk trace file: every Open
// reopens and re-decodes the file, giving identical replay streams.
type FileSource struct {
	// Path is the trace file location.
	Path string
	name string
}

// NewFileSource validates the file's header and returns a Source for it.
func NewFileSource(path string) (*FileSource, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	defer f.Close()
	r, err := NewFileReader(f)
	if err != nil {
		return nil, fmt.Errorf("trace: %s: %w", path, err)
	}
	return &FileSource{Path: path, name: r.Name()}, nil
}

// Name implements Source.
func (s *FileSource) Name() string { return s.name }

// Open implements Source. Decode errors after open (including I/O errors)
// surface through the Reader's Read calls; the file handle closes when the
// stream is exhausted or errors.
func (s *FileSource) Open() Reader {
	f, err := os.Open(s.Path)
	if err != nil {
		return &errReader{err: fmt.Errorf("trace: %w", err)}
	}
	r, err := NewFileReader(f)
	if err != nil {
		f.Close()
		return &errReader{err: err}
	}
	return &closingReader{FileReader: r, f: f}
}

// errReader is a Reader that always fails with a fixed error.
type errReader struct{ err error }

// Read implements Reader.
func (e *errReader) Read(*Branch) error { return e.err }

// closingReader closes the backing file when the stream ends.
type closingReader struct {
	*FileReader
	f *os.File
}

// Read implements Reader.
func (c *closingReader) Read(b *Branch) error {
	err := c.FileReader.Read(b)
	if err != nil && c.f != nil {
		c.f.Close()
		c.f = nil
	}
	return err
}
