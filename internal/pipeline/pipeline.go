// Package pipeline is the cycle-accounting core model standing in for the
// paper's ChampSim configuration (Table II: 4GHz, 6-wide OoO, 512 ROB).
// It is a Top-Down-style model: correct-path instructions retire at a
// base CPI, and every pipeline reset (conditional misprediction or
// BTB/target miss) charges a redirect penalty. This reproduces the
// relationship between misprediction rate and wasted cycles that Figures 1
// and 10 report, without claiming cycle-level fidelity (see DESIGN.md §1).
package pipeline

import "fmt"

// Config holds the core model parameters.
type Config struct {
	// Name describes the configuration in reports.
	Name string
	// FetchWidth is the front-end width (Table II: 6); informational.
	FetchWidth int
	// BaseCPI is cycles per instruction on the correct path. 0.5
	// (IPC 2) matches the measured server-workload IPC band on the
	// paper's Sapphire Rapids host and yields its ~9% wasted-cycle
	// average at ~2.9 MPKI.
	BaseCPI float64
	// MispredictPenalty is the redirect penalty of a conditional
	// misprediction in cycles (detect + flush + refill).
	MispredictPenalty float64
	// TargetMissPenalty is the redirect penalty of a BTB/indirect
	// target miss.
	TargetMissPenalty float64
	// ROB is the reorder-buffer size (Table II: 512); informational.
	ROB int
	// LQ and SQ are the load/store queue sizes (Table II: 248/122);
	// informational.
	LQ, SQ int
	// ClockGHz is the modelled frequency (Table II: 4GHz).
	ClockGHz float64
}

// Default returns the Table II configuration.
func Default() Config {
	return Config{
		Name:              "Table II core (4GHz, 6-way OoO, 512 ROB)",
		FetchWidth:        6,
		BaseCPI:           0.5,
		MispredictPenalty: 20,
		TargetMissPenalty: 20,
		ROB:               512,
		LQ:                248,
		SQ:                122,
		ClockGHz:          4,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.BaseCPI <= 0 {
		return fmt.Errorf("pipeline: baseCPI %v must be positive", c.BaseCPI)
	}
	if c.MispredictPenalty < 0 || c.TargetMissPenalty < 0 {
		return fmt.Errorf("pipeline: negative penalty")
	}
	return nil
}

// Accounting accumulates the cycle ledger of one simulation.
type Accounting struct {
	cfg Config

	Instructions   uint64
	BaseCycles     float64 // correct-path cycles
	BranchPenalty  float64 // cycles lost to conditional mispredictions
	TargetPenalty  float64 // cycles lost to target misses
	Mispredictions uint64
	TargetMisses   uint64
}

// NewAccounting returns a ledger for cfg.
func NewAccounting(cfg Config) (*Accounting, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Accounting{cfg: cfg}, nil
}

// Config returns the ledger's core configuration.
func (a *Accounting) Config() Config { return a.cfg }

// Retire charges n correct-path instructions and returns the cycles they
// take (for clock advancement).
func (a *Accounting) Retire(n uint64) float64 {
	a.Instructions += n
	c := float64(n) * a.cfg.BaseCPI
	a.BaseCycles += c
	return c
}

// Mispredict charges one conditional-branch redirect and returns its
// cycles.
func (a *Accounting) Mispredict() float64 {
	a.Mispredictions++
	a.BranchPenalty += a.cfg.MispredictPenalty
	return a.cfg.MispredictPenalty
}

// TargetMiss charges one BTB/indirect target redirect and returns its
// cycles.
func (a *Accounting) TargetMiss() float64 {
	a.TargetMisses++
	a.TargetPenalty += a.cfg.TargetMissPenalty
	return a.cfg.TargetMissPenalty
}

// Cycles returns total modelled cycles.
func (a *Accounting) Cycles() float64 {
	return a.BaseCycles + a.BranchPenalty + a.TargetPenalty
}

// WastedFraction returns the fraction of cycles lost to conditional
// mispredictions — the Figure 1 metric.
func (a *Accounting) WastedFraction() float64 {
	t := a.Cycles()
	if t == 0 {
		return 0
	}
	return a.BranchPenalty / t
}

// IPC returns the modelled instructions per cycle.
func (a *Accounting) IPC() float64 {
	c := a.Cycles()
	if c == 0 {
		return 0
	}
	return float64(a.Instructions) / c
}
