package lint

import (
	"llbp/internal/lint/analysis"
	"llbp/internal/lint/dataflow"
)

// Lockorder derives the lock-acquisition graph for the service and
// telemetry packages — every sync.Mutex/RWMutex abstracted to a lock
// class like `service.job.mu`, with acquisitions made by callees folded
// in through bottom-up summaries — and rejects:
//
//   - acquisition-order cycles (lock A held while taking B in one path,
//     B while taking A in another: the classic deadlock);
//   - re-acquiring a lock class already held (self-deadlock on Go's
//     non-reentrant mutexes);
//   - telemetry instrument updates executed while any lock is held,
//     directly or through a call chain.
//
// The third rule supersedes the syntactic telemetrysafe hot-path lock
// rule from PR 3, which only saw updates lexically between Lock and
// Unlock in a single body; lockorder sees an update two calls below
// the critical section. Findings carry the acquisition evidence chain
// in Diagnostic.Path.
var Lockorder = &analysis.Analyzer{
	Name:       "lockorder",
	Doc:        "lock-acquisition graph for service+telemetry: no cycles, no re-entry, no telemetry updates under held locks (call-graph depth)",
	RunProgram: runLockorder,
}

func runLockorder(pass *analysis.ProgramPass) error {
	prog := dataflow.Build(pass.Fset, pass.Packages)
	eng := dataflow.NewLockEngine(prog, func(pkgPath string) bool {
		return hasSegment(pkgPath, "service", "telemetry")
	})
	eng.Run()
	for _, d := range eng.Findings {
		pass.Report(d)
	}
	return nil
}
