package client

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"

	"llbp/internal/session"
)

// Streaming-session client surface. A session is two half-duplex HTTP
// calls: PushSession (or PushSessionReader) streams llbp-session/1
// frames at the daemon while it holds the session's lease, and
// StreamSession pulls the answering prediction/verdict frames, resuming
// from its cursor across any number of interruptions.

// OpenSession opens a streaming prediction session.
func (c *Client) OpenSession(ctx context.Context, req session.Request) (session.Status, error) {
	if req.Schema == "" {
		req.Schema = session.Schema
	}
	raw, err := json.Marshal(req)
	if err != nil {
		return session.Status{}, fmt.Errorf("llbpd: encoding session request: %w", err)
	}
	var st session.Status
	if err := c.do(ctx, http.MethodPost, "/v1/session", raw, &st); err != nil {
		return session.Status{}, err
	}
	return st, nil
}

// Sessions lists every session on the daemon.
func (c *Client) Sessions(ctx context.Context) ([]session.Status, error) {
	var out []session.Status
	err := c.do(ctx, http.MethodGet, "/v1/session", nil, &out)
	return out, err
}

// Session fetches one session's status.
func (c *Client) Session(ctx context.Context, id string) (session.Status, error) {
	var st session.Status
	err := c.do(ctx, http.MethodGet, "/v1/session/"+id, nil, &st)
	return st, err
}

// CloseSession closes a session; its persisted frames stay readable.
func (c *Client) CloseSession(ctx context.Context, id string) (session.Status, error) {
	var st session.Status
	err := c.do(ctx, http.MethodDelete, "/v1/session/"+id, nil, &st)
	return st, err
}

// PushSession streams frames at a session on one push connection (the
// hello is prepended automatically) and returns the daemon's trailing
// summary. The connection claims the session's lease for its duration.
// Not idempotent as a whole — but batch application is: on a transport
// failure, re-push from one batch before the summary's LastSeq and the
// overlap is acknowledged without re-applying.
func (c *Client) PushSession(ctx context.Context, id, worker string, frames []session.Frame) (session.PushSummary, error) {
	pr, pw := io.Pipe()
	go func() {
		enc := json.NewEncoder(pw)
		for i := range frames {
			if err := enc.Encode(&frames[i]); err != nil {
				pw.CloseWithError(err)
				return
			}
		}
		pw.Close()
	}()
	return c.PushSessionReader(ctx, id, worker, pr)
}

// PushSessionReader streams raw NDJSON llbp-session/1 frames from body
// (hello excluded — it is prepended here) at a session. This is the
// piped-input path: llbpctl connects stdin straight through.
func (c *Client) PushSessionReader(ctx context.Context, id, worker string, body io.Reader) (session.PushSummary, error) {
	hello, err := json.Marshal(session.Frame{Type: session.FrameHello, Schema: session.Schema})
	if err != nil {
		return session.PushSummary{}, fmt.Errorf("llbpd: encoding hello: %w", err)
	}
	path := "/v1/session/" + id + "/branches"
	if worker != "" {
		path += "?worker=" + url.QueryEscape(worker)
	}
	rd := io.MultiReader(bytesReader(append(hello, '\n')), body)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, rd)
	if err != nil {
		return session.PushSummary{}, fmt.Errorf("llbpd: building request: %w", err)
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	resp, err := c.hc.Do(req)
	if err != nil {
		return session.PushSummary{}, fmt.Errorf("llbpd: pushing to session %s: %w", id, err)
	}
	defer resp.Body.Close()
	var sum session.PushSummary
	if err := json.NewDecoder(resp.Body).Decode(&sum); err != nil {
		return session.PushSummary{}, fmt.Errorf("llbpd: decoding push summary: %w", err)
	}
	if resp.StatusCode >= 300 && sum.Error == "" {
		return sum, &apiError{Status: resp.StatusCode, Message: "session push failed"}
	}
	return sum, nil
}

func bytesReader(b []byte) io.Reader { return &sliceReader{b: b} }

type sliceReader struct{ b []byte }

func (r *sliceReader) Read(p []byte) (int, error) {
	if len(r.b) == 0 {
		return 0, io.EOF
	}
	n := copy(p, r.b)
	r.b = r.b[n:]
	return n, nil
}

// StreamSession reads a session's output frames, invoking fn per frame.
// With follow, the stream runs until the session's done frame or ctx
// cancellation; without, it replays what exists and returns. A dropped
// connection resumes with ?from=<last delivered frame seq>, so fn sees
// every persisted frame exactly once across interruptions (ephemeral
// telemetry frames carry Seq 0 and may be re-delivered or skipped).
func (c *Client) StreamSession(ctx context.Context, id string, follow bool, fn func(session.OutFrame) error) error {
	var lastSeq uint64
	attempt := 0
	for {
		sawDone, advanced, err := c.streamSessionOnce(ctx, id, follow, lastSeq, &lastSeq, fn)
		if err == nil && (sawDone || !follow) {
			return nil
		}
		if fe, ok := err.(*fnError); ok {
			return fe.err
		}
		if err != nil {
			if _, ok := err.(*apiError); ok {
				return err
			}
			if ctx.Err() != nil {
				return err
			}
		}
		if advanced {
			attempt = 0
		}
		if attempt >= c.retries {
			if err == nil {
				err = fmt.Errorf("llbpd: stream for session %s ended before it closed", id)
			}
			return fmt.Errorf("llbpd: giving up resuming session %s stream after %d attempts: %w", id, c.retries, err)
		}
		if !c.policy.Sleep(ctx, attempt) {
			return fmt.Errorf("llbpd: resuming session %s stream: %w", id, ctx.Err())
		}
		attempt++
	}
}

func (c *Client) streamSessionOnce(ctx context.Context, id string, follow bool, from uint64, lastSeq *uint64, fn func(session.OutFrame) error) (sawDone, advanced bool, err error) {
	path := "/v1/session/" + id + "/stream"
	sep := "?"
	if follow {
		path += sep + "follow=1&telemetry=1"
		sep = "&"
	}
	if from > 0 {
		path += sep + "from=" + strconv.FormatUint(from, 10)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return false, false, fmt.Errorf("llbpd: building request: %w", err)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return false, false, fmt.Errorf("llbpd: streaming session %s: %w", id, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		return false, false, readAPIError(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), session.MaxFrameBytes)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var of session.OutFrame
		if err := json.Unmarshal(line, &of); err != nil {
			return sawDone, advanced, fmt.Errorf("llbpd: bad session stream line for %s: %w", id, err)
		}
		if of.Seq > 0 {
			*lastSeq = of.Seq
			advanced = true
		}
		if err := fn(of); err != nil {
			return sawDone, advanced, &fnError{err}
		}
		if of.Type == session.FrameDone {
			sawDone = true
		}
	}
	if err := sc.Err(); err != nil {
		return sawDone, advanced, fmt.Errorf("llbpd: streaming session %s: %w", id, err)
	}
	return sawDone, advanced, nil
}
