package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
)

// EventsSchema identifies the structured NDJSON event-log format: one
// header line {"schema":"llbp-events/1"} followed by one Event per line.
const EventsSchema = "llbp-events/1"

// The service lifecycle event vocabulary. cmd/telemetrycheck validates
// against these names, so emitters must not invent ad-hoc types.
const (
	EventJobSubmitted = "job.submitted"
	EventJobClaimed   = "job.claimed"
	EventLeaseRenewed = "lease.renewed"
	EventLeaseFenced  = "lease.fenced"
	EventJobRequeued  = "job.requeued"
	EventJobShed      = "job.shed"
	EventJobCompleted = "job.completed"

	// Streaming-session lifecycle (internal/session). The Job field of
	// these events carries the session ID.
	EventSessionOpened     = "session.opened"
	EventSessionClaimed    = "session.claimed"
	EventSessionCheckpoint = "session.checkpoint"
	EventSessionFenced     = "session.fenced"
	EventSessionDrained    = "session.drained"
	EventSessionResumed    = "session.resumed"
	EventSessionClosed     = "session.closed"
)

// KnownEventTypes returns the canonical event vocabulary, in lifecycle
// order.
func KnownEventTypes() []string {
	return []string{
		EventJobSubmitted, EventJobClaimed, EventLeaseRenewed,
		EventLeaseFenced, EventJobRequeued, EventJobShed, EventJobCompleted,
		EventSessionOpened, EventSessionClaimed, EventSessionCheckpoint,
		EventSessionFenced, EventSessionDrained, EventSessionResumed,
		EventSessionClosed,
	}
}

// Event is one llbp-events/1 NDJSON line. Field order is fixed by this
// struct declaration and encoding/json preserves it, so emitted lines are
// deterministic given deterministic contents — the event-log counterpart
// of the snapshot determinism contract.
type Event struct {
	// Seq is the log-wide 1-based sequence number, assigned by the
	// EventLog under the same lock that writes the line: file order and
	// Seq order always agree, even across concurrent emitters.
	Seq uint64 `json:"seq"`
	// TimeUnixMS stamps the event when the log has a clock (SetClock);
	// deterministic producers leave the clock unset and the field absent.
	TimeUnixMS int64 `json:"time_unix_ms,omitempty"`
	// Type is one of the Event* constants.
	Type string `json:"type"`
	// Job, Tenant, Worker and Epoch identify what the event happened to
	// and which dispatch did it.
	Job    string `json:"job,omitempty"`
	Tenant string `json:"tenant,omitempty"`
	Worker string `json:"worker,omitempty"`
	Epoch  uint64 `json:"epoch,omitempty"`
	// State carries the terminal state on job.completed events.
	State string `json:"state,omitempty"`
	// DurationMS carries the submit-to-terminal duration on
	// job.completed events.
	DurationMS float64 `json:"duration_ms,omitempty"`
	// Detail disambiguates within a type (admission lane, shed reason,
	// fence site).
	Detail string `json:"detail,omitempty"`
}

// eventHeader is the first line of every event log.
type eventHeader struct {
	Schema string `json:"schema"`
}

// EventLog is an append-only structured event sink. A nil *EventLog is
// the disabled log — Emit on nil is a no-op — so emitters never test for
// enablement. Emit is safe for concurrent use; sequence numbers are
// assigned under the write lock, so the file's line order is the Seq
// order.
type EventLog struct {
	mu        sync.Mutex
	w         *bufio.Writer
	c         io.Closer
	seq       uint64
	err       error
	header    bool
	nowMillis func() int64
}

// NewEventLog starts an event log writing to w. The llbp-events/1 header
// line is written lazily with the first event.
func NewEventLog(w io.Writer) *EventLog {
	l := &EventLog{w: bufio.NewWriter(w)}
	if c, ok := w.(io.Closer); ok {
		l.c = c
	}
	return l
}

// CreateEventLog creates (truncating) an event-log file at path. Each
// daemon run owns one fresh log, so sequence numbers always start at 1.
func CreateEventLog(path string) (*EventLog, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("telemetry: creating event log: %w", err)
	}
	return NewEventLog(f), nil
}

// SetClock gives the log a wall-clock source (Unix milliseconds) used to
// stamp events. Leave it unset for byte-deterministic logs. Nil logs
// ignore the call.
func (l *EventLog) SetClock(nowMillis func() int64) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.nowMillis = nowMillis
	l.mu.Unlock()
}

// Emit appends one event, assigning its sequence number and timestamp.
// Events are flushed line-by-line so the log is tailable and a crash
// loses at most the event being written. Emit on a nil or failed log is
// a no-op (the first error latches, observable via Err).
//
//llbplint:sink -- event logs are diffed across runs in CI; payloads must be byte-deterministic (timestamps come only from the injected clock)
func (l *EventLog) Emit(ev Event) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil || l.w == nil {
		return
	}
	if !l.header {
		hdr, _ := json.Marshal(eventHeader{Schema: EventsSchema})
		if _, l.err = l.w.Write(append(hdr, '\n')); l.err != nil {
			return
		}
		l.header = true
	}
	l.seq++
	ev.Seq = l.seq
	if l.nowMillis != nil {
		ev.TimeUnixMS = l.nowMillis()
	}
	line, err := json.Marshal(ev)
	if err != nil {
		l.err = err
		return
	}
	if _, l.err = l.w.Write(append(line, '\n')); l.err != nil {
		return
	}
	l.err = l.w.Flush()
}

// Seq returns the sequence number of the last emitted event (0 for a nil
// or empty log).
func (l *EventLog) Seq() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// Err returns the first write or encoding error, if any.
func (l *EventLog) Err() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// Close flushes and closes the log (closing the underlying file when the
// log owns one). Nil logs close cleanly.
func (l *EventLog) Close() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.w != nil {
		if ferr := l.w.Flush(); l.err == nil {
			l.err = ferr
		}
		l.w = nil
	}
	if l.c != nil {
		if cerr := l.c.Close(); l.err == nil {
			l.err = cerr
		}
		l.c = nil
	}
	return l.err
}

// ReadEvents parses an llbp-events/1 document, validating the header,
// that every event carries a known type, and that sequence numbers are
// exactly 1..N in file order — the invariant concurrent emitters must
// not break. It is the reader side used by cmd/telemetrycheck and tests.
func ReadEvents(data []byte) ([]Event, error) {
	lines := bytes.Split(data, []byte("\n"))
	if len(lines) == 0 || len(bytes.TrimSpace(lines[0])) == 0 {
		return nil, fmt.Errorf("telemetry: event log is empty (no header)")
	}
	var hdr eventHeader
	if err := json.Unmarshal(lines[0], &hdr); err != nil {
		return nil, fmt.Errorf("telemetry: event log header: %w", err)
	}
	if hdr.Schema != EventsSchema {
		return nil, fmt.Errorf("telemetry: event schema %q, want %q", hdr.Schema, EventsSchema)
	}
	known := map[string]bool{}
	for _, t := range KnownEventTypes() {
		known[t] = true
	}
	var events []Event
	for i, line := range lines[1:] {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var ev Event
		if err := json.Unmarshal(line, &ev); err != nil {
			return nil, fmt.Errorf("telemetry: event line %d: %w", i+2, err)
		}
		if !known[ev.Type] {
			return nil, fmt.Errorf("telemetry: event line %d: unknown type %q", i+2, ev.Type)
		}
		if want := uint64(len(events) + 1); ev.Seq != want {
			return nil, fmt.Errorf("telemetry: event line %d: seq %d, want %d (sequence must be contiguous from 1)", i+2, ev.Seq, want)
		}
		events = append(events, ev)
	}
	return events, nil
}
