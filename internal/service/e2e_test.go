package service_test

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"llbp/internal/experiments"
	"llbp/internal/harness"
	"llbp/internal/service"
	"llbp/internal/service/client"
	"llbp/internal/telemetry"
)

// daemon is an in-process llbpd: a real experiments.Harness wired into a
// service.Server behind a real HTTP listener, mirroring cmd/llbpd.
type daemon struct {
	srv  *service.Server
	hs   *httptest.Server
	cl   *client.Client
	reg  *telemetry.Registry
	cellJ *harness.Journal
}

func startDaemon(t *testing.T, dir string, workers int) *daemon {
	t.Helper()
	reg := telemetry.NewRegistry()
	cellJ, err := harness.OpenJournal(filepath.Join(dir, "llbpd.journal"))
	if err != nil {
		t.Fatal(err)
	}
	cfg := experiments.Config{
		Warmup: 1, Measure: 1, // per-cell budgets come from the CellSpec
		Parallelism: workers,
		Journal:     cellJ,
		Telemetry:   reg,
	}
	var srv *service.Server
	cfg.CellProgress = func(key string, processed, total uint64) {
		if srv != nil {
			srv.CellProgress(key, processed, total)
		}
	}
	h := experiments.NewHarness(cfg)
	srv, err = service.New(service.Options{
		Runner:     h,
		Workers:    workers,
		QueueDepth: 8,
		Registry:   reg,
		JobLogPath: filepath.Join(dir, "llbpd.journal.jobs"),
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	hs := httptest.NewServer(srv.Handler())
	return &daemon{srv: srv, hs: hs, cl: client.New(hs.URL), reg: reg, cellJ: cellJ}
}

func (d *daemon) stop(t *testing.T) {
	t.Helper()
	d.hs.Close()
	if err := d.srv.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// e2eCells are small real-simulation cells: two predictors over one
// workload, budgets sized for test speed.
func e2eCells() []experiments.CellSpec {
	return []experiments.CellSpec{
		{Workload: "Tomcat", Predictor: "64k", Warmup: 2_000, Measure: 20_000},
		{Workload: "Tomcat", Predictor: "llbp", Warmup: 2_000, Measure: 20_000},
	}
}

// localReference runs the same cells on a standalone harness — the exact
// code path `cmd/experiments` uses without -server — and returns each
// cell's canonical JSON encoding.
func localReference(t *testing.T, cells []experiments.CellSpec) map[string][]byte {
	t.Helper()
	h := experiments.NewHarness(experiments.Config{Warmup: 1, Measure: 1})
	ref := make(map[string][]byte, len(cells))
	for _, cs := range cells {
		out, err := h.RunCell(context.Background(), cs)
		if err != nil {
			t.Fatalf("local %s: %v", cs.Key(), err)
		}
		raw, err := json.Marshal(out)
		if err != nil {
			t.Fatal(err)
		}
		ref[cs.Key()] = raw
	}
	return ref
}

// TestE2EStreamMatchesLocal is the acceptance-criterion test: a job
// submitted to the daemon streams per-cell JSON-lines whose values are
// byte-identical to the same cells simulated locally, and the client's
// RunCell (the `cmd/experiments -server` backend) returns outputs that
// re-encode to those same bytes.
func TestE2EStreamMatchesLocal(t *testing.T) {
	cells := e2eCells()
	ref := localReference(t, cells)

	d := startDaemon(t, t.TempDir(), 2)
	defer d.stop(t)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	st, err := d.cl.Submit(ctx, service.JobRequest{Schema: service.JobSchema, Cells: cells})
	if err != nil {
		t.Fatal(err)
	}
	streamed := make(map[string][]byte)
	var final *service.StreamEvent
	err = d.cl.Stream(ctx, st.ID, true, func(ev service.StreamEvent) error {
		switch ev.Type {
		case "cell":
			if ev.Error != "" {
				t.Errorf("cell %s failed: %s", ev.Key, ev.Error)
			}
			streamed[ev.Key] = append([]byte(nil), ev.Value...)
		case "done":
			final = &ev
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if final == nil || final.State != service.StateDone || final.Completed != len(cells) {
		t.Fatalf("final event = %+v", final)
	}
	for _, cs := range cells {
		key := cs.Key()
		if string(streamed[key]) != string(ref[key]) {
			t.Errorf("cell %s: streamed bytes differ from local run\n stream: %s\n local:  %s",
				key, streamed[key], ref[key])
		}
	}

	// The served backend of cmd/experiments: client.RunCell against the
	// daemon must round-trip to the same bytes (dedupes onto the journal).
	for _, cs := range cells {
		out, err := d.cl.RunCell(ctx, cs)
		if err != nil {
			t.Fatalf("client RunCell %s: %v", cs.Key(), err)
		}
		raw, err := json.Marshal(out)
		if err != nil {
			t.Fatal(err)
		}
		if string(raw) != string(ref[cs.Key()]) {
			t.Errorf("cell %s: RunCell bytes differ from local run", cs.Key())
		}
	}
}

// TestE2EKillResume is the crash-recovery acceptance test: a daemon
// killed mid-sweep resumes from its journals on restart and completes
// the remaining cells exactly once — journaled cells are restored (not
// recomputed) and the final stream carries every cell with bytes
// identical to an uninterrupted local run.
func TestE2EKillResume(t *testing.T) {
	dir := t.TempDir()
	// Three cells on one worker: the first is quick, the second large
	// enough that the kill lands while it is in flight.
	cells := []experiments.CellSpec{
		{Workload: "Tomcat", Predictor: "64k", Warmup: 1_000, Measure: 10_000},
		{Workload: "Tomcat", Predictor: "64k", Warmup: 2_000, Measure: 600_000},
		{Workload: "Tomcat", Predictor: "llbp", Warmup: 2_000, Measure: 200_000},
	}
	ref := localReference(t, cells)

	d1 := startDaemon(t, dir, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	st, err := d1.cl.Submit(ctx, service.JobRequest{Schema: service.JobSchema, Cells: cells})
	if err != nil {
		t.Fatal(err)
	}

	// Follow the stream until the first cell completes, then kill the
	// daemon: no drain, no journal close — the SIGKILL case. The stream
	// gets its own context: after Kill the job is non-terminal, so a
	// follower would otherwise hold its connection open forever.
	firstCell := make(chan struct{})
	streamCtx, stopStream := context.WithCancel(ctx)
	defer stopStream()
	go d1.cl.Stream(streamCtx, st.ID, true, func(ev service.StreamEvent) error {
		if ev.Type == "cell" {
			select {
			case firstCell <- struct{}{}:
			default:
			}
		}
		return nil
	})
	select {
	case <-firstCell:
	case <-ctx.Done():
		t.Fatal("no cell completed before the deadline")
	}
	d1.srv.Kill()
	stopStream()
	d1.hs.Close()

	if jst, ok := d1.srv.Job(st.ID); !ok || jst.State.Terminal() {
		t.Fatalf("killed job state = %+v, %v; want non-terminal", jst, ok)
	}
	journaled := d1.cellJ.Len()
	if journaled == 0 || journaled >= len(cells) {
		t.Fatalf("kill landed outside the sweep: %d of %d cells journaled", journaled, len(cells))
	}

	// Restart: a fresh harness + server over the same journal files. The
	// job must come back queued, restore the journaled cells without
	// recomputing them, and finish the rest.
	d2 := startDaemon(t, dir, 1)
	if jst, ok := d2.srv.Job(st.ID); !ok || jst.State != service.StateQueued {
		t.Fatalf("resumed job state = %+v, %v; want queued", jst, ok)
	}
	streamed := make(map[string][]byte)
	var final *service.StreamEvent
	err = d2.cl.Stream(ctx, st.ID, true, func(ev service.StreamEvent) error {
		switch ev.Type {
		case "cell":
			if ev.Error != "" {
				t.Errorf("resumed cell %s failed: %s", ev.Key, ev.Error)
			}
			streamed[ev.Key] = append([]byte(nil), ev.Value...)
		case "done":
			final = &ev
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if final == nil || final.State != service.StateDone || final.Completed != len(cells) {
		t.Fatalf("resumed final event = %+v", final)
	}

	// Exactly-once: the restarted harness served the journaled cells from
	// the journal (hits) and simulated only the remainder.
	snap := d2.reg.Snapshot()
	hits := snap.Counters["harness_journal_hits"]
	run := snap.Counters["harness_cells_run"]
	if hits != uint64(journaled) {
		t.Errorf("journal hits after resume = %d, want %d", hits, journaled)
	}
	if run != uint64(len(cells)) {
		t.Errorf("cells dispatched after resume = %d, want %d", run, len(cells))
	}
	// And every cell — restored or resimulated — matches the
	// uninterrupted local reference byte for byte.
	for _, cs := range cells {
		key := cs.Key()
		if string(streamed[key]) != string(ref[key]) {
			t.Errorf("cell %s: resumed bytes differ from local run", key)
		}
	}
	d2.stop(t)
}
