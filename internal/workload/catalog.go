package workload

import (
	"fmt"
	"sync"
)

// The catalog mirrors Table I of the paper: ten server workloads traced on
// gem5 (NodeApp, PHPWiki, the DaCapo/Renaissance/BenchBase Java suites)
// plus four Google production traces (Charlie, Delta, Merced, Whiskey).
// Each synthetic instance is parameterized to echo the qualitative
// behaviour the paper reports for its namesake: branch working-set size,
// misprediction rate, the share of complex (context-correlated) branches,
// and — for PHPWiki — an unusually high indirect-call misprediction rate
// that keeps resetting LLBP's prefetcher (§VII-A).
//
// Absolute MPKI values are not calibrated to the real traces (those are
// unavailable); parameter diversity preserves the cross-workload spread
// the figures rely on.

// base returns the parameter defaults shared by the catalog.
func base(name string, seed uint64) Params {
	return Params{
		Name:             name,
		Seed:             seed,
		Functions:        900,
		RequestTypes:     48,
		ZipfSkew:         1.35,
		CondMin:          3,
		CondMax:          12,
		CallMin:          3,
		CallMax:          6,
		LoopMin:          1,
		LoopMax:          1,
		MaxDepth:         12,
		MeanBlockInstrs:  6.5,
		FracLocal:        0.10,
		FracGlobal:       0.12,
		FracContext:      0.05,
		FracNoisy:        0.006,
		FracMarker:       0.15,
		ContextPhaseMin:  2,
		ContextPhaseMax:  5,
		ContextNoise:     0.01,
		GlobalHistBits:   8,
		NoisyRate:        0.5,
		MidBiasFrac:      0.018,
		LoopTripMin:      3,
		LoopTripMax:      6,
		ContextLoops:     true,
		IndirectFrac:     0.12,
		IndirectFanout:   6,
		IndirectMissRate: 0.05,
		L1IMissesPerKI:   20,
	}
}

// catalogParams builds the 14 Table I workloads.
func catalogParams() []Params {
	nodeApp := base("NodeApp", 101)
	nodeApp.Functions = 1500
	nodeApp.FracContext = 0.14 // JS callback soup: heavily context-correlated
	nodeApp.FracNoisy = 0.002
	nodeApp.ContextNoise = 0.004
	nodeApp.RequestTypes = 72
	nodeApp.ZipfSkew = 0.9
	nodeApp.L1IMissesPerKI = 24

	phpWiki := base("PHPWiki", 102)
	phpWiki.Functions = 950
	phpWiki.FracContext = 0.07
	phpWiki.IndirectFrac = 0.22 // interpreter dispatch
	phpWiki.IndirectFanout = 8
	phpWiki.IndirectMissRate = 0.30 // resets LLBP's prefetcher (§VII-A)
	phpWiki.L1IMissesPerKI = 26

	tpcc := base("TPCC", 103)
	tpcc.Functions = 1100
	tpcc.FracGlobal = 0.16
	tpcc.FracContext = 0.05
	tpcc.FracNoisy = 0.015
	tpcc.L1IMissesPerKI = 22

	twitter := base("Twitter", 104)
	twitter.Functions = 800
	twitter.FracContext = 0.06
	twitter.FracNoisy = 0.02
	twitter.ZipfSkew = 1.25

	wikipedia := base("Wikipedia", 105)
	wikipedia.Functions = 1050
	wikipedia.FracContext = 0.05
	wikipedia.FracGlobal = 0.14
	wikipedia.FracNoisy = 0.012

	kafka := base("Kafka", 106)
	kafka.Functions = 450
	kafka.FracContext = 0.02 // mostly easy streaming paths: low MPKI
	kafka.FracGlobal = 0.08
	kafka.FracLocal = 0.14
	kafka.FracNoisy = 0.001
	kafka.ContextNoise = 0.004
	kafka.ZipfSkew = 1.5
	kafka.IndirectMissRate = 0.02
	kafka.L1IMissesPerKI = 12

	spring := base("Spring", 107)
	spring.Functions = 1500 // deep framework call stacks
	spring.CondMin, spring.CondMax = 2, 10
	spring.FracContext = 0.045
	spring.MaxDepth = 16
	spring.L1IMissesPerKI = 30

	tomcat := base("Tomcat", 108)
	tomcat.Functions = 1700 // largest branch working set (§II-D studies Tomcat)
	tomcat.CondMin, tomcat.CondMax = 4, 14
	tomcat.FracContext = 0.065
	tomcat.FracNoisy = 0.018
	tomcat.RequestTypes = 64
	tomcat.L1IMissesPerKI = 28

	chirper := base("Chirper", 109)
	chirper.Functions = 850
	chirper.FracContext = 0.055
	chirper.FracNoisy = 0.01

	httpW := base("HTTP", 110)
	httpW.Functions = 750
	httpW.FracContext = 0.05
	httpW.FracLocal = 0.13
	httpW.FracNoisy = 0.008

	charlie := base("Charlie", 111)
	charlie.Functions = 1400
	charlie.FracContext = 0.07
	charlie.FracNoisy = 0.02
	charlie.RequestTypes = 72
	charlie.ZipfSkew = 0.75
	charlie.L1IMissesPerKI = 32

	delta := base("Delta", 112)
	delta.Functions = 1300
	delta.FracContext = 0.05
	delta.FracGlobal = 0.17
	delta.FracNoisy = 0.022
	delta.ZipfSkew = 0.75

	merced := base("Merced", 113)
	merced.Functions = 1450
	merced.FracContext = 0.10 // second-largest LLBP gain in Fig 9
	merced.FracNoisy = 0.012
	merced.ContextNoise = 0.012
	merced.RequestTypes = 60
	merced.ZipfSkew = 0.8

	whiskey := base("Whiskey", 114)
	whiskey.Functions = 1200
	whiskey.FracContext = 0.06
	whiskey.FracNoisy = 0.016
	whiskey.ZipfSkew = 0.85

	return []Params{
		nodeApp, phpWiki, tpcc, twitter, wikipedia, kafka, spring,
		tomcat, chirper, httpW, charlie, delta, merced, whiskey,
	}
}

var (
	catalogOnce sync.Once
	catalogSrcs []*Source
	catalogIdx  map[string]*Source
)

func initCatalog() {
	params := catalogParams()
	catalogSrcs = make([]*Source, len(params))
	catalogIdx = make(map[string]*Source, len(params))
	for i, p := range params {
		catalogSrcs[i] = MustNew(p)
		catalogIdx[p.Name] = catalogSrcs[i]
	}
}

// Catalog returns the 14 Table I workloads, in the paper's order. Sources
// are shared and immutable; Open gives independent replay streams.
func Catalog() []*Source {
	catalogOnce.Do(initCatalog)
	return catalogSrcs
}

// ServerWorkloads returns the ten gem5-style server workloads (the subset
// used by the hardware study of Figure 1).
func ServerWorkloads() []*Source {
	return Catalog()[:10]
}

// ByName looks up a catalog workload.
func ByName(name string) (*Source, error) {
	catalogOnce.Do(initCatalog)
	s, ok := catalogIdx[name]
	if !ok {
		return nil, fmt.Errorf("workload: unknown workload %q (have %v)", name, Names())
	}
	return s, nil
}

// Names returns the catalog workload names in order.
func Names() []string {
	catalogOnce.Do(initCatalog)
	out := make([]string, len(catalogSrcs))
	for i, s := range catalogSrcs {
		out[i] = s.Name()
	}
	return out
}
