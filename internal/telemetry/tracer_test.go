package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// TestTracerGolden pins the exact trace-event output: a JSON array, one
// event per line, terminated by "]". chrome://tracing and Perfetto load
// this shape directly.
func TestTracerGolden(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	tr.ProcessName(PidSim, "sim:Tomcat")
	tr.ThreadName(PidSim, 1, "driver")
	tr.Span(PidSim, 1, "warmup", "phase", 0, 1000, map[string]any{"branches": 200})
	tr.Instant(PidSim, 1, "reset", "pipeline", 1500, nil)
	tr.Counter(PidSim, "mpki", 2000, map[string]float64{"mpki": 3.25})
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	const golden = `[
{"name":"process_name","ph":"M","ts":0,"pid":1,"tid":0,"args":{"name":"sim:Tomcat"}},
{"name":"thread_name","ph":"M","ts":0,"pid":1,"tid":1,"args":{"name":"driver"}},
{"name":"warmup","cat":"phase","ph":"X","ts":0,"dur":1000,"pid":1,"tid":1,"args":{"branches":200}},
{"name":"reset","cat":"pipeline","ph":"i","ts":1500,"pid":1,"tid":1,"s":"t"},
{"name":"mpki","ph":"C","ts":2000,"pid":1,"tid":0,"args":{"mpki":3.25}}
]
`
	if got := buf.String(); got != golden {
		t.Errorf("trace output mismatch:\n got: %q\nwant: %q", got, golden)
	}
}

// TestTracerValidJSON: whatever is emitted must parse as one JSON array
// of objects with the mandatory trace-event fields.
func TestTracerValidJSON(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	tr.Span(PidHarness, 3, "cell", "harness", 10, 250, map[string]any{"key": "Tomcat|llbp", "attempts": 1})
	tr.Counter(PidSim, "ipc", 99, map[string]float64{"ipc": 1.5})
	tr.Instant(PidSim, 0, "phase", "sim", 0, nil)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("trace is not a JSON array: %v", err)
	}
	if len(events) != 3 {
		t.Fatalf("got %d events, want 3", len(events))
	}
	for i, ev := range events {
		for _, field := range []string{"name", "ph", "ts", "pid"} {
			if _, ok := ev[field]; !ok {
				t.Errorf("event %d missing %q: %v", i, field, ev)
			}
		}
	}
	// One event per line between the brackets.
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3+2 {
		t.Errorf("got %d lines, want %d (array brackets + one event per line)", len(lines), 3+2)
	}
}

// TestTracerEmpty: a tracer closed without events still writes a valid
// (empty) JSON array.
func TestTracerEmpty(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("empty trace invalid: %v (%q)", err, buf.String())
	}
	if len(events) != 0 {
		t.Errorf("empty tracer emitted %d events", len(events))
	}
}

// TestTracerNil: nil tracers are fully inert.
func TestTracerNil(t *testing.T) {
	var tr *Tracer
	tr.Span(1, 1, "x", "c", 0, 1, nil)
	tr.Instant(1, 1, "x", "c", 0, nil)
	tr.Counter(1, "x", 0, nil)
	tr.ProcessName(1, "p")
	if tr.Since() != 0 || tr.Events() != 0 || tr.Err() != nil || tr.Close() != nil {
		t.Error("nil tracer is not inert")
	}
}

// TestTracerConcurrent: the harness emits cell spans from many
// goroutines; the output must stay one well-formed array.
func TestTracerConcurrent(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	var wg sync.WaitGroup
	const n = 8
	for g := 0; g < n; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				tr.Span(PidHarness, g, "cell", "harness", float64(i), 1, nil)
			}
		}(g)
	}
	wg.Wait()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("concurrent trace invalid: %v", err)
	}
	if len(events) != n*50 {
		t.Errorf("got %d events, want %d", len(events), n*50)
	}
}
