package trace

import (
	"reflect"
	"testing"
)

func skipFixture(n int) []Branch {
	out := make([]Branch, n)
	for i := range out {
		out[i] = Branch{
			PC:           0x1000 + uint64(i)*4,
			Target:       0x2000 + uint64(i)*4,
			Type:         BranchType(i % 6),
			Taken:        i%3 == 0,
			Instructions: uint32(i%7 + 1),
		}
	}
	return out
}

// TestSkip: a skipped view replays exactly the suffix of the stream, via
// both the record and the batch paths, with degenerate skips handled
// (skip 0 = the source itself; skip ≥ length = immediate EOF).
func TestSkip(t *testing.T) {
	branches := skipFixture(500)
	src := &SliceSource{SourceName: "skip-test", Branches: branches}

	for _, n := range []uint64{1, 13, 499, 500, 700} {
		view := Skip(src, n)
		if view.Name() != src.Name() {
			t.Fatalf("skip renamed the source: %q", view.Name())
		}
		want := []Branch{}
		if n < uint64(len(branches)) {
			want = branches[n:]
		}

		var got []Branch
		r := view.Open()
		var b Branch
		for {
			err := r.Read(&b)
			if err != nil {
				if !IsEOF(err) {
					t.Fatal(err)
				}
				break
			}
			got = append(got, b)
		}
		if len(got) != len(want) || (len(want) > 0 && !reflect.DeepEqual(got, want)) {
			t.Fatalf("skip=%d: record replay diverged (%d branches, want %d)", n, len(got), len(want))
		}

		br := view.(BatchSource).OpenBatch()
		buf := make([]Branch, 128)
		var batched []Branch
		for {
			k, err := br.ReadBatch(buf)
			batched = append(batched, buf[:k]...)
			if err != nil {
				if !IsEOF(err) {
					t.Fatal(err)
				}
				break
			}
		}
		if len(batched) != len(want) || (len(want) > 0 && !reflect.DeepEqual(batched, want)) {
			t.Fatalf("skip=%d: batched replay diverged (%d branches, want %d)", n, len(batched), len(want))
		}
	}

	if Skip(src, 0) != Source(src) {
		t.Error("Skip(src, 0) should return src itself")
	}
}
