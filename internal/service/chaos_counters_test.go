package service

// Exact-accounting chaos test: every observability counter and event
// must match the injected failure script exactly — not "at least one
// fence" but precisely as many as the scenario causes. This is the
// contract the operator view depends on: a fence count that drifts from
// reality (double-counted stand-downs, phantom requeues) makes the
// telemetry useless for diagnosing real incidents.

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"llbp/internal/chaos"
	"llbp/internal/experiments"
	"llbp/internal/telemetry"
)

// TestChaosCountersExact scripts two failures against two single-cell
// jobs on one worker — a panic at the first cell pickup, a stall at the
// third — and asserts the counters and the event log agree with the
// script to the digit:
//
//	dispatch 1: job1 claimed, chaos panic     → panics=1, no fence
//	reap:       lease aged out                → reclaimed=1, requeued=1
//	dispatch 2: job1 claimed, runs, done      → completed=1
//	dispatch 3: job2 claimed, chaos stall     → lease held, no progress
//	reap:       lease aged out                → reclaimed=2, requeued=2
//	            stalled dispatch stands down  → fences=1 (exactly one)
//	dispatch 4: job2 claimed, runs, done      → completed=2
func TestChaosCountersExact(t *testing.T) {
	clock := newFakeClock()
	stub := newStubRunner()
	reg := telemetry.NewRegistry()
	inj := chaos.New(
		chaos.Rule{Hook: chaos.WorkerPanic, At: 1},
		chaos.Rule{Hook: chaos.WorkerStall, At: 2},
	)
	eventsPath := filepath.Join(t.TempDir(), "events.ndjson")
	events, err := telemetry.CreateEventLog(eventsPath)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Options{
		Runner:             stub,
		Workers:            1,
		LeaseTTL:           time.Minute,
		SupervisorInterval: time.Hour, // ticker parked; the test reaps by hand
		Now:                clock.Now,
		Chaos:              inj,
		Registry:           reg,
		Events:             events,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	defer s.Kill()

	counter := func(name string) uint64 { return reg.Snapshot().Counters[name] }
	waitCounter := func(name string, want uint64) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for counter(name) != want {
			if time.Now().After(deadline) {
				t.Fatalf("%s = %d, want %d", name, counter(name), want)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	// Dispatch 1: the claim lands, then chaos kills the worker at cell
	// pickup. The lease is now orphaned.
	job1, _, err := s.Submit(JobRequest{Schema: JobSchema, Cells: []experiments.CellSpec{testCell(1)}})
	if err != nil {
		t.Fatal(err)
	}
	waitCounter("service_worker_panics", 1)
	clock.Advance(2 * time.Minute)
	s.reapLeases()
	if got := counter("service_leases_reclaimed"); got != 1 {
		t.Fatalf("service_leases_reclaimed after panic reap = %d, want 1", got)
	}

	// Dispatch 2: the surviving worker re-claims job1 and completes it.
	waitStart(t, stub)
	stub.release <- struct{}{}
	waitState(t, s, job1.ID, StateDone)

	// Dispatch 3: job2's pickup is the WorkerStall hook's second consult
	// — the worker wedges holding the lease. Wait for the firing (the
	// claim precedes the hook), then age the lease and reap.
	job2, _, err := s.Submit(JobRequest{Schema: JobSchema, Cells: []experiments.CellSpec{testCell(2)}})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for inj.Count(chaos.WorkerStall) < 2 {
		if time.Now().After(deadline) {
			t.Fatal("chaos stall never consulted")
		}
		time.Sleep(5 * time.Millisecond)
	}
	clock.Advance(2 * time.Minute)
	s.reapLeases()
	if got := counter("service_leases_reclaimed"); got != 2 {
		t.Fatalf("service_leases_reclaimed after stall reap = %d, want 2", got)
	}

	// Dispatch 4: job2 re-claimed and completed; the stood-down stall
	// dispatch must have accounted exactly one fence by then.
	waitStart(t, stub)
	stub.release <- struct{}{}
	waitState(t, s, job2.ID, StateDone)
	waitCounter("service_epoch_fences", 1)

	// Counters vs the injection script, exactly.
	var panicFirings, stallFirings uint64
	for _, f := range inj.Firings() {
		switch f.Hook {
		case chaos.WorkerPanic:
			panicFirings++
		case chaos.WorkerStall:
			stallFirings++
		}
	}
	for name, want := range map[string]uint64{
		"service_worker_panics":    panicFirings, // == 1
		"service_epoch_fences":     stallFirings, // == 1: the stall's stand-down, nothing else
		"service_leases_reclaimed": panicFirings + stallFirings,
		"service_jobs_requeued":    panicFirings + stallFirings,
		"service_jobs_submitted":   2,
		"service_jobs_completed":   2,
		"service_jobs_failed":      0,
	} {
		if got := counter(name); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	if panicFirings != 1 || stallFirings != 1 {
		t.Fatalf("firings = %d panics, %d stalls; the script fired unexpectedly", panicFirings, stallFirings)
	}

	// The event log tells the same story, record for record.
	s.Kill()
	if err := events.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(eventsPath)
	if err != nil {
		t.Fatal(err)
	}
	evs, err := telemetry.ReadEvents(raw)
	if err != nil {
		t.Fatalf("event log invalid: %v", err)
	}
	byType := map[string]int{}
	for _, ev := range evs {
		byType[ev.Type]++
	}
	for typ, want := range map[string]int{
		telemetry.EventJobSubmitted: 2,
		telemetry.EventJobClaimed:   4, // dispatches 1-4 each claimed
		telemetry.EventJobRequeued:  2,
		telemetry.EventLeaseFenced:  1,
		telemetry.EventJobCompleted: 2,
		telemetry.EventJobShed:      0,
	} {
		if byType[typ] != want {
			t.Errorf("event log has %d %s records, want %d (all: %v)", byType[typ], typ, want, byType)
		}
	}
}
