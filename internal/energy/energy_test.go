package energy

import (
	"math"
	"testing"
)

// within reports whether got is within frac of want.
func within(got, want, frac float64) bool {
	return math.Abs(got-want) <= frac*want
}

// TestTableIIIFit: the analytic model must land near the paper's CACTI
// numbers (Table III). Tolerances are deliberately loose — the model is a
// power-law fit, not CACTI.
func TestTableIIIFit(t *testing.T) {
	cases := []struct {
		s              Structure
		lat, eng       float64
		cycles         int
		latTol, engTol float64
	}{
		{TSL64K, 1.0, 1.0, 2, 0.01, 0.01},
		{TSL512K, 2.55, 4.58, 4, 0.05, 0.05},
		{LLBP, 2.68, 4.44, 4, 0.10, 0.10},
		{CD, 0.80, 0.30, 1, 0.10, 0.10},
		{PB64, 0.62, 0.25, 1, 0.10, 0.40},
	}
	for _, c := range cases {
		if got := c.s.RelativeLatency(); !within(got, c.lat, c.latTol) {
			t.Errorf("%s latency = %.3f, want %.2f ±%.0f%%", c.s.Name, got, c.lat, c.latTol*100)
		}
		if got := c.s.RelativeEnergy(); !within(got, c.eng, c.engTol) {
			t.Errorf("%s energy = %.3f, want %.2f ±%.0f%%", c.s.Name, got, c.eng, c.engTol*100)
		}
		if got := c.s.Cycles(); got != c.cycles {
			t.Errorf("%s cycles = %d, want %d", c.s.Name, got, c.cycles)
		}
	}
}

func TestMonotoneInSize(t *testing.T) {
	prev := 0.0
	for _, kib := range []float64{2, 8, 32, 64, 128, 512, 2048} {
		s := Structure{Name: "x", KiB: kib, Ways: 1, AccessBytes: 42}
		lat := s.RelativeLatency()
		if lat <= prev {
			t.Errorf("latency not monotone at %v KiB", kib)
		}
		prev = lat
	}
	prev = 0
	for _, kib := range []float64{2, 8, 32, 64, 128, 512, 2048} {
		s := Structure{Name: "x", KiB: kib, Ways: 1, AccessBytes: 42}
		e := s.RelativeEnergy()
		if e <= prev {
			t.Errorf("energy not monotone at %v KiB", kib)
		}
		prev = e
	}
}

func TestAssociativityCosts(t *testing.T) {
	dm := Structure{KiB: 64, Ways: 1, AccessBytes: 42}
	sa := Structure{KiB: 64, Ways: 8, AccessBytes: 42}
	if sa.RelativeLatency() <= dm.RelativeLatency() {
		t.Error("associativity must cost latency")
	}
	if sa.RelativeEnergy() <= dm.RelativeEnergy() {
		t.Error("associativity must cost energy")
	}
}

func TestWidthCostsEnergy(t *testing.T) {
	narrow := Structure{KiB: 64, Ways: 1, AccessBytes: 1}
	wide := Structure{KiB: 64, Ways: 1, AccessBytes: 42}
	if narrow.RelativeEnergy() >= wide.RelativeEnergy() {
		t.Error("narrow accesses must cost less energy")
	}
}

func TestPBCapacity(t *testing.T) {
	if got := PB(64).KiB; got != 2.25 {
		t.Errorf("PB(64) = %v KiB, want 2.25 (§VI)", got)
	}
	if PB(16).KiB >= PB(256).KiB {
		t.Error("PB capacity must scale with entries")
	}
}

func TestTableIIIOrder(t *testing.T) {
	rows := TableIII()
	if len(rows) != 5 {
		t.Fatalf("TableIII has %d rows", len(rows))
	}
	want := []string{"64KiB TSL", "512KiB TSL", "LLBP", "CD", "PB (64 entries)"}
	for i, w := range want {
		if rows[i].Name != w {
			t.Errorf("row %d = %s, want %s", i, rows[i].Name, w)
		}
	}
}

// TestDesignEnergyFig12Regime: with the paper's access rates (PB every
// prediction, CD every ~1.6 predictions, LLBP transfer every ~2
// predictions), the LLBP structures should cost a fraction of the 64K TSL
// and the whole design should land well below the 512K TSL's 4.58×.
func TestDesignEnergyFig12Regime(t *testing.T) {
	d := DesignEnergy{Components: []Component{
		{TSL64K, 1},
		{CD, 0.6},
		{PB64, 1},
		{LLBP, 0.5},
	}}
	total := d.Total()
	if total <= 1 {
		t.Errorf("design total %.2f must exceed the baseline alone", total)
	}
	if total >= TSL512K.RelativeEnergy() {
		t.Errorf("design total %.2f must be far below the 512K TSL %.2f", total, TSL512K.RelativeEnergy())
	}
	llbpOnly := DesignEnergy{Components: []Component{{CD, 0.6}, {PB64, 1}, {LLBP, 0.5}}}
	if frac := llbpOnly.Total(); frac < 0.2 || frac > 4 {
		t.Errorf("LLBP-structures energy %.2f implausible", frac)
	}
}
