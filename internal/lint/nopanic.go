package lint

import (
	"go/ast"
	"go/types"
	"strings"

	"llbp/internal/lint/analysis"
)

// NoPanic forbids panic calls in library packages outside
// constructor-time config validation. The PR-1 robustness policy routes
// runtime failures through errors (harness.RunError); hot-path contract
// violations ("Update without matching Predict") go through
// internal/assert, whose panics are compiled in only under the
// llbpdebug build tag.
//
// Allowed panic sites: functions named init or prefixed New/Must
// (case-insensitive), main packages (CLI fatal paths are their own
// concern), and the assert package itself.
var NoPanic = &analysis.Analyzer{
	Name: "nopanic",
	Doc:  "library code must not panic outside New*/Must*/init constructors",
	Run:  runNoPanic,
}

func runNoPanic(pass *analysis.Pass) error {
	if pass.Pkg.Name() == "main" || hasSegment(pass.Pkg.Path(), "cmd", "assert") {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || allowedPanicker(fd.Name.Name) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				id, ok := ast.Unparen(call.Fun).(*ast.Ident)
				if !ok || id.Name != "panic" {
					return true
				}
				if _, ok := pass.TypesInfo.Uses[id].(*types.Builtin); !ok {
					return true
				}
				pass.Reportf(call.Pos(),
					"panic in library function %s; return an error or use internal/assert (panics are reserved for New*/Must*/init config validation)", fd.Name.Name)
				return true
			})
		}
	}
	return nil
}

// allowedPanicker reports whether a function name marks a constructor or
// initializer where config-validation panics are accepted policy.
func allowedPanicker(name string) bool {
	if name == "init" {
		return true
	}
	lower := strings.ToLower(name)
	return strings.HasPrefix(lower, "new") || strings.HasPrefix(lower, "must")
}
