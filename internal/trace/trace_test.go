package trace

import (
	"io"
	"testing"
)

func TestBranchTypeString(t *testing.T) {
	cases := map[BranchType]string{
		CondDirect:   "cond",
		Jump:         "jump",
		Call:         "call",
		Return:       "ret",
		IndirectJump: "ijump",
		IndirectCall: "icall",
	}
	for bt, want := range cases {
		if got := bt.String(); got != want {
			t.Errorf("BranchType(%d).String() = %q, want %q", bt, got, want)
		}
	}
	if got := BranchType(99).String(); got != "BranchType(99)" {
		t.Errorf("unknown type string = %q", got)
	}
}

func TestBranchTypePredicates(t *testing.T) {
	for bt := CondDirect; bt < numBranchTypes; bt++ {
		if bt.IsConditional() != (bt == CondDirect) {
			t.Errorf("%v.IsConditional() wrong", bt)
		}
		if bt.IsUnconditional() == bt.IsConditional() {
			t.Errorf("%v: conditional and unconditional must be exclusive", bt)
		}
	}
	if !Call.IsCallOrReturn() || !Return.IsCallOrReturn() || !IndirectCall.IsCallOrReturn() {
		t.Error("calls and returns must satisfy IsCallOrReturn")
	}
	if Jump.IsCallOrReturn() || IndirectJump.IsCallOrReturn() || CondDirect.IsCallOrReturn() {
		t.Error("jumps and conditionals must not satisfy IsCallOrReturn")
	}
	if !IndirectJump.IsIndirect() || !IndirectCall.IsIndirect() {
		t.Error("indirect types must satisfy IsIndirect")
	}
	if Call.IsIndirect() || Return.IsIndirect() || Jump.IsIndirect() {
		t.Error("direct types must not satisfy IsIndirect")
	}
}

func sampleBranches() []Branch {
	return []Branch{
		{PC: 0x400000, Target: 0x400040, Type: CondDirect, Taken: true, Instructions: 5},
		{PC: 0x400004, Target: 0x401000, Type: Call, Taken: true, Instructions: 1},
		{PC: 0x401010, Target: 0x400008, Type: Return, Taken: true, Instructions: 3},
		{PC: 0x400008, Target: 0x400050, Type: CondDirect, Taken: false, Instructions: 7},
		{PC: 0x40000c, Target: 0x402000, Type: IndirectCall, Taken: true, Instructions: 2, MispredictedTarget: true},
		{PC: 0x402004, Target: 0x400010, Type: Return, Taken: true, Instructions: 1},
		{PC: 0x400010, Target: 0x400000, Type: Jump, Taken: true, Instructions: 4},
	}
}

func TestSliceReaderReplaysAll(t *testing.T) {
	want := sampleBranches()
	r := NewSliceReader(want)
	var got []Branch
	var b Branch
	for {
		err := r.Read(&b)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, b)
	}
	if len(got) != len(want) {
		t.Fatalf("read %d branches, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("branch %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestSliceSource(t *testing.T) {
	src := &SliceSource{SourceName: "unit", Branches: sampleBranches()}
	if src.Name() != "unit" {
		t.Errorf("Name() = %q", src.Name())
	}
	// Two Opens must yield independent readers.
	r1, r2 := src.Open(), src.Open()
	var b1, b2 Branch
	if err := r1.Read(&b1); err != nil {
		t.Fatal(err)
	}
	if err := r1.Read(&b1); err != nil {
		t.Fatal(err)
	}
	if err := r2.Read(&b2); err != nil {
		t.Fatal(err)
	}
	if b2.PC != sampleBranches()[0].PC {
		t.Errorf("second reader not independent: got %#x", b2.PC)
	}
}

func TestLimitReader(t *testing.T) {
	r := &LimitReader{R: NewSliceReader(sampleBranches()), Max: 3}
	var b Branch
	n := 0
	for {
		if err := r.Read(&b); err != nil {
			if !IsEOF(err) {
				t.Fatal(err)
			}
			break
		}
		n++
	}
	if n != 3 {
		t.Errorf("LimitReader yielded %d records, want 3", n)
	}
}

func TestLimitReaderZero(t *testing.T) {
	r := &LimitReader{R: NewSliceReader(sampleBranches()), Max: 0}
	var b Branch
	if err := r.Read(&b); !IsEOF(err) {
		t.Errorf("zero-limit read err = %v, want EOF", err)
	}
}

func TestCollectStats(t *testing.T) {
	s, err := Collect(NewSliceReader(sampleBranches()))
	if err != nil {
		t.Fatal(err)
	}
	if s.Branches != 7 {
		t.Errorf("Branches = %d, want 7", s.Branches)
	}
	if s.Instructions != 5+1+3+7+2+1+4 {
		t.Errorf("Instructions = %d", s.Instructions)
	}
	if s.Conditional() != 2 {
		t.Errorf("Conditional() = %d, want 2", s.Conditional())
	}
	if s.Unconditional() != 5 {
		t.Errorf("Unconditional() = %d, want 5", s.Unconditional())
	}
	if s.TakenCond != 1 {
		t.Errorf("TakenCond = %d, want 1", s.TakenCond)
	}
	if got, want := s.CondPerUncond(), 2.0/5.0; got != want {
		t.Errorf("CondPerUncond = %v, want %v", got, want)
	}
	if len(s.UniquePCs) != 7 {
		t.Errorf("UniquePCs = %d, want 7", len(s.UniquePCs))
	}
}

func TestCondPerUncondNoUncond(t *testing.T) {
	var s Stats
	s.ByType[CondDirect] = 10
	if got := s.CondPerUncond(); got != 0 {
		t.Errorf("CondPerUncond with no unconds = %v, want 0", got)
	}
}
