package sc

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
)

func driveSC(c *Corrector, seed int64, n int) []byte {
	rng := rand.New(rand.NewSource(seed))
	out := make([]byte, 0, n)
	for i := 0; i < n; i++ {
		pc := uint64(0x4000 + rng.Intn(64)*4)
		taken := rng.Intn(3) != 0
		tageTaken := rng.Intn(2) == 0
		target := pc + 4
		if rng.Intn(4) == 0 {
			target = pc - 32
		}
		got := c.Correct(pc, tageTaken, rng.Intn(5) == 0)
		c.UpdateWithTarget(pc, target, taken)
		c.Push(taken)
		if got == taken {
			out = append(out, 1)
		} else {
			out = append(out, 0)
		}
	}
	return out
}

// TestForkEquivalence: fork-then-diverge must match two independently
// warmed twins byte for byte across the GEHL banks, the bias table, the
// adaptive threshold, and the local/IMLI components.
func TestForkEquivalence(t *testing.T) {
	const warm, diverge = 6000, 4000
	mk := func() *Corrector {
		c, err := New(DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	parent, twinP, twinC := mk(), mk(), mk()
	driveSC(parent, 11, warm)
	driveSC(twinP, 11, warm)
	driveSC(twinC, 11, warm)

	child := parent.Fork()

	gotP := driveSC(parent, 22, diverge)
	wantP := driveSC(twinP, 22, diverge)
	gotC := driveSC(child, 33, diverge)
	wantC := driveSC(twinC, 33, diverge)

	if !bytes.Equal(gotP, wantP) {
		t.Error("parent outcome stream diverged from unforked twin")
	}
	if !bytes.Equal(gotC, wantC) {
		t.Error("child outcome stream diverged from independently warmed twin")
	}
	if !reflect.DeepEqual(parent, twinP) {
		t.Error("parent state not byte-identical to unforked twin")
	}
	if !reflect.DeepEqual(child, twinC) {
		t.Error("child state not byte-identical to independently warmed twin")
	}
}
