package core

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"llbp/internal/predictor"
	"llbp/internal/trace"
	"llbp/internal/tsl"
)

// driveStream applies a deterministic pseudo-random branch stream (mixed
// conditionals, calls and jumps, with pipeline resets on mispredictions)
// and returns the prediction outcomes, so two predictors fed the same
// seed can be compared both behaviourally and structurally.
func driveForkStream(p *Predictor, clock *predictor.Clock, seed int64, n int) []byte {
	rng := rand.New(rand.NewSource(seed))
	out := make([]byte, 0, n)
	for i := 0; i < n; i++ {
		switch rng.Intn(8) {
		case 0:
			pc := uint64(0x9000 + rng.Intn(64)*0x20)
			p.TrackOther(pc, pc+0x400, trace.Call)
		case 1:
			pc := uint64(0xA000 + rng.Intn(16)*0x40)
			p.TrackOther(pc, pc+0x100, trace.Jump)
		default:
			pc := uint64(0x4000 + rng.Intn(96)*4)
			taken := rng.Intn(3) != 0
			target := pc + 4
			if rng.Intn(4) == 0 {
				target = pc - 64
			}
			pred := p.Predict(pc)
			p.UpdateWithTarget(pc, target, taken)
			if pred == taken {
				out = append(out, 1)
			} else {
				out = append(out, 0)
				p.OnPipelineReset()
			}
		}
		clock.Advance(1.25)
	}
	return out
}

func newLLBP(t *testing.T, cfg Config) (*Predictor, *predictor.Clock) {
	t.Helper()
	clock := &predictor.Clock{}
	p, err := New(cfg, tsl.MustNew(tsl.Config64K()), clock)
	if err != nil {
		t.Fatal(err)
	}
	return p, clock
}

// TestForkEquivalence is the fork correctness property for the LLBP
// composite: warming a predictor and forking it, then feeding parent and
// child divergent streams, must leave each byte-identical to a twin that
// was independently warmed on the same prefix + divergent stream — the
// copy-on-write pattern storage must never let one lineage's training
// leak into the other.
func TestForkEquivalence(t *testing.T) {
	const warm, diverge = 6000, 4000
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"set-assoc", DefaultConfig()},
		{"full-assoc", func() Config {
			c := DefaultConfig()
			c.FullAssocCD = true
			c.CIDBits = 31
			return c
		}()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			parent, parentClock := newLLBP(t, tc.cfg)
			twinP, twinPClock := newLLBP(t, tc.cfg)
			twinC, twinCClock := newLLBP(t, tc.cfg)

			driveForkStream(parent, parentClock, 11, warm)
			driveForkStream(twinP, twinPClock, 11, warm)
			driveForkStream(twinC, twinCClock, 11, warm)

			childClock := &predictor.Clock{}
			child := parent.Fork(childClock).(*Predictor)
			if got, want := childClock.NowF(), parentClock.NowF(); got != want {
				t.Fatalf("forked clock at %v, parent at %v", got, want)
			}

			// Divergent tails: parent continues one stream, child another.
			gotP := driveForkStream(parent, parentClock, 22, diverge)
			wantP := driveForkStream(twinP, twinPClock, 22, diverge)
			gotC := driveForkStream(child, childClock, 33, diverge)
			wantC := driveForkStream(twinC, twinCClock, 33, diverge)

			if !bytes.Equal(gotP, wantP) {
				t.Error("parent outcome stream diverged from unforked twin")
			}
			if !bytes.Equal(gotC, wantC) {
				t.Error("child outcome stream diverged from independently warmed twin")
			}
			if !reflect.DeepEqual(parent.Stats(), twinP.Stats()) {
				t.Errorf("parent stats diverged:\n got %+v\nwant %+v", parent.Stats(), twinP.Stats())
			}
			if !reflect.DeepEqual(child.Stats(), twinC.Stats()) {
				t.Errorf("child stats diverged:\n got %+v\nwant %+v", child.Stats(), twinC.Stats())
			}
			if !reflect.DeepEqual(parent.dir, twinP.dir) {
				t.Error("parent directory/pattern storage not byte-identical to unforked twin")
			}
			if !reflect.DeepEqual(child.dir, twinC.dir) {
				t.Error("child directory/pattern storage not byte-identical to independently warmed twin")
			}
			if !reflect.DeepEqual(parent.pb, twinP.pb) {
				t.Error("parent pattern buffer not byte-identical to unforked twin")
			}
			if !reflect.DeepEqual(child.pb, twinC.pb) {
				t.Error("child pattern buffer not byte-identical to independently warmed twin")
			}
		})
	}
}

// TestForkIsolatesPatternStorage verifies the flat-copy fork economics:
// pattern sets are values inside directory entries, so a fork copies them
// verbatim and training one lineage can never reach the other's storage.
func TestForkIsolatesPatternStorage(t *testing.T) {
	parent, clock := newLLBP(t, DefaultConfig())
	driveForkStream(parent, clock, 7, 8000)
	if parent.dir.Live() == 0 {
		t.Fatal("warmup installed no contexts")
	}
	childClock := &predictor.Clock{}
	child := parent.Fork(childClock).(*Predictor)
	if !reflect.DeepEqual(parent.dir.sets, child.dir.sets) {
		t.Fatal("fork must copy the directory storage verbatim")
	}
	// Train the child; the parent's bulk storage and stats must be
	// untouched.
	snap, _ := parent.dir.fork()
	before := parent.stats.PatternAllocs
	driveForkStream(child, childClock, 13, 4000)
	if parent.stats.PatternAllocs != before {
		t.Error("training the child mutated parent stats")
	}
	if !reflect.DeepEqual(parent.dir.sets, snap.sets) {
		t.Error("training the child mutated the parent's pattern storage")
	}
}
