package sim

import (
	"context"
	"errors"
	"testing"

	"llbp/internal/btb"
	"llbp/internal/pipeline"
	"llbp/internal/predictor"
	"llbp/internal/trace"
)

// staticPredictor always predicts `taken` and records calls; it also
// implements Resettable to observe reset notifications.
type staticPredictor struct {
	taken    bool
	predicts int
	updates  int
	others   int
	resets   int
	lastPC   uint64
}

func (p *staticPredictor) Name() string { return "static" }
func (p *staticPredictor) Predict(pc uint64) bool {
	p.predicts++
	p.lastPC = pc
	return p.taken
}
func (p *staticPredictor) Update(pc uint64, taken bool) { p.updates++ }
func (p *staticPredictor) TrackOther(pc, target uint64, t trace.BranchType) {
	p.others++
}
func (p *staticPredictor) OnPipelineReset() { p.resets++ }

// mkSource builds a source of n conditional branches (all taken, 5
// instructions each) with an unconditional jump every 4th record; every
// 8th jump is a target miss.
func mkSource(n int) trace.Source {
	branches := make([]trace.Branch, n)
	for i := range branches {
		if i%4 == 3 {
			branches[i] = trace.Branch{
				PC: 0x9000, Target: 0x100, Type: trace.Jump, Taken: true,
				Instructions: 5, MispredictedTarget: i%32 == 31,
			}
		} else {
			branches[i] = trace.Branch{
				PC: uint64(0x1000 + (i%8)*4), Target: 0x2000,
				Type: trace.CondDirect, Taken: true, Instructions: 5,
			}
		}
	}
	return &trace.SliceSource{SourceName: "mock", Branches: branches}
}

func TestRunBasicAccounting(t *testing.T) {
	p := &staticPredictor{taken: true} // always right
	res, err := Run(mkSource(1000), p, Options{WarmupBranches: 200, MeasureBranches: 800})
	if err != nil {
		t.Fatal(err)
	}
	if res.Branches != 800 {
		t.Errorf("Branches = %d, want 800", res.Branches)
	}
	if res.CondBranches != 600 {
		t.Errorf("CondBranches = %d, want 600", res.CondBranches)
	}
	if res.Mispredicts != 0 {
		t.Errorf("Mispredicts = %d, want 0", res.Mispredicts)
	}
	if res.Instructions != 800*5 {
		t.Errorf("Instructions = %d", res.Instructions)
	}
	if p.predicts != 750 || p.updates != 750 {
		t.Errorf("predict/update counts %d/%d, want 750 (warmup included)", p.predicts, p.updates)
	}
	if res.MPKI != 0 {
		t.Errorf("MPKI = %v", res.MPKI)
	}
}

func TestRunCountsMispredictions(t *testing.T) {
	p := &staticPredictor{taken: false} // always wrong
	res, err := Run(mkSource(1000), p, Options{WarmupBranches: 200, MeasureBranches: 800})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mispredicts != 600 {
		t.Errorf("Mispredicts = %d, want 600", res.Mispredicts)
	}
	wantMPKI := 600.0 * 1000 / 4000
	if res.MPKI != wantMPKI {
		t.Errorf("MPKI = %v, want %v", res.MPKI, wantMPKI)
	}
	// Every misprediction and every target miss resets the pipeline
	// (warmup included: 750 cond + ~31 target misses).
	if p.resets < 750 {
		t.Errorf("resets = %d, want >= 750", p.resets)
	}
	if res.WastedFraction <= 0 || res.WastedFraction >= 1 {
		t.Errorf("WastedFraction = %v", res.WastedFraction)
	}
}

func TestRunErrorsOnShortStream(t *testing.T) {
	p := &staticPredictor{taken: true}
	if _, err := Run(mkSource(100), p, Options{WarmupBranches: 50, MeasureBranches: 100}); err == nil {
		t.Error("short stream must error")
	}
	if _, err := Run(mkSource(100), p, Options{}); err == nil {
		t.Error("zero MeasureBranches must error")
	}
}

func TestObserversInvoked(t *testing.T) {
	p := &staticPredictor{taken: true}
	conds, unconds := 0, 0
	_, err := Run(mkSource(1000), p, Options{
		WarmupBranches:  200,
		MeasureBranches: 800,
		Observer: func(b *trace.Branch, pred bool, det predictor.Detail) {
			conds++
			if !pred {
				t.Fatal("observer saw a prediction the static predictor never made")
			}
		},
		UncondObserver: func(b *trace.Branch) { unconds++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if conds != 600 || unconds != 200 {
		t.Errorf("observer counts %d/%d, want 600/200 (measured only)", conds, unconds)
	}
}

func TestClockAdvances(t *testing.T) {
	p := &staticPredictor{taken: true}
	clock := &predictor.Clock{}
	res, err := Run(mkSource(1000), p, Options{
		WarmupBranches: 100, MeasureBranches: 800, Clock: clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	if clock.NowF() <= 0 {
		t.Error("clock must advance")
	}
	if res.Cycles <= 0 || res.IPC <= 0 {
		t.Errorf("cycles/IPC not computed: %v/%v", res.Cycles, res.IPC)
	}
}

func TestSpeedupAndPerfectCycles(t *testing.T) {
	good := &staticPredictor{taken: true}
	bad := &staticPredictor{taken: false}
	resGood, err := Run(mkSource(2000), good, Options{WarmupBranches: 100, MeasureBranches: 1800})
	if err != nil {
		t.Fatal(err)
	}
	resBad, err := Run(mkSource(2000), bad, Options{WarmupBranches: 100, MeasureBranches: 1800})
	if err != nil {
		t.Fatal(err)
	}
	if s := resGood.Speedup(resBad); s <= 1 {
		t.Errorf("perfect predictor speedup over always-wrong = %v, want > 1", s)
	}
	cfg := pipeline.Default()
	pc := resBad.PerfectCycles(cfg)
	if pc >= resBad.Cycles {
		t.Error("perfect cycles must be below actual cycles for a mispredicting run")
	}
	if pc < float64(resBad.Instructions)*cfg.BaseCPI {
		t.Error("perfect cycles cannot beat the base CPI bound")
	}
}

func TestWarmupExcludedFromStats(t *testing.T) {
	// A predictor wrong only during the first 300 conditionals: with a
	// 400-branch warmup (300 cond), measured MPKI must be 0.
	n := 0
	p := &phasePredictor{flipAfter: 300}
	res, err := Run(mkSource(1000), p, Options{WarmupBranches: 400, MeasureBranches: 600})
	if err != nil {
		t.Fatal(err)
	}
	_ = n
	if res.Mispredicts != 0 {
		t.Errorf("warmup mispredictions leaked into measurement: %d", res.Mispredicts)
	}
}

// phasePredictor is wrong for the first flipAfter conditional branches,
// then perfect.
type phasePredictor struct {
	seen      int
	flipAfter int
}

func (p *phasePredictor) Name() string { return "phase" }
func (p *phasePredictor) Predict(pc uint64) bool {
	p.seen++
	return p.seen > p.flipAfter
}
func (p *phasePredictor) Update(uint64, bool)                        {}
func (p *phasePredictor) TrackOther(_, _ uint64, _ trace.BranchType) {}

func TestRunWithBTBDerivesTargetMisses(t *testing.T) {
	// With the front-end model attached, the trace's MispredictedTarget
	// flags are ignored and resets come from the BTB/RAS/indirect model.
	mdl, err := btb.New(btb.Default())
	if err != nil {
		t.Fatal(err)
	}
	p := &staticPredictor{taken: true}
	res, err := Run(mkSource(2000), p, Options{
		WarmupBranches:  200,
		MeasureBranches: 1600,
		BTB:             mdl,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The mock source's jumps all share one PC/target: exactly one cold
	// BTB miss in warmup, none measured — unlike the flag-driven run,
	// which charges a miss every 32 records.
	flagRes, err := Run(mkSource(2000), &staticPredictor{taken: true}, Options{
		WarmupBranches:  200,
		MeasureBranches: 1600,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TargetMisses >= flagRes.TargetMisses {
		t.Errorf("BTB-derived misses (%d) should undercut the flag-driven count (%d) on a monomorphic jump",
			res.TargetMisses, flagRes.TargetMisses)
	}
	if mdl.Stats().Lookups == 0 {
		t.Error("BTB never consulted")
	}
}

// TestRunCancellation: a cancelled context aborts the run promptly with
// an error wrapping context.Canceled.
func TestRunCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before the run starts
	p := &staticPredictor{taken: true}
	_, err := Run(mkSource(100_000), p, Options{
		MeasureBranches: 100_000,
		Context:         ctx,
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if p.predicts > cancelCheckMask+1 {
		t.Errorf("run processed %d branches after cancellation", p.predicts)
	}
}

// TestRunMidwayCancellation cancels from the hook partway through and
// checks the run stops near the cancellation point.
func TestRunMidwayCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	p := &staticPredictor{taken: true}
	_, err := Run(mkSource(1_000_000), p, Options{
		MeasureBranches: 1_000_000,
		Context:         ctx,
		Hook: func(processed uint64) {
			if processed >= 20_000 {
				cancel()
			}
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if p.predicts > 40_000 {
		t.Errorf("run continued long after cancellation: %d branches", p.predicts)
	}
}

// TestRunHookCadence: the hook fires every HookEvery branches with a
// monotone processed count, warmup included.
func TestRunHookCadence(t *testing.T) {
	var calls []uint64
	p := &staticPredictor{taken: true}
	_, err := Run(mkSource(10_000), p, Options{
		WarmupBranches:  2_000,
		MeasureBranches: 8_000,
		Hook:            func(n uint64) { calls = append(calls, n) },
		HookEvery:       1_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(calls) != 10 {
		t.Fatalf("hook fired %d times, want 10", len(calls))
	}
	for i, n := range calls {
		if n != uint64(i+1)*1_000 {
			t.Fatalf("hook call %d saw processed=%d", i, n)
		}
	}
}
