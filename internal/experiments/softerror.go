package experiments

import (
	"fmt"

	"llbp/internal/faults"
	"llbp/internal/report"
	"llbp/internal/workload"
)

// softErrorRates is the fault-rate axis of the soft-error study, in
// expected flips per Mbit of predictor state per Mbranch. At the sweep
// budgets the decades span "a handful of flips" to "thousands of flips",
// so the MPKI trend dominates run-to-run noise.
// (Below ~10k the effect is inside run-to-run noise — parity resets can
// even help slightly by forgetting stale patterns — so the axis starts
// where the trend is unambiguous.)
var softErrorRates = []float64{0, 30_000, 100_000, 300_000}

// softErrorSeed fixes the fault schedules so the study is reproducible.
const softErrorSeed = 0x5EED

// softErrorWorkload picks the study workload: Tomcat (the paper's
// deep-dive workload) when present, else the first of the configured set.
func softErrorWorkload(h *Harness) *workload.Source {
	wl := h.Cfg.workloads()[0]
	for _, w := range h.Cfg.workloads() {
		if w.Name() == "Tomcat" {
			wl = w
		}
	}
	return wl
}

// SoftErrorStudy measures how soft errors in predictor state degrade
// accuracy — the robustness question raised by LLBP's megabyte-class
// LLC-adjacent pattern storage, which (unlike a core-private 64KB
// predictor) sits in exactly the kind of large SRAM array that ships with
// parity or ECC. For each design (64K TSL, LLBP) and protection mode
// (none / parity detect-and-reset / ECC correct) the study sweeps the
// fault rate and reports MPKI. Branch predictors are self-healing — a
// corrupted counter is eventually retrained — so the interesting output
// is the *slope*: silent corruption should degrade fastest, parity should
// degrade more gracefully (a reset entry merely misses), and ECC should
// pin the fault-free MPKI.
func SoftErrorStudy(h *Harness) ([]*report.Table, error) {
	wl := softErrorWorkload(h)
	designs := []PredictorSpec{Spec64K(), SpecLLBPDefault()}
	prots := []faults.Protection{faults.ProtectNone, faults.ProtectParity, faults.ProtectECC}

	header := []string{"design", "protection"}
	for _, r := range softErrorRates {
		header = append(header, fmt.Sprintf("r=%g", r))
	}
	t := report.New(fmt.Sprintf("Soft-error study (%s) — MPKI vs fault rate [flips/Mbit/Mbranch]", wl.Name()),
		header...)
	ft := report.New(fmt.Sprintf("Soft-error study (%s) — injected flips at max rate", wl.Name()),
		"design", "protection", "flips", "silent", "detected", "corrected", "dead")

	for _, spec := range designs {
		for _, prot := range prots {
			row := []interface{}{spec.Key, prot.String()}
			var last *RunOutput
			for _, rate := range softErrorRates {
				var out *RunOutput
				var err error
				if rate == 0 {
					// The fault-free cell is protection-independent;
					// share it across rows.
					out, err = h.RunSweep(wl, spec)
				} else {
					out, err = h.RunFaulted(wl, spec, FaultSpec{
						Rate:       rate,
						Protection: prot,
						Seed:       softErrorSeed,
					})
				}
				if err != nil {
					return nil, err
				}
				row = append(row, out.Res.MPKI)
				last = out
			}
			t.AddRow(row...)
			if last != nil && last.HasFaults {
				st := last.Faults
				ft.AddRow(spec.Key, prot.String(), st.Flips, st.Silent, st.Detected, st.Corrected, st.Dead)
			}
		}
	}
	t.Caption = "Unprotected state degrades fastest; parity detect-and-reset trades corruption for cold misses; ECC holds the fault-free MPKI."
	ft.Caption = "Dead strikes hit unallocated capacity (no architectural state); rates scale with the physical array size."
	return []*report.Table{t, ft}, nil
}
