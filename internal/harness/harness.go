// Package harness is the fault-tolerant run engine behind the experiment
// suite: it executes simulation cells with context cancellation, per-run
// deadlines, panic isolation, bounded retry with exponential backoff, a
// bounded-parallelism admission gate, and an append-only JSON journal that
// lets an interrupted suite resume without redoing completed cells.
//
// The engine is deliberately generic — a cell is any
// func(ctx) (value, error) — so the same machinery runs paper experiments,
// fault-injection studies and ad-hoc sweeps. Failure is fail-soft: a
// failed or panicking cell yields a structured *RunError and the rest of
// the suite completes with partial results.
package harness

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"llbp/internal/telemetry"
)

// ErrTransient marks an error as worth retrying. Wrap with Transient (or
// build errors that Is() it) to opt a failure into the retry loop;
// deterministic failures (bad configuration, malformed traces, panics)
// are never retried.
var ErrTransient = errors.New("transient failure")

// Transient wraps err so errors.Is(err, ErrTransient) holds.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return fmt.Errorf("%w: %w", ErrTransient, err)
}

// Job is one unit of work — a simulation cell, an experiment, a
// verification pass.
type Job struct {
	// Key uniquely identifies the cell; it is the journal key, so it
	// must be stable across processes for resume to work.
	Key string
	// Meta carries structured identity (workload, predictor, seed, ...)
	// into RunError so failures are attributable without parsing keys.
	Meta map[string]string
	// Run executes the cell. The context carries the per-attempt
	// deadline; long-running cells should observe it.
	Run func(ctx context.Context) (any, error)
	// Decode reconstructs a journaled value. When nil, journal hits are
	// ignored and the cell recomputes.
	Decode func(raw json.RawMessage) (any, error)
}

// RunError is the structured failure of one cell: which cell, how it was
// identified, how many attempts were made, and — for recovered panics —
// the stack trace.
type RunError struct {
	// Key is the failed cell's key.
	Key string
	// Meta is the job's identity metadata (workload, predictor, seed).
	Meta map[string]string
	// Attempts is the number of attempts made (>= 1).
	Attempts int
	// Stack is the recovered goroutine stack when the failure was a
	// panic, empty otherwise.
	Stack string
	// Err is the underlying error (for panics, a PanicError).
	Err error
}

// Error implements error.
func (e *RunError) Error() string {
	kind := "failed"
	if e.Stack != "" {
		kind = "panicked"
	}
	return fmt.Sprintf("harness: cell %q %s after %d attempt(s): %v", e.Key, kind, e.Attempts, e.Err)
}

// Unwrap exposes the underlying error to errors.Is/As.
func (e *RunError) Unwrap() error { return e.Err }

// PanicError is the error form of a recovered panic value.
type PanicError struct {
	// Value is the recovered panic value.
	Value any
}

// Error implements error.
func (e *PanicError) Error() string { return fmt.Sprintf("panic: %v", e.Value) }

// Result is the outcome of one cell.
type Result struct {
	// Key echoes the job key.
	Key string
	// Value is the cell's return value (or the decoded journal value).
	Value any
	// Err is non-nil when the cell failed; the suite still completes.
	Err *RunError
	// Attempts is the number of executions (0 for journal hits).
	Attempts int
	// FromJournal reports that the value was restored from the journal
	// rather than recomputed.
	FromJournal bool
	// Elapsed is the wall time spent executing (0 for journal hits).
	Elapsed time.Duration
}

// Options configures a Runner.
type Options struct {
	// Parallelism bounds how many cells execute concurrently (the
	// admission gate applies to Do as well as RunAll). Default 1.
	Parallelism int
	// Timeout is the per-attempt deadline; 0 means none.
	Timeout time.Duration
	// Retries is how many times a transient failure is re-attempted
	// after the first try. Default 0.
	Retries int
	// BackoffBase is the first retry delay (default 50ms); successive
	// retries double it up to BackoffMax (default 2s). A deterministic
	// jitter in [0.5,1.0)× is applied, seeded by Seed.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Seed seeds the backoff jitter (deterministic for reproducible
	// suite timing in tests).
	Seed uint64
	// Journal, when non-nil, records completed cells and satisfies
	// repeated keys without recomputation.
	Journal *Journal
	// IsTransient classifies retryable errors. Default: errors marked
	// with ErrTransient, plus context.DeadlineExceeded (a cell that hit
	// its deadline may succeed on a quieter machine).
	IsTransient func(error) bool
	// Progress, when non-nil, receives one line per cell completion.
	Progress func(format string, args ...any)
	// Telemetry, when non-nil, receives suite-level counters
	// (harness_cells_run/_failed/_journal_hits/_retries) and per-cell
	// attempt/latency histograms.
	Telemetry *telemetry.Registry
	// Tracer, when non-nil, receives one wall-clock span per executed
	// cell on the harness track, annotated with key, attempts, journal
	// provenance and any error.
	Tracer *telemetry.Tracer
}

// Runner executes jobs under Options. It is safe for concurrent use.
type Runner struct {
	opt    Options
	gate   chan struct{}
	tel    harnessTel
	seq    atomic.Uint64 // trace lane assignment for concurrent cells
	policy *RetryPolicy
}

// RetryPolicy is the shared exponential-backoff-with-jitter schedule:
// the Runner's retry loop and the service client's idempotent request
// retries both draw their delays from it, so every retrying component in
// the system backs off the same way. The jitter stream is deterministic
// in Seed — two policies built with identical parameters produce
// identical delay sequences — which is what lets the chaos harness
// replay a scenario's timing decisions bit-for-bit.
type RetryPolicy struct {
	// Retries is how many re-attempts follow the first try.
	Retries int
	// Base is the first retry delay; successive delays double up to Max.
	Base time.Duration
	// Max caps the pre-jitter delay.
	Max time.Duration

	mu  sync.Mutex
	rng uint64
}

// NewRetryPolicy builds a policy, applying the harness defaults
// (Base 50ms, Max 2s) to non-positive durations. The seed fixes the
// jitter stream.
func NewRetryPolicy(retries int, base, max time.Duration, seed uint64) *RetryPolicy {
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	if max <= 0 {
		max = 2 * time.Second
	}
	return &RetryPolicy{Retries: retries, Base: base, Max: max, rng: seed*2 + 1}
}

// Delay returns the backoff delay for retry number attempt (0-based):
// Base<<attempt capped at Max, jittered into [0.5, 1.0)× by the seeded
// stream. Each call advances the jitter stream, so the schedule is a
// deterministic function of (seed, call sequence).
func (p *RetryPolicy) Delay(attempt int) time.Duration {
	d := p.Base << uint(attempt)
	if d > p.Max || d <= 0 {
		d = p.Max
	}
	// Jitter in [0.5, 1.0)× keeps retried cells from re-colliding.
	return d/2 + time.Duration(p.next()%uint64(d/2+1))
}

// Sleep waits out Delay(attempt); it returns false when ctx expired
// before the delay elapsed.
func (p *RetryPolicy) Sleep(ctx context.Context, attempt int) bool {
	t := time.NewTimer(p.Delay(attempt))
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// next is a locked splitmix64 step for jitter.
func (p *RetryPolicy) next() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.rng += 0x9E3779B97F4A7C15
	z := p.rng
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// harnessTel holds the runner's nil-safe instruments; with no registry
// configured every update is a nil check.
type harnessTel struct {
	cellsRun    *telemetry.Counter
	cellsFailed *telemetry.Counter
	journalHits *telemetry.Counter
	retries     *telemetry.Counter
	attempts    *telemetry.Histogram
	elapsedMS   *telemetry.Histogram
}

// NewRunner builds a Runner, applying option defaults.
func NewRunner(opt Options) *Runner {
	if opt.Parallelism < 1 {
		opt.Parallelism = 1
	}
	if opt.BackoffBase <= 0 {
		opt.BackoffBase = 50 * time.Millisecond
	}
	if opt.BackoffMax <= 0 {
		opt.BackoffMax = 2 * time.Second
	}
	if opt.IsTransient == nil {
		opt.IsTransient = func(err error) bool {
			return errors.Is(err, ErrTransient) || errors.Is(err, context.DeadlineExceeded)
		}
	}
	r := &Runner{
		opt:    opt,
		gate:   make(chan struct{}, opt.Parallelism),
		policy: NewRetryPolicy(opt.Retries, opt.BackoffBase, opt.BackoffMax, opt.Seed),
	}
	r.tel = harnessTel{
		cellsRun:    opt.Telemetry.Counter("harness_cells_run"),
		cellsFailed: opt.Telemetry.Counter("harness_cells_failed"),
		journalHits: opt.Telemetry.Counter("harness_journal_hits"),
		retries:     opt.Telemetry.Counter("harness_retries"),
		attempts:    opt.Telemetry.Histogram("harness_cell_attempts", telemetry.LinearBuckets(1, 1, 8)),
		elapsedMS:   opt.Telemetry.Histogram("harness_cell_elapsed_ms", telemetry.ExponentialBuckets(1, 4, 10)),
	}
	return r
}

// Options returns the runner's (defaulted) options.
func (r *Runner) Options() Options { return r.opt }

// Do executes one job: journal lookup, admission, bounded retry, panic
// isolation. It never panics; failures land in Result.Err.
func (r *Runner) Do(ctx context.Context, job Job) Result {
	t0 := r.opt.Tracer.Since()
	res := r.doCell(ctx, job)
	r.tel.cellsRun.Inc()
	if res.FromJournal {
		r.tel.journalHits.Inc()
	}
	if res.Err != nil {
		r.tel.cellsFailed.Inc()
	}
	if res.Attempts > 0 {
		r.tel.attempts.Observe(float64(res.Attempts))
		if res.Attempts > 1 {
			r.tel.retries.Add(uint64(res.Attempts - 1))
		}
		r.tel.elapsedMS.Observe(float64(res.Elapsed) / float64(time.Millisecond))
	}
	if r.opt.Tracer != nil {
		// One lane per admission slot keeps concurrent cells from
		// nesting inside each other in the trace viewer.
		tid := int(r.seq.Add(1)%uint64(r.opt.Parallelism)) + 1
		args := map[string]any{"key": job.Key, "attempts": res.Attempts, "from_journal": res.FromJournal}
		if res.Err != nil {
			args["error"] = res.Err.Err.Error()
		}
		r.opt.Tracer.Span(telemetry.PidHarness, tid, "cell:"+job.Key, "harness", t0, r.opt.Tracer.Since()-t0, args)
	}
	return res
}

// doCell is Do without the observability wrapper.
func (r *Runner) doCell(ctx context.Context, job Job) Result {
	if r.opt.Journal != nil && job.Decode != nil {
		if raw, ok := r.opt.Journal.Lookup(job.Key); ok {
			v, err := job.Decode(raw)
			if err == nil {
				r.progress("  cell %-40s restored from journal", job.Key)
				return Result{Key: job.Key, Value: v, FromJournal: true}
			}
			// A corrupt journal value is not fatal: fall through and
			// recompute the cell.
			r.progress("  cell %-40s journal entry unusable (%v); recomputing", job.Key, err)
		}
	}

	// Admission gate: bounded parallelism across the whole runner.
	select {
	case r.gate <- struct{}{}:
		defer func() { <-r.gate }()
	case <-ctx.Done():
		return Result{Key: job.Key, Err: &RunError{Key: job.Key, Meta: job.Meta, Attempts: 0, Err: ctx.Err()}}
	}

	start := time.Now()
	var lastErr error
	attempts := 0
	for {
		attempts++
		v, err := r.attempt(ctx, job)
		if err == nil {
			res := Result{Key: job.Key, Value: v, Attempts: attempts, Elapsed: time.Since(start)}
			if r.opt.Journal != nil {
				if jerr := r.opt.Journal.Record(job.Key, v); jerr != nil {
					r.progress("  cell %-40s journal write failed: %v", job.Key, jerr)
				}
			}
			return res
		}
		lastErr = err
		var pe *PanicError
		retryable := r.opt.IsTransient(err) && !errors.As(err, &pe)
		if ctx.Err() != nil || !retryable || attempts > r.opt.Retries {
			break
		}
		if !r.policy.Sleep(ctx, attempts-1) {
			break // cancelled while backing off
		}
	}
	re := &RunError{Key: job.Key, Meta: job.Meta, Attempts: attempts, Err: lastErr}
	var pe *PanicError
	if errors.As(lastErr, &pe) {
		if se := (*stackError)(nil); errors.As(lastErr, &se) {
			re.Stack = se.stack
		}
	}
	return Result{Key: job.Key, Err: re, Attempts: attempts, Elapsed: time.Since(start)}
}

// stackError pairs a PanicError with the recovered stack.
type stackError struct {
	pe    *PanicError
	stack string
}

func (e *stackError) Error() string { return e.pe.Error() }
func (e *stackError) Unwrap() error { return e.pe }

// attempt runs one execution of the job with the per-attempt deadline and
// panic recovery.
func (r *Runner) attempt(ctx context.Context, job Job) (v any, err error) {
	if r.opt.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, r.opt.Timeout)
		defer cancel()
	}
	defer func() {
		if rec := recover(); rec != nil {
			err = &stackError{pe: &PanicError{Value: rec}, stack: string(debug.Stack())}
		}
	}()
	return job.Run(ctx)
}

// RunAll executes every job and returns results in job order. Execution is
// fail-soft: failed cells carry a *RunError and the rest complete.
// Concurrency is bounded by Options.Parallelism via the admission gate.
// RunAll returns once every job has settled (or been cancelled).
func (r *Runner) RunAll(ctx context.Context, jobs []Job) []Result {
	results := make([]Result, len(jobs))
	var wg sync.WaitGroup
	for i := range jobs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = r.Do(ctx, jobs[i])
			if results[i].Err != nil {
				r.progress("  cell %-40s FAILED: %v", jobs[i].Key, results[i].Err.Err)
			}
		}(i)
	}
	wg.Wait()
	return results
}

// Failed collects the errors of failed cells (nil when all succeeded).
func Failed(results []Result) []*RunError {
	var out []*RunError
	for _, res := range results {
		if res.Err != nil {
			out = append(out, res.Err)
		}
	}
	return out
}

func (r *Runner) progress(format string, args ...any) {
	if r.opt.Progress != nil {
		r.opt.Progress(format, args...)
	}
}
