package core

import "testing"

// BenchmarkMicro exposes the per-component hot-path benchmarks to
// `go test -bench` under stable sub-benchmark names; benchreplay -micro
// runs the same closures.
func BenchmarkMicro(b *testing.B) {
	for _, m := range Microbenches() {
		b.Run(m.Name, func(b *testing.B) { m.Run(b.N) })
	}
}

// TestMicrobenchesRun smoke-runs every microbenchmark closure so a
// broken fabrication (e.g. a config change that invalidates the
// fabricated context) fails in tests, not first in CI's bench job.
func TestMicrobenchesRun(t *testing.T) {
	for _, m := range Microbenches() {
		m.Run(16)
	}
}
