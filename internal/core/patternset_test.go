package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

const (
	testBuckets = 4
	testLengths = 16
	testSetSize = 16
)

func TestBucketRange(t *testing.T) {
	// 16 patterns, 4 buckets, 16 lengths: bucket b covers slots
	// [4b,4b+4) and lengths [4b,4b+4).
	cases := []struct{ lenIdx, lo, hi int }{
		{0, 0, 4}, {3, 0, 4}, {4, 4, 8}, {7, 4, 8},
		{8, 8, 12}, {11, 8, 12}, {12, 12, 16}, {15, 12, 16},
	}
	for _, c := range cases {
		lo, hi := bucketRange(c.lenIdx, testSetSize, testBuckets, testLengths)
		if lo != c.lo || hi != c.hi {
			t.Errorf("bucketRange(%d) = [%d,%d), want [%d,%d)", c.lenIdx, lo, hi, c.lo, c.hi)
		}
	}
	// Bucketing disabled: whole set.
	lo, hi := bucketRange(9, testSetSize, 0, testLengths)
	if lo != 0 || hi != testSetSize {
		t.Errorf("free-form range = [%d,%d)", lo, hi)
	}
}

func TestInsertKeepsSortedInvariant(t *testing.T) {
	s := newPatternSet(testSetSize)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 500; i++ {
		lenIdx := uint8(rng.Intn(testLengths))
		s.insert(uint32(rng.Intn(1<<13)), lenIdx, rng.Intn(2) == 0, testBuckets, testLengths)
		if !s.sorted(testBuckets, testLengths) {
			t.Fatalf("after insert %d, set violates the sorted invariant: %+v", i, s.lanes())
		}
	}
}

func TestInsertFreeFormSorted(t *testing.T) {
	s := newPatternSet(testSetSize)
	rng := rand.New(rand.NewSource(10))
	for i := 0; i < 500; i++ {
		s.insert(uint32(rng.Intn(1<<13)), uint8(rng.Intn(testLengths)), true, 0, testLengths)
		if !s.sorted(0, testLengths) {
			t.Fatalf("free-form set unsorted after insert %d: %+v", i, s.lanes())
		}
	}
}

func TestInsertPropertySortedness(t *testing.T) {
	f := func(ops []uint32, buckets uint8) bool {
		nb := int(buckets % 5) // 0..4 buckets
		if nb == 3 {
			nb = 4 // 16 % 3 != 0; keep divisible choices {0,1,2,4}
		}
		s := newPatternSet(testSetSize)
		for _, op := range ops {
			tag := op & 0x1fff
			lenIdx := uint8((op >> 13) % testLengths)
			taken := op&(1<<20) != 0
			s.insert(tag, lenIdx, taken, nb, testLengths)
			if !s.sorted(nb, testLengths) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestInsertRefreshesExistingPattern(t *testing.T) {
	s := newPatternSet(testSetSize)
	s.insert(0x123, 2, true, testBuckets, testLengths)
	// Strengthen the pattern.
	setAllCtrs(&s, 3)
	// Re-inserting the identical (tag, len) resets to weak rather than
	// duplicating.
	s.insert(0x123, 2, false, testBuckets, testLengths)
	n := 0
	for i := 0; i < s.Len(); i++ {
		p := s.Pattern(i)
		if p.Valid {
			n++
			if p.Ctr != -1 {
				t.Errorf("refreshed ctr = %d, want -1", p.Ctr)
			}
		}
	}
	if n != 1 {
		t.Errorf("duplicate pattern created: %d valid", n)
	}
}

func TestInsertEvictsLeastConfident(t *testing.T) {
	s := newPatternSet(testSetSize)
	// Fill bucket 0 (lengths 0..3).
	for i := 0; i < 4; i++ {
		s.insert(uint32(0x100+i), uint8(i), true, testBuckets, testLengths)
	}
	// Make slots confident except the pattern with tag 0x102.
	for i := 0; i < 4; i++ {
		p := s.Pattern(i)
		if p.Tag == 0x102 {
			p.Ctr = 0 // weak
		} else {
			p.Ctr = 3 // saturated
		}
		s.SetPattern(i, p)
	}
	s.insert(0x999, 1, true, testBuckets, testLengths)
	found := false
	for i := 0; i < 4; i++ {
		p := s.Pattern(i)
		if p.Valid && p.Tag == 0x102 {
			t.Error("least-confident pattern was not the victim")
		}
		if p.Valid && p.Tag == 0x999 {
			found = true
		}
	}
	if !found {
		t.Error("new pattern missing after insert")
	}
}

func TestConfidentCount(t *testing.T) {
	s := newPatternSet(testSetSize)
	if s.ConfidentCount(3) != 0 {
		t.Error("empty set must have zero confident patterns")
	}
	s.insert(0x1, 0, true, testBuckets, testLengths)
	s.insert(0x2, 4, true, testBuckets, testLengths)
	s.insert(0x3, 8, true, testBuckets, testLengths)
	if s.ConfidentCount(3) != 0 {
		t.Error("weak patterns must not count as confident")
	}
	setAllCtrs(&s, 3)
	if got := s.ConfidentCount(3); got != 3 {
		t.Errorf("ConfidentCount = %d, want 3", got)
	}
	// Saturation at max.
	s.insert(0x4, 12, true, testBuckets, testLengths)
	setAllCtrs(&s, -4)
	if got := s.ConfidentCount(3); got != 3 {
		t.Errorf("ConfidentCount must saturate at 3, got %d", got)
	}
}

func TestPatternConfident(t *testing.T) {
	cases := []struct {
		ctr  int8
		want bool
	}{{0, false}, {-1, false}, {1, false}, {-2, false}, {2, true}, {3, true}, {-3, true}, {-4, true}}
	for _, c := range cases {
		p := Pattern{Ctr: c.ctr, Valid: true}
		if got := p.Confident(); got != c.want {
			t.Errorf("ctr %d confident = %v, want %v", c.ctr, got, c.want)
		}
	}
	inv := Pattern{Ctr: 3, Valid: false}
	if inv.Confident() {
		t.Error("invalid pattern cannot be confident")
	}
}

// setAllCtrs forces every valid pattern's counter, via the packed lanes.
func setAllCtrs(s *PatternSet, ctr int8) {
	for i := 0; i < s.Len(); i++ {
		if p := s.Pattern(i); p.Valid {
			p.Ctr = ctr
			s.SetPattern(i, p)
		}
	}
}

func TestValueCopyIndependence(t *testing.T) {
	// Inline sets: a plain value copy is a deep copy.
	s := newPatternSet(4)
	s.insert(0x42, 0, true, 0, testLengths)
	c := s
	p := c.Pattern(0)
	p.Ctr = 3
	c.SetPattern(0, p)
	if s.Pattern(0).Ctr == 3 {
		t.Error("value copy of an inline set aliased its source")
	}
	// Spilled sets (Figure 14 sizes) alias until unshared.
	big := newPatternSet(2 * maxInlinePatterns)
	big.insert(0x17, 1, true, 0, testLengths)
	cb := big
	cb.unshare()
	p = cb.Pattern(0)
	p.Ctr = 3
	cb.SetPattern(0, p)
	if big.Pattern(0).Ctr == 3 {
		t.Error("unshare did not privatize the heap extension")
	}
}

func TestPackLaneRoundTrip(t *testing.T) {
	cases := []Pattern{
		{},
		{Tag: 0x1fff, Ctr: 3, LenIdx: 15, Valid: true},
		{Tag: 0x7fffffff, Ctr: -4, LenIdx: 255, Valid: true},
		{Tag: 0x123, Ctr: -64, LenIdx: 7, Valid: false},
		{Tag: 0x456, Ctr: 63, LenIdx: 0, Valid: true},
	}
	for _, q := range cases {
		if got := unpackLane(packLane(q)); got != q {
			t.Errorf("round trip %+v -> %+v", q, got)
		}
	}
}
