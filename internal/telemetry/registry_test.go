package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
)

// TestNilInstrumentsNoOp: every instrument and the registry itself must
// be safe to use when nil — that is the disabled fast path.
func TestNilInstrumentsNoOp(t *testing.T) {
	var reg *Registry
	c := reg.Counter("x")
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Errorf("nil counter value = %d", c.Value())
	}
	g := reg.Gauge("g")
	g.Set(3)
	if g.Value() != 0 {
		t.Errorf("nil gauge value = %g", g.Value())
	}
	h := reg.Histogram("h", LinearBuckets(0, 1, 4))
	h.Observe(2)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Errorf("nil histogram count=%d sum=%g", h.Count(), h.Sum())
	}
	s := reg.Series("s", 16)
	s.Append(1)
	if s.Len() != 0 || s.Interval() != 0 {
		t.Errorf("nil series len=%d interval=%d", s.Len(), s.Interval())
	}
	snap := reg.Snapshot()
	if len(snap.Counters) != 0 {
		t.Errorf("nil registry snapshot has %d counters", len(snap.Counters))
	}
}

// TestRegistryConcurrency hammers registration and updates from many
// goroutines; run under -race (CI does) to validate the locking story.
func TestRegistryConcurrency(t *testing.T) {
	reg := NewRegistry()
	const (
		goroutines = 16
		iters      = 2000
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				// Shared and per-goroutine names exercise both the
				// existing-instrument and first-registration paths.
				reg.Counter("shared").Inc()
				reg.Counter(fmt.Sprintf("own_%d", g)).Inc()
				reg.Gauge("level").Set(float64(i))
				reg.Histogram("dist", LinearBuckets(0, 10, 8)).Observe(float64(i % 80))
				if i%100 == 0 {
					reg.Series("ts", 100).Append(float64(i))
					_ = reg.Snapshot()
				}
			}
		}(g)
	}
	wg.Wait()

	snap := reg.Snapshot()
	if got := snap.Counters["shared"]; got != goroutines*iters {
		t.Errorf("shared counter = %d, want %d", got, goroutines*iters)
	}
	for g := 0; g < goroutines; g++ {
		if got := snap.Counters[fmt.Sprintf("own_%d", g)]; got != iters {
			t.Errorf("own_%d = %d, want %d", g, got, iters)
		}
	}
	h := snap.Histograms["dist"]
	if h.Count != goroutines*iters {
		t.Errorf("histogram count = %d, want %d", h.Count, goroutines*iters)
	}
	var bucketSum uint64
	for _, c := range h.Counts {
		bucketSum += c
	}
	if bucketSum != h.Count {
		t.Errorf("bucket counts sum to %d, count says %d", bucketSum, h.Count)
	}
	if got := snap.Series["ts"].Interval; got != 100 {
		t.Errorf("series interval = %d, want 100", got)
	}
	if got := len(snap.Series["ts"].Points); got != goroutines*(iters/100) {
		t.Errorf("series points = %d, want %d", got, goroutines*(iters/100))
	}
}

// TestRegistryIdempotentRegistration: the same name must return the same
// instrument.
func TestRegistryIdempotentRegistration(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("c")
	b := reg.Counter("c")
	if a != b {
		t.Error("re-registering a counter returned a different instrument")
	}
	h1 := reg.Histogram("h", []float64{1, 2})
	h2 := reg.Histogram("h", []float64{9}) // bounds ignored on re-registration
	if h1 != h2 {
		t.Error("re-registering a histogram returned a different instrument")
	}
	h1.Observe(1.5)
	if got := reg.Snapshot().Histograms["h"].Counts[1]; got != 1 {
		t.Errorf("first-registration bounds not kept: counts[1] = %d", got)
	}
}

// TestHistogramBucketBoundaries pins the boundary rule: bounds are
// inclusive upper bounds; values past the last bound land in the
// overflow bucket.
func TestHistogramBucketBoundaries(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("h", []float64{0, 10, 20})
	cases := []struct {
		v      float64
		bucket int
	}{
		{-5, 0}, // below first bound -> first bucket
		{0, 0},  // exactly on a bound -> that bucket (inclusive)
		{0.001, 1},
		{10, 1},
		{10.5, 2},
		{20, 2},
		{20.0001, 3}, // past last bound -> overflow
		{1e9, 3},
	}
	for _, c := range cases {
		before := make([]uint64, 4)
		for i := range h.counts {
			before[i] = h.counts[i].Load()
		}
		h.Observe(c.v)
		for i := range h.counts {
			want := before[i]
			if i == c.bucket {
				want++
			}
			if got := h.counts[i].Load(); got != want {
				t.Errorf("Observe(%g): bucket %d = %d, want %d", c.v, i, got, want)
			}
		}
	}
	if h.Count() != uint64(len(cases)) {
		t.Errorf("count = %d, want %d", h.Count(), len(cases))
	}
	snap := reg.Snapshot().Histograms["h"]
	if len(snap.Counts) != len(snap.Bounds)+1 {
		t.Errorf("snapshot has %d counts for %d bounds", len(snap.Counts), len(snap.Bounds))
	}
}

func TestHistogramNoBounds(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("h", nil)
	h.Observe(42)
	snap := reg.Snapshot().Histograms["h"]
	if len(snap.Counts) != 1 || snap.Counts[0] != 1 {
		t.Errorf("boundless histogram counts = %v", snap.Counts)
	}
	if snap.Sum != 42 {
		t.Errorf("sum = %g", snap.Sum)
	}
}

func TestBucketHelpers(t *testing.T) {
	lin := LinearBuckets(0, 5, 3)
	if want := []float64{0, 5, 10}; !equalF(lin, want) {
		t.Errorf("LinearBuckets = %v, want %v", lin, want)
	}
	exp := ExponentialBuckets(1, 2, 4)
	if want := []float64{1, 2, 4, 8}; !equalF(exp, want) {
		t.Errorf("ExponentialBuckets = %v, want %v", exp, want)
	}
}

func equalF(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestMetricsFileRoundTrip covers the -metrics on-disk document.
func TestMetricsFileRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("pb_hits").Add(7)
	reg.Series("mpki", 4096).Append(2.5)
	var buf bytes.Buffer
	err := WriteMetricsFile(&buf, []RunSnapshot{
		{Workload: "Tomcat", Predictor: "LLBP", Metrics: reg.Snapshot()},
	})
	if err != nil {
		t.Fatal(err)
	}
	mf, err := ReadMetricsFile(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(mf.Runs) != 1 || mf.Runs[0].Workload != "Tomcat" {
		t.Fatalf("round-trip runs = %+v", mf.Runs)
	}
	if mf.Runs[0].Metrics.Counters["pb_hits"] != 7 {
		t.Errorf("pb_hits = %d", mf.Runs[0].Metrics.Counters["pb_hits"])
	}
	if s := mf.Runs[0].Metrics.Series["mpki"]; s.Interval != 4096 || len(s.Points) != 1 {
		t.Errorf("mpki series = %+v", s)
	}

	if _, err := ReadMetricsFile([]byte(`{"schema":"bogus/9","runs":[]}`)); err == nil {
		t.Error("wrong schema accepted")
	}
	if _, err := ReadMetricsFile([]byte(`not json`)); err == nil {
		t.Error("malformed JSON accepted")
	}
}

// TestSnapshotJSONShape pins the snapshot field names external tooling
// greps for.
func TestSnapshotJSONShape(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("c").Inc()
	reg.Gauge("g").Set(1)
	reg.Histogram("h", []float64{1}).Observe(0.5)
	reg.Series("s", 8).Append(3)
	var buf bytes.Buffer
	if err := reg.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var m map[string]json.RawMessage
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"counters", "gauges", "histograms", "series"} {
		if _, ok := m[key]; !ok {
			t.Errorf("snapshot JSON missing %q", key)
		}
	}
}

// TestSnapshotSequence: successive snapshots of one registry carry
// strictly increasing sequence numbers starting at 1, and stay
// timestamp-free until a clock is attached — the order-checkable-scrape
// contract of the service /metrics endpoint.
func TestSnapshotSequence(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("c").Inc()
	s1, s2, s3 := reg.Snapshot(), reg.Snapshot(), reg.Snapshot()
	if s1.Seq != 1 || s2.Seq != 2 || s3.Seq != 3 {
		t.Errorf("snapshot seqs = %d,%d,%d; want 1,2,3", s1.Seq, s2.Seq, s3.Seq)
	}
	if s1.TimeUnixMS != 0 || s2.TimeUnixMS != 0 {
		t.Error("snapshots must be unstamped until SetClock is called")
	}

	var fake int64 = 1_700_000_000_000
	reg.SetClock(func() int64 { fake += 250; return fake })
	s4, s5 := reg.Snapshot(), reg.Snapshot()
	if s4.Seq != 4 || s5.Seq != 5 {
		t.Errorf("seq after SetClock = %d,%d; want 4,5", s4.Seq, s5.Seq)
	}
	if s4.TimeUnixMS == 0 || s5.TimeUnixMS <= s4.TimeUnixMS {
		t.Errorf("timestamps not monotonic: %d then %d", s4.TimeUnixMS, s5.TimeUnixMS)
	}
}

// TestSnapshotSequenceBackwardCompatible: metrics documents written before
// seq/timestamp existed (no such JSON fields) still parse, and the new
// fields round-trip through WriteMetricsFile/ReadMetricsFile.
func TestSnapshotSequenceBackwardCompatible(t *testing.T) {
	legacy := []byte(`{"schema":"llbp-metrics/1","runs":[{"workload":"w","metrics":{"counters":{"x":3}}}]}`)
	mf, err := ReadMetricsFile(legacy)
	if err != nil {
		t.Fatal(err)
	}
	if mf.Runs[0].Metrics.Seq != 0 || mf.Runs[0].Metrics.TimeUnixMS != 0 {
		t.Errorf("legacy document decoded seq=%d ts=%d; want zeros",
			mf.Runs[0].Metrics.Seq, mf.Runs[0].Metrics.TimeUnixMS)
	}

	reg := NewRegistry()
	reg.SetClock(func() int64 { return 42_000 })
	reg.Counter("x").Add(3)
	var buf bytes.Buffer
	if err := WriteMetricsFile(&buf, []RunSnapshot{{Workload: "w", Metrics: reg.Snapshot()}}); err != nil {
		t.Fatal(err)
	}
	mf2, err := ReadMetricsFile(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if got := mf2.Runs[0].Metrics; got.Seq != 1 || got.TimeUnixMS != 42_000 {
		t.Errorf("round-trip seq=%d ts=%d; want 1, 42000", got.Seq, got.TimeUnixMS)
	}
}
