package report

import (
	"strings"
	"testing"
)

func TestChartFromTable(t *testing.T) {
	tab := New("MPKI", "workload", "mpki")
	tab.AddRow("Tomcat", 6.0)
	tab.AddRow("Kafka", 3.0)
	tab.AddRow("note", "n/a") // non-numeric: skipped
	c := ChartFromTable(tab, 1, "")
	if len(c.Labels) != 2 || len(c.Values) != 2 {
		t.Fatalf("chart rows = %d/%d, want 2", len(c.Labels), len(c.Values))
	}
	if c.Values[0] != 6 || c.Values[1] != 3 {
		t.Errorf("values = %v", c.Values)
	}
}

func TestChartBarsProportional(t *testing.T) {
	c := &BarChart{
		Labels: []string{"big", "half", "zero"},
		Values: []float64{10, 5, 0},
		Width:  40,
	}
	out := c.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("chart lines = %d", len(lines))
	}
	count := func(s string) int { return strings.Count(s, "#") }
	if count(lines[0]) != 40 {
		t.Errorf("max bar = %d chars, want 40", count(lines[0]))
	}
	if got := count(lines[1]); got < 19 || got > 21 {
		t.Errorf("half bar = %d chars, want ≈20", got)
	}
	if count(lines[2]) != 0 {
		t.Errorf("zero bar must be empty")
	}
}

func TestChartSmallPositiveVisible(t *testing.T) {
	c := &BarChart{Labels: []string{"a", "b"}, Values: []float64{1000, 0.5}, Width: 30}
	lines := strings.Split(strings.TrimSpace(c.String()), "\n")
	if strings.Count(lines[1], "#") != 1 {
		t.Error("small positive values must render a visible sliver")
	}
}

func TestChartAllZero(t *testing.T) {
	c := &BarChart{Labels: []string{"a"}, Values: []float64{0}}
	if out := c.String(); !strings.Contains(out, "0.00") {
		t.Error("all-zero chart must still render values")
	}
}

func TestChartWithTitleAndUnit(t *testing.T) {
	c := &BarChart{Title: "Speedup", Labels: []string{"x"}, Values: []float64{1.5}, Unit: "%"}
	out := c.String()
	if !strings.Contains(out, "Speedup") || !strings.Contains(out, "1.50%") {
		t.Errorf("chart rendering wrong: %q", out)
	}
}
