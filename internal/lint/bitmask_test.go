package lint_test

import (
	"testing"

	"llbp/internal/lint"
	"llbp/internal/lint/analysistest"
)

// TestBitmask covers unmasked computed indices, constant width
// mismatches, and the accepted mask/modulo/loop/conversion shapes.
func TestBitmask(t *testing.T) {
	analysistest.Run(t, "testdata", lint.Bitmask, "tables")
}
