package sc

import (
	"fmt"

	"llbp/internal/faults"
)

// FaultFields implements faults.Surface: the GEHL component tables and the
// bias table are the corrector's SRAM payload. (The local and IMLI banks
// are small register-file-class structures and are left out of the fault
// model, as is the speculative history — flip studies target the bulk
// counter arrays.) Parity granularity is one counter; a detected flip
// resets the counter to the neutral weakly-not-taken state (0).
func (c *Corrector) FaultFields() []faults.Field {
	bits := c.cfg.CounterBits
	fields := make([]faults.Field, 0, len(c.tables)+1)
	for ti := range c.tables {
		tbl := c.tables[ti]
		fields = append(fields, faults.Field{
			Name: fmt.Sprintf("sc.t%d", ti), Bits: bits, Len: len(tbl),
			Get:   func(i int) uint64 { return faults.Unsigned(int64(tbl[i]), bits) },
			Set:   func(i int, v uint64) { tbl[i] = int8(faults.SignExtend(v, bits)) },
			Reset: func(i int) { tbl[i] = 0 },
		})
	}
	bias := c.bias
	fields = append(fields, faults.Field{
		Name: "sc.bias", Bits: bits, Len: len(bias),
		Get:   func(i int) uint64 { return faults.Unsigned(int64(bias[i]), bits) },
		Set:   func(i int, v uint64) { bias[i] = int8(faults.SignExtend(v, bits)) },
		Reset: func(i int) { bias[i] = 0 },
	})
	return fields
}

var _ faults.Surface = (*Corrector)(nil)
