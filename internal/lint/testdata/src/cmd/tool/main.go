// Command tool is a fixture for the cmd/ allowlists shared by the
// determinism and nopanic analyzers: drivers may read the wall clock and
// may panic on fatal setup errors. No diagnostics expected.
package main

import (
	"fmt"
	"time"
)

func main() {
	start := time.Now()
	report(start)
}

func report(start time.Time) {
	if time.Since(start) < 0 {
		panic("tool: clock went backwards")
	}
	fmt.Println("elapsed", time.Since(start))
}
