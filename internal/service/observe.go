package service

// Observability surface of the server: structured lifecycle events
// (llbp-events/1 via Options.Events), job/cell spans on the tracer's
// PidService track, and the read-only Health/DebugJobs views behind
// /healthz and /debug/jobs. Everything here is nil-safe against a
// disabled registry, event log and tracer, and none of it runs on the
// per-branch simulation path — the service hot path (CellProgress)
// stays instrument-free.

import (
	"time"

	"llbp/internal/telemetry"
)

// event emits one lifecycle record. All fields beyond typ/id/tenant are
// optional; zero values are omitted from the NDJSON line.
func (s *Server) event(typ, id, tenant, worker string, epoch uint64, detail string) {
	if s.opt.Events == nil {
		return
	}
	s.opt.Events.Emit(telemetry.Event{
		Type: typ, Job: id, Tenant: tenant, Worker: worker, Epoch: epoch, Detail: detail,
	})
}

// eventCompleted emits the terminal record with state and duration.
func (s *Server) eventCompleted(jb *job, worker string, epoch uint64, final State, dur time.Duration) {
	if s.opt.Events == nil {
		return
	}
	s.opt.Events.Emit(telemetry.Event{
		Type: telemetry.EventJobCompleted, Job: jb.id, Tenant: jb.req.Tenant,
		Worker: worker, Epoch: epoch, State: string(final),
		DurationMS: durMS(dur),
	})
}

// durMS converts a duration to the milliseconds the histograms and
// events carry (clamped at zero: fake clocks may run "backwards" across
// a resume).
func durMS(d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(d) / float64(time.Millisecond)
}

// span emits a completed lifecycle span on the service track. t0 is the
// tracer timestamp captured at the start (Tracer.Since); tid is the
// worker index + 1.
func (s *Server) span(tid int, name string, t0 float64, args map[string]any) {
	if s.opt.Tracer == nil {
		return
	}
	s.opt.Tracer.Span(telemetry.PidService, tid, name, "service", t0, s.opt.Tracer.Since()-t0, args)
}

// HealthStatus is the /healthz response: readiness plus the worker
// liveness the status field is derived from. A running job whose lease
// has expired means its worker is wedged or dead and the supervisor has
// not yet recovered it — the daemon reports "degraded" until the reap.
type HealthStatus struct {
	// Status is "ok", "degraded" (expired leases outstanding) or
	// "draining".
	Status   string `json:"status"`
	Draining bool   `json:"draining"`
	Jobs     int    `json:"jobs"`
	Queued   int    `json:"queued"`
	Running  int    `json:"running"`
	// Workers is the configured worker-pool size.
	Workers int `json:"workers"`
	// ExpiredLeases counts running jobs whose lease deadline has passed
	// (worker liveness signal: 0 means every running job has a live
	// owner).
	ExpiredLeases int `json:"expired_leases"`
}

// Health reports the server's readiness, derived from drain state and
// lease liveness.
func (s *Server) Health() HealthStatus {
	now := s.now()
	h := HealthStatus{Status: "ok", Draining: s.Draining(), Workers: s.opt.Workers}
	s.mu.Lock()
	jobs := make([]*job, 0, len(s.jobs))
	for _, jb := range s.jobs {
		jobs = append(jobs, jb)
	}
	s.mu.Unlock()
	h.Jobs = len(jobs)
	for _, jb := range jobs {
		jb.mu.Lock()
		state, owner, expires := jb.state, jb.lease.owner, jb.lease.expires
		jb.mu.Unlock()
		switch state {
		case StateQueued:
			h.Queued++
		case StateRunning:
			h.Running++
			if owner != "" && now.After(expires) {
				h.ExpiredLeases++
			}
		}
	}
	switch {
	case h.Draining:
		h.Status = "draining"
	case h.ExpiredLeases > 0:
		h.Status = "degraded"
	}
	return h
}

// DebugJob is one /debug/jobs entry: the wire status plus the lease
// diagnostics operators need to see which worker owns what and for how
// much longer.
type DebugJob struct {
	JobStatus
	// Worker is the lease owner ("" when unowned).
	Worker string `json:"worker,omitempty"`
	// Epoch is the job's current dispatch generation.
	Epoch uint64 `json:"epoch"`
	// LeaseExpiresUnixMS is the lease deadline (0 when unowned).
	LeaseExpiresUnixMS int64 `json:"lease_expires_unix_ms,omitempty"`
	// LeaseRemainingMS is the time until expiry (negative once expired).
	LeaseRemainingMS int64 `json:"lease_remaining_ms,omitempty"`
	// LeaseExpired reports an owned lease past its deadline.
	LeaseExpired bool `json:"lease_expired,omitempty"`
	// Events is the persisted stream-event count.
	Events int `json:"events"`
}

// DebugJobs snapshots every job's runtime diagnostics, sorted by ID.
func (s *Server) DebugJobs() []DebugJob {
	now := s.now()
	statuses := s.Jobs() // sorted by ID
	out := make([]DebugJob, 0, len(statuses))
	for _, st := range statuses {
		s.mu.Lock()
		jb := s.jobs[st.ID]
		s.mu.Unlock()
		if jb == nil {
			continue
		}
		d := DebugJob{JobStatus: st, Events: jb.eventsLen()}
		owner, epoch, expires := jb.leaseInfo()
		d.Worker, d.Epoch = owner, epoch
		if owner != "" {
			d.LeaseExpiresUnixMS = expires.UnixMilli()
			d.LeaseRemainingMS = expires.Sub(now).Milliseconds()
			d.LeaseExpired = now.After(expires)
		}
		out = append(out, d)
	}
	return out
}
