package trace

import (
	"bytes"
	"testing"
)

// FuzzFileReader feeds arbitrary bytes to the trace decoder: it must
// never panic and never return corrupt records (types out of range, zero
// instruction counts).
func FuzzFileReader(f *testing.F) {
	// Seed with a valid trace.
	var buf bytes.Buffer
	w, err := NewWriter(&buf, "seed")
	if err != nil {
		f.Fatal(err)
	}
	for _, b := range sampleBranches() {
		b := b
		if err := w.Write(&b); err != nil {
			f.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("LLBPTRC1"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewFileReader(bytes.NewReader(data))
		if err != nil {
			return // malformed header: fine
		}
		var b Branch
		for i := 0; i < 10000; i++ {
			if err := r.Read(&b); err != nil {
				return // decode error or EOF: fine
			}
			if b.Type >= numBranchTypes {
				t.Fatalf("decoder produced invalid type %d", b.Type)
			}
			if b.Instructions == 0 {
				t.Fatal("decoder produced a zero instruction count")
			}
		}
	})
}

// FuzzRoundTrip checks encode/decode identity over arbitrary single
// records.
func FuzzRoundTrip(f *testing.F) {
	f.Add(uint64(0x400000), uint64(0x400040), uint8(0), true, uint32(5), false)
	f.Fuzz(func(t *testing.T, pc, target uint64, typ uint8, taken bool, instrs uint32, miss bool) {
		in := Branch{
			PC:                 pc,
			Target:             target,
			Type:               BranchType(typ % uint8(numBranchTypes)),
			Taken:              taken,
			Instructions:       instrs%(1<<30) + 1,
			MispredictedTarget: miss,
		}
		var buf bytes.Buffer
		w, err := NewWriter(&buf, "f")
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Write(&in); err != nil {
			t.Fatal(err)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		r, err := NewFileReader(&buf)
		if err != nil {
			t.Fatal(err)
		}
		var out Branch
		if err := r.Read(&out); err != nil {
			t.Fatal(err)
		}
		if out != in {
			t.Fatalf("round trip: %+v != %+v", out, in)
		}
	})
}
