package core

import (
	"llbp/internal/history"
	"llbp/internal/predictor"
	"llbp/internal/tsl"
)

var _ predictor.Forkable = (*Predictor)(nil)

// Fork implements predictor.Forkable: it returns an independent copy of
// the whole composite — the forked baseline, the RCR, the context
// directory, the pattern buffer, LLBP's history mirrors, the power-gate
// state machine and the cumulative stats. The bulk pattern storage is
// NOT copied eagerly: directory entries on both sides are marked
// copy-on-write and each side clones a pattern set only on its first
// write to it (see CDEntry.ownSet), so a fork costs O(directory) rather
// than O(patterns).
//
// clock becomes the child's time base and is advanced to the parent's
// current cycle, keeping the pattern buffer's prefetch-ready deadlines
// (absolute cycles) meaningful; pass the clock the child's driver will
// advance, or nil for a detached one. Call at a branch boundary (after
// Update, before the next Predict).
func (p *Predictor) Fork(clock *predictor.Clock) predictor.Predictor {
	if clock == nil {
		clock = &predictor.Clock{}
	}
	clock.Reset()
	clock.Advance(p.clock.NowF())
	out := *p
	out.base = p.base.Fork(nil).(*tsl.Predictor)
	out.clock = clock
	out.rcr = p.rcr.fork()
	dir, remap := p.dir.fork()
	out.dir = dir
	out.pb = p.pb.fork(remap)
	ghr := p.ghr.Snapshot()
	out.ghr = &ghr
	out.fold1 = append([]history.Folded(nil), p.fold1...)
	out.fold2 = append([]history.Folded(nil), p.fold2...)
	out.lenFold = append([]int(nil), p.lenFold...)
	out.tel = coreTel{}
	// The per-prediction scratch points into the parent's pattern
	// buffer; at a branch boundary it is dead, so the child starts with
	// it cleared rather than aliased.
	out.pbe = nil
	return &out
}

// fork deep-copies the rolling context register.
func (r *RCR) fork() *RCR {
	out := *r
	out.pcs = append([]uint64(nil), r.pcs...)
	return &out
}

// fork duplicates the directory, marking every live entry on BOTH sides
// as sharing its pattern set copy-on-write. It returns the copy plus a
// CID -> new-entry map so the pattern buffer can rebind its cached
// pointers into the copied directory.
func (d *Directory) fork() (*Directory, map[uint64]*CDEntry) {
	out := *d
	if d.assoc != nil {
		remap := make(map[uint64]*CDEntry, len(d.entries))
		out.assoc = make(map[uint64]*CDEntry, len(d.entries))
		out.entries = make([]*CDEntry, len(d.entries))
		for i, e := range d.entries {
			e.shared = true
			ce := *e
			out.entries[i] = &ce
			out.assoc[ce.CID] = &ce
			remap[ce.CID] = &ce
		}
		return &out, remap
	}
	remap := make(map[uint64]*CDEntry)
	out.sets = make([][]CDEntry, len(d.sets))
	for i := range d.sets {
		row := append([]CDEntry(nil), d.sets[i]...)
		for j := range row {
			if !row[j].Valid {
				continue
			}
			d.sets[i][j].shared = true
			row[j].shared = true
			remap[row[j].CID] = &row[j]
		}
		out.sets[i] = row
	}
	return &out, remap
}

// fork duplicates the pattern buffer, rebinding every cached entry's
// directory pointer into the forked directory via the CID remap. An
// entry whose backing context is somehow absent (impossible while the
// CD-eviction invalidation invariant holds) is dropped rather than left
// aliasing the parent.
func (b *Buffer) fork(remap map[uint64]*CDEntry) *Buffer {
	out := *b
	out.sets = make([][]PBEntry, len(b.sets))
	for i := range b.sets {
		row := append([]PBEntry(nil), b.sets[i]...)
		for j := range row {
			if !row[j].Valid {
				continue
			}
			ent := remap[row[j].CID]
			if ent == nil {
				row[j] = PBEntry{}
				continue
			}
			row[j].Ent = ent
		}
		out.sets[i] = row
	}
	return &out
}
