package gshare

import (
	"math/rand"
	"reflect"
	"testing"
)

func driveFork(p *Predictor, seed int64, n int) {
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		pc := uint64(0x4000 + rng.Intn(64)*4)
		taken := rng.Intn(3) != 0
		p.Predict(pc)
		p.Update(pc, taken)
	}
}

// TestForkEquivalence: fork-then-diverge must match two independently
// warmed twins byte for byte.
func TestForkEquivalence(t *testing.T) {
	mk := func() *Predictor {
		p, err := New(Default())
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	parent, twinP, twinC := mk(), mk(), mk()
	driveFork(parent, 11, 4000)
	driveFork(twinP, 11, 4000)
	driveFork(twinC, 11, 4000)

	child := parent.Fork(nil).(*Predictor)

	driveFork(parent, 22, 3000)
	driveFork(twinP, 22, 3000)
	driveFork(child, 33, 3000)
	driveFork(twinC, 33, 3000)

	if !reflect.DeepEqual(parent, twinP) {
		t.Error("parent state not byte-identical to unforked twin")
	}
	if !reflect.DeepEqual(child, twinC) {
		t.Error("child state not byte-identical to independently warmed twin")
	}
}
