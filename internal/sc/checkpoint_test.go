package sc

import (
	"math/rand"
	"testing"
)

// drive feeds one deterministic correct-path branch through both
// correctors (Correct + Update + history push).
func drive(a, b *Corrector, rng *rand.Rand) {
	pc := uint64(0x4000 + rng.Intn(64)*4)
	tage := rng.Intn(2) == 0
	conf := rng.Intn(3) == 0
	taken := rng.Intn(3) != 0
	for _, c := range []*Corrector{a, b} {
		c.Correct(pc, tage, conf)
		c.Update(pc, taken)
		c.Push(taken)
	}
}

// TestCheckpointRoundTripProperty: across many random interleavings, a
// corrector that checkpoints, wanders down a wrong path (speculative
// history pushes only), and restores must agree with a twin that never
// strayed — on every subsequent prediction, for every component vote.
func TestCheckpointRoundTripProperty(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		seed := seed
		rng := rand.New(rand.NewSource(seed))
		mk := func() *Corrector {
			c, err := New(DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			return c
		}
		c, twin := mk(), mk()
		warm := 200 + rng.Intn(2000)
		for i := 0; i < warm; i++ {
			drive(c, twin, rng)
		}

		cp := c.CheckpointHistory()
		excursion := 1 + rng.Intn(300)
		for i := 0; i < excursion; i++ {
			c.Push(rng.Intn(2) == 0)
		}
		c.RestoreHistory(cp)

		for i := 0; i < 500; i++ {
			pc := uint64(0x4000 + rng.Intn(64)*4)
			tage := rng.Intn(2) == 0
			conf := rng.Intn(3) == 0
			taken := rng.Intn(3) != 0
			got := c.Correct(pc, tage, conf)
			want := twin.Correct(pc, tage, conf)
			if got != want || c.lastSum != twin.lastSum {
				t.Fatalf("seed %d step %d: corrector diverged after rollback (sum %d vs %d)",
					seed, i, c.lastSum, twin.lastSum)
			}
			c.Update(pc, taken)
			twin.Update(pc, taken)
			c.Push(taken)
			twin.Push(taken)
		}

		// Restoring the same checkpoint again must be idempotent.
		c.RestoreHistory(cp)
		c.RestoreHistory(cp)
		if c.ghr.Snapshot() != cp.ghr {
			t.Errorf("seed %d: restore is not idempotent", seed)
		}
	}
}
