#!/usr/bin/env bash
# Session resume smoke: stream 50k branches at llbpd, kill -9 the daemon
# mid-session, restart it on the same journal, resume the push, and
# require the killed-and-resumed session's verdict stream to be
# byte-identical to an uninterrupted session fed the same branches.
#
# Usage: scripts/session_smoke.sh [chaos-spec]
#
# With a chaos spec argument (e.g. 'stream.drop@5%7,worker.stall@4') the
# daemon injects stream severs and a wedged push connection; the helpers
# below resume across the resulting fences, so the byte-identity
# assertion is unchanged — that is the point.
#
# LLBPD / LLBPCTL name prebuilt binaries (defaults: /tmp/llbpd,
# /tmp/llbpctl).
set -euo pipefail

LLBPD=${LLBPD:-/tmp/llbpd}
LLBPCTL=${LLBPCTL:-/tmp/llbpctl}
CHAOS=${1:-}

WORKLOAD=Tomcat
PREDICTOR=llbp
WARMUP=20000 # branches folded into the forked warm snapshot
TOTAL=50000  # branches streamed per session
BATCH=500    # must divide TOTAL and HALF so resume regenerates exact batches
HALF=25000   # branches applied before the kill

DIR=$(mktemp -d)
LLBPD_PID=""
trap '[ -n "$LLBPD_PID" ] && kill -9 "$LLBPD_PID" 2>/dev/null; rm -rf "$DIR"' EXIT

log() { echo "session-smoke: $*" >&2; }

start_llbpd() {
  local extra=()
  [ -n "$CHAOS" ] && extra+=(-chaos "$CHAOS")
  rm -f "$DIR/addr"
  "$LLBPD" -addr 127.0.0.1:0 -addr-file "$DIR/addr" -j 2 \
    -journal "$DIR/llbpd.journal" -lease-ttl 2s \
    -events "$DIR/events.ndjson" "${extra[@]}" \
    >>"$DIR/llbpd.log" 2>&1 &
  LLBPD_PID=$!
  for _ in $(seq 1 100); do
    [ -s "$DIR/addr" ] && break
    sleep 0.1
  done
  test -s "$DIR/addr" || { cat "$DIR/llbpd.log" >&2; exit 1; }
  ADDR=$(cat "$DIR/addr")
}

ctl() { "$LLBPCTL" -server "$ADDR" "$@"; }

open_session() {
  ctl session open -predictor "$PREDICTOR" -workload "$WORKLOAD" -warmup "$WARMUP"
}

# push_to_total <id>: stream branches until the session holds TOTAL, then
# close it with bye. Each attempt reads the daemon's cursor and resumes
# at the next batch, so a fence (chaos stall, lease expiry, daemon kill
# in between) just means another lap.
push_to_total() {
  local id=$1 line state seq remaining
  for _ in $(seq 1 30); do
    line=$(ctl session status "$id")
    state=$(awk '{print $2}' <<<"$line")
    [ "$state" = closed ] && return 0
    seq=$(awk '{print $5}' <<<"$line")
    remaining=$((TOTAL - seq * BATCH))
    if [ "$remaining" -le 0 ]; then
      if ctl session push "$id" -bye </dev/null >/dev/null; then
        return 0
      fi
    else
      if ctl session push "$id" -workload "$WORKLOAD" -skip "$WARMUP" \
        -batch "$BATCH" -start-seq $((seq + 1)) -n "$remaining" -bye >/dev/null; then
        return 0
      fi
    fi
    sleep 1
  done
  log "session $id never reached $TOTAL branches + close"
  return 1
}

# stream_to <id> <file>: pull the full output log. The client resumes
# severed streams from its cursor internally; a daemon-level failure
# (chaos exhausting the retry budget) gets a few fresh laps.
stream_to() {
  local id=$1 out=$2
  for _ in $(seq 1 10); do
    if ctl session stream -o "$out" "$id"; then
      return 0
    fi
    sleep 1
  done
  return 1
}

start_llbpd
log "llbpd on $ADDR (chaos: ${CHAOS:-none})"

# Uninterrupted reference: one session, all 50k branches, one connection
# (chaos permitting), closed cleanly.
REF=$(open_session)
log "reference session $REF"
push_to_total "$REF"
stream_to "$REF" "$DIR/ref.ndjson"
test -s "$DIR/ref.ndjson"

# Victim: same open parameters, first half streamed, then the daemon is
# killed -9 — no drain, no graceful close; the journal is all that
# survives.
VIC=$(open_session)
log "victim session $VIC"
push_to_half() {
  for _ in $(seq 1 30); do
    local seq
    seq=$(ctl session status "$VIC" | awk '{print $5}')
    [ "$((seq * BATCH))" -ge "$HALF" ] && return 0
    if ctl session push "$VIC" -workload "$WORKLOAD" -skip "$WARMUP" \
      -batch "$BATCH" -start-seq $((seq + 1)) -n $((HALF - seq * BATCH)) >/dev/null; then
      return 0
    fi
    sleep 1
  done
  return 1
}
push_to_half
log "killing llbpd mid-session (pid $LLBPD_PID)"
kill -9 "$LLBPD_PID"
wait "$LLBPD_PID" 2>/dev/null || true
LLBPD_PID=""

# Restart on the same journal and finish the victim: the daemon replays
# the journaled batches to rebuild the forked predictor and output log,
# the push resumes at the cursor, and the combined stream must match the
# reference byte for byte.
start_llbpd
log "llbpd restarted on $ADDR"
push_to_total "$VIC"
stream_to "$VIC" "$DIR/vic.ndjson"

if ! cmp "$DIR/ref.ndjson" "$DIR/vic.ndjson"; then
  log "killed-and-resumed stream diverged from the uninterrupted stream"
  diff <(head -c 2000 "$DIR/ref.ndjson") <(head -c 2000 "$DIR/vic.ndjson") >&2 || true
  exit 1
fi
FRAMES=$(wc -l <"$DIR/ref.ndjson")
log "verdict streams byte-identical ($FRAMES frames, $TOTAL branches each)"

# The restarted daemon must have resumed the victim from its journal.
grep -q '"type":"session.resumed"' "$DIR/events.ndjson" || {
  log "no session.resumed event after restart"
  exit 1
}
log "ok"
