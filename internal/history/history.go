// Package history implements the branch-history machinery shared by the
// TAGE-SC-L baseline and LLBP: a long global history register (GHR), the
// folded (cyclic-shift-register) histories TAGE uses to hash thousands of
// history bits on the fly, and a short path history.
//
// Keeping this machinery in one package guarantees TAGE and LLBP compute
// identical hashes for identical history lengths — a requirement for the
// paper's longest-match arbitration between the two predictors (§V-B).
package history

import (
	"fmt"

	"llbp/internal/assert"
)

// MaxLength is the maximum supported global history length in bits. The
// paper's longest table uses 3000 bits; 4096 leaves headroom.
const MaxLength = 4096

// Global is a global branch-history register of up to MaxLength bits,
// stored as a circular bit buffer. Bit 0 is the most recent outcome.
type Global struct {
	bits [MaxLength / 64]uint64
	head int // index of the most recent bit
}

// NewGlobal returns an empty global history register.
func NewGlobal() *Global { return &Global{} }

// Push shifts a new outcome bit into the history.
func (g *Global) Push(taken bool) {
	g.head = (g.head + 1) & (MaxLength - 1)
	word, off := g.head/64, uint(g.head%64)
	if taken {
		g.bits[word] |= 1 << off
	} else {
		g.bits[word] &^= 1 << off
	}
}

// Bit returns the i-th most recent outcome (i=0 is the last pushed bit).
// i must be < MaxLength.
func (g *Global) Bit(i int) uint64 {
	// MaxLength is a power of two, so the unsigned wrap-around of
	// head-i masks to the right circular position branch-free, and the
	// masked value proves the array index in range to the compiler.
	pos := uint(g.head-i) & (MaxLength - 1)
	return (g.bits[pos/64] >> (pos % 64)) & 1
}

// Snapshot captures the register state for later restoration.
func (g *Global) Snapshot() Global { return *g }

// Restore resets the register to a prior snapshot.
func (g *Global) Restore(s Global) { *g = s }

// Hash folds the most recent length bits of history into a width-bit value
// by XOR-folding. This is the "recompute from scratch" reference used to
// validate the incrementally maintained Folded registers; predictors use
// Folded for speed.
// Callers must pass a validated width in [1,63]; debug builds
// (-tags llbpdebug) panic on violations, release builds return 0.
func (g *Global) Hash(length, width int) uint64 {
	if width <= 0 || width > 63 {
		assert.Failf("history: invalid fold width %d", width)
		return 0
	}
	var h, chunk uint64
	n := 0
	for i := 0; i < length; i++ {
		chunk |= g.Bit(i) << uint(n)
		n++
		if n == width {
			h ^= chunk
			chunk, n = 0, 0
		}
	}
	return h ^ chunk
}

// Folded is an incrementally maintained XOR-fold of the most recent
// OrigLength history bits down to CompLength bits — the classic TAGE
// folded-history register (Michaud, PPM-like predictor). Update must be
// called exactly once per Global.Push, before pushing older bits out of
// range, i.e. with the same Global the register folds.
type Folded struct {
	comp       uint64
	mask       uint64 // 1<<CompLength - 1, precomputed for the per-branch update
	CompLength int    // folded width in bits
	OrigLength int    // history length being folded
	outpoint   int    // OrigLength % CompLength
}

// NewFolded returns a folded register of origLength history bits compressed
// to compLength bits.
func NewFolded(origLength, compLength int) *Folded {
	f := NewFoldedValue(origLength, compLength)
	return &f
}

// NewFoldedValue is NewFolded by value, for predictors that keep their folded
// registers in contiguous slices: per-branch fold maintenance walks every
// register, so value slices trade one pointer chase per register for
// hardware-prefetchable sequential loads.
func NewFoldedValue(origLength, compLength int) Folded {
	if compLength <= 0 || compLength > 63 {
		panic(fmt.Sprintf("history: invalid folded width %d", compLength))
	}
	if origLength < 0 || origLength > MaxLength {
		panic(fmt.Sprintf("history: invalid folded length %d", origLength))
	}
	return Folded{
		mask:       uint64(1)<<uint(compLength) - 1,
		CompLength: compLength,
		OrigLength: origLength,
		outpoint:   origLength % compLength,
	}
}

// Update incorporates the newest history bit (just pushed into g) and
// retires the bit that fell outside OrigLength.
//
// The caller must have already pushed the new outcome into g, so that
// g.Bit(0) is the incoming bit and g.Bit(OrigLength) is the outgoing bit.
func (f *Folded) Update(g *Global) {
	if f.OrigLength == 0 {
		return
	}
	f.UpdateBits(g.Bit(0), g.Bit(f.OrigLength))
}

// UpdateBits is Update with the incoming and outgoing history bits
// already in hand. Predictors updating many folded registers per branch
// use it to read each distinct bit from the Global register once —
// the incoming bit is shared by every register and the outgoing bit by
// every register of the same OrigLength — instead of twice per register.
func (f *Folded) UpdateBits(in, out uint64) {
	if f.OrigLength == 0 {
		return
	}
	c := (f.comp << 1) | in
	c ^= out << uint(f.outpoint)
	c ^= c >> uint(f.CompLength)
	f.comp = c & f.mask
}

// Value returns the current folded history.
func (f *Folded) Value() uint64 { return f.comp }

// Reset clears the folded state (matching an all-zero Global).
func (f *Folded) Reset() { f.comp = 0 }

// Snapshot captures the folded value for later restoration.
func (f *Folded) Snapshot() uint64 { return f.comp }

// Restore resets the folded value to a prior snapshot.
func (f *Folded) Restore(v uint64) { f.comp = v }

// Path is a short path-history register of branch-address bits, as used by
// TAGE's index hash. Each branch shifts in one low-order PC bit.
type Path struct {
	bits uint64
	len  int
}

// NewPath returns a path history of length bits (max 32).
func NewPath(length int) *Path {
	if length <= 0 || length > 32 {
		panic(fmt.Sprintf("history: invalid path length %d", length))
	}
	return &Path{len: length}
}

// Push shifts one bit of the branch PC into the path history.
func (p *Path) Push(pc uint64) {
	p.bits = ((p.bits << 1) | (pc & 1)) & (uint64(1)<<uint(p.len) - 1)
}

// Value returns the current path history bits.
func (p *Path) Value() uint64 { return p.bits }

// Snapshot captures the path history.
func (p *Path) Snapshot() uint64 { return p.bits }

// Restore resets the path history to a prior snapshot.
func (p *Path) Restore(v uint64) { p.bits = v }
