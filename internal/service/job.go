// Package service is the simulation-as-a-service subsystem: a
// long-running daemon (cmd/llbpd) that accepts batches of simulation
// cells as jobs, schedules them on a bounded worker pool through the
// fault-tolerant harness runner, streams per-cell results and periodic
// progress snapshots as JSON lines, and survives kills by journaling both
// job state and completed cells for exactly-once resume.
//
// The wire contract (schema "llbp-job/1"):
//
//	POST   /v1/jobs              submit a JobRequest; 202 JobStatus,
//	                             200 when the identical job already exists,
//	                             429 + Retry-After when the queue is full
//	GET    /v1/jobs              list job statuses
//	GET    /v1/jobs/{id}         one job's status
//	DELETE /v1/jobs/{id}         cancel a job
//	GET    /v1/jobs/{id}/results stream JSON-lines StreamEvents
//	                             (?follow=1 waits for new events)
//	GET    /metrics              Prometheus text exposition of the registry
//	GET    /metrics.json         llbp-metrics/1 registry snapshot
//	GET    /debug/jobs           per-job lease/epoch diagnostics
//	GET    /healthz              readiness: ok / degraded (expired leases) /
//	                             draining (503)
//
// Job identity is deterministic: the ID is a hash of the canonical cell
// keys, so resubmitting the same sweep — from any client, before or
// after a daemon restart — converges on one job.
package service

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"

	"llbp/internal/experiments"
)

// JobSchema identifies the request/response/stream wire format.
const JobSchema = "llbp-job/1"

// Job priorities. High-priority jobs are drawn from their admission lane
// before normal ones (best-effort: workers prefer, not preempt).
const (
	PriorityNormal = "normal"
	PriorityHigh   = "high"
)

// JobRequest is the submission payload: a batch of simulation cells run
// as one unit. Cells execute in order (subject to the worker's harness
// parallelism) and results stream per cell as they complete.
type JobRequest struct {
	// Schema must be JobSchema.
	Schema string `json:"schema"`
	// Tenant optionally names the submitting tenant for per-tenant
	// admission quotas ("" is the anonymous tenant). Job identity stays
	// content-addressed on the cells alone, so identical sweeps from two
	// tenants still converge on one job (owned by the first submitter).
	Tenant string `json:"tenant,omitempty"`
	// Priority selects the admission lane: "high" or "normal"/"" (the
	// default).
	Priority string `json:"priority,omitempty"`
	// Cells are the simulation cells, each canonically identified.
	Cells []experiments.CellSpec `json:"cells"`
}

// Validate checks the schema tag, priority and every cell, rejecting
// duplicates (they would violate the one-event-per-cell stream contract).
func (r *JobRequest) Validate() error {
	if r.Schema != JobSchema {
		return fmt.Errorf("service: job schema %q, want %q", r.Schema, JobSchema)
	}
	if r.Priority != "" && r.Priority != PriorityNormal && r.Priority != PriorityHigh {
		return fmt.Errorf("service: unknown priority %q (want %q or %q)", r.Priority, PriorityNormal, PriorityHigh)
	}
	if len(r.Cells) == 0 {
		return fmt.Errorf("service: job has no cells")
	}
	seen := make(map[string]bool, len(r.Cells))
	for _, c := range r.Cells {
		if err := c.Validate(); err != nil {
			return fmt.Errorf("service: %w", err)
		}
		key := c.Key()
		if seen[key] {
			return fmt.Errorf("service: duplicate cell %s", key)
		}
		seen[key] = true
	}
	return nil
}

// JobID derives the deterministic job ID from the canonical cell specs:
// sha256 over the newline-joined cell keys, truncated. Identical sweeps
// submitted anywhere get identical IDs.
func JobID(cells []experiments.CellSpec) string {
	keys := make([]string, len(cells))
	for i, c := range cells {
		keys[i] = c.Key()
	}
	sum := sha256.Sum256([]byte(strings.Join(keys, "\n")))
	return "job-" + hex.EncodeToString(sum[:8])
}

// State is a job's lifecycle state.
type State string

// Job lifecycle: Queued → Running → one of the terminal states
// (Done, Failed, Cancelled). A daemon restart moves non-terminal jobs
// back to Queued.
const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// JobStatus is the status document returned by submit/status/list.
type JobStatus struct {
	Schema string `json:"schema"`
	ID     string `json:"id"`
	State  State  `json:"state"`
	// Tenant and Priority echo the admitted request.
	Tenant   string `json:"tenant,omitempty"`
	Priority string `json:"priority,omitempty"`
	// Cells is the job's total cell count; Completed counts cells that
	// finished successfully, Failed those that errored.
	Cells     int `json:"cells"`
	Completed int `json:"completed"`
	Failed    int `json:"failed"`
}

// StreamEvent is one JSON line of a results stream.
//
// Types:
//   - "cell": a completed cell. Key/Index identify it; Value is the
//     cell's result exactly as the harness journals it (byte-identical
//     to a local cmd/experiments run of the same cell), or Error is set.
//   - "progress": a periodic interval snapshot of the cell currently
//     simulating (Processed of Total branches). Ephemeral: only streamed
//     live, never replayed.
//   - "done": the final line; State is the job's terminal state.
type StreamEvent struct {
	Type string `json:"type"`
	// Seq is the persisted event's 1-based position in the job's event
	// log ("cell" and "done" events only; ephemeral progress snapshots
	// carry no Seq). A results stream interrupted after seq N resumes
	// with ?from=N, replaying only events with Seq > N.
	Seq uint64 `json:"seq,omitempty"`
	// Key and Index identify the cell for "cell" and "progress" events.
	Key   string `json:"key,omitempty"`
	Index int    `json:"index,omitempty"`
	// Value is the marshaled experiments.RunOutput of a completed cell.
	Value json.RawMessage `json:"value,omitempty"`
	// Error is the cell's failure, when it failed.
	Error string `json:"error,omitempty"`
	// Processed/Total carry "progress" branch counts.
	Processed uint64 `json:"processed,omitempty"`
	Total     uint64 `json:"total,omitempty"`
	// State, Completed and Failed summarize the job on "done".
	State     State `json:"state,omitempty"`
	Completed int   `json:"completed,omitempty"`
	Failed    int   `json:"failed,omitempty"`
}
