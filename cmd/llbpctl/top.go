package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"sort"
	"time"

	"llbp/internal/report"
	"llbp/internal/service/client"
	"llbp/internal/telemetry"
)

// topState carries per-tenant completed-cell totals between frames so
// throughput can be rendered as a rate.
type topState struct {
	lastCells map[string]int
	lastAt    time.Time
}

// cmdTop renders a live operator view of the daemon: health, per-tenant
// throughput, queue and lease state, refreshed every -interval until
// interrupted (or -n frames have been drawn).
func cmdTop(ctx context.Context, cl *client.Client, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("llbpctl top", flag.ContinueOnError)
	fs.SetOutput(stderr)
	interval := fs.Duration("interval", 2*time.Second, "refresh period")
	frames := fs.Int("n", 0, "stop after this many frames (0 = run until interrupted)")
	plain := fs.Bool("plain", false, "append frames instead of redrawing in place (no ANSI)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	st := &topState{lastCells: map[string]int{}}
	timer := time.NewTimer(0) // fire the first frame immediately
	defer timer.Stop()
	for drawn := 0; ; {
		select {
		case <-ctx.Done():
			return nil
		case <-timer.C:
		}
		frame, err := renderTopFrame(ctx, cl, st)
		if err != nil {
			return err
		}
		if !*plain {
			fmt.Fprint(stdout, "\x1b[2J\x1b[H") // clear screen, home cursor
		}
		fmt.Fprint(stdout, frame)
		drawn++
		if *frames > 0 && drawn >= *frames {
			return nil
		}
		timer.Reset(*interval)
	}
}

// renderTopFrame fetches health, job diagnostics and metrics, and
// renders one frame of the view.
func renderTopFrame(ctx context.Context, cl *client.Client, st *topState) (string, error) {
	health, err := cl.Healthz(ctx)
	if err != nil {
		return "", err
	}
	jobs, err := cl.DebugJobs(ctx)
	if err != nil {
		return "", err
	}
	raw, err := cl.Metrics(ctx)
	if err != nil {
		return "", err
	}
	mf, err := telemetry.ReadMetricsFile(raw)
	if err != nil {
		return "", fmt.Errorf("decoding /metrics.json: %w", err)
	}
	var snap telemetry.Snapshot
	if len(mf.Runs) > 0 {
		snap = mf.Runs[0].Metrics
	}

	now := time.Now()
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "llbpd  %s  status=%s  jobs=%d queued=%d running=%d workers=%d",
		now.Format("15:04:05"), health.Status, health.Jobs, health.Queued, health.Running, health.Workers)
	if health.ExpiredLeases > 0 {
		fmt.Fprintf(&buf, "  EXPIRED-LEASES=%d", health.ExpiredLeases)
	}
	fmt.Fprintln(&buf)
	fmt.Fprintf(&buf, "queue depth %.0f  submitted %d  completed %d  failed %d  requeued %d  fences %d  panics %d\n\n",
		snap.Gauges["service_queue_depth"],
		snap.Counters["service_jobs_submitted"],
		snap.Counters["service_jobs_completed"],
		snap.Counters["service_jobs_failed"],
		snap.Counters["service_jobs_requeued"],
		snap.Counters["service_epoch_fences"],
		snap.Counters["service_worker_panics"])

	// Per-tenant throughput: completed-cell delta since the last frame.
	cells := map[string]int{}
	for _, j := range jobs {
		tenant := j.Tenant
		if tenant == "" {
			tenant = "(anon)"
		}
		cells[tenant] += j.Completed
	}
	if !st.lastAt.IsZero() && now.After(st.lastAt) {
		elapsed := now.Sub(st.lastAt).Seconds()
		chart := report.BarChart{Title: "tenant throughput", Unit: " cells/s", Width: 32}
		for _, tenant := range sortedTenants(cells) {
			rate := float64(cells[tenant]-st.lastCells[tenant]) / elapsed
			if rate < 0 {
				rate = 0
			}
			chart.Labels = append(chart.Labels, tenant)
			chart.Values = append(chart.Values, rate)
		}
		if len(chart.Labels) > 0 {
			if err := chart.WriteText(&buf); err != nil {
				return "", err
			}
			fmt.Fprintln(&buf)
		}
	}
	st.lastCells, st.lastAt = cells, now

	// Lease health, one line per non-terminal job.
	active := 0
	for _, j := range jobs {
		if j.State.Terminal() {
			continue
		}
		if active == 0 {
			fmt.Fprintln(&buf, "active jobs:")
		}
		active++
		fmt.Fprintf(&buf, "  %-20.20s %-9s %3d/%d cells", j.ID, j.State, j.Completed, j.Cells)
		if j.Worker != "" {
			lease := fmt.Sprintf("ttl %s", (time.Duration(j.LeaseRemainingMS) * time.Millisecond).Round(time.Millisecond))
			if j.LeaseExpired {
				lease = "EXPIRED"
			}
			fmt.Fprintf(&buf, "  %s epoch %d %s", j.Worker, j.Epoch, lease)
		}
		fmt.Fprintln(&buf)
	}
	if active == 0 {
		fmt.Fprintln(&buf, "no active jobs")
	}
	return buf.String(), nil
}

func sortedTenants(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
