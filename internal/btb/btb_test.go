package btb

import (
	"testing"

	"llbp/internal/trace"
)

func mustNew(t *testing.T) *Model {
	t.Helper()
	m, err := New(Default())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.LogSets = 0 },
		func(c *Config) { c.Ways = 0 },
		func(c *Config) { c.RASDepth = 0 },
		func(c *Config) { c.IndirectLogSets = 0 },
		func(c *Config) { c.IndirectWays = 0 },
		func(c *Config) { c.TargetHistLen = 65 },
	}
	for i, mod := range bad {
		cfg := Default()
		mod(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestDirectBranchLearnsTarget(t *testing.T) {
	m := mustNew(t)
	b := &trace.Branch{PC: 0x4000, Target: 0x5000, Type: trace.Jump, Taken: true}
	if out := m.Process(b); !out.TargetMiss || out.Source != "btb-miss" {
		t.Errorf("cold jump: %+v, want btb-miss", out)
	}
	if out := m.Process(b); out.TargetMiss {
		t.Errorf("warm jump still misses: %+v", out)
	}
}

func TestNotTakenConditionalNeverMisses(t *testing.T) {
	m := mustNew(t)
	b := &trace.Branch{PC: 0x4000, Target: 0x5000, Type: trace.CondDirect, Taken: false}
	for i := 0; i < 3; i++ {
		if out := m.Process(b); out.TargetMiss {
			t.Fatal("not-taken conditional charged a target miss")
		}
	}
	// Taken for the first time: miss, then learned.
	b.Taken = true
	if out := m.Process(b); !out.TargetMiss {
		t.Error("first taken occurrence must miss")
	}
	if out := m.Process(b); out.TargetMiss {
		t.Error("second taken occurrence must hit")
	}
}

func TestCallReturnViaRAS(t *testing.T) {
	m := mustNew(t)
	call := &trace.Branch{PC: 0x4000, Target: 0x8000, Type: trace.Call, Taken: true}
	ret := &trace.Branch{PC: 0x8010, Target: 0x4004, Type: trace.Return, Taken: true}
	m.Process(call) // cold: BTB miss, pushes RAS
	// The return target (PC+4 of the call) must be RAS-predicted even
	// though the return was never seen.
	if out := m.Process(ret); out.TargetMiss {
		t.Errorf("RAS-predicted return missed: %+v", out)
	}
	// Nested calls return in LIFO order.
	callB := &trace.Branch{PC: 0x4100, Target: 0x9000, Type: trace.Call, Taken: true}
	retB := &trace.Branch{PC: 0x9010, Target: 0x4104, Type: trace.Return, Taken: true}
	m.Process(call)
	m.Process(callB)
	if out := m.Process(retB); out.TargetMiss {
		t.Error("inner return mispredicted")
	}
	if out := m.Process(ret); out.TargetMiss {
		t.Error("outer return mispredicted")
	}
}

func TestRASUnderflow(t *testing.T) {
	m := mustNew(t)
	ret := &trace.Branch{PC: 0x8010, Target: 0x4004, Type: trace.Return, Taken: true}
	out := m.Process(ret)
	if !out.TargetMiss {
		t.Error("return with empty RAS and cold BTB must miss")
	}
	if m.Stats().RASUnderflows != 1 {
		t.Error("underflow not counted")
	}
}

func TestRASOverflowDropsOldest(t *testing.T) {
	cfg := Default()
	cfg.RASDepth = 4
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 6 calls into a 4-deep stack: the two oldest return addresses are
	// lost.
	for i := 0; i < 6; i++ {
		m.Process(&trace.Branch{PC: uint64(0x4000 + i*0x100), Target: 0x8000, Type: trace.Call, Taken: true})
	}
	if m.Stats().RASOverflows != 2 {
		t.Errorf("overflows = %d, want 2", m.Stats().RASOverflows)
	}
	// Returns for the newest 4 predict fine.
	for i := 5; i >= 2; i-- {
		ret := &trace.Branch{PC: 0x8010, Target: uint64(0x4000 + i*0x100 + 4), Type: trace.Return, Taken: true}
		if out := m.Process(ret); out.TargetMiss {
			t.Errorf("return %d mispredicted after overflow", i)
		}
	}
}

func TestIndirectMonomorphic(t *testing.T) {
	m := mustNew(t)
	b := &trace.Branch{PC: 0x4000, Target: 0x9000, Type: trace.IndirectCall, Taken: true}
	m.Process(b) // cold miss
	for i := 0; i < 5; i++ {
		if out := m.Process(b); out.TargetMiss {
			t.Fatalf("monomorphic indirect missed on iteration %d", i)
		}
		// Pop the RAS entries the indirect calls push.
		m.popRAS()
	}
}

func TestIndirectPolymorphicHistoryPredicted(t *testing.T) {
	// An indirect branch alternating between two targets, where the
	// target correlates with the preceding indirect target: the
	// history-hashed table should learn it while a last-target
	// predictor alone would always miss.
	m := mustNew(t)
	targets := []uint64{0x9000, 0xA000}
	warmMisses, lateMisses := 0, 0
	for i := 0; i < 400; i++ {
		b := &trace.Branch{PC: 0x4000, Target: targets[i%2], Type: trace.IndirectJump, Taken: true}
		out := m.Process(b)
		if out.TargetMiss {
			if i < 200 {
				warmMisses++
			} else {
				lateMisses++
			}
		}
	}
	if lateMisses > 20 {
		t.Errorf("history-correlated indirect still missing %d/200 after warmup (warm %d)", lateMisses, warmMisses)
	}
}

func TestStatsAccumulate(t *testing.T) {
	m := mustNew(t)
	m.Process(&trace.Branch{PC: 0x10, Target: 0x20, Type: trace.Jump, Taken: true})
	m.Process(&trace.Branch{PC: 0x10, Target: 0x30, Type: trace.Jump, Taken: true}) // target changed
	s := m.Stats()
	if s.Lookups != 2 || s.BTBMisses != 1 || s.WrongTarget != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestCapacityEviction(t *testing.T) {
	cfg := Default()
	cfg.LogSets = 2 // 4 sets × 8 ways = 32 entries
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 64 distinct jumps: half must have been evicted; re-processing the
	// first ones misses again.
	for i := 0; i < 64; i++ {
		m.Process(&trace.Branch{PC: uint64(0x1000 + i*4), Target: 0x2000, Type: trace.Jump, Taken: true})
	}
	missBefore := m.Stats().BTBMisses
	m.Process(&trace.Branch{PC: 0x1000, Target: 0x2000, Type: trace.Jump, Taken: true})
	if m.Stats().BTBMisses == missBefore {
		t.Error("expected an eviction-induced miss after overflowing the BTB")
	}
}
