// Package btb models the front end's target-prediction structures from
// Table II: a set-associative branch target buffer (16K entries, 8-way),
// a return-address stack, and a small history-hashed indirect-target
// predictor (an ITTAGE-flavoured second level over a per-PC last-target
// table).
//
// The simulation driver can use this model to *derive* target
// mispredictions (pipeline resets) from the branch stream instead of
// consuming the trace's precomputed MispredictedTarget flags — target
// misses are what keep resetting LLBP's prefetcher (§VI), so modelling
// them rather than replaying them makes the reset behaviour a function of
// the front-end configuration.
package btb

import "fmt"

// Config sizes the front-end structures.
type Config struct {
	// LogSets and Ways give the BTB geometry (Table II: 16K entries,
	// 8-way -> 2048 sets × 8).
	LogSets int
	Ways    int
	// RASDepth is the return-address-stack depth.
	RASDepth int
	// IndirectLogSets and IndirectWays size the history-hashed
	// indirect-target table.
	IndirectLogSets int
	IndirectWays    int
	// TargetHistLen is the number of recent indirect targets hashed
	// into the indirect index.
	TargetHistLen int
}

// Default returns the Table II configuration.
func Default() Config {
	return Config{
		LogSets:         11, // 2048 sets × 8 ways = 16K entries
		Ways:            8,
		RASDepth:        32,
		IndirectLogSets: 9, // 512 sets × 4 ways
		IndirectWays:    4,
		TargetHistLen:   8,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.LogSets < 1 || c.LogSets > 20 {
		return fmt.Errorf("btb: logSets %d out of range [1,20]", c.LogSets)
	}
	if c.Ways < 1 || c.Ways > 32 {
		return fmt.Errorf("btb: ways %d out of range [1,32]", c.Ways)
	}
	if c.RASDepth < 1 || c.RASDepth > 256 {
		return fmt.Errorf("btb: rasDepth %d out of range [1,256]", c.RASDepth)
	}
	if c.IndirectLogSets < 1 || c.IndirectLogSets > 20 {
		return fmt.Errorf("btb: indirectLogSets %d out of range", c.IndirectLogSets)
	}
	if c.IndirectWays < 1 || c.IndirectWays > 32 {
		return fmt.Errorf("btb: indirectWays %d out of range", c.IndirectWays)
	}
	if c.TargetHistLen < 0 || c.TargetHistLen > 64 {
		return fmt.Errorf("btb: targetHistLen %d out of range", c.TargetHistLen)
	}
	return nil
}

// entry is one BTB way.
type entry struct {
	valid  bool
	tag    uint32
	target uint64
	lru    uint64
}

// Stats counts front-end target events.
type Stats struct {
	Lookups       uint64
	BTBMisses     uint64 // taken transfer absent from the BTB
	WrongTarget   uint64 // BTB hit with a stale direct target
	IndirectWrong uint64 // indirect transfer predicted to a wrong target
	ReturnWrong   uint64 // RAS-predicted return to a wrong address
	RASOverflows  uint64
	RASUnderflows uint64
}

// Model is a front-end target predictor instance.
type Model struct {
	cfg  Config
	sets [][]entry
	tick uint64

	ras    []uint64
	rasTop int

	// Indirect-target predictor: a per-PC fallback (in the BTB itself)
	// is refined by a history-hashed table keyed by recent targets.
	ind        [][]entry
	indTick    uint64
	targetHist uint64

	stats Stats
}

// New builds a front-end model.
func New(cfg Config) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := &Model{cfg: cfg, ras: make([]uint64, cfg.RASDepth)}
	m.sets = make([][]entry, 1<<uint(cfg.LogSets))
	for i := range m.sets {
		m.sets[i] = make([]entry, cfg.Ways)
	}
	m.ind = make([][]entry, 1<<uint(cfg.IndirectLogSets))
	for i := range m.ind {
		m.ind[i] = make([]entry, cfg.IndirectWays)
	}
	return m, nil
}

// Stats returns the event counters.
func (m *Model) Stats() Stats { return m.stats }

func (m *Model) setIndex(pc uint64) uint64 {
	return (pc >> 2) & (uint64(len(m.sets)) - 1)
}

func tagOf(pc uint64, logSets int) uint32 {
	return uint32((pc >> uint(2+logSets)) & 0xffff)
}

// lookup returns the BTB entry for pc, or nil.
func (m *Model) lookup(pc uint64) *entry {
	set := m.sets[m.setIndex(pc)]
	tag := tagOf(pc, m.cfg.LogSets)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			m.tick++
			set[i].lru = m.tick
			return &set[i]
		}
	}
	return nil
}

// insert installs pc->target in the BTB, evicting the LRU way.
func (m *Model) insert(pc, target uint64) {
	set := m.sets[m.setIndex(pc)]
	tag := tagOf(pc, m.cfg.LogSets)
	victim := 0
	var vl uint64 = ^uint64(0)
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].lru < vl {
			victim, vl = i, set[i].lru
		}
	}
	m.tick++
	set[victim] = entry{valid: true, tag: tag, target: target, lru: m.tick}
}

func (m *Model) indIndex(pc uint64) uint64 {
	h := (pc >> 2) ^ m.targetHist ^ (m.targetHist >> uint(m.cfg.IndirectLogSets))
	return h & (uint64(len(m.ind)) - 1)
}

// lookupIndirect consults the history-hashed indirect table.
func (m *Model) lookupIndirect(pc uint64) *entry {
	set := m.ind[m.indIndex(pc)]
	tag := tagOf(pc, m.cfg.IndirectLogSets)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			m.indTick++
			set[i].lru = m.indTick
			return &set[i]
		}
	}
	return nil
}

func (m *Model) insertIndirect(pc, target uint64) {
	set := m.ind[m.indIndex(pc)]
	tag := tagOf(pc, m.cfg.IndirectLogSets)
	victim := 0
	var vl uint64 = ^uint64(0)
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].lru < vl {
			victim, vl = i, set[i].lru
		}
	}
	m.indTick++
	set[victim] = entry{valid: true, tag: tag, target: target, lru: m.indTick}
}

// pushRAS records a call's return address.
func (m *Model) pushRAS(returnAddr uint64) {
	if m.rasTop == len(m.ras) {
		// Overflow: drop the oldest by shifting the window (modelled
		// as a circular overwrite).
		copy(m.ras, m.ras[1:])
		m.rasTop--
		m.stats.RASOverflows++
	}
	m.ras[m.rasTop] = returnAddr
	m.rasTop++
}

// popRAS returns the predicted return address.
func (m *Model) popRAS() (uint64, bool) {
	if m.rasTop == 0 {
		m.stats.RASUnderflows++
		return 0, false
	}
	m.rasTop--
	return m.ras[m.rasTop], true
}
