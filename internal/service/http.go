package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"llbp/internal/chaos"
	"llbp/internal/telemetry"
)

// errorBody is the JSON error envelope of every non-2xx response.
type errorBody struct {
	Error string `json:"error"`
}

// Handler returns the service's HTTP API (see the package comment for
// the endpoint table). It is safe to install on any mux or server.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/jobs/{id}/results", s.handleResults)
	mux.HandleFunc("GET /metrics", s.handleMetricsProm)
	mux.HandleFunc("GET /metrics.json", s.handleMetricsJSON)
	mux.HandleFunc("GET /debug/jobs", s.handleDebugJobs)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

//llbplint:sink -- wire responses are asserted byte-for-byte in the e2e suite; payloads must not depend on iteration or arrival order
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	// Encoding a value we marshaled ourselves cannot fail in a way the
	// client can still be told about; ignore the error.
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorBody{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding job request: %v", err)
		return
	}
	st, created, err := s.Submit(req)
	switch {
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrTenantQuota):
		w.Header().Set("Retry-After", strconv.Itoa(s.opt.RetryAfterSeconds))
		writeError(w, http.StatusTooManyRequests, "%v", err)
	case errors.Is(err, ErrDraining):
		writeError(w, http.StatusServiceUnavailable, "%v", err)
	case err != nil:
		writeError(w, http.StatusBadRequest, "%v", err)
	case created:
		writeJSON(w, http.StatusAccepted, st)
	default:
		writeJSON(w, http.StatusOK, st)
	}
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Jobs())
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	st, ok := s.Job(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no job %s", id)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	st, ok := s.Cancel(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no job %s", id)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// handleResults streams the job's events as JSON lines. Without
// ?follow=1 it replays what exists and returns; with it, the stream
// stays open — interleaving persisted "cell" events with live
// "progress" snapshots — until the job reaches a terminal state (the
// "done" line) or the client disconnects.
//
// ?from=N resumes an interrupted stream: persisted events with Seq <= N
// are skipped, so a client that journaled sequence N reconnects without
// re-receiving (or missing) anything.
//
// Each write carries Options.StreamWriteTimeout as its deadline when
// configured: a client too slow to absorb the stream is disconnected
// rather than allowed to wedge a handler goroutine — its job keeps
// running and the persisted events replay on reconnect.
func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	jb, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, "no job %s", id)
		return
	}
	follow := r.URL.Query().Get("follow") == "1"
	pos := 0
	if from := r.URL.Query().Get("from"); from != "" {
		n, err := strconv.Atoi(from)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, "bad from=%q: want a non-negative event sequence", from)
			return
		}
		pos = n // Seq is 1-based position, so "after seq N" = index N
		if pos > 0 {
			// A resuming client: record how far behind the persisted
			// stream it reconnected.
			s.tel.resumes.Inc()
			gap := jb.eventsLen() - pos
			if gap < 0 {
				gap = 0
			}
			s.tel.resumeGap.Observe(float64(gap))
		}
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	rc := http.NewResponseController(w)
	enc := json.NewEncoder(w)
	write := func(ev StreamEvent) error {
		if s.opt.Chaos.Fire(chaos.StreamDrop) {
			s.tel.chaosDrops.Inc()
			s.logf("job %s: chaos severed results stream", id)
			//llbplint:allow nopanic -- chaos injection: http.ErrAbortHandler is the stdlib contract for aborting a response mid-stream
			panic(http.ErrAbortHandler)
		}
		if s.opt.StreamWriteTimeout > 0 {
			_ = rc.SetWriteDeadline(s.now().Add(s.opt.StreamWriteTimeout))
		}
		err := enc.Encode(ev)
		if err != nil && s.opt.StreamWriteTimeout > 0 {
			s.tel.slowClients.Inc()
			s.logf("job %s: dropping stream client: %v", id, err)
		}
		return err
	}

	var lastProg uint64
	for {
		evs, prog, progSeq, terminal, pulse := jb.snapshot(pos)
		pos += len(evs)
		for _, ev := range evs {
			if err := write(ev); err != nil {
				return // client gone or too slow
			}
		}
		if follow && !terminal && progSeq != lastProg {
			lastProg = progSeq
			if err := write(prog); err != nil {
				return
			}
		}
		if flusher != nil {
			flusher.Flush()
		}
		if terminal && len(evs) == 0 {
			return // full replay delivered, including the "done" line
		}
		if !follow && len(evs) == 0 {
			return // snapshot mode: dumped what exists
		}
		if terminal || !follow {
			continue // loop once more to drain any events added meanwhile
		}
		select {
		case <-pulse:
		case <-r.Context().Done():
			return
		}
	}
}

// handleMetricsProm serves the telemetry registry in Prometheus text
// exposition format — the scrape surface. The JSON snapshot lives at
// /metrics.json.
func (s *Server) handleMetricsProm(w http.ResponseWriter, r *http.Request) {
	if s.opt.Registry == nil {
		writeError(w, http.StatusNotFound, "telemetry disabled (no registry configured)")
		return
	}
	w.Header().Set("Content-Type", telemetry.PromContentType)
	w.WriteHeader(http.StatusOK)
	_ = telemetry.WritePrometheus(w, s.opt.Registry.Snapshot())
}

// handleMetricsJSON serves the telemetry registry as an llbp-metrics/1
// document (one run named after the daemon), the same format
// cmd/telemetrycheck validates in CI.
func (s *Server) handleMetricsJSON(w http.ResponseWriter, r *http.Request) {
	if s.opt.Registry == nil {
		writeError(w, http.StatusNotFound, "telemetry disabled (no registry configured)")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_ = telemetry.WriteMetricsFile(w, []telemetry.RunSnapshot{
		{Predictor: "llbpd", Metrics: s.opt.Registry.Snapshot()},
	})
}

// handleDebugJobs dumps every job's runtime diagnostics (lease owner,
// epoch, expiry) — the operator's view behind llbpctl top.
func (s *Server) handleDebugJobs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.DebugJobs())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	h := s.Health()
	code := http.StatusOK
	if h.Draining {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, h)
}
