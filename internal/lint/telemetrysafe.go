package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"regexp"

	"llbp/internal/lint/analysis"
)

// TelemetrySafe enforces the observability layer's usage contract
// (DESIGN.md §7): instruments are nil-safe only through their methods,
// so outside the telemetry package itself they may never be touched by
// field access or constructed by composite literal — a Registry is the
// only factory. Literal instrument names passed to Registry.Counter/
// Gauge/Histogram/Series must be snake_case, the scheme the CI
// telemetrycheck gate keys on.
//
// In service packages (import-path segment "service") one hot-path rule
// applies on top: arguments of instrument update calls
// (Inc/Add/Set/Observe/Append) must not allocate — no composite or
// function literals, no make/new/append, no string concatenation, no
// fmt/strings/strconv/sort/bytes calls. The former syntactic
// updates-under-held-lock rule moved to the lockorder program analyzer,
// which proves it at call-graph depth instead of within one body.
var TelemetrySafe = &analysis.Analyzer{
	Name: "telemetrysafe",
	Doc:  "telemetry instruments: methods only, Registry-constructed, snake_case names, allocation-free updates in service code",
	Run:  runTelemetrySafe,
}

// instrumentTypes are the nil-safe instrument and factory types exported
// by internal/telemetry. Snapshot/DTO types are plain data and exempt.
var instrumentTypes = map[string]bool{
	"Counter": true, "Gauge": true, "Histogram": true,
	"Series": true, "Registry": true, "Tracer": true,
}

// registryFactories are the Registry methods taking an instrument name.
var registryFactories = map[string]bool{
	"Counter": true, "Gauge": true, "Histogram": true, "Series": true,
}

// instrumentUpdates are the metric-update methods the service hot-path
// rules key on.
var instrumentUpdates = map[string]bool{
	"Inc": true, "Add": true, "Set": true, "Observe": true, "Append": true,
}

// allocCallPackages are stdlib packages whose calls inside an update
// argument imply formatting/allocation work on the metric-update path.
var allocCallPackages = map[string]bool{
	"fmt": true, "strings": true, "strconv": true, "sort": true, "bytes": true,
}

var snakeCaseRE = regexp.MustCompile(`^[a-z][a-z0-9]*(_[a-z0-9]+)*$`)

func runTelemetrySafe(pass *analysis.Pass) error {
	if lastSegment(pass.Pkg.Path()) == "telemetry" {
		return nil
	}
	serviceScope := hasSegment(pass.Pkg.Path(), "service")
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				if sel, ok := pass.TypesInfo.Selections[n]; ok && sel.Kind() == types.FieldVal {
					if name, ok := telemetryInstrument(sel.Recv()); ok {
						pass.Reportf(n.Sel.Pos(),
							"direct field access on telemetry.%s; instruments are nil-safe only through methods", name)
					}
				}
			case *ast.CompositeLit:
				if name, ok := telemetryInstrument(pass.TypesInfo.TypeOf(n)); ok {
					pass.Reportf(n.Pos(),
						"composite literal of telemetry.%s; obtain instruments from a Registry (nil-safety depends on it)", name)
				}
			case *ast.CallExpr:
				checkInstrumentName(pass, n)
				if serviceScope {
					checkUpdateArgs(pass, n)
				}
			}
			return true
		})
	}
	return nil
}

// instrumentUpdate reports whether call is Inc/Add/Set/Observe/Append on
// a telemetry instrument, returning the method name.
func instrumentUpdate(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || !instrumentUpdates[fn.Name()] {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", false
	}
	if _, ok := telemetryInstrument(sig.Recv().Type()); !ok {
		return "", false
	}
	return fn.Name(), true
}

// checkUpdateArgs enforces the allocation-free rule: the argument
// expressions of a metric update may compute (arithmetic, conversions,
// method calls on local state) but not allocate or format.
func checkUpdateArgs(pass *analysis.Pass, call *ast.CallExpr) {
	method, ok := instrumentUpdate(pass, call)
	if !ok {
		return
	}
	for _, arg := range call.Args {
		ast.Inspect(arg, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CompositeLit:
				pass.Reportf(n.Pos(),
					"telemetry update argument allocates (composite literal in %s); precompute outside the metric-update path", method)
			case *ast.FuncLit:
				pass.Reportf(n.Pos(),
					"telemetry update argument allocates (closure in %s); precompute outside the metric-update path", method)
				return false
			case *ast.CallExpr:
				if id, ok := n.Fun.(*ast.Ident); ok {
					if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok {
						switch b.Name() {
						case "make", "new", "append":
							pass.Reportf(n.Pos(),
								"telemetry update argument allocates (%s in %s); precompute outside the metric-update path", b.Name(), method)
						}
					}
				}
				if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
					if fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func); ok &&
						fn.Pkg() != nil && allocCallPackages[fn.Pkg().Path()] {
						pass.Reportf(n.Pos(),
							"telemetry update argument calls %s.%s in %s; format outside the metric-update path", fn.Pkg().Name(), fn.Name(), method)
					}
				}
			case *ast.BinaryExpr:
				if n.Op == token.ADD && isStringType(pass.TypesInfo.TypeOf(n)) {
					pass.Reportf(n.Pos(),
						"telemetry update argument allocates (string concatenation in %s); precompute outside the metric-update path", method)
				}
			}
			return true
		})
	}
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// telemetryInstrument reports whether t (possibly behind pointers) is an
// instrument type declared in a package whose path ends in "telemetry".
func telemetryInstrument(t types.Type) (string, bool) {
	for {
		p, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || lastSegment(obj.Pkg().Path()) != "telemetry" {
		return "", false
	}
	if !instrumentTypes[obj.Name()] {
		return "", false
	}
	return obj.Name(), true
}

// checkInstrumentName validates literal names passed to Registry
// factory methods. Non-constant names (e.g. "provider_" + c.String())
// cannot be checked statically and are skipped.
func checkInstrumentName(pass *analysis.Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || len(call.Args) == 0 {
		return
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || !registryFactories[fn.Name()] {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return
	}
	if name, ok := telemetryInstrument(sig.Recv().Type()); !ok || name != "Registry" {
		return
	}
	tv, ok := pass.TypesInfo.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return
	}
	name := constant.StringVal(tv.Value)
	if !snakeCaseRE.MatchString(name) {
		pass.Reportf(call.Args[0].Pos(),
			"instrument name %q is not snake_case (want %s)", name, snakeCaseRE)
	}
}
