// Package analysis is a minimal, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis vocabulary (Analyzer, Pass, Diagnostic)
// used by the llbplint suite. The container this repository builds in has
// no module proxy access, so the real x/tools package cannot be fetched;
// this package mirrors its API shape closely enough that the analyzers in
// internal/lint could be ported to the upstream framework by changing
// imports only.
//
// Beyond the x/tools core, this package implements the repository's
// suppression directive:
//
//	//llbplint:allow <analyzer>[,<analyzer>...] -- <justification>
//
// An allow comment suppresses matching diagnostics reported on the
// comment's own line or on the line directly below it (so it works both
// as a trailing comment and as a standalone comment above the offending
// statement). The justification after " -- " is mandatory: a directive
// without one suppresses nothing and is itself reported as a diagnostic,
// keeping every allowlisted finding explained in the code.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// An Analyzer is one static check. Exactly one of Run and RunProgram is
// set: Run inspects one package at a time, RunProgram sees every loaded
// package at once (the interprocedural analyzers need whole-program
// object identity to walk call graphs across package boundaries).
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, disable flags and
	// allow directives. It must be a valid identifier.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string
	// Run executes a per-package check. Diagnostics are delivered
	// through pass.Report; the error return is for operational failures
	// only (it aborts the run, it does not mean "findings exist").
	Run func(*Pass) error
	// RunProgram executes a whole-program check over every package of a
	// ProgramPass.
	RunProgram func(*ProgramPass) error
}

// A Pass presents one type-checked package to an analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Report delivers one diagnostic. The runner fills Category with
	// the analyzer name if left empty.
	Report func(Diagnostic)
}

// Reportf reports a diagnostic at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A ProgramPkg is one package of a whole-program pass.
type ProgramPkg struct {
	Path      string
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
}

// A ProgramPass presents every loaded package to a program analyzer.
// The packages share one FileSet and one type-object universe: a
// function imported by package A from package B is the same *types.Func
// as B's own definition.
type ProgramPass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Packages []*ProgramPkg
	Report   func(Diagnostic)
}

// Reportf reports a diagnostic at pos with a formatted message.
func (p *ProgramPass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one finding at a source position. Interprocedural
// findings carry the evidence chain in Path (source first, sink last).
type Diagnostic struct {
	Pos token.Pos
	// Category is the reporting analyzer's name ("directive" for
	// malformed suppression comments).
	Category string
	Message  string
	// Path, when non-empty, is the interprocedural step chain behind
	// the finding: for detflow the source→…→sink flow, for fencecheck
	// the worker-root→…→write chain, for lockorder the acquisition
	// cycle.
	Path []PathStep
}

// A PathStep is one hop of a diagnostic's evidence chain.
type PathStep struct {
	Pos  token.Pos
	Note string
}

// allowDirective is the parsed form of one //llbplint:allow comment.
type allowDirective struct {
	pos       token.Pos
	line      int
	file      string
	analyzers map[string]bool
	justified bool
	// used records that the directive suppressed at least one diagnostic
	// in this run — the input of the driver's dead-allow check.
	used bool
}

const directivePrefix = "llbplint:allow"

// DirectiveCategory is the category used for malformed-directive
// diagnostics, and the name under which fixtures can "want" them.
const DirectiveCategory = "directive"

// Suppressions indexes a package's //llbplint:allow directives.
type Suppressions struct {
	directives []allowDirective
}

// CollectSuppressions scans the files' comments for allow directives.
func CollectSuppressions(fset *token.FileSet, files []*ast.File) *Suppressions {
	s := &Suppressions{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, directivePrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, directivePrefix))
				d := allowDirective{
					pos:       c.Pos(),
					line:      fset.Position(c.Pos()).Line,
					file:      fset.Position(c.Pos()).Filename,
					analyzers: map[string]bool{},
				}
				names := rest
				if i := strings.Index(rest, "--"); i >= 0 {
					names = strings.TrimSpace(rest[:i])
					d.justified = strings.TrimSpace(rest[i+2:]) != ""
				}
				for _, n := range strings.Split(names, ",") {
					if n = strings.TrimSpace(n); n != "" {
						d.analyzers[n] = true
					}
				}
				s.directives = append(s.directives, d)
			}
		}
	}
	return s
}

// Allows reports whether a diagnostic from the named analyzer at pos is
// suppressed by a justified directive on the same or the preceding line,
// marking the matching directive as used.
func (s *Suppressions) Allows(fset *token.FileSet, name string, pos token.Pos) bool {
	p := fset.Position(pos)
	for i := range s.directives {
		d := &s.directives[i]
		if !d.justified || d.file != p.Filename {
			continue
		}
		if (d.line == p.Line || d.line == p.Line-1) && (d.analyzers[name] || d.analyzers["all"]) {
			d.used = true
			return true
		}
	}
	return false
}

// Stale returns one diagnostic per justified directive that suppressed
// nothing during the run — a dead allow whose underlying finding no
// longer fires, so the justification is rot. Directives naming only
// analyzers for which active(name) is false are skipped (the finding may
// fire when that analyzer is re-enabled). Call it after every analyzer
// has run.
func (s *Suppressions) Stale(active func(name string) bool) []Diagnostic {
	var out []Diagnostic
	for i := range s.directives {
		d := &s.directives[i]
		if !d.justified || d.used {
			continue
		}
		anyActive := d.analyzers["all"]
		for name := range d.analyzers {
			if name != "all" && active(name) {
				anyActive = true
			}
		}
		if !anyActive {
			continue
		}
		names := make([]string, 0, len(d.analyzers))
		for name := range d.analyzers {
			names = append(names, name)
		}
		sort.Strings(names)
		out = append(out, Diagnostic{
			Pos:      d.pos,
			Category: DirectiveCategory,
			Message: fmt.Sprintf("stale allow directive: no %s diagnostic fires here anymore; delete it",
				strings.Join(names, ",")),
		})
	}
	return out
}

// Problems returns one diagnostic per malformed (unjustified) directive.
// Call it once per package, not once per analyzer, to avoid duplicates.
func (s *Suppressions) Problems() []Diagnostic {
	var out []Diagnostic
	for _, d := range s.directives {
		if d.justified {
			continue
		}
		out = append(out, Diagnostic{
			Pos:      d.pos,
			Category: DirectiveCategory,
			Message:  fmt.Sprintf("allow directive missing justification; use //%s <analyzers> -- <reason>", directivePrefix),
		})
	}
	return out
}

var nameRE = regexp.MustCompile(`^[a-z][a-z0-9]*$`)

// Validate checks the analyzer's metadata.
func (a *Analyzer) Validate() error {
	if !nameRE.MatchString(a.Name) {
		return fmt.Errorf("analysis: invalid analyzer name %q", a.Name)
	}
	if (a.Run == nil) == (a.RunProgram == nil) {
		return fmt.Errorf("analysis: analyzer %s must set exactly one of Run and RunProgram", a.Name)
	}
	return nil
}

// Run executes one analyzer over a type-checked package, applying the
// package's suppression directives, and returns the surviving
// diagnostics sorted by position.
func Run(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, sup *Suppressions) ([]Diagnostic, error) {
	if err := a.Validate(); err != nil {
		return nil, err
	}
	if sup == nil {
		sup = CollectSuppressions(fset, files)
	}
	var diags []Diagnostic
	pass := &Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     files,
		Pkg:       pkg,
		TypesInfo: info,
		Report: func(d Diagnostic) {
			if d.Category == "" {
				d.Category = a.Name
			}
			if sup.Allows(fset, d.Category, d.Pos) {
				return
			}
			diags = append(diags, d)
		},
	}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("analysis: %s: %w", a.Name, err)
	}
	SortDiagnostics(fset, diags)
	return diags, nil
}

// RunProgram executes one whole-program analyzer over every package,
// applying the shared suppression index, and returns the surviving
// diagnostics sorted by position.
func RunProgram(a *Analyzer, fset *token.FileSet, pkgs []*ProgramPkg, sup *Suppressions) ([]Diagnostic, error) {
	if err := a.Validate(); err != nil {
		return nil, err
	}
	if a.RunProgram == nil {
		return nil, fmt.Errorf("analysis: analyzer %s is not a program analyzer", a.Name)
	}
	if sup == nil {
		var files []*ast.File
		for _, p := range pkgs {
			files = append(files, p.Files...)
		}
		sup = CollectSuppressions(fset, files)
	}
	var diags []Diagnostic
	pass := &ProgramPass{
		Analyzer: a,
		Fset:     fset,
		Packages: pkgs,
		Report: func(d Diagnostic) {
			if d.Category == "" {
				d.Category = a.Name
			}
			if sup.Allows(fset, d.Category, d.Pos) {
				return
			}
			diags = append(diags, d)
		},
	}
	if err := a.RunProgram(pass); err != nil {
		return nil, fmt.Errorf("analysis: %s: %w", a.Name, err)
	}
	SortDiagnostics(fset, diags)
	return diags, nil
}

// SortDiagnostics orders diagnostics by file, line, column, then message.
func SortDiagnostics(fset *token.FileSet, diags []Diagnostic) {
	sort.SliceStable(diags, func(i, j int) bool {
		pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return diags[i].Message < diags[j].Message
	})
}
