package main

import (
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"llbp/internal/experiments"
	"llbp/internal/session"
	"llbp/internal/workload"
)

// startSessionService mirrors llbpd's top-level mux: session routes plus
// the job service fallback, so the CLI sees the real wire layout.
func startSessionService(t *testing.T) string {
	t.Helper()
	wl, err := workload.ByName("Tomcat")
	if err != nil {
		t.Fatal(err)
	}
	h := experiments.NewHarness(experiments.Config{
		Warmup: 2_000, Measure: 10_000, Workloads: []*workload.Source{wl},
	})
	sm, err := session.New(session.Options{
		Forker: h, CheckpointBranches: 10_000, LeaseTTL: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	top := http.NewServeMux()
	top.Handle("/v1/session", sm.Handler())
	top.Handle("/v1/session/", sm.Handler())
	hs := httptest.NewServer(top)
	t.Cleanup(hs.Close)
	return hs.URL
}

// TestCtlSessionPipeline drives the composed CLI flow the README shows:
// open | push (generated from a workload trace, ending in bye) | stream,
// with the session ID flowing through stdout pipes.
func TestCtlSessionPipeline(t *testing.T) {
	addr := startSessionService(t)

	code, out, errb := ctl(t, "", "-server", addr, "session", "open",
		"-predictor", "64k", "-workload", "Tomcat", "-warmup", "1000")
	if code != 0 {
		t.Fatalf("open: code %d, stderr %q", code, errb)
	}
	id := strings.TrimSpace(out)
	if !strings.HasPrefix(id, "sess-") {
		t.Fatalf("open stdout %q is not a bare session id", out)
	}

	code, out, errb = ctl(t, "", "-server", addr, "session", "push", id,
		"-workload", "Tomcat", "-skip", "1000", "-n", "2000", "-batch", "400", "-bye")
	if code != 0 {
		t.Fatalf("push: code %d, stderr %q", code, errb)
	}
	if strings.TrimSpace(out) != "5" { // 2000 branches / 400 per batch
		t.Fatalf("push cursor %q, want 5 (stderr %q)", out, errb)
	}
	if !strings.Contains(errb, "closed") {
		t.Errorf("push stderr %q missing closed state", errb)
	}

	streamFile := filepath.Join(t.TempDir(), "frames.ndjson")
	code, _, errb = ctl(t, id+"\n", "-server", addr, "session", "stream", "-o", streamFile)
	if code != 0 {
		t.Fatalf("stream: code %d, stderr %q", code, errb)
	}
	raw, err := os.ReadFile(streamFile)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if len(lines) != 6 { // 5 predictions + done
		t.Fatalf("stream file has %d lines:\n%s", len(lines), raw)
	}
	if !strings.Contains(lines[5], `"type":"done"`) {
		t.Errorf("last stream line %q is not the done frame", lines[5])
	}

	code, out, _ = ctl(t, "", "-server", addr, "session", "list")
	if code != 0 || !strings.Contains(out, id) || !strings.Contains(out, "closed") {
		t.Errorf("list: code %d, out %q", code, out)
	}
}

// TestCtlSessionResumePush: an interrupted pusher resumes with
// -start-seq; overlap batches are acknowledged idempotently and the
// stream stays gapless.
func TestCtlSessionResumePush(t *testing.T) {
	addr := startSessionService(t)
	_, out, _ := ctl(t, "", "-server", addr, "session", "open",
		"-predictor", "64k", "-workload", "Tomcat", "-warmup", "1000")
	id := strings.TrimSpace(out)

	// First pusher covers batches 1..3, then "dies" (no bye, lease released
	// on EOF).
	code, out, errb := ctl(t, "", "-server", addr, "session", "push", id,
		"-workload", "Tomcat", "-skip", "1000", "-n", "1200", "-batch", "400")
	if code != 0 || strings.TrimSpace(out) != "3" {
		t.Fatalf("first push: code %d, cursor %q, stderr %q", code, out, errb)
	}
	// Resume overlapping one already-applied batch: seq 3 is acked as a
	// dup, 4..6 apply fresh.
	code, out, errb = ctl(t, "", "-server", addr, "session", "push", id,
		"-workload", "Tomcat", "-skip", "1000", "-n", "1600", "-batch", "400", "-start-seq", "3", "-bye")
	if code != 0 || strings.TrimSpace(out) != "6" {
		t.Fatalf("resumed push: code %d, cursor %q, stderr %q", code, out, errb)
	}

	code, out, _ = ctl(t, "", "-server", addr, "session", "status", id)
	if code != 0 || !strings.Contains(out, "seq 6") || !strings.Contains(out, "2400 branches") {
		t.Fatalf("status after resume: code %d, out %q", code, out)
	}
}
