package core

import "testing"

func testDirCfg() *Config {
	cfg := DefaultConfig()
	cfg.NumContexts = 56 // 8 sets × 7 ways
	cfg.CDSets = 8
	return &cfg
}

func TestDirectoryInsertLookup(t *testing.T) {
	d := newDirectory(testDirCfg())
	e, _, evicted := d.Insert(0x123)
	if evicted {
		t.Error("first insert must not evict")
	}
	if e == nil || !e.Valid || e.CID != 0x123 {
		t.Fatalf("bad entry: %+v", e)
	}
	if got := d.Lookup(0x123); got != e {
		t.Error("lookup must return the inserted entry")
	}
	if d.Lookup(0x999) != nil {
		t.Error("lookup of absent CID must be nil")
	}
	if d.Live() != 1 {
		t.Errorf("Live = %d", d.Live())
	}
}

func TestDirectoryEvictsLowestConfidence(t *testing.T) {
	d := newDirectory(testDirCfg())
	// Fill one set: CIDs with identical low 3 bits land in the same
	// set (8 sets); 7 ways available.
	var cids []uint64
	for i := 0; i < 7; i++ {
		cid := uint64(i)<<3 | 0x5
		cids = append(cids, cid)
		e, _, _ := d.Insert(cid)
		e.Conf = uint8(i % 4) // victim should be conf==0
	}
	// One entry (i=0 and i=4) has conf 0; the eviction must pick one.
	_, victim, evicted := d.Insert(uint64(9)<<3 | 0x5)
	if !evicted {
		t.Fatal("full set must evict")
	}
	if got := d.Lookup(victim); got != nil {
		t.Error("victim still present after eviction")
	}
	vConf := -1
	for _, cid := range cids {
		if cid == victim {
			vConf = int(cid>>3) % 4
		}
	}
	if vConf != 0 {
		t.Errorf("evicted conf-%d entry; want a conf-0 victim", vConf)
	}
}

func TestDirectoryLRUMode(t *testing.T) {
	cfg := testDirCfg()
	cfg.ReplacementLRU = true
	d := newDirectory(cfg)
	var cids []uint64
	for i := 0; i < 7; i++ {
		cid := uint64(i)<<3 | 0x5
		cids = append(cids, cid)
		e, _, _ := d.Insert(cid)
		e.Conf = 3 // confidence must be ignored in LRU mode
	}
	// Touch all but the first.
	for _, cid := range cids[1:] {
		d.Lookup(cid)
	}
	_, victim, evicted := d.Insert(uint64(9)<<3 | 0x5)
	if !evicted || victim != cids[0] {
		t.Errorf("LRU mode evicted %#x, want %#x", victim, cids[0])
	}
}

func TestDirectoryFullAssoc(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FullAssocCD = true
	cfg.CIDBits = 31
	cfg.NumContexts = 32
	d := newDirectory(&cfg)
	for i := 0; i < 32; i++ {
		d.Insert(uint64(i) * 0x1111)
	}
	if d.Live() != 32 {
		t.Fatalf("Live = %d, want 32", d.Live())
	}
	// Over capacity: evictions must keep Live at capacity.
	for i := 32; i < 200; i++ {
		_, _, evicted := d.Insert(uint64(i) * 0x1111)
		if !evicted {
			t.Fatal("insert beyond capacity must evict")
		}
	}
	if d.Live() != 32 {
		t.Errorf("Live = %d after churn, want 32", d.Live())
	}
	if d.Evictions() != 168 {
		t.Errorf("Evictions = %d, want 168", d.Evictions())
	}
}

func TestRefreshConf(t *testing.T) {
	d := newDirectory(testDirCfg())
	e, _, _ := d.Insert(0x1)
	e.Set.insert(0x10, 0, true, 4, 16)
	e.Set.insert(0x20, 4, true, 4, 16)
	setAllCtrs(&e.Set, 3)
	d.RefreshConf(e)
	if e.Conf != 2 {
		t.Errorf("Conf = %d, want 2", e.Conf)
	}
}

func TestBufferLookupInsertLRU(t *testing.T) {
	b := newBuffer(8, 4) // 2 sets × 4 ways
	ents := make([]*CDEntry, 8)
	for i := range ents {
		ents[i] = &CDEntry{Valid: true, CID: uint64(i*2) | 1, Set: newPatternSet(4)}
	}
	// Fill one set (odd low bit → set 1).
	for i := 0; i < 4; i++ {
		b.Insert(ents[i].CID, ents[i], 0)
	}
	if b.Live() != 4 {
		t.Fatalf("Live = %d", b.Live())
	}
	// Touch entries 1..3 so entry 0 is LRU.
	for i := 1; i < 4; i++ {
		if b.Lookup(ents[i].CID) == nil {
			t.Fatalf("lost entry %d", i)
		}
	}
	_, evicted := b.Insert(ents[4].CID, ents[4], 0)
	if !evicted.Valid || evicted.CID != ents[0].CID {
		t.Errorf("evicted %#x, want LRU %#x", evicted.CID, ents[0].CID)
	}
}

func TestBufferDirtyEvictionSignalled(t *testing.T) {
	b := newBuffer(4, 4)
	ent := &CDEntry{Valid: true, CID: 0x2, Set: newPatternSet(4)}
	e, _ := b.Insert(0x2, ent, 0)
	e.Dirty = true
	// Evict by filling the single set.
	var ev PBEntry
	for i := 1; i <= 4; i++ {
		_, out := b.Insert(uint64(i*4), &CDEntry{Valid: true, CID: uint64(i * 4), Set: newPatternSet(4)}, 0)
		if out.Valid && out.CID == 0x2 {
			ev = out
		}
	}
	if !ev.Valid || !ev.Dirty {
		t.Error("dirty eviction must be visible to the caller for writeback accounting")
	}
}

func TestBufferInvalidate(t *testing.T) {
	b := newBuffer(8, 4)
	ent := &CDEntry{Valid: true, CID: 0x6, Set: newPatternSet(4)}
	e, _ := b.Insert(0x6, ent, 0)
	e.Dirty = true
	out := b.Invalidate(0x6)
	if !out.Valid || !out.Dirty {
		t.Error("invalidate must return the dropped entry")
	}
	if b.Lookup(0x6) != nil {
		t.Error("entry still present after invalidate")
	}
	if out := b.Invalidate(0x6); out.Valid {
		t.Error("double invalidate must be a no-op")
	}
}

func TestBufferSquashInflightSkipsDirtyAndReady(t *testing.T) {
	b := newBuffer(8, 4)
	mk := func(cid uint64, ready float64, dirty bool) {
		e, _ := b.Insert(cid, &CDEntry{Valid: true, CID: cid, Set: newPatternSet(4)}, ready)
		e.Dirty = dirty
	}
	mk(0x10, 100, false) // in-flight, clean -> squashed
	mk(0x12, 100, true)  // in-flight, dirty -> kept (pinned)
	mk(0x14, 5, false)   // ready -> kept
	n := b.SquashInflight(50)
	if n != 1 {
		t.Errorf("squashed %d entries, want 1", n)
	}
	if b.Lookup(0x10) != nil {
		t.Error("clean in-flight entry survived the squash")
	}
	if b.Lookup(0x12) == nil || b.Lookup(0x14) == nil {
		t.Error("dirty/ready entries must survive the squash")
	}
}

func TestBufferGeometryValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { newBuffer(0, 4) },
		func() { newBuffer(7, 4) },
		func() { newBuffer(24, 4) }, // 6 sets: not a power of two
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}
