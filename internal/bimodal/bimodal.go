// Package bimodal implements the untagged fall-back predictor used by
// TAGE-SC-L: a direction-bit table with shared hysteresis bits, as in
// Seznec's championship implementations. When no tagged TAGE table
// matches, the bimodal table provides the prediction.
package bimodal

import "fmt"

// Table is a bimodal predictor with 2^logSize direction bits and
// 2^(logSize-hystShift) shared hysteresis bits.
type Table struct {
	pred      []bool // direction bits
	hyst      []bool // hysteresis bits (shared between 1<<hystShift neighbours)
	logSize   int
	hystShift uint
}

// New returns a bimodal table with 2^logSize prediction bits; hysteresis
// bits are shared 4:1 (the TAGE-SC-L arrangement).
func New(logSize int) *Table {
	if logSize < 2 || logSize > 28 {
		panic(fmt.Sprintf("bimodal: invalid logSize %d", logSize))
	}
	const hystShift = 2
	return &Table{
		pred:      make([]bool, 1<<logSize),
		hyst:      make([]bool, 1<<(logSize-hystShift)),
		logSize:   logSize,
		hystShift: hystShift,
	}
}

func (t *Table) index(pc uint64) uint64 {
	return (pc >> 2) & (uint64(len(t.pred)) - 1)
}

// Predict returns the predicted direction for pc.
func (t *Table) Predict(pc uint64) bool {
	return t.pred[t.index(pc)]
}

// Update trains the entry for pc with the resolved direction, implementing
// the shared-hysteresis 2-bit counter state machine: the hysteresis bit
// must be overcome before the direction bit flips.
func (t *Table) Update(pc uint64, taken bool) {
	i := t.index(pc)
	hi := i >> t.hystShift
	if t.pred[i] == taken {
		t.hyst[hi] = true
		return
	}
	if t.hyst[hi] {
		t.hyst[hi] = false
		return
	}
	t.pred[i] = taken
}

// Confident reports whether the entry's hysteresis bit is set, i.e. the
// prediction has been reinforced since it last changed.
func (t *Table) Confident(pc uint64) bool {
	return t.hyst[t.index(pc)>>t.hystShift]
}

// StorageBits returns the storage cost of the table in bits.
func (t *Table) StorageBits() int {
	return len(t.pred) + len(t.hyst)
}

// Fork returns an independent deep copy of the table: training either
// copy never affects the other.
func (t *Table) Fork() *Table {
	out := *t
	out.pred = append([]bool(nil), t.pred...)
	out.hyst = append([]bool(nil), t.hyst...)
	return &out
}
