package harness

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fastOpts returns options with sub-millisecond backoff so retry tests
// stay fast.
func fastOpts() Options {
	return Options{BackoffBase: time.Microsecond, BackoffMax: 10 * time.Microsecond}
}

func okJob(key string, v any) Job {
	return Job{Key: key, Run: func(context.Context) (any, error) { return v, nil }}
}

// TestPanicIsolation: a panicking cell yields a structured RunError with a
// stack trace while the rest of the suite completes — the fail-soft
// contract of ISSUE acceptance.
func TestPanicIsolation(t *testing.T) {
	r := NewRunner(fastOpts())
	jobs := []Job{
		okJob("a", 1),
		{
			Key:  "boom",
			Meta: map[string]string{"workload": "Tomcat", "predictor": "llbp", "seed": "7"},
			Run:  func(context.Context) (any, error) { panic("injected cell panic") },
		},
		okJob("b", 2),
	}
	results := r.RunAll(context.Background(), jobs)
	if results[0].Err != nil || results[2].Err != nil {
		t.Fatalf("healthy cells failed: %+v %+v", results[0].Err, results[2].Err)
	}
	re := results[1].Err
	if re == nil {
		t.Fatal("panicking cell did not produce a RunError")
	}
	if re.Key != "boom" || re.Meta["workload"] != "Tomcat" || re.Meta["seed"] != "7" {
		t.Errorf("RunError identity wrong: %+v", re)
	}
	if !strings.Contains(re.Stack, "harness_test.go") {
		t.Errorf("RunError stack does not point at the panic site:\n%s", re.Stack)
	}
	var pe *PanicError
	if !errors.As(re, &pe) || pe.Value != "injected cell panic" {
		t.Errorf("underlying PanicError not recoverable: %v", re.Err)
	}
	if re.Attempts != 1 {
		t.Errorf("panics must not be retried, got %d attempts", re.Attempts)
	}
}

// TestRetryTransient: transient failures are retried with backoff up to
// Retries times; deterministic failures are not.
func TestRetryTransient(t *testing.T) {
	opt := fastOpts()
	opt.Retries = 3
	r := NewRunner(opt)

	var tries atomic.Int32
	res := r.Do(context.Background(), Job{Key: "flaky", Run: func(context.Context) (any, error) {
		if tries.Add(1) < 3 {
			return nil, Transient(fmt.Errorf("attempt %d", tries.Load()))
		}
		return "ok", nil
	}})
	if res.Err != nil {
		t.Fatalf("transient cell should have recovered: %v", res.Err)
	}
	if res.Attempts != 3 || res.Value != "ok" {
		t.Errorf("got attempts=%d value=%v, want 3/ok", res.Attempts, res.Value)
	}

	var hardTries atomic.Int32
	res = r.Do(context.Background(), Job{Key: "hard", Run: func(context.Context) (any, error) {
		hardTries.Add(1)
		return nil, fmt.Errorf("deterministic failure")
	}})
	if res.Err == nil || hardTries.Load() != 1 {
		t.Errorf("deterministic failure retried: tries=%d err=%v", hardTries.Load(), res.Err)
	}

	// Exhausted retries surface the last error with the attempt count.
	var always atomic.Int32
	res = r.Do(context.Background(), Job{Key: "always", Run: func(context.Context) (any, error) {
		always.Add(1)
		return nil, Transient(errors.New("still down"))
	}})
	if res.Err == nil || res.Err.Attempts != 4 { // 1 try + 3 retries
		t.Errorf("want 4 attempts then failure, got %+v", res.Err)
	}
}

// TestTimeout: a cell exceeding the per-attempt deadline fails with
// context.DeadlineExceeded when retries are exhausted.
func TestTimeout(t *testing.T) {
	opt := fastOpts()
	opt.Timeout = 5 * time.Millisecond
	r := NewRunner(opt)
	res := r.Do(context.Background(), Job{Key: "slow", Run: func(ctx context.Context) (any, error) {
		<-ctx.Done() // a well-behaved cell observes its deadline
		return nil, ctx.Err()
	}})
	if res.Err == nil || !errors.Is(res.Err, context.DeadlineExceeded) {
		t.Fatalf("want deadline error, got %v", res.Err)
	}
}

// TestCancellation: cancelling the suite context stops admission promptly;
// already-admitted cells see the cancellation through their context.
func TestCancellation(t *testing.T) {
	opt := fastOpts()
	opt.Parallelism = 1
	r := NewRunner(opt)
	ctx, cancel := context.WithCancel(context.Background())

	started := make(chan struct{})
	var ran atomic.Int32
	jobs := []Job{
		{Key: "running", Run: func(ctx context.Context) (any, error) {
			close(started)
			<-ctx.Done()
			return nil, ctx.Err()
		}},
	}
	for i := 0; i < 8; i++ {
		jobs = append(jobs, Job{Key: fmt.Sprintf("queued%d", i), Run: func(context.Context) (any, error) {
			ran.Add(1)
			return nil, nil
		}})
	}
	go func() {
		<-started
		cancel()
	}()
	done := make(chan []Result, 1)
	go func() { done <- r.RunAll(ctx, jobs) }()
	select {
	case results := <-done:
		if results[0].Err == nil || !errors.Is(results[0].Err, context.Canceled) {
			t.Errorf("admitted cell should report cancellation, got %+v", results[0].Err)
		}
		// Queued cells either never ran (admission refused) or ran before
		// the cancel won the race; none may hang.
		for _, res := range results[1:] {
			if res.Err != nil && !errors.Is(res.Err, context.Canceled) {
				t.Errorf("queued cell failed oddly: %+v", res.Err)
			}
		}
	case <-time.After(5 * time.Second):
		t.Fatal("RunAll did not return after cancellation")
	}
}

// TestBoundedParallelism: at most Parallelism cells run concurrently, and
// the full suite completes under the race detector.
func TestBoundedParallelism(t *testing.T) {
	opt := fastOpts()
	opt.Parallelism = 4
	r := NewRunner(opt)
	var cur, peak atomic.Int32
	var mu sync.Mutex
	sum := 0
	jobs := make([]Job, 64)
	for i := range jobs {
		i := i
		jobs[i] = Job{Key: fmt.Sprintf("cell%d", i), Run: func(context.Context) (any, error) {
			c := cur.Add(1)
			for {
				p := peak.Load()
				if c <= p || peak.CompareAndSwap(p, c) {
					break
				}
			}
			time.Sleep(200 * time.Microsecond)
			mu.Lock()
			sum += i
			mu.Unlock()
			cur.Add(-1)
			return i, nil
		}}
	}
	results := r.RunAll(context.Background(), jobs)
	if errs := Failed(results); errs != nil {
		t.Fatalf("unexpected failures: %v", errs)
	}
	if got := peak.Load(); got > 4 {
		t.Errorf("parallelism exceeded the bound: peak %d > 4", got)
	}
	if sum != 64*63/2 {
		t.Errorf("lost work: sum=%d", sum)
	}
	for i, res := range results {
		if res.Value != i {
			t.Fatalf("result order broken at %d: %v", i, res.Value)
		}
	}
}

// TestJournalResume: cells recorded by a first (interrupted) run are
// restored from the journal on the second run and not re-executed — the
// -resume contract.
func TestJournalResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "suite.journal")
	type cellOut struct {
		MPKI float64 `json:"mpki"`
	}
	decode := func(raw json.RawMessage) (any, error) {
		var v cellOut
		if err := json.Unmarshal(raw, &v); err != nil {
			return nil, err
		}
		return v, nil
	}
	mkJob := func(key string, ran *atomic.Int32, fail bool) Job {
		return Job{Key: key, Decode: decode, Run: func(context.Context) (any, error) {
			ran.Add(1)
			if fail {
				return nil, errors.New("died mid-suite")
			}
			return cellOut{MPKI: float64(len(key))}, nil
		}}
	}

	// First run: two cells complete, one fails (simulating an interrupted
	// suite — failed cells are not journaled).
	j1, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	opt := fastOpts()
	opt.Journal = j1
	var a1, b1, c1 atomic.Int32
	r1 := NewRunner(opt)
	r1.RunAll(context.Background(), []Job{
		mkJob("alpha", &a1, false),
		mkJob("beta", &b1, true),
		mkJob("gamma", &c1, false),
	})
	if err := j1.Close(); err != nil {
		t.Fatal(err)
	}

	// Append a truncated line, as a kill mid-write would.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"key":"trunc`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Second run: only the failed cell re-executes.
	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Len() != 2 {
		t.Fatalf("journal should hold 2 completed cells, has %d", j2.Len())
	}
	opt2 := fastOpts()
	opt2.Journal = j2
	var a2, b2, c2 atomic.Int32
	r2 := NewRunner(opt2)
	results := r2.RunAll(context.Background(), []Job{
		mkJob("alpha", &a2, false),
		mkJob("beta", &b2, false),
		mkJob("gamma", &c2, false),
	})
	if a2.Load() != 0 || c2.Load() != 0 {
		t.Errorf("journaled cells re-ran: alpha=%d gamma=%d", a2.Load(), c2.Load())
	}
	if b2.Load() != 1 {
		t.Errorf("unfinished cell should re-run exactly once, ran %d", b2.Load())
	}
	if !results[0].FromJournal || results[1].FromJournal || !results[2].FromJournal {
		t.Errorf("FromJournal flags wrong: %v %v %v",
			results[0].FromJournal, results[1].FromJournal, results[2].FromJournal)
	}
	if v, ok := results[0].Value.(cellOut); !ok || v.MPKI != 5 {
		t.Errorf("journaled value decoded wrong: %#v", results[0].Value)
	}
}

// TestJournalIgnoredWithoutDecode: jobs without a Decode hook recompute
// even when the key is journaled (the journal cannot reconstruct their
// value type).
func TestJournalIgnoredWithoutDecode(t *testing.T) {
	path := filepath.Join(t.TempDir(), "suite.journal")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if err := j.Record("cell", 42); err != nil {
		t.Fatal(err)
	}
	opt := fastOpts()
	opt.Journal = j
	r := NewRunner(opt)
	var ran atomic.Int32
	res := r.Do(context.Background(), Job{Key: "cell", Run: func(context.Context) (any, error) {
		ran.Add(1)
		return 7, nil
	}})
	if ran.Load() != 1 || res.FromJournal {
		t.Errorf("cell without Decode must recompute: ran=%d fromJournal=%v", ran.Load(), res.FromJournal)
	}
}

// TestJournalTruncatedTailRepair: a journal whose last line was cut off
// mid-write (killed daemon) must load the complete records, drop the
// partial tail, and — critically — physically truncate it so the next
// append starts on a fresh line instead of corrupting itself.
func TestJournalTruncatedTailRepair(t *testing.T) {
	path := filepath.Join(t.TempDir(), "kill.journal")
	full := `{"key":"alpha","value":1}` + "\n" + `{"key":"beta","value":2}` + "\n"
	partial := `{"key":"gamma","val` // no closing brace, no newline
	if err := os.WriteFile(path, []byte(full+partial), 0o644); err != nil {
		t.Fatal(err)
	}

	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if j.Len() != 2 {
		t.Fatalf("loaded %d records, want 2 (partial tail dropped)", j.Len())
	}
	if _, ok := j.Lookup("gamma"); ok {
		t.Error("partial record must not be visible")
	}
	// Appending after the repair must produce a valid record, not a line
	// glued to the old partial tail.
	if err := j.Record("gamma", 3); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Len() != 3 {
		t.Fatalf("reloaded %d records, want 3", j2.Len())
	}
	raw, ok := j2.Lookup("gamma")
	if !ok || string(raw) != "3" {
		t.Errorf("gamma = %q, %v; want 3 recorded cleanly after repair", raw, ok)
	}
}

// TestJournalTruncatedOnlyLine: a journal holding nothing but a partial
// line truncates to empty and stays usable.
func TestJournalTruncatedOnlyLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "kill.journal")
	if err := os.WriteFile(path, []byte(`{"key":"on`), 0o644); err != nil {
		t.Fatal(err)
	}
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if j.Len() != 0 {
		t.Fatalf("loaded %d records from pure-partial journal, want 0", j.Len())
	}
	if err := j.Record("only", "v"); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if want := `{"key":"only","value":"v"}` + "\n"; string(raw) != want {
		t.Errorf("journal file = %q, want %q", raw, want)
	}
}

// TestJournalEach: Each visits every record in sorted key order.
func TestJournalEach(t *testing.T) {
	path := filepath.Join(t.TempDir(), "each.journal")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	for _, k := range []string{"zeta", "alpha", "mid"} {
		if err := j.Record(k, k+"-v"); err != nil {
			t.Fatal(err)
		}
	}
	var keys []string
	j.Each(func(key string, value json.RawMessage) {
		keys = append(keys, key)
		if want := fmt.Sprintf("%q", key+"-v"); string(value) != want {
			t.Errorf("Each(%s) value = %s, want %s", key, value, want)
		}
	})
	if want := []string{"alpha", "mid", "zeta"}; !slicesEqual(keys, want) {
		t.Errorf("Each order = %v, want %v", keys, want)
	}
}

func slicesEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
