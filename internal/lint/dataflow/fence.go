package dataflow

// Epoch-fence analysis (the fencecheck analyzer's engine).
//
// The service's lease protocol (PR 6) says: a worker may mutate job
// state only while it still owns the job's lease, and ownership is
// proven by an epoch check — `claim` bumps jb.epoch and hands the value
// to the dispatch path; every later mutation compares the held epoch
// against the current one and bails if a revocation raced it. That rule
// was convention; this engine proves it on the call graph.
//
// Types carrying lease-owned state are annotated //llbplint:leased.
// A "write" is any assignment (or ++/--) whose target is rooted in a
// value of a leased type. A write is *fenced* when it is dominated by
// an epoch guard: either it sits inside an `if` whose condition reads
// the leased type's epoch field, or it follows (in straight-line order)
// an `if cond-reads-epoch { return/break/continue }` early-out. Two
// kinds of function are exempt: fence constructors — functions that
// themselves write the epoch field, i.e. the claim/revoke machinery —
// and functions annotated //llbplint:fence with a reason.
//
// Summaries carry each function's unfenced writes (own plus those
// inherited through unguarded call sites, with the call chain recorded
// as evidence). A finding is an unfenced write transitively reachable
// from a worker root: a function launched in a goroutine, or one
// annotated //llbplint:worker (HTTP handlers that execute on behalf of
// remote workers).

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"llbp/internal/lint/analysis"
)

const epochField = "epoch"

// writeRec is one unfenced write, with the evidence chain from the
// summarized function's entry down to the write.
type writeRec struct {
	pos   token.Pos
	field string // leased type + field, e.g. "job.state"
	steps []analysis.PathStep
}

type fenceSummary struct {
	// exempt marks fence constructors (functions writing the epoch
	// field) and //llbplint:fence-annotated functions.
	exempt    bool
	unguarded []writeRec
}

// FenceEngine proves the epoch-fence rule; Findings carries the
// unfenced worker-reachable writes after Run.
type FenceEngine struct {
	prog     *Program
	leased   map[*types.TypeName]bool
	sums     map[*types.Func]*fenceSummary
	Findings []analysis.Diagnostic
}

func NewFenceEngine(prog *Program) *FenceEngine {
	return &FenceEngine{
		prog:   prog,
		leased: prog.LeasedTypes(),
		sums:   map[*types.Func]*fenceSummary{},
	}
}

// Run computes summaries bottom-up, then reports each worker-reachable
// unfenced write once.
func (e *FenceEngine) Run() {
	if len(e.leased) == 0 {
		return
	}
	for _, scc := range e.prog.SCCs() {
		for round := 0; round < 2; round++ {
			for _, fn := range scc {
				e.sums[fn.Obj] = e.summarize(fn)
			}
			if len(scc) == 1 {
				break
			}
		}
	}
	reported := map[token.Pos]bool{}
	for _, root := range e.prog.GoRoots() {
		sum := e.sums[root.Obj]
		if sum == nil {
			continue
		}
		for _, wr := range sum.unguarded {
			if reported[wr.pos] {
				continue
			}
			reported[wr.pos] = true
			e.Findings = append(e.Findings, analysis.Diagnostic{
				Pos: wr.pos,
				Message: fmt.Sprintf("unfenced write to lease-owned %s reachable from worker goroutine; dominate it with an epoch guard (compare against the claim epoch) or annotate //llbplint:fence with a reason",
					wr.field),
				Path: AppendPath(
					[]analysis.PathStep{Step(root.Decl.Pos(), "worker root %s", root.Name())},
					wr.steps...),
			})
		}
	}
}

// summarize walks one function collecting its unfenced leased-state
// writes, including those inherited from callees at unguarded call
// sites.
func (e *FenceEngine) summarize(fn *Func) *fenceSummary {
	sum := &fenceSummary{}
	if e.prog.FuncHasAnno(fn.Obj, KindFence) {
		sum.exempt = true
		return sum
	}
	w := &fenceWalker{e: e, fn: fn, info: fn.Pkg.TypesInfo, sum: sum}
	w.stmts(fn.Decl.Body.List, false)
	if sum.exempt { // wrote the epoch field somewhere: fence constructor
		sum.unguarded = nil
	}
	return sum
}

type fenceWalker struct {
	e    *FenceEngine
	fn   *Func
	info *types.Info
	sum  *fenceSummary
}

// stmts walks a statement list in order, tracking whether execution at
// each point is dominated by an epoch guard.
func (w *fenceWalker) stmts(list []ast.Stmt, guarded bool) bool {
	for _, s := range list {
		guarded = w.stmt(s, guarded)
	}
	return guarded
}

func (w *fenceWalker) stmt(s ast.Stmt, guarded bool) bool {
	switch s := s.(type) {
	case *ast.AssignStmt:
		for _, l := range s.Lhs {
			w.checkWrite(l, guarded)
		}
		for _, r := range s.Rhs {
			w.expr(r, guarded)
		}
	case *ast.IncDecStmt:
		w.checkWrite(s.X, guarded)
	case *ast.ExprStmt:
		w.expr(s.X, guarded)
	case *ast.IfStmt:
		if s.Init != nil {
			guarded = w.stmt(s.Init, guarded)
		}
		epochCond := w.mentionsEpoch(s.Cond)
		w.stmts(s.Body.List, guarded || epochCond)
		if s.Else != nil {
			w.stmt(s.Else, guarded || epochCond)
		}
		// `if jb.epoch != epoch { return }` early-out: straight-line
		// code after it runs only with a valid epoch.
		if epochCond && terminates(s.Body) {
			return true
		}
	case *ast.BlockStmt:
		return w.stmts(s.List, guarded)
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init, guarded)
		}
		w.stmts(s.Body.List, guarded)
	case *ast.RangeStmt:
		w.expr(s.X, guarded)
		w.stmts(s.Body.List, guarded)
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, guarded)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.stmts(cc.Body, guarded)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.stmts(cc.Body, guarded)
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				w.stmts(cc.Body, guarded)
			}
		}
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, guarded)
	case *ast.GoStmt:
		w.expr(s.Call, false) // new goroutine: guard does not carry over
	case *ast.DeferStmt:
		w.expr(s.Call, guarded)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			w.expr(r, guarded)
		}
	case *ast.SendStmt:
		w.expr(s.Chan, guarded)
		w.expr(s.Value, guarded)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.expr(v, guarded)
					}
				}
			}
		}
	}
	return guarded
}

// expr visits calls inside an expression: an unguarded call inherits
// the callee's unfenced writes into this function's summary.
func (w *fenceWalker) expr(e ast.Expr, guarded bool) {
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			w.call(n, guarded)
		case *ast.FuncLit:
			w.stmts(n.Body.List, false)
			return false
		}
		return true
	})
}

func (w *fenceWalker) call(call *ast.CallExpr, guarded bool) {
	if guarded {
		return // epoch-dominated call: callee writes are fenced here
	}
	callee := CalleeFunc(w.info, call)
	if callee == nil {
		return
	}
	sum := w.e.sums[callee]
	if sum == nil || sum.exempt {
		return
	}
	for _, wr := range sum.unguarded {
		w.sum.unguarded = append(w.sum.unguarded, writeRec{
			pos:   wr.pos,
			field: wr.field,
			steps: AppendPath(
				[]analysis.PathStep{Step(call.Pos(), "calls %s", FuncName(callee))},
				wr.steps...),
		})
	}
}

// checkWrite records an assignment target rooted in a leased-typed
// value. Writes to the epoch field itself mark the function as a fence
// constructor.
func (w *fenceWalker) checkWrite(lhs ast.Expr, guarded bool) {
	tn, field := w.leasedTarget(lhs)
	if tn == nil {
		return
	}
	if field == epochField {
		w.sum.exempt = true
		return
	}
	if guarded {
		return
	}
	name := tn.Name() + "." + field
	w.sum.unguarded = append(w.sum.unguarded, writeRec{
		pos:   lhs.Pos(),
		field: name,
		steps: []analysis.PathStep{Step(lhs.Pos(), "write to %s in %s", name, w.fn.Name())},
	})
}

// leasedTarget resolves an assignment target to (leased type, field
// name) when its base is a value of a //llbplint:leased type.
func (w *fenceWalker) leasedTarget(lhs ast.Expr) (*types.TypeName, string) {
	for {
		switch x := ast.Unparen(lhs).(type) {
		case *ast.SelectorExpr:
			if tn := w.leasedTypeOf(x.X); tn != nil {
				return tn, x.Sel.Name
			}
			lhs = x.X
		case *ast.IndexExpr:
			lhs = x.X
		case *ast.StarExpr:
			lhs = x.X
		default:
			return nil, ""
		}
	}
}

func (w *fenceWalker) leasedTypeOf(e ast.Expr) *types.TypeName {
	t := w.info.TypeOf(e)
	if t == nil {
		return nil
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	if w.e.leased[named.Obj()] {
		return named.Obj()
	}
	return nil
}

// mentionsEpoch reports whether a condition reads the epoch field of a
// leased type — the shape of every guard in the lease protocol.
func (w *fenceWalker) mentionsEpoch(cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok && sel.Sel.Name == epochField {
			if w.leasedTypeOf(sel.X) != nil {
				found = true
			}
		}
		return !found
	})
	return found
}

// terminates reports whether a block always transfers control out
// (return, break, continue, goto, panic).
func terminates(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}
