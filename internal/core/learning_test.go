package core

import (
	"testing"

	"llbp/internal/predictor"
	"llbp/internal/trace"
	"llbp/internal/tsl"
)

// traceCall aliases the branch type for the benchmarks below.
const traceCall = trace.Call

// TestLearnsPeriodicPatternInContext: the core LLBP value proposition in
// miniature — within a stable context, a periodic branch must converge to
// high accuracy for every bucketable period.
func TestLearnsPeriodicPatternInContext(t *testing.T) {
	for _, period := range []int{2, 3, 5, 8} {
		period := period
		t.Run(map[int]string{2: "period2", 3: "period3", 5: "period5", 8: "period8"}[period], func(t *testing.T) {
			p, clock := newTestLLBP(t, ZeroLatConfig())
			ctx := []uint64{0x100, 0x200, 0x300, 0x400, 0x500, 0x600, 0x700, 0x800, 0x900, 0xa00, 0xb00, 0xc00}
			pushContext(p, clock, ctx...)
			pattern := func(i int) bool {
				return (uint64(i%period)*2654435761)&4 != 0
			}
			// Warm.
			for i := 0; i < 4000; i++ {
				p.Predict(0x4040)
				p.Update(0x4040, pattern(i))
				clock.Advance(3)
			}
			// Measure the composite (TAGE + LLBP) accuracy.
			miss := 0
			const measure = 2000
			for i := 4000; i < 4000+measure; i++ {
				if p.Predict(0x4040) != pattern(i) {
					miss++
				}
				p.Update(0x4040, pattern(i))
				clock.Advance(3)
			}
			if rate := float64(miss) / measure; rate > 0.05 {
				t.Errorf("period-%d missrate %.3f after warmup", period, rate)
			}
		})
	}
}

// TestContextSeparation: the same branch PC with identical local phases
// but different contexts and opposite outcomes — only a context-aware
// predictor keeps both mappings hot. LLBP must allocate separate pattern
// sets per context.
func TestContextSeparation(t *testing.T) {
	p, clock := newTestLLBP(t, ZeroLatConfig())
	ctxA := []uint64{0x100, 0x200, 0x300, 0x400, 0x500, 0x600, 0x700, 0x800}
	ctxB := []uint64{0x9100, 0x9200, 0x9300, 0x9400, 0x9500, 0x9600, 0x9700, 0x9800}
	for round := 0; round < 400; round++ {
		pushContext(p, clock, ctxA...)
		for i := 0; i < 6; i++ {
			p.Predict(0x4040)
			p.Update(0x4040, true) // always taken in context A
			clock.Advance(3)
		}
		pushContext(p, clock, ctxB...)
		for i := 0; i < 6; i++ {
			p.Predict(0x4040)
			p.Update(0x4040, false) // never taken in context B
			clock.Advance(3)
		}
	}
	if p.Stats().CDLive < 2 {
		t.Errorf("expected at least two live contexts, got %d", p.Stats().CDLive)
	}
	// Measure: both contexts must now predict near-perfectly.
	miss := 0
	for round := 0; round < 50; round++ {
		pushContext(p, clock, ctxA...)
		for i := 0; i < 6; i++ {
			if !p.Predict(0x4040) {
				miss++
			}
			p.Update(0x4040, true)
			clock.Advance(3)
		}
		pushContext(p, clock, ctxB...)
		for i := 0; i < 6; i++ {
			if p.Predict(0x4040) {
				miss++
			}
			p.Update(0x4040, false)
			clock.Advance(3)
		}
	}
	if rate := float64(miss) / 600; rate > 0.05 {
		t.Errorf("context-separated branch missrate %.3f", rate)
	}
}

func BenchmarkPredictUpdate(b *testing.B) {
	clock := &predictor.Clock{}
	p := MustNew(DefaultConfig(), tsl.MustNew(tsl.Config64K()), clock)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pc := uint64(0x4000 + (i%64)*4)
		p.Predict(pc)
		p.Update(pc, i%3 == 0)
		clock.Advance(2)
	}
}

func BenchmarkContextSwitch(b *testing.B) {
	clock := &predictor.Clock{}
	p := MustNew(DefaultConfig(), tsl.MustNew(tsl.Config64K()), clock)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.TrackOther(uint64(0x8000+(i%128)*0x40), 0x9000, traceCall)
		clock.Advance(5)
	}
}
