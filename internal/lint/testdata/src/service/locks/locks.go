// Package locks is the lockorder cycle fixture: sched.mu and pool.mu
// are acquired in opposite orders on two call paths — one of them
// through a callee's summary, which is what makes the cycle invisible
// to any per-function check — plus a self-deadlock through a helper
// that re-acquires a lock its caller already holds.
package locks

import "sync"

type sched struct {
	mu sync.Mutex
	q  []int
}

type pool struct {
	mu sync.Mutex
	n  int
}

// Drain acquires sched.mu, then reaches pool.mu through grow's summary.
func (s *sched) Drain(p *pool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p.grow()
	s.q = s.q[:0]
}

func (p *pool) grow() {
	p.mu.Lock()
	p.n++
	p.mu.Unlock()
}

// Refill acquires the same two locks in the opposite order: with Drain
// this closes the cycle.
func (p *pool) Refill(s *sched) {
	p.mu.Lock()
	s.mu.Lock() // want lockorder:`lock-order cycle between locks\.pool\.mu and locks\.sched\.mu`
	s.q = append(s.q, p.n)
	s.mu.Unlock()
	p.mu.Unlock()
}

// Reenter re-acquires sched.mu through a helper while already holding
// it — a self-deadlock on Go's non-reentrant mutex.
func (s *sched) Reenter() {
	s.mu.Lock()
	s.swap() // want lockorder:`lock locks\.sched\.mu acquired while already held`
	s.mu.Unlock()
}

func (s *sched) swap() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.q = nil
}
