// Package sim is the trace-driven simulation driver: it replays a
// workload's branch stream through a predictor, advances the cycle model,
// fires pipeline resets, and collects the headline metrics. Experiments
// attach observers for per-branch or per-context accounting.
package sim

import (
	"context"
	"fmt"

	"llbp/internal/btb"
	"llbp/internal/pipeline"
	"llbp/internal/predictor"
	"llbp/internal/telemetry"
	"llbp/internal/trace"
)

// Observer is invoked for every measured conditional branch, after the
// predictor has been updated. det is the predictor's provenance when it
// implements predictor.Detailer (zero otherwise).
type Observer func(b *trace.Branch, predicted bool, det predictor.Detail)

// UncondObserver is invoked for every measured non-conditional transfer.
type UncondObserver func(b *trace.Branch)

// Options configures one simulation run.
type Options struct {
	// WarmupBranches are processed before measurement begins (the paper
	// warms for 100M instructions; scale to taste).
	WarmupBranches uint64
	// MeasureBranches are processed with statistics collection. The
	// run errors if the stream ends before warmup+measure branches.
	MeasureBranches uint64
	// Pipeline configures the cycle model; zero value uses
	// pipeline.Default().
	Pipeline pipeline.Config
	// Observer and UncondObserver receive measured records (optional).
	Observer       Observer
	UncondObserver UncondObserver
	// Clock, when non-nil, is the clock the predictor was built
	// against; the driver advances it. When nil a private clock is
	// used.
	Clock *predictor.Clock
	// BTB, when non-nil, derives target mispredictions (pipeline
	// resets) from the Table II front-end model instead of replaying
	// the trace's MispredictedTarget flags.
	BTB *btb.Model
	// Context, when non-nil, cancels the run: Run returns an error
	// wrapping ctx.Err() shortly after cancellation (checked every few
	// thousand branches). This is how the harness enforces deadlines
	// and SIGINT on in-flight simulations.
	Context context.Context
	// Hook, when non-nil, is invoked after every HookEvery processed
	// branches (warmup included) with the running branch count — the
	// attachment point for fault injection and other periodic
	// intrusions. HookEvery defaults to 4096 when Hook is set.
	Hook      func(processed uint64)
	HookEvery uint64

	// Telemetry, when non-nil, receives run metrics: the driver attaches
	// the predictor (when it implements telemetry.Attachable), registers
	// sim_* counters/gauges for the measured phase, and appends
	// per-interval "mpki" and "ipc_proxy" series points keyed by
	// measured-branch index. Nil disables all of it at the cost of one
	// comparison per measured branch.
	Telemetry *telemetry.Registry
	// SeriesInterval is the measured-branch interval between series
	// points (default 4096).
	SeriesInterval uint64
	// Tracer, when non-nil, receives warmup/measure phase spans and
	// per-interval counter samples on the simulated-time track (ts =
	// cycles rendered as microseconds).
	Tracer *telemetry.Tracer
	// TracePID selects the trace-event process id for this run (default
	// telemetry.PidSim); multi-workload drivers use one pid per workload.
	TracePID int

	// warmupOnly marks a Warm call: the run stops at the end of the
	// warmup phase and MeasureBranches is allowed to be zero.
	warmupOnly bool
}

// cancelCheckMask throttles context polling to every 4096 branches.
const cancelCheckMask = 4095

// simBatchSize is the replay batch: the driver pulls this many records
// per ReadBatch call, so stream dispatch, cancellation polls and EOF
// checks amortize over thousands of branches. It equals the cancel-poll
// period so batch boundaries land exactly on the branch indices the old
// per-record loop polled at.
const simBatchSize = cancelCheckMask + 1

// Result carries one run's headline metrics.
type Result struct {
	Workload  string
	Predictor string

	// Measured-phase counts.
	Instructions uint64
	Branches     uint64
	CondBranches uint64
	Mispredicts  uint64
	TargetMisses uint64

	// MPKI is conditional mispredictions per kilo-instruction.
	MPKI float64

	// Cycle ledger (measured phase only).
	Cycles         float64
	BranchPenalty  float64
	WastedFraction float64
	IPC            float64
}

// Warm replays opt.WarmupBranches branches of src through p exactly as
// Run's warmup phase would — clock advance at base CPI, mispredict and
// target-miss penalties, pipeline resets — and collects no measurements.
// It is the warm-snapshot path: the harness warms one predictor per
// shared prefix, forks it per cell (predictor.Forkable), and each fork
// resumes with a measure-only Run over the stream's tail, producing
// results byte-identical to a monolithic warm+measure Run.
func Warm(src trace.Source, p predictor.Predictor, opt Options) error {
	opt.MeasureBranches = 0
	opt.warmupOnly = true
	_, err := Run(src, p, opt)
	return err
}

// Run replays src through p under opt.
func Run(src trace.Source, p predictor.Predictor, opt Options) (*Result, error) {
	if opt.MeasureBranches == 0 && !opt.warmupOnly {
		return nil, fmt.Errorf("sim: MeasureBranches must be positive")
	}
	if opt.Pipeline.BaseCPI == 0 {
		opt.Pipeline = pipeline.Default()
	}
	clock := opt.Clock
	if clock == nil {
		clock = &predictor.Clock{}
	}
	acct, err := pipeline.NewAccounting(opt.Pipeline)
	if err != nil {
		return nil, err
	}
	detailer, _ := p.(predictor.Detailer)
	resettable, _ := p.(predictor.Resettable)
	targetUpdater, _ := p.(predictor.TargetUpdater)

	var done <-chan struct{}
	if opt.Context != nil {
		done = opt.Context.Done()
	}
	hookEvery := opt.HookEvery
	if opt.Hook != nil && hookEvery == 0 {
		hookEvery = 4096
	}
	nextHook := hookEvery

	// Telemetry setup. With no registry and no tracer the sampling state
	// degenerates to a never-reached branch index, so the hot loop pays a
	// single comparison per measured branch.
	interval := opt.SeriesInterval
	if interval == 0 {
		interval = 4096
	}
	tracePID := opt.TracePID
	if tracePID == 0 {
		tracePID = telemetry.PidSim
	}
	var serMPKI, serIPC *telemetry.Series
	if opt.Telemetry != nil {
		telemetry.Attach(opt.Telemetry, p)
		serMPKI = opt.Telemetry.Series("mpki", interval)
		serIPC = opt.Telemetry.Series("ipc_proxy", interval)
	}
	// One sampling condition governs both the in-loop sentinel and the
	// final partial-interval flush, so telemetry-only, tracer-only and
	// both-present runs sample at identical measured-branch indices.
	sampling := opt.Telemetry != nil || opt.Tracer != nil
	nextSample := interval
	if !sampling {
		nextSample = ^uint64(0)
	}
	var lastInstr, lastMisp uint64
	var lastCycles float64
	var resets uint64
	warmupDone := false
	clockStart := clock.NowF()
	warmupEnd := clockStart

	srcName := src.Name()
	br := trace.OpenBatched(src)
	var processed uint64
	res := &Result{Workload: srcName, Predictor: p.Name()}

	// Tracer.Counter copies its values before returning, so one scratch
	// map (and one precomputed track name) serves every sample.
	var scratchArgs map[string]float64
	var counterTrack string
	if opt.Tracer != nil {
		scratchArgs = make(map[string]float64, 2)
		counterTrack = "sim:" + srcName
	}
	sample := func() {
		di := acct.Instructions - lastInstr
		dm := res.Mispredicts - lastMisp
		dc := acct.Cycles() - lastCycles
		mpki := float64(dm) * 1000 / float64(max64(di, 1))
		ipc := 0.0
		if dc > 0 {
			ipc = float64(di) / dc
		}
		serMPKI.Append(mpki)
		serIPC.Append(ipc)
		if opt.Tracer != nil {
			scratchArgs["mpki"] = mpki
			scratchArgs["ipc_proxy"] = ipc
			opt.Tracer.Counter(tracePID, counterTrack, clock.NowF(), scratchArgs)
		}
		lastInstr, lastMisp, lastCycles = acct.Instructions, res.Mispredicts, acct.Cycles()
	}

	total := opt.WarmupBranches + opt.MeasureBranches
	batch := make([]trace.Branch, simBatchSize)
	for processed < total {
		// Every batch starts on a simBatchSize boundary, i.e. exactly
		// the indices where the per-record loop polled cancellation.
		if done != nil {
			select {
			case <-done:
				return nil, fmt.Errorf("sim: %s after %d branches: %w",
					srcName, processed, opt.Context.Err())
			default:
			}
		}
		want := batch
		if rem := total - processed; rem < uint64(len(want)) {
			want = want[:rem]
		}
		n, rerr := br.ReadBatch(want)
		for i := 0; i < n; i++ {
			b := &want[i]
			measuring := processed >= opt.WarmupBranches
			processed++
			if measuring && !warmupDone {
				warmupDone = true
				warmupEnd = clock.NowF()
			}

			// Straight-line instructions preceding this branch retire at
			// base CPI; advance the clock so prefetch timestamps see
			// realistic gaps during warmup too.
			if measuring {
				clock.Advance(acct.Retire(uint64(b.Instructions)))
			} else {
				clock.Advance(float64(b.Instructions) * opt.Pipeline.BaseCPI)
			}

			if b.Type.IsConditional() {
				predicted := p.Predict(b.PC)
				if targetUpdater != nil {
					targetUpdater.UpdateWithTarget(b.PC, b.Target, b.Taken)
				} else {
					p.Update(b.PC, b.Taken)
				}
				misp := predicted != b.Taken
				if measuring {
					res.CondBranches++
					if misp {
						res.Mispredicts++
						clock.Advance(acct.Mispredict())
					}
					if opt.Observer != nil {
						var det predictor.Detail
						if detailer != nil {
							det = detailer.LastDetail()
						}
						opt.Observer(b, predicted, det)
					}
				} else if misp {
					clock.Advance(opt.Pipeline.MispredictPenalty)
				}
				if misp && resettable != nil {
					resettable.OnPipelineReset()
					if measuring {
						resets++
					}
				}
			} else {
				p.TrackOther(b.PC, b.Target, b.Type)
				targetMiss := b.MispredictedTarget
				if opt.BTB != nil {
					targetMiss = opt.BTB.Process(b).TargetMiss
				}
				if targetMiss {
					if measuring {
						clock.Advance(acct.TargetMiss())
					} else {
						clock.Advance(opt.Pipeline.TargetMissPenalty)
					}
					if resettable != nil {
						resettable.OnPipelineReset()
						if measuring {
							resets++
						}
					}
				}
				if measuring {
					if opt.UncondObserver != nil {
						opt.UncondObserver(b)
					}
				}
			}
			if measuring {
				res.Branches++
				if res.Branches >= nextSample {
					sample()
					nextSample += interval
				}
			}
			if opt.Hook != nil && processed >= nextHook {
				opt.Hook(processed)
				nextHook += hookEvery
			}
		}
		if rerr != nil && processed < total {
			if trace.IsEOF(rerr) {
				return nil, fmt.Errorf("sim: %s ended after %d branches, need %d",
					srcName, processed, total)
			}
			return nil, fmt.Errorf("sim: reading %s: %w", srcName, rerr)
		}
	}

	res.Instructions = acct.Instructions
	res.TargetMisses = acct.TargetMisses
	res.MPKI = float64(res.Mispredicts) * 1000 / float64(max64(res.Instructions, 1))
	res.Cycles = acct.Cycles()
	res.BranchPenalty = acct.BranchPenalty
	res.WastedFraction = acct.WastedFraction()
	res.IPC = acct.IPC()

	if sampling && acct.Instructions > lastInstr {
		sample() // flush the final partial interval
	}
	if opt.Telemetry != nil {
		opt.Telemetry.Counter("sim_branches").Add(res.Branches)
		opt.Telemetry.Counter("sim_cond_branches").Add(res.CondBranches)
		opt.Telemetry.Counter("sim_mispredicts").Add(res.Mispredicts)
		opt.Telemetry.Counter("sim_target_misses").Add(res.TargetMisses)
		opt.Telemetry.Counter("sim_pipeline_resets").Add(resets)
		opt.Telemetry.Gauge("sim_mpki").Set(res.MPKI)
		opt.Telemetry.Gauge("sim_ipc").Set(res.IPC)
	}
	if opt.Tracer != nil {
		end := clock.NowF()
		opt.Tracer.ThreadName(tracePID, 1, src.Name())
		if opt.warmupOnly {
			// The whole run was warmup; there is no measure span.
			opt.Tracer.Span(tracePID, 1, "warmup", "sim", clockStart, end-clockStart,
				map[string]any{"workload": src.Name(), "predictor": p.Name(), "branches": opt.WarmupBranches})
			return res, nil
		}
		if warmupEnd > clockStart {
			opt.Tracer.Span(tracePID, 1, "warmup", "sim", clockStart, warmupEnd-clockStart,
				map[string]any{"workload": src.Name(), "predictor": p.Name(), "branches": opt.WarmupBranches})
		}
		opt.Tracer.Span(tracePID, 1, "measure", "sim", warmupEnd, end-warmupEnd, map[string]any{
			"workload": src.Name(), "predictor": p.Name(), "branches": res.Branches,
			"mpki": res.MPKI, "ipc": res.IPC, "resets": resets,
		})
	}
	return res, nil
}

// PerfectCycles returns the cycle count a perfect conditional-direction
// predictor would achieve for the same measured stream: base cycles plus
// target-miss penalties, but no conditional-misprediction penalty.
func (r *Result) PerfectCycles(cfg pipeline.Config) float64 {
	return float64(r.Instructions)*cfg.BaseCPI + float64(r.TargetMisses)*cfg.TargetMissPenalty
}

// Speedup returns how much faster this run is than base (1.02 = 2% faster).
func (r *Result) Speedup(base *Result) float64 {
	if r.Cycles == 0 {
		return 0
	}
	return base.Cycles / r.Cycles
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
