package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
)

// TestEventFieldOrder pins the NDJSON field order: downstream line
// tooling (and the determinism contract) depend on a fixed layout, so a
// struct reordering must fail loudly here.
func TestEventFieldOrder(t *testing.T) {
	raw, err := json.Marshal(Event{
		Seq: 3, TimeUnixMS: 99, Type: EventJobCompleted,
		Job: "job-1", Tenant: "acme", Worker: "worker-0", Epoch: 2,
		State: "done", DurationMS: 1.5, Detail: "x",
	})
	if err != nil {
		t.Fatal(err)
	}
	want := `{"seq":3,"time_unix_ms":99,"type":"job.completed",` +
		`"job":"job-1","tenant":"acme","worker":"worker-0","epoch":2,` +
		`"state":"done","duration_ms":1.5,"detail":"x"}`
	if string(raw) != want {
		t.Errorf("field order changed:\n got %s\nwant %s", raw, want)
	}
}

// TestEventLogRoundTrip emits the full vocabulary and reads it back.
func TestEventLogRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	log := NewEventLog(&buf)
	log.SetClock(func() int64 { return 1234 })
	for _, typ := range KnownEventTypes() {
		log.Emit(Event{Type: typ, Job: "job-a", Tenant: "t"})
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
	events, err := ReadEvents(buf.Bytes())
	if err != nil {
		t.Fatalf("read-back failed: %v\n%s", err, buf.String())
	}
	if len(events) != len(KnownEventTypes()) {
		t.Fatalf("got %d events, want %d", len(events), len(KnownEventTypes()))
	}
	for i, ev := range events {
		if ev.Type != KnownEventTypes()[i] || ev.Seq != uint64(i+1) || ev.TimeUnixMS != 1234 {
			t.Errorf("event %d = %+v", i, ev)
		}
	}
}

// TestEventLogSeqUnderConcurrency is the snapshot-determinism regression
// test for the event log: N goroutines emit concurrently, and the file
// must still carry seq exactly 1..total in line order — the EventLog
// assigns seq under the same lock that writes the line, so no
// interleaving can reorder them.
func TestEventLogSeqUnderConcurrency(t *testing.T) {
	var buf lockedBuffer
	log := NewEventLog(&buf)
	const goroutines, perG = 8, 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				log.Emit(Event{Type: EventLeaseRenewed, Job: fmt.Sprintf("job-%d", g)})
			}
		}(g)
	}
	wg.Wait()
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
	events, err := ReadEvents(buf.Bytes())
	if err != nil {
		t.Fatalf("concurrent emission broke the log: %v", err)
	}
	if len(events) != goroutines*perG {
		t.Fatalf("got %d events, want %d", len(events), goroutines*perG)
	}
	// ReadEvents already enforces seq == line index + 1; double-check the
	// last one to make the invariant explicit here.
	if last := events[len(events)-1].Seq; last != goroutines*perG {
		t.Errorf("last seq = %d, want %d", last, goroutines*perG)
	}
}

// lockedBuffer makes bytes.Buffer safe for the concurrent flushes Emit
// performs.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) Bytes() []byte {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Bytes()
}

// TestEventLogDeterministicWithoutClock checks two identical emission
// sequences produce byte-identical files when no clock is set.
func TestEventLogDeterministicWithoutClock(t *testing.T) {
	render := func() string {
		var buf bytes.Buffer
		log := NewEventLog(&buf)
		log.Emit(Event{Type: EventJobSubmitted, Job: "job-a", Tenant: "acme", Detail: "normal"})
		log.Emit(Event{Type: EventJobClaimed, Job: "job-a", Worker: "worker-0", Epoch: 1})
		log.Emit(Event{Type: EventJobCompleted, Job: "job-a", State: "done"})
		if err := log.Close(); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	if a, b := render(), render(); a != b {
		t.Errorf("identical emissions rendered differently:\n%s\nvs\n%s", a, b)
	}
}

// TestEventLogNilSafety: a nil log must absorb every call.
func TestEventLogNilSafety(t *testing.T) {
	var log *EventLog
	log.SetClock(func() int64 { return 1 })
	log.Emit(Event{Type: EventJobSubmitted})
	if log.Seq() != 0 || log.Err() != nil || log.Close() != nil {
		t.Error("nil EventLog is not a clean no-op")
	}
}

// TestReadEventsRejects covers the validator's failure modes.
func TestReadEventsRejects(t *testing.T) {
	hdr := `{"schema":"llbp-events/1"}` + "\n"
	cases := map[string]string{
		"empty":          "",
		"bad header":     `{"schema":"llbp-events/9"}` + "\n",
		"unknown type":   hdr + `{"seq":1,"type":"job.exploded"}` + "\n",
		"seq gap":        hdr + `{"seq":1,"type":"job.submitted"}` + "\n" + `{"seq":3,"type":"job.claimed"}` + "\n",
		"seq not 1":      hdr + `{"seq":2,"type":"job.submitted"}` + "\n",
		"malformed line": hdr + "{not json}\n",
	}
	for name, text := range cases {
		if _, err := ReadEvents([]byte(text)); err == nil {
			t.Errorf("%s: accepted %q", name, strings.TrimSpace(text))
		}
	}
}
