// Package energy is an analytic SRAM access latency/energy model standing
// in for the paper's CACTI 7.0 study at 22nm (Table III, Figure 12).
//
// The model expresses per-access latency and energy relative to the
// baseline 64KiB TAGE-SC-L array as power laws of capacity with floors
// (wires and sense amps do not shrink to zero) plus associativity and
// access-width terms:
//
//	lat(s, w, b)    = (Lf + (1-Lf)·s^Lp) · (1 + La·(w-1))
//	energy(s, w, b) = (Ef + (1-Ef)·s^Ep) · (1 + Ea·(w-1)) · (Wf + (1-Wf)·b/42)
//
// where s is capacity relative to 64KiB, w the associativity, and b the
// access width in bytes (42B is the TAGE reference read). The exponents
// and floors are fit so the five rows of Table III are reproduced: an 8×
// TAGE grows latency ≈2.55× and energy ≈4.58×; the CD and PB stay below
// the baseline's latency; LLBP's bulk array costs ≈4.4× per access.
package energy

import "math"

// Reference constants of the fit (see package comment).
const (
	refKiB   = 64.0 // baseline capacity
	refWidth = 42.0 // baseline access width in bytes (21 tables × 16b)

	latFloor   = 0.55
	latExp     = 0.717
	latAssoc   = 0.025
	engFloor   = 0.25
	engExp     = 0.843
	engAssoc   = 0.08
	widthFloor = 0.5

	// cyclesPerRel converts relative latency to 4GHz cycles; calibrated
	// so the Table III cycle column is reproduced (2 cycles for the
	// baseline, 4 for 512K TSL and LLBP, 1 for CD and PB).
	cyclesPerRel = 1.6
)

// Structure describes one SRAM structure for the model.
type Structure struct {
	// Name labels the structure in reports.
	Name string
	// KiB is the capacity in KiB.
	KiB float64
	// Ways is the associativity (1 = direct mapped).
	Ways int
	// AccessBytes is the read width per access.
	AccessBytes float64
}

// RelativeLatency returns the access latency relative to the 64KiB TAGE
// baseline.
func (s Structure) RelativeLatency() float64 {
	size := latFloor + (1-latFloor)*math.Pow(s.KiB/refKiB, latExp)
	return size * (1 + latAssoc*float64(s.Ways-1))
}

// RelativeEnergy returns the per-access energy relative to the 64KiB TAGE
// baseline.
func (s Structure) RelativeEnergy() float64 {
	size := engFloor + (1-engFloor)*math.Pow(s.KiB/refKiB, engExp)
	assoc := 1 + engAssoc*float64(s.Ways-1)
	width := widthFloor + (1-widthFloor)*s.AccessBytes/refWidth
	return size * assoc * width
}

// Cycles returns the access latency in 4GHz cycles (at least 1).
func (s Structure) Cycles() int {
	c := int(math.Round(s.RelativeLatency() * cyclesPerRel))
	if c < 1 {
		c = 1
	}
	return c
}

// The Table III structures (§VII-D): the model charges only pattern
// storage, as the paper does.
var (
	// TSL64K is the baseline: 21 tables × 1K entries × 16b ≈ 42KiB of
	// pattern tables (the auxiliary components are held constant and
	// excluded, §VII-D), read 42 bytes per access. Capacity is
	// normalized to the nominal 64KiB budget.
	TSL64K = Structure{Name: "64KiB TSL", KiB: 64, Ways: 1, AccessBytes: 42}
	// TSL512K is the 8×-scaled design.
	TSL512K = Structure{Name: "512KiB TSL", KiB: 512, Ways: 1, AccessBytes: 42}
	// LLBP is the bulk pattern-set store: 504KiB direct-mapped, 36-byte
	// (288-bit) pattern-set accesses.
	LLBP = Structure{Name: "LLBP", KiB: 504, Ways: 1, AccessBytes: 36}
	// CD is the context directory: 8.75KiB, 7-way, 8-bit accesses.
	CD = Structure{Name: "CD", KiB: 8.75, Ways: 7, AccessBytes: 1}
	// PB64 is the 64-entry pattern buffer: 2.25KiB, 4-way, 36-byte
	// accesses.
	PB64 = Structure{Name: "PB (64 entries)", KiB: 2.25, Ways: 4, AccessBytes: 36}
)

// PB returns the pattern-buffer structure for a given entry count
// (Figure 12 sweeps 16, 64 and 256 entries at 288 bits per set).
func PB(entries int) Structure {
	return Structure{
		Name:        "PB",
		KiB:         float64(entries) * 288 / 8 / 1024,
		Ways:        4,
		AccessBytes: 36,
	}
}

// TableIII returns the five structures of Table III in paper order.
func TableIII() []Structure {
	return []Structure{TSL64K, TSL512K, LLBP, CD, PB64}
}

// DesignEnergy computes a design's total energy relative to the baseline
// 64K TSL given per-structure access frequencies (accesses per conditional
// prediction, the baseline TAGE's access rate). This is the Figure 12
// computation: energy_i = relEnergy_i × rate_i, with the 64K TSL at
// rate 1 defining 1.0.
type DesignEnergy struct {
	// Components lists (structure, accesses-per-prediction) pairs.
	Components []Component
}

// Component pairs a structure with its access rate.
type Component struct {
	Structure Structure
	// Rate is accesses per conditional-branch prediction.
	Rate float64
}

// Total returns the design's energy relative to 64K TSL accessed once per
// prediction.
func (d DesignEnergy) Total() float64 {
	base := TSL64K.RelativeEnergy() // = 1 by construction
	sum := 0.0
	for _, c := range d.Components {
		sum += c.Structure.RelativeEnergy() * c.Rate
	}
	return sum / base
}
