// Package tsl composes TAGE, the statistical corrector and the loop
// predictor into the TAGE-SC-L predictor family evaluated by the paper:
// the 64K baseline, the capacity-scaled 128K..1M variants, and the
// infinite-capacity Inf TAGE / Inf TSL constructions (§VI).
package tsl

import (
	"fmt"

	"llbp/internal/assert"
	"llbp/internal/looppred"
	"llbp/internal/predictor"
	"llbp/internal/sc"
	"llbp/internal/tage"
	"llbp/internal/telemetry"
	"llbp/internal/trace"
)

// Stats are the composite predictor's event counters: how often each
// component supplied the final prediction, how often the corrector
// reversed it, and how the TAGE allocator fared. This is the public
// statistics surface — experiments and CLIs read it (or the equivalent
// telemetry counters registered by AttachTelemetry) instead of reaching
// into predictor internals.
type Stats struct {
	Predictions uint64 // conditional predictions made
	SCReversals uint64 // statistical-corrector flips of the base prediction
	LoopUses    uint64 // loop-predictor overrides of TAGE

	// Final-provider usage breakdown (sums to Predictions).
	ProviderBimodal uint64
	ProviderTAGE    uint64
	ProviderLoop    uint64
	ProviderSC      uint64

	// TAGE allocator outcomes.
	TAGEAllocs        uint64
	TAGEAllocFailures uint64
}

// Config parameterizes a TAGE-SC-L instance.
type Config struct {
	// TAGE is the core predictor configuration.
	TAGE tage.Config
	// SC is the statistical corrector configuration.
	SC sc.Config
	// LoopLogSets/LoopWays size the loop predictor.
	LoopLogSets int
	LoopWays    int
	// DisableSC / DisableLoop turn the auxiliary components off
	// (used for ablation).
	DisableSC   bool
	DisableLoop bool
	// Label overrides the derived name.
	Label string
}

// Config64K returns the paper's baseline 64KiB TAGE-SC-L ("64K TSL").
func Config64K() Config {
	return Config{
		TAGE:        tage.DefaultConfig(),
		SC:          sc.DefaultConfig(),
		LoopLogSets: 4,
		LoopWays:    4,
		Label:       "64K TSL",
	}
}

// ConfigScaled returns the 64K design with TAGE tables scaled by
// 2^logFactor: logFactor 1..4 gives the paper's 128K, 256K, 512K and 1M
// configurations (auxiliary components unchanged, §VI).
func ConfigScaled(logFactor int) Config {
	c := Config64K()
	c.TAGE = c.TAGE.Scaled(logFactor)
	c.Label = fmt.Sprintf("%dK TSL", 64<<uint(logFactor))
	return c
}

// ConfigInfTAGE returns the configuration with unbounded TAGE tables but
// baseline-sized auxiliary components ("Inf TAGE", §II-C).
func ConfigInfTAGE() Config {
	c := Config64K()
	c.TAGE = c.TAGE.InfiniteConfig()
	c.Label = "Inf TAGE"
	return c
}

// ConfigInfTSL returns the configuration with unbounded TAGE tables and
// enlarged auxiliary components ("Inf TSL", §VI: statistical corrector and
// loop predictor grown to millions of entries).
func ConfigInfTSL() Config {
	c := Config64K()
	c.TAGE = c.TAGE.InfiniteConfig()
	c.SC = c.SC.Scaled(8) // 1K -> 256K entries per component
	c.LoopLogSets = 10    // 4K sets x 4 ways
	c.Label = "Inf TSL"
	return c
}

// Predictor is a TAGE-SC-L instance. It implements predictor.Predictor and
// predictor.Detailer.
type Predictor struct {
	cfg  Config
	tage *tage.Predictor
	sc   *sc.Corrector
	loop *looppred.Predictor

	detail predictor.Detail

	// loopUseCtr gates loop-predictor overrides: it tracks whether the
	// loop predictor has been beating TAGE when they disagree (the
	// WITHLOOP chooser of TAGE-SC-L).
	loopUseCtr int8

	// Scratch between Predict and Update.
	lastPC     uint64
	tageTaken  bool
	loopTaken  bool
	loopValid  bool
	loopUsed   bool
	finalTaken bool

	scFlips     uint64
	loopUses    uint64
	predictions uint64
	providers   [5]uint64 // indexed by predictor.Component

	// Telemetry instruments (nil = detached no-ops).
	telPredictions *telemetry.Counter
	telLoopUses    *telemetry.Counter
	telProviders   [5]*telemetry.Counter
}

var (
	_ predictor.Predictor = (*Predictor)(nil)
	_ predictor.Detailer  = (*Predictor)(nil)
)

// New constructs a TAGE-SC-L predictor.
func New(cfg Config) (*Predictor, error) {
	t, err := tage.New(cfg.TAGE)
	if err != nil {
		return nil, fmt.Errorf("tsl: %w", err)
	}
	p := &Predictor{cfg: cfg, tage: t}
	if !cfg.DisableSC {
		c, err := sc.New(cfg.SC)
		if err != nil {
			return nil, fmt.Errorf("tsl: %w", err)
		}
		p.sc = c
	}
	if !cfg.DisableLoop {
		if cfg.LoopLogSets == 0 {
			cfg.LoopLogSets, cfg.LoopWays = 4, 4
		}
		l, err := looppred.New(cfg.LoopLogSets, cfg.LoopWays)
		if err != nil {
			return nil, fmt.Errorf("tsl: %w", err)
		}
		p.loop = l
	}
	return p, nil
}

// MustNew is New panicking on configuration errors; for use with the
// package-level Config constructors, which are always valid.
func MustNew(cfg Config) *Predictor {
	p, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return p
}

// Name implements predictor.Predictor.
func (p *Predictor) Name() string {
	if p.cfg.Label != "" {
		return p.cfg.Label
	}
	return "TAGE-SC-L"
}

// TAGE exposes the underlying TAGE core (the LLBP composite needs its
// provider length for the longest-match arbitration).
func (p *Predictor) TAGE() *tage.Predictor { return p.tage }

// Stats returns a snapshot of the composite predictor's event counters.
func (p *Predictor) Stats() Stats {
	return Stats{
		Predictions:       p.predictions,
		SCReversals:       p.scFlips,
		LoopUses:          p.loopUses,
		ProviderBimodal:   p.providers[predictor.ProviderBimodal],
		ProviderTAGE:      p.providers[predictor.ProviderTAGE],
		ProviderLoop:      p.providers[predictor.ProviderLoop],
		ProviderSC:        p.providers[predictor.ProviderSC],
		TAGEAllocs:        p.tage.Allocations(),
		TAGEAllocFailures: p.tage.AllocFailures(),
	}
}

// AttachTelemetry wires the composite's counters — predictions, provider
// usage, loop-chooser overrides — to reg and cascades into the TAGE core
// and the statistical corrector (nil detaches everything). Implements
// telemetry.Attachable.
func (p *Predictor) AttachTelemetry(reg *telemetry.Registry) {
	p.telPredictions = reg.Counter("tsl_predictions")
	p.telLoopUses = reg.Counter("loop_uses")
	for c := predictor.ProviderBimodal; c <= predictor.ProviderLLBP; c++ {
		p.telProviders[c] = reg.Counter("provider_" + c.String())
	}
	p.tage.AttachTelemetry(reg)
	if p.sc != nil {
		p.sc.AttachTelemetry(reg)
	}
}

// Predict implements predictor.Predictor.
func (p *Predictor) Predict(pc uint64) bool {
	p.predictions++
	p.telPredictions.Inc()
	p.lastPC = pc
	p.tageTaken = p.tage.Predict(pc)
	base := p.tageTaken
	provider := predictor.ProviderTAGE
	if p.tage.LastProviderTable() < 0 {
		provider = predictor.ProviderBimodal
	}
	p.loopValid, p.loopUsed = false, false
	if p.loop != nil {
		lt, lv := p.loop.Predict(pc)
		p.loopTaken, p.loopValid = lt, lv
		if lv && p.loopUseCtr >= 0 && lt != base {
			base = lt
			provider = predictor.ProviderLoop
			p.loopUsed = true
			p.loopUses++
			p.telLoopUses.Inc()
		}
	}
	final := base
	if p.sc != nil {
		final = p.sc.Correct(pc, base, p.tage.LastConfident() || provider == predictor.ProviderLoop)
		if p.sc.Flipped() {
			provider = predictor.ProviderSC
			p.scFlips++
		}
	}
	p.finalTaken = final
	p.providers[provider]++
	p.telProviders[provider].Inc()
	p.detail = predictor.Detail{
		Provider:      provider,
		ProviderLen:   p.tage.ProviderLen(),
		AltTaken:      p.tage.LastAltTaken(),
		PatternKey:    p.tage.LastPatternKey(),
		BaselineTaken: final,
	}
	return final
}

// Update implements predictor.Predictor (unknown target; see
// UpdateWithTarget).
//
//llbplint:sink -- predictor tables define simulated accuracy; training on a nondeterministic value forks the trajectory
func (p *Predictor) Update(pc uint64, taken bool) {
	p.UpdateWithTarget(pc, pc+4, taken)
}

// UpdateWithTarget implements predictor.TargetUpdater: the resolved
// target feeds the corrector's IMLI component.
//
//llbplint:sink -- predictor tables define simulated accuracy; training on a nondeterministic value forks the trajectory
func (p *Predictor) UpdateWithTarget(pc, target uint64, taken bool) {
	p.updateAux(pc, target, taken)
	p.tage.Update(pc, taken)
}

// UpdateAsOverridden trains the predictor for a conditional branch whose
// final prediction was supplied by LLBP: the auxiliary components observe
// the outcome, histories advance, but TAGE's counters and allocator are
// cancelled (§V-D).
func (p *Predictor) UpdateAsOverridden(pc, target uint64, taken bool) {
	p.updateAux(pc, target, taken)
	p.tage.UpdateHistoryOnly(pc, taken)
}

func (p *Predictor) updateAux(pc, target uint64, taken bool) {
	if pc != p.lastPC {
		assert.Failf("tsl: Update(%#x) without matching Predict (last %#x)", pc, p.lastPC)
	}
	if p.sc != nil {
		p.sc.UpdateWithTarget(pc, target, taken)
		p.sc.Push(taken)
	}
	if p.loop != nil {
		// Train the chooser whenever a confident loop prediction
		// disagreed with TAGE: reward the side that was right.
		if p.loopValid && p.loopTaken != p.tageTaken {
			if p.loopTaken == taken {
				if p.loopUseCtr < 63 {
					p.loopUseCtr++
				}
			} else if p.loopUseCtr > -64 {
				p.loopUseCtr--
			}
		}
		p.loop.Update(pc, taken, p.tageTaken != taken)
	}
}

// TrackOther implements predictor.Predictor.
func (p *Predictor) TrackOther(pc, target uint64, t trace.BranchType) {
	p.tage.TrackOther(pc, target, t)
	if p.sc != nil {
		p.sc.Push(true)
	}
}

// LastDetail implements predictor.Detailer.
func (p *Predictor) LastDetail() predictor.Detail { return p.detail }

// LastTaken returns the final prediction of the last Predict call.
func (p *Predictor) LastTaken() bool { return p.finalTaken }

// StorageBits returns the predictor's total storage budget in bits
// (-1 for infinite configurations).
func (p *Predictor) StorageBits() int {
	t := p.cfg.TAGE.StorageBits()
	if t < 0 {
		return -1
	}
	if p.sc != nil {
		t += p.sc.StorageBits()
	}
	if p.loop != nil {
		t += p.loop.StorageBits()
	}
	return t
}

// HistoryCheckpoint captures the composed predictor's speculative state
// (TAGE and statistical-corrector histories; the loop predictor holds no
// speculative history).
type HistoryCheckpoint struct {
	tage *tage.HistoryCheckpoint
	sc   *sc.HistoryCheckpoint
}

// CheckpointHistory snapshots the speculative history state (§V-E2).
func (p *Predictor) CheckpointHistory() *HistoryCheckpoint {
	cp := &HistoryCheckpoint{tage: p.tage.CheckpointHistory()}
	if p.sc != nil {
		cp.sc = p.sc.CheckpointHistory()
	}
	return cp
}

// RestoreHistory rewinds the speculative history state to a checkpoint.
func (p *Predictor) RestoreHistory(cp *HistoryCheckpoint) {
	p.tage.RestoreHistory(cp.tage)
	if p.sc != nil && cp.sc != nil {
		p.sc.RestoreHistory(cp.sc)
	}
}
