//go:build race

package experiments

// raceEnabled reports whether the race detector is compiled in; the
// heaviest integration tests skip under it (it slows simulation ~10×).
const raceEnabled = true
