// Package tage implements the TAGE (TAgged GEometric history length)
// conditional branch predictor at the heart of TAGE-SC-L, in both its
// finite-capacity form and the paper's infinite-capacity construction
// (patterns tagged with the full branch PC, unbounded associativity,
// unchanged hash functions — §II-C).
package tage

import "fmt"

// DefaultHistLengths is the geometric history-length series of the
// modelled 64KiB TAGE-SC-L: 21 tagged tables spanning 4..3000 bits of
// global history. The series is chosen so that it contains, as an exact
// subset, the 12 base history lengths LLBP uses (12, 26, 54, 78, 112, 161,
// 232, 336, 482, 695, 1444, 3000 — §VI), which the paper requires for the
// longest-match arbitration between TAGE and LLBP.
var DefaultHistLengths = []int{
	4, 6, 8, 10, 12, 17, 21, 26, 38, 54, 78, 112,
	161, 232, 336, 482, 695, 1002, 1444, 2081, 3000,
}

// Config parameterizes a TAGE instance.
type Config struct {
	// HistLengths holds the global-history length of each tagged table,
	// in increasing order.
	HistLengths []int
	// TagBits holds the partial-tag width of each tagged table. Must be
	// the same length as HistLengths.
	TagBits []int
	// LogEntries holds log2 of the number of entries of each tagged
	// table (ignored in Infinite mode). Must match HistLengths.
	LogEntries []int
	// BimodalLog is log2 of the bimodal table size.
	BimodalLog int
	// CounterBits is the width of the signed prediction counter
	// (3 in the modelled design: values -4..+3).
	CounterBits int
	// Infinite selects the unbounded-capacity mode: every pattern is
	// additionally tagged with its full branch PC and tables have
	// unbounded associativity, exactly the paper's Inf construction.
	Infinite bool
	// PathBits is the length of the path-history register.
	PathBits int
	// Seed initializes the allocator's PRNG; simulations are
	// deterministic for a fixed seed.
	Seed uint64
}

// DefaultConfig returns the 64KiB-budget configuration: 21 tagged tables of
// 1K entries each (the paper's 64K TSL baseline; §VI notes 1K entries per
// table, and the energy model charges 21 tables × (12b tag + 3b ctr + 1b
// useful)).
func DefaultConfig() Config {
	n := len(DefaultHistLengths)
	cfg := Config{
		HistLengths: append([]int(nil), DefaultHistLengths...),
		TagBits:     make([]int, n),
		LogEntries:  make([]int, n),
		BimodalLog:  14,
		CounterBits: 3,
		PathBits:    27,
		Seed:        0x5eed_11bb,
	}
	for i := range cfg.TagBits {
		// Tag width grows with history length, as in the CBP-5
		// design: 9 bits for the short tables up to 13 bits for the
		// longest ones (13 is also LLBP's pattern-tag width).
		switch {
		case i < 7:
			cfg.TagBits[i] = 9
		case i < 14:
			cfg.TagBits[i] = 11
		default:
			cfg.TagBits[i] = 13
		}
		cfg.LogEntries[i] = 10
	}
	return cfg
}

// Scaled returns a copy of the configuration with every tagged table's
// entry count multiplied by 2^logFactor (the paper's 512K TSL scales the
// 64K design by 8×, i.e. logFactor=3). The bimodal table is not scaled,
// matching §VI ("the number of table entries is scaled up ... from 1K
// entries to 8K entries per table").
func (c Config) Scaled(logFactor int) Config {
	out := c
	out.LogEntries = make([]int, len(c.LogEntries))
	for i, l := range c.LogEntries {
		out.LogEntries[i] = l + logFactor
	}
	return out
}

// InfiniteConfig returns the unbounded-capacity variant of c.
func (c Config) InfiniteConfig() Config {
	out := c
	out.Infinite = true
	return out
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	n := len(c.HistLengths)
	if n == 0 {
		return fmt.Errorf("tage: no tagged tables configured")
	}
	if len(c.TagBits) != n || len(c.LogEntries) != n {
		return fmt.Errorf("tage: TagBits/LogEntries length mismatch (%d/%d vs %d tables)",
			len(c.TagBits), len(c.LogEntries), n)
	}
	prev := 0
	for i, h := range c.HistLengths {
		if h <= prev {
			return fmt.Errorf("tage: history lengths must be strictly increasing (table %d: %d after %d)", i, h, prev)
		}
		prev = h
		if c.TagBits[i] < 4 || c.TagBits[i] > 16 {
			return fmt.Errorf("tage: table %d tag width %d out of range [4,16]", i, c.TagBits[i])
		}
		if !c.Infinite && (c.LogEntries[i] < 4 || c.LogEntries[i] > 24) {
			return fmt.Errorf("tage: table %d logEntries %d out of range [4,24]", i, c.LogEntries[i])
		}
	}
	if c.BimodalLog < 2 || c.BimodalLog > 28 {
		return fmt.Errorf("tage: bimodalLog %d out of range [2,28]", c.BimodalLog)
	}
	if c.CounterBits < 2 || c.CounterBits > 7 {
		return fmt.Errorf("tage: counterBits %d out of range [2,7]", c.CounterBits)
	}
	if c.PathBits <= 0 || c.PathBits > 32 {
		return fmt.Errorf("tage: pathBits %d out of range [1,32]", c.PathBits)
	}
	return nil
}

// StorageBits returns the storage cost of the tagged tables plus the
// bimodal table, in bits. Infinite configurations return -1 (unbounded).
func (c Config) StorageBits() int {
	if c.Infinite {
		return -1
	}
	bits := 0
	for i := range c.HistLengths {
		entry := c.TagBits[i] + c.CounterBits + 1 // tag + ctr + useful
		bits += entry << uint(c.LogEntries[i])
	}
	bits += (1 << uint(c.BimodalLog)) + (1 << uint(c.BimodalLog-2)) // bimodal pred + shared hyst
	return bits
}
