// Package telemetry is the observability layer of the simulation stack:
// a low-overhead metrics registry (counters, gauges, bucketed histograms
// and fixed-interval time series) plus a structured event tracer emitting
// Chrome trace-event JSON loadable in Perfetto / chrome://tracing.
//
// The design goal is that instrumentation can stay compiled into every
// hot path permanently. Components hold typed instrument pointers
// (*Counter, *Histogram, ...) that are nil until the component is
// attached to a Registry; every instrument method is nil-safe, so the
// disabled fast path is a single pointer test with no allocation and no
// atomic traffic. Attaching is explicit and cheap:
//
//	reg := telemetry.NewRegistry()
//	telemetry.Attach(reg, pred) // pred implements Attachable
//	... run ...
//	reg.WriteJSON(f)
//
// Instrument updates are atomic, so one registry may be shared by
// concurrent goroutines (the harness does; simulations are
// single-threaded per predictor but registration is still guarded).
package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing event count. The zero of the
// *pointer* (nil) is the disabled instrument: Inc/Add on a nil counter
// are no-ops.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value-wins instrument for levels (live entries,
// occupancy). Nil gauges are no-ops.
type Gauge struct {
	bits atomic.Uint64
}

// Set records the current level.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the last recorded level (0 for a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed buckets. Bounds are inclusive
// upper bounds in ascending order; an observation lands in the first
// bucket whose bound is >= the value, or in the implicit overflow bucket
// past the last bound (Counts has len(Bounds)+1 slots). Nil histograms
// are no-ops.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Binary search for the first bound >= v.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.counts[lo].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// LinearBuckets returns n bounds start, start+width, ...
func LinearBuckets(start, width float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = start + width*float64(i)
	}
	return out
}

// ExponentialBuckets returns n bounds start, start*factor, ...
func ExponentialBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// Series is a fixed-interval time series: point i covers source indices
// [i*Interval, (i+1)*Interval). The producer appends one point per
// elapsed interval (the simulation driver keys intervals by
// measured-branch index). Nil series are no-ops.
type Series struct {
	mu       sync.Mutex
	interval uint64
	points   []float64
}

// Append records the next interval's value.
func (s *Series) Append(v float64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.points = append(s.points, v)
	s.mu.Unlock()
}

// Interval returns the series' source-index stride (0 for nil).
func (s *Series) Interval() uint64 {
	if s == nil {
		return 0
	}
	return s.interval
}

// Len returns the number of recorded points.
func (s *Series) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.points)
}

// Registry owns a flat namespace of instruments. A nil *Registry is the
// disabled registry: every lookup returns a nil (no-op) instrument, so
// components can attach unconditionally. Registration is idempotent —
// asking for an existing name returns the same instrument.
type Registry struct {
	// seq numbers snapshots monotonically (atomic; outside mu so
	// Snapshot's ordering guarantee holds even under concurrent scrapes).
	seq atomic.Uint64

	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	series     map[string]*Series
	// nowMillis, when non-nil, timestamps snapshots (wall-clock Unix
	// milliseconds). Nil keeps snapshots byte-deterministic — the
	// simulation determinism gate depends on that default.
	nowMillis func() int64
}

// NewRegistry returns an empty, enabled registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
		series:     make(map[string]*Series),
	}
}

// Counter registers (or finds) the named counter. Nil registries return
// a nil (no-op) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge registers (or finds) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram registers (or finds) the named histogram. Bounds are
// inclusive ascending upper bounds; they apply only on first
// registration (later callers receive the existing instrument).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.histograms[name]
	if h == nil {
		h = &Histogram{
			bounds: append([]float64(nil), bounds...),
			counts: make([]atomic.Uint64, len(bounds)+1),
		}
		r.histograms[name] = h
	}
	return h
}

// Series registers (or finds) the named series with the given
// source-index interval (applied on first registration only).
func (r *Registry) Series(name string, interval uint64) *Series {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.series[name]
	if s == nil {
		if interval == 0 {
			interval = 1
		}
		s = &Series{interval: interval}
		r.series[name] = s
	}
	return s
}

// Attachable is implemented by components that wire their instruments to
// a registry. Attaching with a nil registry detaches (all instruments
// become no-ops); components must tolerate repeated attachment.
type Attachable interface {
	AttachTelemetry(*Registry)
}

// Attach wires v to reg when v implements Attachable, reporting whether
// it did.
func Attach(reg *Registry, v any) bool {
	a, ok := v.(Attachable)
	if ok {
		a.AttachTelemetry(reg)
	}
	return ok
}

// HistogramSnapshot is the serialized state of one histogram. Counts has
// one slot per bound plus a final overflow slot.
type HistogramSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"`
	Count  uint64    `json:"count"`
	Sum    float64   `json:"sum"`
}

// SeriesSnapshot is the serialized state of one time series.
type SeriesSnapshot struct {
	// Interval is the source-index stride between points (e.g. measured
	// branches per point).
	Interval uint64 `json:"interval"`
	// Points holds one value per completed interval, in order.
	Points []float64 `json:"points"`
}

// Snapshot is a point-in-time copy of every instrument in a registry —
// the JSON payload behind the CLIs' -metrics flag and the service's
// /metrics endpoint.
type Snapshot struct {
	// Seq is a per-registry monotonic snapshot sequence number (1 for
	// the first snapshot). Repeated scrapes of a live registry are
	// order-checkable by comparing Seq; llbp-metrics/1 files written
	// before sequence numbers existed decode with Seq 0.
	Seq uint64 `json:"seq,omitempty"`
	// TimeUnixMS is the wall-clock snapshot time in Unix milliseconds.
	// It is present only when the registry was given a clock with
	// SetClock — deterministic producers (the simulation drivers) leave
	// the clock unset so their snapshots stay byte-reproducible.
	TimeUnixMS int64 `json:"time_unix_ms,omitempty"`

	Counters   map[string]uint64            `json:"counters"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
	Series     map[string]SeriesSnapshot    `json:"series,omitempty"`
}

// SetClock gives the registry a wall-clock source (Unix milliseconds)
// used to timestamp snapshots. Long-running services set one so scrapes
// carry freshness; batch tools leave it nil for byte-determinism. A nil
// registry ignores the call.
func (r *Registry) SetClock(nowMillis func() int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.nowMillis = nowMillis
	r.mu.Unlock()
}

// Snapshot copies the registry's current state. Nil registries snapshot
// empty. Successive snapshots of the same registry carry strictly
// increasing Seq values.
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{Counters: map[string]uint64{}}
	if r == nil {
		return snap
	}
	snap.Seq = r.seq.Add(1)
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.nowMillis != nil {
		snap.TimeUnixMS = r.nowMillis()
	}
	for name, c := range r.counters {
		snap.Counters[name] = c.Value()
	}
	if len(r.gauges) > 0 {
		snap.Gauges = make(map[string]float64, len(r.gauges))
		for name, g := range r.gauges {
			snap.Gauges[name] = g.Value()
		}
	}
	if len(r.histograms) > 0 {
		snap.Histograms = make(map[string]HistogramSnapshot, len(r.histograms))
		for name, h := range r.histograms {
			hs := HistogramSnapshot{
				Bounds: append([]float64(nil), h.bounds...),
				Counts: make([]uint64, len(h.counts)),
				Count:  h.Count(),
				Sum:    h.Sum(),
			}
			for i := range h.counts {
				hs.Counts[i] = h.counts[i].Load()
			}
			snap.Histograms[name] = hs
		}
	}
	if len(r.series) > 0 {
		snap.Series = make(map[string]SeriesSnapshot, len(r.series))
		for name, s := range r.series {
			s.mu.Lock()
			snap.Series[name] = SeriesSnapshot{
				Interval: s.interval,
				Points:   append([]float64(nil), s.points...),
			}
			s.mu.Unlock()
		}
	}
	return snap
}

// WriteJSON writes the registry snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// MetricsSchema identifies the on-disk metrics snapshot format.
const MetricsSchema = "llbp-metrics/1"

// RunSnapshot pairs one simulation run's identity with its metrics.
type RunSnapshot struct {
	Workload  string   `json:"workload,omitempty"`
	Predictor string   `json:"predictor,omitempty"`
	Metrics   Snapshot `json:"metrics"`
}

// MetricsFile is the top-level -metrics JSON document: a schema tag and
// one RunSnapshot per simulated run (tools that snapshot a single
// process-wide registry write exactly one run).
type MetricsFile struct {
	Schema string        `json:"schema"`
	Runs   []RunSnapshot `json:"runs"`
}

// WriteMetricsFile writes runs as an indented MetricsFile document.
func WriteMetricsFile(w io.Writer, runs []RunSnapshot) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(MetricsFile{Schema: MetricsSchema, Runs: runs})
}

// ReadMetricsFile parses a MetricsFile document, validating the schema
// tag. It is the reader side used by cmd/telemetrycheck and tests.
func ReadMetricsFile(data []byte) (*MetricsFile, error) {
	var mf MetricsFile
	if err := json.Unmarshal(data, &mf); err != nil {
		return nil, fmt.Errorf("telemetry: parsing metrics file: %w", err)
	}
	if mf.Schema != MetricsSchema {
		return nil, fmt.Errorf("telemetry: metrics schema %q, want %q", mf.Schema, MetricsSchema)
	}
	return &mf, nil
}

// SortedCounterNames returns the snapshot's counter names in order, for
// deterministic rendering.
func (s *Snapshot) SortedCounterNames() []string {
	out := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
