package session

import (
	"context"
	"encoding/json"
	"errors"
	"path/filepath"
	"testing"
	"time"

	"llbp/internal/experiments"
	"llbp/internal/trace"
	"llbp/internal/workload"
)

// testStream pulls nBatches batches of batchLen branches from the Tomcat
// trace, starting after skip records, so streamed sessions exercise the
// predictor with real branch behavior.
func testStream(t testing.TB, skip uint64, nBatches, batchLen int) []Frame {
	t.Helper()
	wl, err := workload.ByName("Tomcat")
	if err != nil {
		t.Fatal(err)
	}
	r := wl.Open()
	var b trace.Branch
	for i := uint64(0); i < skip; i++ {
		if err := r.Read(&b); err != nil {
			t.Fatal(err)
		}
	}
	frames := make([]Frame, nBatches)
	for i := range frames {
		recs := make([]BranchRec, batchLen)
		for k := range recs {
			if err := r.Read(&b); err != nil {
				t.Fatal(err)
			}
			recs[k] = BranchRec{
				PC: b.PC, Target: b.Target, Kind: uint8(b.Type), Taken: b.Taken,
				Instructions: b.Instructions, TargetMiss: b.MispredictedTarget,
			}
		}
		frames[i] = Frame{Type: FrameBranchBatch, Seq: uint64(i + 1), Branches: recs}
	}
	return frames
}

func testManager(t testing.TB, journalPath string) *Manager {
	t.Helper()
	wl, err := workload.ByName("Tomcat")
	if err != nil {
		t.Fatal(err)
	}
	h := experiments.NewHarness(experiments.Config{
		Warmup:    5_000,
		Measure:   10_000,
		Workloads: []*workload.Source{wl},
	})
	m, err := New(Options{
		Forker:             h,
		JournalPath:        journalPath,
		CheckpointBranches: 500,
		LeaseTTL:           time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func openTestSession(t testing.TB, m *Manager) Status {
	t.Helper()
	st, err := m.Open(context.Background(), Request{
		Schema: Schema, Predictor: "64k", Workload: "Tomcat", Warmup: 2_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// marshalFrames renders persisted frames as the NDJSON bytes the stream
// endpoint would emit — the unit of the byte-identity assertions.
func marshalFrames(t testing.TB, frames []OutFrame) string {
	t.Helper()
	out := ""
	for _, f := range frames {
		b, err := json.Marshal(f)
		if err != nil {
			t.Fatal(err)
		}
		out += string(b) + "\n"
	}
	return out
}

func allFrames(s *Session) []OutFrame {
	evs, _, _, _, _ := s.frames(0, 0)
	return evs
}

func TestSessionLifecycle(t *testing.T) {
	m := testManager(t, "")
	st := openTestSession(t, m)
	if st.State != StateOpen || st.Branches != 0 {
		t.Fatalf("fresh session: %+v", st)
	}

	batches := testStream(t, 2_000, 4, 200)
	c, err := m.Claim(context.Background(), st.ID, "w1")
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range batches {
		of, err := c.Apply(f)
		if err != nil {
			t.Fatalf("apply seq %d: %v", f.Seq, err)
		}
		if of.Type != FramePredictions || of.Batch != f.Seq || of.N != 200 {
			t.Fatalf("predictions frame: %+v", of)
		}
		raw, err := DecodeOutcomes(of.Outcomes)
		if err != nil {
			t.Fatal(err)
		}
		var misp uint64
		for _, o := range raw {
			if o&OutcomeMispredict != 0 {
				misp++
			}
		}
		if misp != of.Mispredicts {
			t.Fatalf("outcome bytes count %d mispredicts, frame says %d", misp, of.Mispredicts)
		}
	}

	// Replayed (duplicate) sequence numbers are acknowledged idempotently.
	of, err := c.Apply(batches[1])
	if err != nil {
		t.Fatalf("duplicate seq: %v", err)
	}
	if of.Batch != batches[1].Seq {
		t.Fatalf("duplicate ack echoes batch %d, want %d", of.Batch, batches[1].Seq)
	}
	// A gap is a protocol error.
	gap := batches[3]
	gap.Seq = 99
	if _, err := c.Apply(gap); err == nil {
		t.Fatal("seq gap accepted")
	}

	st, err = m.Get(context.Background(), st.ID)
	if err != nil {
		t.Fatal(err)
	}
	// 4 batches * 200 branches with a 500-branch checkpoint cadence →
	// one auto-checkpoint at 600 branches... cadence fires when the
	// running count crosses each multiple.
	if st.Branches != 800 || st.LastSeq != 4 {
		t.Fatalf("cursors: %+v", st)
	}
	if st.Checkpoints == 0 {
		t.Fatal("no auto-checkpoint despite 800 branches at cadence 500")
	}

	c.Release()
	if _, err := m.Close(context.Background(), st.ID); err != nil {
		t.Fatal(err)
	}
	st, _ = m.Get(context.Background(), st.ID)
	if st.State != StateClosed {
		t.Fatalf("state after close: %s", st.State)
	}
	// Frame sequence is contiguous from 1 and ends with done.
	m.mu.Lock()
	s := m.sessions[st.ID]
	m.mu.Unlock()
	frames := allFrames(s)
	for i, f := range frames {
		if f.Seq != uint64(i+1) {
			t.Fatalf("frame %d has seq %d", i, f.Seq)
		}
	}
	if frames[len(frames)-1].Type != FrameDone {
		t.Fatalf("last frame: %+v", frames[len(frames)-1])
	}
}

// TestSessionResumeByteIdentical is the durability acceptance: a session
// killed mid-stream (journal intact) and resumed on a fresh manager
// produces a persisted frame stream byte-identical to one that was never
// interrupted.
func TestSessionResumeByteIdentical(t *testing.T) {
	batches := testStream(t, 2_000, 10, 200)
	ctx := context.Background()

	// Uninterrupted control.
	ctrl := testManager(t, "")
	ctrlSt := openTestSession(t, ctrl)
	cc, err := ctrl.Claim(ctx, ctrlSt.ID, "w")
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range batches {
		if _, err := cc.Apply(f); err != nil {
			t.Fatal(err)
		}
	}
	cc.Release()
	if _, err := ctrl.Close(ctx, ctrlSt.ID); err != nil {
		t.Fatal(err)
	}
	ctrl.mu.Lock()
	want := marshalFrames(t, allFrames(ctrl.sessions[ctrlSt.ID]))
	ctrl.mu.Unlock()

	// Killed-and-resumed run: stream 6 batches, drop the manager on the
	// floor (no clean shutdown — the journal is the only survivor), then
	// resume on a new manager and stream the rest.
	jpath := filepath.Join(t.TempDir(), "sessions.journal")
	m1 := testManager(t, jpath)
	st := openTestSession(t, m1)
	c1, err := m1.Claim(ctx, st.ID, "w")
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range batches[:6] {
		if _, err := c1.Apply(f); err != nil {
			t.Fatal(err)
		}
	}
	m1.journal.Close() // the kill: fds gone, no drain, no release

	m2 := testManager(t, jpath)
	st2, err := m2.Get(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st2.ID != st.ID {
		t.Fatalf("restored session id %s, want %s", st2.ID, st.ID)
	}
	if st2.LastSeq != 6 || st2.Branches != 1200 {
		t.Fatalf("restored cursors: %+v", st2)
	}
	c2, err := m2.Claim(ctx, st.ID, "w")
	if err != nil {
		t.Fatal(err)
	}
	// The client replays its last unacknowledged batch (overlap) then
	// continues: overlap must be idempotent, continuation exact.
	for _, f := range batches[5:] {
		if _, err := c2.Apply(f); err != nil {
			t.Fatal(err)
		}
	}
	c2.Release()
	if _, err := m2.Close(ctx, st.ID); err != nil {
		t.Fatal(err)
	}
	m2.mu.Lock()
	got := marshalFrames(t, allFrames(m2.sessions[st.ID]))
	m2.mu.Unlock()
	if got != want {
		t.Fatalf("killed-and-resumed stream diverged from uninterrupted stream:\n got %d bytes\nwant %d bytes\n got: %.300s\nwant: %.300s",
			len(got), len(want), got, want)
	}
	m2.Shutdown()
}

// TestDrainMigration: a drain hands the session to a new claim via the
// checkpoint fork; the migrated continuation is byte-identical to an
// undrained one and no sequence number is duplicated or skipped.
func TestDrainMigration(t *testing.T) {
	batches := testStream(t, 2_000, 10, 200)
	ctx := context.Background()

	ctrl := testManager(t, "")
	ctrlSt := openTestSession(t, ctrl)
	cc, _ := ctrl.Claim(ctx, ctrlSt.ID, "w")
	for _, f := range batches {
		if _, err := cc.Apply(f); err != nil {
			t.Fatal(err)
		}
	}
	ctrl.mu.Lock()
	ctrlFrames := allFrames(ctrl.sessions[ctrlSt.ID])
	ctrl.mu.Unlock()

	m := testManager(t, "")
	st := openTestSession(t, m)
	c1, err := m.Claim(ctx, st.ID, "w1")
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range batches[:5] {
		if _, err := c1.Apply(f); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c1.Drain(); err != nil {
		t.Fatal(err)
	}

	c2, err := m.Claim(ctx, st.ID, "w2")
	if err != nil {
		t.Fatalf("claim after drain: %v", err)
	}
	// The drained claim is fenced: it can never apply again.
	if _, err := c1.Apply(batches[5]); !errors.Is(err, ErrFenced) {
		t.Fatalf("drained claim applied a batch: %v", err)
	}
	select {
	case <-c1.Revoke:
	default:
		t.Fatal("drained claim's revoke channel still open")
	}
	for _, f := range batches[5:] {
		if _, err := c2.Apply(f); err != nil {
			t.Fatal(err)
		}
	}
	m.mu.Lock()
	s := m.sessions[st.ID]
	m.mu.Unlock()
	frames := allFrames(s)

	// Zero duplicated or skipped batch seqs across the migration.
	next := uint64(1)
	for _, f := range frames {
		if f.Type != FramePredictions {
			continue
		}
		if f.Batch != next {
			t.Fatalf("predictions for batch %d, want %d (dup or skip across migration)", f.Batch, next)
		}
		next++
	}
	if next != 11 {
		t.Fatalf("saw %d batches, want 10", next-1)
	}

	// Byte-identical predictions: every batch's verdicts match the
	// undrained control (the drain adds one checkpoint frame, so compare
	// per-batch rather than whole-log).
	ctrlByBatch := map[uint64]OutFrame{}
	for _, f := range ctrlFrames {
		if f.Type == FramePredictions {
			ctrlByBatch[f.Batch] = f
		}
	}
	for _, f := range frames {
		if f.Type != FramePredictions {
			continue
		}
		cf := ctrlByBatch[f.Batch]
		if f.Outcomes != cf.Outcomes || f.Mispredicts != cf.Mispredicts || f.Branches != cf.Branches {
			t.Fatalf("batch %d diverged after migration:\n got %+v\nwant %+v", f.Batch, f, cf)
		}
	}
	if st2, _ := m.Get(ctx, st.ID); st2.Epoch != 2 {
		t.Fatalf("epoch after migration: %d, want 2", st2.Epoch)
	}
}

// TestLeaseExpiry: a wedged claim's lease ages out, the supervisor sweep
// revokes it, and a successor claims; the zombie is fenced everywhere.
func TestLeaseExpiry(t *testing.T) {
	now := time.Unix(1000, 0)
	wl, err := workload.ByName("Tomcat")
	if err != nil {
		t.Fatal(err)
	}
	h := experiments.NewHarness(experiments.Config{
		Warmup: 5_000, Measure: 10_000,
		Workloads: []*workload.Source{wl},
	})
	m, err := New(Options{
		Forker:   h,
		LeaseTTL: 10 * time.Second,
		Now:      func() time.Time { return now },
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := m.Open(context.Background(), Request{Schema: Schema, Predictor: "64k"})
	if err != nil {
		t.Fatal(err)
	}
	batches := testStream(t, 0, 3, 100)

	c1, err := m.Claim(context.Background(), st.ID, "w1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Apply(batches[0]); err != nil {
		t.Fatal(err)
	}
	// A second claim while the lease is live is a conflict.
	if _, err := m.Claim(context.Background(), st.ID, "w2"); err == nil {
		t.Fatal("live lease stolen")
	}
	// Lease ages out; the sweep revokes it.
	now = now.Add(11 * time.Second)
	if n := m.ExpireLeases(); n != 1 {
		t.Fatalf("sweep revoked %d leases, want 1", n)
	}
	select {
	case <-c1.Revoke:
	default:
		t.Fatal("expired claim's revoke channel still open")
	}
	c2, err := m.Claim(context.Background(), st.ID, "w2")
	if err != nil {
		t.Fatalf("claim after expiry: %v", err)
	}
	if _, err := c1.Apply(batches[1]); !errors.Is(err, ErrFenced) {
		t.Fatalf("zombie claim applied: %v", err)
	}
	if _, err := c2.Apply(batches[1]); err != nil {
		t.Fatal(err)
	}
	c1.Release() // fenced release is a no-op
	if _, err := c2.Apply(batches[2]); err != nil {
		t.Fatalf("release of fenced claim disturbed the live claim: %v", err)
	}
}

// TestForkWarmSharing: two sessions over the same (workload, predictor,
// warmup) triple behave identically — the second forks the first's warm
// snapshot rather than rewarming, and both predict the same stream the
// same way.
func TestForkWarmSharing(t *testing.T) {
	m := testManager(t, "")
	ctx := context.Background()
	batches := testStream(t, 2_000, 3, 150)

	stA := openTestSession(t, m)
	stB := openTestSession(t, m)
	if stA.ID == stB.ID {
		t.Fatal("two opens returned one session")
	}
	cA, _ := m.Claim(ctx, stA.ID, "w")
	cB, _ := m.Claim(ctx, stB.ID, "w")
	for _, f := range batches {
		a, err := cA.Apply(f)
		if err != nil {
			t.Fatal(err)
		}
		b, err := cB.Apply(f)
		if err != nil {
			t.Fatal(err)
		}
		if a.Outcomes != b.Outcomes {
			t.Fatalf("batch %d: twin sessions diverged", f.Seq)
		}
	}
}
