// Command telemetrycheck validates telemetry artifacts in CI: that a
// -metrics JSON snapshot parses against the llbp-metrics schema and
// contains required counters and series, that a -prom Prometheus text
// exposition parses back with required counter families, that an
// -events llbp-events/1 NDJSON log is well-formed (contiguous seq,
// known types) and carries required event types, and that a trace-event
// file is valid Chrome trace JSON. It exists so the workflow needs no
// external JSON tooling.
//
// Usage:
//
//	telemetrycheck -metrics m.json -require pb_hits,prefetch_issued -require-series mpki
//	telemetrycheck -prom m.prom -require service_jobs_submitted
//	telemetrycheck -events ev.ndjson -require-events job.submitted,job.completed
//	telemetrycheck -trace t.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"llbp/internal/telemetry"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("telemetrycheck", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		metricsPath = fs.String("metrics", "", "metrics snapshot to validate")
		require     = fs.String("require", "", "comma-separated counters that must be present (-metrics: in some run; -prom: as counter families)")
		requireSer  = fs.String("require-series", "", "comma-separated series that must be present and non-empty")
		promPath    = fs.String("prom", "", "Prometheus text exposition to validate")
		eventsPath  = fs.String("events", "", "llbp-events/1 NDJSON log to validate")
		requireEv   = fs.String("require-events", "", "comma-separated event types that must appear in -events")
		tracePath   = fs.String("trace", "", "trace-event file to validate")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *metricsPath == "" && *tracePath == "" && *promPath == "" && *eventsPath == "" {
		fmt.Fprintln(stderr, "telemetrycheck: pass -metrics, -prom, -events and/or -trace")
		return 2
	}

	if *metricsPath != "" {
		if err := checkMetrics(*metricsPath, splitList(*require), splitList(*requireSer)); err != nil {
			fmt.Fprintln(stderr, "telemetrycheck:", err)
			return 1
		}
		fmt.Fprintf(stdout, "metrics OK: %s\n", *metricsPath)
	}
	if *promPath != "" {
		if err := checkProm(*promPath, splitList(*require)); err != nil {
			fmt.Fprintln(stderr, "telemetrycheck:", err)
			return 1
		}
		fmt.Fprintf(stdout, "prometheus OK: %s\n", *promPath)
	}
	if *eventsPath != "" {
		n, err := checkEvents(*eventsPath, splitList(*requireEv))
		if err != nil {
			fmt.Fprintln(stderr, "telemetrycheck:", err)
			return 1
		}
		fmt.Fprintf(stdout, "events OK: %s (%d events)\n", *eventsPath, n)
	}
	if *tracePath != "" {
		n, err := checkTrace(*tracePath)
		if err != nil {
			fmt.Fprintln(stderr, "telemetrycheck:", err)
			return 1
		}
		fmt.Fprintf(stdout, "trace OK: %s (%d events)\n", *tracePath, n)
	}
	return 0
}

func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

// checkMetrics validates the snapshot schema and that every required
// counter (and non-empty series) appears in at least one run.
func checkMetrics(path string, counters, series []string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	mf, err := telemetry.ReadMetricsFile(data)
	if err != nil {
		return err
	}
	if len(mf.Runs) == 0 {
		return fmt.Errorf("%s: no runs", path)
	}
	for _, name := range counters {
		found := false
		for _, run := range mf.Runs {
			if _, ok := run.Metrics.Counters[name]; ok {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("%s: required counter %q missing from every run", path, name)
		}
	}
	for _, name := range series {
		found := false
		for _, run := range mf.Runs {
			if s, ok := run.Metrics.Series[name]; ok && len(s.Points) > 0 {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("%s: required series %q missing or empty in every run", path, name)
		}
	}
	return nil
}

// checkProm validates the Prometheus text exposition round-trip and
// that every required name is declared as a counter family.
func checkProm(path string, counters []string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	doc, err := telemetry.ParsePrometheus(data)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	for _, name := range counters {
		if doc.Types[name] != "counter" {
			return fmt.Errorf("%s: required counter family %q missing (declared %q)", path, name, doc.Types[name])
		}
		if _, ok := doc.Value(name); !ok {
			return fmt.Errorf("%s: counter family %q declared but has no sample", path, name)
		}
	}
	return nil
}

// checkEvents validates the llbp-events/1 log (header schema, known
// types, contiguous seq) and that every required event type appears,
// returning the event count.
func checkEvents(path string, types []string) (int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	events, err := telemetry.ReadEvents(data)
	if err != nil {
		return 0, fmt.Errorf("%s: %w", path, err)
	}
	seen := make(map[string]bool, len(events))
	for _, ev := range events {
		seen[ev.Type] = true
	}
	for _, typ := range types {
		if !seen[typ] {
			return 0, fmt.Errorf("%s: required event type %q never emitted", path, typ)
		}
	}
	return len(events), nil
}

// checkTrace validates that the file is a JSON array of trace events with
// the fields Perfetto keys on, returning the event count.
func checkTrace(path string) (int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	var events []map[string]any
	if err := json.Unmarshal(data, &events); err != nil {
		return 0, fmt.Errorf("%s: not a trace-event array: %w", path, err)
	}
	if len(events) == 0 {
		return 0, fmt.Errorf("%s: no trace events", path)
	}
	for i, ev := range events {
		for _, field := range []string{"name", "ph", "pid"} {
			if _, ok := ev[field]; !ok {
				return 0, fmt.Errorf("%s: event %d missing %q", path, i, field)
			}
		}
		ph, _ := ev["ph"].(string)
		if ph == "X" || ph == "i" || ph == "C" {
			if _, ok := ev["ts"]; !ok {
				return 0, fmt.Errorf("%s: event %d (ph %q) missing ts", path, i, ph)
			}
		}
	}
	return len(events), nil
}
