// Command llbplint runs the repository's custom static-analysis suite
// (internal/lint) over Go packages and fails on any new diagnostic. It
// is a tier-1 CI gate alongside go vet.
//
// Usage:
//
//	llbplint [-C dir] [-json] [-baseline file] [-write-baseline]
//	         [-fix | -diff] [-<analyzer>=false ...] [packages]
//
// Packages default to ./... . Each analyzer has a disable flag named
// after it (e.g. -determinism=false). Findings that are intentional are
// suppressed in the source with a justified directive:
//
//	//llbplint:allow <analyzer> -- <reason>
//
// A justified directive that no longer suppresses anything is itself a
// finding (dead-allow detection): stale suppressions rot into false
// documentation, so the driver fails until they are deleted.
//
// Grandfathered findings live in the committed baseline file (default
// lint.baseline, resolved relative to -C): findings whose
// file+analyzer+message appear there are reported as grandfathered and
// do not fail the run; anything new does. -write-baseline regenerates
// the file from the current findings.
//
// -fix applies the two mechanical autofixes in place (sorted-key map
// range rewrite, missing-justification stub); -diff prints the same
// patch without writing.
//
// Exit status: 0 clean (or baseline-covered), 1 new findings, 2 usage
// or load failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"llbp/internal/lint"
	"llbp/internal/lint/analysis"
	"llbp/internal/lint/load"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// jsonStep is one hop of a finding's evidence chain in -json output.
type jsonStep struct {
	File string `json:"file"`
	Line int    `json:"line"`
	Note string `json:"note"`
}

// jsonDiagnostic is the -json output record for one finding.
type jsonDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
	// Grandfathered marks findings covered by the baseline file; they
	// are reported but do not fail the run.
	Grandfathered bool `json:"grandfathered,omitempty"`
	// Path is the interprocedural evidence chain (source→sink for
	// detflow, root→write for fencecheck, the acquisition chain for
	// lockorder).
	Path []jsonStep `json:"path,omitempty"`
}

// baselineKey identifies a finding across runs: file and message are
// stable, line numbers are not.
func baselineKey(d jsonDiagnostic) string {
	return d.File + "\t" + d.Analyzer + "\t" + d.Message
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("llbplint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		dir       = fs.String("C", ".", "change to `dir` (the module root) before loading packages")
		jsonOut   = fs.Bool("json", false, "emit diagnostics as a JSON array")
		listAll   = fs.Bool("list", false, "list the analyzers and exit")
		baseFile  = fs.String("baseline", "lint.baseline", "grandfathered-findings `file` (relative to -C; missing file means empty baseline)")
		writeBase = fs.Bool("write-baseline", false, "rewrite the baseline file from the current findings and exit")
		doFix     = fs.Bool("fix", false, "apply the mechanical autofixes in place")
		doDiff    = fs.Bool("diff", false, "print the autofix patch without applying it")
	)
	enabled := map[string]*bool{}
	for _, a := range lint.All() {
		enabled[a.Name] = fs.Bool(a.Name, true, "enable the "+a.Name+" analyzer")
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *listAll {
		for _, a := range lint.All() {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	absDir, err := filepath.Abs(*dir)
	if err != nil {
		fmt.Fprintln(stderr, "llbplint:", err)
		return 2
	}

	pkgs, err := load.Targets(*dir, patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "llbplint:", err)
		return 2
	}
	if len(pkgs) == 0 {
		return 0
	}
	fset := pkgs[0].Fset // load.Targets checks every package into one FileSet

	// One suppression index across the whole load, so program analyzers
	// and the dead-allow check see every directive.
	var files []*ast.File
	for _, pkg := range pkgs {
		files = append(files, pkg.Files...)
	}
	sup := analysis.CollectSuppressions(fset, files)

	var diags []analysis.Diagnostic
	diags = append(diags, sup.Problems()...)
	for _, pkg := range pkgs {
		for _, a := range lint.All() {
			if a.Run == nil || !*enabled[a.Name] {
				continue
			}
			ds, err := analysis.Run(a, fset, pkg.Files, pkg.Types, pkg.TypesInfo, sup)
			if err != nil {
				fmt.Fprintln(stderr, "llbplint:", err)
				return 2
			}
			diags = append(diags, ds...)
		}
	}
	progPkgs := make([]*analysis.ProgramPkg, len(pkgs))
	for i, pkg := range pkgs {
		progPkgs[i] = &analysis.ProgramPkg{
			Path:      pkg.ImportPath,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
		}
	}
	for _, a := range lint.All() {
		if a.RunProgram == nil || !*enabled[a.Name] {
			continue
		}
		ds, err := analysis.RunProgram(a, fset, progPkgs, sup)
		if err != nil {
			fmt.Fprintln(stderr, "llbplint:", err)
			return 2
		}
		diags = append(diags, ds...)
	}
	// Dead-allow detection runs after every enabled analyzer has had
	// the chance to use each directive.
	diags = append(diags, sup.Stale(func(name string) bool {
		on, ok := enabled[name]
		return ok && *on
	})...)
	analysis.SortDiagnostics(fset, diags)

	all := make([]jsonDiagnostic, 0, len(diags))
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		jd := jsonDiagnostic{
			File:     relTo(absDir, pos.Filename),
			Line:     pos.Line,
			Column:   pos.Column,
			Analyzer: d.Category,
			Message:  d.Message,
		}
		for _, s := range d.Path {
			sp := fset.Position(s.Pos)
			jd.Path = append(jd.Path, jsonStep{File: relTo(absDir, sp.Filename), Line: sp.Line, Note: s.Note})
		}
		all = append(all, jd)
	}

	basePath := *baseFile
	if !filepath.IsAbs(basePath) {
		basePath = filepath.Join(absDir, basePath)
	}
	if *writeBase {
		if err := writeBaseline(basePath, all); err != nil {
			fmt.Fprintln(stderr, "llbplint:", err)
			return 2
		}
		fmt.Fprintf(stderr, "llbplint: wrote %d finding(s) to %s\n", len(all), *baseFile)
		return 0
	}
	if *doFix || *doDiff {
		return runFixes(absDir, all, *doFix, stdout, stderr)
	}

	base, err := readBaseline(basePath)
	if err != nil {
		fmt.Fprintln(stderr, "llbplint:", err)
		return 2
	}
	newCount, grandfathered := 0, 0
	for i := range all {
		key := baselineKey(all[i])
		if base[key] > 0 {
			base[key]--
			all[i].Grandfathered = true
			grandfathered++
		} else {
			newCount++
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(all); err != nil {
			fmt.Fprintln(stderr, "llbplint:", err)
			return 2
		}
	} else {
		for _, d := range all {
			tag := ""
			if d.Grandfathered {
				tag = " (grandfathered)"
			}
			fmt.Fprintf(stdout, "%s:%d:%d: %s: %s%s\n", d.File, d.Line, d.Column, d.Analyzer, d.Message, tag)
			for _, s := range d.Path {
				fmt.Fprintf(stdout, "\t%s:%d: %s\n", s.File, s.Line, s.Note)
			}
		}
	}
	if grandfathered > 0 {
		fmt.Fprintf(stderr, "llbplint: %d grandfathered finding(s) tracked in %s\n", grandfathered, *baseFile)
	}
	if newCount > 0 {
		fmt.Fprintf(stderr, "llbplint: %d new finding(s)\n", newCount)
		return 1
	}
	return 0
}

// relTo renders path relative to the analysis root with forward
// slashes, so baseline keys are stable across machines and working
// directories.
func relTo(root, path string) string {
	rel, err := filepath.Rel(root, path)
	if err != nil || strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(path)
	}
	return filepath.ToSlash(rel)
}

// readBaseline parses the baseline file into a key→count multiset. A
// missing file is an empty baseline.
func readBaseline(path string) (map[string]int, error) {
	base := map[string]int{}
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return base, nil
		}
		return nil, err
	}
	for _, line := range strings.Split(string(data), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		base[line]++
	}
	return base, nil
}

// writeBaseline renders the findings as sorted baseline lines.
func writeBaseline(path string, all []jsonDiagnostic) error {
	lines := make([]string, 0, len(all))
	for _, d := range all {
		lines = append(lines, baselineKey(d))
	}
	sort.Strings(lines)
	var b strings.Builder
	b.WriteString("# llbplint baseline: grandfathered findings (file<TAB>analyzer<TAB>message).\n")
	b.WriteString("# Regenerate with: go run ./cmd/llbplint -write-baseline ./...\n")
	for _, l := range lines {
		b.WriteString(l)
		b.WriteByte('\n')
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}
