// Package service is an injectable fixture: its import path carries the
// "service" segment, so failure timing must flow through injectable
// clocks and seeded randomness.
package service

import (
	"context"
	"math/rand"
	"time"
)

// BadWait blocks on the wall clock — flagged.
func BadWait() {
	time.Sleep(100 * time.Millisecond) // want `time\.Sleep blocks on the wall clock`
}

// BadJitter draws from the global auto-seeded RNG — flagged.
func BadJitter() int {
	return rand.Intn(100) // want `draws from the auto-seeded global RNG`
}

// GoodWait selects on a timer and the context: tests can cancel it, and
// nothing hides from the scheduler.
func GoodWait(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// GoodJitter owns a seeded generator; replayable from the seed.
func GoodJitter(seed int64) int {
	return rand.New(rand.NewSource(seed)).Intn(100)
}

// JustifiedSleep carries an in-code justification and is suppressed.
func JustifiedSleep() {
	time.Sleep(time.Millisecond) //llbplint:allow injectable -- fixture: demonstrating the suppression syntax
}

// Clocked reads the wall clock through an injected now func — the
// sanctioned pattern for lease arithmetic.
func Clocked(now func() time.Time, ttl time.Duration) time.Time {
	return now().Add(ttl)
}
