// Package report renders experiment results as aligned text tables (for
// terminals and EXPERIMENTS.md) and CSV (for external plotting).
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-aligned table builder.
type Table struct {
	Title   string
	Header  []string
	Rows    [][]string
	Caption string
}

// New returns a table with the given title and column headers.
func New(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// AddRow appends a row; values are formatted with %v, floats with 3
// decimals.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		case float32:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// widths computes per-column display widths.
func (t *Table) widths() []int {
	w := make([]int, len(t.Header))
	for i, h := range t.Header {
		w[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(w) && len(c) > w[i] {
				w[i] = len(c)
			}
		}
	}
	return w
}

// WriteText renders the table with aligned columns.
func (t *Table) WriteText(w io.Writer) error {
	widths := t.widths()
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "## %s\n\n", t.Title); err != nil {
			return err
		}
	}
	line := func(cells []string) string {
		parts := make([]string, len(widths))
		for i := range widths {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			if i == 0 {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = fmt.Sprintf("%*s", widths[i], c)
			}
		}
		return strings.Join(parts, "  ")
	}
	if _, err := fmt.Fprintln(w, line(t.Header)); err != nil {
		return err
	}
	rule := make([]string, len(widths))
	for i, n := range widths {
		rule[i] = strings.Repeat("-", n)
	}
	if _, err := fmt.Fprintln(w, strings.Join(rule, "  ")); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	if t.Caption != "" {
		if _, err := fmt.Fprintf(w, "\n%s\n", t.Caption); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// WriteCSV renders the table as CSV (no quoting — cells are plain
// identifiers and numbers).
func (t *Table) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, strings.Join(t.Header, ",")); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

// String renders the text form.
func (t *Table) String() string {
	var sb strings.Builder
	_ = t.WriteText(&sb)
	return sb.String()
}
