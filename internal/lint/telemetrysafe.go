package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"regexp"

	"llbp/internal/lint/analysis"
)

// TelemetrySafe enforces the observability layer's usage contract
// (DESIGN.md §7): instruments are nil-safe only through their methods,
// so outside the telemetry package itself they may never be touched by
// field access or constructed by composite literal — a Registry is the
// only factory. Literal instrument names passed to Registry.Counter/
// Gauge/Histogram/Series must be snake_case, the scheme the CI
// telemetrycheck gate keys on.
var TelemetrySafe = &analysis.Analyzer{
	Name: "telemetrysafe",
	Doc:  "telemetry instruments: methods only, Registry-constructed, snake_case names",
	Run:  runTelemetrySafe,
}

// instrumentTypes are the nil-safe instrument and factory types exported
// by internal/telemetry. Snapshot/DTO types are plain data and exempt.
var instrumentTypes = map[string]bool{
	"Counter": true, "Gauge": true, "Histogram": true,
	"Series": true, "Registry": true, "Tracer": true,
}

// registryFactories are the Registry methods taking an instrument name.
var registryFactories = map[string]bool{
	"Counter": true, "Gauge": true, "Histogram": true, "Series": true,
}

var snakeCaseRE = regexp.MustCompile(`^[a-z][a-z0-9]*(_[a-z0-9]+)*$`)

func runTelemetrySafe(pass *analysis.Pass) error {
	if lastSegment(pass.Pkg.Path()) == "telemetry" {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				if sel, ok := pass.TypesInfo.Selections[n]; ok && sel.Kind() == types.FieldVal {
					if name, ok := telemetryInstrument(sel.Recv()); ok {
						pass.Reportf(n.Sel.Pos(),
							"direct field access on telemetry.%s; instruments are nil-safe only through methods", name)
					}
				}
			case *ast.CompositeLit:
				if name, ok := telemetryInstrument(pass.TypesInfo.TypeOf(n)); ok {
					pass.Reportf(n.Pos(),
						"composite literal of telemetry.%s; obtain instruments from a Registry (nil-safety depends on it)", name)
				}
			case *ast.CallExpr:
				checkInstrumentName(pass, n)
			}
			return true
		})
	}
	return nil
}

// telemetryInstrument reports whether t (possibly behind pointers) is an
// instrument type declared in a package whose path ends in "telemetry".
func telemetryInstrument(t types.Type) (string, bool) {
	for {
		p, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || lastSegment(obj.Pkg().Path()) != "telemetry" {
		return "", false
	}
	if !instrumentTypes[obj.Name()] {
		return "", false
	}
	return obj.Name(), true
}

// checkInstrumentName validates literal names passed to Registry
// factory methods. Non-constant names (e.g. "provider_" + c.String())
// cannot be checked statically and are skipped.
func checkInstrumentName(pass *analysis.Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || len(call.Args) == 0 {
		return
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || !registryFactories[fn.Name()] {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return
	}
	if name, ok := telemetryInstrument(sig.Recv().Type()); !ok || name != "Registry" {
		return
	}
	tv, ok := pass.TypesInfo.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return
	}
	name := constant.StringVal(tv.Value)
	if !snakeCaseRE.MatchString(name) {
		pass.Reportf(call.Args[0].Pos(),
			"instrument name %q is not snake_case (want %s)", name, snakeCaseRE)
	}
}
