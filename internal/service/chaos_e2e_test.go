package service_test

// The chaos acceptance suite (ISSUE 6): for every injected failure class
// the completed job must stream NDJSON results byte-identical to an
// uninjected run of the same cells, and no cell may be executed to
// completion twice. Failures are injected deterministically through
// internal/chaos rules, so every one of these runs replays exactly.

import (
	"context"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"llbp/internal/chaos"
	"llbp/internal/experiments"
	"llbp/internal/harness"
	"llbp/internal/service"
	"llbp/internal/service/client"
	"llbp/internal/telemetry"
)

// startChaosDaemon is startDaemon with failure-domain knobs: a chaos
// injector, fast leases (so reclaim happens on test timescales) and any
// further option tweaks.
func startChaosDaemon(t *testing.T, dir string, workers int, inj *chaos.Injector, tweak func(*service.Options)) *daemon {
	t.Helper()
	reg := telemetry.NewRegistry()
	cellJ, err := harness.OpenJournal(filepath.Join(dir, "llbpd.journal"))
	if err != nil {
		t.Fatal(err)
	}
	cfg := experiments.Config{
		Warmup: 1, Measure: 1,
		Parallelism: workers,
		Journal:     cellJ,
		Telemetry:   reg,
	}
	var srv *service.Server
	cfg.CellProgress = func(key string, processed, total uint64) {
		if srv != nil {
			srv.CellProgress(key, processed, total)
		}
	}
	h := experiments.NewHarness(cfg)
	opt := service.Options{
		Runner:             h,
		Workers:            workers,
		QueueDepth:         8,
		LeaseTTL:           300 * time.Millisecond,
		SupervisorInterval: 50 * time.Millisecond,
		Chaos:              inj,
		Registry:           reg,
		JobLogPath:         filepath.Join(dir, "llbpd.journal.jobs"),
	}
	if tweak != nil {
		tweak(&opt)
	}
	srv, err = service.New(opt)
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	hs := httptest.NewServer(srv.Handler())
	return &daemon{srv: srv, hs: hs, cl: client.New(hs.URL), reg: reg, cellJ: cellJ}
}

// counter reads one service counter from the daemon's registry.
func (d *daemon) counter(name string) uint64 {
	return d.reg.Snapshot().Counters[name]
}

// collectStream follows the job to its done event, failing on any cell
// error, and returns the per-key cell values plus how many cell events
// arrived (the double-emission check: must equal the cell count).
func collectStream(t *testing.T, ctx context.Context, d *daemon, id string) (map[string][]byte, int) {
	t.Helper()
	got := make(map[string][]byte)
	cellEvents := 0
	var final *service.StreamEvent
	err := d.cl.Stream(ctx, id, true, func(ev service.StreamEvent) error {
		switch ev.Type {
		case "cell":
			cellEvents++
			if ev.Error != "" {
				t.Errorf("cell %s failed under chaos: %s", ev.Key, ev.Error)
			}
			got[ev.Key] = append([]byte(nil), ev.Value...)
		case "done":
			final = &ev
		}
		return nil
	})
	if err != nil {
		t.Fatalf("stream: %v", err)
	}
	if final == nil || final.State != service.StateDone {
		t.Fatalf("final event = %+v, want done", final)
	}
	return got, cellEvents
}

// assertByteIdentical compares every streamed cell value against the
// clean local reference — the acceptance criterion.
func assertByteIdentical(t *testing.T, cells []experiments.CellSpec, got map[string][]byte, ref map[string][]byte) {
	t.Helper()
	for _, cs := range cells {
		key := cs.Key()
		if string(got[key]) != string(ref[key]) {
			t.Errorf("cell %s: bytes under chaos differ from the clean run\n chaos: %s\n clean: %s",
				key, got[key], ref[key])
		}
	}
}

// TestChaosWorkerPanicRecovers kills the worker (injected panic) at its
// first cell pickup: the panic is contained, the abandoned lease is
// reclaimed, and the re-dispatched job completes with results
// byte-identical to a clean run — no cell evented twice.
func TestChaosWorkerPanicRecovers(t *testing.T) {
	cells := e2eCells()
	ref := localReference(t, cells)
	inj := chaos.New(chaos.Rule{Hook: chaos.WorkerPanic, At: 1})
	d := startChaosDaemon(t, t.TempDir(), 1, inj, nil)
	defer d.stop(t)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	st, err := d.cl.Submit(ctx, service.JobRequest{Schema: service.JobSchema, Cells: cells})
	if err != nil {
		t.Fatal(err)
	}
	got, events := collectStream(t, ctx, d, st.ID)
	assertByteIdentical(t, cells, got, ref)
	if events != len(cells) {
		t.Errorf("%d cell events for %d cells — chaos double-emitted", events, len(cells))
	}
	if got := d.counter("service_worker_panics"); got != 1 {
		t.Errorf("service_worker_panics = %d, want 1", got)
	}
	if got := d.counter("service_leases_reclaimed"); got != 1 {
		t.Errorf("service_leases_reclaimed = %d, want 1", got)
	}
}

// TestChaosWorkerStallReclaimed wedges the worker (injected stall) at
// cell pickup: it holds the lease without progress until the supervisor
// revokes it, then the re-dispatch completes byte-identically.
func TestChaosWorkerStallReclaimed(t *testing.T) {
	cells := e2eCells()
	ref := localReference(t, cells)
	inj := chaos.New(chaos.Rule{Hook: chaos.WorkerStall, At: 1})
	d := startChaosDaemon(t, t.TempDir(), 1, inj, nil)
	defer d.stop(t)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	st, err := d.cl.Submit(ctx, service.JobRequest{Schema: service.JobSchema, Cells: cells})
	if err != nil {
		t.Fatal(err)
	}
	got, events := collectStream(t, ctx, d, st.ID)
	assertByteIdentical(t, cells, got, ref)
	if events != len(cells) {
		t.Errorf("%d cell events for %d cells — chaos double-emitted", events, len(cells))
	}
	if got := d.counter("service_leases_reclaimed"); got != 1 {
		t.Errorf("service_leases_reclaimed = %d, want 1", got)
	}
}

// TestChaosStreamDropClientResume severs the results stream under the
// client mid-replay: the client must reconnect with ?from=<last seq> and
// deliver every persisted event exactly once, byte-identical to the
// clean run.
func TestChaosStreamDropClientResume(t *testing.T) {
	cells := e2eCells()
	ref := localReference(t, cells)
	// Rule fires on the 2nd stream write: the finished job's replay is
	// cut after one cell event, mid-stream.
	inj := chaos.New(chaos.Rule{Hook: chaos.StreamDrop, At: 2})
	d := startChaosDaemon(t, t.TempDir(), 1, inj, nil)
	defer d.stop(t)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	st, err := d.cl.Submit(ctx, service.JobRequest{Schema: service.JobSchema, Cells: cells})
	if err != nil {
		t.Fatal(err)
	}
	// Let the job finish without touching the stream (status polls don't
	// consult the stream.drop hook), so the drop lands deterministically
	// on the replay below.
	deadline := time.Now().Add(55 * time.Second)
	for {
		jst, err := d.cl.Status(ctx, st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if jst.State.Terminal() {
			if jst.State != service.StateDone {
				t.Fatalf("job finished %s", jst.State)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job did not finish in time")
		}
		time.Sleep(20 * time.Millisecond)
	}

	got := make(map[string][]byte)
	seen := make(map[uint64]int)
	err = d.cl.Stream(ctx, st.ID, false, func(ev service.StreamEvent) error {
		if ev.Seq > 0 {
			seen[ev.Seq]++
		}
		if ev.Type == "cell" {
			got[ev.Key] = append([]byte(nil), ev.Value...)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("stream with drop+resume: %v", err)
	}
	assertByteIdentical(t, cells, got, ref)
	// Exactly-once delivery across the reconnect: seqs 1..N each once.
	for seq := uint64(1); seq <= uint64(len(cells)+1); seq++ {
		if seen[seq] != 1 {
			t.Errorf("seq %d delivered %d times across resume, want exactly once", seq, seen[seq])
		}
	}
	if got := d.counter("service_streams_chaos_dropped"); got != 1 {
		t.Errorf("service_streams_chaos_dropped = %d, want 1", got)
	}
}

// TestChaosJournalTearRestart tears a job-log write mid-record (the
// process-killed-between-write-and-fsync footprint), then restarts the
// daemon on the same files: the torn tail must be repaired, the job
// resumed, and every cell restored from the cell journal — executed
// once, byte-identical.
func TestChaosJournalTearRestart(t *testing.T) {
	cells := e2eCells()
	ref := localReference(t, cells)
	dir := t.TempDir()
	// Job-log writes for one fresh job: 1 = submit, 2 = running, 3 = the
	// terminal record. Tearing the 3rd leaves the job non-terminal on
	// disk while it finished in memory.
	inj := chaos.New(chaos.Rule{Hook: chaos.JournalTear, At: 3})
	d1 := startChaosDaemon(t, dir, 1, inj, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	st, err := d1.cl.Submit(ctx, service.JobRequest{Schema: service.JobSchema, Cells: cells})
	if err != nil {
		t.Fatal(err)
	}
	got1, _ := collectStream(t, ctx, d1, st.ID)
	assertByteIdentical(t, cells, got1, ref)
	if n := inj.Count(chaos.JournalTear); n < 3 {
		t.Fatalf("job log saw %d writes, tear rule never fired", n)
	}
	// SIGKILL-style stop: no drain, no clean journal close.
	d1.srv.Kill()
	d1.hs.Close()

	// Restart chaos-free on the same files. The torn terminal record is
	// dropped by the journal's tail repair, so the job comes back queued
	// and re-runs — against a cell journal that already holds every cell.
	d2 := startDaemon(t, dir, 1)
	defer d2.stop(t)
	if jst, ok := d2.srv.Job(st.ID); !ok || jst.State != service.StateQueued {
		t.Fatalf("after torn terminal record, resumed job = %+v, %v; want queued", jst, ok)
	}
	got2, events := collectStream(t, ctx, d2, st.ID)
	assertByteIdentical(t, cells, got2, ref)
	if events != len(cells) {
		t.Errorf("%d cell events after restart for %d cells", events, len(cells))
	}
	// Exactly-once: every cell served from the journal, none recomputed.
	snap := d2.reg.Snapshot()
	if hits := snap.Counters["harness_journal_hits"]; hits != uint64(len(cells)) {
		t.Errorf("harness_journal_hits after restart = %d, want %d (cells must not re-execute)", hits, len(cells))
	}
}

// TestChaosHeartbeatDelay suppresses the lease heartbeats carried by
// progress ticks while a long cell simulates, pushing the lease past its
// TTL mid-cell: the supervisor reclaims it, the in-flight simulation is
// cancelled before emitting anything, and a later dispatch — once the
// suppression budget is exhausted and renewals flow again — finishes the
// job byte-identically.
func TestChaosHeartbeatDelay(t *testing.T) {
	// One large cell (hundreds of milliseconds, i.e. several TTLs) so
	// progress ticks — and thus suppressed heartbeats — happen while it
	// runs.
	cells := []experiments.CellSpec{
		{Workload: "Tomcat", Predictor: "llbp", Warmup: 2_000, Measure: 600_000},
	}
	ref := localReference(t, cells)
	// A finite suppression budget: the first dispatches age out and are
	// reclaimed; once the budget is spent, progress ticks renew the lease
	// again and the job converges. (An infinite budget would model a
	// permanently partitioned worker — every dispatch reclaimed forever.)
	//
	// Sizing: progress ticks arrive every 4096 branches — ~5ms at native
	// speed, ~60ms under -race. The TTL must exceed several race-slowed
	// ticks (or renewals can't keep any lease alive and no dispatch ever
	// finishes), while the budget must span at least TTL+supervisor-lag
	// worth of native-speed ticks (or suppression ends before the first
	// lease can age out). 200ms / 120 ticks satisfies both with margin.
	var rules []chaos.Rule
	for i := uint64(1); i <= 120; i++ {
		rules = append(rules, chaos.Rule{Hook: chaos.HeartbeatSkip, At: i})
	}
	inj := chaos.New(rules...)
	d := startChaosDaemon(t, t.TempDir(), 1, inj, func(o *service.Options) {
		o.LeaseTTL = 200 * time.Millisecond
		o.SupervisorInterval = 40 * time.Millisecond
	})
	defer d.stop(t)
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	st, err := d.cl.Submit(ctx, service.JobRequest{Schema: service.JobSchema, Cells: cells})
	if err != nil {
		t.Fatal(err)
	}
	got, events := collectStream(t, ctx, d, st.ID)
	assertByteIdentical(t, cells, got, ref)
	if events != len(cells) {
		t.Errorf("%d cell events for %d cells", events, len(cells))
	}
	if got := d.counter("service_leases_reclaimed"); got == 0 {
		t.Error("suppressed heartbeats never aged the lease into a reclaim")
	}
}
