// Package load turns Go package patterns into parsed, type-checked
// packages for the llbplint analyzers, using only the standard library
// and the go toolchain already present in the build environment.
//
// It shells out to `go list -export -deps -json`, which compiles (or
// reuses from the build cache) export data for every dependency, then
// parses the target packages from source and type-checks them with the
// stock gc importer pointed at that export data. This is the classic
// pre-x/tools loading strategy and needs no network access.
//
// Only non-test Go files are analyzed: the invariants llbplint enforces
// (determinism, masking, panic-freedom) are production-code contracts,
// and test files legitimately use wall clocks, unordered maps and
// panic-recovery idioms.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// A Package is one parsed, type-checked target package.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	TypesInfo  *types.Info
}

// listedPkg mirrors the `go list -json` fields we consume.
type listedPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Name       string
	Error      *struct{ Err string }
}

// list runs `go list -export -deps -json` for patterns in dir, returning
// the target packages (those matching the patterns) and an export-data
// index covering every reachable dependency.
func list(dir string, patterns []string) ([]listedPkg, map[string]string, error) {
	args := append([]string{
		"list", "-export", "-deps",
		"-json=ImportPath,Dir,Export,GoFiles,Standard,DepOnly,Name,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, nil, fmt.Errorf("load: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	exports := map[string]string{}
	var targets []listedPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, nil, fmt.Errorf("load: decoding go list output: %w", err)
		}
		if p.Error != nil {
			return nil, nil, fmt.Errorf("load: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			targets = append(targets, p)
		}
	}
	return targets, exports, nil
}

// ExportIndex returns an import-path → export-data-file index covering
// the given packages and all their dependencies. It is used by the
// analysistest fixture loader to resolve standard-library imports.
func ExportIndex(dir string, pkgs ...string) (map[string]string, error) {
	if len(pkgs) == 0 {
		return map[string]string{}, nil
	}
	_, exports, err := list(dir, pkgs)
	return exports, err
}

// Importer returns a types.Importer resolving import paths through the
// given export-data index.
func Importer(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("load: no export data for %q", path)
		}
		return os.Open(f)
	})
}

// NewInfo returns a types.Info with every map the analyzers consult.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
}

// Targets loads, parses (with comments) and type-checks the module
// packages matching patterns, rooted at dir.
func Targets(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	targets, exports, err := list(dir, patterns)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	imp := Importer(fset, exports)
	var out []*Package
	for _, tp := range targets {
		if len(tp.GoFiles) == 0 {
			continue
		}
		var files []*ast.File
		for _, name := range tp.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(tp.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("load: %w", err)
			}
			files = append(files, f)
		}
		info := NewInfo()
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(tp.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("load: type-checking %s: %w", tp.ImportPath, err)
		}
		out = append(out, &Package{
			ImportPath: tp.ImportPath,
			Dir:        tp.Dir,
			Fset:       fset,
			Files:      files,
			Types:      tpkg,
			TypesInfo:  info,
		})
	}
	return out, nil
}
