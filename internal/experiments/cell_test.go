package experiments

import (
	"context"
	"encoding/json"
	"sync/atomic"
	"testing"

	"llbp/internal/workload"
)

// TestCellSpecKeyRoundTrip: Key() must match the historical journal key
// format exactly (journals written by earlier releases must keep
// resolving), and ParseCellKey must invert it.
func TestCellSpecKeyRoundTrip(t *testing.T) {
	cs := CellSpec{Workload: "Tomcat", Predictor: "llbp", Warmup: 200_000, Measure: 1_000_000}
	if got, want := cs.Key(), "Tomcat|llbp|200000|1000000"; got != want {
		t.Fatalf("Key() = %q, want %q", got, want)
	}
	back, err := ParseCellKey(cs.Key())
	if err != nil || back != cs {
		t.Errorf("ParseCellKey round-trip = %+v, %v", back, err)
	}
	for _, bad := range []string{"", "a|b", "a|b|x|1", "a|b|1|x", "a|b|1|1|extra"} {
		if _, err := ParseCellKey(bad); err == nil {
			t.Errorf("ParseCellKey(%q) accepted", bad)
		}
	}
}

// TestSpecByKey: every registered key builds a working predictor spec
// whose Key matches the registry key; unknown keys error.
func TestSpecByKey(t *testing.T) {
	keys := SpecKeys()
	if len(keys) < 9 {
		t.Fatalf("SpecKeys() = %v, want at least the 9 standard specs", keys)
	}
	for _, k := range keys {
		ps, err := SpecByKey(k)
		if err != nil {
			t.Fatalf("SpecByKey(%s): %v", k, err)
		}
		if ps.Key != k {
			t.Errorf("spec %q reports key %q", k, ps.Key)
		}
		if ps.Build == nil {
			t.Errorf("spec %q has no builder", k)
		}
	}
	if _, err := SpecByKey("tage9000"); err == nil {
		t.Error("unknown spec key must error")
	}
}

// TestCellSpecValidate: bad workloads, predictors and budgets are
// rejected before any simulation starts.
func TestCellSpecValidate(t *testing.T) {
	good := CellSpec{Workload: "Tomcat", Predictor: "64k", Warmup: 10, Measure: 100}
	if err := good.Validate(); err != nil {
		t.Errorf("valid cell rejected: %v", err)
	}
	for _, bad := range []CellSpec{
		{Workload: "NoSuch", Predictor: "64k", Measure: 100},
		{Workload: "Tomcat", Predictor: "nope", Measure: 100},
		{Workload: "Tomcat", Predictor: "64k", Measure: 0},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("cell %+v accepted", bad)
		}
	}
}

// TestRunCellMatchesRunBudget: RunCell and the classic Run path must
// produce the same memoized cell — same key, same cached value — so the
// served and local worlds agree on cell identity.
func TestRunCellMatchesRunBudget(t *testing.T) {
	h := NewHarness(Config{Warmup: 2_000, Measure: 10_000})
	cs := CellSpec{Workload: "Kafka", Predictor: "64k", Warmup: 2_000, Measure: 10_000}
	out1, err := h.RunCell(context.Background(), cs)
	if err != nil {
		t.Fatal(err)
	}
	wl, err := workload.ByName("Kafka")
	if err != nil {
		t.Fatal(err)
	}
	out2, err := h.Run(wl, Spec64K())
	if err != nil {
		t.Fatal(err)
	}
	if out1 != out2 {
		t.Error("RunCell and Run must share one memoized cell")
	}
	if out1.Res.MPKI <= 0 {
		t.Errorf("MPKI = %v, want positive", out1.Res.MPKI)
	}
}

// TestRemoteBackend: with Cfg.Remote set, headline cells are computed by
// the remote runner (exactly once per unique cell, memoized), and the
// results flow through the normal cache.
func TestRemoteBackend(t *testing.T) {
	var calls atomic.Int32
	local := NewHarness(Config{Warmup: 2_000, Measure: 10_000})
	cfg := Config{Warmup: 2_000, Measure: 10_000}
	cfg.Remote = func(ctx context.Context, spec CellSpec) (*RunOutput, error) {
		calls.Add(1)
		return local.RunCell(ctx, spec)
	}
	h := NewHarness(cfg)
	wl, err := workload.ByName("Kafka")
	if err != nil {
		t.Fatal(err)
	}
	out1, err := h.Run(wl, Spec64K())
	if err != nil {
		t.Fatal(err)
	}
	out2, err := h.Run(wl, Spec64K())
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 1 {
		t.Errorf("remote called %d times for one unique cell, want 1 (memoized)", calls.Load())
	}
	if out1 != out2 {
		t.Error("repeated remote cell must hit the memo cache")
	}

	// The remote value must round-trip to the same bytes a local run
	// journals — the byte-identity contract of served execution.
	ref, err := local.RunCell(context.Background(), CellSpec{Workload: "Kafka", Predictor: "64k", Warmup: 2_000, Measure: 10_000})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(out1)
	b, _ := json.Marshal(ref)
	if string(a) != string(b) {
		t.Error("remote and local cell values must serialize identically")
	}
}

// TestCellProgress: locally simulated cells report periodic progress
// with the cell key and a final processed count equal to the budget.
func TestCellProgress(t *testing.T) {
	type tick struct {
		key              string
		processed, total uint64
	}
	var ticks []tick
	cfg := Config{Warmup: 2_000, Measure: 10_000}
	cfg.CellProgress = func(key string, processed, total uint64) {
		ticks = append(ticks, tick{key, processed, total})
	}
	h := NewHarness(cfg)
	cs := CellSpec{Workload: "Kafka", Predictor: "64k", Warmup: 2_000, Measure: 10_000}
	if _, err := h.RunCell(context.Background(), cs); err != nil {
		t.Fatal(err)
	}
	if len(ticks) == 0 {
		t.Fatal("no progress ticks for a 12k-branch cell")
	}
	for i, tk := range ticks {
		if tk.key != cs.Key() || tk.total != 12_000 {
			t.Fatalf("tick %d = %+v, want key %s total 12000", i, tk, cs.Key())
		}
		if i > 0 && tk.processed <= ticks[i-1].processed {
			t.Fatalf("progress not monotonic at tick %d: %d then %d", i, ticks[i-1].processed, tk.processed)
		}
	}
}
