// Package gshare implements the classic gshare predictor (McFarling): a
// single table of 2-bit counters indexed by the branch PC XORed with the
// global history. The paper's related work (§VIII) contrasts TAGE-class
// designs with such single-table, fixed-history predictors — Jiménez's
// latency study applied its pre-selection technique to exactly this
// design. It serves here as a pre-TAGE baseline that quantifies how much
// of the server-workload problem TAGE itself already solves.
package gshare

import (
	"fmt"

	"llbp/internal/assert"
	"llbp/internal/predictor"
	"llbp/internal/trace"
)

// Config sizes the predictor.
type Config struct {
	// LogSize is log2 of the counter table (2-bit counters); 18 gives a
	// 64KiB table.
	LogSize int
	// HistBits is the global-history length XORed into the index.
	HistBits int
}

// Default returns the 64KiB-class configuration.
func Default() Config { return Config{LogSize: 18, HistBits: 16} }

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.LogSize < 4 || c.LogSize > 26 {
		return fmt.Errorf("gshare: logSize %d out of range [4,26]", c.LogSize)
	}
	if c.HistBits < 1 || c.HistBits > c.LogSize {
		return fmt.Errorf("gshare: histBits %d out of range [1,%d]", c.HistBits, c.LogSize)
	}
	return nil
}

// Predictor is a gshare instance implementing predictor.Predictor.
type Predictor struct {
	cfg  Config
	ctrs []uint8 // 2-bit saturating counters
	ghr  uint64

	lastIdx uint32
	lastPC  uint64
}

var _ predictor.Predictor = (*Predictor)(nil)

// New builds a gshare predictor.
func New(cfg Config) (*Predictor, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	p := &Predictor{cfg: cfg, ctrs: make([]uint8, 1<<uint(cfg.LogSize))}
	// Weakly taken initial state avoids a cold all-not-taken bias.
	for i := range p.ctrs {
		p.ctrs[i] = 2
	}
	return p, nil
}

// Name implements predictor.Predictor.
func (p *Predictor) Name() string {
	return fmt.Sprintf("gshare-%dKB", (len(p.ctrs)*2)/8/1024)
}

func (p *Predictor) index(pc uint64) uint32 {
	h := p.ghr & (uint64(1)<<uint(p.cfg.HistBits) - 1)
	return uint32(((pc >> 2) ^ h) & (uint64(len(p.ctrs)) - 1))
}

// Predict implements predictor.Predictor.
func (p *Predictor) Predict(pc uint64) bool {
	p.lastPC = pc
	p.lastIdx = p.index(pc)
	return p.ctrs[p.lastIdx] >= 2
}

// Update implements predictor.Predictor. Calling it for a pc that was
// not the last Predict violates the harness contract; debug builds
// (-tags llbpdebug) panic, release builds train the stale counter.
func (p *Predictor) Update(pc uint64, taken bool) {
	if pc != p.lastPC {
		assert.Failf("gshare: Update(%#x) without matching Predict (last %#x)", pc, p.lastPC)
	}
	c := p.ctrs[p.lastIdx]
	if taken {
		if c < 3 {
			p.ctrs[p.lastIdx] = c + 1
		}
	} else if c > 0 {
		p.ctrs[p.lastIdx] = c - 1
	}
	p.push(taken)
}

// TrackOther implements predictor.Predictor.
func (p *Predictor) TrackOther(pc, target uint64, t trace.BranchType) {
	_ = pc
	_ = target
	_ = t
	p.push(true)
}

func (p *Predictor) push(taken bool) {
	p.ghr <<= 1
	if taken {
		p.ghr |= 1
	}
}

// StorageBits returns the table cost in bits.
func (p *Predictor) StorageBits() int { return len(p.ctrs) * 2 }

var _ predictor.Forkable = (*Predictor)(nil)

// Fork implements predictor.Forkable (the clock is ignored: gshare is
// latency-free). Call at a branch boundary.
func (p *Predictor) Fork(clock *predictor.Clock) predictor.Predictor {
	_ = clock
	out := *p
	out.ctrs = append([]uint8(nil), p.ctrs...)
	return &out
}
