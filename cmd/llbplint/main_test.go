package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestRunCleanRepo drives the whole pipeline — go list, export-data
// import, type checking, all four analyzers — against real repo packages
// and requires a clean exit. This is the same contract CI enforces over
// ./... on every push.
func TestRunCleanRepo(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-C", "../..", "./internal/history", "./internal/stats"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("run exited %d\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("clean run produced output:\n%s", stdout.String())
	}
}

func TestRunJSONFindings(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-C", "../../internal/lint/testdata/src/lib", "-json", "."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("run on fixture exited %d, want 1 (findings)\nstderr:\n%s", code, stderr.String())
	}
	var diags []struct {
		File     string `json:"file"`
		Line     int    `json:"line"`
		Analyzer string `json:"analyzer"`
		Message  string `json:"message"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &diags); err != nil {
		t.Fatalf("parsing -json output: %v\n%s", err, stdout.String())
	}
	if len(diags) == 0 {
		t.Fatal("no diagnostics decoded from fixture package")
	}
	for _, d := range diags {
		if d.Analyzer != "nopanic" {
			t.Errorf("unexpected analyzer %q in lib fixture: %s", d.Analyzer, d.Message)
		}
		if d.File == "" || d.Line == 0 {
			t.Errorf("diagnostic missing position: %+v", d)
		}
	}
}

func TestRunDisableFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-C", "../../internal/lint/testdata/src/lib", "-nopanic=false", "."}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("run with -nopanic=false exited %d\nstdout:\n%s\nstderr:\n%s",
			code, stdout.String(), stderr.String())
	}
}

func TestRunList(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("run -list exited %d", code)
	}
	for _, name := range []string{"determinism", "bitmask", "telemetrysafe", "nopanic"} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list output missing analyzer %q:\n%s", name, stdout.String())
		}
	}
}

func TestRunBadPattern(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-C", "../..", "./does/not/exist"}, &stdout, &stderr); code != 2 {
		t.Fatalf("run on bad pattern exited %d, want 2", code)
	}
}
