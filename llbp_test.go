package llbp

import (
	"os"
	"testing"

	"llbp/internal/sim"
	"llbp/internal/trace"
	"llbp/internal/workload"
)

func TestNewBaselineAllSizes(t *testing.T) {
	for s := Size64K; s <= SizeInfTSL; s++ {
		p, err := NewBaseline(s)
		if err != nil {
			t.Errorf("NewBaseline(%d): %v", s, err)
			continue
		}
		if p.Name() == "" {
			t.Errorf("size %d has no name", s)
		}
	}
	if _, err := NewBaseline(Size(99)); err == nil {
		t.Error("unknown size must error")
	}
}

func TestNewLLBP(t *testing.T) {
	p, clock, err := NewLLBP()
	if err != nil {
		t.Fatal(err)
	}
	if p == nil || clock == nil {
		t.Fatal("nil predictor or clock")
	}
	if p.Name() != "LLBP" {
		t.Errorf("Name = %q", p.Name())
	}
	bad := DefaultLLBPConfig()
	bad.W = 0
	if _, _, err := NewLLBPWithConfig(bad); err == nil {
		t.Error("invalid config must error")
	}
}

func TestWorkloadAccess(t *testing.T) {
	if len(Workloads()) != 14 {
		t.Error("catalog must have 14 workloads")
	}
	if _, err := Workload("Tomcat"); err != nil {
		t.Error(err)
	}
	if _, err := Workload("zzz"); err == nil {
		t.Error("unknown workload must error")
	}
	p := Workloads()[0].Params()
	p.Name = "copy"
	if _, err := NewWorkload(p); err != nil {
		t.Errorf("NewWorkload from catalog params: %v", err)
	}
}

// TestSimulateEndToEnd: the headline integration — LLBP must beat the 64K
// baseline on a context-heavy workload at small scale.
func TestSimulateEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	wl, err := Workload("Tomcat")
	if err != nil {
		t.Fatal(err)
	}
	base, err := NewBaseline(Size64K)
	if err != nil {
		t.Fatal(err)
	}
	baseRes, err := Simulate(wl, base, SimOptions{WarmupBranches: 100_000, MeasureBranches: 400_000})
	if err != nil {
		t.Fatal(err)
	}
	pred, clock, err := NewLLBP()
	if err != nil {
		t.Fatal(err)
	}
	llbpRes, err := Simulate(wl, pred, SimOptions{WarmupBranches: 100_000, MeasureBranches: 400_000, Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	if baseRes.MPKI <= 0 || llbpRes.MPKI <= 0 {
		t.Fatal("MPKI not computed")
	}
	if llbpRes.MPKI >= baseRes.MPKI {
		t.Errorf("LLBP (%.3f) must beat 64K TSL (%.3f) on Tomcat", llbpRes.MPKI, baseRes.MPKI)
	}
	if s := llbpRes.Speedup(baseRes); s <= 1 {
		t.Errorf("LLBP speedup = %.4f, want > 1", s)
	}
}

// TestCapacityOrdering: the paper's central capacity result at small
// scale — more capacity, fewer misses; Inf best.
func TestCapacityOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	wl, err := Workload("Tomcat")
	if err != nil {
		t.Fatal(err)
	}
	mpki := func(s Size) float64 {
		p, err := NewBaseline(s)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Simulate(wl, p, SimOptions{WarmupBranches: 100_000, MeasureBranches: 400_000})
		if err != nil {
			t.Fatal(err)
		}
		return res.MPKI
	}
	m64, m512, mInf := mpki(Size64K), mpki(Size512K), mpki(SizeInfTSL)
	if !(m64 > m512 && m512 > mInf) {
		t.Errorf("capacity ordering violated: 64K=%.3f 512K=%.3f Inf=%.3f", m64, m512, mInf)
	}
}

func TestRunExperimentFacade(t *testing.T) {
	h := NewExperimentHarness()
	tables, err := RunExperiment(h, "table2")
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) == 0 {
		t.Error("no tables")
	}
	if _, err := RunExperiment(h, "bogus"); err == nil {
		t.Error("unknown experiment must error")
	}
}

func TestExperimentsRegistryExposed(t *testing.T) {
	if len(Experiments()) < 16 {
		t.Errorf("registry has %d experiments", len(Experiments()))
	}
}

// Compile-time interface checks for the facade's return types.
var _ = workload.Params{}

// TestTraceFileEquivalence: simulating from a written trace file must be
// bit-identical to simulating the live generator — the end-to-end
// guarantee behind cmd/tracegen + llbpsim -trace.
func TestTraceFileEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	wl, err := Workload("Kafka")
	if err != nil {
		t.Fatal(err)
	}
	const total = 250_000
	path := t.TempDir() + "/kafka.llbptrc"
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w, err := trace.NewWriter(f, wl.Name())
	if err != nil {
		t.Fatal(err)
	}
	r := &trace.LimitReader{R: wl.Open(), Max: total}
	var b trace.Branch
	for {
		if err := r.Read(&b); err != nil {
			if trace.IsEOF(err) {
				break
			}
			t.Fatal(err)
		}
		if err := w.Write(&b); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	fileSrc, err := trace.NewFileSource(path)
	if err != nil {
		t.Fatal(err)
	}
	run := func(src trace.Source) *sim.Result {
		p, err := NewBaseline(Size64K)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Simulate(src, p, SimOptions{WarmupBranches: 50_000, MeasureBranches: 190_000})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	live := run(wl)
	disk := run(fileSrc)
	if live.Mispredicts != disk.Mispredicts || live.Instructions != disk.Instructions {
		t.Errorf("trace-file replay diverged: live %d/%d vs disk %d/%d mispredicts/instructions",
			live.Mispredicts, live.Instructions, disk.Mispredicts, disk.Instructions)
	}
}
