package bimodal

import (
	"math/rand"
	"reflect"
	"testing"
)

func driveBimodal(t *Table, seed int64, n int) {
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		pc := uint64(0x4000 + rng.Intn(64)*4)
		t.Update(pc, rng.Intn(3) != 0)
	}
}

// TestForkEquivalence: fork-then-diverge must match two independently
// warmed twins byte for byte.
func TestForkEquivalence(t *testing.T) {
	const warm, diverge = 4000, 3000
	parent, twinP, twinC := New(12), New(12), New(12)
	driveBimodal(parent, 11, warm)
	driveBimodal(twinP, 11, warm)
	driveBimodal(twinC, 11, warm)

	child := parent.Fork()

	driveBimodal(parent, 22, diverge)
	driveBimodal(twinP, 22, diverge)
	driveBimodal(child, 33, diverge)
	driveBimodal(twinC, 33, diverge)

	if !reflect.DeepEqual(parent, twinP) {
		t.Error("parent state not byte-identical to unforked twin")
	}
	if !reflect.DeepEqual(child, twinC) {
		t.Error("child state not byte-identical to independently warmed twin")
	}
}
