package cache

import (
	"reflect"
	"testing"

	"llbp/internal/trace"
)

// TestHandleTail: a tail view replays exactly the suffix of the handle's
// snapshot, via both Read and ReadBatch, and degenerate skips behave
// (skip 0 = the handle itself; skip past the end = immediate EOF).
func TestHandleTail(t *testing.T) {
	src := newKeyedSource("tail", 5, 1000)
	c := New(1 << 20)
	hd, err := c.Acquire(src, 1000)
	if err != nil {
		t.Fatal(err)
	}
	defer hd.Release()

	for _, skip := range []uint64{1, 37, 999, 1000} {
		tail := hd.Tail(skip)
		if tail.Name() != src.Name() {
			t.Fatalf("tail renamed the source: %q", tail.Name())
		}
		got := drain(t, tail)
		want := src.branches[skip:]
		if len(want) == 0 {
			if len(got) != 0 {
				t.Fatalf("skip=%d: want empty stream, got %d branches", skip, len(got))
			}
			continue
		}
		if !reflect.DeepEqual(got, []trace.Branch(want)) {
			t.Fatalf("skip=%d: tail replay diverged from snapshot suffix", skip)
		}
		// Batch path too.
		br := tail.(trace.BatchSource).OpenBatch()
		buf := make([]trace.Branch, 256)
		var batched []trace.Branch
		for {
			n, err := br.ReadBatch(buf)
			batched = append(batched, buf[:n]...)
			if err != nil {
				if !trace.IsEOF(err) {
					t.Fatal(err)
				}
				break
			}
		}
		if !reflect.DeepEqual(batched, []trace.Branch(want)) {
			t.Fatalf("skip=%d: batched tail replay diverged", skip)
		}
	}

	if hd.Tail(0) != trace.Source(hd) {
		t.Error("Tail(0) should return the handle itself")
	}
	if got := hd.Tail(5000).(*tailView); got.Len() != 0 {
		t.Errorf("skip past end: want empty view, got Len=%d", got.Len())
	}
}
