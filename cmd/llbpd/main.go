// Command llbpd is the simulation service daemon: it serves the
// llbp-job/1 HTTP API (submit/status/stream/cancel), executes cells on a
// bounded worker pool through the fault-tolerant experiment harness, and
// journals both completed cells and job state so a killed daemon resumes
// exactly-once.
//
// Usage:
//
//	llbpd -addr 127.0.0.1:8344 -j 4 -queue-depth 32 \
//	      -journal llbpd.journal -drain-timeout 30s
//
// With -addr :0 the kernel picks a free port; the bound address is
// printed on stdout ("llbpd listening on ...") and, with -addr-file,
// written to a file for scripts. SIGINT/SIGTERM starts a graceful drain:
// admission closes, in-flight jobs get -drain-timeout to finish, and
// whatever remains is journaled for the next start.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"llbp/internal/chaos"
	"llbp/internal/experiments"
	"llbp/internal/harness"
	"llbp/internal/service"
	"llbp/internal/session"
	"llbp/internal/telemetry"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, nil))
}

// run is main with its dependencies injected. When ready is non-nil it
// receives the bound address once the daemon is serving — the hook the
// tests (and nothing else) use.
func run(args []string, stdout, stderr io.Writer, ready chan<- string) int {
	fs := flag.NewFlagSet("llbpd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr       = fs.String("addr", "127.0.0.1:8344", "listen address (use :0 for an ephemeral port)")
		addrFile   = fs.String("addr-file", "", "write the bound address to this file once serving")
		workers    = fs.Int("j", 1, "worker pool size (concurrent jobs; also the harness simulation parallelism)")
		queueDepth = fs.Int("queue-depth", 16, "admission queue bound; beyond it submissions get 429")
		journal    = fs.String("journal", "", "cell journal path (job state goes to <path>.jobs); enables resume")
		drainT     = fs.Duration("drain-timeout", 30*time.Second, "grace given to in-flight jobs on shutdown")
		timeout    = fs.Duration("timeout", 0, "per-cell simulation deadline (0 = none)")
		retries    = fs.Int("retries", 0, "retries for transiently failed cells")
		warmup     = fs.Uint64("warmup", 200_000, "default warmup budget for harness-level runs")
		measure    = fs.Uint64("measure", 1_000_000, "default measure budget for harness-level runs")
		quiet      = fs.Bool("q", false, "suppress per-job progress logging")
		leaseTTL   = fs.Duration("lease-ttl", 30*time.Second, "job lease TTL; a worker silent this long loses the job to re-dispatch")
		streamT    = fs.Duration("stream-timeout", 30*time.Second, "per-write deadline on result streams; slower clients are dropped (0 = never)")
		tenantQ    = fs.Int("tenant-quota", 0, "max active jobs per tenant; beyond it submissions get 429 (0 = unlimited)")
		chaosSpec  = fs.String("chaos", "", "TESTING: chaos rules, e.g. 'worker.panic@2,stream.drop@3%5' (see internal/chaos)")
		chaosSeed  = fs.Uint64("chaos-seed", 0, "TESTING: derive a random single-shot chaos scenario from this seed (0 = off)")
		eventsPath = fs.String("events", "", "write an llbp-events/1 NDJSON job-lifecycle log to this file")
		traceFile  = fs.String("tracefile", "", "write a Chrome trace-event file of job/cell lifecycle spans to this file")
		sessJourn  = fs.String("session-journal", "", "streaming-session journal path; enables exactly-once session resume (defaults to <-journal>.sessions when -journal is set)")
		sessCkpt   = fs.Uint64("session-checkpoint", 25_000, "auto-checkpoint cadence in branches for streaming sessions")
		maxSess    = fs.Int("max-sessions", 64, "concurrently open streaming sessions")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var injector *chaos.Injector
	switch {
	case *chaosSpec != "":
		rules, err := chaos.ParseSpec(*chaosSpec)
		if err != nil {
			fmt.Fprintln(stderr, "llbpd:", err)
			return 2
		}
		injector = chaos.New(rules...)
	case *chaosSeed != 0:
		injector = chaos.Scenario(*chaosSeed, 4, 16)
	}
	if injector != nil {
		fmt.Fprintf(stderr, "llbpd: CHAOS ENABLED: %s\n", injector)
	}

	// Install the signal handler before anything observable happens, so a
	// SIGTERM arriving the instant the address is published is already a
	// graceful drain, never a process kill.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	logf := func(format string, args ...any) {
		fmt.Fprintf(stderr, "llbpd: "+format+"\n", args...)
	}
	if *quiet {
		logf = nil
	}

	reg := telemetry.NewRegistry()
	reg.SetClock(func() int64 { return time.Now().UnixMilli() })

	var events *telemetry.EventLog
	if *eventsPath != "" {
		var err error
		events, err = telemetry.CreateEventLog(*eventsPath)
		if err != nil {
			fmt.Fprintln(stderr, "llbpd:", err)
			return 1
		}
		events.SetClock(func() int64 { return time.Now().UnixMilli() })
	}
	var tracer *telemetry.Tracer
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			fmt.Fprintln(stderr, "llbpd:", err)
			return 1
		}
		tracer = telemetry.NewTracer(f)
		tracer.ProcessName(telemetry.PidService, "llbpd")
	}

	cfg := experiments.Config{
		Warmup:      *warmup,
		Measure:     *measure,
		Parallelism: *workers,
		Timeout:     *timeout,
		Retries:     *retries,
		Telemetry:   reg,
	}
	var jobLogPath string
	if *journal != "" {
		j, err := harness.OpenJournal(*journal)
		if err != nil {
			fmt.Fprintln(stderr, "llbpd:", err)
			return 1
		}
		defer j.Close()
		if j.Len() > 0 && logf != nil {
			logf("cell journal %s holds %d completed cells", *journal, j.Len())
		}
		if injector != nil {
			j.SetWriteHook(chaos.TearHook(injector))
		}
		cfg.Journal = j
		jobLogPath = *journal + ".jobs"
	}

	// The server is created after the harness, but the harness needs the
	// server's progress sink; the closure breaks the cycle (no cell runs
	// before Start, so srv is always set by first use).
	var srv *service.Server
	cfg.CellProgress = func(key string, processed, total uint64) {
		if srv != nil {
			srv.CellProgress(key, processed, total)
		}
	}
	h := experiments.NewHarness(cfg)

	// detflow flags this call: the wall-clock tracer rides inside
	// Options and taint tracking is field-coarse, so the whole server
	// looks clock-derived even though the job log journals only job
	// specs and states. Grandfathered in lint.baseline until the engine
	// learns field sensitivity.
	srv, err := service.New(service.Options{
		Runner:             h,
		Workers:            *workers,
		QueueDepth:         *queueDepth,
		LeaseTTL:           *leaseTTL,
		StreamWriteTimeout: *streamT,
		TenantQuota:        *tenantQ,
		Chaos:              injector,
		Registry:           reg,
		Events:             events,
		Tracer:             tracer,
		JobLogPath:         jobLogPath,
		Logf:               logf,
	})
	if err != nil {
		fmt.Fprintln(stderr, "llbpd:", err)
		return 1
	}

	// The streaming-session subsystem rides the same harness (sessions
	// fork the experiment matrix's warm snapshots), telemetry and chaos
	// injector as the job service, but journals separately — session
	// streams are branch-level input logs, not cell results.
	sessionJournal := *sessJourn
	if sessionJournal == "" && *journal != "" {
		sessionJournal = *journal + ".sessions"
	}
	sm, err := session.New(session.Options{
		Forker:             h,
		JournalPath:        sessionJournal,
		LeaseTTL:           *leaseTTL,
		CheckpointBranches: *sessCkpt,
		MaxSessions:        *maxSess,
		StreamWriteTimeout: *streamT,
		Chaos:              injector,
		Registry:           reg,
		Events:             events,
		Tracer:             tracer,
		Logf:               logf,
	})
	if err != nil {
		fmt.Fprintln(stderr, "llbpd:", err)
		return 1
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, "llbpd:", err)
		return 1
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound), 0o644); err != nil {
			fmt.Fprintln(stderr, "llbpd:", err)
			ln.Close()
			return 1
		}
	}
	fmt.Fprintf(stdout, "llbpd listening on %s\n", bound)

	srv.Start()
	// Session lease supervision: revoke claims whose push connection went
	// silent past the TTL, so a successor can take the session over.
	sweepDone := make(chan struct{})
	go func() {
		defer close(sweepDone)
		tick := time.NewTicker(*leaseTTL / 2)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				sm.ExpireLeases()
			case <-ctx.Done():
				return
			}
		}
	}()

	// One mux, two subsystems: session routes first (most specific wins
	// is irrelevant here — the prefixes are disjoint), job service as the
	// fallback root.
	top := http.NewServeMux()
	top.Handle("/v1/session", sm.Handler())
	top.Handle("/v1/session/", sm.Handler())
	top.Handle("/", srv.Handler())
	httpSrv := &http.Server{Handler: top}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	if ready != nil {
		ready <- bound
	}

	select {
	case <-ctx.Done():
	case err := <-serveErr:
		fmt.Fprintln(stderr, "llbpd:", err)
		return 1
	}

	// Graceful drain: stop admission, give in-flight jobs the grace
	// window, then shut the HTTP listener down (letting any open result
	// streams deliver their final lines first).
	if logf != nil {
		logf("signal received; draining (up to %s)", *drainT)
	}
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainT)
	defer cancel()
	drainErr := srv.Drain(drainCtx)
	shutCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := httpSrv.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(stderr, "llbpd: shutdown:", err)
	}
	<-sweepDone
	sm.Shutdown()
	if events != nil {
		if err := events.Close(); err != nil {
			fmt.Fprintln(stderr, "llbpd: event log:", err)
		}
	}
	if tracer != nil {
		if err := tracer.Close(); err != nil {
			fmt.Fprintln(stderr, "llbpd: trace:", err)
		}
	}
	if drainErr != nil && !errors.Is(drainErr, context.DeadlineExceeded) {
		fmt.Fprintln(stderr, "llbpd: drain:", drainErr)
		return 1
	}
	if errors.Is(drainErr, context.DeadlineExceeded) {
		fmt.Fprintf(stderr, "llbpd: drain timed out; unfinished jobs journaled for resume\n")
	}
	return 0
}
