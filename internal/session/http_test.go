package session

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// pushFrames posts a hello plus the given frames to the push endpoint
// and returns the trailing summary.
func pushFrames(t *testing.T, ts *httptest.Server, id string, frames []Frame) (PushSummary, int) {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	if err := enc.Encode(Frame{Type: FrameHello, Schema: Schema}); err != nil {
		t.Fatal(err)
	}
	for _, f := range frames {
		if err := enc.Encode(f); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := http.Post(ts.URL+"/v1/session/"+id+"/branches", "application/x-ndjson", &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sum PushSummary
	if err := json.NewDecoder(resp.Body).Decode(&sum); err != nil {
		t.Fatal(err)
	}
	return sum, resp.StatusCode
}

// readStream fetches the output stream and returns its raw NDJSON body
// plus the parsed frames.
func readStream(t *testing.T, ts *httptest.Server, id, query string) (string, []OutFrame) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/session/" + id + "/stream" + query)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var raw strings.Builder
	var frames []OutFrame
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64*1024), MaxFrameBytes)
	for sc.Scan() {
		raw.Write(sc.Bytes())
		raw.WriteByte('\n')
		var of OutFrame
		if err := json.Unmarshal(sc.Bytes(), &of); err != nil {
			t.Fatalf("stream line %q: %v", sc.Text(), err)
		}
		frames = append(frames, of)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return raw.String(), frames
}

// TestHTTPSessionEndToEnd drives the full wire surface: open, push with
// hello/batches/checkpoint/bye, stream replay, resume-from-cursor and
// list/status/close.
func TestHTTPSessionEndToEnd(t *testing.T) {
	m := testManager(t, "")
	ts := httptest.NewServer(m.Handler())
	defer ts.Close()

	// Open.
	body, _ := json.Marshal(Request{Schema: Schema, Predictor: "64k", Workload: "Tomcat", Warmup: 2_000})
	resp, err := http.Post(ts.URL+"/v1/session", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated || st.ID == "" {
		t.Fatalf("open: %d %+v", resp.StatusCode, st)
	}

	// Push 4 batches, an explicit checkpoint, then bye (closes).
	batches := testStream(t, 2_000, 4, 150)
	frames := append(append([]Frame{}, batches[:3]...), Frame{Type: FrameCheckpoint})
	frames = append(frames, batches[3], Frame{Type: FrameBye})
	sum, code := pushFrames(t, ts, st.ID, frames)
	if code != http.StatusOK || !sum.Closed || sum.Applied != 4 || sum.LastSeq != 4 {
		t.Fatalf("push: %d %+v", code, sum)
	}

	// Stream replay: contiguous seqs, predictions for each batch, the
	// explicit checkpoint, a done line.
	raw, out := readStream(t, ts, st.ID, "")
	var preds, ckpts, dones int
	for i, of := range out {
		if of.Seq != uint64(i+1) {
			t.Fatalf("frame %d seq %d", i, of.Seq)
		}
		switch of.Type {
		case FramePredictions:
			preds++
		case FrameCkptAck:
			ckpts++
		case FrameDone:
			dones++
		}
	}
	if preds != 4 || ckpts < 1 || dones != 1 {
		t.Fatalf("stream shape: %d predictions, %d checkpoints, %d done\n%s", preds, ckpts, dones, raw)
	}

	// Resume from a cursor: frames after seq 2 only, byte-suffix of the
	// full stream.
	rawTail, tail := readStream(t, ts, st.ID, "?from=2")
	if len(tail) != len(out)-2 {
		t.Fatalf("resume from=2 returned %d frames, want %d", len(tail), len(out)-2)
	}
	if !strings.HasSuffix(raw, rawTail) {
		t.Fatal("resumed stream is not a byte-suffix of the full stream")
	}

	// Status + list agree.
	resp, err = http.Get(ts.URL + "/v1/session/" + st.ID)
	if err != nil {
		t.Fatal(err)
	}
	var got Status
	json.NewDecoder(resp.Body).Decode(&got)
	resp.Body.Close()
	if got.State != StateClosed || got.LastSeq != 4 {
		t.Fatalf("status: %+v", got)
	}
	resp, err = http.Get(ts.URL + "/v1/session")
	if err != nil {
		t.Fatal(err)
	}
	var list []Status
	json.NewDecoder(resp.Body).Decode(&list)
	resp.Body.Close()
	if len(list) != 1 || list[0].ID != st.ID {
		t.Fatalf("list: %+v", list)
	}

	// A push against the closed session is rejected.
	_, code = pushFrames(t, ts, st.ID, batches[:1])
	if code != http.StatusConflict {
		t.Fatalf("push to closed session: %d", code)
	}
}

// TestHTTPPushConflict: a second concurrent pusher is rejected while the
// first holds the lease; a drain frame hands over cleanly.
func TestHTTPPushConflict(t *testing.T) {
	m := testManager(t, "")
	ts := httptest.NewServer(m.Handler())
	defer ts.Close()
	st, err := m.Open(t.Context(), Request{Schema: Schema, Predictor: "64k"})
	if err != nil {
		t.Fatal(err)
	}
	batches := testStream(t, 0, 4, 100)

	// First pusher drains after two batches.
	sum, code := pushFrames(t, ts, st.ID, append(append([]Frame{}, batches[:2]...), Frame{Type: FrameDrain}))
	if code != http.StatusOK || !sum.Drained || sum.LastSeq != 2 {
		t.Fatalf("drain push: %d %+v", code, sum)
	}
	// Second pusher continues from the cursor with zero dup/skip.
	sum, code = pushFrames(t, ts, st.ID, batches[2:])
	if code != http.StatusOK || sum.Applied != 2 || sum.LastSeq != 4 {
		t.Fatalf("migrated push: %d %+v", code, sum)
	}
	if got, _ := m.Get(t.Context(), st.ID); got.Epoch != 2 || got.Branches != 400 {
		t.Fatalf("after migration: %+v", got)
	}
}

// TestHTTPBadFrames: protocol violations are rejected with the session
// cursor intact, so a correct client can resume.
func TestHTTPBadFrames(t *testing.T) {
	m := testManager(t, "")
	ts := httptest.NewServer(m.Handler())
	defer ts.Close()
	st, err := m.Open(t.Context(), Request{Schema: Schema, Predictor: "64k"})
	if err != nil {
		t.Fatal(err)
	}
	batches := testStream(t, 0, 2, 100)

	for _, tc := range []struct {
		name string
		body string
	}{
		{"no hello", `{"type":"branch-batch","seq":1,"branches":[{"pc":4}]}` + "\n"},
		{"bad schema", `{"type":"hello","schema":"llbp-session/9"}` + "\n"},
		{"empty batch", `{"type":"hello","schema":"llbp-session/1"}` + "\n" + `{"type":"branch-batch","seq":1}` + "\n"},
		{"unknown type", `{"type":"hello","schema":"llbp-session/1"}` + "\n" + `{"type":"warp"}` + "\n"},
	} {
		resp, err := http.Post(ts.URL+"/v1/session/"+st.ID+"/branches", "application/x-ndjson",
			strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			t.Fatalf("%s: accepted", tc.name)
		}
	}
	// The session is still usable.
	sum, code := pushFrames(t, ts, st.ID, batches)
	if code != http.StatusOK || sum.Applied != 2 {
		t.Fatalf("push after bad frames: %d %+v", code, sum)
	}
	// Seq-gap push: rejected mid-stream, cursor intact.
	gap := batches[1]
	gap.Seq = 9
	if _, code = pushFrames(t, ts, st.ID, []Frame{gap}); code != http.StatusConflict {
		t.Fatalf("gap push: %d", code)
	}
	if got, _ := m.Get(t.Context(), st.ID); got.LastSeq != 2 {
		t.Fatalf("cursor moved on rejected gap: %+v", got)
	}
}

// TestHTTPOversizedBatch: a batch past MaxBatchBranches is a protocol
// error, not an allocation.
func TestHTTPOversizedBatch(t *testing.T) {
	m := testManager(t, "")
	ts := httptest.NewServer(m.Handler())
	defer ts.Close()
	st, err := m.Open(t.Context(), Request{Schema: Schema, Predictor: "64k"})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, `{"type":"hello","schema":%q}`+"\n", Schema)
	sb.WriteString(`{"type":"branch-batch","seq":1,"branches":[`)
	for i := 0; i <= MaxBatchBranches; i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(`{"pc":4}`)
	}
	sb.WriteString("]}\n")
	resp, err := http.Post(ts.URL+"/v1/session/"+st.ID+"/branches", "application/x-ndjson",
		strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatal("oversized batch accepted")
	}
}
