package core

import "fmt"

// PBEntry is one pattern-buffer slot: a cached pattern set close to the
// core, with the prefetch-timing and writeback metadata the model needs.
type PBEntry struct {
	Valid bool
	CID   uint64
	// Ent points at the owning context-directory entry; its Set is the
	// pattern storage (the PB and LLBP storage exchange 288-bit pattern
	// sets in hardware; sharing the pointer models the same contents
	// with explicit read/writeback accounting by the caller).
	Ent *CDEntry
	// Dirty is set when a pattern was trained while cached; a dirty
	// eviction costs one writeback (§V-E1).
	Dirty bool
	// Ready is the cycle at which the prefetched set becomes usable
	// (issue cycle + the 6-cycle CD+LLBP access delay, §VI).
	Ready float64
	// Prefetched marks entries installed by the context prefetcher (as
	// opposed to demand/allocation fetches); Touched marks entries that
	// served at least one prediction or allocation. Together they drive
	// the prefetch-timeliness accounting: a prefetched entry leaving the
	// PB untouched was wasted bandwidth.
	Prefetched bool
	Touched    bool
	lru        uint64
}

// Buffer is the pattern buffer (§V-A): a small set-associative cache of
// pattern sets (64 entries, 4-way, LRU in the evaluated design) accessed
// in parallel with the baseline TAGE predictor.
type Buffer struct {
	sets [][]PBEntry
	tick uint64
}

// newBuffer builds a pattern buffer with the given total entries and
// associativity.
func newBuffer(entries, ways int) *Buffer {
	if entries <= 0 || ways <= 0 || entries%ways != 0 {
		panic(fmt.Sprintf("core: invalid PB geometry %d entries / %d ways", entries, ways))
	}
	nsets := entries / ways
	if nsets&(nsets-1) != 0 {
		panic(fmt.Sprintf("core: PB set count %d must be a power of two", nsets))
	}
	b := &Buffer{sets: make([][]PBEntry, nsets)}
	for i := range b.sets {
		b.sets[i] = make([]PBEntry, ways)
	}
	return b
}

func (b *Buffer) set(cid uint64) []PBEntry {
	return b.sets[cid&(uint64(len(b.sets))-1)]
}

// Lookup returns the entry caching cid, bumping its LRU age, or nil.
func (b *Buffer) Lookup(cid uint64) *PBEntry {
	set := b.set(cid)
	for i := range set {
		e := &set[i]
		if e.Valid && e.CID == cid {
			b.tick++
			e.lru = b.tick
			return e
		}
	}
	return nil
}

// Insert caches a pattern set, evicting the LRU way of the target set.
// It returns the displaced entry (by value) so the caller can account a
// writeback if it was dirty; evicted.Valid is false when a free way was
// used.
func (b *Buffer) Insert(cid uint64, ent *CDEntry, ready float64) (inserted *PBEntry, evicted PBEntry) {
	set := b.set(cid)
	victim := 0
	var victimLRU uint64 = ^uint64(0)
	for i := range set {
		e := &set[i]
		if !e.Valid {
			victim = i
			victimLRU = 0
			break
		}
		if e.lru < victimLRU {
			victim, victimLRU = i, e.lru
		}
	}
	evicted = set[victim]
	b.tick++
	set[victim] = PBEntry{Valid: true, CID: cid, Ent: ent, Ready: ready, lru: b.tick}
	return &set[victim], evicted
}

// Invalidate drops the entry caching cid (used when the context directory
// evicts the backing context). It returns the dropped entry by value;
// Valid is false if cid was not cached.
func (b *Buffer) Invalidate(cid uint64) PBEntry {
	set := b.set(cid)
	for i := range set {
		e := &set[i]
		if e.Valid && e.CID == cid {
			out := *e
			*e = PBEntry{}
			return out
		}
	}
	return PBEntry{}
}

// SquashInflight invalidates every entry whose prefetch has not completed
// by cycle now — the paper squashes all in-flight prefetches on a pipeline
// reset (§VI). It returns the number of squashed prefetches.
func (b *Buffer) SquashInflight(now float64) int {
	n := 0
	for _, set := range b.sets {
		for i := range set {
			e := &set[i]
			if e.Valid && e.Ready > now && !e.Dirty {
				// Dirty entries hold trained state pending
				// writeback (the hardware pins sets with
				// unresolved predictions, §V-E2); only clean
				// in-flight fetches are squashed.
				*e = PBEntry{}
				n++
			}
		}
	}
	return n
}

// Live returns the number of valid entries.
func (b *Buffer) Live() int {
	n := 0
	for _, set := range b.sets {
		for i := range set {
			if set[i].Valid {
				n++
			}
		}
	}
	return n
}
