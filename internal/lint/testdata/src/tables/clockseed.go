// clockseed.go is the detflow source side of the cross-package taint
// fixture: values born here are nondeterministic, and the sim package
// journals them. The bitmask analyzer also loads this package and must
// stay quiet here — no computed table indexing.
package tables

import "time"

// SeedFromClock derives a seed from the wall clock. The annotation
// makes the whole function a taint source; the time.Now inside would be
// discovered as a builtin source regardless.
//
//llbplint:source -- wall-clock seed; every downstream value differs per run
func SeedFromClock() uint64 {
	return uint64(time.Now().UnixNano())
}

// NewFromClock taints a whole table through its constructor: the seed
// flows into the backing slice, so the returned *T is tainted via the
// function summary.
func NewFromClock() *T {
	t := New(4)
	seed := SeedFromClock()
	t.tbl[0] = uint8(seed)
	return t
}
