package faults

import (
	"testing"
)

// fakeSurface is a two-field surface over plain slices.
type fakeSurface struct {
	ctr   []int8 // 3-bit signed counters
	valid []bool
	reset int
}

func (s *fakeSurface) FaultFields() []Field {
	return []Field{
		{
			Name: "fake.ctr", Bits: 3, Len: len(s.ctr),
			Get:   func(i int) uint64 { return Unsigned(int64(s.ctr[i]), 3) },
			Set:   func(i int, v uint64) { s.ctr[i] = int8(SignExtend(v, 3)) },
			Reset: func(i int) { s.ctr[i] = 0; s.reset++ },
		},
		{
			Name: "fake.valid", Bits: 1, Len: len(s.valid),
			Get: func(i int) uint64 {
				if s.valid[i] {
					return 1
				}
				return 0
			},
			Set:   func(i int, v uint64) { s.valid[i] = v != 0 },
			Reset: func(i int) { s.valid[i] = false; s.reset++ },
		},
	}
}

func newFake(n int) *fakeSurface {
	s := &fakeSurface{ctr: make([]int8, n), valid: make([]bool, n)}
	for i := range s.ctr {
		s.ctr[i] = int8(i%7 - 3)
		s.valid[i] = i%2 == 0
	}
	return s
}

// TestSignExtendRoundTrip: every value of every width survives the
// signed<->bit-pattern round trip.
func TestSignExtendRoundTrip(t *testing.T) {
	for bits := 2; bits <= 8; bits++ {
		lo := -(int64(1) << uint(bits-1))
		hi := int64(1)<<uint(bits-1) - 1
		for x := lo; x <= hi; x++ {
			if got := SignExtend(Unsigned(x, bits), bits); got != x {
				t.Fatalf("bits=%d x=%d round-tripped to %d", bits, x, got)
			}
		}
	}
	if SignExtend(0b111, 3) != -1 || SignExtend(0b011, 3) != 3 || SignExtend(0b100, 3) != -4 {
		t.Error("3-bit two's-complement decoding wrong")
	}
}

// TestDeterministicSchedule: identical seeds corrupt identical bits;
// different seeds diverge.
func TestDeterministicSchedule(t *testing.T) {
	run := func(seed uint64) *fakeSurface {
		s := newFake(512)
		in := NewInjector(s, Config{Rate: 1, Seed: seed})
		in.InjectN(200)
		return s
	}
	a, b, c := run(7), run(7), run(8)
	same := func(x, y *fakeSurface) bool {
		for i := range x.ctr {
			if x.ctr[i] != y.ctr[i] || x.valid[i] != y.valid[i] {
				return false
			}
		}
		return true
	}
	if !same(a, b) {
		t.Error("same seed produced different corruption")
	}
	if same(a, c) {
		t.Error("different seeds produced identical corruption (suspicious)")
	}
}

// TestValuesStayInWidth: flips never push an element outside its declared
// width.
func TestValuesStayInWidth(t *testing.T) {
	s := newFake(256)
	in := NewInjector(s, Config{Rate: 1, Seed: 3})
	in.InjectN(2000)
	for i, c := range s.ctr {
		if c < -4 || c > 3 {
			t.Fatalf("ctr[%d]=%d escaped its 3-bit range", i, c)
		}
	}
	st := in.Stats()
	if st.Flips != 2000 || st.Silent != 2000 {
		t.Errorf("unprotected stats wrong: %+v", st)
	}
}

// TestParityResets: parity-protected flips reset the struck element
// instead of corrupting it.
func TestParityResets(t *testing.T) {
	s := newFake(256)
	in := NewInjector(s, Config{Rate: 1, Protection: ProtectParity, Seed: 3})
	in.InjectN(100)
	st := in.Stats()
	if st.Detected != 100 || st.Silent != 0 {
		t.Errorf("parity stats wrong: %+v", st)
	}
	if s.reset != 100 {
		t.Errorf("expected 100 element resets, got %d", s.reset)
	}
	for i, c := range s.ctr {
		if c != 0 && c != int8(i%7-3) {
			t.Fatalf("parity left a corrupted (non-reset, non-original) value at %d: %d", i, c)
		}
	}
}

// TestECCCorrects: ECC-protected state is untouched.
func TestECCCorrects(t *testing.T) {
	s := newFake(256)
	want := newFake(256)
	in := NewInjector(s, Config{Rate: 1, Protection: ProtectECC, Seed: 3})
	in.InjectN(500)
	for i := range s.ctr {
		if s.ctr[i] != want.ctr[i] || s.valid[i] != want.valid[i] {
			t.Fatalf("ECC let a flip through at %d", i)
		}
	}
	if st := in.Stats(); st.Corrected != 500 {
		t.Errorf("ECC stats wrong: %+v", st)
	}
}

// TestStepAccumulation: fractional expected flip counts accumulate across
// steps instead of being dropped — rate × bits × branches determines the
// long-run flip count regardless of step granularity.
func TestStepAccumulation(t *testing.T) {
	s := newFake(1024) // 4096 bits
	in := NewInjector(s, Config{Rate: 100, Seed: 1})
	// Expected flips per 1e6-branch step: 100 × (4096/1e6) × 1 ≈ 0.41.
	for i := 0; i < 100; i++ {
		in.Step(1_000_000)
	}
	want := 100 * (4096.0 / 1e6) * 100 // ≈ 41
	got := float64(in.Stats().Flips)
	if got < want-1 || got > want+1 {
		t.Errorf("accumulated flips %v, want ≈ %v", got, want)
	}
}

// TestZeroRateInjectsNothing.
func TestZeroRateInjectsNothing(t *testing.T) {
	s := newFake(64)
	in := NewInjector(s, Config{Rate: 0, Seed: 1})
	for i := 0; i < 10; i++ {
		in.Step(1 << 20)
	}
	if in.Stats().Flips != 0 {
		t.Error("zero rate must not inject")
	}
}

// TestParseProtection round-trips the mode names.
func TestParseProtection(t *testing.T) {
	for _, p := range []Protection{ProtectNone, ProtectParity, ProtectECC} {
		got, err := ParseProtection(p.String())
		if err != nil || got != p {
			t.Errorf("round trip %v failed: %v %v", p, got, err)
		}
	}
	if _, err := ParseProtection("tmr"); err == nil {
		t.Error("unknown protection must error")
	}
}
