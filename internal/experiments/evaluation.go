package experiments

import (
	"fmt"

	"llbp/internal/core"
	"llbp/internal/energy"
	"llbp/internal/pipeline"
	"llbp/internal/report"
	"llbp/internal/stats"
)

// Fig9 reproduces Figure 9: branch MPKI reduction of LLBP, LLBP-0Lat and
// 512K TSL over the 64K TSL baseline (paper: avg 8.9 / 9.9 / 27.3%).
func Fig9(h *Harness) ([]*report.Table, error) {
	t := report.New("Figure 9: branch MPKI reduction over 64K TSL [%]",
		"workload", "LLBP", "LLBP-0Lat", "512K-TSL")
	var rl, r0, r512 []float64
	for _, wl := range h.Cfg.workloads() {
		base, err := h.Run(wl, Spec64K())
		if err != nil {
			return nil, err
		}
		llbp, err := h.Run(wl, SpecLLBPDefault())
		if err != nil {
			return nil, err
		}
		zero, err := h.Run(wl, SpecLLBP0Lat())
		if err != nil {
			return nil, err
		}
		big, err := h.Run(wl, Spec512K())
		if err != nil {
			return nil, err
		}
		a := stats.Reduction(base.Res.MPKI, llbp.Res.MPKI)
		b := stats.Reduction(base.Res.MPKI, zero.Res.MPKI)
		c := stats.Reduction(base.Res.MPKI, big.Res.MPKI)
		rl, r0, r512 = append(rl, a), append(r0, b), append(r512, c)
		t.AddRow(wl.Name(), a, b, c)
	}
	t.AddRow("Mean", meanRow(rl), meanRow(r0), meanRow(r512))
	t.Caption = "Paper: LLBP 0.5-25.9% (avg 8.9%); LLBP-0Lat avg 9.9%; 512K TSL avg 27.3%."
	return []*report.Table{t}, nil
}

// Fig10 reproduces Figure 10: speedup over 64K TSL for LLBP, LLBP-0Lat,
// 512K TSL and a perfect conditional predictor (paper: avg 0.63 / 0.71 /
// 1.26 / 3.6%).
func Fig10(h *Harness) ([]*report.Table, error) {
	t := report.New("Figure 10: speedup over 64K TSL [%]",
		"workload", "LLBP", "LLBP-0Lat", "512K-TSL", "Perfect-BP")
	var sl, s0, s512, sp []float64
	cfg := pipeline.Default()
	for _, wl := range h.Cfg.workloads() {
		base, err := h.Run(wl, Spec64K())
		if err != nil {
			return nil, err
		}
		llbp, err := h.Run(wl, SpecLLBPDefault())
		if err != nil {
			return nil, err
		}
		zero, err := h.Run(wl, SpecLLBP0Lat())
		if err != nil {
			return nil, err
		}
		big, err := h.Run(wl, Spec512K())
		if err != nil {
			return nil, err
		}
		a := (llbp.Res.Speedup(base.Res) - 1) * 100
		b := (zero.Res.Speedup(base.Res) - 1) * 100
		c := (big.Res.Speedup(base.Res) - 1) * 100
		p := (base.Res.Cycles/base.Res.PerfectCycles(cfg) - 1) * 100
		sl, s0, s512, sp = append(sl, a), append(s0, b), append(s512, c), append(sp, p)
		t.AddRow(wl.Name(), a, b, c, p)
	}
	t.AddRow("Mean", meanRow(sl), meanRow(s0), meanRow(s512), meanRow(sp))
	t.Caption = "Paper: LLBP avg 0.63%, 512K TSL 1.26%, perfect 3.6% (ChampSim core; our cycle model tracks the hardware Top-Down numbers more closely — DESIGN.md §1)."
	return []*report.Table{t}, nil
}

// fig11PBSizes are the pattern-buffer sizes of Figure 11.
var fig11PBSizes = []int{16, 64, 256}

// specLLBPPB returns the LLBP spec with an n-entry pattern buffer.
func specLLBPPB(n int) PredictorSpec {
	cfg := core.DefaultConfig()
	cfg.PBEntries = n
	cfg.Label = fmt.Sprintf("LLBP-PB%d", n)
	return SpecLLBP(fmt.Sprintf("llbp:pb=%d", n), cfg)
}

// Fig11 reproduces Figure 11: LLBP read/write traffic in bits per
// instruction for PB sizes 16/64/256, against the modelled L1-I miss
// traffic (paper: 9.9+2.2 b/i at PB16, dropping ~19% at PB64; L1-I ≈ 41%
// above the PB64 read traffic).
func Fig11(h *Harness) ([]*report.Table, error) {
	t := report.New("Figure 11: LLBP transfer bandwidth [bits/instruction]",
		"config", "read-b/i", "write-b/i", "total-b/i")
	setBits := float64(core.DefaultConfig().PatternSetBits())
	// LLBP's event counters accumulate from predictor construction
	// (warmup included), so the instruction denominator is scaled to the
	// whole run.
	scale := float64(h.Cfg.Warmup+h.Cfg.Measure) / float64(h.Cfg.Measure)
	var l1i []float64
	perPB := make(map[int][2]float64, len(fig11PBSizes))
	for _, n := range fig11PBSizes {
		var reads, writes []float64
		for _, wl := range h.Cfg.workloads() {
			out, err := h.Run(wl, specLLBPPB(n))
			if err != nil {
				return nil, err
			}
			instr := float64(out.Res.Instructions) * scale
			reads = append(reads, float64(out.LLBP.LLBPReads)*setBits/instr)
			writes = append(writes, float64(out.LLBP.LLBPWrites)*setBits/instr)
			if n == fig11PBSizes[0] {
				l1i = append(l1i, wl.Params().L1IMissesPerKI*512/1000)
			}
		}
		perPB[n] = [2]float64{meanRow(reads), meanRow(writes)}
		t.AddRow(fmt.Sprintf("%d-entry PB", n), perPB[n][0], perPB[n][1], perPB[n][0]+perPB[n][1])
	}
	t.AddRow("L1I misses", meanRow(l1i), "", meanRow(l1i))
	t.Caption = "Paper: PB16 9.9r+2.2w; PB64 total 9.9 (-18.9%); PB256 <8; L1I-L2 ≈ 14.6 b/i."
	return []*report.Table{t}, nil
}

// Fig12 reproduces Figure 12: total energy relative to the 64K TSL for
// LLBP designs with 16/64/256-entry PBs and for the 512K TSL, charging
// each structure its per-access energy times its measured access rate
// (paper: LLBP structures alone 51-57% of 64K TSL; whole LLBP design
// 1.53×; 512K TSL >4.5×).
func Fig12(h *Harness) ([]*report.Table, error) {
	t := report.New("Figure 12: energy relative to 64K TSL",
		"design", "TAGE-SC-L", "CD", "PB", "LLBP", "total")
	for _, n := range fig11PBSizes {
		var cdRate, llbpRate []float64
		for _, wl := range h.Cfg.workloads() {
			out, err := h.Run(wl, specLLBPPB(n))
			if err != nil {
				return nil, err
			}
			preds := float64(out.LLBP.CondPredictions)
			cdRate = append(cdRate, float64(out.LLBP.CDLookups)/preds)
			llbpRate = append(llbpRate, float64(out.LLBP.LLBPReads+out.LLBP.LLBPWrites)/preds)
		}
		tsl := energy.TSL64K.RelativeEnergy() * 1
		cd := energy.CD.RelativeEnergy() * meanRow(cdRate)
		pb := energy.PB(n).RelativeEnergy() * 1
		bulk := energy.LLBP.RelativeEnergy() * meanRow(llbpRate)
		t.AddRow(fmt.Sprintf("LLBP w/ %d-entry PB", n), tsl, cd, pb, bulk, tsl+cd+pb+bulk)
	}
	big := energy.TSL512K.RelativeEnergy()
	t.AddRow("512KiB TAGE", big, 0.0, 0.0, 0.0, big)
	t.Caption = "Paper: LLBP structures ≈0.51-0.57×; LLBP design total ≈1.53×; 512K TSL ≈4.58×."
	return []*report.Table{t}, nil
}

// Fig15 reproduces Figure 15: the breakdown of LLBP predictions into
// no-override / both-correct / both-wrong / good / bad override, as a
// percentage of all dynamic conditional predictions (paper: LLBP provides
// 14.8% of predictions; 77% of matches override; 6.8% of overrides are
// bad; 59% redundant).
func Fig15(h *Harness) ([]*report.Table, error) {
	var agg core.Stats
	for _, wl := range h.Cfg.workloads() {
		out, err := h.Run(wl, SpecLLBPDefault())
		if err != nil {
			return nil, err
		}
		s := out.LLBP
		agg.CondPredictions += s.CondPredictions
		agg.Matches += s.Matches
		agg.Overrides += s.Overrides
		agg.NoOverride += s.NoOverride
		agg.GoodOverride += s.GoodOverride
		agg.BadOverride += s.BadOverride
		agg.BothCorrect += s.BothCorrect
		agg.BothWrong += s.BothWrong
	}
	pct := func(n uint64) float64 { return float64(n) / float64(agg.CondPredictions) * 100 }
	t := report.New("Figure 15: LLBP prediction breakdown [% of cond. predictions]",
		"category", "share-%")
	t.AddRow("No Override", pct(agg.NoOverride))
	t.AddRow("Both Correct", pct(agg.BothCorrect))
	t.AddRow("Both Wrong", pct(agg.BothWrong))
	t.AddRow("Good Override", pct(agg.GoodOverride))
	t.AddRow("Bad Override", pct(agg.BadOverride))
	t.AddRow("LLBP provides (matches)", pct(agg.Matches))
	ovr := float64(agg.Overrides)
	if ovr > 0 {
		t.AddRow("override rate of matches [%]", float64(agg.Overrides)/float64(agg.Matches)*100)
		t.AddRow("bad override rate [%]", float64(agg.BadOverride)/ovr*100)
		t.AddRow("redundant override rate [%]", float64(agg.BothCorrect+agg.BothWrong)/ovr*100)
	}
	t.Caption = "Paper: provides 14.8%; overrides 77% of matches; 6.8% bad; 59% redundant."
	return []*report.Table{t}, nil
}
