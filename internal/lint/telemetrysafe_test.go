package lint_test

import (
	"testing"

	"llbp/internal/lint"
	"llbp/internal/lint/analysistest"
)

// TestTelemetrySafe covers field access, composite-literal construction
// and name-scheme findings in a consumer package, and the negative case:
// the telemetry package itself is exempt (it must touch its own fields).
// The service/hotpath fixture exercises the service-scope allocation
// rule; its lockorder-prefixed wants (the update-under-held-lock rule
// that moved to the program analyzer) are checked by TestLockorder.
func TestTelemetrySafe(t *testing.T) {
	analysistest.Run(t, "testdata", lint.TelemetrySafe, "app", "telemetry", "service/hotpath")
}
