package trace

import "io"

// Skip returns a view of src that replays the same stream with the first
// n branches discarded. It is the uncached fallback of the warm-snapshot
// fork path: when a warmed predictor is forked past its warmup prefix,
// the measure-only replay must start at branch n of the identical stream,
// and sources that aren't in the materialized trace cache can only get
// there by reading and dropping the prefix. The discard is batched, so
// skipping costs one decode pass, not n interface calls.
func Skip(src Source, n uint64) Source {
	if n == 0 {
		return src
	}
	return &skipSource{src: src, n: n}
}

type skipSource struct {
	src Source
	n   uint64
}

var (
	_ Source      = (*skipSource)(nil)
	_ BatchSource = (*skipSource)(nil)
)

// Name implements Source. The view keeps the underlying name: a skipped
// stream is the same workload, not a new one, so results keyed by source
// name stay comparable.
func (s *skipSource) Name() string { return s.src.Name() }

// Open implements Source.
func (s *skipSource) Open() Reader {
	return &skipReader{br: OpenBatched(s.src), toSkip: s.n}
}

// OpenBatch implements BatchSource.
func (s *skipSource) OpenBatch() BatchReader {
	return &skipReader{br: OpenBatched(s.src), toSkip: s.n}
}

// skipReader discards the prefix lazily on first read, then delegates.
type skipReader struct {
	br     BatchReader
	toSkip uint64
	err    error // sticky terminal error
}

var (
	_ Reader      = (*skipReader)(nil)
	_ BatchReader = (*skipReader)(nil)
)

// skip drains the prefix. A stream that ends inside the prefix leaves the
// reader at EOF, matching what a direct replay of the same budget would
// report (the stream is simply shorter than warmup+measure).
func (r *skipReader) skip() error {
	if r.err != nil {
		return r.err
	}
	if r.toSkip == 0 {
		return nil
	}
	buf := make([]Branch, 4096)
	for r.toSkip > 0 {
		want := buf
		if r.toSkip < uint64(len(want)) {
			want = want[:r.toSkip]
		}
		n, err := r.br.ReadBatch(want)
		r.toSkip -= uint64(n)
		if err != nil {
			if r.toSkip > 0 {
				r.err = err
				return err
			}
			// The source reported EOF exactly at the prefix boundary;
			// subsequent reads will surface it.
			break
		}
	}
	return nil
}

// Read implements Reader.
func (r *skipReader) Read(b *Branch) error {
	if err := r.skip(); err != nil {
		return err
	}
	var one [1]Branch
	n, err := r.br.ReadBatch(one[:])
	if n == 1 {
		*b = one[0]
		return nil
	}
	if err == nil {
		err = io.EOF
	}
	r.err = err
	return err
}

// ReadBatch implements BatchReader.
func (r *skipReader) ReadBatch(dst []Branch) (int, error) {
	if err := r.skip(); err != nil {
		return 0, err
	}
	n, err := r.br.ReadBatch(dst)
	if err != nil {
		r.err = err
	}
	return n, err
}
