package service

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// job is the in-memory runtime of one submitted job: its request, its
// lifecycle state, the lease that fences which worker dispatch owns it,
// the persisted event log replayed to results readers, and the pulse
// channel that wakes streaming subscribers. "cell" and "done" events are
// persisted (late readers get a full replay); progress snapshots are
// ephemeral — only the latest is kept and only live followers see them.
//
// Ownership is lease-based: each dispatch of the job to a worker bumps
// the epoch and derives a per-dispatch run context. Every mutation a
// worker makes carries its epoch and is dropped when the epoch has been
// superseded (the supervisor reclaimed an expired lease and re-dispatched
// the job), so a wedged-then-revived worker can never double-emit an
// event or finalize a job it no longer owns.
//
//llbplint:leased -- job state is owned by the current dispatch; worker-reachable writes must be fenced on the claim epoch
type job struct {
	id     string
	req    JobRequest
	ctx    context.Context
	cancel context.CancelFunc
	// userCancelled distinguishes a client DELETE from a server
	// shutdown: both cancel ctx, but only the former is a terminal
	// cancellation (shutdown leaves the job resumable).
	userCancelled atomic.Bool
	// tenantReleased latches the one-time return of the job's tenant
	// quota slot on reaching a terminal state.
	tenantReleased atomic.Bool

	mu        sync.Mutex
	state     State
	epoch     uint64 // dispatch generation; bumped by every claim
	lease     lease  // current owner, zero when unowned
	// submittedAt and claimedAt feed the claim-latency and job-duration
	// histograms (submittedAt is the admission time — resume time for
	// restarted jobs; claimedAt is the latest dispatch's claim time).
	submittedAt time.Time
	claimedAt   time.Time
	events    []StreamEvent // persisted "cell" + "done" events; Seq = index+1
	doneCells map[int]bool  // cell indices already evented (dedup across re-dispatch)
	completed int
	failed    int
	progress  StreamEvent
	progSeq   uint64
	// lastProgressEmit throttles progress snapshots per cell key.
	lastProgressEmit map[string]uint64
	pulse            chan struct{} // closed and replaced on every publish
}

// lease records which worker owns the job's current dispatch and until
// when. A worker keeps the lease alive by heartbeating (on claim, on
// every cell completion, and on every streamed progress tick); the
// supervisor revokes leases whose deadline has passed.
type lease struct {
	owner   string
	expires time.Time
	// runCancel aborts this dispatch's run context — revoking the lease
	// cancels the (possibly wedged) worker's in-flight simulation.
	runCancel context.CancelFunc
}

func newJob(base context.Context, id string, req JobRequest) *job {
	ctx, cancel := context.WithCancel(base)
	return &job{
		id:               id,
		req:              req,
		ctx:              ctx,
		cancel:           cancel,
		state:            StateQueued,
		doneCells:        make(map[int]bool),
		lastProgressEmit: make(map[string]uint64),
		pulse:            make(chan struct{}),
	}
}

// wake closes the current pulse channel so every waiting subscriber
// re-reads the job. Callers must hold mu.
func (jb *job) wake() {
	close(jb.pulse)
	jb.pulse = make(chan struct{})
}

// status snapshots the job as a wire JobStatus.
func (jb *job) status() JobStatus {
	jb.mu.Lock()
	defer jb.mu.Unlock()
	return JobStatus{
		Schema:    JobSchema,
		ID:        jb.id,
		State:     jb.state,
		Tenant:    jb.req.Tenant,
		Priority:  jb.req.Priority,
		Cells:     len(jb.req.Cells),
		Completed: jb.completed,
		Failed:    jb.failed,
	}
}

// claim takes ownership of the job for one dispatch: it bumps the epoch,
// installs a lease expiring at now+ttl, and returns the new epoch plus a
// run context derived from the job context. It fails when the job is
// already terminal (cancelled while queued) or still owned by a live
// lease (a racing dispatch).
func (jb *job) claim(owner string, now time.Time, ttl time.Duration) (uint64, context.Context, bool) {
	jb.mu.Lock()
	defer jb.mu.Unlock()
	if jb.state.Terminal() {
		return 0, nil, false
	}
	if jb.lease.owner != "" && now.Before(jb.lease.expires) {
		return 0, nil, false
	}
	if jb.lease.runCancel != nil {
		jb.lease.runCancel() // sever any straggler from a stale dispatch
	}
	jb.epoch++
	runCtx, runCancel := context.WithCancel(jb.ctx)
	jb.lease = lease{owner: owner, expires: now.Add(ttl), runCancel: runCancel}
	jb.state = StateRunning
	jb.claimedAt = now
	jb.wake()
	return jb.epoch, runCtx, true
}

// markSubmitted stamps the admission time (feeds claim latency and job
// duration).
//
//llbplint:fence -- admission stamp, not dispatch-owned state: written only while the job is unowned (pre-claim submit/resume, or supervisor re-queue after the lease was already revoked)
func (jb *job) markSubmitted(now time.Time) {
	jb.mu.Lock()
	jb.submittedAt = now
	jb.mu.Unlock()
}

// times returns the admission and latest-claim timestamps.
func (jb *job) times() (submitted, claimed time.Time) {
	jb.mu.Lock()
	defer jb.mu.Unlock()
	return jb.submittedAt, jb.claimedAt
}

// eventsLen returns the persisted event count (the resume-gap metric's
// input).
func (jb *job) eventsLen() int {
	jb.mu.Lock()
	defer jb.mu.Unlock()
	return len(jb.events)
}

// heartbeat extends the lease when epoch still owns the job, reporting
// whether the renewal applied.
func (jb *job) heartbeat(epoch uint64, now time.Time, ttl time.Duration) bool {
	jb.mu.Lock()
	defer jb.mu.Unlock()
	if jb.epoch != epoch || jb.lease.owner == "" {
		return false
	}
	jb.lease.expires = now.Add(ttl)
	return true
}

// revokeIfExpired checks the lease against now and, when expired on a
// non-terminal running job, cancels the dispatch's run context, clears
// the lease, and moves the job back to queued for re-dispatch. The epoch
// is bumped immediately — not deferred to the next claim — so the fence
// closes the instant ownership is withdrawn: a wedged worker reviving
// between revocation and re-dispatch is already superseded. It returns
// the revoked owner and true when a revocation happened.
func (jb *job) revokeIfExpired(now time.Time) (string, bool) {
	jb.mu.Lock()
	defer jb.mu.Unlock()
	if jb.state != StateRunning || jb.lease.owner == "" || now.Before(jb.lease.expires) {
		return "", false
	}
	owner := jb.lease.owner
	if jb.lease.runCancel != nil {
		jb.lease.runCancel()
	}
	jb.lease = lease{}
	jb.epoch++
	jb.state = StateQueued
	jb.wake()
	return owner, true
}

// release drops the lease when epoch still owns it (the worker's clean
// handback on shutdown-interrupted jobs).
func (jb *job) release(epoch uint64) {
	jb.mu.Lock()
	defer jb.mu.Unlock()
	if jb.epoch == epoch && jb.lease.owner != "" {
		if jb.lease.runCancel != nil {
			jb.lease.runCancel()
		}
		jb.lease = lease{}
	}
}

// leaseInfo snapshots the lease for diagnostics.
func (jb *job) leaseInfo() (owner string, epoch uint64, expires time.Time) {
	jb.mu.Lock()
	defer jb.mu.Unlock()
	return jb.lease.owner, jb.epoch, jb.lease.expires
}

// setState transitions the lifecycle state (no event is emitted; use
// finish for terminal transitions).
func (jb *job) setState(s State) {
	jb.mu.Lock()
	jb.state = s
	jb.wake()
	jb.mu.Unlock()
}

// hasCell reports whether cell index already has a persisted event — the
// dedup a re-dispatched job uses to skip work that already streamed.
func (jb *job) hasCell(index int) bool {
	jb.mu.Lock()
	defer jb.mu.Unlock()
	return jb.doneCells[index]
}

// addCell records a completed cell's result event when epoch still owns
// the job and the cell has not already been evented; it reports whether
// the event was appended.
func (jb *job) addCell(epoch uint64, index int, key string, value []byte) bool {
	jb.mu.Lock()
	defer jb.mu.Unlock()
	if jb.epoch != epoch || jb.state.Terminal() || jb.doneCells[index] {
		return false
	}
	jb.doneCells[index] = true
	jb.completed++
	jb.events = append(jb.events, StreamEvent{
		Type: "cell", Seq: uint64(len(jb.events) + 1), Key: key, Index: index, Value: value,
	})
	jb.wake()
	return true
}

// addCellError records a failed cell's event under the same fencing as
// addCell.
func (jb *job) addCellError(epoch uint64, index int, key string, err error) bool {
	jb.mu.Lock()
	defer jb.mu.Unlock()
	if jb.epoch != epoch || jb.state.Terminal() || jb.doneCells[index] {
		return false
	}
	jb.doneCells[index] = true
	jb.failed++
	jb.events = append(jb.events, StreamEvent{
		Type: "cell", Seq: uint64(len(jb.events) + 1), Key: key, Index: index, Error: err.Error(),
	})
	jb.wake()
	return true
}

// setProgress publishes an ephemeral progress snapshot, throttled to
// roughly one snapshot per progressStride branches per cell (plus the
// final tick). The write is fenced on the dispatch epoch: a superseded
// dispatch's harness callback (its lease was reclaimed mid-simulation)
// must not clobber the progress stream of the dispatch that now owns
// the job. Reports whether the snapshot was published.
func (jb *job) setProgress(epoch uint64, key string, index int, processed, total uint64) bool {
	jb.mu.Lock()
	defer jb.mu.Unlock()
	if jb.epoch != epoch {
		return false
	}
	last := jb.lastProgressEmit[key]
	if processed < total && processed-last < progressStride {
		return false
	}
	jb.lastProgressEmit[key] = processed
	jb.progress = StreamEvent{Type: "progress", Key: key, Index: index, Processed: processed, Total: total}
	jb.progSeq++
	jb.wake()
	return true
}

// progressStride is the minimum branch distance between streamed
// progress snapshots of one cell.
const progressStride = 65_536

// finish moves the job to a terminal state and appends the "done" event.
// Restart replay (New) and queued-job cancellation use it directly;
// workers go through finishEpoch so a superseded dispatch cannot
// finalize.
func (jb *job) finish(final State) {
	jb.mu.Lock()
	defer jb.mu.Unlock()
	jb.finishLocked(final)
}

// finishEpoch is finish fenced on lease ownership; it reports whether
// the finalization applied.
func (jb *job) finishEpoch(epoch uint64, final State) bool {
	jb.mu.Lock()
	defer jb.mu.Unlock()
	if jb.epoch != epoch || jb.state.Terminal() {
		return false
	}
	jb.finishLocked(final)
	return true
}

func (jb *job) finishLocked(final State) {
	jb.state = final
	if jb.lease.runCancel != nil {
		jb.lease.runCancel()
	}
	jb.lease = lease{}
	jb.events = append(jb.events, StreamEvent{
		Type:      "done",
		Seq:       uint64(len(jb.events) + 1),
		State:     final,
		Completed: jb.completed,
		Failed:    jb.failed,
	})
	jb.wake()
}

// terminal reports whether the job reached a final state.
func (jb *job) terminal() bool {
	jb.mu.Lock()
	defer jb.mu.Unlock()
	return jb.state.Terminal()
}

// snapshot returns the persisted events from pos on, the latest progress
// snapshot with its sequence number, the terminal flag, and the pulse
// channel that signals the next change — everything a streaming reader
// needs for one iteration, under one lock acquisition.
func (jb *job) snapshot(pos int) (evs []StreamEvent, prog StreamEvent, progSeq uint64, terminal bool, pulse chan struct{}) {
	jb.mu.Lock()
	defer jb.mu.Unlock()
	if pos < len(jb.events) {
		evs = append(evs, jb.events[pos:]...)
	}
	return evs, jb.progress, jb.progSeq, jb.state.Terminal(), jb.pulse
}
