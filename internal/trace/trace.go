// Package trace defines the branch-trace model that drives every simulation
// in this repository: the per-branch record, the stream interfaces consumed
// by the simulator, and a compact binary on-disk encoding.
//
// The model mirrors the ChampSim-style traces used by the paper: a trace is
// a sequence of control-flow transfers annotated with the number of
// sequential (non-branch) instructions executed since the previous transfer.
// Only branch instructions are materialized; straight-line instructions are
// carried as a count, which is all the predictor and the cycle-accounting
// core model need.
package trace

import "fmt"

// BranchType classifies a control-flow transfer. The distinction between
// conditional and the unconditional flavours matters throughout the paper:
// LLBP's rolling context register hashes only unconditional branches
// (jumps, calls, returns), and Figure 13 evaluates call/return-only and
// all-branch variants.
type BranchType uint8

const (
	// CondDirect is a conditional direct branch — the only type the
	// direction predictors under study predict.
	CondDirect BranchType = iota
	// Jump is an unconditional direct jump.
	Jump
	// Call is a direct function call.
	Call
	// Return is a function return.
	Return
	// IndirectJump is an unconditional indirect jump.
	IndirectJump
	// IndirectCall is an indirect function call. The paper notes that
	// indirect-call mispredictions flush the pipeline and reset LLBP's
	// prefetcher (PHPWiki suffers from exactly this).
	IndirectCall
	numBranchTypes
)

// String returns the conventional short name of the branch type.
func (t BranchType) String() string {
	switch t {
	case CondDirect:
		return "cond"
	case Jump:
		return "jump"
	case Call:
		return "call"
	case Return:
		return "ret"
	case IndirectJump:
		return "ijump"
	case IndirectCall:
		return "icall"
	default:
		return fmt.Sprintf("BranchType(%d)", uint8(t))
	}
}

// IsConditional reports whether the branch is a conditional branch whose
// direction must be predicted.
func (t BranchType) IsConditional() bool { return t == CondDirect }

// IsUnconditional reports whether the branch unconditionally transfers
// control (jump, call, return, and their indirect flavours).
func (t BranchType) IsUnconditional() bool { return t != CondDirect }

// IsCallOrReturn reports whether the branch is a call or return (direct or
// indirect call, or return). Used by the Call/Ret context variant of
// Figure 13.
func (t BranchType) IsCallOrReturn() bool {
	return t == Call || t == Return || t == IndirectCall
}

// IsIndirect reports whether the branch target is computed at run time.
func (t BranchType) IsIndirect() bool {
	return t == IndirectJump || t == IndirectCall
}

// Branch is a single control-flow transfer in a trace.
type Branch struct {
	// PC is the address of the branch instruction.
	PC uint64
	// Target is the address control transfers to when the branch is
	// taken. For not-taken conditional branches it still records the
	// would-be target.
	Target uint64
	// Type classifies the transfer.
	Type BranchType
	// Taken is the resolved direction. Unconditional branches are always
	// taken.
	Taken bool
	// Instructions is the number of instructions executed since the
	// previous branch record, including this branch itself (thus always
	// >= 1). Summing Instructions over a trace yields the instruction
	// count used for MPKI.
	Instructions uint32
	// MispredictedTarget marks transfers whose *target* missed in the
	// BTB / indirect predictor of the modelled front end. Direction
	// predictors do not predict these, but they flush the pipeline and
	// reset LLBP's prefetcher, so the trace carries them explicitly.
	MispredictedTarget bool
}

// Reader is the branch-stream interface consumed by the simulator. Read
// returns io.EOF (or a wrapped variant) when the stream is exhausted.
type Reader interface {
	// Read fills b with the next branch record.
	Read(b *Branch) error
}

// A Source produces fresh, independent Readers over the same logical
// workload, so that experiments can replay a workload several times (e.g.
// once per predictor configuration) with identical content.
type Source interface {
	// Name identifies the workload for reporting.
	Name() string
	// Open returns a Reader positioned at the start of the stream.
	Open() Reader
}

// Stats summarizes the composition of a branch stream; used by trace
// tooling and by workload-invariant tests (the paper reports ~3.89
// conditional branches per unconditional branch, ~20% unconditional).
type Stats struct {
	Branches     uint64              // total branch records
	Instructions uint64              // total instructions (sum of Instructions)
	ByType       [6]uint64           // count per BranchType
	TakenCond    uint64              // taken conditional branches
	UniquePCs    map[uint64]struct{} // distinct branch PCs (nil until Collect)
}

// Collect accumulates statistics over a whole Reader.
func Collect(r Reader) (Stats, error) {
	s := Stats{UniquePCs: make(map[uint64]struct{})}
	var b Branch
	for {
		if err := r.Read(&b); err != nil {
			if IsEOF(err) {
				return s, nil
			}
			return s, err
		}
		s.Add(&b)
	}
}

// Add accumulates a single record into the stats.
func (s *Stats) Add(b *Branch) {
	s.Branches++
	s.Instructions += uint64(b.Instructions)
	if int(b.Type) < len(s.ByType) {
		s.ByType[b.Type]++
	}
	if b.Type == CondDirect && b.Taken {
		s.TakenCond++
	}
	if s.UniquePCs != nil {
		s.UniquePCs[b.PC] = struct{}{}
	}
}

// Conditional returns the number of conditional branches.
func (s *Stats) Conditional() uint64 { return s.ByType[CondDirect] }

// Unconditional returns the number of unconditional branches.
func (s *Stats) Unconditional() uint64 {
	var n uint64
	for t := Jump; t < numBranchTypes; t++ {
		n += s.ByType[t]
	}
	return n
}

// CondPerUncond returns the ratio of conditional to unconditional branches
// (the paper measures ~3.89 on its workloads).
func (s *Stats) CondPerUncond() float64 {
	u := s.Unconditional()
	if u == 0 {
		return 0
	}
	return float64(s.Conditional()) / float64(u)
}
