package report

import (
	"strings"
	"testing"
)

func demo() *Table {
	t := New("Demo", "name", "mpki", "note")
	t.AddRow("Tomcat", 4.231, "baseline")
	t.AddRow("NodeApp", 2.5, 7)
	t.Caption = "caption line"
	return t
}

func TestWriteTextAligned(t *testing.T) {
	out := demo().String()
	if !strings.Contains(out, "## Demo") {
		t.Error("missing title")
	}
	lines := strings.Split(out, "\n")
	var header, rule string
	for i, l := range lines {
		if strings.HasPrefix(l, "name") {
			header, rule = l, lines[i+1]
			break
		}
	}
	if header == "" {
		t.Fatal("missing header line")
	}
	if len(rule) != len(header) {
		t.Errorf("rule width %d != header width %d", len(rule), len(header))
	}
	if !strings.Contains(out, "4.231") {
		t.Error("floats must render with 3 decimals")
	}
	if !strings.Contains(out, "caption line") {
		t.Error("missing caption")
	}
}

func TestWriteCSV(t *testing.T) {
	var sb strings.Builder
	if err := demo().WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV has %d lines, want 3", len(lines))
	}
	if lines[0] != "name,mpki,note" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[1] != "Tomcat,4.231,baseline" {
		t.Errorf("row = %q", lines[1])
	}
}

func TestNoTitleNoCaption(t *testing.T) {
	tab := New("", "a", "b")
	tab.AddRow(1, 2)
	out := tab.String()
	if strings.Contains(out, "##") {
		t.Error("untitled table must not render a heading")
	}
}

func TestShortRow(t *testing.T) {
	tab := New("x", "a", "b", "c")
	tab.AddRow("only")
	if out := tab.String(); !strings.Contains(out, "only") {
		t.Error("short rows must render")
	}
}

func TestColumnWidthsGrowWithData(t *testing.T) {
	tab := New("x", "a")
	tab.AddRow("a-very-long-cell-value")
	out := tab.String()
	for _, l := range strings.Split(out, "\n") {
		if strings.HasPrefix(l, "---") && len(l) < len("a-very-long-cell-value") {
			t.Error("rule must span the widest cell")
		}
	}
}

// failWriter fails after n bytes.
type failWriter struct{ left int }

func (w *failWriter) Write(p []byte) (int, error) {
	if w.left <= 0 {
		return 0, errFail
	}
	n := len(p)
	if n > w.left {
		n = w.left
	}
	w.left -= n
	if n < len(p) {
		return n, errFail
	}
	return n, nil
}

var errFail = &failErr{}

type failErr struct{}

func (*failErr) Error() string { return "writer failed" }

func TestWriteTextPropagatesErrors(t *testing.T) {
	tab := demo()
	for _, budget := range []int{0, 5, 30, 60} {
		if err := tab.WriteText(&failWriter{left: budget}); err == nil {
			t.Errorf("budget %d: error not propagated", budget)
		}
	}
}

func TestWriteCSVPropagatesErrors(t *testing.T) {
	tab := demo()
	if err := tab.WriteCSV(&failWriter{left: 3}); err == nil {
		t.Error("CSV error not propagated")
	}
}

func TestChartWritePropagatesErrors(t *testing.T) {
	c := &BarChart{Title: "x", Labels: []string{"a"}, Values: []float64{1}}
	if err := c.WriteText(&failWriter{left: 0}); err == nil {
		t.Error("chart error not propagated")
	}
}
