//go:build race

package service

// raceEnabled reports whether the race detector is compiled in; the
// overhead timing tests skip under it (instrumented timings are
// meaningless as a cost bound).
const raceEnabled = true
