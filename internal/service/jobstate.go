package service

import (
	"context"
	"sync"
	"sync/atomic"
)

// job is the in-memory runtime of one submitted job: its request, its
// lifecycle state, the persisted event log replayed to results readers,
// and the pulse channel that wakes streaming subscribers. "cell" and
// "done" events are persisted (late readers get a full replay); progress
// snapshots are ephemeral — only the latest is kept and only live
// followers see them.
type job struct {
	id     string
	req    JobRequest
	ctx    context.Context
	cancel context.CancelFunc
	// userCancelled distinguishes a client DELETE from a server
	// shutdown: both cancel ctx, but only the former is a terminal
	// cancellation (shutdown leaves the job resumable).
	userCancelled atomic.Bool

	mu        sync.Mutex
	state     State
	events    []StreamEvent // persisted "cell" + "done" events, in order
	completed int
	failed    int
	progress  StreamEvent
	progSeq   uint64
	// lastProgressEmit throttles progress snapshots per cell key.
	lastProgressEmit map[string]uint64
	pulse            chan struct{} // closed and replaced on every publish
}

func newJob(base context.Context, id string, req JobRequest) *job {
	ctx, cancel := context.WithCancel(base)
	return &job{
		id:               id,
		req:              req,
		ctx:              ctx,
		cancel:           cancel,
		state:            StateQueued,
		lastProgressEmit: make(map[string]uint64),
		pulse:            make(chan struct{}),
	}
}

// wake closes the current pulse channel so every waiting subscriber
// re-reads the job. Callers must hold mu.
func (jb *job) wake() {
	close(jb.pulse)
	jb.pulse = make(chan struct{})
}

// status snapshots the job as a wire JobStatus.
func (jb *job) status() JobStatus {
	jb.mu.Lock()
	defer jb.mu.Unlock()
	return JobStatus{
		Schema:    JobSchema,
		ID:        jb.id,
		State:     jb.state,
		Cells:     len(jb.req.Cells),
		Completed: jb.completed,
		Failed:    jb.failed,
	}
}

// setState transitions the lifecycle state (no event is emitted; use
// finish for terminal transitions).
func (jb *job) setState(s State) {
	jb.mu.Lock()
	jb.state = s
	jb.wake()
	jb.mu.Unlock()
}

// addCell records a completed cell's result event.
func (jb *job) addCell(index int, key string, value []byte) {
	jb.mu.Lock()
	jb.completed++
	jb.events = append(jb.events, StreamEvent{Type: "cell", Key: key, Index: index, Value: value})
	jb.wake()
	jb.mu.Unlock()
}

// addCellError records a failed cell's event.
func (jb *job) addCellError(index int, key string, err error) {
	jb.mu.Lock()
	jb.failed++
	jb.events = append(jb.events, StreamEvent{Type: "cell", Key: key, Index: index, Error: err.Error()})
	jb.wake()
	jb.mu.Unlock()
}

// setProgress publishes an ephemeral progress snapshot, throttled to
// roughly one snapshot per progressStride branches per cell (plus the
// final tick). Reports whether the snapshot was published.
func (jb *job) setProgress(key string, index int, processed, total uint64) bool {
	jb.mu.Lock()
	defer jb.mu.Unlock()
	last := jb.lastProgressEmit[key]
	if processed < total && processed-last < progressStride {
		return false
	}
	jb.lastProgressEmit[key] = processed
	jb.progress = StreamEvent{Type: "progress", Key: key, Index: index, Processed: processed, Total: total}
	jb.progSeq++
	jb.wake()
	return true
}

// progressStride is the minimum branch distance between streamed
// progress snapshots of one cell.
const progressStride = 65_536

// finish moves the job to a terminal state and appends the "done" event.
func (jb *job) finish(final State) {
	jb.mu.Lock()
	jb.state = final
	jb.events = append(jb.events, StreamEvent{
		Type:      "done",
		State:     final,
		Completed: jb.completed,
		Failed:    jb.failed,
	})
	jb.wake()
	jb.mu.Unlock()
}

// terminal reports whether the job reached a final state.
func (jb *job) terminal() bool {
	jb.mu.Lock()
	defer jb.mu.Unlock()
	return jb.state.Terminal()
}

// snapshot returns the persisted events from pos on, the latest progress
// snapshot with its sequence number, the terminal flag, and the pulse
// channel that signals the next change — everything a streaming reader
// needs for one iteration, under one lock acquisition.
func (jb *job) snapshot(pos int) (evs []StreamEvent, prog StreamEvent, progSeq uint64, terminal bool, pulse chan struct{}) {
	jb.mu.Lock()
	defer jb.mu.Unlock()
	if pos < len(jb.events) {
		evs = append(evs, jb.events[pos:]...)
	}
	return evs, jb.progress, jb.progSeq, jb.state.Terminal(), jb.pulse
}
