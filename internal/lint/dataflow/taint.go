package dataflow

// Determinism-taint analysis (the detflow analyzer's engine).
//
// Taint starts at nondeterminism sources — wall-clock reads, the global
// math/rand state, map iteration order, select arrival order, and
// functions annotated //llbplint:source — and propagates through
// assignments, expressions and calls until it either dies (sorted away
// by a sanitizer) or reaches a determinism-critical sink (a function
// annotated //llbplint:sink, such as the harness journal's Record or
// the service NDJSON encoder). Only a completed source→sink flow is a
// finding; using time.Now for a log line nobody replays is fine.
//
// The engine is summary-based and context-insensitive: every function
// gets a summary saying (a) whether its results are tainted regardless
// of arguments, (b) which parameters flow to its results, and (c) which
// parameters reach a sink — each fact carrying a representative
// evidence chain. Summaries compose bottom-up over call-graph SCCs, so
// a source three calls away from a sink still connects. Within a
// function the walk is flow-sensitive in statement order (branches
// join, loop bodies run twice), which is what lets `sort.Strings(keys)`
// launder a map-range collection the way PR 3's syntactic idiom check
// sanctioned.
//
// Known imprecision, chosen deliberately: fields are not distinguished
// (a tainted field taints its struct), closures are separate scopes
// (captured-variable flows are invisible), and calls through interfaces
// or function values propagate argument taint to the result but have no
// summaries. These lose flows, not soundness of what IS reported: every
// reported path is a real chain of assignments and calls in the source.

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"

	"llbp/internal/lint/analysis"
)

// tval is the abstract taint value of one expression or variable.
type tval struct {
	// conc, when non-nil, is the evidence chain from a concrete
	// nondeterminism source to this value.
	conc []analysis.PathStep
	// par maps parameter indices of the enclosing function to the
	// evidence chain from that parameter to this value.
	par map[int][]analysis.PathStep
}

func (v tval) clean() bool { return v.conc == nil && len(v.par) == 0 }

func union(a, b tval) tval {
	out := tval{conc: a.conc}
	if out.conc == nil {
		out.conc = b.conc
	}
	if len(a.par)+len(b.par) > 0 {
		out.par = map[int][]analysis.PathStep{}
		for i, tr := range a.par {
			out.par[i] = tr
		}
		for i, tr := range b.par {
			if _, ok := out.par[i]; !ok {
				out.par[i] = tr
			}
		}
	}
	return out
}

// taintSummary is one function's interprocedural taint behavior.
type taintSummary struct {
	// generates, when non-nil, is the evidence chain of a concrete
	// source reaching the function's results.
	generates []analysis.PathStep
	// paramFlow[i] reports that parameter i flows into the results.
	paramFlow []bool
	// paramSink[i], when non-nil, is the evidence chain from parameter
	// i to a sink reached inside this function or its callees.
	paramSink [][]analysis.PathStep
}

func (s *taintSummary) equal(o *taintSummary) bool {
	if (s.generates == nil) != (o.generates == nil) {
		return false
	}
	for i := range s.paramFlow {
		if s.paramFlow[i] != o.paramFlow[i] {
			return false
		}
		if (s.paramSink[i] == nil) != (o.paramSink[i] == nil) {
			return false
		}
	}
	return true
}

// TaintEngine runs the analysis; Findings carries the surviving
// source→sink diagnostics after Run.
type TaintEngine struct {
	prog     *Program
	sums     map[*types.Func]*taintSummary
	sinks    map[*types.Func]string // annotated sink → reason
	sources  map[*types.Func]string
	sanitize map[*types.Func]bool
	Findings []analysis.Diagnostic
	seen     map[string]bool
}

// NewTaintEngine indexes the program's source/sink/sanitizer
// annotations.
func NewTaintEngine(prog *Program) *TaintEngine {
	t := &TaintEngine{
		prog:     prog,
		sums:     map[*types.Func]*taintSummary{},
		sinks:    map[*types.Func]string{},
		sources:  map[*types.Func]string{},
		sanitize: map[*types.Func]bool{},
		seen:     map[string]bool{},
	}
	for fn, annos := range prog.FuncAnnos {
		for _, a := range annos {
			switch a.Kind {
			case KindSink:
				t.sinks[fn] = a.Reason
			case KindSource:
				t.sources[fn] = a.Reason
			case KindSanitizer:
				t.sanitize[fn] = true
			}
		}
	}
	return t
}

// Run computes summaries bottom-up, then reports every concrete
// source→sink flow.
func (t *TaintEngine) Run() {
	for _, scc := range t.prog.SCCs() {
		for round := 0; round < 3; round++ {
			stable := true
			for _, fn := range scc {
				next := t.analyze(fn, nil)
				if old := t.sums[fn.Obj]; old == nil || !old.equal(next) {
					stable = false
				}
				t.sums[fn.Obj] = next
			}
			if stable {
				break
			}
		}
	}
	for _, fn := range t.prog.OrderedFuncs() {
		t.analyze(fn, t.report)
	}
}

func (t *TaintEngine) report(d analysis.Diagnostic) {
	key := fmt.Sprintf("%d:%s", d.Pos, d.Message)
	if t.seen[key] {
		return
	}
	t.seen[key] = true
	t.Findings = append(t.Findings, d)
}

// paramObjs returns the function's parameter variables in summary index
// order: receiver first (when present), then the signature parameters.
func paramObjs(fn *Func) []*types.Var {
	sig := fn.Obj.Type().(*types.Signature)
	var out []*types.Var
	if sig.Recv() != nil {
		out = append(out, sig.Recv())
	}
	for i := 0; i < sig.Params().Len(); i++ {
		out = append(out, sig.Params().At(i))
	}
	return out
}

// analyze walks one function body, building its summary; when report is
// non-nil, completed concrete flows are delivered to it.
func (t *TaintEngine) analyze(fn *Func, report func(analysis.Diagnostic)) *taintSummary {
	params := paramObjs(fn)
	sum := &taintSummary{
		paramFlow: make([]bool, len(params)),
		paramSink: make([][]analysis.PathStep, len(params)),
	}
	w := &taintWalker{
		t:      t,
		fn:     fn,
		info:   fn.Pkg.TypesInfo,
		state:  map[types.Object]tval{},
		sum:    sum,
		report: report,
	}
	for i, p := range params {
		w.state[p] = tval{par: map[int][]analysis.PathStep{i: nil}}
	}
	w.stmts(fn.Decl.Body.List)
	return sum
}

type taintWalker struct {
	t      *TaintEngine
	fn     *Func
	info   *types.Info
	state  map[types.Object]tval
	sum    *taintSummary
	report func(analysis.Diagnostic)
}

func (w *taintWalker) clone() map[types.Object]tval {
	out := make(map[types.Object]tval, len(w.state))
	for k, v := range w.state {
		out[k] = v
	}
	return out
}

// mergeInto unions the states of two branch walks back into the parent.
func (w *taintWalker) merge(a, b map[types.Object]tval) {
	merged := map[types.Object]tval{}
	for k, v := range a {
		merged[k] = v
	}
	for k, v := range b {
		merged[k] = union(merged[k], v)
	}
	w.state = merged
}

func (w *taintWalker) stmts(list []ast.Stmt) {
	for _, s := range list {
		w.stmt(s)
	}
}

func (w *taintWalker) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		w.eval(s.X)
	case *ast.AssignStmt:
		w.assign(s.Lhs, s.Rhs)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok && len(vs.Values) > 0 {
					lhs := make([]ast.Expr, len(vs.Names))
					for i, n := range vs.Names {
						lhs[i] = n
					}
					w.assign(lhs, vs.Values)
				}
			}
		}
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			v := w.eval(r)
			if v.conc != nil && w.sum.generates == nil {
				w.sum.generates = v.conc
			}
			for i := range v.par {
				w.sum.paramFlow[i] = true
			}
		}
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		w.eval(s.Cond)
		parent := w.clone()
		w.stmts(s.Body.List)
		after := w.state
		w.state = parent
		if s.Else != nil {
			w.stmt(s.Else)
		}
		w.merge(w.state, after)
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		if s.Cond != nil {
			w.eval(s.Cond)
		}
		for i := 0; i < 2; i++ { // twice: propagate loop-carried taint
			w.stmts(s.Body.List)
			if s.Post != nil {
				w.stmt(s.Post)
			}
		}
	case *ast.RangeStmt:
		src := w.eval(s.X)
		keyV, valV := src, src
		if typ := w.info.TypeOf(s.X); typ != nil {
			if _, isMap := typ.Underlying().(*types.Map); isMap {
				order := tval{conc: []analysis.PathStep{Step(s.Pos(), "map iteration order (nondeterminism source)")}}
				keyV = union(keyV, order)
				valV = union(valV, order)
			}
		}
		w.bind(s.Key, keyV)
		w.bind(s.Value, valV)
		for i := 0; i < 2; i++ {
			w.stmts(s.Body.List)
		}
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		if s.Tag != nil {
			w.eval(s.Tag)
		}
		w.caseClauses(s.Body.List)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		w.stmt(s.Assign)
		w.caseClauses(s.Body.List)
	case *ast.SelectStmt:
		multi := len(s.Body.List) >= 2
		parent := w.clone()
		states := []map[types.Object]tval{}
		for _, clause := range s.Body.List {
			cc, ok := clause.(*ast.CommClause)
			if !ok {
				continue
			}
			w.state = w.cloneOf(parent)
			if cc.Comm != nil {
				w.stmt(cc.Comm)
				if multi {
					// Which case fired depends on goroutine completion
					// order: values received here are order-tainted.
					w.taintCommVars(cc.Comm, tval{conc: []analysis.PathStep{
						Step(cc.Comm.Pos(), "select arrival order (goroutine fan-in, nondeterminism source)")}})
				}
			}
			w.stmts(cc.Body)
			states = append(states, w.state)
		}
		w.state = parent
		for _, st := range states {
			w.merge(w.state, st)
		}
	case *ast.BlockStmt:
		w.stmts(s.List)
	case *ast.LabeledStmt:
		w.stmt(s.Stmt)
	case *ast.GoStmt:
		w.eval(s.Call)
	case *ast.DeferStmt:
		w.eval(s.Call)
	case *ast.SendStmt:
		w.eval(s.Chan)
		w.eval(s.Value)
	case *ast.IncDecStmt:
		w.eval(s.X)
	}
}

func (w *taintWalker) cloneOf(src map[types.Object]tval) map[types.Object]tval {
	out := make(map[types.Object]tval, len(src))
	for k, v := range src {
		out[k] = v
	}
	return out
}

func (w *taintWalker) caseClauses(list []ast.Stmt) {
	parent := w.clone()
	states := []map[types.Object]tval{}
	for _, clause := range list {
		cc, ok := clause.(*ast.CaseClause)
		if !ok {
			continue
		}
		w.state = w.cloneOf(parent)
		for _, e := range cc.List {
			w.eval(e)
		}
		w.stmts(cc.Body)
		states = append(states, w.state)
	}
	w.state = parent
	for _, st := range states {
		w.merge(w.state, st)
	}
}

// taintCommVars taints the variables assigned by a select comm
// statement (`v := <-ch` / `v, ok := <-ch`).
func (w *taintWalker) taintCommVars(comm ast.Stmt, v tval) {
	if as, ok := comm.(*ast.AssignStmt); ok {
		for _, l := range as.Lhs {
			if id, ok := ast.Unparen(l).(*ast.Ident); ok {
				if obj := w.objOf(id); obj != nil {
					w.state[obj] = union(w.state[obj], v)
				}
			}
		}
	}
}

func (w *taintWalker) objOf(id *ast.Ident) types.Object {
	if obj := w.info.Defs[id]; obj != nil {
		return obj
	}
	return w.info.Uses[id]
}

// bind assigns a taint value to a range/assign target expression.
func (w *taintWalker) bind(e ast.Expr, v tval) {
	if e == nil {
		return
	}
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if e.Name == "_" {
			return
		}
		if obj := w.objOf(e); obj != nil {
			w.state[obj] = v
		}
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		// Field-insensitive: a tainted value stored into x.f (or x[i],
		// *x) taints the root variable x.
		if !v.clean() {
			if root := rootIdent(e); root != nil {
				if obj := w.objOf(root); obj != nil {
					w.state[obj] = union(w.state[obj], v)
				}
			}
		}
	}
}

func (w *taintWalker) assign(lhs, rhs []ast.Expr) {
	if len(rhs) == 1 && len(lhs) > 1 {
		v := w.eval(rhs[0])
		for _, l := range lhs {
			w.bind(l, v)
		}
		return
	}
	for i, r := range rhs {
		v := w.eval(r)
		if i < len(lhs) {
			// `x += tainted` keeps x's existing taint too.
			if l, ok := ast.Unparen(lhs[i]).(*ast.Ident); ok {
				if obj := w.objOf(l); obj != nil {
					if old, ok := w.state[obj]; ok && !old.clean() {
						v = union(v, old)
					}
				}
			}
			w.bind(lhs[i], v)
		}
	}
}

func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		default:
			return nil
		}
	}
}

func (w *taintWalker) eval(e ast.Expr) tval {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := w.objOf(e); obj != nil {
			return w.state[obj]
		}
	case *ast.CallExpr:
		return w.call(e)
	case *ast.BinaryExpr:
		return union(w.eval(e.X), w.eval(e.Y))
	case *ast.UnaryExpr:
		return w.eval(e.X)
	case *ast.StarExpr:
		return w.eval(e.X)
	case *ast.SelectorExpr:
		// Field read off a tainted struct, or package-qualified name.
		if id, ok := ast.Unparen(e.X).(*ast.Ident); ok {
			if _, isPkg := w.info.Uses[id].(*types.PkgName); isPkg {
				return tval{}
			}
		}
		return w.eval(e.X)
	case *ast.IndexExpr:
		return union(w.eval(e.X), w.eval(e.Index))
	case *ast.SliceExpr:
		return w.eval(e.X)
	case *ast.TypeAssertExpr:
		return w.eval(e.X)
	case *ast.CompositeLit:
		var v tval
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			v = union(v, w.eval(el))
		}
		return v
	case *ast.FuncLit:
		// A closure is its own scope: walk it for self-contained
		// source→sink flows, but do not track captured-variable taint.
		sub := &taintWalker{
			t: w.t, fn: w.fn, info: w.info,
			state:  map[types.Object]tval{},
			sum:    &taintSummary{},
			report: w.report,
		}
		sub.stmts(e.Body.List)
		return tval{}
	}
	return tval{}
}

// argList pairs a call's effective arguments with the callee's summary
// parameter indices (receiver first). ok is false for shapes the engine
// does not model (method expressions).
func argList(info *types.Info, fn *types.Func, call *ast.CallExpr) ([]ast.Expr, bool) {
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil {
		return nil, false
	}
	if sig.Recv() == nil {
		return call.Args, true
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, false
	}
	if s, ok := info.Selections[sel]; !ok || s.Kind() != types.MethodVal {
		return nil, false // method expression T.M(recv, ...) — rare, skip
	}
	return append([]ast.Expr{sel.X}, call.Args...), true
}

// paramIndex maps argument position to summary parameter index,
// folding variadic overflow onto the last parameter.
func paramIndex(fn *types.Func, argPos int) int {
	sig := fn.Type().(*types.Signature)
	n := sig.Params().Len()
	if sig.Recv() != nil {
		n++
	}
	if argPos >= n {
		return n - 1
	}
	return argPos
}

func (w *taintWalker) call(call *ast.CallExpr) tval {
	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := w.info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "len", "cap", "make", "new", "delete", "clear", "panic", "print", "println":
				for _, a := range call.Args {
					w.eval(a)
				}
				return tval{}
			default: // append, copy, min, max, complex, real, imag
				var v tval
				for _, a := range call.Args {
					v = union(v, w.eval(a))
				}
				return v
			}
		}
	}

	fn := CalleeFunc(w.info, call)
	if fn == nil {
		// Function value or interface dispatch: propagate argument and
		// callee-expression taint conservatively.
		v := w.eval(call.Fun)
		for _, a := range call.Args {
			v = union(v, w.eval(a))
		}
		return v
	}

	// Sanitizers launder their argument (sort.Strings(keys)) and their
	// result (slices.Sorted(maps.Keys(m))).
	if w.t.sanitize[fn] || builtinSanitizer(fn) {
		for _, a := range call.Args {
			w.eval(a)
			if id, ok := ast.Unparen(a).(*ast.Ident); ok {
				if obj := w.objOf(id); obj != nil {
					w.state[obj] = tval{}
				}
			}
		}
		return tval{}
	}

	// Sources.
	if reason, ok := w.t.sources[fn]; ok {
		for _, a := range call.Args {
			w.eval(a)
		}
		return tval{conc: []analysis.PathStep{
			Step(call.Pos(), "annotated source %s (%s)", FuncName(fn), reason)}}
	}
	if desc, ok := builtinSource(fn); ok {
		for _, a := range call.Args {
			w.eval(a)
		}
		return tval{conc: []analysis.PathStep{Step(call.Pos(), "nondeterminism source: %s", desc)}}
	}

	args, shaped := argList(w.info, fn, call)
	if !shaped {
		var v tval
		for _, a := range call.Args {
			v = union(v, w.eval(a))
		}
		return v
	}

	sinkReason, isSink := w.t.sinks[fn]
	sum := w.t.sums[fn] // non-nil only for program funcs already summarized
	var result tval
	for pos, arg := range args {
		av := w.eval(arg)
		if av.clean() {
			continue
		}
		i := paramIndex(fn, pos)
		// Does parameter i reach a sink in (or below) the callee?
		var sinkTrace []analysis.PathStep
		reached := false
		if isSink {
			reached = true
			sinkTrace = []analysis.PathStep{Step(call.Pos(), "into sink %s (%s)", FuncName(fn), sinkReason)}
		} else if sum != nil && sum.paramSink[i] != nil {
			reached = true
			sinkTrace = AppendPath(
				[]analysis.PathStep{Step(call.Pos(), "passed to %s", FuncName(fn))},
				sum.paramSink[i]...)
		}
		if reached {
			if av.conc != nil && w.report != nil {
				w.report(analysis.Diagnostic{
					Pos: arg.Pos(),
					Message: fmt.Sprintf("nondeterministic value reaches determinism-critical sink %s; derive it from seeded/injected state or sort before emitting",
						sinkName(fn, sum, i, isSink)),
					Path: AppendPath(av.conc, sinkTrace...),
				})
			}
			for pi, tr := range av.par {
				if w.sum.paramSink[pi] == nil {
					w.sum.paramSink[pi] = AppendPath(tr, sinkTrace...)
				}
			}
		}
		// Value flow through the callee into its results.
		if sum != nil && i < len(sum.paramFlow) && sum.paramFlow[i] {
			result = union(result, av)
		} else if sum == nil {
			// No summary (stdlib, extern): conservative propagation.
			result = union(result, av)
		}
	}
	if sum != nil && sum.generates != nil {
		result = union(result, tval{conc: AppendPath(
			[]analysis.PathStep{Step(call.Pos(), "returned by %s", FuncName(fn))},
			sum.generates...)})
	}
	return result
}

// sinkName renders the sink a flow terminates in: the annotated callee
// itself, or the transitive sink its summary path ends at.
func sinkName(fn *types.Func, sum *taintSummary, i int, direct bool) string {
	if direct {
		return FuncName(fn)
	}
	if sum != nil && sum.paramSink[i] != nil {
		last := sum.paramSink[i][len(sum.paramSink[i])-1]
		if idx := strings.Index(last.Note, "into sink "); idx >= 0 {
			name := last.Note[idx+len("into sink "):]
			if j := strings.Index(name, " ("); j >= 0 {
				name = name[:j]
			}
			return name + " (via " + FuncName(fn) + ")"
		}
	}
	return "(via " + FuncName(fn) + ")"
}

// builtinSource classifies stdlib functions whose results are
// nondeterministic across runs.
func builtinSource(fn *types.Func) (string, bool) {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() != nil || fn.Pkg() == nil {
		return "", false
	}
	switch fn.Pkg().Path() {
	case "time":
		switch fn.Name() {
		case "Now", "Since", "Until":
			return "time." + fn.Name(), true
		}
	case "math/rand", "math/rand/v2":
		if !strings.HasPrefix(fn.Name(), "New") {
			return fn.Pkg().Path() + "." + fn.Name() + " (global auto-seeded RNG)", true
		}
	case "maps":
		switch fn.Name() {
		case "Keys", "Values":
			return "maps." + fn.Name() + " (map iteration order)", true
		}
	}
	return "", false
}

// builtinSanitizer classifies stdlib sorts: a sorted collection no
// longer carries iteration-order taint.
func builtinSanitizer(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() != nil || fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "sort":
		switch fn.Name() {
		case "Strings", "Ints", "Float64s", "Slice", "SliceStable", "Sort", "Stable":
			return true
		}
	case "slices":
		switch fn.Name() {
		case "Sort", "SortFunc", "SortStableFunc", "Sorted", "SortedFunc", "SortedStableFunc":
			return true
		}
	}
	return false
}
