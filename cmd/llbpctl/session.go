package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"llbp/internal/service/client"
	"llbp/internal/session"
	"llbp/internal/trace"
	"llbp/internal/workload"
)

// cmdSession is the streaming-session surface: predict-as-a-service
// against a predictor forked from the daemon's warm snapshots.
//
//	llbpctl session open -predictor llbp -workload Tomcat -warmup 200000
//	llbpctl session push <id> -workload Tomcat -n 50000 -batch 512
//	llbpctl session push <id> < frames.ndjson        # raw llbp-session/1 frames
//	llbpctl session stream <id> [-follow] [-o out.ndjson]
//	llbpctl session status [id] | list | close <id> | drain ... | bye ...
//
// open prints the session ID on stdout, so open/push/stream compose the
// same way submit/watch do.
func cmdSession(ctx context.Context, cl *client.Client, args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: llbpctl session <open|push|stream|status|list|close> [flags]")
	}
	verb, rest := args[0], args[1:]
	switch verb {
	case "open":
		return sessionOpen(ctx, cl, rest, stdout, stderr)
	case "push":
		return sessionPush(ctx, cl, rest, stdin, stdout, stderr)
	case "stream":
		return sessionStream(ctx, cl, rest, stdin, stdout, stderr)
	case "status":
		return sessionStatus(ctx, cl, rest, stdin, stdout)
	case "list":
		list, err := cl.Sessions(ctx)
		if err != nil {
			return err
		}
		for _, st := range list {
			printSession(stdout, st)
		}
		return nil
	case "close":
		ids, err := jobIDs(rest, stdin)
		if err != nil {
			return err
		}
		for _, id := range ids {
			st, err := cl.CloseSession(ctx, id)
			if err != nil {
				return err
			}
			printSession(stdout, st)
		}
		return nil
	default:
		return fmt.Errorf("unknown session verb %q (want open, push, stream, status, list or close)", verb)
	}
}

func printSession(w io.Writer, st session.Status) {
	fmt.Fprintf(w, "%s  %-8s  %s/%s  seq %d  %d branches  %d mispredicts  epoch %d\n",
		st.ID, st.State, st.Predictor, st.Workload, st.LastSeq, st.Branches, st.Mispredicts, st.Epoch)
}

func sessionOpen(ctx context.Context, cl *client.Client, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("llbpctl session open", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		pred   = fs.String("predictor", "llbp", "predictor spec key to fork for this session")
		wl     = fs.String("workload", "", "workload whose warm snapshot seeds the fork (empty = cold predictor)")
		warmup = fs.Uint64("warmup", 0, "warmup branches folded into the forked snapshot")
		ckpt   = fs.Uint64("checkpoint", 0, "auto-checkpoint cadence in branches (0 = daemon default)")
		tenant = fs.String("tenant", "", "tenant name, surfaced in session listings and events")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	st, err := cl.OpenSession(ctx, session.Request{
		Schema: session.Schema, Predictor: *pred, Workload: *wl,
		Warmup: *warmup, CheckpointBranches: *ckpt, Tenant: *tenant,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(stderr, "session %s: %s %s/%s\n", st.ID, st.State, st.Predictor, st.Workload)
	fmt.Fprintln(stdout, st.ID) // bare ID on stdout: pipeable into push/stream
	return nil
}

// sessionPush streams branch batches at a session. Without -workload it
// forwards raw llbp-session/1 NDJSON frames from stdin (hello excluded —
// the client prepends it); with -workload it generates batches from the
// named trace, which is how the CI smoke test streams real branches
// without a separate generator binary. -start-seq resumes a pusher after
// an interruption: already-applied overlap batches are acknowledged
// idempotently by the daemon.
func sessionPush(ctx context.Context, cl *client.Client, args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("llbpctl session push", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		worker   = fs.String("worker", "", "lease owner name (defaults to the connection's remote address)")
		wl       = fs.String("workload", "", "generate batches from this workload's trace instead of reading stdin")
		n        = fs.Uint64("n", 50_000, "branches to stream when generating from -workload")
		batch    = fs.Uint64("batch", 512, "branches per batch when generating")
		skip     = fs.Uint64("skip", 0, "trace records to skip before the first generated batch")
		startSeq = fs.Uint64("start-seq", 1, "first batch sequence number (resume point after an interrupted push)")
		drain    = fs.Bool("drain", false, "send a drain frame after the batches (hand the session to a successor)")
		bye      = fs.Bool("bye", false, "send a bye frame after the batches (close the session)")
	)
	// The session id leads (`session push <id> -flags`), matching the
	// other verbs; stdlib flag parsing stops at the first positional, so
	// peel it off before parsing.
	var id string
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		id, args = args[0], args[1:]
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if id == "" && fs.NArg() == 1 {
		id = fs.Arg(0)
	}
	if id == "" || fs.NArg() > 1 {
		return fmt.Errorf("session push needs exactly one session id")
	}

	body := stdin
	if *wl != "" {
		pr, pw := io.Pipe()
		go func() { pw.CloseWithError(generateBatches(pw, *wl, *n, *batch, *skip, *startSeq, *drain, *bye)) }()
		body = pr
	} else if *drain || *bye {
		// Raw-stdin mode still honors the trailer flags by appending the
		// frame after stdin runs dry.
		var trailer strings.Builder
		if *drain {
			trailer.WriteString(`{"type":"drain"}` + "\n")
		}
		if *bye {
			trailer.WriteString(`{"type":"bye"}` + "\n")
		}
		body = io.MultiReader(stdin, strings.NewReader(trailer.String()))
	}

	sum, err := cl.PushSessionReader(ctx, id, *worker, body)
	if err != nil {
		return err
	}
	if sum.Error != "" {
		fmt.Fprintf(stderr, "session %s: push ended: %s (seq %d, %d branches)\n", id, sum.Error, sum.LastSeq, sum.Branches)
		return fmt.Errorf("push failed at seq %d: %s", sum.LastSeq, sum.Error)
	}
	state := "released"
	switch {
	case sum.Closed:
		state = "closed"
	case sum.Drained:
		state = "drained"
	}
	fmt.Fprintf(stderr, "session %s: applied %d batches, seq %d, %d branches, %s\n",
		id, sum.Applied, sum.LastSeq, sum.Branches, state)
	fmt.Fprintln(stdout, sum.LastSeq) // resume cursor on stdout: feeds -start-seq
	return nil
}

// generateBatches writes llbp-session/1 branch-batch frames from a
// workload trace. Sequencing starts at startSeq, and the trace cursor is
// positioned as if batches 1..startSeq-1 were already streamed — so a
// resumed push regenerates exactly the suffix the daemon hasn't seen.
func generateBatches(w io.Writer, wlName string, n, batchLen, skip, startSeq uint64, drain, bye bool) error {
	if batchLen == 0 {
		return fmt.Errorf("batch size must be positive")
	}
	if batchLen > session.MaxBatchBranches {
		return fmt.Errorf("batch size %d exceeds the protocol cap %d", batchLen, session.MaxBatchBranches)
	}
	wl, err := workload.ByName(wlName)
	if err != nil {
		return err
	}
	r := wl.Open()
	var b trace.Branch
	for i := uint64(0); i < skip+(startSeq-1)*batchLen; i++ {
		if err := r.Read(&b); err != nil {
			return fmt.Errorf("positioning trace: %w", err)
		}
	}
	enc := json.NewEncoder(w)
	seq := startSeq
	for streamed := uint64(0); streamed < n; seq++ {
		want := batchLen
		if left := n - streamed; left < want {
			want = left
		}
		recs := make([]session.BranchRec, 0, want)
		for uint64(len(recs)) < want {
			if err := r.Read(&b); err == io.EOF {
				break
			} else if err != nil {
				return err
			}
			recs = append(recs, session.BranchRec{
				PC: b.PC, Target: b.Target, Kind: uint8(b.Type), Taken: b.Taken,
				Instructions: b.Instructions, TargetMiss: b.MispredictedTarget,
			})
		}
		if len(recs) == 0 {
			break // trace exhausted
		}
		if err := enc.Encode(session.Frame{Type: session.FrameBranchBatch, Seq: seq, Branches: recs}); err != nil {
			return err
		}
		streamed += uint64(len(recs))
	}
	if drain {
		if err := enc.Encode(session.Frame{Type: session.FrameDrain}); err != nil {
			return err
		}
	}
	if bye {
		if err := enc.Encode(session.Frame{Type: session.FrameBye}); err != nil {
			return err
		}
	}
	return nil
}

// sessionStream pulls a session's output log as NDJSON, resuming across
// dropped connections. The emitted bytes are the byte-identity surface
// the resume smoke test diffs.
func sessionStream(ctx context.Context, cl *client.Client, args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("llbpctl session stream", flag.ContinueOnError)
	fs.SetOutput(stderr)
	out := fs.String("o", "", "write the NDJSON frame stream to this file instead of stdout")
	follow := fs.Bool("follow", false, "stay attached until the session closes")
	// Accept `stream <id> -flags` as well as `stream -flags <id>`: stdlib
	// flag parsing stops at the first positional, so peel a leading id.
	var lead []string
	for len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		lead, args = append(lead, args[0]), args[1:]
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	ids, err := jobIDs(append(lead, fs.Args()...), stdin)
	if err != nil {
		return err
	}
	w := stdout
	var f *os.File
	if *out != "" {
		f, err = os.Create(*out)
		if err != nil {
			return err
		}
		w = f
	}
	for _, id := range ids {
		err := cl.StreamSession(ctx, id, *follow, func(of session.OutFrame) error {
			raw, err := json.Marshal(of)
			if err != nil {
				return err
			}
			_, err = fmt.Fprintf(w, "%s\n", raw)
			return err
		})
		if err != nil {
			if f != nil {
				f.Close()
			}
			return err
		}
	}
	if f != nil {
		return f.Close()
	}
	return nil
}

func sessionStatus(ctx context.Context, cl *client.Client, args []string, stdin io.Reader, stdout io.Writer) error {
	ids, err := jobIDs(args, stdin)
	if err != nil {
		return err
	}
	for _, id := range ids {
		st, err := cl.Session(ctx, id)
		if err != nil {
			return err
		}
		printSession(stdout, st)
	}
	return nil
}
