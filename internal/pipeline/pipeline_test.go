package pipeline

import "testing"

func TestDefaultValid(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidation(t *testing.T) {
	bad := Default()
	bad.BaseCPI = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero CPI must fail")
	}
	bad = Default()
	bad.MispredictPenalty = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative penalty must fail")
	}
}

func TestAccountingArithmetic(t *testing.T) {
	a, err := NewAccounting(Default())
	if err != nil {
		t.Fatal(err)
	}
	c := a.Retire(1000)
	if c != 500 {
		t.Errorf("1000 instructions at CPI 0.5 = %v cycles, want 500", c)
	}
	if got := a.Mispredict(); got != 20 {
		t.Errorf("mispredict penalty = %v", got)
	}
	if got := a.TargetMiss(); got != 20 {
		t.Errorf("target-miss penalty = %v", got)
	}
	if a.Cycles() != 540 {
		t.Errorf("total cycles = %v, want 540", a.Cycles())
	}
	if w := a.WastedFraction(); w != 20.0/540 {
		t.Errorf("WastedFraction = %v", w)
	}
	if ipc := a.IPC(); ipc != 1000.0/540 {
		t.Errorf("IPC = %v", ipc)
	}
	if a.Mispredictions != 1 || a.TargetMisses != 1 || a.Instructions != 1000 {
		t.Error("counters wrong")
	}
}

func TestEmptyAccounting(t *testing.T) {
	a, err := NewAccounting(Default())
	if err != nil {
		t.Fatal(err)
	}
	if a.WastedFraction() != 0 || a.IPC() != 0 {
		t.Error("empty ledger must report zeros")
	}
}

// TestWastedFractionMatchesPaperRegime: at the paper's average 2.91 MPKI,
// the model should waste roughly 9-11% of cycles (Figure 1 reports 9.2%).
func TestWastedFractionMatchesPaperRegime(t *testing.T) {
	a, err := NewAccounting(Default())
	if err != nil {
		t.Fatal(err)
	}
	const instructions = 1_000_000
	a.Retire(instructions)
	for i := 0; i < int(2.91*instructions/1000); i++ {
		a.Mispredict()
	}
	if w := a.WastedFraction(); w < 0.08 || w < 0.0 || w > 0.13 {
		t.Errorf("wasted fraction at 2.91 MPKI = %.3f, want ≈0.092", w)
	}
}

func TestRejectsBadConfig(t *testing.T) {
	if _, err := NewAccounting(Config{}); err == nil {
		t.Error("zero config must be rejected")
	}
}
