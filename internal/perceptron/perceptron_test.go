package perceptron

import (
	"testing"

	"llbp/internal/assert"
)

func drive(p *Predictor, n int, next func(i int) (uint64, bool)) float64 {
	miss, cnt := 0, 0
	for i := 0; i < n; i++ {
		pc, taken := next(i)
		pred := p.Predict(pc)
		p.Update(pc, taken)
		if i >= n/2 {
			cnt++
			if pred != taken {
				miss++
			}
		}
	}
	return float64(miss) / float64(cnt)
}

func mustNew(t *testing.T) *Predictor {
	t.Helper()
	p, err := New(Default())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestValidation(t *testing.T) {
	for i, cfg := range []Config{
		{LogRows: 1, HistBits: 32, WeightBits: 8},
		{LogRows: 11, HistBits: 0, WeightBits: 8},
		{LogRows: 11, HistBits: 32, WeightBits: 2},
	} {
		if _, err := New(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestBiased(t *testing.T) {
	p := mustNew(t)
	if mr := drive(p, 4000, func(int) (uint64, bool) { return 0x40, true }); mr > 0.02 {
		t.Errorf("always-taken missrate %.3f", mr)
	}
}

func TestAlternating(t *testing.T) {
	p := mustNew(t)
	if mr := drive(p, 20000, func(i int) (uint64, bool) { return 0x40, i%2 == 0 }); mr > 0.02 {
		t.Errorf("alternating missrate %.3f", mr)
	}
}

// TestLinearlySeparable: the perceptron's defining strength — a branch
// whose outcome is one specific history bit (parity of no more than one
// bit is linearly separable).
func TestLinearlySeparable(t *testing.T) {
	p := mustNew(t)
	var outcomes []bool
	mr := drive(p, 40000, func(i int) (uint64, bool) {
		// Outcome = outcome of the branch 7 executions ago.
		var taken bool
		if len(outcomes) < 7 {
			taken = i%3 == 0
		} else {
			taken = outcomes[len(outcomes)-7]
		}
		outcomes = append(outcomes, taken)
		return 0x40, taken
	})
	if mr > 0.05 {
		t.Errorf("history-bit-correlated missrate %.3f", mr)
	}
}

// TestXORNotLearnable documents the perceptron's known limit: the XOR of
// two independent random history bits is not linearly separable, so
// accuracy stays near chance — exactly why TAGE's pattern matching wins
// on such branches. Branch A produces seeded random outcomes; branch B's
// outcome is the XOR of A's last two.
func TestXORNotLearnable(t *testing.T) {
	p := mustNew(t)
	seed := uint64(0x1234)
	rnd := func() bool {
		seed ^= seed << 13
		seed ^= seed >> 7
		seed ^= seed << 17
		return seed&1 == 1
	}
	a1, a2 := false, true
	miss, cnt := 0, 0
	const rounds = 30000
	for i := 0; i < rounds; i++ {
		// Branch A: random.
		aTaken := rnd()
		p.Predict(0x80)
		p.Update(0x80, aTaken)
		a2, a1 = a1, aTaken
		// Branch B: XOR of A's last two outcomes.
		bTaken := a1 != a2
		pred := p.Predict(0x40)
		p.Update(0x40, bTaken)
		if i > rounds/2 {
			cnt++
			if pred != bTaken {
				miss++
			}
		}
	}
	if mr := float64(miss) / float64(cnt); mr < 0.2 {
		t.Errorf("XOR of random bits unexpectedly learnable by a perceptron (missrate %.3f)", mr)
	}
}

func TestWeightsSaturate(t *testing.T) {
	p := mustNew(t)
	for i := 0; i < 100000; i++ {
		p.Predict(0x40)
		p.Update(0x40, true)
	}
	limit := int16(1)<<(p.cfg.WeightBits-1) - 1
	for _, w := range p.weights[p.row(0x40)] {
		if w > limit || w < -limit-1 {
			t.Fatalf("weight %d escaped the clamp ±%d", w, limit)
		}
	}
}

func TestUpdateWithoutPredictPanics(t *testing.T) {
	if !assert.Enabled {
		t.Skip("contract panics are debug assertions; run with -tags llbpdebug")
	}
	p := mustNew(t)
	p.Predict(0x40)
	defer func() {
		if recover() == nil {
			t.Error("mismatched Update must panic")
		}
	}()
	p.Update(0x44, true)
}

func TestStorageBitsAndName(t *testing.T) {
	p := mustNew(t)
	if p.StorageBits() != (1<<11)*33*8 {
		t.Errorf("StorageBits = %d", p.StorageBits())
	}
	if p.Name() == "" {
		t.Error("empty name")
	}
}
